package orchestra

import (
	"context"
	"fmt"
	"iter"

	"orchestra/internal/core"
	"orchestra/internal/datalog"
	"orchestra/internal/datalog/magic"
)

// This file is the public query surface: a goal-directed, provenance-
// carrying query builder over a peer's local instance. Queries name a goal
// — a predicate with bound (constant) and free (variable) argument modes —
// and may define view rules (recursive, with stratified negation and
// comparisons) the goal references. Evaluation is goal-directed by default:
// the view program is magic-rewritten for the goal's binding pattern
// (internal/datalog/magic), so only facts reachable from the bound
// arguments drive the fixpoint, instead of materializing every view over
// the whole instance.
//
//	reachable := peer.Query(ctx, "reach", orchestra.Bind(orchestra.String("alice")), orchestra.Free("who")).
//	    Rule("reach", []string{"a", "b"}, orchestra.Atom("follows", orchestra.Free("a"), orchestra.Free("b"))).
//	    Rule("reach", []string{"a", "c"},
//	        orchestra.Atom("reach", orchestra.Free("a"), orchestra.Free("b")),
//	        orchestra.Atom("follows", orchestra.Free("b"), orchestra.Free("c")))
//	for ans, err := range reachable.Stream() {
//	    if err != nil { ... }
//	    use(ans.Tuple, ans.Prov)
//	}

// Answer is one query result: the values of the goal's distinct free
// variables (first-occurrence order) plus the provenance polynomial
// combining the provenance of every fact joined to derive it. A goal with
// no free variables is a boolean query: it yields a single empty-tuple
// Answer when it holds and nothing when it does not. With
// WithProvenance(false) the polynomial is zero.
type Answer = core.Answer

// EvalStats collects evaluation counters — index probes, filter-pushdown
// hit rate, peak live intermediate tuples, suppressed emissions — from the
// streaming evaluator under a query. Attach one with Query.Stats; all
// fields are atomic and accumulate across the queries that share the
// struct, so a single EvalStats can meter a whole workload.
type EvalStats = datalog.EvalStats

// SIPStrategy selects how the magic-sets rewrite passes bindings sideways
// through rule bodies; see the constants.
type SIPStrategy = magic.SIP

const (
	// SIPLeftToRight propagates bindings through body literals in written
	// order (the default).
	SIPLeftToRight = magic.LeftToRight
	// SIPMostBound propagates bindings greedily through the most-bound
	// literal first, mirroring the evaluator's join planner.
	SIPMostBound = magic.MostBound
)

// CmpOp is a comparison operator for Filter literals.
type CmpOp = datalog.CmpOp

// Comparison operators.
const (
	CmpEq CmpOp = datalog.OpEq
	CmpNe CmpOp = datalog.OpNe
	CmpLt CmpOp = datalog.OpLt
	CmpLe CmpOp = datalog.OpLe
	CmpGt CmpOp = datalog.OpGt
	CmpGe CmpOp = datalog.OpGe
)

// QueryTerm is one argument of a goal or body atom: bound to a constant
// (Bind) or a named free variable (Free).
type QueryTerm struct {
	term datalog.Term
	err  error
}

// Bind makes a bound argument: the position must equal the value. Bound
// goal arguments are what goal-directed evaluation specializes on.
func Bind(v Value) QueryTerm { return QueryTerm{term: datalog.C(v)} }

// Free makes a free (variable) argument. Repeating a name joins the
// positions; in a goal, each distinct name contributes one output column.
func Free(name string) QueryTerm {
	if name == "" {
		return QueryTerm{err: fmt.Errorf("orchestra: Free with an empty variable name")}
	}
	return QueryTerm{term: datalog.V(name)}
}

// QueryLiteral is one body element of a view rule: an atom, a negated
// atom, or a comparison filter.
type QueryLiteral struct {
	lit datalog.Literal
	err error
}

// Atom matches the named relation or view with the given argument modes.
func Atom(pred string, args ...QueryTerm) QueryLiteral {
	terms, err := termList(args)
	return QueryLiteral{lit: datalog.Pos(datalog.NewAtom(pred, terms...)), err: err}
}

// Not matches when no fact of the relation or view matches; every variable
// it uses must also appear in a positive atom of the same rule.
func Not(pred string, args ...QueryTerm) QueryLiteral {
	terms, err := termList(args)
	return QueryLiteral{lit: datalog.Neg(datalog.NewAtom(pred, terms...)), err: err}
}

// Filter compares two terms; its variables must appear in positive atoms
// of the same rule.
func Filter(left QueryTerm, op CmpOp, right QueryTerm) QueryLiteral {
	err := left.err
	if err == nil {
		err = right.err
	}
	return QueryLiteral{lit: datalog.Cmp(left.term, op, right.term), err: err}
}

func termList(args []QueryTerm) ([]datalog.Term, error) {
	terms := make([]datalog.Term, len(args))
	for i, a := range args {
		if a.err != nil {
			return nil, a.err
		}
		terms[i] = a.term
	}
	return terms, nil
}

// Query is an in-flight query description; build it with Peer.Query, add
// view rules and options, then consume Stream or All. A Query is not safe
// for concurrent mutation, but the terminal operations only read it.
type Query struct {
	peer *Peer
	ctx  context.Context
	gq   core.GoalQuery
	err  error
}

// Query starts a goal-directed query: goal names a stored relation or a
// view rule head added with Rule, and args give its bound/free argument
// modes. The context bounds evaluation — cancellation and deadlines stop
// the fixpoint within one iteration.
func (p *Peer) Query(ctx context.Context, goal string, args ...QueryTerm) *Query {
	if ctx == nil {
		ctx = context.Background()
	}
	q := &Query{peer: p, ctx: ctx}
	terms, err := termList(args)
	q.err = err
	q.gq.Goal = datalog.NewAtom(goal, terms...)
	q.gq.NoProvenance = !p.set.provenance
	return q
}

// Rule adds a view rule: pred(vars...) holds for every assignment
// satisfying all body literals. Rules may reference stored relations,
// other views, and themselves (recursion); negation must be stratified.
// Rule heads must not shadow stored relations.
func (q *Query) Rule(pred string, vars []string, body ...QueryLiteral) *Query {
	head := make([]datalog.HeadTerm, len(vars))
	for i, v := range vars {
		if v == "" && q.err == nil {
			q.err = fmt.Errorf("orchestra: rule %s: empty head variable name", pred)
		}
		head[i] = datalog.HV(v)
	}
	lits := make([]datalog.Literal, len(body))
	for i, b := range body {
		if b.err != nil && q.err == nil {
			q.err = b.err
		}
		lits[i] = b.lit
	}
	q.gq.Rules = append(q.gq.Rules, datalog.Rule{
		ID:   fmt.Sprintf("%s/%d", pred, len(q.gq.Rules)),
		Head: datalog.Head{Pred: pred, Terms: head},
		Body: lits,
	})
	return q
}

// SIP selects the sideways-information-passing strategy for the magic
// rewrite (default SIPLeftToRight).
func (q *Query) SIP(s SIPStrategy) *Query {
	q.gq.SIP = s
	return q
}

// FullFixpoint disables goal-directed evaluation: every view rule is
// materialized over the whole instance and the goal filters the result.
// Answers are identical to the default mode — this is the reference
// baseline, kept callable for verification and benchmarking.
func (q *Query) FullFixpoint() *Query {
	q.gq.Mode = core.FullFixpoint
	return q
}

// Stats attaches an evaluation-counter collector: every evaluation of this
// query (each Stream/All call) accumulates its probe, pushdown, and
// peak-live-intermediate counters into s. Pass the same collector to
// several queries to meter them together.
func (q *Query) Stats(s *EvalStats) *Query {
	q.gq.Stats = s
	return q
}

// Stream evaluates the query and yields its answers with their provenance,
// in deterministic order. The sequence yields (zero, err) exactly once if
// the query is malformed (ErrInvalidQuery), the context ends
// (ctx.Err()), or the system is closed (ErrClosed); breaking out of the
// range loop simply stops. Each range over the sequence re-evaluates the
// query against the then-current instance.
func (q *Query) Stream() iter.Seq2[Answer, error] {
	return func(yield func(Answer, error) bool) {
		if q.err != nil {
			yield(Answer{}, &taggedError{sentinel: ErrInvalidQuery, err: q.err})
			return
		}
		if q.peer.sys.ctx.Err() != nil {
			yield(Answer{}, ErrClosed)
			return
		}
		answers, err := q.peer.core.QueryGoal(q.ctx, q.gq)
		if err != nil {
			yield(Answer{}, wrapErr(err))
			return
		}
		for _, a := range answers {
			if !yield(a, nil) {
				return
			}
		}
	}
}

// All evaluates the query and collects every answer.
func (q *Query) All() ([]Answer, error) {
	var out []Answer
	for a, err := range q.Stream() {
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}
