GO ?= go

.PHONY: build test race vet fmt fmt-check lint vuln bench bench-smoke bench-query bench-publish bench-sweep bench-baseline bench-compare bench-overhead endpoint-smoke memprofile examples-check recovery-check recovery-scaling ci

## build: compile every package
build:
	$(GO) build ./...

## test: the tier-1 gate — build plus the full test suite
test: build
	$(GO) test ./...

## race: full test suite under the race detector (exercises the parallel
## stratum executor; see internal/datalog), with shuffled test order so
## hidden inter-test state dependencies cannot hide
race:
	$(GO) test -race -shuffle=on ./...

## vet: static analysis
vet:
	$(GO) vet ./...

## fmt: rewrite all files with gofmt
fmt:
	gofmt -w .

## fmt-check: fail if any file needs gofmt (mirrors the CI step)
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## lint: staticcheck over every package (mirrors the CI lint job; locally
## requires staticcheck on PATH:
## go install honnef.co/go/tools/cmd/staticcheck@2024.1.1)
lint:
	@command -v staticcheck >/dev/null 2>&1 || { \
		echo "lint: staticcheck not on PATH; install with:"; \
		echo "  go install honnef.co/go/tools/cmd/staticcheck@2024.1.1"; exit 1; }
	staticcheck ./...

## vuln: govulncheck over every package (mirrors the CI vuln job; locally
## requires govulncheck on PATH:
## go install golang.org/x/vuln/cmd/govulncheck@latest)
vuln:
	@command -v govulncheck >/dev/null 2>&1 || { \
		echo "vuln: govulncheck not on PATH; install with:"; \
		echo "  go install golang.org/x/vuln/cmd/govulncheck@latest"; exit 1; }
	govulncheck ./...

## bench: full benchmark run with allocation profiles
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

## bench-smoke: every benchmark in every package executes exactly once —
## keeps the root bench files and the internal benchmarks (e.g.
## internal/datalog) compiling and running in CI
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

## bench-query: goal-directed vs full-fixpoint query benchmarks (the
## magic-sets acceptance pair; see internal/datalog/magic)
bench-query:
	$(GO) test -bench 'BenchmarkQuery(GoalDirected|FullFixpoint)' -benchmem -run '^$$' .

## bench-publish: group-commit publication benchmarks (the E9 acceptance
## pair; sequential per-publish reconcile vs coalesced batch — DESIGN.md §8).
## BENCHTIME is tunable so the CI smoke can run it at 1x.
BENCHTIME ?= 10x
bench-publish:
	$(GO) test -bench 'BenchmarkPublishBatch' -benchtime=$(BENCHTIME) -benchmem -run '^$$' .

## bench-sweep: the multi-core worker sweep — parallel stratum benchmarks
## across -cpu values with a speedup-ratio summary (tunable: CPUS=1,2,4
## BENCHTIME=3x; pass an argument file via the script to keep raw output)
bench-sweep:
	./scripts/bench_sweep.sh

## bench-baseline: regenerate the committed BENCH_baseline.json snapshot
bench-baseline:
	./scripts/bench_baseline.sh > BENCH_baseline.json
	@echo wrote BENCH_baseline.json

## bench-compare: diff a fresh benchmark run against BENCH_baseline.json —
## ns/op, B/op, and allocs/op are all gated (tunable: TOLERANCE=6.0
## MEM_TOLERANCE=2.0 BENCHTIME=1x)
bench-compare:
	./scripts/bench_compare.sh

## bench-overhead: the instrumentation-overhead gate — the E2/E4/E10
## workload shapes with the evaluator stats sink off vs on, best-of-COUNT
## ns/op, failing past OVERHEAD_TOLERANCE percent (tunable:
## OVERHEAD_TOLERANCE=3 BENCHTIME=50x COUNT=7; see DESIGN.md §12)
bench-overhead:
	./scripts/bench_overhead.sh

## endpoint-smoke: start a real orchestra node with -metrics-addr,
## publish through the REPL, and scrape /debug/orchestra (JSON),
## /debug/orchestra/metrics (Prometheus text), and /debug/pprof/
endpoint-smoke:
	./scripts/endpoint_smoke.sh

## memprofile: heap profiles for the two memory-heaviest workloads — E2
## incremental maintenance (mem_e2.out) and the E10 parallel stratum under
## the adaptive worker gate (mem_e10.out). Inspect with
##   go tool pprof -top -sample_index=alloc_space mem_e10.out
## (alloc_space shows cumulative allocation, the column the streaming
## evaluator targets; inuse_space shows the live fixpoint). See README
## "Measuring memory".
memprofile:
	$(GO) test -bench 'BenchmarkE2IncrementalVsFull/incremental-delta4' -benchtime=5x -benchmem -memprofile mem_e2.out -run '^$$' .
	$(GO) test -bench 'BenchmarkParallelStratum/workers=adaptive' -benchtime=3x -benchmem -memprofile mem_e10.out -run '^$$' .
	@echo "wrote mem_e2.out and mem_e10.out; inspect with: go tool pprof -top -sample_index=alloc_space mem_e2.out"

## recovery-check: the storage fault-injection gate, under the race
## detector — WAL and store-log randomized cut harnesses (torn tails,
## mid-log corruption), kill-and-restart peer recovery, checkpoint
## equivalence, and the public-API durable round trip (DESIGN.md §11)
recovery-check:
	$(GO) test -race \
		-run 'Crash|Recovery|Recover|TornTail|Unterminated|CorruptLog|Durable|Checkpoint|BatchAtomicityAcrossReopen|WAL' \
		./internal/lsm/ ./internal/p2p/ ./internal/core/ .
	@echo recovery gate OK

## recovery-scaling: the O(suffix) recovery gate — BenchmarkRecovery at a
## small and a large transaction history, asserting from-checkpoint beats
## full replay by at least 5x at the large one and that the gap widens as
## the history grows (DESIGN.md §13). Tunables: SMALL LARGE BENCHTIME
## COUNT MIN_SPEEDUP.
recovery-scaling:
	sh scripts/recovery_scaling.sh

## examples-check: build every example and golden-check quickstart's output,
## so API drift that breaks user-facing examples fails the gate
examples-check:
	$(GO) build ./examples/...
	$(GO) run ./examples/quickstart | diff -u examples/quickstart/golden.txt -
	@echo examples OK

## ci: everything the CI workflow runs, in one command (lint and vuln are
## separate because they need tools on PATH; run `make lint vuln` too when
## you have them installed)
ci: build vet fmt-check race bench-smoke bench-compare bench-overhead recovery-check recovery-scaling examples-check endpoint-smoke
