GO ?= go

.PHONY: build test race vet fmt fmt-check bench bench-smoke bench-query bench-publish bench-baseline bench-compare examples-check ci

## build: compile every package
build:
	$(GO) build ./...

## test: the tier-1 gate — build plus the full test suite
test: build
	$(GO) test ./...

## race: full test suite under the race detector (exercises the parallel
## stratum executor; see internal/datalog), with shuffled test order so
## hidden inter-test state dependencies cannot hide
race:
	$(GO) test -race -shuffle=on ./...

## vet: static analysis
vet:
	$(GO) vet ./...

## fmt: rewrite all files with gofmt
fmt:
	gofmt -w .

## fmt-check: fail if any file needs gofmt (mirrors the CI step)
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## bench: full benchmark run with allocation profiles
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

## bench-smoke: every benchmark executes exactly once — keeps bench_test.go
## and micro_bench_test.go compiling and running in CI
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

## bench-query: goal-directed vs full-fixpoint query benchmarks (the
## magic-sets acceptance pair; see internal/datalog/magic)
bench-query:
	$(GO) test -bench 'BenchmarkQuery(GoalDirected|FullFixpoint)' -benchmem -run '^$$' .

## bench-publish: group-commit publication benchmarks (the E9 acceptance
## pair; sequential per-publish reconcile vs coalesced batch — DESIGN.md §8).
## BENCHTIME is tunable so the CI smoke can run it at 1x.
BENCHTIME ?= 10x
bench-publish:
	$(GO) test -bench 'BenchmarkPublishBatch' -benchtime=$(BENCHTIME) -benchmem -run '^$$' .

## bench-baseline: regenerate the committed BENCH_baseline.json snapshot
bench-baseline:
	./scripts/bench_baseline.sh > BENCH_baseline.json
	@echo wrote BENCH_baseline.json

## bench-compare: diff a fresh benchmark run against BENCH_baseline.json
## (tunable: TOLERANCE=6.0 BENCHTIME=1x)
bench-compare:
	./scripts/bench_compare.sh

## examples-check: build every example and golden-check quickstart's output,
## so API drift that breaks user-facing examples fails the gate
examples-check:
	$(GO) build ./examples/...
	$(GO) run ./examples/quickstart | diff -u examples/quickstart/golden.txt -
	@echo examples OK

## ci: everything the CI workflow runs, in one command
ci: build vet fmt-check race bench-smoke examples-check
