module orchestra

go 1.22
