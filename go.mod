module orchestra

go 1.23
