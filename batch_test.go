package orchestra_test

import (
	"context"
	"fmt"
	"testing"

	"orchestra"
)

// triSchema is a three-peer identity confederation: alice and bob publish,
// carol receives from both.
func triSchema(t testing.TB) *orchestra.Schema {
	t.Helper()
	genes := orchestra.NewPeerSchema("genes")
	genes.MustAddRelation(orchestra.MustRelation("Gene",
		[]orchestra.Attribute{
			{Name: "name", Type: orchestra.KindString},
			{Name: "chromosome", Type: orchestra.KindInt},
		}, "name"))
	return orchestra.NewSchema().
		Peer("alice", genes).
		Peer("bob", genes).
		Peer("carol", genes).
		Identity("M_ac", "alice", "carol").
		Identity("M_bc", "bob", "carol")
}

func openTri(t testing.TB) (*orchestra.System, *orchestra.Peer, *orchestra.Peer, *orchestra.Peer) {
	t.Helper()
	// Unbounded witness sets: batched and sequential reconciliation are
	// identical exactly when MaxMonomials truncation does not bind.
	sys, err := orchestra.Open(triSchema(t), orchestra.WithMaxMonomials(-1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	alice, err := sys.Peer("alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := sys.Peer("bob")
	if err != nil {
		t.Fatal(err)
	}
	carol, err := sys.Peer("carol")
	if err != nil {
		t.Fatal(err)
	}
	return sys, alice, bob, carol
}

// runBurst commits n transactions at each of alice and bob, then publishes
// and drains them to carol either one publish+reconcile round per
// transaction (sequential) or as one coalesced burst (grouped), returning
// the change stream carol's subscription observed.
func runBurst(t *testing.T, n int, grouped bool) []orchestra.Change {
	t.Helper()
	ctx := context.Background()
	_, alice, bob, carol := openTri(t)

	var got []orchestra.Change
	done := make(chan struct{})
	subCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	want := 2 * n // one derived insert at carol per published transaction
	// Subscribe registers before the first publish; the goroutine only
	// consumes.
	stream := carol.Subscribe(subCtx, orchestra.WithoutAutoReconcile())
	go func() {
		defer close(done)
		for c, err := range stream {
			if err != nil {
				return
			}
			got = append(got, c)
			if len(got) == want {
				return
			}
		}
	}()

	commit := func(p *orchestra.Peer, name string, i int) {
		t.Helper()
		if _, err := p.Begin().Insert("Gene", gene(fmt.Sprintf("%s%03d", name, i), int64(i))).Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if grouped {
		for i := 0; i < n; i++ {
			commit(alice, "A", i)
		}
		for i := 0; i < n; i++ {
			commit(bob, "B", i)
		}
		if _, published, err := alice.PublishAll(ctx); err != nil || published != n {
			t.Fatalf("alice.PublishAll = %d, %v; want %d", published, err, n)
		}
		if _, published, err := bob.PublishAll(ctx); err != nil || published != n {
			t.Fatalf("bob.PublishAll = %d, %v; want %d", published, err, n)
		}
		if _, err := carol.Reconcile(ctx); err != nil {
			t.Fatal(err)
		}
	} else {
		for i := 0; i < n; i++ {
			commit(alice, "A", i)
			if _, err := alice.Publish(ctx); err != nil {
				t.Fatal(err)
			}
			if _, err := carol.Reconcile(ctx); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < n; i++ {
			commit(bob, "B", i)
			if _, err := bob.Publish(ctx); err != nil {
				t.Fatal(err)
			}
			if _, err := carol.Reconcile(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	<-done
	return got
}

// A publication burst drained through one group-committed Reconcile must
// feed subscribers exactly the change stream per-transaction reconciliation
// does: same transactions, same tuples, same provenance. (Epochs differ by
// construction — coalescing archives many transactions per epoch — so they
// are not compared.)
func TestSubscriptionStreamEquivalenceGroupedReconcile(t *testing.T) {
	const n = 8
	seq := runBurst(t, n, false)
	bat := runBurst(t, n, true)
	if len(seq) != len(bat) {
		t.Fatalf("stream lengths differ: sequential %d vs grouped %d", len(seq), len(bat))
	}
	for i := range seq {
		s, g := seq[i], bat[i]
		if s.Txn != g.Txn || s.Local != g.Local || s.Rel != g.Rel || s.Op != g.Op {
			t.Fatalf("change %d differs:\n sequential=%+v\n grouped=%+v", i, s, g)
		}
		tupEq := func(a, b orchestra.Tuple) bool {
			if (a == nil) != (b == nil) {
				return false
			}
			return a == nil || a.Equal(b)
		}
		if !tupEq(s.Old, g.Old) || !tupEq(s.New, g.New) {
			t.Fatalf("change %d tuples differ:\n sequential=%+v\n grouped=%+v", i, s, g)
		}
		if !s.Prov.Equal(g.Prov) {
			t.Fatalf("change %d provenance differs:\n sequential=%v\n grouped=%v", i, s.Prov, g.Prov)
		}
	}
}

// ReconcileAll drains every open peer in one call, group-committing each
// peer's backlog.
func TestReconcileAllDrainsBurst(t *testing.T) {
	ctx := context.Background()
	sys, alice, bob, carol := openTri(t)
	const n = 5
	for i := 0; i < n; i++ {
		if _, err := alice.Begin().Insert("Gene", gene(fmt.Sprintf("A%03d", i), int64(i))).Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if _, published, err := alice.PublishAll(ctx); err != nil || published != n {
		t.Fatalf("PublishAll = %d, %v; want %d", published, err, n)
	}
	reports, err := sys.ReconcileAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports for %d peers, want 3: %v", len(reports), reports)
	}
	if rep := reports["carol"]; rep == nil || len(rep.Accepted) != n {
		t.Fatalf("carol accepted %v, want %d transactions", reports["carol"], n)
	}
	for _, p := range []*orchestra.Peer{bob, carol} {
		rows, err := p.Rows("Gene")
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 0 && p == bob {
			t.Fatalf("bob should not receive alice's data (no mapping): %v", rows)
		}
		if p == carol && len(rows) != n {
			t.Fatalf("carol rows = %d, want %d", len(rows), n)
		}
	}
	// A second ReconcileAll is a no-op.
	reports, err = sys.ReconcileAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep := reports["carol"]; rep == nil || len(rep.Accepted) != 0 {
		t.Fatalf("second reconcile accepted %v, want none", reports["carol"])
	}
}
