package orchestra

import "time"

// Option tunes Open (system-wide defaults) and System.Peer (per-peer
// overrides). Options replace the exported configuration structs the
// internal layers use; the zero configuration is always valid.
type Option func(*settings)

// settings is the resolved option set. A peer starts from the system's
// settings and applies its own options on top.
type settings struct {
	parallelism     int
	maxMonomials    int
	reconcileWindow int
	provenance      bool
	store           Store
	policy          *TrustPolicy
	strict          bool
	durableDir      string
	metrics         bool
	slowOp          time.Duration
}

func defaultSettings() settings {
	return settings{provenance: true, metrics: true}
}

func (s settings) apply(opts []Option) settings {
	for _, o := range opts {
		o(&s)
	}
	return s
}

// WithParallelism bounds the worker pool evaluating independent mapping
// rules within a fixpoint round. 0 (the default) adapts: each round picks
// a worker count from its delta size and the CPU count, falling back to
// sequential evaluation when the round is too small to amortize fan-out.
// n > 1 forces n workers; 1 or negative forces sequential evaluation.
// Results are byte-identical at every setting.
func WithParallelism(n int) Option { return func(s *settings) { s.parallelism = n } }

// WithReconcileWindow bounds how many fetched transactions one Reconcile
// feeds through a single group-committed translation fixpoint. 0 (the
// default) sizes windows adaptively from the observed backlog and drain
// latency; n > 0 pins the window to n transactions; negative translates
// the whole backlog as one batch. Results are identical at every setting —
// the window only trades peak memory and time-to-first-change against
// per-batch amortization.
func WithReconcileWindow(n int) Option { return func(s *settings) { s.reconcileWindow = n } }

// WithMaxMonomials bounds each tuple's provenance witness set. 0 (the
// default) keeps the engine default (8); negative removes the bound, at
// combinatorial cost on dense mapping graphs.
func WithMaxMonomials(n int) Option { return func(s *settings) { s.maxMonomials = n } }

// WithProvenance toggles provenance on query answers, subscription changes,
// and Explain (default true). Update exchange itself always maintains
// provenance internally — deletion propagation and provenance-based trust
// are impossible without it — so disabling this only strips annotations
// from what the API hands back.
func WithProvenance(enabled bool) Option { return func(s *settings) { s.provenance = enabled } }

// WithStore selects the published-update store the confederation shares
// (default: a fresh in-process store). System-level; ignored on System.Peer.
func WithStore(st Store) Option { return func(s *settings) { s.store = st } }

// WithDurableDir puts the system on the durable LSM tier rooted at dir:
// the published-transaction archive lives in a log-structured store
// (checksummed WAL, sorted checkpointed SSTables) instead of process
// memory, every Publish group-commits its batch as one fsynced WAL record,
// and peers checkpoint their local instances into the same database —
// automatically after each successful publish, or on demand with
// Peer.Checkpoint. System.Peer then recovers each peer from its last
// checkpoint plus the published suffix, so a process crash loses at most
// the local commits made after the last checkpoint or publish. Mutually
// exclusive with WithStore (the durable tier IS the store); system-level,
// ignored on System.Peer. System.Close checkpoints every open peer and
// releases the database.
func WithDurableDir(dir string) Option { return func(s *settings) { s.durableDir = dir } }

// WithTrustPolicy sets the trust policy — at Open, the default for every
// peer; at System.Peer, that peer's policy. It overrides any policy the
// parsed schema text declared for the peer. Default: trust everything at
// priority 1.
func WithTrustPolicy(p *TrustPolicy) Option { return func(s *settings) { s.policy = p } }

// WithStrictConflicts makes Reconcile fail with ErrConflictPending when a
// round defers transactions for manual resolution, instead of reporting
// them and succeeding. Pipelines that must not proceed past unresolved
// disagreement set this; interactive peers usually keep the default.
func WithStrictConflicts() Option { return func(s *settings) { s.strict = true } }

// WithMetrics toggles the system's observability layer (default true): the
// metrics registry behind System.Metrics and System.DebugHandler, operation
// span tracing, and the layer counters fed by lsm/exchange/datalog/core.
// Disabling it reduces instrumentation to nil checks on hot paths — the
// overhead benchmark gate in CI holds the enabled path within a few percent
// of this disabled baseline. System-level; ignored on System.Peer.
func WithMetrics(enabled bool) Option { return func(s *settings) { s.metrics = enabled } }

// WithSlowOpThreshold makes every publish, reconcile, checkpoint, or query
// slower than d emit one structured warning through log/slog (op, peer,
// duration). 0 (the default) disables slow-op logging. Requires metrics to
// be enabled. At Open it sets the default for every peer; at System.Peer it
// overrides for that peer.
func WithSlowOpThreshold(d time.Duration) Option { return func(s *settings) { s.slowOp = d } }
