package orchestra_test

// Durable-tier benchmarks. BenchmarkDurablePublish prices the write path:
// one group-committed Publish of an N-transaction burst through the LSM
// archive (one WAL record, one fsync per batch), against the same burst on
// the in-memory store — the fsync is the cost of durability, the batching
// is what amortizes it. BenchmarkRecovery prices the read path: bringing a
// crashed peer back from its checkpoint plus the published suffix, the
// startup cost WithDurableDir adds over an empty open.

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/exchange"
	"orchestra/internal/lsm"
	"orchestra/internal/p2p"
	"orchestra/internal/recon"
	"orchestra/internal/workload"
)

const durableBurst = 32

func benchPublishBurst(b *testing.B, store p2p.Store) {
	topo := workload.Chain(2)
	sys, err := core.NewSystem(topo.Peers, topo.Mappings)
	if err != nil {
		b.Fatal(err)
	}
	pub, err := core.NewPeer(topo.Names[0], sys, store, recon.TrustAll(1))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	key := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < durableBurst; j++ {
			if _, err := pub.NewTransaction().
				Insert("S", workload.STuple(key, key, workload.Sequence(key, key))).
				Commit(); err != nil {
				b.Fatal(err)
			}
			key++
		}
		// One Publish archives the whole burst: on the durable store that
		// is one atomic WAL record and one fsync.
		if _, err := pub.Publish(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDurablePublish(b *testing.B) {
	b.Run("memory", func(b *testing.B) {
		benchPublishBurst(b, p2p.NewMemoryStore())
	})
	b.Run("lsm", func(b *testing.B) {
		db, err := lsm.Open(b.TempDir(), lsm.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		ds, err := p2p.NewDurableStore(db)
		if err != nil {
			b.Fatal(err)
		}
		benchPublishBurst(b, ds)
	})
}

// BenchmarkRecovery: recover a peer whose checkpoint covers all but a fixed
// two-epoch suffix of the published history, versus recovering from the
// archive alone (no checkpoint — full replay). The gap is what the engine
// snapshot buys: the restore-then-suffix path scales with the suffix, the
// replay path with the whole history. ORCH_RECOVERY_TXNS sets the total
// transaction count (default 256; scripts/recovery_scaling.sh sweeps it to
// assert the scaling split holds as the history grows).
func BenchmarkRecovery(b *testing.B) {
	total := 256
	if s := os.Getenv("ORCH_RECOVERY_TXNS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 4*durableBurst {
			b.Fatalf("ORCH_RECOVERY_TXNS=%q: want an integer >= %d", s, 4*durableBurst)
		}
		total = n
	}
	epochs := total / durableBurst
	for _, withCheckpoint := range []bool{true, false} {
		name := "from-checkpoint"
		if !withCheckpoint {
			name = "full-replay"
		}
		b.Run(name, func(b *testing.B) {
			dir := b.TempDir()
			db, err := lsm.Open(dir, lsm.Options{})
			if err != nil {
				b.Fatal(err)
			}
			ds, err := p2p.NewDurableStore(db)
			if err != nil {
				b.Fatal(err)
			}
			// A three-peer chain: the subscriber sits two mapping hops from
			// the publisher, so full replay re-runs a multi-hop chase per
			// transaction — the translation work the engine snapshot spares.
			topo := workload.Chain(3)
			sys, err := core.NewSystem(topo.Peers, topo.Mappings)
			if err != nil {
				b.Fatal(err)
			}
			pub, err := core.NewPeer(topo.Names[0], sys, ds, recon.TrustAll(1))
			if err != nil {
				b.Fatal(err)
			}
			sub, err := core.NewPeer(topo.Names[len(topo.Names)-1], sys, ds, recon.TrustAll(1))
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			key := int64(0)
			for epoch := 0; epoch < epochs; epoch++ {
				// One epoch = a burst of single-insert transactions archived
				// by one Publish.
				for j := 0; j < durableBurst; j++ {
					if _, err := pub.NewTransaction().
						Insert("S", workload.STuple(key, key, fmt.Sprintf("SEQ-%d", key))).
						Commit(); err != nil {
						b.Fatal(err)
					}
					key++
				}
				if _, err := pub.Publish(ctx); err != nil {
					b.Fatal(err)
				}
				if _, err := sub.Reconcile(ctx); err != nil {
					b.Fatal(err)
				}
				// Checkpoint with two epochs still to come: the replay suffix
				// stays fixed no matter how long the history grows.
				if withCheckpoint && epoch == epochs-3 {
					if err := sub.SaveCheckpoint(db); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := core.RecoverPeerWith(ctx, topo.Names[len(topo.Names)-1], sys, ds, recon.TrustAll(1), exchange.Config{}, db)
				if err != nil {
					b.Fatal(err)
				}
				if p.Instance().Size() == 0 {
					b.Fatal("recovered empty")
				}
			}
			b.StopTimer()
			db.Close()
		})
	}
}
