package orchestra_test

// BenchmarkPublishBatch* quantify group-commit publication (E9): a
// 64-transaction burst from 3 publishing peers of a 6-peer distribution
// pipeline, drained to every peer. Sequential is the uncoalesced push-pump
// behavior — every Publish is reconciled by every peer before the next, so
// each of the 64 epochs pays a full fetch + translate + reconcile round at
// all 6 peers. Grouped coalesces the burst: publishers archive their
// backlog with one Publish each, and every peer drains the whole burst in
// one Reconcile, whose insert-only run translates through a single seeded
// semi-naive fixpoint (exchange.Engine.ApplyAll) with per-transaction
// provenance attribution. The engine-level Apply-vs-ApplyAll split across
// topologies is experiment E9 in cmd/orchestra-bench.

import (
	"context"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/p2p"
	"orchestra/internal/recon"
	"orchestra/internal/workload"
)

const (
	publishBurstTxns  = 64
	publishBurstPeers = 3
)

type burstBench struct {
	peers map[string]*core.Peer
	names []string
}

func newBurstBench(b *testing.B) *burstBench {
	b.Helper()
	topo := workload.Pipeline(6)
	sys, err := core.NewSystem(topo.Peers, topo.Mappings)
	if err != nil {
		b.Fatal(err)
	}
	store := p2p.NewMemoryStore()
	bb := &burstBench{peers: map[string]*core.Peer{}, names: topo.Names}
	for _, n := range topo.Names {
		p, err := core.NewPeer(n, sys, store, recon.TrustAll(1))
		if err != nil {
			b.Fatal(err)
		}
		bb.peers[n] = p
	}
	return bb
}

func (bb *burstBench) commit(b *testing.B, i int, key int64) *core.Peer {
	b.Helper()
	p := bb.peers[bb.names[i%publishBurstPeers]]
	if _, err := p.NewTransaction().
		Insert("S", workload.STuple(key, key, workload.Sequence(key, key))).
		Commit(); err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkPublishBatchSequential(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		bb := newBurstBench(b)
		b.StartTimer()
		for t := 0; t < publishBurstTxns; t++ {
			p := bb.commit(b, t, int64(1<<30)+int64(t))
			if _, err := p.Publish(ctx); err != nil {
				b.Fatal(err)
			}
			for _, n := range bb.names {
				if _, err := bb.peers[n].Reconcile(ctx); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func BenchmarkPublishBatchGrouped(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		bb := newBurstBench(b)
		b.StartTimer()
		for t := 0; t < publishBurstTxns; t++ {
			bb.commit(b, t, int64(1<<30)+int64(t))
		}
		for t := 0; t < publishBurstPeers; t++ {
			if _, _, err := bb.peers[bb.names[t]].PublishAll(ctx); err != nil {
				b.Fatal(err)
			}
		}
		for _, n := range bb.names {
			if _, err := bb.peers[n].Reconcile(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
}
