package orchestra_test

// Public-API durability: a confederation opened with WithDurableDir
// survives the whole process dying — peers come back from their
// checkpoints plus the published archive, with exactly the documented loss
// window (local commits made after the last checkpoint or publish).

import (
	"context"
	"testing"

	"orchestra"
)

func TestDurableSystemSurvivesRestart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	sys, err := orchestra.Open(geneSchema(t), orchestra.WithDurableDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	alice, err := sys.Peer("alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := sys.Peer("bob")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Begin().Insert("Gene", gene("BRCA1", 17)).Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Publish(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Reconcile(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Begin().Insert("Gene", gene("TP53", 17)).Commit(); err != nil {
		t.Fatal(err)
	}
	// TP53 is committed but unpublished; Close checkpoints it.
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// The process "restarts": a fresh System over the same directory.
	sys2, err := orchestra.Open(geneSchema(t), orchestra.WithDurableDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	alice2, err := sys2.Peer("alice")
	if err != nil {
		t.Fatal(err)
	}
	bob2, err := sys2.Peer("bob")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := alice2.Rows("Gene")
	if err != nil || len(rows) != 1 {
		t.Fatalf("alice recovered %d rows (%v), want 1", len(rows), err)
	}
	rows, err = bob2.Rows("Gene")
	if err != nil || len(rows) != 2 {
		t.Fatalf("bob recovered %d rows (%v), want 2 (one published, one queued)", len(rows), err)
	}
	// The queued commit is still queued: publishing it now propagates it.
	epoch, n, err := bob2.PublishAll(ctx)
	if err != nil || n != 1 {
		t.Fatalf("publish recovered queue: epoch %d, %d txns, %v", epoch, n, err)
	}
	if _, err := alice2.Reconcile(ctx); err != nil {
		t.Fatal(err)
	}
	rows, err = alice2.Rows("Gene")
	if err != nil || len(rows) != 2 {
		t.Fatalf("alice after catch-up: %d rows (%v)", len(rows), err)
	}
	// Provenance survives the round trip through the checkpoint codec.
	if prov, _, ok := alice2.Explain("Gene", gene("BRCA1", 17)); !ok || prov.IsZero() {
		t.Errorf("provenance lost in recovery: ok=%v prov=%v", ok, prov)
	}
	// Sequence numbers resume: a fresh commit+publish does not collide with
	// the archived history.
	if _, err := bob2.Begin().Insert("Gene", gene("EGFR", 7)).Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := bob2.Publish(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestDurableDirExcludesWithStore(t *testing.T) {
	_, err := orchestra.Open(geneSchema(t),
		orchestra.WithDurableDir(t.TempDir()),
		orchestra.WithStore(orchestra.NewMemoryStore()))
	if err == nil {
		t.Fatal("WithDurableDir + WithStore accepted")
	}
}

func TestCheckpointOnDemandAndOnMemorySystems(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	sys, err := orchestra.Open(geneSchema(t), orchestra.WithDurableDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	alice, err := sys.Peer("alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Begin().Insert("Gene", gene("MYC", 8)).Commit(); err != nil {
		t.Fatal(err)
	}
	// Explicit checkpoint (no publish): bounds the crash-loss window.
	if err := alice.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	sys2, err := orchestra.Open(geneSchema(t), orchestra.WithDurableDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	alice2, err := sys2.Peer("alice")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := alice2.Rows("Gene")
	if err != nil || len(rows) != 1 {
		t.Fatalf("checkpointed commit lost: %d rows, %v", len(rows), err)
	}
	if _, err := alice2.Publish(ctx); err != nil {
		t.Fatal(err)
	}

	// In-memory systems reject Checkpoint with a clear error.
	memSys, memAlice, _ := openGenes(t)
	_ = memSys
	if err := memAlice.Checkpoint(); err == nil {
		t.Error("Checkpoint on an in-memory system accepted")
	}
}
