package orchestra

import (
	"encoding/json"
	"net/http"

	"orchestra/internal/datalog"
	"orchestra/internal/obs"
)

// Observability surface of the SDK. The system owns one metrics registry
// (enabled by default; WithMetrics(false) turns it off) that every layer
// records into: the LSM tier (WAL fsync latency, flushes, compactions,
// bloom-filter hit rate), the published archive (batch sizes and bytes), the
// exchange layer (group-commit window sizes, per-transaction drain latency,
// the adaptive controller's EWMA), the datalog evaluator (via the shared
// EvalStats, folded into every snapshot), and the core operations
// (publish/reconcile/checkpoint/query spans with parent/child timing).
//
// Three ways to read it: System.Metrics returns a point-in-time
// MetricsSnapshot for programmatic use; System.DebugHandler serves the same
// snapshot as JSON and Prometheus text over HTTP (cmd/orchestra mounts it,
// with net/http/pprof, under -metrics-addr); and orchestra-bench -metrics
// prints per-experiment snapshot deltas.

// HistogramSnapshot is a point-in-time view of one latency/size histogram:
// count, sum, min/max, p50/p95/p99, and the non-empty log2 buckets.
// Quantiles report bucket upper bounds (powers of two) — exact when the
// observed values are powers of two, otherwise at most a 2x overestimate.
type HistogramSnapshot = obs.HistogramSnapshot

// SpanRecord is one completed traced operation: name, optional peer label,
// start time, duration, and parent linkage for nested spans (a reconcile's
// per-window drains link to their reconcile).
type SpanRecord = obs.SpanRecord

// EvalCounters is the datalog evaluator's cumulative counters, folded out of
// the engine-shared EvalStats so callers no longer reach into
// internal/datalog for them. All counts accumulate over the system's
// lifetime, across every peer's reconciliations and queries.
type EvalCounters struct {
	// Probes counts index-bucket probes; PushdownProbes the subset whose key
	// carried at least one pushed-down filter column.
	Probes         int64 `json:"probes"`
	PushdownProbes int64 `json:"pushdown_probes"`
	// Candidates counts join results reaching head unification; Emitted the
	// tuples actually derived; Suppressed the emissions vetoed by the
	// pre-merge subsumption check.
	Candidates int64 `json:"candidates"`
	Emitted    int64 `json:"emitted"`
	Suppressed int64 `json:"suppressed"`
	// HashJoinBuilds counts transient hash tables built over delta extents.
	HashJoinBuilds int64 `json:"hash_join_builds"`
	// Rounds counts fixpoint rounds; ParallelRounds the subset that fanned
	// out to more than one worker; WorkersUsed sums per-round worker counts
	// (WorkersUsed/Rounds is mean utilization).
	Rounds         int64 `json:"rounds"`
	ParallelRounds int64 `json:"parallel_rounds"`
	WorkersUsed    int64 `json:"workers_used"`
	// PeakLive is the maximum number of intermediate emissions buffered at
	// any round barrier.
	PeakLive int64 `json:"peak_live"`
}

// PushdownRate returns the fraction of probes that carried a pushed-down
// filter column (0 when no probes ran).
func (e EvalCounters) PushdownRate() float64 {
	if e.Probes == 0 {
		return 0
	}
	return float64(e.PushdownProbes) / float64(e.Probes)
}

// MetricsSnapshot is one consistent-enough view of the system's metrics:
// counters and gauges read atomically per metric, histograms per bucket.
// Concurrent operations may land between reads of different metrics, but
// every individual series is a true point-in-time value, and deltas between
// two snapshots of the same system are exact.
type MetricsSnapshot struct {
	// Counters holds every named monotonic counter (lsm_*, core_*, p2p_*,
	// datalog_* series; see DESIGN.md §12 for the inventory).
	Counters map[string]int64 `json:"counters"`
	// Gauges holds instantaneous values, e.g. exchange_window_pertxn_ns.
	Gauges map[string]int64 `json:"gauges"`
	// Histograms holds latency and size distributions, e.g. lsm_wal_fsync_ns
	// and the <span>_ns series fed by operation tracing.
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	// Spans lists the most recent completed operation spans, oldest first.
	Spans []SpanRecord `json:"spans,omitempty"`
	// Eval is the datalog evaluator's counter block.
	Eval EvalCounters `json:"eval"`
}

// evalCounters reads the shared EvalStats (zero value when metrics are off).
func (s *System) evalCounters() EvalCounters {
	st := s.stats
	if st == nil {
		return EvalCounters{}
	}
	return EvalCounters{
		Probes:         st.Probes.Load(),
		PushdownProbes: st.PushdownProbes.Load(),
		Candidates:     st.Candidates.Load(),
		Emitted:        st.Emitted.Load(),
		Suppressed:     st.Suppressed.Load(),
		HashJoinBuilds: st.HashJoinBuilds.Load(),
		Rounds:         st.Rounds.Load(),
		ParallelRounds: st.ParallelRounds.Load(),
		WorkersUsed:    st.WorkersUsed.Load(),
		PeakLive:       st.PeakLive.Load(),
	}
}

// obsSnapshot captures the registry and folds the evaluator counters into
// the counter map (datalog_* names), so the JSON and Prometheus renderings
// carry them without a side channel.
func (s *System) obsSnapshot() (*obs.Snapshot, EvalCounters) {
	snap := s.reg.Snapshot()
	ev := s.evalCounters()
	if s.stats != nil {
		snap.Counters["datalog_probes_total"] = ev.Probes
		snap.Counters["datalog_pushdown_probes_total"] = ev.PushdownProbes
		snap.Counters["datalog_candidates_total"] = ev.Candidates
		snap.Counters["datalog_emitted_total"] = ev.Emitted
		snap.Counters["datalog_suppressed_total"] = ev.Suppressed
		snap.Counters["datalog_hash_join_builds_total"] = ev.HashJoinBuilds
		snap.Counters["datalog_rounds_total"] = ev.Rounds
		snap.Counters["datalog_parallel_rounds_total"] = ev.ParallelRounds
		snap.Counters["datalog_workers_used_total"] = ev.WorkersUsed
		snap.Gauges["datalog_peak_live"] = ev.PeakLive
	}
	return snap, ev
}

// Metrics returns a snapshot of every metric the system has recorded.
// With WithMetrics(false) the snapshot is empty but non-nil, so callers can
// read it unconditionally.
func (s *System) Metrics() *MetricsSnapshot {
	snap, ev := s.obsSnapshot()
	return &MetricsSnapshot{
		Counters:   snap.Counters,
		Gauges:     snap.Gauges,
		Histograms: snap.Histograms,
		Spans:      snap.Spans,
		Eval:       ev,
	}
}

// DebugHandler returns the system's live introspection endpoint:
//
//	GET /debug/orchestra          the MetricsSnapshot as JSON
//	GET /debug/orchestra/metrics  Prometheus text exposition format
//
// The handler is stdlib-only and safe for concurrent use; mount it on any
// mux (cmd/orchestra node -metrics-addr serves it alongside net/http/pprof).
func (s *System) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/orchestra", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Metrics())
	})
	mux.HandleFunc("/debug/orchestra/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap, _ := s.obsSnapshot()
		obs.WriteProm(w, snap)
	})
	return mux
}

// newSystemObservability builds the registry and shared evaluator stats for
// an Open call (nil/nil when metrics are disabled).
func newSystemObservability(enabled bool) (*obs.Registry, *datalog.EvalStats) {
	if !enabled {
		return nil, nil
	}
	return obs.NewRegistry(), &datalog.EvalStats{}
}
