package orchestra

import (
	"orchestra/internal/core"
	"orchestra/internal/mapping"
	"orchestra/internal/p2p"
	"orchestra/internal/provenance"
	"orchestra/internal/recon"
	"orchestra/internal/schema"
	"orchestra/internal/updates"
)

// This file re-exports the value-level vocabulary of the SDK — values,
// tuples, relations, mappings, trust policies, transaction ids, and stores —
// so that programs drive the system through this package alone. The types
// are aliases: data built here flows into the internal layers without
// conversion, and internal results (reports, rows, provenance) can be
// consumed directly.

// Values and tuples.
type (
	// Value is a single attribute value.
	Value = schema.Value
	// Tuple is an ordered list of values.
	Tuple = schema.Tuple
	// Kind enumerates the runtime type of a Value.
	Kind = schema.Kind
)

// Value kinds.
const (
	KindString      = schema.KindString
	KindInt         = schema.KindInt
	KindFloat       = schema.KindFloat
	KindBool        = schema.KindBool
	KindLabeledNull = schema.KindLabeledNull
)

// String constructs a string Value.
func String(s string) Value { return schema.String(s) }

// Int constructs an integer Value.
func Int(i int64) Value { return schema.Int(i) }

// Float constructs a float Value.
func Float(f float64) Value { return schema.Float(f) }

// Bool constructs a boolean Value.
func Bool(b bool) Value { return schema.Bool(b) }

// NewTuple builds a tuple from values.
func NewTuple(vs ...Value) Tuple { return schema.NewTuple(vs...) }

// Relations and peer schemas.
type (
	// Attribute is one typed column of a relation.
	Attribute = schema.Attribute
	// Relation describes one relation: name, attributes, and key columns.
	Relation = schema.Relation
	// PeerSchema is the relational schema of a single peer.
	PeerSchema = schema.Schema
)

// NewPeerSchema creates an empty peer schema.
func NewPeerSchema(name string) *PeerSchema { return schema.NewSchema(name) }

// NewRelation builds a relation descriptor; key names must reference
// declared attributes.
func NewRelation(name string, attrs []Attribute, keyCols ...string) (*Relation, error) {
	return schema.NewRelation(name, attrs, keyCols...)
}

// MustRelation is NewRelation, panicking on error — for static schemas.
func MustRelation(name string, attrs []Attribute, keyCols ...string) *Relation {
	return schema.MustRelation(name, attrs, keyCols...)
}

// Mappings.

// Mapping is one declarative schema mapping (a tgd) between two peers.
type Mapping = mapping.Mapping

// IdentityMappings returns the mappings that copy every relation of s
// verbatim from the source peer to the target peer.
func IdentityMappings(id, source, target string, s *PeerSchema) []*Mapping {
	return mapping.Identity(id, source, target, s)
}

// Trust policies.
type (
	// TrustPolicy is a peer's trust policy: ordered conditions plus the
	// default priority for unmatched updates.
	TrustPolicy = recon.Policy
	// TrustCondition assigns a priority to updates a predicate matches.
	TrustCondition = recon.Condition
	// Status is the local disposition of a transaction after reconciliation.
	Status = recon.Status
)

// Distrusted is the priority that marks an update as not trusted.
const Distrusted = recon.Distrusted

// Reconciliation statuses.
const (
	StatusUnknown  = recon.StatusUnknown
	StatusPending  = recon.StatusPending
	StatusAccepted = recon.StatusAccepted
	StatusRejected = recon.StatusRejected
	StatusDeferred = recon.StatusDeferred
)

// TrustAll returns a policy that assigns every update the same priority.
func TrustAll(priority int) *TrustPolicy { return recon.TrustAll(priority) }

// FromPeer matches updates from transactions published by peer.
func FromPeer(peer string, priority int) TrustCondition { return recon.FromPeer(peer, priority) }

// OnRelation matches updates against a given local relation.
func OnRelation(rel string, priority int) TrustCondition { return recon.OnRelation(rel, priority) }

// TupleWhere matches updates whose target tuple satisfies pred.
func TupleWhere(rel string, pred func(Tuple) bool, priority int) TrustCondition {
	return recon.TupleWhere(rel, pred, priority)
}

// ThroughMapping matches updates whose provenance passes through the given
// mapping — trust by how data was assembled.
func ThroughMapping(mappingID string, priority int) TrustCondition {
	return recon.ThroughMapping(mappingID, priority)
}

// DerivedFromPeer matches updates whose provenance mentions a token minted
// by the given peer — trust by where data originated.
func DerivedFromPeer(peer string, priority int) TrustCondition {
	return recon.DerivedFromPeer(peer, priority)
}

// Transactions and updates.
type (
	// TxnID identifies a published transaction globally.
	TxnID = updates.TxnID
	// Transaction is an atomic group of updates published at one epoch.
	Transaction = updates.Transaction
	// Update is one tuple-level change against a relation.
	Update = updates.Update
	// Op is the kind of a tuple-level update.
	Op = updates.Op
)

// Update operations.
const (
	OpInsert = updates.OpInsert
	OpDelete = updates.OpDelete
	OpModify = updates.OpModify
)

// Provenance.
type (
	// Provenance is a provenance polynomial annotating a tuple.
	Provenance = provenance.Poly
	// Support is one alternative derivation of a tuple: contributing
	// transactions and the mappings the data passed through.
	Support = core.Support
)

// ReconcileReport summarizes one reconciliation round.
type ReconcileReport = core.ReconcileReport

// Stores. The published-update store is the archive every peer publishes to
// and reconciles from; it can live in process, on disk, or behind TCP
// replicas.
type (
	// Store is the published-transaction archive interface.
	Store = p2p.Store
	// StoreServer serves a Store over TCP.
	StoreServer = p2p.Server
	// FileStore is a Store durably backed by an append-only log file.
	FileStore = p2p.FileStore
	// WireTxn is the JSON wire form of a Transaction.
	WireTxn = p2p.WireTxn
)

// NewMemoryStore creates an empty in-process store.
func NewMemoryStore() *p2p.MemoryStore { return p2p.NewMemoryStore() }

// OpenFileStore opens (or creates) a durable store log at path.
func OpenFileStore(path string) (*FileStore, error) { return p2p.OpenFileStore(path) }

// NewStoreServer serves store over TCP at addr ("host:0" picks a port).
func NewStoreServer(store Store, addr string) (*StoreServer, error) {
	return p2p.NewServer(store, addr)
}

// DialStore returns a Store backed by a remote store replica.
func DialStore(addr string) Store { return p2p.NewClient(addr) }

// NewReplicatedStore fans publishes out to every replica and reads from the
// first live one.
func NewReplicatedStore(replicas ...Store) Store { return p2p.NewReplicatedStore(replicas...) }

// AntiEntropy merges the contents of two in-process stores, bringing a
// rejoined replica back in sync.
func AntiEntropy(a, b *p2p.MemoryStore) { p2p.AntiEntropy(a, b) }

// EncodeTxn converts a transaction to its JSON wire form (for inspection
// and log dumps).
func EncodeTxn(t *Transaction) WireTxn { return p2p.EncodeTxn(t) }
