package orchestra

import (
	"context"
	"fmt"
	"io"
	"sync"

	"orchestra/internal/core"
	"orchestra/internal/obs"
	"orchestra/internal/repl"
)

// Peer is the handle for one CDSS participant: local editing through
// transactions, publication, reconciliation under the peer's trust policy,
// read access to the local instance, and streaming change subscriptions.
// A Peer is safe for concurrent use.
type Peer struct {
	sys  *System
	name string
	core *core.Peer
	set  settings

	// mu guards the subscription set and pump state. Lock order: the
	// internal peer mutex (held by core callbacks) may acquire mu, so
	// methods holding mu must never call into p.core.
	mu          sync.Mutex
	subs        map[*subscription]struct{}
	pumpStarted bool
	wake        chan struct{}

	// Subscription-path metric handles, nil when metrics are disabled.
	subEvents *obs.Counter // subscribe_events_total
	pumpRuns  *obs.Counter // subscribe_pump_reconciles_total
}

// Name returns the peer's name.
func (p *Peer) Name() string { return p.name }

// Epoch returns the last store epoch this peer reconciled up to.
func (p *Peer) Epoch() uint64 { return p.core.Epoch() }

// Status returns the peer's disposition of a transaction.
func (p *Peer) Status(id TxnID) Status { return p.core.Status(id) }

// Relations lists the peer's relations in deterministic order.
func (p *Peer) Relations() []*Relation { return p.core.Instance().Schema().Relations() }

// Rows returns the tuples currently stored in the named relation, sorted.
// The read runs under the instance lock, so it is safe against concurrent
// commits and reconciliations (including the subscription pump's).
func (p *Peer) Rows(rel string) ([]Tuple, error) {
	rows, ok := p.core.Instance().Rows(rel)
	if !ok {
		return nil, &taggedError{sentinel: ErrUnknownRelation,
			err: fmt.Errorf("orchestra: peer %s has no relation %s", p.name, rel)}
	}
	out := make([]Tuple, len(rows))
	for i, r := range rows {
		out[i] = r.Tuple
	}
	return out, nil
}

// Explain returns the provenance of a stored tuple: the polynomial plus a
// per-derivation breakdown into supporting transactions and mappings. ok is
// false if the tuple is absent. With WithProvenance(false) the polynomial
// and supports are omitted (only presence is reported).
func (p *Peer) Explain(rel string, tu Tuple) (Provenance, []Support, bool) {
	prov, supports, ok := p.core.Explain(rel, tu)
	if !p.set.provenance {
		return Provenance{}, nil, ok
	}
	return prov, supports, ok
}

// Begin starts a local transaction. Updates accumulate and apply atomically
// at Commit; until then nothing is visible, locally or remotely.
func (p *Peer) Begin() *Txn { return &Txn{peer: p, inner: p.core.NewTransaction()} }

// Publish archives every committed-but-unpublished transaction in the
// shared store, advances the logical clock, refreshes the public snapshot,
// and pushes the new epoch to other peers' subscriptions.
func (p *Peer) Publish(ctx context.Context) (uint64, error) {
	epoch, _, err := p.PublishAll(ctx)
	return epoch, err
}

// PublishAll is Publish additionally reporting how many committed
// transactions were archived, so callers driving publication bursts can
// tell a no-op publish from a real one. The archived burst is translated as
// one group-committed batch when receiving peers reconcile (each run of
// insert-only transactions shares a single seeded fixpoint — see
// Peer.Reconcile).
func (p *Peer) PublishAll(ctx context.Context) (uint64, int, error) {
	if err := p.sys.ctx.Err(); err != nil {
		return 0, 0, ErrClosed
	}
	epoch, published, err := p.core.PublishAll(ctx)
	if err != nil {
		return 0, 0, wrapErr(err)
	}
	if published > 0 { // a no-op publish pushes nothing
		if p.sys.db != nil {
			// Ride the publish: the batch just became durable in the archive,
			// so checkpointing now pins the instance at this epoch and keeps
			// the recovery replay suffix short. The publish itself succeeded
			// even if the checkpoint fails — recovery would simply replay
			// from the previous checkpoint — so the epoch is still returned.
			if err := p.core.SaveCheckpoint(p.sys.db); err != nil {
				return epoch, published, fmt.Errorf("orchestra: checkpoint after publish at %s: %w", p.name, err)
			}
		}
		p.sys.notifyPublish(p)
	}
	return epoch, published, nil
}

// Checkpoint durably snapshots the peer's full state — instance rows with
// provenance, the translation-engine snapshot (union database, token
// bookkeeping, applied set), the trust state with every settled conflict,
// the dependency tracker, and the committed-but-unpublished transaction
// queue — into the system's LSM tier as one atomic fsynced batch. After a
// crash, System.Peer restores the snapshot and replays only the published
// suffix after the checkpoint epoch; local commits made after the last
// checkpoint or publish are the only thing a crash can lose. On a durable
// system checkpoints also happen automatically after every successful
// publish and at System.Close; call this to bound the loss window between
// publishes. Returns an error on in-memory systems.
func (p *Peer) Checkpoint() error {
	if p.sys.db == nil {
		return fmt.Errorf("orchestra: peer %s: Checkpoint requires a durable system (open with WithDurableDir)", p.name)
	}
	if err := p.sys.ctx.Err(); err != nil {
		return ErrClosed
	}
	if err := p.core.SaveCheckpoint(p.sys.db); err != nil {
		return wrapErr(err)
	}
	return nil
}

// SnapshotStats summarizes a peer's durable engine snapshot.
type SnapshotStats struct {
	// Preds, Facts, PolyNodes, and Vars describe the snapshot's union
	// database: predicates with encoded extents, total facts, distinct
	// interned provenance polynomials, and distinct provenance variables.
	Preds, Facts, PolyNodes, Vars int
	// Bytes is the full encoded snapshot size.
	Bytes int
	// Epoch is the store epoch the snapshot is valid at: recovery replays
	// only transactions published after it.
	Epoch uint64
}

// SnapshotStats reports the peer's durable engine snapshot without
// materializing it — what `orchestra inspect` dumps. ok is false when the
// peer has no snapshot yet (no checkpoint has run, or the last one found
// the engine unusable and skipped the snapshot). Returns an error on
// in-memory systems.
func (p *Peer) SnapshotStats() (stats SnapshotStats, ok bool, err error) {
	if p.sys.db == nil {
		return SnapshotStats{}, false, fmt.Errorf("orchestra: peer %s: SnapshotStats requires a durable system (open with WithDurableDir)", p.name)
	}
	st, epoch, ok, err := core.EngineSnapshotStats(p.sys.db, p.name)
	if err != nil || !ok {
		return SnapshotStats{}, false, wrapErr(err)
	}
	return SnapshotStats{
		Preds: st.Preds, Facts: st.Facts, PolyNodes: st.PolyNodes, Vars: st.Vars,
		Bytes: st.Bytes, Epoch: epoch,
	}, true, nil
}

// Reconcile fetches newly published transactions, translates them into the
// local schema through the mappings (maintaining provenance), applies the
// trust policy, and applies the accepted transactions locally. The fetched
// batch group-commits in windows sized adaptively from observed drain
// latency (tunable with WithReconcileWindow): within a window, every run
// of insert-only transactions propagates through one seeded semi-naive
// fixpoint with per-transaction provenance attribution, so reconciling
// after a burst of publications costs far less
// than reconciling after each. The context bounds the translation
// fixpoints: an expired context returns before any local state changes, and
// a runaway recursive chase stops within one fixpoint iteration of the
// deadline.
//
// With WithStrictConflicts, a round that defers transactions for manual
// resolution returns the report alongside ErrConflictPending.
func (p *Peer) Reconcile(ctx context.Context) (*ReconcileReport, error) {
	if err := p.sys.ctx.Err(); err != nil {
		return nil, ErrClosed
	}
	report, err := p.core.Reconcile(ctx)
	if err != nil {
		return nil, wrapErr(err)
	}
	if p.set.strict && len(report.Deferred) > 0 {
		return report, &taggedError{sentinel: ErrConflictPending,
			err: fmt.Errorf("orchestra: reconcile at %s deferred %d transaction(s) awaiting resolution", p.name, len(report.Deferred))}
	}
	return report, nil
}

// Resolve settles a deferred conflict in favor of winner (the site
// administrator's decision) and applies the consequences. Resolving a
// transaction that is not deferred returns ErrConflictPending-tagged
// detail.
func (p *Peer) Resolve(ctx context.Context, winner TxnID) (*ReconcileReport, error) {
	if err := p.sys.ctx.Err(); err != nil {
		return nil, ErrClosed
	}
	report, err := p.core.Resolve(ctx, winner)
	if err != nil {
		return nil, wrapErr(err)
	}
	return report, nil
}

// RunREPL runs the interactive command loop (insert/delete/modify, publish,
// reconcile, query, explain, resolve) against this peer, reading commands
// from in and printing to out.
func (p *Peer) RunREPL(in io.Reader, out io.Writer) error {
	return repl.New(p.core, out).Run(in)
}

// poke nudges the peer's auto-reconcile pump without blocking.
func (p *Peer) poke() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// Txn is an in-progress local transaction against one peer.
type Txn struct {
	peer  *Peer
	inner *core.Txn
	done  bool
}

// Insert schedules an insertion. Inserting a tuple whose primary key is
// held by a different stored tuple fails Commit with ErrKeyViolation; use
// Modify to overwrite.
func (t *Txn) Insert(rel string, tu Tuple) *Txn {
	t.inner.Insert(rel, tu)
	return t
}

// Delete schedules a deletion of the exact tuple.
func (t *Txn) Delete(rel string, tu Tuple) *Txn {
	t.inner.Delete(rel, tu)
	return t
}

// Modify schedules replacing old with new (same primary key, or a declared
// key move).
func (t *Txn) Modify(rel string, old, new Tuple) *Txn {
	t.inner.Modify(rel, old, new)
	return t
}

// Commit validates the updates, applies them atomically to the local
// instance, and queues the transaction for the next Publish. On error
// nothing is applied. Committing (or aborting) twice returns ErrTxnFinished.
func (t *Txn) Commit() (TxnID, error) {
	if t.done {
		return TxnID{}, &taggedError{sentinel: ErrTxnFinished,
			err: fmt.Errorf("orchestra: commit on a finished transaction")}
	}
	t.done = true
	txn, err := t.inner.Commit()
	if err != nil {
		return TxnID{}, wrapErr(err)
	}
	return txn.ID, nil
}

// Abort discards the transaction.
func (t *Txn) Abort() {
	t.done = true
	t.inner.Abort()
}
