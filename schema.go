package orchestra

import (
	"fmt"
	"io"
	"strings"

	"orchestra/internal/config"
	"orchestra/internal/recon"
)

// Schema describes a confederation: the peers, their relational schemas,
// the mappings relating them, and optional per-peer trust policies. Build
// one with NewSchema and the chaining methods, or parse the textual
// configuration format with ParseSchema; then hand it to Open.
type Schema struct {
	peers      map[string]*PeerSchema
	mappings   []*Mapping
	identities []identitySpec
	policies   map[string]*TrustPolicy
	err        error
}

// identitySpec is a deferred IdentityMappings call: the source schema is
// resolved when Open assembles the system, so declaration order does not
// matter.
type identitySpec struct {
	id, source, target string
}

// NewSchema starts an empty confederation description.
func NewSchema() *Schema {
	return &Schema{
		peers:    map[string]*PeerSchema{},
		policies: map[string]*TrustPolicy{},
	}
}

// Peer declares a peer with its relational schema. Declaring the same name
// twice is an error (reported by Open).
func (s *Schema) Peer(name string, ps *PeerSchema) *Schema {
	if s.err == nil {
		if _, dup := s.peers[name]; dup {
			s.err = fmt.Errorf("orchestra: peer %s declared twice", name)
			return s
		}
		if ps == nil {
			s.err = fmt.Errorf("orchestra: peer %s has a nil schema", name)
			return s
		}
		s.peers[name] = ps
	}
	return s
}

// Mappings adds explicit schema mappings.
func (s *Schema) Mappings(ms ...*Mapping) *Schema {
	s.mappings = append(s.mappings, ms...)
	return s
}

// Identity declares identity mappings copying every relation of the source
// peer's schema to the target peer (which must share those relations).
func (s *Schema) Identity(id, source, target string) *Schema {
	s.identities = append(s.identities, identitySpec{id: id, source: source, target: target})
	return s
}

// Trust sets the peer's trust policy (overridable per peer at System.Peer).
func (s *Schema) Trust(peer string, p *TrustPolicy) *Schema {
	s.policies[peer] = p
	return s
}

// resolve flattens the builder into concrete peers, mappings, and policies.
func (s *Schema) resolve() (map[string]*PeerSchema, []*Mapping, map[string]*TrustPolicy, error) {
	if s.err != nil {
		return nil, nil, nil, s.err
	}
	ms := append([]*Mapping(nil), s.mappings...)
	for _, spec := range s.identities {
		src, ok := s.peers[spec.source]
		if !ok {
			return nil, nil, nil, &taggedError{sentinel: ErrUnknownPeer,
				err: fmt.Errorf("orchestra: identity mapping %s: unknown source peer %s", spec.id, spec.source)}
		}
		if _, ok := s.peers[spec.target]; !ok {
			return nil, nil, nil, &taggedError{sentinel: ErrUnknownPeer,
				err: fmt.Errorf("orchestra: identity mapping %s: unknown target peer %s", spec.id, spec.target)}
		}
		ms = append(ms, IdentityMappings(spec.id, spec.source, spec.target, src)...)
	}
	return s.peers, ms, s.policies, nil
}

// ParseSchema reads the textual CDSS configuration format: peer blocks with
// relations, mapping declarations (identity shorthands or tgd text), and
// per-peer trust blocks. See the package documentation of internal/config
// for the grammar; ParseSchemaString is the convenience form.
func ParseSchema(r io.Reader) (*Schema, error) {
	cfg, err := config.Parse(r)
	if err != nil {
		return nil, err
	}
	s := NewSchema()
	s.peers = cfg.Peers
	s.mappings = cfg.Mappings
	if cfg.Policies != nil {
		s.policies = cfg.Policies
	}
	return s, nil
}

// ParseSchemaString is ParseSchema over a string literal.
func ParseSchemaString(text string) (*Schema, error) {
	return ParseSchema(strings.NewReader(text))
}

// policyFor resolves the effective trust policy for a peer: per-peer
// declaration, else the system default, else trust-all at priority 1.
func policyFor(policies map[string]*TrustPolicy, def *TrustPolicy, peer string) *TrustPolicy {
	if p, ok := policies[peer]; ok && p != nil {
		return p
	}
	if def != nil {
		return def
	}
	return recon.TrustAll(1)
}
