package orchestra_test

// Observability acceptance tests: the durable round-trip must light up the
// WAL-fsync, reconcile-latency, and fixpoint-round histograms; snapshots
// must stay consistent under concurrent publish/reconcile/query (run with
// -race); the debug endpoint must serve well-formed JSON and Prometheus
// text; and a system opened with WithMetrics(false) must report nothing.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"orchestra"
)

// TestMetricsDurableRoundTrip is the acceptance criterion: after a durable
// publish/reconcile round trip, System.Metrics() reports non-zero WAL
// fsync, reconcile-latency, and fixpoint-round histograms.
func TestMetricsDurableRoundTrip(t *testing.T) {
	ctx := context.Background()
	sys, err := orchestra.Open(geneSchema(t), orchestra.WithDurableDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	alice, err := sys.Peer("alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := sys.Peer("bob")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Begin().Insert("Gene", gene("BRCA1", 17)).Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Publish(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Reconcile(ctx); err != nil {
		t.Fatal(err)
	}
	m := sys.Metrics()
	for _, h := range []string{"lsm_wal_fsync_ns", "core_reconcile_ns", "datalog_fixpoint_rounds"} {
		if m.Histograms[h].Count == 0 {
			t.Errorf("histogram %s is empty after a durable round trip; histograms: %v", h, histNames(m))
		}
	}
	for _, c := range []string{
		"core_publish_total", "core_reconcile_total", "core_accepted_txns_total",
		"core_checkpoint_total", "lsm_wal_appends_total", "p2p_publish_batches_total",
	} {
		if m.Counters[c] == 0 {
			t.Errorf("counter %s = 0 after a durable round trip", c)
		}
	}
	if m.Eval.Rounds == 0 || m.Eval.Emitted == 0 {
		t.Errorf("eval counters not folded in: %+v", m.Eval)
	}
	// Reconcile must have traced a parent span with a drain child.
	var reconcileID uint64
	for _, sp := range m.Spans {
		if sp.Name == "core_reconcile" && sp.Peer == "bob" {
			reconcileID = sp.ID
		}
	}
	if reconcileID == 0 {
		t.Fatalf("no core_reconcile span for bob in %d spans", len(m.Spans))
	}
	foundChild := false
	for _, sp := range m.Spans {
		if sp.Name == "exchange_drain" && sp.Parent == reconcileID {
			foundChild = true
		}
	}
	if !foundChild {
		t.Error("reconcile span has no exchange_drain child")
	}
}

func readAll(t *testing.T, res *http.Response) string {
	t.Helper()
	data, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func histNames(m *orchestra.MetricsSnapshot) []string {
	names := make([]string, 0, len(m.Histograms))
	for k := range m.Histograms {
		names = append(names, k)
	}
	return names
}

// TestMetricsQueryStats: query evaluation folds into the shared eval
// counters without the caller installing a Stats struct — the satellite fix
// for EvalStats being reachable only through internal/datalog.
func TestMetricsQueryStats(t *testing.T) {
	ctx := context.Background()
	sys, alice, _ := openGenes(t)
	if _, err := alice.Begin().Insert("Gene", gene("BRCA1", 17)).Commit(); err != nil {
		t.Fatal(err)
	}
	before := sys.Metrics().Eval
	rows, err := alice.Query(ctx, "Gene",
		orchestra.Bind(orchestra.String("BRCA1")), orchestra.Free("chrom")).All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("query returned %d rows, want 1", len(rows))
	}
	after := sys.Metrics().Eval
	if after.Rounds <= before.Rounds {
		t.Errorf("query did not advance eval rounds: %d -> %d", before.Rounds, after.Rounds)
	}
	if sys.Metrics().Counters["core_query_total"] == 0 {
		t.Error("core_query_total not incremented")
	}
}

// TestMetricsConcurrent hammers publish/reconcile/query/snapshot from
// concurrent goroutines; under -race this is the facade-level data-race
// gate, and the final snapshot must balance exactly.
func TestMetricsConcurrent(t *testing.T) {
	ctx := context.Background()
	sys, alice, bob := openGenes(t)
	const writers = 4
	const perW = 10
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				name := fmt.Sprintf("G%d_%d", w, i)
				if _, err := alice.Begin().Insert("Gene", gene(name, int64(i%23+1))).Commit(); err != nil {
					t.Error(err)
					return
				}
				if _, err := alice.Publish(ctx); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := bob.Reconcile(ctx); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			m := sys.Metrics()
			if m.Counters["core_publish_total"] > writers*perW {
				t.Errorf("impossible publish count %d", m.Counters["core_publish_total"])
				return
			}
		}
	}()
	wg.Wait()
	if _, err := bob.Reconcile(ctx); err != nil {
		t.Fatal(err)
	}
	m := sys.Metrics()
	if got := m.Counters["core_published_txns_total"]; got != writers*perW {
		t.Errorf("core_published_txns_total = %d, want %d", got, writers*perW)
	}
	if got := m.Counters["core_accepted_txns_total"]; got != writers*perW {
		t.Errorf("core_accepted_txns_total = %d, want %d (bob accepts every publish)", got, writers*perW)
	}
	if h := m.Histograms["core_reconcile_ns"]; h.Count != m.Counters["core_reconcile_total"] {
		t.Errorf("reconcile span count %d != reconcile counter %d", h.Count, m.Counters["core_reconcile_total"])
	}
}

// TestDebugEndpoint scrapes both renderings of DebugHandler.
func TestDebugEndpoint(t *testing.T) {
	ctx := context.Background()
	sys, alice, bob := openGenes(t)
	if _, err := alice.Begin().Insert("Gene", gene("BRCA1", 17)).Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Publish(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Reconcile(ctx); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sys.DebugHandler())
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/debug/orchestra")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("JSON endpoint content type %q", ct)
	}
	var m orchestra.MetricsSnapshot
	if err := json.NewDecoder(res.Body).Decode(&m); err != nil {
		t.Fatalf("JSON endpoint did not decode: %v", err)
	}
	if m.Counters["core_publish_total"] == 0 || m.Eval.Rounds == 0 {
		t.Errorf("JSON snapshot missing data: %+v", m.Counters)
	}

	res2, err := srv.Client().Get(srv.URL + "/debug/orchestra/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	body := readAll(t, res2)
	for _, want := range []string{
		"# TYPE orchestra_core_publish_total counter",
		"orchestra_core_reconcile_ns{quantile=\"0.99\"}",
		"orchestra_datalog_rounds_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prom scrape missing %q", want)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed prom line %q", line)
		}
	}
}

// TestMetricsDisabled: WithMetrics(false) yields empty (but usable)
// snapshots and a scrape with no series.
func TestMetricsDisabled(t *testing.T) {
	ctx := context.Background()
	sys, alice, bob := openGenes(t, orchestra.WithMetrics(false))
	if _, err := alice.Begin().Insert("Gene", gene("BRCA1", 17)).Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Publish(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Reconcile(ctx); err != nil {
		t.Fatal(err)
	}
	m := sys.Metrics()
	if len(m.Counters) != 0 || len(m.Histograms) != 0 || len(m.Spans) != 0 {
		t.Errorf("disabled system recorded metrics: %+v", m)
	}
	if m.Eval != (orchestra.EvalCounters{}) {
		t.Errorf("disabled system recorded eval counters: %+v", m.Eval)
	}
	srv := httptest.NewServer(sys.DebugHandler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/debug/orchestra/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if body := readAll(t, res); strings.TrimSpace(body) != "" {
		t.Errorf("disabled scrape returned series:\n%s", body)
	}
}
