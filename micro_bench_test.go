package orchestra_test

// Micro-benchmarks for the individual substrates, complementing the E1–E7
// experiment benchmarks: storage writes and indexed lookups, provenance
// polynomial arithmetic, datalog fixpoints, wire codec, and trust-policy
// evaluation.

import (
	"fmt"
	"testing"

	"orchestra/internal/datalog"
	"orchestra/internal/p2p"
	"orchestra/internal/provenance"
	"orchestra/internal/recon"
	"orchestra/internal/schema"
	"orchestra/internal/storage"
	"orchestra/internal/updates"
	"orchestra/internal/workload"
)

func BenchmarkStorageInsert(b *testing.B) {
	tbl := storage.NewTable(workload.Sigma1().Relation("S"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := int64(i)
		if err := tbl.Insert(workload.STuple(k, k, "ACGT"), provenance.One()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStorageIndexedLookup(b *testing.B) {
	tbl := storage.NewTable(workload.Sigma1().Relation("S"))
	for i := int64(0); i < 10000; i++ {
		if err := tbl.Insert(workload.STuple(i%100, i, "ACGT"), provenance.One()); err != nil {
			b.Fatal(err)
		}
	}
	tbl.CreateIndex([]int{0})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := tbl.LookupIndex([]int{0}, schema.NewTuple(schema.Int(int64(i%100))))
		if len(rows) != 100 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkInstanceDiff(b *testing.B) {
	base := storage.NewInstance(workload.Sigma1())
	cur := storage.NewInstance(workload.Sigma1())
	for i := int64(0); i < 5000; i++ {
		if err := base.Insert("S", workload.STuple(i, i, "A"), provenance.One()); err != nil {
			b.Fatal(err)
		}
		tu := workload.STuple(i, i, "A")
		if i%10 == 0 {
			tu = workload.STuple(i, i, "B") // 10% modified
		}
		if err := cur.Insert("S", tu, provenance.One()); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := cur.Diff(base)
		if err != nil || d.Count() != 1000 {
			b.Fatalf("diff = %d, %v", d.Count(), err)
		}
	}
}

func BenchmarkPolyMul(b *testing.B) {
	mk := func(n int, prefix string) provenance.Poly {
		p := provenance.Zero()
		for i := 0; i < n; i++ {
			p = p.Add(provenance.NewVar(provenance.Var(fmt.Sprint(prefix, i))))
		}
		return p
	}
	p8, q8 := mk(8, "x"), mk(8, "y")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p8.Mul(q8)
	}
}

// BenchmarkPolyIntern measures the hash-consing cache: rebuilding a
// recurring polynomial should hit the cache and share one allocation, and
// equality/subsumption on shared values should be pointer-fast.
func BenchmarkPolyIntern(b *testing.B) {
	mk := func() provenance.Poly {
		p := provenance.Zero()
		for i := 0; i < 8; i++ {
			m := provenance.NewVar(provenance.Var(fmt.Sprint("a", i))).
				Mul(provenance.NewVar(provenance.Var(fmt.Sprint("b", i))))
			p = p.Add(m)
		}
		return p
	}
	b.Run("rebuild-shared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = mk()
		}
	})
	p, q := mk(), mk()
	b.Run("equal-interned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !p.Equal(q) {
				b.Fatal("equal polynomials compare unequal")
			}
		}
	})
	b.Run("subsumes", func(b *testing.B) {
		small := provenance.NewVar("a3").Mul(provenance.NewVar("b3"))
		for i := 0; i < b.N; i++ {
			if !p.Subsumes(small) {
				b.Fatal("subsumption failed")
			}
		}
	})
}

// BenchmarkDBSnapshot compares the O(#preds) copy-on-write snapshot with
// the eager deep clone on a populated database, and prices the first
// post-snapshot write (which copy-on-write-clones one extent).
func BenchmarkDBSnapshot(b *testing.B) {
	build := func() *datalog.DB {
		db := datalog.NewDB()
		for p := 0; p < 8; p++ {
			pred := fmt.Sprint("R", p)
			for i := int64(0); i < 2000; i++ {
				db.Add(pred, schema.NewTuple(schema.Int(i), schema.Int(i%97)),
					provenance.NewVar(provenance.Var(fmt.Sprint("t", p, "_", i))))
			}
		}
		return db
	}
	b.Run("snapshot", func(b *testing.B) {
		db := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = db.Snapshot()
		}
	})
	b.Run("clone", func(b *testing.B) {
		db := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = db.Clone()
		}
	})
	b.Run("snapshot-first-write", func(b *testing.B) {
		db := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = db.Snapshot()
			// The write lands on a shared extent and pays one COW clone.
			db.Add("R0", schema.NewTuple(schema.Int(int64(i)+1000000), schema.Int(0)), provenance.One())
		}
	})
}

func BenchmarkPolyEvalTrust(b *testing.B) {
	p := provenance.Zero()
	for i := 0; i < 8; i++ {
		m := provenance.NewVar(provenance.Var(fmt.Sprint("a", i))).
			Mul(provenance.NewVar(provenance.Var(fmt.Sprint("b", i))))
		p = p.Add(m)
	}
	assign := func(v provenance.Var) float64 { return 0.5 + float64(len(v)%2)*0.25 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = provenance.Eval[float64](p, provenance.TrustSemiring{}, assign)
	}
}

func BenchmarkDatalogTransitiveClosure(b *testing.B) {
	prog := &datalog.Program{Rules: []datalog.Rule{
		{ID: "tc1", Head: datalog.NewHead("T", datalog.HV("x"), datalog.HV("y")),
			Body: []datalog.Literal{datalog.Pos(datalog.NewAtom("E", datalog.V("x"), datalog.V("y")))}},
		{ID: "tc2", Head: datalog.NewHead("T", datalog.HV("x"), datalog.HV("z")),
			Body: []datalog.Literal{
				datalog.Pos(datalog.NewAtom("T", datalog.V("x"), datalog.V("y"))),
				datalog.Pos(datalog.NewAtom("E", datalog.V("y"), datalog.V("z")))}},
	}}
	edb := datalog.NewDB()
	for i := 0; i < 60; i++ {
		edb.AddTuple("E", schema.NewTuple(schema.Int(int64(i)), schema.Int(int64(i+1))))
	}
	b.Run("set-semantics", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := datalog.Eval(prog, edb, datalog.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("witness-provenance", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := datalog.Eval(prog, edb, datalog.Options{Provenance: true, MaxMonomials: 8}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkWireCodec(b *testing.B) {
	txn := &updates.Transaction{
		ID:    updates.TxnID{Peer: "alaska", Seq: 42},
		Epoch: 7,
		Updates: []updates.Update{
			updates.Insert("S", workload.STuple(1, 10, "ACGTACGTACGT")),
			updates.Modify("S", workload.STuple(2, 20, "AAAA"), workload.STuple(2, 20, "TTTT")),
			updates.Delete("O", workload.OTuple("mouse", 1)),
		},
		Deps: []updates.TxnID{{Peer: "beijing", Seq: 1}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := p2p.EncodeTxn(txn)
		if _, err := p2p.DecodeTxn(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrustPolicyEvaluation(b *testing.B) {
	pol := &recon.Policy{Conditions: []recon.Condition{
		recon.FromPeer("beijing", 2),
		recon.FromPeer("dresden", 1),
		recon.OnRelation("OPS", 3),
		recon.DerivedFromPeer("alaska", 2),
	}, Default: recon.Distrusted}
	u := updates.Insert("OPS", workload.OPSTuple("mouse", "p53", "ACGT"))
	u.Prov = provenance.NewVar("alaska:1/0").Mul(provenance.NewVar("M_AC"))
	txn := &updates.Transaction{
		ID:      updates.TxnID{Peer: "beijing", Seq: 1},
		Updates: []updates.Update{u, u, u},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Max matching condition is OnRelation("OPS", 3).
		if pol.PriorityOf(txn) != 3 {
			b.Fatal("priority wrong")
		}
	}
}

func BenchmarkTupleKey(b *testing.B) {
	tu := workload.STuple(123456, 789012, "ACGTACGTACGTACGT")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tu.Key()
	}
}

// BenchmarkTupleKeyEncode is the uncached reference encoding — what every
// Key() call cost before memoization.
func BenchmarkTupleKeyEncode(b *testing.B) {
	tu := workload.STuple(123456, 789012, "ACGTACGTACGTACGT")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = string(tu.AppendKeyTo(make([]byte, 0, 64)))
	}
}

// BenchmarkTupleKeyE2WorkingSet models the E2 incremental path: the same
// modest working set of tuples is re-keyed at every layer (storage merge,
// collation, write-set tracking), so nearly every call is a cache hit.
func BenchmarkTupleKeyE2WorkingSet(b *testing.B) {
	const n = 256
	tuples := make([]schema.Tuple, n)
	for i := range tuples {
		tuples[i] = workload.STuple(int64(i), int64(i%37), workload.Sequence(int64(i), int64(i%37)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tuples[i%n].Key()
	}
}
