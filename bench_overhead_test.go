package orchestra_test

// Instrumentation-overhead pairs: the E2/E4/E10 workload shapes evaluated
// with the evaluator's stats sink disabled and enabled, under identical
// iteration counts. scripts/bench_overhead.sh runs these with -count and a
// fixed -benchtime=Nx, pairs the metrics=off/metrics=on sub-benchmarks, and
// fails when the enabled path regresses ns/op beyond OVERHEAD_TOLERANCE
// (the acceptance bound is 3% on E4/E10). DESIGN.md §12 records the
// methodology and measured numbers.

import (
	"testing"

	"orchestra/internal/datalog"
	"orchestra/internal/experiments"
	"orchestra/internal/updates"
	"orchestra/internal/workload"
)

// overheadPair runs the same body under both instrumentation settings by
// flipping the experiments harness's shared stats sink — exactly what
// orchestra-bench -metrics flips — so the pair measures the real recording
// path, not a synthetic one.
func overheadPair(b *testing.B, run func(b *testing.B)) {
	for _, on := range []bool{false, true} {
		name := "metrics=off"
		if on {
			name = "metrics=on"
		}
		b.Run(name, func(b *testing.B) {
			if on {
				experiments.Stats = &datalog.EvalStats{}
				defer func() { experiments.Stats = nil }()
			} else {
				experiments.Stats = nil
			}
			run(b)
		})
	}
}

// BenchmarkOverheadE2Incremental is the E2 incremental-delta shape: 64-txn
// deltas propagated through the Figure 2 engine (built over the harness's
// stats sink, like every experiment engine). The delta is sized so one
// iteration costs milliseconds — small enough to stay incremental, big
// enough that the ratio the overhead gate computes is not scheduler noise.
func BenchmarkOverheadE2Incremental(b *testing.B) {
	overheadPair(b, func(b *testing.B) {
		eng, seq, err := experiments.BuildFig2Engine(400)
		if err != nil {
			b.Fatal(err)
		}
		key := int64(1 << 40)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var delta []*updates.Transaction
			for j := 0; j < 64; j++ {
				delta = append(delta, &updates.Transaction{
					ID: updates.TxnID{Peer: workload.Alaska, Seq: seq},
					Updates: []updates.Update{
						updates.Insert("S", workload.STuple(key, key, "ACGT"))},
				})
				seq++
				key++
			}
			if _, err := experiments.ApplyStream(eng, delta); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOverheadE4Join is the E4 shape: one full fixpoint over the
// 3-way join EDB with witness provenance.
func BenchmarkOverheadE4Join(b *testing.B) {
	overheadPair(b, func(b *testing.B) {
		prog, edb, err := experiments.BuildJoinEDB(2000)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := datalog.Eval(prog, edb,
				datalog.Options{Provenance: true, Stats: experiments.Stats}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOverheadE10Stratum is the E10 shape: the embarrassingly parallel
// worker-sweep workload under the adaptive executor, where per-probe stats
// recording is hottest.
func BenchmarkOverheadE10Stratum(b *testing.B) {
	overheadPair(b, func(b *testing.B) {
		prog, edb := experiments.BuildParallelStratum(4, 500)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := datalog.Eval(prog, edb,
				datalog.Options{Provenance: true, Stats: experiments.Stats}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
