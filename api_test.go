package orchestra_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"orchestra"
)

// geneSchema builds the two-peer identity confederation used across the
// public API tests.
func geneSchema(t testing.TB) *orchestra.Schema {
	t.Helper()
	genes := orchestra.NewPeerSchema("genes")
	genes.MustAddRelation(orchestra.MustRelation("Gene",
		[]orchestra.Attribute{
			{Name: "name", Type: orchestra.KindString},
			{Name: "chromosome", Type: orchestra.KindInt},
		}, "name"))
	return orchestra.NewSchema().
		Peer("alice", genes).
		Peer("bob", genes).
		Identity("M_ab", "alice", "bob").
		Identity("M_ba", "bob", "alice")
}

func openGenes(t testing.TB, opts ...orchestra.Option) (*orchestra.System, *orchestra.Peer, *orchestra.Peer) {
	t.Helper()
	sys, err := orchestra.Open(geneSchema(t), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	alice, err := sys.Peer("alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := sys.Peer("bob")
	if err != nil {
		t.Fatal(err)
	}
	return sys, alice, bob
}

func gene(name string, chrom int64) orchestra.Tuple {
	return orchestra.NewTuple(orchestra.String(name), orchestra.Int(chrom))
}

func TestPublishReconcileRoundTrip(t *testing.T) {
	ctx := context.Background()
	_, alice, bob := openGenes(t)
	if _, err := alice.Begin().Insert("Gene", gene("BRCA1", 17)).Commit(); err != nil {
		t.Fatal(err)
	}
	epoch, err := alice.Publish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("epoch = %d, want 1", epoch)
	}
	report, err := bob.Reconcile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Accepted) != 1 {
		t.Fatalf("accepted = %v, want one transaction", report.Accepted)
	}
	rows, err := bob.Rows("Gene")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !rows[0].Equal(gene("BRCA1", 17)) {
		t.Fatalf("bob rows = %v", rows)
	}
}

func TestKeyViolationOnPublishPath(t *testing.T) {
	ctx := context.Background()
	_, alice, _ := openGenes(t)
	if _, err := alice.Begin().Insert("Gene", gene("BRCA1", 17)).Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Publish(ctx); err != nil {
		t.Fatal(err)
	}
	_, err := alice.Begin().Insert("Gene", gene("BRCA1", 99)).Commit()
	if !errors.Is(err, orchestra.ErrKeyViolation) {
		t.Fatalf("errors.Is(err, ErrKeyViolation) = false; err = %v", err)
	}
	var kv *orchestra.KeyViolation
	if !errors.As(err, &kv) {
		t.Fatalf("errors.As KeyViolation detail = false; err = %v", err)
	}
	if kv.Relation != "Gene" {
		t.Fatalf("violation relation = %s", kv.Relation)
	}
	// Re-inserting the identical tuple is not a violation (set semantics).
	if _, err := alice.Begin().Insert("Gene", gene("BRCA1", 17)).Commit(); err != nil {
		t.Fatalf("identical re-insert: %v", err)
	}
}

func TestTypedErrors(t *testing.T) {
	sys, alice, _ := openGenes(t)
	if _, err := sys.Peer("mallory"); !errors.Is(err, orchestra.ErrUnknownPeer) {
		t.Fatalf("unknown peer: %v", err)
	}
	if _, err := alice.Begin().Insert("Nope", gene("x", 1)).Commit(); !errors.Is(err, orchestra.ErrUnknownRelation) {
		t.Fatalf("unknown relation: %v", err)
	}
	if _, err := alice.Rows("Nope"); !errors.Is(err, orchestra.ErrUnknownRelation) {
		t.Fatalf("rows on unknown relation: %v", err)
	}
	txn := alice.Begin().Insert("Gene", gene("TP53", 17))
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Commit(); !errors.Is(err, orchestra.ErrTxnFinished) {
		t.Fatalf("double commit: %v", err)
	}
	if _, err := alice.Resolve(context.Background(), orchestra.TxnID{Peer: "x", Seq: 1}); !errors.Is(err, orchestra.ErrConflictPending) {
		t.Fatalf("resolve non-deferred: %v", err)
	}
}

func TestErrorMessagesKeepInternalDetail(t *testing.T) {
	_, alice, _ := openGenes(t)
	_, err := alice.Begin().Insert("Nope", gene("x", 1)).Commit()
	if err == nil || !strings.Contains(err.Error(), "Nope") {
		t.Fatalf("detail lost: %v", err)
	}
}

func TestStrictConflictsOption(t *testing.T) {
	ctx := context.Background()
	genes := orchestra.NewPeerSchema("genes")
	genes.MustAddRelation(orchestra.MustRelation("Gene",
		[]orchestra.Attribute{
			{Name: "name", Type: orchestra.KindString},
			{Name: "chromosome", Type: orchestra.KindInt},
		}, "name"))
	sch := orchestra.NewSchema().
		Peer("a", genes).Peer("b", genes).Peer("c", genes).
		Identity("M_ac", "a", "c").
		Identity("M_bc", "b", "c")
	sys, err := orchestra.Open(sch)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	a, err := sys.Peer("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.Peer("b")
	if err != nil {
		t.Fatal(err)
	}
	c, err := sys.Peer("c", orchestra.WithStrictConflicts())
	if err != nil {
		t.Fatal(err)
	}
	// a and b publish conflicting writes at equal priority: c defers.
	if _, err := a.Begin().Insert("Gene", gene("BRCA1", 17)).Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Publish(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Begin().Insert("Gene", gene("BRCA1", 13)).Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Publish(ctx); err != nil {
		t.Fatal(err)
	}
	report, err := c.Reconcile(ctx)
	if !errors.Is(err, orchestra.ErrConflictPending) {
		t.Fatalf("strict reconcile error = %v, want ErrConflictPending", err)
	}
	if report == nil || len(report.Deferred) != 2 {
		t.Fatalf("report = %+v, want both transactions deferred", report)
	}
	// Resolving in favor of a's transaction settles the conflict.
	if _, err := c.Resolve(ctx, report.Deferred[0]); err != nil {
		t.Fatal(err)
	}
	rows, err := c.Rows("Gene")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("c rows = %v", rows)
	}
}

func TestParseSchemaAndTrustBlocks(t *testing.T) {
	ctx := context.Background()
	sch, err := orchestra.ParseSchemaString(`
peer a {
    relation R(x int, y string) key(x)
}
peer b like a
mapping identity M_ab a b
trust b {
    peer a 2
    default 0
}
`)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := orchestra.Open(sch)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	a, err := sys.Peer("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.Peer("b")
	if err != nil {
		t.Fatal(err)
	}
	id, err := a.Begin().Insert("R", orchestra.NewTuple(orchestra.Int(1), orchestra.String("v"))).Commit()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Publish(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Reconcile(ctx); err != nil {
		t.Fatal(err)
	}
	if got := b.Status(id); got != orchestra.StatusAccepted {
		t.Fatalf("status = %v, want accepted (trust block applied)", got)
	}
}

func TestWithProvenanceFalseStripsAnnotations(t *testing.T) {
	ctx := context.Background()
	_, alice, bob := openGenes(t, orchestra.WithProvenance(false))
	if _, err := alice.Begin().Insert("Gene", gene("BRCA1", 17)).Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Publish(ctx); err != nil {
		t.Fatal(err)
	}
	subCtx, cancel := context.WithCancel(ctx)
	feed := bob.Subscribe(subCtx, orchestra.WithoutAutoReconcile())
	if _, err := bob.Reconcile(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	for c, err := range feed {
		if err != nil {
			break
		}
		if !c.Prov.IsZero() {
			t.Fatalf("change carries provenance despite WithProvenance(false): %+v", c)
		}
	}
	prov, supports, ok := bob.Explain("Gene", gene("BRCA1", 17))
	if !ok {
		t.Fatal("tuple missing")
	}
	if !prov.IsZero() || supports != nil {
		t.Fatalf("explain leaked provenance: %v %v", prov, supports)
	}
}

func TestSystemClose(t *testing.T) {
	ctx := context.Background()
	sys, alice, _ := openGenes(t)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Publish(ctx); !errors.Is(err, orchestra.ErrClosed) {
		t.Fatalf("publish after close: %v", err)
	}
	if _, err := sys.Peer("alice"); !errors.Is(err, orchestra.ErrClosed) {
		t.Fatalf("peer after close: %v", err)
	}
}
