package orchestra_test

import (
	"context"
	"fmt"
	"log"

	"orchestra"
)

// exampleSchema declares a two-peer confederation sharing one relation.
func exampleSchema() *orchestra.Schema {
	genes := orchestra.NewPeerSchema("genes")
	genes.MustAddRelation(orchestra.MustRelation("Gene",
		[]orchestra.Attribute{
			{Name: "name", Type: orchestra.KindString},
			{Name: "chromosome", Type: orchestra.KindInt},
		}, "name"))
	return orchestra.NewSchema().
		Peer("alice", genes).
		Peer("bob", genes).
		Identity("M_ab", "alice", "bob").
		Identity("M_ba", "bob", "alice")
}

func ExampleOpen() {
	sys, err := orchestra.Open(exampleSchema(), orchestra.WithParallelism(-1))
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	alice, err := sys.Peer("alice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(alice.Name())
	// Output: alice
}

func ExamplePeer_Publish() {
	ctx := context.Background()
	sys, err := orchestra.Open(exampleSchema())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	alice, _ := sys.Peer("alice")
	bob, _ := sys.Peer("bob")

	// Alice edits locally and publishes; Bob reconciles and receives the
	// tuple translated through the mappings.
	brca1 := orchestra.NewTuple(orchestra.String("BRCA1"), orchestra.Int(17))
	if _, err := alice.Begin().Insert("Gene", brca1).Commit(); err != nil {
		log.Fatal(err)
	}
	epoch, err := alice.Publish(ctx)
	if err != nil {
		log.Fatal(err)
	}
	report, err := bob.Reconcile(ctx)
	if err != nil {
		log.Fatal(err)
	}
	rows, _ := bob.Rows("Gene")
	fmt.Printf("epoch %d: bob accepted %d txn(s), holds %v\n", epoch, len(report.Accepted), rows)
	// Output: epoch 1: bob accepted 1 txn(s), holds [(BRCA1, 17)]
}

func ExamplePeer_Subscribe() {
	ctx := context.Background()
	sys, err := orchestra.Open(exampleSchema())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	alice, _ := sys.Peer("alice")
	bob, _ := sys.Peer("bob")

	// Bob subscribes before anything publishes; the feed is consumed after
	// the explicit Reconcile below (WithoutAutoReconcile keeps delivery
	// deterministic for this example — drop it to have epochs pushed).
	subCtx, cancel := context.WithCancel(ctx)
	feed := bob.Subscribe(subCtx, orchestra.WithoutAutoReconcile())

	if _, err := alice.Begin().
		Insert("Gene", orchestra.NewTuple(orchestra.String("BRCA1"), orchestra.Int(17))).
		Insert("Gene", orchestra.NewTuple(orchestra.String("TP53"), orchestra.Int(17))).
		Commit(); err != nil {
		log.Fatal(err)
	}
	if _, err := alice.Publish(ctx); err != nil {
		log.Fatal(err)
	}
	if _, err := bob.Reconcile(ctx); err != nil {
		log.Fatal(err)
	}
	cancel() // end the stream once the epoch is in

	for change, err := range feed {
		if err != nil {
			break // context.Canceled: the feed is drained
		}
		fmt.Printf("epoch %d %s %s%v\n", change.Epoch, change.Op, change.Rel, change.New)
	}
	// Changes within a transaction arrive in canonical tuple-key order.
	// Output:
	// epoch 1 + Gene(TP53, 17)
	// epoch 1 + Gene(BRCA1, 17)
}
