package orchestra_test

import (
	"context"
	"fmt"
	"log"

	"orchestra"
)

// exampleSchema declares a two-peer confederation sharing one relation.
func exampleSchema() *orchestra.Schema {
	genes := orchestra.NewPeerSchema("genes")
	genes.MustAddRelation(orchestra.MustRelation("Gene",
		[]orchestra.Attribute{
			{Name: "name", Type: orchestra.KindString},
			{Name: "chromosome", Type: orchestra.KindInt},
		}, "name"))
	return orchestra.NewSchema().
		Peer("alice", genes).
		Peer("bob", genes).
		Identity("M_ab", "alice", "bob").
		Identity("M_ba", "bob", "alice")
}

func ExampleOpen() {
	sys, err := orchestra.Open(exampleSchema(), orchestra.WithParallelism(-1))
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	alice, err := sys.Peer("alice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(alice.Name())
	// Output: alice
}

func ExamplePeer_Publish() {
	ctx := context.Background()
	sys, err := orchestra.Open(exampleSchema())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	alice, _ := sys.Peer("alice")
	bob, _ := sys.Peer("bob")

	// Alice edits locally and publishes; Bob reconciles and receives the
	// tuple translated through the mappings.
	brca1 := orchestra.NewTuple(orchestra.String("BRCA1"), orchestra.Int(17))
	if _, err := alice.Begin().Insert("Gene", brca1).Commit(); err != nil {
		log.Fatal(err)
	}
	epoch, err := alice.Publish(ctx)
	if err != nil {
		log.Fatal(err)
	}
	report, err := bob.Reconcile(ctx)
	if err != nil {
		log.Fatal(err)
	}
	rows, _ := bob.Rows("Gene")
	fmt.Printf("epoch %d: bob accepted %d txn(s), holds %v\n", epoch, len(report.Accepted), rows)
	// Output: epoch 1: bob accepted 1 txn(s), holds [(BRCA1, 17)]
}

func ExamplePeer_Query() {
	ctx := context.Background()
	links := orchestra.NewPeerSchema("links")
	links.MustAddRelation(orchestra.MustRelation("Follows",
		[]orchestra.Attribute{
			{Name: "src", Type: orchestra.KindString},
			{Name: "dst", Type: orchestra.KindString},
		}, "src", "dst"))
	sys, err := orchestra.Open(orchestra.NewSchema().Peer("alice", links))
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	alice, _ := sys.Peer("alice")
	tx := alice.Begin()
	for _, e := range [][2]string{{"ann", "bea"}, {"bea", "cal"}, {"cal", "dan"}, {"eve", "fay"}} {
		tx.Insert("Follows", orchestra.NewTuple(orchestra.String(e[0]), orchestra.String(e[1])))
	}
	if _, err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	// Who can ann reach, transitively? The goal binds the source argument,
	// so goal-directed evaluation explores only ann's component — eve's
	// edge is never touched.
	q := alice.Query(ctx, "reach", orchestra.Bind(orchestra.String("ann")), orchestra.Free("who")).
		Rule("reach", []string{"a", "b"},
			orchestra.Atom("Follows", orchestra.Free("a"), orchestra.Free("b"))).
		Rule("reach", []string{"a", "c"},
			orchestra.Atom("reach", orchestra.Free("a"), orchestra.Free("b")),
			orchestra.Atom("Follows", orchestra.Free("b"), orchestra.Free("c")))
	for ans, err := range q.Stream() {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(ans.Tuple)
	}
	// Output:
	// (bea)
	// (cal)
	// (dan)
}

func ExamplePeer_Subscribe() {
	ctx := context.Background()
	sys, err := orchestra.Open(exampleSchema())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	alice, _ := sys.Peer("alice")
	bob, _ := sys.Peer("bob")

	// Bob subscribes before anything publishes; the feed is consumed after
	// the explicit Reconcile below (WithoutAutoReconcile keeps delivery
	// deterministic for this example — drop it to have epochs pushed).
	subCtx, cancel := context.WithCancel(ctx)
	feed := bob.Subscribe(subCtx, orchestra.WithoutAutoReconcile())

	if _, err := alice.Begin().
		Insert("Gene", orchestra.NewTuple(orchestra.String("BRCA1"), orchestra.Int(17))).
		Insert("Gene", orchestra.NewTuple(orchestra.String("TP53"), orchestra.Int(17))).
		Commit(); err != nil {
		log.Fatal(err)
	}
	if _, err := alice.Publish(ctx); err != nil {
		log.Fatal(err)
	}
	if _, err := bob.Reconcile(ctx); err != nil {
		log.Fatal(err)
	}
	cancel() // end the stream once the epoch is in

	for change, err := range feed {
		if err != nil {
			break // context.Canceled: the feed is drained
		}
		fmt.Printf("epoch %d %s %s%v\n", change.Epoch, change.Op, change.Rel, change.New)
	}
	// Changes within a transaction arrive in canonical tuple-key order.
	// Output:
	// epoch 1 + Gene(TP53, 17)
	// epoch 1 + Gene(BRCA1, 17)
}
