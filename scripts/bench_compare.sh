#!/bin/sh
# Compares a fresh benchmark run against the committed BENCH_baseline.json.
#
#   ./scripts/bench_compare.sh            # default tolerance
#   TOLERANCE=2.5 ./scripts/bench_compare.sh
#   BENCHTIME=100x ./scripts/bench_compare.sh
#
# A benchmark FAILS the comparison when its fresh ns/op exceeds
# baseline * TOLERANCE, or when it exists in the baseline but not in the
# fresh run (deleted/renamed benchmarks must be accompanied by a baseline
# refresh: make bench-baseline). New benchmarks absent from the baseline
# are reported but do not fail.
#
# The default tolerance is deliberately loose (6x): the baseline is a
# 1-iteration smoke snapshot — a single GC pause inside a sub-microsecond
# benchmark can alone exceed small multiples, and several experiment benchmarks accumulate
# database state so their ns/op depends on the iteration count (see
# DESIGN.md §6). This gate catches order-of-magnitude regressions and
# benchmarks that stop compiling, not single-digit-percent drift — use
# matched -benchtime=Nx runs for real measurements.
set -e

baseline="${BASELINE:-BENCH_baseline.json}"
tolerance="${TOLERANCE:-6.0}"
benchtime="${BENCHTIME:-1x}"

if [ ! -f "$baseline" ]; then
    echo "bench_compare: baseline $baseline not found" >&2
    exit 1
fi

fresh="$(go test -bench=. -benchtime="$benchtime" -run '^$' .)"

# NOTE: the ns/op line parsing in the awk below must stay in sync with
# the parsing in scripts/bench_baseline.sh (same name munging).
printf '%s\n' "$fresh" | awk -v tol="$tolerance" -v basefile="$baseline" '
BEGIN {
    # Parse the baseline: lines of the form   "Name": 1234,
    while ((getline line < basefile) > 0) {
        if (line !~ /":[[:space:]]*[0-9]/) continue
        if (line ~ /"go":/ || line ~ /"note":/) continue
        name = line
        sub(/^[[:space:]]*"/, "", name)
        sub(/".*$/, "", name)
        val = line
        sub(/^[^:]*:[[:space:]]*/, "", val)
        sub(/[,[:space:]]*$/, "", val)
        base[name] = val + 0
    }
    close(basefile)
}
/ ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    cur[name] = $3 + 0
}
END {
    fails = 0
    news = 0
    for (name in cur) {
        if (!(name in base)) {
            printf "NEW       %-55s %12.0f ns/op (absent from baseline; refresh with make bench-baseline)\n", name, cur[name]
            news++
            continue
        }
        ratio = base[name] > 0 ? cur[name] / base[name] : 0
        if (ratio > tol) {
            printf "REGRESSED %-55s %12.0f ns/op vs baseline %.0f (%.2fx > %.2fx tolerance)\n", name, cur[name], base[name], ratio, tol
            fails++
        } else {
            printf "ok        %-55s %12.0f ns/op vs baseline %.0f (%.2fx)\n", name, cur[name], base[name], ratio
        }
    }
    for (name in base) {
        if (!(name in cur)) {
            printf "MISSING   %-55s baseline %.0f ns/op but absent from fresh run\n", name, base[name]
            fails++
        }
    }
    printf "bench_compare: %d compared, %d new, %d failing (tolerance %.2fx)\n", length(cur) - news, news, fails, tol
    exit fails > 0 ? 1 : 0
}
'
