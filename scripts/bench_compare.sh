#!/bin/sh
# Compares a fresh benchmark run against the committed BENCH_baseline.json.
#
#   ./scripts/bench_compare.sh            # default tolerances
#   TOLERANCE=2.5 ./scripts/bench_compare.sh
#   MEM_TOLERANCE=1.5 ./scripts/bench_compare.sh
#   BENCHTIME=100x ./scripts/bench_compare.sh
#
# A benchmark FAILS the comparison when
#   - its fresh ns/op exceeds baseline * TOLERANCE, or
#   - its fresh B/op exceeds baseline * MEM_TOLERANCE + 4096 bytes, or
#   - its fresh allocs/op exceeds baseline * MEM_TOLERANCE + 64 allocs, or
#   - it exists in the baseline but not in the fresh run (deleted/renamed
#     benchmarks must be accompanied by a baseline refresh:
#     make bench-baseline).
# New benchmarks absent from the baseline are reported but do not fail.
#
# The time tolerance is deliberately loose (6x): the baseline is a
# 1-iteration smoke snapshot — a single GC pause inside a sub-microsecond
# benchmark can alone exceed small multiples, and several experiment
# benchmarks accumulate database state so their ns/op depends on the
# iteration count (see DESIGN.md §6). The memory tolerance is much tighter
# (2x + a small absolute slack for tiny benchmarks): B/op and allocs/op are
# essentially deterministic per iteration, so a doubling is a real
# allocation regression, not noise. Use matched -benchtime=Nx runs for real
# measurements.
set -e

baseline="${BASELINE:-BENCH_baseline.json}"
tolerance="${TOLERANCE:-6.0}"
mem_tolerance="${MEM_TOLERANCE:-2.0}"
benchtime="${BENCHTIME:-1x}"

if [ ! -f "$baseline" ]; then
    echo "bench_compare: baseline $baseline not found" >&2
    exit 1
fi

fresh="$(go test -bench=. -benchtime="$benchtime" -benchmem -run '^$' .)"

# NOTE: the benchmark line parsing in the awk below must stay in sync with
# the parsing in scripts/bench_baseline.sh (same name munging, same field
# positions: $3 ns/op, $5 B/op, $7 allocs/op on -benchmem lines).
printf '%s\n' "$fresh" | awk -v tol="$tolerance" -v mtol="$mem_tolerance" -v basefile="$baseline" '
BEGIN {
    # Parse the baseline. Benchmark names repeat across the three metric
    # sections, so track which section header was seen last.
    section = ""
    while ((getline line < basefile) > 0) {
        if (line ~ /"ns_per_op":/)     { section = "ns";     continue }
        if (line ~ /"bytes_per_op":/)  { section = "bytes";  continue }
        if (line ~ /"allocs_per_op":/) { section = "allocs"; continue }
        if (section == "" || line !~ /":[[:space:]]*[0-9]/) continue
        name = line
        sub(/^[[:space:]]*"/, "", name)
        sub(/".*$/, "", name)
        val = line
        sub(/^[^:]*:[[:space:]]*/, "", val)
        sub(/[,[:space:]]*$/, "", val)
        base[section, name] = val + 0
        if (section == "ns") names[name] = 1
    }
    close(basefile)
}
/ ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    cur["ns", name] = $3 + 0
    if ($6 == "B/op") {
        cur["bytes", name] = $5 + 0
        cur["allocs", name] = $7 + 0
    }
    curnames[name] = 1
}
END {
    fails = 0
    news = 0
    for (name in curnames) {
        if (!(name in names)) {
            printf "NEW       %-55s %12.0f ns/op (absent from baseline; refresh with make bench-baseline)\n", name, cur["ns", name]
            news++
            continue
        }
        bad = ""
        ratio = base["ns", name] > 0 ? cur["ns", name] / base["ns", name] : 0
        if (ratio > tol)
            bad = sprintf("%.0f ns/op vs baseline %.0f (%.2fx > %.2fx tolerance)", cur["ns", name], base["ns", name], ratio, tol)
        if (bad == "" && ("bytes", name) in base && ("bytes", name) in cur) {
            if (cur["bytes", name] > base["bytes", name] * mtol + 4096)
                bad = sprintf("%.0f B/op vs baseline %.0f (> %.2fx + 4096 memory tolerance)", cur["bytes", name], base["bytes", name], mtol)
        }
        if (bad == "" && ("allocs", name) in base && ("allocs", name) in cur) {
            if (cur["allocs", name] > base["allocs", name] * mtol + 64)
                bad = sprintf("%.0f allocs/op vs baseline %.0f (> %.2fx + 64 memory tolerance)", cur["allocs", name], base["allocs", name], mtol)
        }
        if (bad != "") {
            printf "REGRESSED %-55s %s\n", name, bad
            fails++
        } else {
            printf "ok        %-55s %12.0f ns/op (%.2fx)  %.0f B/op  %.0f allocs/op\n", name, cur["ns", name], ratio, cur["bytes", name], cur["allocs", name]
        }
    }
    for (name in names) {
        if (!(name in curnames)) {
            printf "MISSING   %-55s baseline %.0f ns/op but absent from fresh run\n", name, base["ns", name]
            fails++
        }
    }
    printf "bench_compare: %d compared, %d new, %d failing (time %.2fx, memory %.2fx tolerance)\n", length(curnames) - news, news, fails, tol, mtol
    exit fails > 0 ? 1 : 0
}
'
