#!/bin/sh
# Multi-core worker sweep: runs the parallel stratum benchmarks across
# several GOMAXPROCS values and prints the workers=1 vs workers=N speedup
# ratio per CPU count, plus the adaptive-vs-sequential ratio for the
# small-delta cost-gate pair.
#
#   ./scripts/bench_sweep.sh                 # -cpu=1,2,4, 3 iterations
#   CPUS=1,2,4,8 BENCHTIME=10x ./scripts/bench_sweep.sh sweep.txt
#
# With an argument, the raw `go test -bench` output is also written to that
# file (CI uploads it as a build artifact). The summary only reports; it
# never fails the run — single-core machines legitimately show ratios < 1
# for explicit worker counts (that is the regime the adaptive cost gate
# exists for), and shared runners are too noisy for a hard threshold. The
# bench-compare job is the regression gate; this job makes parallel wins
# and losses visible per PR.
set -e

cpus="${CPUS:-1,2,4}"
benchtime="${BENCHTIME:-3x}"
outfile="${1:-}"

run="$(go test -bench 'BenchmarkParallel(Stratum|SmallDelta)' -benchtime="$benchtime" -cpu="$cpus" -run '^$' .)"
printf '%s\n' "$run"
if [ -n "$outfile" ]; then
    printf '%s\n' "$run" > "$outfile"
fi

echo
echo "=== worker-sweep summary ==="
printf '%s\n' "$run" | awk '
/ ns\/op/ {
    name = $1
    # Go appends -GOMAXPROCS to the name except when it is 1.
    if (match(name, /-[0-9]+$/)) {
        cpu = substr(name, RSTART + 1)
        name = substr(name, 1, RSTART - 1)
    } else {
        cpu = "1"
    }
    t[name "@" cpu] = $3 + 0
    cpus[cpu] = 1
}
END {
    stratum = "BenchmarkParallelStratum/workers="
    small = "BenchmarkParallelSmallDelta/"
    for (c in cpus) order[++n] = c + 0
    # Sort the few CPU values numerically.
    for (i = 1; i <= n; i++)
        for (j = i + 1; j <= n; j++)
            if (order[j] < order[i]) { tmp = order[i]; order[i] = order[j]; order[j] = tmp }
    for (i = 1; i <= n; i++) {
        c = order[i]
        w1 = t[stratum "1@" c]
        if (w1 > 0) {
            for (w = 2; w <= 16; w *= 2) {
                wn = t[stratum w "@" c]
                if (wn > 0)
                    printf "cpu=%-2s workers=%-2d vs workers=1: %.2fx\n", c, w, w1 / wn
            }
            wa = t[stratum "adaptive@" c]
            if (wa > 0)
                printf "cpu=%-2s adaptive   vs workers=1: %.2fx\n", c, w1 / wa
        }
        seq = t[small "sequential@" c]
        ada = t[small "adaptive@" c]
        if (seq > 0 && ada > 0)
            printf "cpu=%-2s small-delta adaptive vs sequential: %.2fx (cost gate; ~1.0x or better expected)\n", c, seq / ada
    }
}
'
