#!/bin/sh
# Regenerates BENCH_baseline.json: a 1-iteration smoke snapshot of every
# benchmark, committed so CI (and humans) can spot benchmarks that stop
# compiling or wildly regress. Numbers from -benchtime=1x are noisy by
# design — treat them as order-of-magnitude references, not measurements.
set -e

out="$(go test -bench=. -benchtime=1x -run '^$' .)"

printf '{\n'
printf '  "note": "1-iteration smoke snapshot; regenerate with make bench-baseline; compare only against runs on the toolchain recorded in the go field",\n'
printf '  "go": "%s",\n' "$(go version | awk '{print $3}')"
printf '  "ns_per_op": {\n'
# NOTE: the ns/op line parsing in the awk below must stay in sync with
# the parsing in scripts/bench_compare.sh (same name munging).
printf '%s\n' "$out" | awk '
  / ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (n++) printf ",\n"
    printf "    \"%s\": %s", name, $3
  }
  END { printf "\n" }
'
printf '  }\n'
printf '}\n'
