#!/bin/sh
# Regenerates BENCH_baseline.json: a 1-iteration smoke snapshot of every
# benchmark, committed so CI (and humans) can spot benchmarks that stop
# compiling or wildly regress. The snapshot records ns/op, B/op, and
# allocs/op (-benchmem). Time from -benchtime=1x is noisy by design —
# treat it as an order-of-magnitude reference, not a measurement. The
# memory columns are far more stable: allocation counts and bytes are
# essentially deterministic per iteration, which is why bench_compare
# holds them to a much tighter tolerance.
set -e

out="$(go test -bench=. -benchtime=1x -benchmem -run '^$' .)"

# NOTE: the benchmark line parsing in the awks below must stay in sync
# with the parsing in scripts/bench_compare.sh (same name munging, same
# field positions: $3 ns/op, $5 B/op, $7 allocs/op on -benchmem lines).
emit_section() {
    printf '%s\n' "$out" | awk -v field="$1" '
      / ns\/op/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        val = $3
        if (field == "bytes" || field == "allocs") {
            # -benchmem appends: <B/op> B/op <allocs/op> allocs/op
            if ($6 != "B/op") next
            val = (field == "bytes") ? $5 : $7
        }
        if (n++) printf ",\n"
        printf "    \"%s\": %s", name, val
      }
      END { printf "\n" }
    '
}

printf '{\n'
printf '  "note": "1-iteration smoke snapshot; regenerate with make bench-baseline; compare only against runs on the toolchain recorded in the go field",\n'
printf '  "go": "%s",\n' "$(go version | awk '{print $3}')"
printf '  "ns_per_op": {\n'
emit_section time
printf '  },\n'
printf '  "bytes_per_op": {\n'
emit_section bytes
printf '  },\n'
printf '  "allocs_per_op": {\n'
emit_section allocs
printf '  }\n'
printf '}\n'
