#!/bin/sh
# Debug-endpoint smoke test: builds cmd/orchestra, starts a real node with
# -metrics-addr, publishes one transaction through the REPL, scrapes both
# renderings of /debug/orchestra, and asserts well-formed output — the
# "start node, scrape" gate from ISSUE 9 / DESIGN.md §12.
#
#   ./scripts/endpoint_smoke.sh
#   SMOKE_ADDR=127.0.0.1:16831 ./scripts/endpoint_smoke.sh
set -e

addr="${SMOKE_ADDR:-127.0.0.1:16830}"
dir="$(mktemp -d)"
pid=""
trap 'if [ -n "$pid" ]; then kill "$pid" 2>/dev/null || true; fi; rm -rf "$dir"' EXIT

go build -o "$dir/orchestra" ./cmd/orchestra

cat > "$dir/smoke.conf" <<'EOF'
peer a {
    relation R(x int, y string) key(x)
}
peer b like a
mapping identity M_ab a b
EOF

# The REPL gets an insert and a publish, then its stdin stays open long
# enough for the scrapes; the node exits when the pipe closes.
{ printf 'insert R 1 "v"\npublish\n'; sleep 15; } | \
    "$dir/orchestra" node -config "$dir/smoke.conf" -peer a -metrics-addr "$addr" \
    > "$dir/node.out" 2>&1 &
pid=$!

# Poll until the endpoint serves a snapshot that has seen the publish.
ok=""
for _ in $(seq 1 100); do
    if curl -fsS "http://$addr/debug/orchestra" > "$dir/snap.json" 2>/dev/null \
        && grep -q '"core_publish_total": 1' "$dir/snap.json"; then
        ok=1
        break
    fi
    sleep 0.1
done
if [ -z "$ok" ]; then
    echo "endpoint_smoke: node never served a snapshot with core_publish_total=1" >&2
    cat "$dir/node.out" >&2
    exit 1
fi

# The JSON rendering must parse and carry the series the round trip lights up.
if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$dir/snap.json" > /dev/null \
        || { echo "endpoint_smoke: /debug/orchestra is not valid JSON" >&2; exit 1; }
fi
for want in '"counters"' '"histograms"' '"eval"' 'core_publish_ns'; do
    grep -q "$want" "$dir/snap.json" \
        || { echo "endpoint_smoke: JSON snapshot missing $want" >&2; exit 1; }
done

# The Prometheus rendering must expose typed series and only two-field
# sample lines.
curl -fsS "http://$addr/debug/orchestra/metrics" > "$dir/metrics.prom"
for want in '# TYPE orchestra_core_publish_total counter' \
            'orchestra_core_publish_total 1' \
            'quantile="0.99"'; do
    grep -q "$want" "$dir/metrics.prom" \
        || { echo "endpoint_smoke: Prometheus scrape missing: $want" >&2; exit 1; }
done
awk '!/^#/ && NF != 2 { print "endpoint_smoke: malformed sample line: " $0; bad = 1 } END { exit bad }' \
    "$dir/metrics.prom"

# pprof rides on the same listener.
curl -fsS -o /dev/null "http://$addr/debug/pprof/" \
    || { echo "endpoint_smoke: /debug/pprof/ not served" >&2; exit 1; }

echo "endpoint_smoke: OK ($(grep -c '' "$dir/metrics.prom") Prometheus lines, pprof live)"
