#!/bin/sh
# Instrumentation-overhead gate: runs the BenchmarkOverhead* pairs
# (bench_overhead_test.go — the E2/E4/E10 workload shapes with the
# evaluator stats sink off and on), takes the best-of-COUNT ns/op per
# sub-benchmark, and fails when any enabled path exceeds its disabled twin
# by more than OVERHEAD_TOLERANCE percent.
#
#   ./scripts/bench_overhead.sh                       # 3% tolerance
#   OVERHEAD_TOLERANCE=5 ./scripts/bench_overhead.sh
#   BENCHTIME=50x COUNT=7 ./scripts/bench_overhead.sh
#
# Methodology (DESIGN.md §12): a fixed -benchtime=Nx pins both arms to the
# same iteration count (the E2 arm accumulates engine state, so ns/op
# depends on it), and best-of-COUNT discards scheduler and GC noise — the
# minimum is the run least disturbed by the machine, which is the honest
# estimate of the code's cost. The tolerance gates the ratio of minima.
# COUNT separate go-test invocations (rather than one -count=COUNT run)
# keep each off/on pair adjacent in time: go test groups repeated
# sub-benchmarks, so a single run measures all off arms before any on arm
# and slow machine-load drift would bias the comparison.
set -e

tolerance="${OVERHEAD_TOLERANCE:-3}"
benchtime="${BENCHTIME:-50x}"
count="${COUNT:-7}"

out=""
i=1
while [ "$i" -le "$count" ]; do
    run="$(go test -bench 'BenchmarkOverhead' -benchtime="$benchtime" -count=1 -run '^$' .)"
    out="$out
$run"
    i=$((i + 1))
done
printf '%s\n' "$out"

printf '%s\n' "$out" | awk -v tol="$tolerance" '
/^BenchmarkOverhead/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
    ns = $3 + 0
    if (!(name in best) || ns < best[name]) best[name] = ns
}
END {
    fail = 0
    pairs = 0
    for (name in best) {
        if (name !~ /metrics=off$/) continue
        on = name
        sub(/metrics=off$/, "metrics=on", on)
        if (!(on in best)) {
            printf "bench_overhead: no metrics=on twin for %s\n", name
            fail = 1
            continue
        }
        pairs++
        ratio = best[on] / best[name]
        verdict = "ok"
        if (ratio > 1 + tol / 100) {
            verdict = "FAIL"
            fail = 1
        }
        printf "bench_overhead: %-40s off=%.0f ns/op  on=%.0f ns/op  ratio=%.3f  [%s, tolerance +%s%%]\n",
            name, best[name], best[on], ratio, verdict, tol
    }
    if (pairs == 0) {
        print "bench_overhead: no benchmark pairs found"
        fail = 1
    }
    exit fail
}'
echo "bench_overhead: gate OK (tolerance +${tolerance}%)"
