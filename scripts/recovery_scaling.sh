#!/bin/sh
# Recovery-scaling gate: runs BenchmarkRecovery (bench_durable_test.go) at a
# small and a large transaction history and asserts the O(suffix) recovery
# claim (DESIGN.md §13) holds as the history grows:
#
#   1. from-checkpoint beats full replay by at least MIN_SPEEDUP at the
#      large history — the headline acceptance bar;
#   2. the speedup at the large history exceeds the speedup at the small
#      one — the gap must widen with history, because replay re-runs the
#      whole translation chase while the checkpoint path replays only the
#      fixed post-checkpoint suffix on top of a linear snapshot load.
#
#   ./scripts/recovery_scaling.sh                      # 1k vs 8k, 5x bar
#   SMALL=512 LARGE=4096 ./scripts/recovery_scaling.sh
#   BENCHTIME=6x COUNT=3 MIN_SPEEDUP=4 ./scripts/recovery_scaling.sh
#
# Methodology mirrors bench_overhead.sh: a fixed -benchtime=Nx pins both
# arms to the same iteration count, best-of-COUNT separate invocations
# discards scheduler and GC noise, and each invocation measures the
# from-checkpoint/full-replay pair adjacent in time so machine-load drift
# cannot bias one arm.
set -e

small="${SMALL:-1024}"
large="${LARGE:-8192}"
benchtime="${BENCHTIME:-4x}"
count="${COUNT:-2}"
min_speedup="${MIN_SPEEDUP:-5}"

out=""
for txns in "$small" "$large"; do
    i=1
    while [ "$i" -le "$count" ]; do
        run="$(ORCH_RECOVERY_TXNS="$txns" go test -bench '^BenchmarkRecovery$' -benchtime="$benchtime" -count=1 -run '^$' .)"
        out="$out
txns=$txns $(printf '%s\n' "$run" | grep '^BenchmarkRecovery' | tr '\n' '@')"
        i=$((i + 1))
    done
done
printf '%s\n' "$out" | tr '@' '\n'

printf '%s\n' "$out" | tr '@' '\n' | awk -v small="$small" -v large="$large" -v min_speedup="$min_speedup" '
/^txns=/ {
    txns = substr($1, 6)
    name = $2
    sub(/^BenchmarkRecovery\//, "", name)
    sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
    ns = $4 + 0
    key = txns "/" name
    if (!(key in best) || ns < best[key]) best[key] = ns
    next
}
/^BenchmarkRecovery/ {
    name = $1
    sub(/^BenchmarkRecovery\//, "", name)
    sub(/-[0-9]+$/, "", name)
    ns = $3 + 0
    key = txns "/" name
    if (!(key in best) || ns < best[key]) best[key] = ns
}
END {
    fail = 0
    for (i = 1; i <= 2; i++) {
        txns = (i == 1) ? small : large
        ck = best[txns "/from-checkpoint"]
        full = best[txns "/full-replay"]
        if (ck == 0 || full == 0) {
            printf "recovery_scaling: missing results at %d txns\n", txns
            exit 1
        }
        speedup[i] = full / ck
        printf "recovery_scaling: %5d txns  from-checkpoint=%.0f ns/op  full-replay=%.0f ns/op  speedup=%.2fx\n",
            txns, ck, full, speedup[i]
    }
    if (speedup[2] < min_speedup) {
        printf "recovery_scaling: FAIL speedup at %d txns is %.2fx, want >= %.2fx\n",
            large, speedup[2], min_speedup
        fail = 1
    }
    if (speedup[2] <= speedup[1]) {
        printf "recovery_scaling: FAIL speedup did not grow with history (%.2fx at %d vs %.2fx at %d)\n",
            speedup[2], large, speedup[1], small
        fail = 1
    }
    exit fail
}'
echo "recovery_scaling: gate OK (>= ${min_speedup}x at ${large} txns, gap widens from ${small})"
