package orchestra

import (
	"errors"

	"orchestra/internal/core"
	"orchestra/internal/exchange"
	"orchestra/internal/p2p"
	"orchestra/internal/recon"
	"orchestra/internal/storage"
)

// The public error taxonomy. Every error returned by this package wraps one
// of these sentinels when it matches, so callers dispatch with errors.Is
// regardless of which internal layer produced the failure; the original
// error (including detail types such as the key-violation record, reachable
// via errors.As) stays on the chain.
var (
	// ErrKeyViolation reports a write that would store two distinct tuples
	// under one primary key: a local insert colliding with stored data, or
	// a store-level violation surfaced during materialization.
	ErrKeyViolation = errors.New("orchestra: key violation")
	// ErrUnknownRelation reports a relation name the peer's schema does not
	// declare.
	ErrUnknownRelation = errors.New("orchestra: unknown relation")
	// ErrUnknownPeer reports a peer name the confederation does not declare.
	ErrUnknownPeer = errors.New("orchestra: unknown peer")
	// ErrTxnFinished reports use of a transaction after Commit or Abort.
	ErrTxnFinished = errors.New("orchestra: transaction already finished")
	// ErrConflictPending reports work blocked on a conflict that awaits
	// manual resolution: a strict reconcile that deferred transactions, or
	// a Resolve whose winner is not actually deferred.
	ErrConflictPending = errors.New("orchestra: conflict pending resolution")
	// ErrClosed reports use of a System after Close.
	ErrClosed = errors.New("orchestra: system closed")
	// ErrInvalidQuery reports a malformed query: an empty goal, a view rule
	// head that shadows a stored relation or uses a reserved name, an arity
	// mismatch, or an unsafe rule body (a head or filter variable that no
	// positive atom binds).
	ErrInvalidQuery = errors.New("orchestra: invalid query")
)

// KeyViolation is the detail record behind ErrKeyViolation, reachable with
// errors.As.
type KeyViolation = storage.ErrKeyViolation

// taggedError glues a public sentinel onto an internal error without losing
// either: errors.Is sees the sentinel, errors.As (and Is against internal
// sentinels) sees the wrapped chain.
type taggedError struct {
	sentinel error
	err      error
}

func (e *taggedError) Error() string   { return e.err.Error() }
func (e *taggedError) Unwrap() []error { return []error{e.sentinel, e.err} }

// sentinelFor maps an internal error chain to its public sentinel, or nil.
func sentinelFor(err error) error {
	var kv *storage.ErrKeyViolation
	switch {
	case errors.As(err, &kv):
		return ErrKeyViolation
	case errors.Is(err, storage.ErrUnknownRelation),
		errors.Is(err, core.ErrUnknownRelation),
		errors.Is(err, exchange.ErrUnknownRelation):
		return ErrUnknownRelation
	case errors.Is(err, core.ErrUnknownPeer),
		errors.Is(err, exchange.ErrUnknownPeer):
		return ErrUnknownPeer
	case errors.Is(err, core.ErrTxnFinished):
		return ErrTxnFinished
	case errors.Is(err, core.ErrInvalidQuery):
		return ErrInvalidQuery
	case errors.Is(err, recon.ErrNotDeferred):
		return ErrConflictPending
	case errors.Is(err, p2p.ErrAlreadyPublished),
		errors.Is(err, exchange.ErrAlreadyApplied),
		errors.Is(err, recon.ErrAlreadyReconciled):
		return nil // internal invariants; no public sentinel (yet)
	}
	return nil
}

// wrapErr translates an internal error for the public boundary. Context
// errors pass through untouched so errors.Is(err, context.DeadlineExceeded)
// holds without unwrapping ceremony.
func wrapErr(err error) error {
	if err == nil {
		return nil
	}
	if s := sentinelFor(err); s != nil {
		return &taggedError{sentinel: s, err: err}
	}
	return err
}
