package orchestra

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"orchestra/internal/core"
	"orchestra/internal/datalog"
	"orchestra/internal/demo"
	"orchestra/internal/exchange"
	"orchestra/internal/lsm"
	"orchestra/internal/obs"
	"orchestra/internal/p2p"
)

// System is an open confederation: the shared published-update store, the
// compiled mappings, and the peers opened against them. It is the facade's
// root object; create one with Open and release it with Close.
type System struct {
	core     *core.System
	store    Store
	base     settings
	policies map[string]*TrustPolicy
	// db is the durable LSM tier (WithDurableDir); nil for in-memory
	// systems. It backs both the published archive and peer checkpoints,
	// and is owned by the System: Close checkpoints open peers into it and
	// releases it.
	db        *lsm.DB
	closeOnce sync.Once
	closeErr  error

	// reg is the system-wide metrics registry (nil with WithMetrics(false));
	// stats is the engine-shared datalog counter block every peer's
	// evaluations accumulate into. See metrics.go.
	reg   *obs.Registry
	stats *datalog.EvalStats

	// ctx is the system lifetime; Close cancels it, stopping subscription
	// pumps and ending every active subscription with ErrClosed.
	ctx    context.Context
	cancel context.CancelFunc

	mu    sync.Mutex
	peers map[string]*Peer
}

// Open validates the confederation description and opens a System over it.
// Options set system-wide defaults (parallelism, witness bounds, the shared
// store, the default trust policy); System.Peer can override the trust
// policy per peer.
func Open(sch *Schema, opts ...Option) (*System, error) {
	if sch == nil {
		return nil, fmt.Errorf("orchestra: Open with a nil schema")
	}
	peers, mappings, policies, err := sch.resolve()
	if err != nil {
		return nil, wrapErr(err)
	}
	cs, err := core.NewSystem(peers, mappings)
	if err != nil {
		return nil, wrapErr(err)
	}
	base := defaultSettings().apply(opts)
	reg, stats := newSystemObservability(base.metrics)
	store := base.store
	var db *lsm.DB
	if base.durableDir != "" {
		if store != nil {
			return nil, fmt.Errorf("orchestra: WithDurableDir and WithStore are mutually exclusive — the durable tier is the store")
		}
		db, err = lsm.Open(base.durableDir, lsm.Options{Metrics: reg})
		if err != nil {
			return nil, fmt.Errorf("orchestra: open durable tier: %w", err)
		}
		ds, err := p2p.NewDurableStore(db)
		if err != nil {
			db.Close()
			return nil, fmt.Errorf("orchestra: open durable tier: %w", err)
		}
		ds.SetMetrics(reg)
		store = ds
	}
	if store == nil {
		store = NewMemoryStore()
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &System{
		core:     cs,
		store:    store,
		base:     base,
		policies: policies,
		db:       db,
		reg:      reg,
		stats:    stats,
		ctx:      ctx,
		cancel:   cancel,
		peers:    map[string]*Peer{},
	}, nil
}

// Peer opens (or returns the already-open handle for) the named peer.
// Per-peer options — most usefully WithTrustPolicy — must be given on the
// first open; a later call with options for an open peer is an error.
// The effective trust policy is resolved in precedence order: per-peer
// option, schema-declared policy, Open-level default, trust-all at 1.
func (s *System) Peer(name string, opts ...Option) (*Peer, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ctx.Err() != nil {
		return nil, ErrClosed
	}
	if p, ok := s.peers[name]; ok {
		if len(opts) > 0 {
			return nil, fmt.Errorf("orchestra: peer %s already open; per-peer options must be given on first open", name)
		}
		return p, nil
	}
	set := s.base.apply(opts)
	pol := set.policy
	if pol == s.base.policy { // not overridden per peer: schema declarations win
		pol = policyFor(s.policies, s.base.policy, name)
	}
	cfg := exchange.Config{
		Parallelism:     set.parallelism,
		MaxMonomials:    set.maxMonomials,
		ReconcileWindow: set.reconcileWindow,
		Stats:           s.stats,
	}
	var cp *core.Peer
	var err error
	if s.db != nil {
		// Durable tier: the peer comes back from its last checkpoint plus a
		// replay of the published suffix, instead of starting empty.
		cp, err = core.RecoverPeerWith(s.ctx, name, s.core, s.store, pol, cfg, s.db)
	} else {
		cp, err = core.NewPeerWith(name, s.core, s.store, pol, cfg)
	}
	if err != nil {
		return nil, wrapErr(err)
	}
	p := &Peer{
		sys:       s,
		name:      name,
		core:      cp,
		set:       set,
		wake:      make(chan struct{}, 1),
		subs:      map[*subscription]struct{}{},
		subEvents: s.reg.Counter("subscribe_events_total"),
		pumpRuns:  s.reg.Counter("subscribe_pump_reconciles_total"),
	}
	cp.SetApplyHook(p.fanout)
	cp.SetObserver(s.reg, set.slowOp)
	s.peers[name] = p
	return p, nil
}

// Epoch returns the shared store's current logical clock.
func (s *System) Epoch() (uint64, error) { return s.store.Epoch() }

// ReconcileAll reconciles every open peer once, in deterministic (name)
// order, and returns the per-peer reports. Each peer translates its
// fetched backlog in group-commit windows sized adaptively from observed
// drain latency (see Peer.Reconcile and WithReconcileWindow), so draining
// a publication burst across the confederation costs a handful of seeded
// fixpoints per peer rather than one per transaction. On error the partial report map
// is returned alongside it; with WithStrictConflicts a deferred conflict at
// any peer surfaces as ErrConflictPending, after later peers have still
// been reconciled.
func (s *System) ReconcileAll(ctx context.Context) (map[string]*ReconcileReport, error) {
	if s.ctx.Err() != nil {
		return nil, ErrClosed
	}
	s.mu.Lock()
	peers := make([]*Peer, 0, len(s.peers))
	for _, p := range s.peers {
		peers = append(peers, p)
	}
	s.mu.Unlock()
	sort.Slice(peers, func(i, j int) bool { return peers[i].name < peers[j].name })
	out := make(map[string]*ReconcileReport, len(peers))
	var firstErr error
	for _, p := range peers {
		rep, err := p.Reconcile(ctx)
		if rep != nil {
			out[p.name] = rep
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return out, firstErr
}

// Store returns the shared published-update store.
func (s *System) Store() Store { return s.store }

// Close releases the system: subscription pumps stop and every active
// subscription ends with ErrClosed. Peers' local state stays readable, but
// operations that would advance the system return ErrClosed. On a durable
// system, Close first checkpoints every open peer (so a clean shutdown
// loses nothing, including committed-but-unpublished transactions) and
// then releases the LSM database. Close is idempotent.
func (s *System) Close() error {
	s.closeOnce.Do(func() {
		s.cancel()
		if s.db == nil {
			return
		}
		s.mu.Lock()
		peers := make([]*Peer, 0, len(s.peers))
		for _, p := range s.peers {
			peers = append(peers, p)
		}
		s.mu.Unlock()
		sort.Slice(peers, func(i, j int) bool { return peers[i].name < peers[j].name })
		for _, p := range peers {
			if err := p.core.SaveCheckpoint(s.db); err != nil && s.closeErr == nil {
				s.closeErr = fmt.Errorf("orchestra: close: checkpoint %s: %w", p.name, err)
			}
		}
		if err := s.db.Close(); err != nil && s.closeErr == nil {
			s.closeErr = fmt.Errorf("orchestra: close durable tier: %w", err)
		}
	})
	return s.closeErr
}

// notifyPublish pokes every other peer's auto-reconcile pump after origin
// published, pushing the new epoch to their subscribers.
func (s *System) notifyPublish(origin *Peer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.peers {
		if p != origin {
			p.poke()
		}
	}
}

// RunDemoScenario runs one of the SIGMOD 2007 demonstration scenarios
// (1..DemoScenarios) over the paper's Figure 2 bioinformatics CDSS,
// printing state transitions to w.
func RunDemoScenario(w io.Writer, n int) error { return demo.Run(w, n) }

// DemoScenarios returns the number of demonstration scenarios.
func DemoScenarios() int { return demo.Scenarios() }
