package orchestra_test

// Goal-directed vs full-fixpoint query benchmarks over an E4-style 3-way
// mapping workload (DESIGN.md §2 E4, §7): a point query binding a single
// organism key against the OPS join view. The goal-directed path
// magic-rewrites the view for the binding and explores only the bound
// key's join partners; the full-fixpoint baseline materializes the whole
// view and filters. The CI bench-smoke job runs both; `make bench-query`
// compares them locally.

import (
	"context"
	"fmt"
	"math"
	"testing"

	"orchestra"
)

const benchJoinRows = 2000

// benchJoinPeer opens a single-peer system with the E4 workload shape —
// dimension relations O (organism -> oid) and P (protein -> pid) joined by
// a fact relation S — and loads n S-rows plus matching dimensions.
func benchJoinPeer(b *testing.B, n int) (*orchestra.Peer, int) {
	b.Helper()
	ps := orchestra.NewPeerSchema("a")
	ps.MustAddRelation(orchestra.MustRelation("O",
		[]orchestra.Attribute{
			{Name: "org", Type: orchestra.KindString},
			{Name: "oid", Type: orchestra.KindInt},
		}, "org"))
	ps.MustAddRelation(orchestra.MustRelation("P",
		[]orchestra.Attribute{
			{Name: "prot", Type: orchestra.KindString},
			{Name: "pid", Type: orchestra.KindInt},
		}, "prot"))
	ps.MustAddRelation(orchestra.MustRelation("S",
		[]orchestra.Attribute{
			{Name: "oid", Type: orchestra.KindInt},
			{Name: "pid", Type: orchestra.KindInt},
			{Name: "seq", Type: orchestra.KindString},
		}, "oid", "pid"))
	sys, err := orchestra.Open(orchestra.NewSchema().Peer("a", ps))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { sys.Close() })
	peer, err := sys.Peer("a")
	if err != nil {
		b.Fatal(err)
	}
	keySpace := int(math.Ceil(math.Sqrt(float64(n))))
	tx := peer.Begin()
	for i := 0; i < keySpace; i++ {
		tx.Insert("O", orchestra.NewTuple(orchestra.String(fmt.Sprintf("org%d", i)), orchestra.Int(int64(i))))
	}
	for i := 0; i <= n/keySpace+1; i++ {
		tx.Insert("P", orchestra.NewTuple(orchestra.String(fmt.Sprintf("prot%d", i)), orchestra.Int(int64(i))))
	}
	for i := 0; i < n; i++ {
		tx.Insert("S", orchestra.NewTuple(
			orchestra.Int(int64(i%keySpace)), orchestra.Int(int64(i/keySpace)),
			orchestra.String(fmt.Sprintf("seq%d", i))))
	}
	if _, err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	return peer, keySpace
}

// opsPointQuery asks for the (protein, sequence) pairs of one organism
// through the OPS 3-way join view.
func opsPointQuery(peer *orchestra.Peer, org string) *orchestra.Query {
	return peer.Query(context.Background(), "OPS",
		orchestra.Bind(orchestra.String(org)), orchestra.Free("p"), orchestra.Free("s")).
		Rule("OPS", []string{"o", "p", "s"},
			orchestra.Atom("O", orchestra.Free("o"), orchestra.Free("oid")),
			orchestra.Atom("P", orchestra.Free("p"), orchestra.Free("pid")),
			orchestra.Atom("S", orchestra.Free("oid"), orchestra.Free("pid"), orchestra.Free("s")))
}

func runPointLookup(b *testing.B, full bool) {
	peer, keySpace := benchJoinPeer(b, benchJoinRows)
	// Warm the peer's query mirror so both modes measure evaluation, not
	// the one-time EDB build.
	if _, err := opsPointQuery(peer, "org0").All(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := opsPointQuery(peer, fmt.Sprintf("org%d", i%keySpace))
		if full {
			q = q.FullFixpoint()
		}
		ans, err := q.All()
		if err != nil {
			b.Fatal(err)
		}
		if len(ans) == 0 {
			b.Fatal("no answers")
		}
	}
}

// BenchmarkQueryGoalDirectedPointLookup: single bound organism key over the
// 3-way join view, magic-rewritten (the demanded slice of the join).
func BenchmarkQueryGoalDirectedPointLookup(b *testing.B) { runPointLookup(b, false) }

// BenchmarkQueryFullFixpointPointLookup: the same query forced through the
// full-fixpoint baseline (materialize the whole OPS view, then filter).
func BenchmarkQueryFullFixpointPointLookup(b *testing.B) { runPointLookup(b, true) }

// The recursive pair: bounded reachability over a chain-with-branches
// graph, goal-directed from one source vs the full transitive closure.
func benchGraphPeer(b *testing.B, nodes int) *orchestra.Peer {
	b.Helper()
	ps := orchestra.NewPeerSchema("g")
	ps.MustAddRelation(orchestra.MustRelation("E",
		[]orchestra.Attribute{
			{Name: "src", Type: orchestra.KindInt},
			{Name: "dst", Type: orchestra.KindInt},
		}, "src", "dst"))
	sys, err := orchestra.Open(orchestra.NewSchema().Peer("g", ps))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { sys.Close() })
	peer, err := sys.Peer("g")
	if err != nil {
		b.Fatal(err)
	}
	tx := peer.Begin()
	// 50 disjoint chains of nodes/50 hops each: a bound source reaches only
	// its own chain's tail.
	chain := nodes / 50
	for c := 0; c < 50; c++ {
		for i := 0; i < chain-1; i++ {
			tx.Insert("E", orchestra.NewTuple(
				orchestra.Int(int64(c*chain+i)), orchestra.Int(int64(c*chain+i+1))))
		}
	}
	if _, err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	return peer
}

func reachableQuery(peer *orchestra.Peer, src int64) *orchestra.Query {
	return peer.Query(context.Background(), "reach",
		orchestra.Bind(orchestra.Int(src)), orchestra.Free("y")).
		Rule("reach", []string{"x", "y"},
			orchestra.Atom("E", orchestra.Free("x"), orchestra.Free("y"))).
		Rule("reach", []string{"x", "z"},
			orchestra.Atom("reach", orchestra.Free("x"), orchestra.Free("y")),
			orchestra.Atom("E", orchestra.Free("y"), orchestra.Free("z")))
}

func runReachability(b *testing.B, full bool) {
	peer := benchGraphPeer(b, 1000)
	if _, err := reachableQuery(peer, 0).All(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := reachableQuery(peer, int64((i%50)*20))
		if full {
			q = q.FullFixpoint()
		}
		ans, err := q.All()
		if err != nil {
			b.Fatal(err)
		}
		if len(ans) == 0 {
			b.Fatal("no answers")
		}
	}
}

// BenchmarkQueryGoalDirectedReachability: recursive reachability from one
// bound source; demand stays inside the source's component.
func BenchmarkQueryGoalDirectedReachability(b *testing.B) { runReachability(b, false) }

// BenchmarkQueryFullFixpointReachability: the same goal over the full
// transitive closure of every component.
func BenchmarkQueryFullFixpointReachability(b *testing.B) { runReachability(b, true) }
