package orchestra_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"orchestra"
)

// TestReconcileExpiredContext: a fixpoint evaluation started with an
// already-expired context returns context.DeadlineExceeded without
// completing an iteration — bob's state must be untouched.
func TestReconcileExpiredContext(t *testing.T) {
	_, alice, bob := openGenes(t)
	if _, err := alice.Begin().Insert("Gene", gene("BRCA1", 17)).Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Publish(context.Background()); err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := bob.Reconcile(expired); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("reconcile with expired context = %v, want DeadlineExceeded", err)
	}
	rows, err := bob.Rows("Gene")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("bob applied %v despite the expired context", rows)
	}
	// A live context afterwards still works: nothing was corrupted.
	if _, err := bob.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rows, _ := bob.Rows("Gene"); len(rows) != 1 {
		t.Fatalf("recovery reconcile rows = %v", rows)
	}
}

// TestPublishExpiredContext: publish honors an expired deadline too, and
// the transactions stay queued for a later successful publish.
func TestPublishExpiredContext(t *testing.T) {
	_, alice, _ := openGenes(t)
	if _, err := alice.Begin().Insert("Gene", gene("BRCA1", 17)).Commit(); err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := alice.Publish(expired); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("publish with expired context = %v", err)
	}
	epoch, err := alice.Publish(context.Background())
	if err != nil || epoch != 1 {
		t.Fatalf("retry publish = (%d, %v), want (1, nil)", epoch, err)
	}
}

// TestReconcileDeadlineOnLongTranslation: a deadline set far below the
// translation's real cost makes Reconcile return DeadlineExceeded promptly
// instead of finishing the fixpoint.
func TestReconcileDeadlineOnLongTranslation(t *testing.T) {
	ctx := context.Background()
	// A wide identity confederation: one hub publish fans out through many
	// mapping rules, giving the fixpoint rounds enough jobs that the
	// per-job cancellation checks bite quickly.
	rel := orchestra.MustRelation("R",
		[]orchestra.Attribute{
			{Name: "k", Type: orchestra.KindInt},
			{Name: "v", Type: orchestra.KindString},
		}, "k")
	ps := orchestra.NewPeerSchema("wide")
	ps.MustAddRelation(rel)
	sch := orchestra.NewSchema().Peer("hub", ps)
	const spokes = 12
	for i := 0; i < spokes; i++ {
		name := fmt.Sprintf("spoke%02d", i)
		sch.Peer(name, ps).
			Identity(fmt.Sprintf("M_h%02d", i), "hub", name).
			Identity(fmt.Sprintf("M_%02dh", i), name, "hub")
	}
	sys, err := orchestra.Open(sch, orchestra.WithParallelism(-1))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	hub, err := sys.Peer("hub")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := sys.Peer("spoke00")
	if err != nil {
		t.Fatal(err)
	}
	txn := hub.Begin()
	for i := 0; i < 3000; i++ {
		txn.Insert("R", orchestra.NewTuple(orchestra.Int(int64(i)), orchestra.String("v")))
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Publish(ctx); err != nil {
		t.Fatal(err)
	}

	short, cancel := context.WithTimeout(ctx, time.Millisecond)
	defer cancel()
	start := time.Now()
	_, rerr := sub.Reconcile(short)
	elapsed := time.Since(start)
	if !errors.Is(rerr, context.DeadlineExceeded) {
		t.Fatalf("reconcile under 1ms deadline = %v, want DeadlineExceeded", rerr)
	}
	// "Promptly" with a generous margin for slow CI machines: the full
	// translation takes much longer than this on the same hardware.
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	t.Logf("deadline honored after %v", elapsed)

	// A cancellation can abandon a transaction half-propagated; the next
	// Reconcile must rebuild the engine and deliver the complete epoch.
	report, err := sub.Reconcile(ctx)
	if err != nil {
		t.Fatalf("recovery reconcile: %v", err)
	}
	if len(report.Accepted) != 1 {
		t.Fatalf("recovery accepted %v", report.Accepted)
	}
	rows, err := sub.Rows("R")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3000 {
		t.Fatalf("recovery delivered %d of 3000 rows — partial translation leaked", len(rows))
	}
}
