// Command orchestra runs CDSS nodes and update-store replicas, built
// entirely on the public orchestra SDK.
//
// Usage:
//
//	orchestra serve -addr 127.0.0.1:7070 [-log store.log]   # run a store replica
//	orchestra node  -config cdss.conf -peer NAME \
//	                [-store HOST:PORT,HOST:PORT]            # interactive peer
//	                [-durable DIR]                          # ...on the durable LSM tier
//	                [-metrics-addr 127.0.0.1:6060]          # live introspection + pprof
//	orchestra epoch -addr 127.0.0.1:7070                    # print the current epoch
//	orchestra log   -addr 127.0.0.1:7070 [-since N]         # dump archived transactions
//	orchestra inspect -config cdss.conf -peer NAME \
//	                -durable DIR [-rel R]                   # dump a recovered durable peer
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the default mux for -metrics-addr
	"os"
	"os/signal"
	"strings"

	"orchestra"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "node":
		fs := flag.NewFlagSet("node", flag.ExitOnError)
		confPath := fs.String("config", "", "CDSS configuration file")
		peerName := fs.String("peer", "", "peer to run as")
		storeAddrs := fs.String("store", "", "comma-separated store replica addresses; empty = in-process store")
		durableDir := fs.String("durable", "", "durable LSM tier directory; archive and peer checkpoints survive restarts")
		metricsAddr := fs.String("metrics-addr", "", "serve /debug/orchestra (metrics JSON + Prometheus text) and /debug/pprof/ on this address")
		_ = fs.Parse(os.Args[2:])
		if *confPath == "" || *peerName == "" {
			log.Fatal("usage: orchestra node -config FILE -peer NAME [-store ADDRS | -durable DIR]")
		}
		if *storeAddrs != "" && *durableDir != "" {
			log.Fatal("orchestra node: -store and -durable are mutually exclusive")
		}
		f, err := os.Open(*confPath)
		if err != nil {
			log.Fatal(err)
		}
		sch, err := orchestra.ParseSchema(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		opts := []orchestra.Option{}
		if *storeAddrs != "" {
			var replicas []orchestra.Store
			for _, a := range strings.Split(*storeAddrs, ",") {
				replicas = append(replicas, orchestra.DialStore(strings.TrimSpace(a)))
			}
			opts = append(opts, orchestra.WithStore(orchestra.NewReplicatedStore(replicas...)))
		}
		if *durableDir != "" {
			opts = append(opts, orchestra.WithDurableDir(*durableDir))
		}
		sys, err := orchestra.Open(sch, opts...)
		if err != nil {
			log.Fatal(err)
		}
		defer sys.Close()
		peer, err := sys.Peer(*peerName)
		if err != nil {
			log.Fatal(err)
		}
		if *metricsAddr != "" {
			// The pprof import registered its handlers on the default mux;
			// mount the system's introspection endpoint beside them and serve
			// both from one listener.
			h := sys.DebugHandler()
			http.Handle("/debug/orchestra", h)
			http.Handle("/debug/orchestra/", h)
			ln, err := net.Listen("tcp", *metricsAddr)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("metrics on http://%s/debug/orchestra (Prometheus at /debug/orchestra/metrics, pprof at /debug/pprof/)\n", ln.Addr())
			go func() {
				if err := http.Serve(ln, nil); err != nil {
					log.Printf("metrics server: %v", err)
				}
			}()
		}
		fmt.Printf("orchestra node %q ready (type help)\n", *peerName)
		if err := peer.RunREPL(os.Stdin, os.Stdout); err != nil {
			log.Fatal(err)
		}
	case "serve":
		fs := flag.NewFlagSet("serve", flag.ExitOnError)
		addr := fs.String("addr", "127.0.0.1:7070", "listen address")
		logPath := fs.String("log", "", "durable append-only log file (empty = in-memory)")
		_ = fs.Parse(os.Args[2:])
		var store orchestra.Store = orchestra.NewMemoryStore()
		if *logPath != "" {
			fstore, err := orchestra.OpenFileStore(*logPath)
			if err != nil {
				log.Fatal(err)
			}
			defer fstore.Close()
			store = fstore
		}
		srv, err := orchestra.NewStoreServer(store, *addr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("orchestra update-store replica listening on %s\n", srv.Addr())
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		fmt.Println("shutting down")
		_ = srv.Close()
	case "epoch":
		fs := flag.NewFlagSet("epoch", flag.ExitOnError)
		addr := fs.String("addr", "127.0.0.1:7070", "store address")
		_ = fs.Parse(os.Args[2:])
		epoch, err := orchestra.DialStore(*addr).Epoch()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(epoch)
	case "log":
		fs := flag.NewFlagSet("log", flag.ExitOnError)
		addr := fs.String("addr", "127.0.0.1:7070", "store address")
		since := fs.Uint64("since", 0, "only transactions after this epoch")
		_ = fs.Parse(os.Args[2:])
		txns, epoch, err := orchestra.DialStore(*addr).Since(*since)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "epoch %d, %d transaction(s)\n", epoch, len(txns))
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		for _, t := range txns {
			if err := enc.Encode(orchestra.EncodeTxn(t)); err != nil {
				log.Fatal(err)
			}
		}
	case "inspect":
		fs := flag.NewFlagSet("inspect", flag.ExitOnError)
		confPath := fs.String("config", "", "CDSS configuration file")
		peerName := fs.String("peer", "", "peer whose durable state to dump")
		durableDir := fs.String("durable", "", "durable LSM tier directory")
		rel := fs.String("rel", "", "dump only this relation")
		_ = fs.Parse(os.Args[2:])
		if *confPath == "" || *peerName == "" || *durableDir == "" {
			log.Fatal("usage: orchestra inspect -config FILE -peer NAME -durable DIR [-rel R]")
		}
		f, err := os.Open(*confPath)
		if err != nil {
			log.Fatal(err)
		}
		sch, err := orchestra.ParseSchema(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		// Opening the peer over the durable tier recovers it from its last
		// checkpoint plus the published suffix; dumping its rows shows the
		// exact state a restarted node would come back with.
		sys, err := orchestra.Open(sch, orchestra.WithDurableDir(*durableDir))
		if err != nil {
			log.Fatal(err)
		}
		peer, err := sys.Peer(*peerName)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "peer %s recovered at epoch %d\n", *peerName, peer.Epoch())
		if stats, ok, err := peer.SnapshotStats(); err != nil {
			log.Fatal(err)
		} else if ok {
			fmt.Fprintf(os.Stderr, "engine snapshot: epoch %d, %d predicate(s), %d fact(s), %d polynomial node(s), %d variable(s), %d bytes\n",
				stats.Epoch, stats.Preds, stats.Facts, stats.PolyNodes, stats.Vars, stats.Bytes)
		} else {
			fmt.Fprintln(os.Stderr, "engine snapshot: none (no checkpoint yet)")
		}
		for _, r := range peer.Relations() {
			if *rel != "" && r.Name != *rel {
				continue
			}
			rows, err := peer.Rows(r.Name)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%s (%d rows)\n", r.Name, len(rows))
			for _, tu := range rows {
				fmt.Printf("  %v\n", tu)
			}
		}
		if err := sys.Close(); err != nil {
			log.Fatal(err)
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  orchestra node  -config FILE -peer NAME [-store ADDRS | -durable DIR]  interactive CDSS peer
                  [-metrics-addr HOST:PORT]                 ...serving live metrics + pprof
  orchestra serve -addr HOST:PORT [-log FILE]               run a store replica
  orchestra epoch -addr HOST:PORT                           print the current epoch
  orchestra log   -addr HOST:PORT [-since N]                dump archived transactions
  orchestra inspect -config FILE -peer NAME -durable DIR    dump a recovered durable peer
`)
	os.Exit(2)
}
