// Command orchestra-bench regenerates the experiment tables E1–E10 indexed
// in DESIGN.md §2 and recorded in EXPERIMENTS.md (E8, the goal-directed
// query ablation, is described in DESIGN.md §7; E9, group-commit update
// exchange, in DESIGN.md §8; E10, the adaptive parallel stratum executor,
// in DESIGN.md §9). Sizes are laptop-scale by
// default; -quick shrinks them further, -full grows them.
//
// Usage:
//
//	orchestra-bench             # default sizes
//	orchestra-bench -quick      # CI-friendly
//	orchestra-bench -full       # the sizes recorded in EXPERIMENTS.md
//	orchestra-bench -only E2,E5 # subset
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"orchestra/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "smaller sizes (CI)")
	full := flag.Bool("full", false, "the sizes recorded in EXPERIMENTS.md")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E1,E5)")
	flag.Parse()

	e1 := []int{20, 100, 400}
	e2base, e2fracs := 2000, []float64{0.001, 0.01, 0.1, 1.0}
	e3base, e3fracs := 2000, []float64{0.001, 0.01, 0.1}
	e4 := 20000
	e5sizes, e5rates := []int{100, 1000}, []float64{0, 0.1, 0.5}
	e6sizes, e6txns := []int{2, 4, 8}, 100
	e7peers, e7txns, e7bounds := 4, 60, []int{1, 4, 8, 0}
	e9burst, e9pub := 64, 3
	e10rules, e10rows, e10workers := 8, 1500, []int{1, 2, 4, 8}
	if *quick {
		e1 = []int{10, 50}
		e2base, e2fracs = 400, []float64{0.01, 0.1, 1.0}
		e3base, e3fracs = 400, []float64{0.01, 0.1}
		e4 = 2000
		e5sizes, e5rates = []int{100}, []float64{0, 0.5}
		e6sizes, e6txns = []int{2, 4}, 30
		e7peers, e7txns, e7bounds = 3, 20, []int{1, 8, 0}
		e9burst, e9pub = 16, 2
		e10rules, e10rows, e10workers = 4, 500, []int{2, 4}
	}
	if *full {
		e1 = []int{20, 100, 400, 2000}
		e2base, e2fracs = 10000, []float64{0.001, 0.01, 0.1, 1.0}
		e3base, e3fracs = 10000, []float64{0.001, 0.01, 0.1}
		e4 = 50000
		e5sizes, e5rates = []int{100, 1000, 5000}, []float64{0, 0.1, 0.5}
		e6sizes, e6txns = []int{2, 4, 8, 16}, 200
		e7peers, e7txns, e7bounds = 4, 100, []int{1, 4, 8, 16, 0}
		e9burst, e9pub = 256, 4
		e10rules, e10rows, e10workers = 16, 4000, []int{1, 2, 4, 8, 16}
	}

	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	want := func(id string) bool { return len(wanted) == 0 || wanted[id] }

	type runner struct {
		id  string
		run func() (*experiments.Table, error)
	}
	runners := []runner{
		{"E1", func() (*experiments.Table, error) { return experiments.E1InsertionScaling(e1) }},
		{"E2", func() (*experiments.Table, error) { return experiments.E2IncrementalVsFull(e2base, e2fracs) }},
		{"E3", func() (*experiments.Table, error) { return experiments.E3DeletionPropagation(e3base, e3fracs) }},
		{"E4", func() (*experiments.Table, error) { return experiments.E4ProvenanceOverhead(e4) }},
		{"E5", func() (*experiments.Table, error) { return experiments.E5Reconciliation(e5sizes, e5rates) }},
		{"E6", func() (*experiments.Table, error) { return experiments.E6Topologies(e6sizes, e6txns) }},
		{"E7", func() (*experiments.Table, error) { return experiments.E7WitnessBound(e7peers, e7txns, e7bounds) }},
		{"E8", func() (*experiments.Table, error) { return experiments.E8GoalDirectedQuery(e4) }},
		{"E9", func() (*experiments.Table, error) { return experiments.E9PublishBatch(e9burst, e9pub) }},
		{"E10", func() (*experiments.Table, error) {
			return experiments.E10ParallelStratum(e10rules, e10rows, e10workers)
		}},
	}
	for _, r := range runners {
		if !want(r.id) {
			continue
		}
		tbl, err := r.run()
		if err != nil {
			log.Fatalf("%s: %v", r.id, err)
		}
		tbl.Fprint(os.Stdout)
		fmt.Println()
	}
}
