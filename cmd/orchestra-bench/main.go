// Command orchestra-bench regenerates the experiment tables E1–E10 indexed
// in DESIGN.md §2 and recorded in EXPERIMENTS.md (E8, the goal-directed
// query ablation, is described in DESIGN.md §7; E9, group-commit update
// exchange, in DESIGN.md §8; E10, the adaptive parallel stratum executor,
// in DESIGN.md §9). Sizes are laptop-scale by
// default; -quick shrinks them further, -full grows them.
//
// Usage:
//
//	orchestra-bench             # default sizes
//	orchestra-bench -quick      # CI-friendly
//	orchestra-bench -full       # the sizes recorded in EXPERIMENTS.md
//	orchestra-bench -only E2,E5 # subset
//	orchestra-bench -metrics    # append per-experiment evaluator counters
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"orchestra/internal/datalog"
	"orchestra/internal/experiments"
)

// evalCounts is one plain reading of the shared EvalStats, so per-experiment
// deltas are simple subtractions.
type evalCounts struct {
	probes, pushdown, candidates, emitted, suppressed int64
	hashJoins, rounds, parRounds, workers             int64
}

func readCounts(st *datalog.EvalStats) evalCounts {
	return evalCounts{
		probes:     st.Probes.Load(),
		pushdown:   st.PushdownProbes.Load(),
		candidates: st.Candidates.Load(),
		emitted:    st.Emitted.Load(),
		suppressed: st.Suppressed.Load(),
		hashJoins:  st.HashJoinBuilds.Load(),
		rounds:     st.Rounds.Load(),
		parRounds:  st.ParallelRounds.Load(),
		workers:    st.WorkersUsed.Load(),
	}
}

// printDelta renders what one experiment cost the evaluator, in the same
// vocabulary as the /debug/orchestra endpoint's datalog_* series.
func printDelta(id string, before, after evalCounts) {
	d := evalCounts{
		probes:     after.probes - before.probes,
		pushdown:   after.pushdown - before.pushdown,
		candidates: after.candidates - before.candidates,
		emitted:    after.emitted - before.emitted,
		suppressed: after.suppressed - before.suppressed,
		hashJoins:  after.hashJoins - before.hashJoins,
		rounds:     after.rounds - before.rounds,
		parRounds:  after.parRounds - before.parRounds,
		workers:    after.workers - before.workers,
	}
	util := 0.0
	if d.rounds > 0 {
		util = float64(d.workers) / float64(d.rounds)
	}
	fmt.Printf("  %s metrics: rounds=%d (parallel=%d, %.1f workers/round) probes=%d pushdown=%d candidates=%d emitted=%d suppressed=%d hashjoins=%d\n",
		id, d.rounds, d.parRounds, util, d.probes, d.pushdown,
		d.candidates, d.emitted, d.suppressed, d.hashJoins)
}

func main() {
	quick := flag.Bool("quick", false, "smaller sizes (CI)")
	full := flag.Bool("full", false, "the sizes recorded in EXPERIMENTS.md")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E1,E5)")
	metrics := flag.Bool("metrics", false, "print per-experiment datalog evaluator counter deltas")
	flag.Parse()

	var stats *datalog.EvalStats
	if *metrics {
		stats = &datalog.EvalStats{}
		experiments.Stats = stats
	}

	e1 := []int{20, 100, 400}
	e2base, e2fracs := 2000, []float64{0.001, 0.01, 0.1, 1.0}
	e3base, e3fracs := 2000, []float64{0.001, 0.01, 0.1}
	e4 := 20000
	e5sizes, e5rates := []int{100, 1000}, []float64{0, 0.1, 0.5}
	e6sizes, e6txns := []int{2, 4, 8}, 100
	e7peers, e7txns, e7bounds := 4, 60, []int{1, 4, 8, 0}
	e9burst, e9pub := 64, 3
	e10rules, e10rows, e10workers := 8, 1500, []int{1, 2, 4, 8}
	if *quick {
		e1 = []int{10, 50}
		e2base, e2fracs = 400, []float64{0.01, 0.1, 1.0}
		e3base, e3fracs = 400, []float64{0.01, 0.1}
		e4 = 2000
		e5sizes, e5rates = []int{100}, []float64{0, 0.5}
		e6sizes, e6txns = []int{2, 4}, 30
		e7peers, e7txns, e7bounds = 3, 20, []int{1, 8, 0}
		e9burst, e9pub = 16, 2
		e10rules, e10rows, e10workers = 4, 500, []int{2, 4}
	}
	if *full {
		e1 = []int{20, 100, 400, 2000}
		e2base, e2fracs = 10000, []float64{0.001, 0.01, 0.1, 1.0}
		e3base, e3fracs = 10000, []float64{0.001, 0.01, 0.1}
		e4 = 50000
		e5sizes, e5rates = []int{100, 1000, 5000}, []float64{0, 0.1, 0.5}
		e6sizes, e6txns = []int{2, 4, 8, 16}, 200
		e7peers, e7txns, e7bounds = 4, 100, []int{1, 4, 8, 16, 0}
		e9burst, e9pub = 256, 4
		e10rules, e10rows, e10workers = 16, 4000, []int{1, 2, 4, 8, 16}
	}

	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	want := func(id string) bool { return len(wanted) == 0 || wanted[id] }

	type runner struct {
		id  string
		run func() (*experiments.Table, error)
	}
	runners := []runner{
		{"E1", func() (*experiments.Table, error) { return experiments.E1InsertionScaling(e1) }},
		{"E2", func() (*experiments.Table, error) { return experiments.E2IncrementalVsFull(e2base, e2fracs) }},
		{"E3", func() (*experiments.Table, error) { return experiments.E3DeletionPropagation(e3base, e3fracs) }},
		{"E4", func() (*experiments.Table, error) { return experiments.E4ProvenanceOverhead(e4) }},
		{"E5", func() (*experiments.Table, error) { return experiments.E5Reconciliation(e5sizes, e5rates) }},
		{"E6", func() (*experiments.Table, error) { return experiments.E6Topologies(e6sizes, e6txns) }},
		{"E7", func() (*experiments.Table, error) { return experiments.E7WitnessBound(e7peers, e7txns, e7bounds) }},
		{"E8", func() (*experiments.Table, error) { return experiments.E8GoalDirectedQuery(e4) }},
		{"E9", func() (*experiments.Table, error) { return experiments.E9PublishBatch(e9burst, e9pub) }},
		{"E10", func() (*experiments.Table, error) {
			return experiments.E10ParallelStratum(e10rules, e10rows, e10workers)
		}},
	}
	for _, r := range runners {
		if !want(r.id) {
			continue
		}
		var before evalCounts
		if stats != nil {
			before = readCounts(stats)
		}
		tbl, err := r.run()
		if err != nil {
			log.Fatalf("%s: %v", r.id, err)
		}
		tbl.Fprint(os.Stdout)
		if stats != nil {
			printDelta(r.id, before, readCounts(stats))
		}
		fmt.Println()
	}
}
