// Command orchestra-demo runs the SIGMOD 2007 demonstration scenarios
// (Section 4 of the paper) over the Figure 2 bioinformatics CDSS, printing
// each peer's state transitions. This is the textual counterpart of the
// paper's Java GUI demonstration (see DESIGN.md, substitutions).
//
// Usage:
//
//	orchestra-demo             # run all five scenarios
//	orchestra-demo -scenario 3 # run one scenario
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"orchestra"
)

func main() {
	scenario := flag.Int("scenario", 0, "scenario to run (1..5); 0 runs all")
	flag.Parse()

	run := func(n int) {
		fmt.Printf("=== Demonstration scenario %d ===\n", n)
		if err := orchestra.RunDemoScenario(os.Stdout, n); err != nil {
			log.Fatalf("scenario %d: %v", n, err)
		}
		fmt.Println()
	}
	if *scenario != 0 {
		run(*scenario)
		return
	}
	for n := 1; n <= orchestra.DemoScenarios(); n++ {
		run(n)
	}
}
