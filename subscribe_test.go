package orchestra_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"orchestra"
)

// TestSubscribeCancelMidStreamWhilePublishing races a publishing peer
// against a subscriber that cancels mid-stream: run under -race this
// exercises the apply hook, the auto-reconcile pump, and subscription
// teardown concurrently.
func TestSubscribeCancelMidStreamWhilePublishing(t *testing.T) {
	_, alice, bob := openGenes(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const total = 40
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // alice keeps publishing while bob's consumer lives and dies
		defer wg.Done()
		for i := 0; i < total; i++ {
			if _, err := alice.Begin().Insert("Gene", gene(fmt.Sprintf("G%03d", i), int64(i))).Commit(); err != nil {
				t.Errorf("commit %d: %v", i, err)
				return
			}
			if _, err := alice.Publish(context.Background()); err != nil {
				t.Errorf("publish %d: %v", i, err)
				return
			}
		}
	}()

	var got []orchestra.Change
	var finalErr error
	for c, err := range bob.Subscribe(ctx) {
		if err != nil {
			finalErr = err
			continue // the stream ends after the error event
		}
		got = append(got, c)
		if len(got) == 5 {
			cancel() // cancel mid-stream, while the publisher is still going
		}
	}
	if !errors.Is(finalErr, context.Canceled) {
		t.Fatalf("final subscription error = %v, want context.Canceled", finalErr)
	}
	if len(got) < 5 {
		t.Fatalf("received %d changes before cancel, want >= 5", len(got))
	}
	for _, c := range got {
		if c.Rel != "Gene" || c.Op != orchestra.OpInsert || c.Local {
			t.Fatalf("unexpected change %+v", c)
		}
	}
	wg.Wait()
}

// TestRowsConcurrentWithReconcile reads a peer's table while the
// subscription pump reconciles epochs into it — under -race this pins down
// the locked read path of Peer.Rows.
func TestRowsConcurrentWithReconcile(t *testing.T) {
	_, alice, bob := openGenes(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_ = bob.Subscribe(ctx) // starts the auto-reconcile pump; detached via ctx

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			if _, err := alice.Begin().Insert("Gene", gene(fmt.Sprintf("G%03d", i), int64(i))).Commit(); err != nil {
				t.Errorf("commit: %v", err)
				return
			}
			if _, err := alice.Publish(context.Background()); err != nil {
				t.Errorf("publish: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		if _, err := bob.Rows("Gene"); err != nil {
			t.Fatalf("rows: %v", err)
		}
	}
	wg.Wait()
}

// TestSubscribeDeliversLocalAndRemote checks the feed semantics: local
// publishes and reconciled remote epochs both arrive, collated per
// transaction, in order.
func TestSubscribeDeliversLocalAndRemote(t *testing.T) {
	ctx := context.Background()
	_, alice, bob := openGenes(t)
	subCtx, cancel := context.WithCancel(ctx)
	feed := bob.Subscribe(subCtx, orchestra.WithoutAutoReconcile())

	if _, err := alice.Begin().Insert("Gene", gene("BRCA1", 17)).Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Publish(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Reconcile(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Begin().Modify("Gene", gene("BRCA1", 17), gene("BRCA1", 13)).Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Publish(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()

	var got []orchestra.Change
	var finalErr error
	for c, err := range feed {
		if err != nil {
			finalErr = err
			continue
		}
		got = append(got, c)
	}
	if !errors.Is(finalErr, context.Canceled) {
		t.Fatalf("final error = %v", finalErr)
	}
	if len(got) != 2 {
		t.Fatalf("feed = %+v, want remote insert then local modify", got)
	}
	if got[0].Local || got[0].Op != orchestra.OpInsert || got[0].Epoch != 1 {
		t.Fatalf("first change = %+v", got[0])
	}
	if !got[1].Local || got[1].Op != orchestra.OpModify || got[1].Epoch != 2 {
		t.Fatalf("second change = %+v", got[1])
	}
	if got[1].Prov.IsZero() {
		t.Fatalf("change lost provenance: %+v", got[1])
	}
}

// TestSubscribeAutoReconcilePushes proves the push path: the subscriber
// never calls Reconcile, yet another peer's publish reaches it.
func TestSubscribeAutoReconcilePushes(t *testing.T) {
	ctx := context.Background()
	_, alice, bob := openGenes(t)
	subCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	feed := bob.Subscribe(subCtx)

	if _, err := alice.Begin().Insert("Gene", gene("BRCA1", 17)).Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Publish(ctx); err != nil {
		t.Fatal(err)
	}

	done := make(chan orchestra.Change, 1)
	go func() {
		for c, err := range feed {
			if err == nil {
				done <- c
				cancel()
				return
			}
		}
	}()
	select {
	case c := <-done:
		if c.Rel != "Gene" || !c.New.Equal(gene("BRCA1", 17)) {
			t.Fatalf("pushed change = %+v", c)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("auto-reconcile pump never delivered the published change")
	}
}

// TestSubscribeEndsOnClose proves System.Close ends active subscriptions
// with ErrClosed.
func TestSubscribeEndsOnClose(t *testing.T) {
	sys, _, bob := openGenes(t)
	feed := bob.Subscribe(context.Background())
	errs := make(chan error, 1)
	go func() {
		for _, err := range feed {
			if err != nil {
				errs <- err
				return
			}
		}
		errs <- nil
	}()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errs:
		if !errors.Is(err, orchestra.ErrClosed) {
			t.Fatalf("subscription ended with %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscription did not end on Close")
	}
}
