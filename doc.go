// Package orchestra is a from-scratch Go reproduction of the ORCHESTRA
// collaborative data sharing system (Green, Karvounarakis, Taylor, Biton,
// Ives, Tannen — SIGMOD 2007) and the machinery of its companion papers:
// update exchange with mappings and provenance (VLDB 2007), provenance
// semirings (PODS 2007), and reconciliation with disagreement (SIGMOD
// 2006).
//
// The public entry point is internal/core (the Peer lifecycle); see README
// for a tour, DESIGN.md for the system inventory and experiment index, and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate the experiment tables E1–E7.
package orchestra
