// Package orchestra is a from-scratch Go reproduction of the ORCHESTRA
// collaborative data sharing system (Green, Karvounarakis, Taylor, Biton,
// Ives, Tannen — SIGMOD 2007) and the machinery of its companion papers:
// update exchange with mappings and provenance (VLDB 2007), provenance
// semirings (PODS 2007), and reconciliation with disagreement (SIGMOD
// 2006).
//
// This package is the public SDK — the one supported way to drive the
// system. Describe a confederation with NewSchema (or ParseSchema for the
// textual format), open it with Open, and drive peers through the handles
// System.Peer returns:
//
//	sys, _ := orchestra.Open(sch, orchestra.WithParallelism(4))
//	defer sys.Close()
//	alice, _ := sys.Peer("alice")
//	id, _ := alice.Begin().Insert("Gene", tuple).Commit()
//	alice.Publish(ctx)
//	bob, _ := sys.Peer("bob")
//	bob.Reconcile(ctx) // bob receives alice's data translated into his schema
//
// Every operation that can run a translation fixpoint takes a
// context.Context and honors cancellation and deadlines cooperatively.
// Errors at the public boundary wrap the typed sentinels ErrKeyViolation,
// ErrUnknownRelation, ErrUnknownPeer, ErrTxnFinished, ErrConflictPending,
// ErrInvalidQuery for errors.Is dispatch. Peer.Subscribe streams collated
// insert/delete/modify changes as epochs publish, so consumers maintain
// downstream views incrementally.
//
// Peer.Query is the goal-directed query surface: name a goal with bound
// (Bind) and free (Free) argument modes, optionally define recursive view
// rules over the peer's relations, and range over provenance-carrying
// answers:
//
//	q := alice.Query(ctx, "reach", orchestra.Bind(orchestra.String("ann")), orchestra.Free("who")).
//	    Rule("reach", []string{"a", "b"}, orchestra.Atom("Follows", orchestra.Free("a"), orchestra.Free("b"))).
//	    Rule("reach", []string{"a", "c"},
//	        orchestra.Atom("reach", orchestra.Free("a"), orchestra.Free("b")),
//	        orchestra.Atom("Follows", orchestra.Free("b"), orchestra.Free("c")))
//	for ans, err := range q.Stream() { ... }
//
// Evaluation is demand-driven through the magic-sets rewrite: only facts
// reachable from the goal's bound arguments drive the fixpoint, with
// answers (tuples and provenance) identical to the full fixpoint.
//
// See README for a tour, DESIGN.md for the system inventory and experiment
// index (goal-directed querying is §7), and EXPERIMENTS.md for
// paper-vs-measured results. The benchmarks in bench_test.go regenerate
// the experiment tables E1–E8.
package orchestra
