package orchestra

import (
	"context"
	"iter"
	"sync"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/provenance"
	"orchestra/internal/updates"
)

// Change is one tuple-level change applied at a peer, collated per
// publishing transaction: inserts, deletes, and modifies arrive exactly as
// update exchange derived them for this peer's schema, so a downstream
// consumer can maintain a view incrementally instead of re-materializing.
type Change struct {
	// Epoch is the store epoch the originating transaction published at.
	Epoch uint64
	// Txn identifies the originating (publishing) transaction.
	Txn TxnID
	// Local reports whether the change is this peer's own publish (true)
	// or data that arrived through reconciliation (false).
	Local bool
	// Rel is the local relation the change targets.
	Rel string
	// Op is the change kind: OpInsert, OpDelete, or OpModify.
	Op Op
	// Old is set for deletes and modifies; New for inserts and modifies.
	Old, New Tuple
	// Prov carries the change's provenance polynomial, unless the system
	// was opened with WithProvenance(false).
	Prov Provenance
}

// SubscribeOption tunes one subscription.
type SubscribeOption func(*subSettings)

type subSettings struct {
	relations     map[string]bool
	autoReconcile bool
}

func defaultSubSettings() subSettings { return subSettings{autoReconcile: true} }

func (s subSettings) apply(opts []SubscribeOption) subSettings {
	for _, o := range opts {
		o(&s)
	}
	return s
}

// WithRelations restricts the subscription to changes on the named
// relations (default: all).
func WithRelations(rels ...string) SubscribeOption {
	return func(s *subSettings) {
		if s.relations == nil {
			s.relations = map[string]bool{}
		}
		for _, r := range rels {
			s.relations[r] = true
		}
	}
}

// WithoutAutoReconcile leaves reconciliation to explicit Reconcile calls:
// the subscription then only observes changes those calls (and local
// publishes) apply, instead of having a background pump chase every epoch.
func WithoutAutoReconcile() SubscribeOption {
	return func(s *subSettings) { s.autoReconcile = false }
}

// subEvent is one queued delivery: a change, or an asynchronous pump error.
type subEvent struct {
	change Change
	err    error
}

// subscription is one consumer's lossless queue. The apply hook appends
// under mu and pokes wake; the consuming iterator drains in batches.
type subscription struct {
	mu    sync.Mutex
	queue []subEvent
	wake  chan struct{}
	set   subSettings
}

func (s *subscription) push(evs ...subEvent) {
	s.mu.Lock()
	s.queue = append(s.queue, evs...)
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

func (s *subscription) drain() []subEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	evs := s.queue
	s.queue = nil
	return evs
}

// Subscribe streams the peer's changes as epochs publish. The returned
// sequence yields (Change, nil) for data and (zero, err) exactly once when
// the stream ends: ctx.Err() on cancellation or deadline, ErrClosed after
// System.Close, or a reconciliation error from the background pump.
// Breaking out of the range loop detaches the subscription immediately.
//
// By default a background pump reconciles the peer whenever any other peer
// publishes, so subscribers see remote epochs pushed rather than polled;
// WithoutAutoReconcile turns that off. Changes the peer applies through
// explicit Publish/Reconcile/Resolve calls are always delivered.
//
//	for change, err := range peer.Subscribe(ctx) {
//	    if err != nil { break }
//	    apply(change)
//	}
func (p *Peer) Subscribe(ctx context.Context, opts ...SubscribeOption) iter.Seq2[Change, error] {
	sub := &subscription{wake: make(chan struct{}, 1), set: defaultSubSettings().apply(opts)}
	p.mu.Lock()
	p.subs[sub] = struct{}{}
	if sub.set.autoReconcile && !p.pumpStarted {
		p.pumpStarted = true
		go p.pump()
	}
	p.mu.Unlock()
	if sub.set.autoReconcile {
		p.poke() // catch up on anything already published
	}
	// The subscription registers immediately (so no change between this
	// call and the first range is lost), which means it must also be
	// detachable without ever being ranged: a watcher unregisters it when
	// the context ends, bounding the queue of an abandoned subscription to
	// the context's lifetime.
	detached := make(chan struct{})
	var detachOnce sync.Once
	detach := func() {
		detachOnce.Do(func() {
			p.mu.Lock()
			delete(p.subs, sub)
			p.mu.Unlock()
			close(detached)
		})
	}
	go func() {
		select {
		case <-ctx.Done():
			detach()
		case <-p.sys.ctx.Done():
			detach()
		case <-detached:
		}
	}()
	return func(yield func(Change, error) bool) {
		defer detach()
		// flush yields every queued event; it reports false when the
		// consumer broke out or an error event ended the stream.
		flush := func() bool {
			for _, ev := range sub.drain() {
				if !yield(ev.change, ev.err) || ev.err != nil {
					return false
				}
			}
			return true
		}
		for {
			if !flush() {
				return
			}
			select {
			case <-ctx.Done():
				// Deliver what arrived before cancellation, then end the
				// stream with the context error.
				if flush() {
					yield(Change{}, ctx.Err())
				}
				return
			case <-p.sys.ctx.Done():
				if flush() {
					yield(Change{}, ErrClosed)
				}
				return
			case <-sub.wake:
			}
		}
	}
}

// pumpMaxCoalesce caps the pump's adaptive coalescing delay, so push
// latency stays bounded no matter how slow reconciliation gets.
const pumpMaxCoalesce = 5 * time.Millisecond

// pump is the peer's auto-reconcile loop: each poke (another peer
// published) triggers one reconciliation; resulting changes reach the
// subscriptions through the apply hook. Reconciliation errors are delivered
// to every subscriber.
//
// The pump sizes its group-commit window adaptively: before reconciling it
// waits a small fraction of the observed drain latency (EWMA, capped at
// pumpMaxCoalesce) so a publication burst lands as one group-committed
// batch instead of one fixpoint per epoch. When reconciliation is fast the
// delay rounds to zero and pushes stay immediate; only a pump that cannot
// keep up trades a bounded sliver of latency for batch amortization.
func (p *Peer) pump() {
	var drain time.Duration // EWMA of observed reconcile latency
	for {
		select {
		case <-p.sys.ctx.Done():
			return
		case <-p.wake:
			if d := min(drain/4, pumpMaxCoalesce); d > 0 {
				t := time.NewTimer(d)
				select {
				case <-p.sys.ctx.Done():
					t.Stop()
					return
				case <-t.C:
				}
			}
			p.pumpRuns.Inc()
			start := time.Now()
			_, err := p.core.Reconcile(p.sys.ctx)
			if el := time.Since(start); drain == 0 {
				drain = el
			} else {
				drain += (el - drain) / 4
			}
			if err != nil && p.sys.ctx.Err() == nil {
				p.mu.Lock()
				for sub := range p.subs {
					sub.push(subEvent{err: wrapErr(err)})
				}
				p.mu.Unlock()
			}
		}
	}
}

// fanout is the core-layer apply hook: it converts one applied transaction
// into Changes and queues them on every matching subscription. It runs
// under the internal peer mutex and therefore never calls back into core.
func (p *Peer) fanout(ev core.ApplyEvent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.subs) == 0 {
		return
	}
	changes := make([]subEvent, 0, len(ev.Updates))
	for i, u := range ev.Updates {
		c := Change{
			Epoch: ev.Epoch,
			Txn:   ev.Txn,
			Local: ev.Local,
			Rel:   u.Rel,
			Op:    u.Op,
			Old:   u.Old,
			New:   u.New,
		}
		if p.set.provenance {
			c.Prov = u.Prov
			if c.Prov.IsZero() && ev.Local {
				// A local update's provenance is its own freshly minted
				// token — the same variable the union database records.
				c.Prov = provenance.NewVar((&updates.Transaction{ID: ev.Txn}).Token(i))
			}
		}
		changes = append(changes, subEvent{change: c})
	}
	for sub := range p.subs {
		if sub.set.relations == nil {
			sub.push(changes...)
			p.subEvents.Add(int64(len(changes)))
			continue
		}
		for _, ev := range changes {
			if sub.set.relations[ev.change.Rel] {
				sub.push(ev)
				p.subEvents.Inc()
			}
		}
	}
}
