package orchestra_test

import (
	"context"
	"errors"
	"testing"

	"orchestra"
)

// graphSystem opens a one-peer system holding a small directed graph: a
// path ann->bea->cal->dan plus a disconnected eve->fay edge.
func graphSystem(t *testing.T) (*orchestra.System, *orchestra.Peer) {
	t.Helper()
	links := orchestra.NewPeerSchema("links")
	links.MustAddRelation(orchestra.MustRelation("Follows",
		[]orchestra.Attribute{
			{Name: "src", Type: orchestra.KindString},
			{Name: "dst", Type: orchestra.KindString},
		}, "src", "dst"))
	sys, err := orchestra.Open(orchestra.NewSchema().Peer("alice", links))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	alice, err := sys.Peer("alice")
	if err != nil {
		t.Fatal(err)
	}
	tx := alice.Begin()
	for _, e := range [][2]string{{"ann", "bea"}, {"bea", "cal"}, {"cal", "dan"}, {"eve", "fay"}} {
		tx.Insert("Follows", orchestra.NewTuple(orchestra.String(e[0]), orchestra.String(e[1])))
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return sys, alice
}

// reachQuery builds the transitive-closure query bound to src.
func reachQuery(p *orchestra.Peer, ctx context.Context, src string) *orchestra.Query {
	return p.Query(ctx, "reach", orchestra.Bind(orchestra.String(src)), orchestra.Free("who")).
		Rule("reach", []string{"a", "b"},
			orchestra.Atom("Follows", orchestra.Free("a"), orchestra.Free("b"))).
		Rule("reach", []string{"a", "c"},
			orchestra.Atom("reach", orchestra.Free("a"), orchestra.Free("b")),
			orchestra.Atom("Follows", orchestra.Free("b"), orchestra.Free("c")))
}

func TestQueryGoalDirectedMatchesFullFixpoint(t *testing.T) {
	_, alice := graphSystem(t)
	ctx := context.Background()
	for _, sip := range []orchestra.SIPStrategy{orchestra.SIPLeftToRight, orchestra.SIPMostBound} {
		goal, err := reachQuery(alice, ctx, "ann").SIP(sip).All()
		if err != nil {
			t.Fatal(err)
		}
		full, err := reachQuery(alice, ctx, "ann").FullFixpoint().All()
		if err != nil {
			t.Fatal(err)
		}
		if len(goal) != 3 || len(full) != 3 {
			t.Fatalf("sip %v: goal=%v full=%v", sip, goal, full)
		}
		for i := range goal {
			if !goal[i].Tuple.Equal(full[i].Tuple) || !goal[i].Prov.Equal(full[i].Prov) {
				t.Fatalf("sip %v: answer %d diverges: %+v vs %+v", sip, i, goal[i], full[i])
			}
		}
	}
}

func TestQueryAnswersCarryProvenance(t *testing.T) {
	_, alice := graphSystem(t)
	ans, err := reachQuery(alice, context.Background(), "ann").All()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range ans {
		if a.Prov.IsZero() {
			t.Fatalf("answer %v has no provenance", a.Tuple)
		}
	}
}

func TestQueryBooleanGoal(t *testing.T) {
	_, alice := graphSystem(t)
	ctx := context.Background()
	yes, err := alice.Query(ctx, "Follows",
		orchestra.Bind(orchestra.String("ann")), orchestra.Bind(orchestra.String("bea"))).All()
	if err != nil || len(yes) != 1 || len(yes[0].Tuple) != 0 {
		t.Fatalf("boolean true: %v %v", yes, err)
	}
	no, err := alice.Query(ctx, "Follows",
		orchestra.Bind(orchestra.String("ann")), orchestra.Bind(orchestra.String("dan"))).All()
	if err != nil || len(no) != 0 {
		t.Fatalf("boolean false: %v %v", no, err)
	}
}

func TestQueryNegationAndFilter(t *testing.T) {
	_, alice := graphSystem(t)
	// Make ann<->bea reciprocal, then ask for sources of non-reciprocated
	// edges, filtering out "eve".
	if _, err := alice.Begin().
		Insert("Follows", orchestra.NewTuple(orchestra.String("bea"), orchestra.String("ann"))).
		Commit(); err != nil {
		t.Fatal(err)
	}
	ans, err := alice.Query(context.Background(), "nonrecip", orchestra.Free("x")).
		Rule("nonrecip", []string{"x"},
			orchestra.Atom("Follows", orchestra.Free("x"), orchestra.Free("y")),
			orchestra.Not("Follows", orchestra.Free("y"), orchestra.Free("x")),
			orchestra.Filter(orchestra.Free("x"), orchestra.CmpNe, orchestra.Bind(orchestra.String("eve")))).
		All()
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 || !ans[0].Tuple[0].Equal(orchestra.String("bea")) || !ans[1].Tuple[0].Equal(orchestra.String("cal")) {
		t.Fatalf("answers = %v", ans)
	}
}

func TestQueryErrInvalidQuery(t *testing.T) {
	_, alice := graphSystem(t)
	ctx := context.Background()
	// A view head shadowing a stored relation is rejected with the typed
	// sentinel, through both terminal operations.
	_, err := alice.Query(ctx, "Follows", orchestra.Free("a"), orchestra.Free("b")).
		Rule("Follows", []string{"a", "b"},
			orchestra.Atom("Follows", orchestra.Free("a"), orchestra.Free("b"))).
		All()
	if !errors.Is(err, orchestra.ErrInvalidQuery) {
		t.Fatalf("err = %v, want ErrInvalidQuery", err)
	}
	// Builder-level misuse: empty variable name.
	_, err = alice.Query(ctx, "Follows", orchestra.Free(""), orchestra.Free("b")).All()
	if !errors.Is(err, orchestra.ErrInvalidQuery) {
		t.Fatalf("err = %v, want ErrInvalidQuery", err)
	}
	// An unsafe rule body (negation variable never bound) surfaces the
	// evaluator's validation failure.
	_, err = alice.Query(ctx, "v", orchestra.Free("x")).
		Rule("v", []string{"x"},
			orchestra.Atom("Follows", orchestra.Free("x"), orchestra.Free("y")),
			orchestra.Not("Follows", orchestra.Free("x"), orchestra.Free("ghost"))).
		All()
	if err == nil {
		t.Fatal("unsafe rule accepted")
	}
}

func TestQueryStreamEarlyBreak(t *testing.T) {
	_, alice := graphSystem(t)
	n := 0
	for _, err := range reachQuery(alice, context.Background(), "ann").Stream() {
		if err != nil {
			t.Fatal(err)
		}
		n++
		break
	}
	if n != 1 {
		t.Fatalf("yielded %d answers after break", n)
	}
}

func TestQueryContextAndClose(t *testing.T) {
	sys, alice := graphSystem(t)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := reachQuery(alice, canceled, "ann").All(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	sys.Close()
	if _, err := reachQuery(alice, context.Background(), "ann").All(); !errors.Is(err, orchestra.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// Query answers must observe the current instance across commits and
// reconciliations (the COW mirror is maintained, not rebuilt per call).
func TestQuerySeesCommittedWrites(t *testing.T) {
	_, alice := graphSystem(t)
	ctx := context.Background()
	before, err := reachQuery(alice, ctx, "ann").All()
	if err != nil || len(before) != 3 {
		t.Fatalf("before: %v %v", before, err)
	}
	if _, err := alice.Begin().
		Insert("Follows", orchestra.NewTuple(orchestra.String("dan"), orchestra.String("eve"))).
		Commit(); err != nil {
		t.Fatal(err)
	}
	after, err := reachQuery(alice, ctx, "ann").All()
	if err != nil || len(after) != 5 { // bea cal dan eve fay
		t.Fatalf("after: %v %v", after, err)
	}
}
