package orchestra_test

// Worker-sweep benchmarks for the adaptive parallel stratum executor (E10,
// DESIGN.md §9). The CI worker-sweep job runs these under -cpu=1,2,4 and
// reports the workers=1 vs workers=N ratio per PR; on a single core the
// explicit multi-worker rows measure pure coordination overhead, and
// "adaptive" must track the sequential row (the cost gate).
//
//	go test -bench=BenchmarkParallel -cpu=1,2,4 -benchmem

import (
	"context"
	"fmt"
	"testing"

	"orchestra/internal/datalog"
	"orchestra/internal/experiments"
	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

func intEdge(a, b int64) schema.Tuple { return schema.NewTuple(schema.Int(a), schema.Int(b)) }

// BenchmarkParallelStratum measures the worker pool on a stratum of
// independent join rules — the update-exchange shape where many mapping
// rules fire over the same round. Explicit worker counts are honored even
// past the core count (the sweep needs the overcommitted points); the
// adaptive sub-benchmark lets the cost gate size each round itself.
func BenchmarkParallelStratum(b *testing.B) {
	prog, edb := experiments.BuildParallelStratum(8, 1500)
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", par), func(b *testing.B) {
			opts := datalog.Options{Parallelism: par}
			for i := 0; i < b.N; i++ {
				if _, err := datalog.Eval(prog, edb, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("workers=adaptive", func(b *testing.B) {
		opts := datalog.Options{Parallelism: 0}
		for i := 0; i < b.N; i++ {
			if _, err := datalog.Eval(prog, edb, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelSmallDelta pins the adaptive cost gate's "never slower
// than sequential" contract: a tiny incremental delta (a handful of facts,
// far below the parallel grain) evaluated with forced-sequential and
// adaptive settings. The two sub-benchmarks should be within noise of each
// other — adaptive rounds this small must take the sequential path.
func BenchmarkParallelSmallDelta(b *testing.B) {
	build := func(par int) (*datalog.Incremental, error) {
		prog := &datalog.Program{Rules: []datalog.Rule{{
			ID:   "tc",
			Head: datalog.NewHead("T", datalog.HV("x"), datalog.HV("z")),
			Body: []datalog.Literal{
				datalog.Pos(datalog.NewAtom("E", datalog.V("x"), datalog.V("y"))),
				datalog.Pos(datalog.NewAtom("E", datalog.V("y"), datalog.V("z"))),
			},
		}}}
		edb := datalog.NewDB()
		for i := int64(0); i < 64; i++ {
			edb.AddTuple("E", intEdge(i, i+1))
		}
		return datalog.NewIncremental(prog, edb, datalog.Options{Provenance: true, Parallelism: par})
	}
	for _, m := range []struct {
		name string
		par  int
	}{{"sequential", -1}, {"adaptive", 0}} {
		b.Run(m.name, func(b *testing.B) {
			inc, err := build(m.par)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := int64(1000 + i)
				batch := []datalog.Fact2{{Pred: "E", Tuple: intEdge(k, k+1),
					Prov: provenance.NewVar(provenance.Var(fmt.Sprint("t", i)))}}
				if _, err := inc.Insert(context.Background(), batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
