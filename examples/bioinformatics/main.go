// Command bioinformatics runs the paper's Figure 2 CDSS — the Universities
// of Alaska, Beijing, Crete, and Dresden sharing protein reference
// sequences across two schemas — through all five demonstration scenarios
// of Section 4, printing each peer's state transitions along the way.
package main

import (
	"fmt"
	"log"

	"orchestra/internal/core"
	"orchestra/internal/p2p"
	"orchestra/internal/recon"
	"orchestra/internal/workload"
)

func main() {
	for i := 1; i <= 5; i++ {
		fmt.Printf("=== Demonstration scenario %d ===\n", i)
		if err := runScenario(i); err != nil {
			log.Fatalf("scenario %d: %v", i, err)
		}
		fmt.Println()
	}
}

// cdss builds a fresh Figure 2 confederation. Trust: Alaska, Beijing and
// Dresden trust all equally; Crete trusts only Beijing (2) and Dresden (1).
func cdss() (map[string]*core.Peer, error) {
	sys, err := core.NewSystem(workload.Figure2Peers(), workload.Figure2Mappings())
	if err != nil {
		return nil, err
	}
	store := p2p.NewMemoryStore()
	policies := map[string]*recon.Policy{
		workload.Alaska:  recon.TrustAll(1),
		workload.Beijing: recon.TrustAll(1),
		workload.Dresden: recon.TrustAll(1),
		workload.Crete: {Conditions: []recon.Condition{
			recon.FromPeer(workload.Beijing, 2),
			recon.FromPeer(workload.Dresden, 1),
		}, Default: recon.Distrusted},
	}
	peers := map[string]*core.Peer{}
	for name, pol := range policies {
		p, err := core.NewPeer(name, sys, store, pol)
		if err != nil {
			return nil, err
		}
		peers[name] = p
	}
	return peers, nil
}

func dump(p *core.Peer) {
	fmt.Printf("  %s:\n", p.Name())
	for _, rel := range p.Instance().Schema().Relations() {
		tbl := p.Instance().Table(rel.Name)
		if tbl.Len() == 0 {
			continue
		}
		for _, r := range tbl.Rows() {
			fmt.Printf("    %s%s\n", rel.Name, r.Tuple)
		}
	}
}

func runScenario(n int) error {
	peers, err := cdss()
	if err != nil {
		return err
	}
	alaska, beijing := peers[workload.Alaska], peers[workload.Beijing]
	crete, dresden := peers[workload.Crete], peers[workload.Dresden]

	switch n {
	case 1:
		fmt.Println("Alaska inserts O(mouse,1), P(p53,10), S(1,10,ACGT) and publishes.")
		if _, err := alaska.NewTransaction().
			Insert("O", workload.OTuple("mouse", 1)).
			Insert("P", workload.PTuple("p53", 10)).
			Insert("S", workload.STuple(1, 10, "ACGT")).Commit(); err != nil {
			return err
		}
		if _, err := alaska.Publish(); err != nil {
			return err
		}
		if _, err := dresden.Reconcile(); err != nil {
			return err
		}
		fmt.Println("Dresden reconciles; the three Σ1 tuples arrive joined into OPS:")
		dump(dresden)
		fmt.Println("Dresden inserts OPS(fly,myc,GGGG); Alaska receives it split into O,P,S:")
		if _, err := dresden.NewTransaction().
			Insert("OPS", workload.OPSTuple("fly", "myc", "GGGG")).Commit(); err != nil {
			return err
		}
		if _, err := dresden.Publish(); err != nil {
			return err
		}
		if _, err := alaska.Reconcile(); err != nil {
			return err
		}
		dump(alaska)

	case 2:
		fmt.Println("Beijing publishes S(1,10,AAAA) (with O,P); Dresden publishes the")
		fmt.Println("conflicting OPS(mouse,p53,CCCC). Crete prefers Beijing.")
		if _, err := beijing.NewTransaction().
			Insert("O", workload.OTuple("mouse", 1)).
			Insert("P", workload.PTuple("p53", 10)).
			Insert("S", workload.STuple(1, 10, "AAAA")).Commit(); err != nil {
			return err
		}
		if _, err := beijing.Publish(); err != nil {
			return err
		}
		dTxn, err := dresden.NewTransaction().
			Insert("OPS", workload.OPSTuple("mouse", "p53", "CCCC")).Commit()
		if err != nil {
			return err
		}
		if _, err := dresden.Publish(); err != nil {
			return err
		}
		r, err := crete.Reconcile()
		if err != nil {
			return err
		}
		fmt.Printf("Crete reconciles: accepted=%v rejected=%v\n", r.Accepted, r.Rejected)
		dump(crete)
		fmt.Println("Dresden publishes a dependent follow-up; Crete rejects it too.")
		if _, err := dresden.NewTransaction().
			Modify("OPS", workload.OPSTuple("mouse", "p53", "CCCC"),
				workload.OPSTuple("mouse", "p53", "TTTT")).Commit(); err != nil {
			return err
		}
		if _, err := dresden.Publish(); err != nil {
			return err
		}
		r, err = crete.Reconcile()
		if err != nil {
			return err
		}
		fmt.Printf("Crete reconciles again: rejected=%v (dresden txn %s stays %s)\n",
			r.Rejected, dTxn.ID, crete.Status(dTxn.ID))

	case 3:
		fmt.Println("Alaska publishes three data points in one transaction; Crete does")
		fmt.Println("not trust Alaska, so nothing applies.")
		aTxn, err := alaska.NewTransaction().
			Insert("O", workload.OTuple("rat", 2)).
			Insert("P", workload.PTuple("ins", 20)).
			Insert("S", workload.STuple(2, 20, "AAAA")).Commit()
		if err != nil {
			return err
		}
		if _, err := alaska.Publish(); err != nil {
			return err
		}
		if _, err := crete.Reconcile(); err != nil {
			return err
		}
		fmt.Printf("Crete's view of alaska:1: %s\n", crete.Status(aTxn.ID))
		fmt.Println("Beijing reconciles and modifies one tuple; Crete now accepts both")
		fmt.Println("Beijing's transaction and the untrusted antecedent from Alaska.")
		if _, err := beijing.Reconcile(); err != nil {
			return err
		}
		bTxn, err := beijing.NewTransaction().
			Modify("S", workload.STuple(2, 20, "AAAA"), workload.STuple(2, 20, "TTTT")).Commit()
		if err != nil {
			return err
		}
		if _, err := beijing.Publish(); err != nil {
			return err
		}
		if _, err := crete.Reconcile(); err != nil {
			return err
		}
		fmt.Printf("Crete: alaska:1=%s beijing:1=%s (deps of beijing txn: %v)\n",
			crete.Status(aTxn.ID), crete.Status(bTxn.ID), bTxn.Deps)
		dump(crete)

	case 4:
		fmt.Println("Beijing and Alaska publish conflicting updates; Dresden defers both.")
		bTxn, err := beijing.NewTransaction().
			Insert("O", workload.OTuple("fly", 3)).
			Insert("P", workload.PTuple("tnf", 30)).
			Insert("S", workload.STuple(3, 30, "XXXX")).Commit()
		if err != nil {
			return err
		}
		if _, err := beijing.Publish(); err != nil {
			return err
		}
		aTxn, err := alaska.NewTransaction().
			Insert("O", workload.OTuple("fly", 3)).
			Insert("P", workload.PTuple("tnf", 30)).
			Insert("S", workload.STuple(3, 30, "YYYY")).Commit()
		if err != nil {
			return err
		}
		if _, err := alaska.Publish(); err != nil {
			return err
		}
		r, err := dresden.Reconcile()
		if err != nil {
			return err
		}
		fmt.Printf("Dresden: deferred=%v\n", r.Deferred)
		fmt.Println("Crete accepts Beijing's update and publishes a modification of it.")
		if _, err := crete.Reconcile(); err != nil {
			return err
		}
		cTxn, err := crete.NewTransaction().
			Modify("OPS", workload.OPSTuple("fly", "tnf", "XXXX"),
				workload.OPSTuple("fly", "tnf", "ZZZZ")).Commit()
		if err != nil {
			return err
		}
		if _, err := crete.Publish(); err != nil {
			return err
		}
		r, err = dresden.Reconcile()
		if err != nil {
			return err
		}
		fmt.Printf("Dresden defers Crete's dependent update: deferred=%v\n", r.Deferred)
		fmt.Println("Dresden's administrator resolves in favor of Beijing:")
		rr, err := dresden.Resolve(bTxn.ID)
		if err != nil {
			return err
		}
		fmt.Printf("  accepted=%v rejected=%v\n", rr.Accepted, rr.Rejected)
		fmt.Printf("  beijing=%s alaska=%s crete=%s\n",
			dresden.Status(bTxn.ID), dresden.Status(aTxn.ID), dresden.Status(cTxn.ID))
		dump(dresden)

	case 5:
		fmt.Println("Beijing publishes updates to a replicated TCP store, then goes")
		fmt.Println("offline; Alaska still retrieves them from a surviving replica.")
		return scenario5()
	}
	return nil
}

// scenario5 uses real TCP store replicas so "offline" is meaningful.
func scenario5() error {
	srv1, err := p2p.NewServer(p2p.NewMemoryStore(), "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv2, err := p2p.NewServer(p2p.NewMemoryStore(), "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv2.Close()
	sys, err := core.NewSystem(workload.Figure2Peers(), workload.Figure2Mappings())
	if err != nil {
		return err
	}
	mk := func(name string) (*core.Peer, error) {
		st := p2p.NewReplicatedStore(p2p.NewClient(srv1.Addr()), p2p.NewClient(srv2.Addr()))
		return core.NewPeer(name, sys, st, recon.TrustAll(1))
	}
	beijing, err := mk(workload.Beijing)
	if err != nil {
		return err
	}
	alaska, err := mk(workload.Alaska)
	if err != nil {
		return err
	}
	if _, err := beijing.NewTransaction().
		Insert("O", workload.OTuple("worm", 4)).
		Insert("P", workload.PTuple("dmd", 40)).
		Insert("S", workload.STuple(4, 40, "CAGT")).Commit(); err != nil {
		return err
	}
	if _, err := beijing.Publish(); err != nil {
		return err
	}
	fmt.Printf("Beijing published to replicas %s and %s\n", srv1.Addr(), srv2.Addr())
	srv1.Close()
	fmt.Println("Replica 1 is down; Beijing is offline.")
	r, err := alaska.Reconcile()
	if err != nil {
		return err
	}
	fmt.Printf("Alaska reconciled from the surviving replica: accepted=%v\n", r.Accepted)
	dump(alaska)
	return nil
}
