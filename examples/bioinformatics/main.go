// Command bioinformatics runs the paper's Figure 2 CDSS — the Universities
// of Alaska, Beijing, Crete, and Dresden sharing protein reference
// sequences across two schemas — through the public orchestra SDK. The
// confederation is declared in the textual configuration format (schemas,
// join/split tgd mappings, and Crete's trust policy), then driven through
// Open/Publish/Reconcile: the join mapping assembles Alaska's O,P,S rows
// into Dresden's OPS view, the split mapping invents labeled nulls going
// the other way, and Crete settles a conflict by trusting Beijing over
// Dresden. Explain shows the provenance that decision was based on.
package main

import (
	"context"
	"fmt"
	"log"

	"orchestra"
)

const figure2 = `
# The Figure 2 bioinformatics confederation (SIGMOD 2007).
peer alaska {
    relation O(org string, oid int) key(oid)
    relation P(prot string, pid int) key(pid)
    relation S(oid int, pid int, seq string) key(oid, pid)
}
peer beijing like alaska
peer crete {
    relation OPS(org string, prot string, seq string) key(org, prot)
}
peer dresden like crete

mapping identity M_AB alaska beijing
mapping identity M_BA beijing alaska
mapping identity M_CD crete dresden
mapping identity M_DC dresden crete
mapping M_AC = crete.OPS(org, prot, seq) :-
    alaska.O(org, oid), alaska.P(prot, pid), alaska.S(oid, pid, seq).
mapping M_CA = alaska.O(org, oid), alaska.P(prot, pid), alaska.S(oid, pid, seq) :-
    crete.OPS(org, prot, seq).

# Crete prefers Beijing's data (priority 2) over Dresden's (priority 1)
# and distrusts everything else.
trust crete {
    peer beijing 2
    peer dresden 1
    default 0
}
`

func main() {
	ctx := context.Background()

	sch, err := orchestra.ParseSchemaString(figure2)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := orchestra.Open(sch)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	mk := func(name string) *orchestra.Peer {
		p, err := sys.Peer(name)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	alaska, beijing := mk("alaska"), mk("beijing")
	crete, dresden := mk("crete"), mk("dresden")

	o := func(org string, oid int64) orchestra.Tuple {
		return orchestra.NewTuple(orchestra.String(org), orchestra.Int(oid))
	}
	p := func(prot string, pid int64) orchestra.Tuple {
		return orchestra.NewTuple(orchestra.String(prot), orchestra.Int(pid))
	}
	s := func(oid, pid int64, seq string) orchestra.Tuple {
		return orchestra.NewTuple(orchestra.Int(oid), orchestra.Int(pid), orchestra.String(seq))
	}
	ops := func(org, prot, seq string) orchestra.Tuple {
		return orchestra.NewTuple(orchestra.String(org), orchestra.String(prot), orchestra.String(seq))
	}

	fmt.Println("== Join: Alaska publishes O,P,S; Dresden sees them assembled into OPS ==")
	if _, err := alaska.Begin().
		Insert("O", o("mouse", 1)).
		Insert("P", p("p53", 10)).
		Insert("S", s(1, 10, "ACGT")).Commit(); err != nil {
		log.Fatal(err)
	}
	if _, err := alaska.Publish(ctx); err != nil {
		log.Fatal(err)
	}
	if _, err := dresden.Reconcile(ctx); err != nil {
		log.Fatal(err)
	}
	dump(dresden)

	fmt.Println("== Split: Dresden publishes OPS; Alaska receives O,P,S with invented ids ==")
	if _, err := dresden.Begin().Insert("OPS", ops("fly", "myc", "GGGG")).Commit(); err != nil {
		log.Fatal(err)
	}
	if _, err := dresden.Publish(ctx); err != nil {
		log.Fatal(err)
	}
	if _, err := alaska.Reconcile(ctx); err != nil {
		log.Fatal(err)
	}
	dump(alaska)

	fmt.Println("== Trust: Beijing and Dresden publish conflicting sequences for (mouse, p53) ==")
	bTxn, err := beijing.Begin().
		Insert("O", o("mouse", 1)).
		Insert("P", p("p53", 10)).
		Insert("S", s(1, 10, "AAAA")).Commit()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := beijing.Publish(ctx); err != nil {
		log.Fatal(err)
	}
	dTxn, err := dresden.Begin().
		Modify("OPS", ops("mouse", "p53", "ACGT"), ops("mouse", "p53", "CCCC")).Commit()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := dresden.Publish(ctx); err != nil {
		log.Fatal(err)
	}
	if _, err := crete.Reconcile(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crete's verdict: beijing %s = %s, dresden %s = %s\n",
		bTxn, crete.Status(bTxn), dTxn, crete.Status(dTxn))
	dump(crete)

	fmt.Println("== Provenance: why does Crete hold OPS(mouse, p53, AAAA)? ==")
	prov, supports, ok := crete.Explain("OPS", ops("mouse", "p53", "AAAA"))
	if !ok {
		log.Fatal("tuple missing from crete")
	}
	fmt.Printf("  polynomial: %v\n", prov)
	for _, sup := range supports {
		fmt.Printf("  derivation via txns %v through mappings %v\n", sup.Txns, sup.Mappings)
	}
}

func dump(p *orchestra.Peer) {
	fmt.Printf("  %s:\n", p.Name())
	for _, rel := range p.Relations() {
		rows, err := p.Rows(rel.Name)
		if err != nil {
			log.Fatal(err)
		}
		for _, tu := range rows {
			fmt.Printf("    %s%s\n", rel.Name, tu)
		}
	}
}
