// Command offline demonstrates intermittent connectivity over real TCP
// store replicas: three peers publish and reconcile while store replicas
// come and go; anti-entropy brings a rejoining replica back in sync. This
// is the substrate behavior behind demo scenario 5 ("Beijing publishes a
// number of updates and then goes offline").
package main

import (
	"fmt"
	"log"

	"orchestra/internal/core"
	"orchestra/internal/mapping"
	"orchestra/internal/p2p"
	"orchestra/internal/recon"
	"orchestra/internal/schema"
)

func main() {
	s := schema.NewSchema("notes")
	s.MustAddRelation(schema.MustRelation("Note",
		[]schema.Attribute{
			{Name: "id", Type: schema.KindInt},
			{Name: "text", Type: schema.KindString},
		}, "id"))

	peerNames := []string{"amy", "ben", "cal"}
	peers := map[string]*schema.Schema{}
	var mappings []*mapping.Mapping
	for _, n := range peerNames {
		peers[n] = s
	}
	for _, a := range peerNames {
		for _, b := range peerNames {
			if a != b {
				mappings = append(mappings, mapping.Identity("M_"+a+"_"+b, a, b, s)...)
			}
		}
	}
	sys, err := core.NewSystem(peers, mappings)
	if err != nil {
		log.Fatal(err)
	}

	// Two store replicas on localhost.
	mem1, mem2 := p2p.NewMemoryStore(), p2p.NewMemoryStore()
	srv1, err := p2p.NewServer(mem1, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv2, err := p2p.NewServer(mem2, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv2.Close()
	addr1, addr2 := srv1.Addr(), srv2.Addr()
	fmt.Printf("store replicas at %s and %s\n", addr1, addr2)

	mk := func(name string) *core.Peer {
		st := p2p.NewReplicatedStore(p2p.NewClient(addr1), p2p.NewClient(addr2))
		p, err := core.NewPeer(name, sys, st, recon.TrustAll(1))
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	amy, ben, cal := mk("amy"), mk("ben"), mk("cal")

	note := func(id int64, text string) schema.Tuple {
		return schema.NewTuple(schema.Int(id), schema.String(text))
	}

	// Amy publishes while both replicas are up.
	if _, err := amy.NewTransaction().Insert("Note", note(1, "kickoff at 10")).Commit(); err != nil {
		log.Fatal(err)
	}
	if _, err := amy.Publish(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("amy published note 1 to both replicas")

	// Replica 1 goes down; Ben publishes — only replica 2 receives it.
	srv1.Close()
	fmt.Println("replica 1 is down")
	if _, err := ben.Reconcile(); err != nil {
		log.Fatal(err)
	}
	if _, err := ben.NewTransaction().Insert("Note", note(2, "bring slides")).Commit(); err != nil {
		log.Fatal(err)
	}
	if _, err := ben.Publish(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("ben published note 2 to the surviving replica")

	// Cal reconciles through the outage and sees both notes.
	if _, err := cal.Reconcile(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cal's notes during the outage: %d\n", cal.Instance().Table("Note").Len())

	// Replica 1 rejoins; anti-entropy catches it up.
	srv1b, err := p2p.NewServer(mem1, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv1b.Close()
	p2p.AntiEntropy(mem1, mem2)
	e1, _ := mem1.Epoch()
	e2, _ := mem2.Epoch()
	fmt.Printf("replica 1 rejoined at %s; after anti-entropy epochs are %d/%d\n",
		srv1b.Addr(), e1, e2)

	for _, row := range cal.Instance().Table("Note").Rows() {
		fmt.Printf("  Note%s\n", row.Tuple)
	}
}
