// Command offline demonstrates intermittent connectivity over real TCP
// store replicas, through the public orchestra SDK: three peers publish and
// reconcile while store replicas come and go; anti-entropy brings a
// rejoining replica back in sync. This is the substrate behavior behind
// demo scenario 5 ("Beijing publishes a number of updates and then goes
// offline").
package main

import (
	"context"
	"fmt"
	"log"

	"orchestra"
)

func main() {
	ctx := context.Background()

	notes := orchestra.NewPeerSchema("notes")
	notes.MustAddRelation(orchestra.MustRelation("Note",
		[]orchestra.Attribute{
			{Name: "id", Type: orchestra.KindInt},
			{Name: "text", Type: orchestra.KindString},
		}, "id"))

	peerNames := []string{"amy", "ben", "cal"}
	sch := orchestra.NewSchema()
	for _, n := range peerNames {
		sch.Peer(n, notes)
	}
	for _, a := range peerNames {
		for _, b := range peerNames {
			if a != b {
				sch.Identity("M_"+a+"_"+b, a, b)
			}
		}
	}

	// Two store replicas on localhost; every peer publishes to both and
	// reads from the first that answers.
	mem1, mem2 := orchestra.NewMemoryStore(), orchestra.NewMemoryStore()
	srv1, err := orchestra.NewStoreServer(mem1, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv2, err := orchestra.NewStoreServer(mem2, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv2.Close()
	addr1, addr2 := srv1.Addr(), srv2.Addr()
	fmt.Printf("store replicas at %s and %s\n", addr1, addr2)

	sys, err := orchestra.Open(sch, orchestra.WithStore(
		orchestra.NewReplicatedStore(orchestra.DialStore(addr1), orchestra.DialStore(addr2))))
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	mk := func(name string) *orchestra.Peer {
		p, err := sys.Peer(name)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	amy, ben, cal := mk("amy"), mk("ben"), mk("cal")

	note := func(id int64, text string) orchestra.Tuple {
		return orchestra.NewTuple(orchestra.Int(id), orchestra.String(text))
	}

	// Amy publishes while both replicas are up.
	if _, err := amy.Begin().Insert("Note", note(1, "kickoff at 10")).Commit(); err != nil {
		log.Fatal(err)
	}
	if _, err := amy.Publish(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("amy published note 1 to both replicas")

	// Replica 1 goes down; Ben publishes — only replica 2 receives it.
	srv1.Close()
	fmt.Println("replica 1 is down")
	if _, err := ben.Reconcile(ctx); err != nil {
		log.Fatal(err)
	}
	if _, err := ben.Begin().Insert("Note", note(2, "bring slides")).Commit(); err != nil {
		log.Fatal(err)
	}
	if _, err := ben.Publish(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("ben published note 2 to the surviving replica")

	// Cal reconciles through the outage and sees both notes.
	if _, err := cal.Reconcile(ctx); err != nil {
		log.Fatal(err)
	}
	calNotes, err := cal.Rows("Note")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cal's notes during the outage: %d\n", len(calNotes))

	// Replica 1 rejoins; anti-entropy catches it up.
	srv1b, err := orchestra.NewStoreServer(mem1, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv1b.Close()
	orchestra.AntiEntropy(mem1, mem2)
	e1, _ := mem1.Epoch()
	e2, _ := mem2.Epoch()
	fmt.Printf("replica 1 rejoined at %s; after anti-entropy epochs are %d/%d\n",
		srv1b.Addr(), e1, e2)

	for _, tu := range calNotes {
		fmt.Printf("  Note%s\n", tu)
	}
}
