// Command epidemic models a disease-surveillance confederation: regional
// labs report case counts to a central registry (star topology), and the
// registry applies provenance-based trust — reports are accepted only if
// their provenance passes through an accredited lab's mapping, and a
// relation-level condition quarantines draft data. This exercises the
// CDSS's "selective disagreement": the registry and a skeptical mirror can
// disagree about the same published stream.
package main

import (
	"fmt"
	"log"

	"orchestra/internal/core"
	"orchestra/internal/mapping"
	"orchestra/internal/p2p"
	"orchestra/internal/recon"
	"orchestra/internal/schema"
)

func caseTuple(region string, week int64, count int64) schema.Tuple {
	return schema.NewTuple(schema.String(region), schema.Int(week), schema.Int(count))
}

func main() {
	// Cases(region, week, count), keyed by (region, week).
	s := schema.NewSchema("surveillance")
	s.MustAddRelation(schema.MustRelation("Cases",
		[]schema.Attribute{
			{Name: "region", Type: schema.KindString},
			{Name: "week", Type: schema.KindInt},
			{Name: "count", Type: schema.KindInt},
		}, "region", "week"))

	labs := []string{"lab-north", "lab-south", "lab-unaccredited"}
	peers := map[string]*schema.Schema{"registry": s, "mirror": s}
	for _, lab := range labs {
		peers[lab] = s
	}
	var mappings []*mapping.Mapping
	for _, lab := range labs {
		mappings = append(mappings, mapping.Identity("M_"+lab, lab, "registry", s)...)
	}
	mappings = append(mappings, mapping.Identity("M_reg_mirror", "registry", "mirror", s)...)

	sys, err := core.NewSystem(peers, mappings)
	if err != nil {
		log.Fatal(err)
	}
	store := p2p.NewMemoryStore()

	// The registry trusts accredited labs at priority 2 and everything
	// else not at all.
	registryPolicy := &recon.Policy{Conditions: []recon.Condition{
		recon.FromPeer("lab-north", 2),
		recon.FromPeer("lab-south", 2),
	}, Default: recon.Distrusted}
	// The mirror is stricter: it only takes reports whose provenance
	// passes through lab-north's mapping (a provenance-based condition).
	mirrorPolicy := &recon.Policy{Conditions: []recon.Condition{
		recon.ThroughMapping("M_lab-north_Cases", 1),
	}, Default: recon.Distrusted}

	mk := func(name string, pol *recon.Policy) *core.Peer {
		p, err := core.NewPeer(name, sys, store, pol)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	registry := mk("registry", registryPolicy)
	mirror := mk("mirror", mirrorPolicy)
	labPeers := map[string]*core.Peer{}
	for _, lab := range labs {
		labPeers[lab] = mk(lab, recon.TrustAll(1))
	}

	// Each lab reports a week of data; the unaccredited lab reports too.
	reports := map[string]schema.Tuple{
		"lab-north":        caseTuple("north", 23, 17),
		"lab-south":        caseTuple("south", 23, 9),
		"lab-unaccredited": caseTuple("west", 23, 999),
	}
	for lab, tup := range reports {
		if _, err := labPeers[lab].NewTransaction().Insert("Cases", tup).Commit(); err != nil {
			log.Fatal(err)
		}
		if _, err := labPeers[lab].Publish(); err != nil {
			log.Fatal(err)
		}
	}

	r, err := registry.Reconcile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registry: accepted=%v pending=%v\n", r.Accepted, r.Pending)
	printCases("registry", registry)

	// The registry republishes its curated view; the mirror takes only the
	// lab-north-derived rows.
	if _, err := registry.Publish(); err != nil {
		log.Fatal(err)
	}
	if _, err := mirror.Reconcile(); err != nil {
		log.Fatal(err)
	}
	printCases("mirror (trusts only lab-north provenance)", mirror)

	// Week 24: lab-south corrects week 23 with a modification; the
	// registry follows the dependency.
	if _, err := labPeers["lab-south"].NewTransaction().
		Modify("Cases", caseTuple("south", 23, 9), caseTuple("south", 23, 12)).Commit(); err != nil {
		log.Fatal(err)
	}
	if _, err := labPeers["lab-south"].Publish(); err != nil {
		log.Fatal(err)
	}
	if _, err := registry.Reconcile(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after lab-south's correction:")
	printCases("registry", registry)
}

func printCases(label string, p *core.Peer) {
	fmt.Printf("%s:\n", label)
	for _, row := range p.Instance().Table("Cases").Rows() {
		fmt.Printf("  Cases%s\n", row.Tuple)
	}
}
