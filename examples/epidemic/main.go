// Command epidemic models a disease-surveillance confederation through the
// public orchestra SDK: regional labs report case counts to a central
// registry (star topology), and the registry applies provenance-based
// trust — reports are accepted only from accredited labs, and a stricter
// mirror takes only rows whose provenance passes through lab-north's
// mapping. This exercises the CDSS's "selective disagreement": the registry
// and the skeptical mirror disagree about the same published stream.
package main

import (
	"context"
	"fmt"
	"log"

	"orchestra"
)

func caseTuple(region string, week int64, count int64) orchestra.Tuple {
	return orchestra.NewTuple(orchestra.String(region), orchestra.Int(week), orchestra.Int(count))
}

func main() {
	ctx := context.Background()

	// Cases(region, week, count), keyed by (region, week).
	surveillance := orchestra.NewPeerSchema("surveillance")
	surveillance.MustAddRelation(orchestra.MustRelation("Cases",
		[]orchestra.Attribute{
			{Name: "region", Type: orchestra.KindString},
			{Name: "week", Type: orchestra.KindInt},
			{Name: "count", Type: orchestra.KindInt},
		}, "region", "week"))

	labs := []string{"lab-north", "lab-south", "lab-unaccredited"}
	sch := orchestra.NewSchema().
		Peer("registry", surveillance).
		Peer("mirror", surveillance).
		Identity("M_reg_mirror", "registry", "mirror")
	for _, lab := range labs {
		sch.Peer(lab, surveillance).Identity("M_"+lab, lab, "registry")
	}
	// The registry trusts accredited labs at priority 2 and everything
	// else not at all; the mirror is stricter and only takes reports whose
	// provenance passes through lab-north's mapping.
	sch.Trust("registry", &orchestra.TrustPolicy{Conditions: []orchestra.TrustCondition{
		orchestra.FromPeer("lab-north", 2),
		orchestra.FromPeer("lab-south", 2),
	}, Default: orchestra.Distrusted})
	sch.Trust("mirror", &orchestra.TrustPolicy{Conditions: []orchestra.TrustCondition{
		orchestra.ThroughMapping("M_lab-north_Cases", 1),
	}, Default: orchestra.Distrusted})

	sys, err := orchestra.Open(sch)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	mk := func(name string) *orchestra.Peer {
		p, err := sys.Peer(name)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	registry := mk("registry")
	mirror := mk("mirror")
	labPeers := map[string]*orchestra.Peer{}
	for _, lab := range labs {
		labPeers[lab] = mk(lab)
	}

	// Each lab reports a week of data; the unaccredited lab reports too.
	reports := map[string]orchestra.Tuple{
		"lab-north":        caseTuple("north", 23, 17),
		"lab-south":        caseTuple("south", 23, 9),
		"lab-unaccredited": caseTuple("west", 23, 999),
	}
	for _, lab := range labs { // deterministic order
		if _, err := labPeers[lab].Begin().Insert("Cases", reports[lab]).Commit(); err != nil {
			log.Fatal(err)
		}
		if _, err := labPeers[lab].Publish(ctx); err != nil {
			log.Fatal(err)
		}
	}

	r, err := registry.Reconcile(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registry: accepted=%v pending=%v\n", r.Accepted, r.Pending)
	printCases("registry", registry)

	// The registry republishes its curated view; the mirror takes only the
	// lab-north-derived rows.
	if _, err := registry.Publish(ctx); err != nil {
		log.Fatal(err)
	}
	if _, err := mirror.Reconcile(ctx); err != nil {
		log.Fatal(err)
	}
	printCases("mirror (trusts only lab-north provenance)", mirror)

	// Week 24: lab-south corrects week 23 with a modification; the
	// registry follows the dependency.
	if _, err := labPeers["lab-south"].Begin().
		Modify("Cases", caseTuple("south", 23, 9), caseTuple("south", 23, 12)).Commit(); err != nil {
		log.Fatal(err)
	}
	if _, err := labPeers["lab-south"].Publish(ctx); err != nil {
		log.Fatal(err)
	}
	if _, err := registry.Reconcile(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after lab-south's correction:")
	printCases("registry", registry)
}

func printCases(label string, p *orchestra.Peer) {
	fmt.Printf("%s:\n", label)
	rows, err := p.Rows("Cases")
	if err != nil {
		log.Fatal(err)
	}
	for _, tu := range rows {
		fmt.Printf("  Cases%s\n", tu)
	}
}
