// Command quickstart is the smallest possible ORCHESTRA CDSS: two peers
// sharing one schema, linked by identity mappings. Alice inserts a tuple
// and publishes; Bob reconciles and receives it; Bob modifies it and Alice
// picks up the change.
package main

import (
	"fmt"
	"log"

	"orchestra/internal/core"
	"orchestra/internal/mapping"
	"orchestra/internal/p2p"
	"orchestra/internal/recon"
	"orchestra/internal/schema"
)

func main() {
	// One relation: Gene(name, chromosome), keyed by name.
	s := schema.NewSchema("genes")
	s.MustAddRelation(schema.MustRelation("Gene",
		[]schema.Attribute{
			{Name: "name", Type: schema.KindString},
			{Name: "chromosome", Type: schema.KindInt},
		}, "name"))

	peers := map[string]*schema.Schema{"alice": s, "bob": s}
	var mappings []*mapping.Mapping
	mappings = append(mappings, mapping.Identity("M_ab", "alice", "bob", s)...)
	mappings = append(mappings, mapping.Identity("M_ba", "bob", "alice", s)...)

	sys, err := core.NewSystem(peers, mappings)
	if err != nil {
		log.Fatal(err)
	}
	store := p2p.NewMemoryStore()
	alice, err := core.NewPeer("alice", sys, store, recon.TrustAll(1))
	if err != nil {
		log.Fatal(err)
	}
	bob, err := core.NewPeer("bob", sys, store, recon.TrustAll(1))
	if err != nil {
		log.Fatal(err)
	}

	// Alice edits locally, then publishes.
	brca1 := schema.NewTuple(schema.String("BRCA1"), schema.Int(17))
	if _, err := alice.NewTransaction().Insert("Gene", brca1).Commit(); err != nil {
		log.Fatal(err)
	}
	if _, err := alice.Publish(); err != nil {
		log.Fatal(err)
	}

	// Bob reconciles and receives Alice's tuple.
	report, err := bob.Reconcile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob reconciled to epoch %d: accepted %d txn(s)\n", report.Epoch, len(report.Accepted))
	fmt.Printf("bob's Gene table: %v\n", rows(bob))

	// Bob corrects the chromosome and publishes; Alice picks it up.
	fixed := schema.NewTuple(schema.String("BRCA1"), schema.Int(13))
	if _, err := bob.NewTransaction().Modify("Gene", brca1, fixed).Commit(); err != nil {
		log.Fatal(err)
	}
	if _, err := bob.Publish(); err != nil {
		log.Fatal(err)
	}
	if _, err := alice.Reconcile(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice's Gene table after Bob's fix: %v\n", rows(alice))
}

func rows(p *core.Peer) []string {
	var out []string
	for _, r := range p.Instance().Table("Gene").Rows() {
		out = append(out, r.Tuple.String())
	}
	return out
}
