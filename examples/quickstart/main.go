// Command quickstart is the smallest possible ORCHESTRA CDSS, driven
// entirely through the public orchestra SDK: two peers sharing one schema,
// linked by identity mappings. Alice inserts a tuple and publishes; Bob
// reconciles and receives it; Bob corrects it and Alice picks up the
// change. Along the way it shows the typed error taxonomy (a conflicting
// insert fails with ErrKeyViolation) and the change-subscription feed Bob
// uses to observe his table evolving.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"

	"orchestra"
)

func main() {
	ctx := context.Background()

	// One relation: Gene(name, chromosome), keyed by name.
	genes := orchestra.NewPeerSchema("genes")
	genes.MustAddRelation(orchestra.MustRelation("Gene",
		[]orchestra.Attribute{
			{Name: "name", Type: orchestra.KindString},
			{Name: "chromosome", Type: orchestra.KindInt},
		}, "name"))

	sch := orchestra.NewSchema().
		Peer("alice", genes).
		Peer("bob", genes).
		Identity("M_ab", "alice", "bob").
		Identity("M_ba", "bob", "alice")

	sys, err := orchestra.Open(sch, orchestra.WithParallelism(-1))
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	alice, err := sys.Peer("alice")
	if err != nil {
		log.Fatal(err)
	}
	bob, err := sys.Peer("bob")
	if err != nil {
		log.Fatal(err)
	}

	// Bob follows his own table through the change feed; the collected
	// lines are printed at the end. WithoutAutoReconcile keeps delivery
	// tied to the explicit Reconcile calls below, so output is
	// deterministic.
	subCtx, cancelSub := context.WithCancel(ctx)
	sub := bob.Subscribe(subCtx, orchestra.WithoutAutoReconcile()) // registers now; consumed below
	var feed []string
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for c, err := range sub {
			if err != nil {
				return // context canceled: feed closed
			}
			origin := "remote"
			if c.Local {
				origin = "local"
			}
			feed = append(feed, fmt.Sprintf("epoch %d %s %s%v (%s %s)", c.Epoch, c.Op, c.Rel, c.New, origin, c.Txn))
		}
	}()

	// Alice edits locally, then publishes.
	brca1 := orchestra.NewTuple(orchestra.String("BRCA1"), orchestra.Int(17))
	if _, err := alice.Begin().Insert("Gene", brca1).Commit(); err != nil {
		log.Fatal(err)
	}
	if _, err := alice.Publish(ctx); err != nil {
		log.Fatal(err)
	}

	// Bob reconciles and receives Alice's tuple.
	report, err := bob.Reconcile(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob reconciled to epoch %d: accepted %d txn(s)\n", report.Epoch, len(report.Accepted))
	fmt.Printf("bob's Gene table: %v\n", rows(bob))

	// Inserting a different tuple under a stored key is a typed error.
	dup := orchestra.NewTuple(orchestra.String("BRCA1"), orchestra.Int(99))
	if _, err := bob.Begin().Insert("Gene", dup).Commit(); errors.Is(err, orchestra.ErrKeyViolation) {
		fmt.Println("conflicting insert rejected with ErrKeyViolation; using Modify instead")
	} else {
		log.Fatalf("expected a key violation, got %v", err)
	}

	// Bob corrects the chromosome and publishes; Alice picks it up.
	fixed := orchestra.NewTuple(orchestra.String("BRCA1"), orchestra.Int(13))
	if _, err := bob.Begin().Modify("Gene", brca1, fixed).Commit(); err != nil {
		log.Fatal(err)
	}
	if _, err := bob.Publish(ctx); err != nil {
		log.Fatal(err)
	}
	if _, err := alice.Reconcile(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice's Gene table after Bob's fix: %v\n", rows(alice))

	cancelSub()
	wg.Wait()
	fmt.Println("bob's change feed:")
	for _, line := range feed {
		fmt.Printf("  %s\n", line)
	}
}

func rows(p *orchestra.Peer) []string {
	tuples, err := p.Rows("Gene")
	if err != nil {
		log.Fatal(err)
	}
	var out []string
	for _, tu := range tuples {
		out = append(out, tu.String())
	}
	return out
}
