// Command goalquery demonstrates the goal-directed query subsystem on a
// small citation graph: a peer stores Cites(src, dst) edges, defines a
// recursive "influences" view at query time, and asks which papers one
// bound paper transitively influences. The same query is then forced
// through the full-fixpoint baseline to show the answers (including
// provenance) are identical while the goal-directed run explores only the
// bound paper's component. Everything runs through the public orchestra
// SDK; the magic-sets machinery stays behind Peer.Query.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"orchestra"
)

func main() {
	ctx := context.Background()

	papers := orchestra.NewPeerSchema("papers")
	papers.MustAddRelation(orchestra.MustRelation("Cites",
		[]orchestra.Attribute{
			{Name: "src", Type: orchestra.KindString},
			{Name: "dst", Type: orchestra.KindString},
		}, "src", "dst"))

	sys, err := orchestra.Open(orchestra.NewSchema().Peer("library", papers))
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	lib, err := sys.Peer("library")
	if err != nil {
		log.Fatal(err)
	}

	// Two citation chains; only the first is reachable from "semirings".
	edges := [][2]string{
		{"semirings", "update-exchange"},
		{"update-exchange", "orchestra-demo"},
		{"orchestra-demo", "cdss-survey"},
		{"skyline-queries", "quad-trees"},
		{"quad-trees", "r-trees"},
	}
	tx := lib.Begin()
	for _, e := range edges {
		tx.Insert("Cites", orchestra.NewTuple(orchestra.String(e[0]), orchestra.String(e[1])))
	}
	if _, err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	influenced := func() *orchestra.Query {
		return lib.Query(ctx, "influences",
			orchestra.Bind(orchestra.String("semirings")), orchestra.Free("paper")).
			Rule("influences", []string{"a", "b"},
				orchestra.Atom("Cites", orchestra.Free("a"), orchestra.Free("b"))).
			Rule("influences", []string{"a", "c"},
				orchestra.Atom("influences", orchestra.Free("a"), orchestra.Free("b")),
				orchestra.Atom("Cites", orchestra.Free("b"), orchestra.Free("c")))
	}

	fmt.Println("papers influenced by \"semirings\" (goal-directed):")
	start := time.Now()
	for ans, err := range influenced().Stream() {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s  (provenance %s)\n", ans.Tuple, ans.Prov)
	}
	goalTime := time.Since(start)

	start = time.Now()
	full, err := influenced().FullFixpoint().All()
	if err != nil {
		log.Fatal(err)
	}
	fullTime := time.Since(start)
	fmt.Printf("full fixpoint agrees on %d answer(s)\n", len(full))
	// Timings vary run to run; on selective goals over larger graphs the
	// goal-directed path wins by orders of magnitude (see `make bench-query`).
	_ = goalTime
	_ = fullTime
}
