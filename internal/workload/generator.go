package workload

import (
	"fmt"
	"math/rand"

	"orchestra/internal/mapping"
	"orchestra/internal/schema"
	"orchestra/internal/updates"
)

// Topology is a synthetic CDSS configuration for the experiment harness.
type Topology struct {
	Names    []string
	Peers    map[string]*schema.Schema
	Mappings []*mapping.Mapping
}

// peerName returns the canonical name of the i-th synthetic peer.
func peerName(i int) string { return fmt.Sprintf("p%02d", i) }

// Chain builds n peers sharing Σ1, linked p0 ↔ p1 ↔ ... ↔ pn-1 with
// bidirectional identity mappings — the linear confederations the paper's
// scaling discussion envisions.
func Chain(n int) *Topology {
	t := &Topology{Peers: map[string]*schema.Schema{}}
	s1 := Sigma1()
	for i := 0; i < n; i++ {
		name := peerName(i)
		t.Names = append(t.Names, name)
		t.Peers[name] = s1
	}
	for i := 0; i+1 < n; i++ {
		a, b := peerName(i), peerName(i+1)
		t.Mappings = append(t.Mappings, mapping.Identity(fmt.Sprintf("M_%s_%s", a, b), a, b, s1)...)
		t.Mappings = append(t.Mappings, mapping.Identity(fmt.Sprintf("M_%s_%s", b, a), b, a, s1)...)
	}
	return t
}

// Star builds a hub (p00) with n-1 spokes, all sharing Σ1, bidirectional
// identity mappings hub ↔ spoke — the "curated central registry" shape.
func Star(n int) *Topology {
	t := &Topology{Peers: map[string]*schema.Schema{}}
	s1 := Sigma1()
	for i := 0; i < n; i++ {
		name := peerName(i)
		t.Names = append(t.Names, name)
		t.Peers[name] = s1
	}
	hub := peerName(0)
	for i := 1; i < n; i++ {
		sp := peerName(i)
		t.Mappings = append(t.Mappings, mapping.Identity(fmt.Sprintf("M_%s_%s", hub, sp), hub, sp, s1)...)
		t.Mappings = append(t.Mappings, mapping.Identity(fmt.Sprintf("M_%s_%s", sp, hub), sp, hub, s1)...)
	}
	return t
}

// Pipeline builds n peers sharing Σ1 linked p0 → p1 → ... → pn-1 with
// one-directional identity mappings — the ingest/distribution pipeline
// shape: upstream peers publish, downstream peers serve, and nothing echoes
// back. Because every hop adds exactly one derivation, per-transaction
// fixed costs dominate translation here, which is what the group-commit
// benchmarks (E9) measure.
func Pipeline(n int) *Topology {
	t := &Topology{Peers: map[string]*schema.Schema{}}
	s1 := Sigma1()
	for i := 0; i < n; i++ {
		name := peerName(i)
		t.Names = append(t.Names, name)
		t.Peers[name] = s1
	}
	for i := 0; i+1 < n; i++ {
		a, b := peerName(i), peerName(i+1)
		t.Mappings = append(t.Mappings, mapping.Identity(fmt.Sprintf("M_%s_%s", a, b), a, b, s1)...)
	}
	return t
}

// Mesh builds a complete graph over n peers sharing Σ1 (every ordered pair
// has an identity mapping) — the worst-case mapping count.
func Mesh(n int) *Topology {
	t := &Topology{Peers: map[string]*schema.Schema{}}
	s1 := Sigma1()
	for i := 0; i < n; i++ {
		name := peerName(i)
		t.Names = append(t.Names, name)
		t.Peers[name] = s1
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			a, b := peerName(i), peerName(j)
			t.Mappings = append(t.Mappings, mapping.Identity(fmt.Sprintf("M_%s_%s", a, b), a, b, s1)...)
		}
	}
	return t
}

// ChainJoinSplit builds a chain alternating Σ1 and Σ2 peers, linked by the
// Figure 2 join/split mappings — every hop does real structural
// transformation (3-way join one way, Skolemizing split the other).
func ChainJoinSplit(n int) *Topology {
	t := &Topology{Peers: map[string]*schema.Schema{}}
	s1, s2 := Sigma1(), Sigma2()
	for i := 0; i < n; i++ {
		name := peerName(i)
		t.Names = append(t.Names, name)
		if i%2 == 0 {
			t.Peers[name] = s1
		} else {
			t.Peers[name] = s2
		}
	}
	for i := 0; i+1 < n; i++ {
		a, b := peerName(i), peerName(i+1)
		if i%2 == 0 {
			t.Mappings = append(t.Mappings, JoinMapping(fmt.Sprintf("M_%s_%s", a, b), a, b))
			t.Mappings = append(t.Mappings, SplitMapping(fmt.Sprintf("M_%s_%s", b, a), b, a))
		} else {
			t.Mappings = append(t.Mappings, SplitMapping(fmt.Sprintf("M_%s_%s", a, b), a, b))
			t.Mappings = append(t.Mappings, JoinMapping(fmt.Sprintf("M_%s_%s", b, a), b, a))
		}
	}
	return t
}

// OPBaseTxn builds one transaction inserting norg organisms and nprot
// proteins at the given peer — the dimension tables the S stream joins
// against.
func OPBaseTxn(peer string, seq uint64, norg, nprot int) *updates.Transaction {
	t := &updates.Transaction{ID: updates.TxnID{Peer: peer, Seq: seq}}
	for i := 0; i < norg; i++ {
		t.Updates = append(t.Updates, updates.Insert("O", OTuple(Organism(i), int64(i))))
	}
	for i := 0; i < nprot; i++ {
		t.Updates = append(t.Updates, updates.Insert("P", PTuple(Protein(i), int64(i))))
	}
	return t
}

// StreamOpts tunes the synthetic update stream.
type StreamOpts struct {
	// TxnSize is the number of tuple-level updates per transaction.
	TxnSize int
	// KeySpace bounds the (oid, pid) key space: oid in [0, KeySpace),
	// pid in [0, KeySpace).
	KeySpace int64
	// ModifyFrac is the fraction of updates that modify an existing key
	// (the rest insert fresh keys). Modifies target keys already written
	// by this generator.
	ModifyFrac float64
	// Seed makes the stream deterministic.
	Seed int64
}

// Stream generates n transactions of S-relation updates at the given peer.
// Generated transactions carry correct Deps for modifies of keys written by
// earlier transactions in the same stream.
func Stream(peer string, startSeq uint64, n int, o StreamOpts) []*updates.Transaction {
	if o.TxnSize <= 0 {
		o.TxnSize = 1
	}
	if o.KeySpace <= 0 {
		o.KeySpace = 1 << 30
	}
	rng := rand.New(rand.NewSource(o.Seed))
	type lastWrite struct {
		id  updates.TxnID
		tup schema.Tuple
	}
	written := map[[2]int64]lastWrite{}
	var keys [][2]int64
	var out []*updates.Transaction
	nextFresh := int64(0)
	for i := 0; i < n; i++ {
		t := &updates.Transaction{ID: updates.TxnID{Peer: peer, Seq: startSeq + uint64(i)}}
		depSet := map[updates.TxnID]bool{}
		for j := 0; j < o.TxnSize; j++ {
			if len(keys) > 0 && rng.Float64() < o.ModifyFrac {
				k := keys[rng.Intn(len(keys))]
				lw := written[k]
				newTup := STuple(k[0], k[1], Sequence(k[0]+int64(i)+1, k[1]+int64(j)+7))
				t.Updates = append(t.Updates, updates.Modify("S", lw.tup, newTup))
				if lw.id != t.ID {
					depSet[lw.id] = true
				}
				written[k] = lastWrite{id: t.ID, tup: newTup}
			} else {
				oid := nextFresh % o.KeySpace
				pid := nextFresh / o.KeySpace
				nextFresh++
				k := [2]int64{oid, pid}
				tup := STuple(oid, pid, Sequence(oid, pid))
				t.Updates = append(t.Updates, updates.Insert("S", tup))
				keys = append(keys, k)
				written[k] = lastWrite{id: t.ID, tup: tup}
			}
		}
		for d := range depSet {
			t.Deps = append(t.Deps, d)
		}
		out = append(out, t)
	}
	return out
}

// ConflictingStreams generates two same-length transaction streams from two
// peers where approximately conflictRate of the transaction pairs write the
// same S key with different sequences — the workload of the reconciliation
// experiment (E5).
func ConflictingStreams(peerA, peerB string, n int, conflictRate float64, seed int64) (a, b []*updates.Transaction) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		keyA := [2]int64{int64(i), 0}
		keyB := [2]int64{int64(i), 1}
		if rng.Float64() < conflictRate {
			keyB = keyA // same key, different value: conflict
		}
		ta := &updates.Transaction{ID: updates.TxnID{Peer: peerA, Seq: uint64(i + 1)}}
		ta.Updates = append(ta.Updates, updates.Insert("S", STuple(keyA[0], keyA[1], Sequence(keyA[0], 1))))
		tb := &updates.Transaction{ID: updates.TxnID{Peer: peerB, Seq: uint64(i + 1)}}
		tb.Updates = append(tb.Updates, updates.Insert("S", STuple(keyB[0], keyB[1], Sequence(keyB[0], 2))))
		a = append(a, ta)
		b = append(b, tb)
	}
	return a, b
}
