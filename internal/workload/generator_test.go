package workload

import (
	"testing"

	"orchestra/internal/mapping"
	"orchestra/internal/updates"
)

func TestFigure2Fixture(t *testing.T) {
	peers := Figure2Peers()
	if len(peers) != 4 {
		t.Fatalf("peers = %v", peers)
	}
	if peers[Alaska].Relation("O") == nil || peers[Crete].Relation("OPS") == nil {
		t.Error("schemas wrong")
	}
	ms := Figure2Mappings()
	// 3 relations × 2 directions (A↔B) + 1 × 2 (C↔D) + join + split = 10.
	if len(ms) != 10 {
		t.Errorf("mappings = %d", len(ms))
	}
	if _, err := mapping.Compile(ms); err != nil {
		t.Fatal(err)
	}
}

func TestTopologies(t *testing.T) {
	cases := []struct {
		name     string
		topo     *Topology
		peers    int
		mappings int
	}{
		{"chain4", Chain(4), 4, 3 * 3 * 2},    // 3 links × 3 relations × 2 dirs
		{"star4", Star(4), 4, 3 * 3 * 2},      // 3 spokes × 3 relations × 2 dirs
		{"mesh4", Mesh(4), 4, 12 * 3},         // 12 ordered pairs × 3 relations
		{"cjs4", ChainJoinSplit(4), 4, 3 * 2}, // 3 links × (join + split)
	}
	for _, c := range cases {
		if len(c.topo.Names) != c.peers || len(c.topo.Peers) != c.peers {
			t.Errorf("%s: peers = %d", c.name, len(c.topo.Peers))
		}
		if len(c.topo.Mappings) != c.mappings {
			t.Errorf("%s: mappings = %d, want %d", c.name, len(c.topo.Mappings), c.mappings)
		}
		if _, err := mapping.Compile(c.topo.Mappings); err != nil {
			t.Errorf("%s: compile: %v", c.name, err)
		}
	}
}

func TestStreamDeterministicAndDeps(t *testing.T) {
	opts := StreamOpts{TxnSize: 3, KeySpace: 100, ModifyFrac: 0.5, Seed: 7}
	a := Stream("p", 1, 50, opts)
	b := Stream("p", 1, 50, opts)
	if len(a) != 50 || len(b) != 50 {
		t.Fatal("wrong length")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("stream not deterministic at %d", i)
		}
	}
	// Modifies must depend on prior writers.
	deps := 0
	mods := 0
	for _, txn := range a {
		deps += len(txn.Deps)
		for _, u := range txn.Updates {
			if u.Op == updates.OpModify {
				mods++
			}
		}
	}
	if mods == 0 || deps == 0 {
		t.Errorf("mods=%d deps=%d; generator not exercising modifies", mods, deps)
	}
	// All inserts have unique keys.
	seen := map[string]bool{}
	for _, txn := range a {
		for _, u := range txn.Updates {
			if u.Op == updates.OpInsert {
				k := u.New.Project([]int{0, 1}).Key()
				if seen[k] {
					t.Fatalf("duplicate insert key %s", k)
				}
				seen[k] = true
			}
		}
	}
}

func TestConflictingStreams(t *testing.T) {
	a, b := ConflictingStreams("x", "y", 200, 0.3, 1)
	if len(a) != 200 || len(b) != 200 {
		t.Fatal("wrong length")
	}
	conflicts := 0
	for i := range a {
		ka := a[i].Updates[0].New.Project([]int{0, 1}).Key()
		kb := b[i].Updates[0].New.Project([]int{0, 1}).Key()
		if ka == kb {
			conflicts++
		}
	}
	if conflicts < 30 || conflicts > 100 {
		t.Errorf("conflicts = %d out of 200 at rate 0.3", conflicts)
	}
	// Rate 0 yields none; rate 1 yields all.
	a0, b0 := ConflictingStreams("x", "y", 50, 0, 2)
	for i := range a0 {
		if a0[i].Updates[0].New.Project([]int{0, 1}).Key() == b0[i].Updates[0].New.Project([]int{0, 1}).Key() {
			t.Fatal("conflict at rate 0")
		}
	}
	a1, b1 := ConflictingStreams("x", "y", 50, 1, 3)
	for i := range a1 {
		if a1[i].Updates[0].New.Project([]int{0, 1}).Key() != b1[i].Updates[0].New.Project([]int{0, 1}).Key() {
			t.Fatal("no conflict at rate 1")
		}
	}
}

func TestGeneratorHelpers(t *testing.T) {
	if Organism(0) != "mouse" || Organism(100) == "" {
		t.Error("Organism wrong")
	}
	if Organism(3) == Organism(11) {
		t.Error("Organism collision in wrapped range")
	}
	if Protein(0) != "p53" || Protein(99) == "" {
		t.Error("Protein wrong")
	}
	s := Sequence(1, 2)
	if len(s) != 12 || s != Sequence(1, 2) {
		t.Errorf("Sequence = %q", s)
	}
	for _, c := range s {
		switch c {
		case 'A', 'C', 'G', 'T':
		default:
			t.Fatalf("bad base %c", c)
		}
	}
	txn := OPBaseTxn("p", 1, 5, 7)
	if len(txn.Updates) != 12 {
		t.Errorf("OPBase updates = %d", len(txn.Updates))
	}
}
