// Package workload provides the paper's Figure 2 bioinformatics CDSS as a
// reusable fixture, plus synthetic workload generators (peers, mapping
// topologies, update streams with tunable conflict rates) for the
// experiment harness.
package workload

import (
	"fmt"

	"orchestra/internal/datalog"
	"orchestra/internal/mapping"
	"orchestra/internal/schema"
)

// Peer names of Figure 2: the Universities of Alaska, Beijing, Crete, and
// Dresden.
const (
	Alaska  = "alaska"
	Beijing = "beijing"
	Crete   = "crete"
	Dresden = "dresden"
)

// Sigma1 builds Σ1 = {O(org, oid), P(prot, pid), S(oid, pid, seq)}, the
// schema shared by Alaska and Beijing. oid and pid are the keys; S is keyed
// by (oid, pid).
func Sigma1() *schema.Schema {
	s := schema.NewSchema("Σ1")
	s.MustAddRelation(schema.MustRelation("O",
		[]schema.Attribute{{Name: "org", Type: schema.KindString}, {Name: "oid", Type: schema.KindInt}},
		"oid"))
	s.MustAddRelation(schema.MustRelation("P",
		[]schema.Attribute{{Name: "prot", Type: schema.KindString}, {Name: "pid", Type: schema.KindInt}},
		"pid"))
	s.MustAddRelation(schema.MustRelation("S",
		[]schema.Attribute{{Name: "oid", Type: schema.KindInt}, {Name: "pid", Type: schema.KindInt}, {Name: "seq", Type: schema.KindString}},
		"oid", "pid"))
	return s
}

// Sigma2 builds Σ2 = {OPS(org, prot, seq)}, the schema shared by Crete and
// Dresden, keyed by (org, prot).
func Sigma2() *schema.Schema {
	s := schema.NewSchema("Σ2")
	s.MustAddRelation(schema.MustRelation("OPS",
		[]schema.Attribute{{Name: "org", Type: schema.KindString}, {Name: "prot", Type: schema.KindString}, {Name: "seq", Type: schema.KindString}},
		"org", "prot"))
	return s
}

// Figure2Peers returns the peer -> schema map of the demo CDSS.
func Figure2Peers() map[string]*schema.Schema {
	s1, s2 := Sigma1(), Sigma2()
	return map[string]*schema.Schema{
		Alaska:  s1,
		Beijing: s1,
		Crete:   s2,
		Dresden: s2,
	}
}

// Figure2Mappings returns the mappings of Figure 2:
//
//	MA↔B  identity between Alaska and Beijing (Σ1)
//	MC↔D  identity between Crete and Dresden (Σ2)
//	MA→C  join of O, P, S into OPS
//	MC→A  split of OPS into O, P, S with invented oid/pid
func Figure2Mappings() []*mapping.Mapping {
	var ms []*mapping.Mapping
	ms = append(ms, mapping.Identity("M_AB", Alaska, Beijing, Sigma1())...)
	ms = append(ms, mapping.Identity("M_BA", Beijing, Alaska, Sigma1())...)
	ms = append(ms, mapping.Identity("M_CD", Crete, Dresden, Sigma2())...)
	ms = append(ms, mapping.Identity("M_DC", Dresden, Crete, Sigma2())...)
	ms = append(ms, JoinMapping("M_AC", Alaska, Crete))
	ms = append(ms, SplitMapping("M_CA", Crete, Alaska))
	return ms
}

// JoinMapping builds MA→C-style mapping: OPS(org,prot,seq) :- O(org,oid),
// P(prot,pid), S(oid,pid,seq).
func JoinMapping(id, source, target string) *mapping.Mapping {
	return &mapping.Mapping{
		ID: id, Source: source, Target: target,
		Body: []datalog.Literal{
			datalog.Pos(datalog.NewAtom(mapping.Qualify(source, "O"), datalog.V("org"), datalog.V("oid"))),
			datalog.Pos(datalog.NewAtom(mapping.Qualify(source, "P"), datalog.V("prot"), datalog.V("pid"))),
			datalog.Pos(datalog.NewAtom(mapping.Qualify(source, "S"), datalog.V("oid"), datalog.V("pid"), datalog.V("seq"))),
		},
		Head: []datalog.Atom{
			datalog.NewAtom(mapping.Qualify(target, "OPS"), datalog.V("org"), datalog.V("prot"), datalog.V("seq")),
		},
	}
}

// SplitMapping builds MC→A-style mapping: O(org,oid), P(prot,pid),
// S(oid,pid,seq) :- OPS(org,prot,seq), with oid and pid existential
// (Skolemized into labeled nulls).
func SplitMapping(id, source, target string) *mapping.Mapping {
	return &mapping.Mapping{
		ID: id, Source: source, Target: target,
		Body: []datalog.Literal{
			datalog.Pos(datalog.NewAtom(mapping.Qualify(source, "OPS"), datalog.V("org"), datalog.V("prot"), datalog.V("seq"))),
		},
		Head: []datalog.Atom{
			datalog.NewAtom(mapping.Qualify(target, "O"), datalog.V("org"), datalog.V("oid")),
			datalog.NewAtom(mapping.Qualify(target, "P"), datalog.V("prot"), datalog.V("pid")),
			datalog.NewAtom(mapping.Qualify(target, "S"), datalog.V("oid"), datalog.V("pid"), datalog.V("seq")),
		},
	}
}

// Organisms and proteins used by the synthetic bioinformatics generator.
var (
	organisms = []string{"mouse", "rat", "fly", "worm", "yeast", "zebrafish", "human", "arabidopsis"}
	proteins  = []string{"p53", "brca1", "ins", "hbb", "myc", "egfr", "tnf", "apoe", "cftr", "dmd"}
)

// Organism returns the i-th synthetic organism name (wrapping, with a
// numeric suffix after the base list is exhausted).
func Organism(i int) string {
	if i < len(organisms) {
		return organisms[i]
	}
	return fmt.Sprintf("%s-%d", organisms[i%len(organisms)], i/len(organisms))
}

// Protein returns the i-th synthetic protein name.
func Protein(i int) string {
	if i < len(proteins) {
		return proteins[i]
	}
	return fmt.Sprintf("%s-%d", proteins[i%len(proteins)], i/len(proteins))
}

// Sequence returns a deterministic pseudo-DNA sequence for (oid, pid).
func Sequence(oid, pid int64) string {
	const bases = "ACGT"
	x := uint64(oid)*2654435761 + uint64(pid)*40503 + 12345
	out := make([]byte, 12)
	for i := range out {
		x = x*6364136223846793005 + 1442695040888963407
		out[i] = bases[(x>>33)%4]
	}
	return string(out)
}

// OTuple, PTuple and STuple build Σ1 tuples.
func OTuple(org string, oid int64) schema.Tuple {
	return schema.NewTuple(schema.String(org), schema.Int(oid))
}

// PTuple builds a P(prot, pid) tuple.
func PTuple(prot string, pid int64) schema.Tuple {
	return schema.NewTuple(schema.String(prot), schema.Int(pid))
}

// STuple builds an S(oid, pid, seq) tuple.
func STuple(oid, pid int64, seq string) schema.Tuple {
	return schema.NewTuple(schema.Int(oid), schema.Int(pid), schema.String(seq))
}

// OPSTuple builds a Σ2 OPS(org, prot, seq) tuple.
func OPSTuple(org, prot, seq string) schema.Tuple {
	return schema.NewTuple(schema.String(org), schema.String(prot), schema.String(seq))
}
