package repl

import (
	"errors"
	"strings"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/p2p"
	"orchestra/internal/recon"
	"orchestra/internal/workload"
)

// twoNodeSetup builds Alaska and Dresden REPLs over a shared store.
func twoNodeSetup(t *testing.T) (alaska, dresden *REPL, outA, outD *strings.Builder) {
	t.Helper()
	sys, err := core.NewSystem(workload.Figure2Peers(), workload.Figure2Mappings())
	if err != nil {
		t.Fatal(err)
	}
	store := p2p.NewMemoryStore()
	pa, err := core.NewPeer(workload.Alaska, sys, store, recon.TrustAll(1))
	if err != nil {
		t.Fatal(err)
	}
	pd, err := core.NewPeer(workload.Dresden, sys, store, recon.TrustAll(1))
	if err != nil {
		t.Fatal(err)
	}
	outA, outD = &strings.Builder{}, &strings.Builder{}
	return New(pa, outA), New(pd, outD), outA, outD
}

func TestEndToEndSession(t *testing.T) {
	alaska, dresden, outA, outD := twoNodeSetup(t)
	scriptA := `
# a grouped transaction
begin
insert O mouse 1
insert P p53 10
insert S 1 10 ACGT
commit
publish
dump O
quit
`
	if err := alaska.Run(strings.NewReader(scriptA)); err != nil {
		t.Fatal(err)
	}
	a := outA.String()
	for _, frag := range []string{"transaction started", "queued", "committed alaska:1", "published; store epoch 1", "(mouse, 1)"} {
		if !strings.Contains(a, frag) {
			t.Errorf("alaska transcript missing %q:\n%s", frag, a)
		}
	}
	scriptD := `
reconcile
dump OPS
query q(seq) :- OPS("mouse", "p53", seq)
explain OPS mouse p53 ACGT
status alaska:1
epoch
`
	if err := dresden.Run(strings.NewReader(scriptD)); err != nil {
		t.Fatal(err)
	}
	d := outD.String()
	for _, frag := range []string{
		"accepted [alaska:1]",
		"OPS(org string, prot string, seq string) (1 tuples)",
		"(ACGT)",
		"1 answer(s)",
		"derivation 1: txns=[alaska:1]",
		"alaska:1: accepted",
	} {
		if !strings.Contains(d, frag) {
			t.Errorf("dresden transcript missing %q:\n%s", frag, d)
		}
	}
}

// The query command routes through the goal-directed engine and accepts
// extra view rules — including recursive ones.
func TestRecursiveQueryCommand(t *testing.T) {
	alaska, _, outA, _ := twoNodeSetup(t)
	script := `
insert S 1 2 AAAA
insert S 2 3 CCCC
insert S 3 4 GGGG
insert S 10 11 TTTT
query q(y) :- linked(1, y). linked(a, b) :- S(a, b, s). linked(a, c) :- linked(a, b), S(b, c, s).
`
	if err := alaska.Run(strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	out := outA.String()
	for _, frag := range []string{"(2)", "(3)", "(4)", "3 answer(s)"} {
		if !strings.Contains(out, frag) {
			t.Errorf("transcript missing %q:\n%s", frag, out)
		}
	}
	if strings.Contains(out, "(11)") {
		t.Errorf("undemanded component answered:\n%s", out)
	}
}

func TestModifyAndDelete(t *testing.T) {
	alaska, _, outA, _ := twoNodeSetup(t)
	script := `
insert O mouse 1
modify O mouse 1 -> rat 1
dump O
delete O rat 1
dump O
`
	if err := alaska.Run(strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	out := outA.String()
	if !strings.Contains(out, "(rat, 1)") {
		t.Errorf("modify lost:\n%s", out)
	}
	if !strings.Contains(out, "(0 tuples)") {
		t.Errorf("delete lost:\n%s", out)
	}
}

func TestErrorsDoNotStopLoop(t *testing.T) {
	alaska, _, outA, _ := twoNodeSetup(t)
	script := `
bogus command
insert NOPE 1
insert O notanint x
insert O mouse 1
`
	if err := alaska.Run(strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	out := outA.String()
	if strings.Count(out, "error:") != 3 {
		t.Errorf("expected 3 errors:\n%s", out)
	}
	if !strings.Contains(out, "committed alaska:1") {
		t.Errorf("later command did not run:\n%s", out)
	}
}

func TestTxnDiscipline(t *testing.T) {
	alaska, _, outA, _ := twoNodeSetup(t)
	script := `
commit
abort
begin
begin
abort
`
	if err := alaska.Run(strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	out := outA.String()
	if strings.Count(out, "error:") != 3 { // commit w/o begin, abort w/o begin, double begin
		t.Errorf("txn discipline errors = %d:\n%s", strings.Count(out, "error:"), out)
	}
	if !strings.Contains(out, "aborted") {
		t.Errorf("abort lost:\n%s", out)
	}
}

func TestResolveAndStatusCommands(t *testing.T) {
	alaska, _, outA, _ := twoNodeSetup(t)
	script := `
resolve notatxnid
resolve ghost:1
status ghost:1
help
`
	if err := alaska.Run(strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	out := outA.String()
	if strings.Count(out, "error:") != 2 {
		t.Errorf("errors = %d:\n%s", strings.Count(out, "error:"), out)
	}
	if !strings.Contains(out, "ghost:1: unknown") {
		t.Errorf("status output missing:\n%s", out)
	}
	if !strings.Contains(out, "commands:") {
		t.Errorf("help missing:\n%s", out)
	}
}

// REPL usage, parse, and relation errors must wrap the core sentinels so
// embedders driving Exec programmatically can dispatch with errors.Is (the
// public facade maps the core sentinels onto its own taxonomy).
func TestExecErrorsWrapSentinels(t *testing.T) {
	alaska, _, _, _ := twoNodeSetup(t)
	cases := []struct {
		line string
		want error
	}{
		{"insert", core.ErrInvalidQuery},                  // missing relation
		{"insert Nope 1 2", core.ErrUnknownRelation},      // unknown relation
		{"insert O mouse", core.ErrInvalidQuery},          // arity mismatch
		{"insert O mouse notanint", core.ErrInvalidQuery}, // bad int literal
		{"modify O", core.ErrInvalidQuery},                // missing -> separator
		{"delete Nope 1", core.ErrUnknownRelation},        // unknown relation
		{"explain", core.ErrInvalidQuery},                 // missing args
		{"explain Nope 1", core.ErrUnknownRelation},       // unknown relation
		{"resolve", core.ErrInvalidQuery},                 // missing txn id
		{"status", core.ErrInvalidQuery},                  // missing txn id
		{"query", core.ErrInvalidQuery},                   // empty query
		{"query q(x) :- 12Bad(", core.ErrInvalidQuery},    // parse error
		{"dump Nope", core.ErrUnknownRelation},            // unknown relation
	}
	for _, c := range cases {
		err := alaska.Exec(c.line)
		if err == nil {
			t.Errorf("Exec(%q): expected error, got nil", c.line)
			continue
		}
		if !errors.Is(err, c.want) {
			t.Errorf("Exec(%q) = %v; errors.Is(err, %v) is false", c.line, err, c.want)
		}
	}
}
