package repl

import (
	"strings"
	"testing"

	"orchestra/internal/config"
	"orchestra/internal/core"
	"orchestra/internal/p2p"
)

// TestConfigNodesOverTCP drives the exact deployment shape of
// `orchestra node -config examples/fig2.conf -store ADDR`: a config-built
// system, REPL-driven peers, and a real TCP store replica between them.
func TestConfigNodesOverTCP(t *testing.T) {
	conf := `
peer alaska {
    relation O(org string, oid int) key(oid)
    relation P(prot string, pid int) key(pid)
    relation S(oid int, pid int, seq string) key(oid, pid)
}
peer crete {
    relation OPS(org string, prot string, seq string) key(org, prot)
}
mapping M_AC = crete.OPS(org, prot, seq) :-
    alaska.O(org, oid), alaska.P(prot, pid), alaska.S(oid, pid, seq).
`
	cfg, err := config.Parse(strings.NewReader(conf))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := cfg.System()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := p2p.NewServer(p2p.NewMemoryStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	mkNode := func(name string) (*REPL, *strings.Builder) {
		peer, err := core.NewPeer(name, sys, p2p.NewClient(srv.Addr()), cfg.Policy(name))
		if err != nil {
			t.Fatal(err)
		}
		out := &strings.Builder{}
		return New(peer, out), out
	}
	alaska, _ := mkNode("alaska")
	crete, outC := mkNode("crete")

	if err := alaska.Run(strings.NewReader(`
begin
insert O worm 4
insert P dmd 40
insert S 4 40 CAGT
commit
publish
`)); err != nil {
		t.Fatal(err)
	}
	if err := crete.Run(strings.NewReader(`
reconcile
dump OPS
explain OPS worm dmd CAGT
`)); err != nil {
		t.Fatal(err)
	}
	out := outC.String()
	for _, frag := range []string{
		"accepted [alaska:1]",
		"(worm, dmd, CAGT)",
		"mappings=[M_AC]",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("crete transcript missing %q:\n%s", frag, out)
		}
	}
}
