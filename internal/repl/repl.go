// Package repl implements the interactive shell of cmd/orchestra's node
// mode: a peer's local edit / publish / reconcile / resolve loop, the
// textual counterpart of the paper's Java GUI demonstration.
package repl

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"orchestra/internal/core"
	"orchestra/internal/datalog"
	"orchestra/internal/parser"
	"orchestra/internal/schema"
	"orchestra/internal/updates"
)

// REPL drives one peer from a command stream.
type REPL struct {
	peer *core.Peer
	out  io.Writer
	// txn is the open multi-update transaction, if any.
	txn *core.Txn
}

// New creates a REPL for the peer writing results to out.
func New(peer *core.Peer, out io.Writer) *REPL {
	return &REPL{peer: peer, out: out}
}

// Run processes commands until EOF or "quit". Errors in individual
// commands are reported to the output and do not stop the loop.
func (r *REPL) Run(in io.Reader) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" || line == "exit" {
			return nil
		}
		if err := r.Exec(line); err != nil {
			fmt.Fprintf(r.out, "error: %v\n", err)
		}
	}
	return sc.Err()
}

// Exec runs a single command.
func (r *REPL) Exec(line string) error {
	fields := strings.Fields(line)
	cmd := fields[0]
	args := fields[1:]
	switch cmd {
	case "help":
		r.help()
		return nil
	case "begin":
		if r.txn != nil {
			return fmt.Errorf("transaction already open")
		}
		r.txn = r.peer.NewTransaction()
		fmt.Fprintln(r.out, "transaction started")
		return nil
	case "commit":
		if r.txn == nil {
			return fmt.Errorf("no open transaction")
		}
		txn, err := r.txn.Commit()
		r.txn = nil
		if err != nil {
			return err
		}
		fmt.Fprintf(r.out, "committed %s\n", txn.ID)
		return nil
	case "abort":
		if r.txn == nil {
			return fmt.Errorf("no open transaction")
		}
		r.txn.Abort()
		r.txn = nil
		fmt.Fprintln(r.out, "aborted")
		return nil
	case "insert", "delete":
		return r.write(cmd, args)
	case "modify":
		return r.modify(args)
	case "publish":
		epoch, err := r.peer.Publish(context.Background())
		if err != nil {
			return err
		}
		fmt.Fprintf(r.out, "published; store epoch %d\n", epoch)
		return nil
	case "reconcile":
		rep, err := r.peer.Reconcile(context.Background())
		if err != nil {
			return err
		}
		fmt.Fprintf(r.out, "epoch %d: fetched %d, accepted %v, rejected %v, deferred %v, pending %v\n",
			rep.Epoch, rep.Fetched, rep.Accepted, rep.Rejected, rep.Deferred, rep.Pending)
		return nil
	case "resolve":
		if len(args) != 1 {
			return usageErr("usage: resolve PEER:SEQ")
		}
		id, err := updates.ParseTxnID(args[0])
		if err != nil {
			return err
		}
		rep, err := r.peer.Resolve(context.Background(), id)
		if err != nil {
			return err
		}
		fmt.Fprintf(r.out, "resolved: accepted %v, rejected %v\n", rep.Accepted, rep.Rejected)
		return nil
	case "status":
		if len(args) != 1 {
			return usageErr("usage: status PEER:SEQ")
		}
		id, err := updates.ParseTxnID(args[0])
		if err != nil {
			return err
		}
		fmt.Fprintf(r.out, "%s: %s\n", id, r.peer.Status(id))
		return nil
	case "query":
		return r.query(strings.TrimSpace(strings.TrimPrefix(line, "query")))
	case "explain":
		return r.explain(args)
	case "dump":
		return r.dump(args)
	case "epoch":
		fmt.Fprintf(r.out, "%d\n", r.peer.Epoch())
		return nil
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
}

func (r *REPL) help() {
	fmt.Fprint(r.out, `commands:
  begin | commit | abort           group updates into one transaction
  insert REL v1 v2 ...             insert a tuple (auto-commits if no begin)
  delete REL v1 v2 ...             delete a tuple
  modify REL v1 ... -> w1 ...      replace a tuple
  publish                          archive committed transactions
  reconcile                        fetch, translate, and apply updates
  resolve PEER:SEQ                 settle a deferred conflict
  status PEER:SEQ                  show a transaction's local status
  query q(x,...) :- Body. [rules]  run a goal-directed query; extra rules
                                   define (possibly recursive) views
  explain REL v1 v2 ...            show a tuple's provenance
  dump [REL]                       print the local instance
  epoch                            show the last reconciled epoch
  quit
`)
}

// relation resolves a local relation name. The error wraps the
// core.ErrUnknownRelation sentinel so errors.Is dispatch works for embedders
// driving the REPL programmatically (the public facade maps the core
// sentinel onto its own).
func (r *REPL) relation(name string) (*schema.Relation, error) {
	rel := r.peer.Instance().Schema().Relation(name)
	if rel == nil {
		return nil, fmt.Errorf("%w: no relation %q at this peer", core.ErrUnknownRelation, name)
	}
	return rel, nil
}

// usageErr reports a malformed command line, wrapped with the
// core.ErrInvalidQuery sentinel for errors.Is dispatch.
func usageErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", core.ErrInvalidQuery, fmt.Sprintf(format, args...))
}

// parseTuple converts command arguments to a tuple per the relation types.
// Arity and value-parse errors wrap core.ErrInvalidQuery.
func parseTuple(rel *schema.Relation, args []string) (schema.Tuple, error) {
	if len(args) != rel.Arity() {
		return nil, usageErr("%s takes %d values, got %d", rel.Name, rel.Arity(), len(args))
	}
	tu := make(schema.Tuple, len(args))
	for i, a := range args {
		switch rel.Attrs[i].Type {
		case schema.KindString:
			tu[i] = schema.String(a)
		case schema.KindInt:
			n, err := strconv.ParseInt(a, 10, 64)
			if err != nil {
				return nil, usageErr("column %s: bad int %q", rel.Attrs[i].Name, a)
			}
			tu[i] = schema.Int(n)
		case schema.KindFloat:
			f, err := strconv.ParseFloat(a, 64)
			if err != nil {
				return nil, usageErr("column %s: bad float %q", rel.Attrs[i].Name, a)
			}
			tu[i] = schema.Float(f)
		case schema.KindBool:
			b, err := strconv.ParseBool(a)
			if err != nil {
				return nil, usageErr("column %s: bad bool %q", rel.Attrs[i].Name, a)
			}
			tu[i] = schema.Bool(b)
		}
	}
	return tu, nil
}

// write handles insert and delete.
func (r *REPL) write(cmd string, args []string) error {
	if len(args) < 1 {
		return usageErr("usage: %s REL v1 v2 ...", cmd)
	}
	rel, err := r.relation(args[0])
	if err != nil {
		return err
	}
	tu, err := parseTuple(rel, args[1:])
	if err != nil {
		return err
	}
	tx := r.txn
	auto := tx == nil
	if auto {
		tx = r.peer.NewTransaction()
	}
	if cmd == "insert" {
		tx.Insert(rel.Name, tu)
	} else {
		tx.Delete(rel.Name, tu)
	}
	if auto {
		txn, err := tx.Commit()
		if err != nil {
			return err
		}
		fmt.Fprintf(r.out, "committed %s\n", txn.ID)
	} else {
		fmt.Fprintln(r.out, "queued")
	}
	return nil
}

// modify handles: modify REL old... -> new...
func (r *REPL) modify(args []string) error {
	if len(args) < 1 {
		return usageErr("usage: modify REL v1 ... -> w1 ...")
	}
	rel, err := r.relation(args[0])
	if err != nil {
		return err
	}
	sep := -1
	for i, a := range args {
		if a == "->" {
			sep = i
		}
	}
	if sep < 0 {
		return usageErr("usage: modify REL v1 ... -> w1 ...")
	}
	old, err := parseTuple(rel, args[1:sep])
	if err != nil {
		return err
	}
	new_, err := parseTuple(rel, args[sep+1:])
	if err != nil {
		return err
	}
	tx := r.txn
	auto := tx == nil
	if auto {
		tx = r.peer.NewTransaction()
	}
	tx.Modify(rel.Name, old, new_)
	if auto {
		txn, err := tx.Commit()
		if err != nil {
			return err
		}
		fmt.Fprintf(r.out, "committed %s\n", txn.ID)
	} else {
		fmt.Fprintln(r.out, "queued")
	}
	return nil
}

// query parses and runs a query through the goal-directed engine. The
// first rule is the goal: its head lists the output terms (variables, or
// constants for bound/boolean goals) and its body the conditions. Any
// further rules on the same line define views the goal may reference —
// including recursively:
//
//	query reach(y) :- linked(1, y). linked(a,b) :- S(a,b,s). linked(a,c) :- linked(a,b), S(b,c,s).
func (r *REPL) query(text string) error {
	if !strings.HasSuffix(strings.TrimSpace(text), ".") {
		text += "."
	}
	rules, err := parser.ParseRules(text)
	if err != nil {
		return fmt.Errorf("%w: %v", core.ErrInvalidQuery, err)
	}
	if len(rules) == 0 {
		return usageErr("usage: query q(x, ...) :- Body. [view rules...]")
	}
	goalTerms := make([]datalog.Term, len(rules[0].Head.Terms))
	for i, ht := range rules[0].Head.Terms {
		if ht.Skolem != nil {
			return usageErr("query head cannot use skolem terms")
		}
		goalTerms[i] = ht.Term
	}
	ans, err := r.peer.QueryGoal(context.Background(), core.GoalQuery{
		Goal:  datalog.NewAtom(rules[0].Head.Pred, goalTerms...),
		Rules: rules,
	})
	if err != nil {
		return err
	}
	for _, a := range ans {
		fmt.Fprintln(r.out, a.Tuple.String())
	}
	fmt.Fprintf(r.out, "%d answer(s)\n", len(ans))
	return nil
}

// explain prints a tuple's provenance breakdown.
func (r *REPL) explain(args []string) error {
	if len(args) < 1 {
		return usageErr("usage: explain REL v1 v2 ...")
	}
	rel, err := r.relation(args[0])
	if err != nil {
		return err
	}
	tu, err := parseTuple(rel, args[1:])
	if err != nil {
		return err
	}
	prov, supports, ok := r.peer.Explain(rel.Name, tu)
	if !ok {
		return fmt.Errorf("%s%s not in local instance", rel.Name, tu)
	}
	fmt.Fprintf(r.out, "provenance: %s\n", prov)
	for i, s := range supports {
		fmt.Fprintf(r.out, "  derivation %d: txns=%v mappings=%v\n", i+1, s.Txns, s.Mappings)
	}
	return nil
}

// dump prints the local instance (optionally one relation).
func (r *REPL) dump(args []string) error {
	rels := r.peer.Instance().Schema().Relations()
	if len(args) == 1 {
		rel, err := r.relation(args[0])
		if err != nil {
			return err
		}
		rels = []*schema.Relation{rel}
	}
	for _, rel := range rels {
		tbl := r.peer.Instance().Table(rel.Name)
		fmt.Fprintf(r.out, "%s (%d tuples)\n", rel, tbl.Len())
		for _, row := range tbl.Rows() {
			fmt.Fprintf(r.out, "  %s\n", row.Tuple)
		}
	}
	return nil
}
