package csvio

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"orchestra/internal/provenance"
	"orchestra/internal/schema"
	"orchestra/internal/storage"
	"orchestra/internal/workload"
)

func TestReadRelationBasic(t *testing.T) {
	rel := workload.Sigma1().Relation("S")
	in := "oid,pid,seq\n1,10,ACGT\n2,20,TTTT\n"
	tuples, err := ReadRelation(strings.NewReader(in), rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 2 {
		t.Fatalf("tuples = %v", tuples)
	}
	if !tuples[0].Equal(workload.STuple(1, 10, "ACGT")) {
		t.Errorf("tuple 0 = %v", tuples[0])
	}
	// Headerless input works too.
	tuples, err = ReadRelation(strings.NewReader("3,30,GGGG\n"), rel)
	if err != nil || len(tuples) != 1 {
		t.Fatalf("headerless: %v %v", tuples, err)
	}
}

func TestReadRelationErrors(t *testing.T) {
	rel := workload.Sigma1().Relation("S")
	cases := []string{
		"1,10\n",          // wrong arity
		"x,10,ACGT\n",     // bad int
		"1,10,ACGT,zzz\n", // too many fields
	}
	for _, c := range cases {
		if _, err := ReadRelation(strings.NewReader(c), rel); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestAllKinds(t *testing.T) {
	rel := schema.MustRelation("K", []schema.Attribute{
		{Name: "s", Type: schema.KindString},
		{Name: "i", Type: schema.KindInt},
		{Name: "f", Type: schema.KindFloat},
		{Name: "b", Type: schema.KindBool},
	})
	in := "hello,42,2.5,true\n"
	tuples, err := ReadRelation(strings.NewReader(in), rel)
	if err != nil || len(tuples) != 1 {
		t.Fatal(err)
	}
	want := schema.NewTuple(schema.String("hello"), schema.Int(42), schema.Float(2.5), schema.Bool(true))
	if !tuples[0].Equal(want) {
		t.Errorf("tuple = %v", tuples[0])
	}
	for _, bad := range []string{"h,x,2.5,true\n", "h,1,x,true\n", "h,1,2.5,x\n"} {
		if _, err := ReadRelation(strings.NewReader(bad), rel); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	rel := workload.Sigma1().Relation("S")
	tbl := storage.NewTable(rel)
	rows := []schema.Tuple{
		workload.STuple(1, 10, "AC,GT"), // comma inside a field
		workload.STuple(2, 20, "line\nbreak"),
		schema.NewTuple(schema.LabeledNull("sk_M_CA_oid(s:fly)"), schema.Int(3), schema.String("TT")),
	}
	for _, r := range rows {
		if err := tbl.Insert(r, provenance.One()); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WriteRelation(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRelation(&buf, rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("round trip lost rows: %v", got)
	}
	back := storage.NewTable(rel)
	for _, g := range got {
		if err := back.Insert(g, provenance.One()); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range rows {
		if !back.Contains(r) {
			t.Errorf("missing %v after round trip", r)
		}
	}
}

func TestWriteInstance(t *testing.T) {
	inst := storage.NewInstance(workload.Sigma1())
	if err := inst.Insert("O", workload.OTuple("mouse", 1), provenance.One()); err != nil {
		t.Fatal(err)
	}
	if err := inst.Insert("S", workload.STuple(1, 10, "ACGT"), provenance.One()); err != nil {
		t.Fatal(err)
	}
	bufs := map[string]*bytes.Buffer{}
	err := WriteInstance(inst, func(rel string) (io.Writer, error) {
		b := &bytes.Buffer{}
		bufs[rel] = b
		return b, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bufs) != 3 { // O, P, S — P is empty but still written with header
		t.Fatalf("files = %v", bufs)
	}
	if !strings.Contains(bufs["O"].String(), "mouse") {
		t.Errorf("O file = %q", bufs["O"].String())
	}
	if !strings.Contains(bufs["P"].String(), "prot,pid") {
		t.Errorf("P file should contain only a header, got %q", bufs["P"].String())
	}
	// Round trip the exported O file into a fresh peer-style load.
	got, err := ReadRelation(bufs["O"], workload.Sigma1().Relation("O"))
	if err != nil || len(got) != 1 || !got[0].Equal(workload.OTuple("mouse", 1)) {
		t.Errorf("export/import O = %v, %v", got, err)
	}
}
