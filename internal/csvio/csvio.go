// Package csvio bridges the CDSS and the flat-file world the paper's
// introduction describes ("scientific data sharing often consists of large
// databases placed on FTP sites"): it bulk-loads CSV dumps into a peer as
// ordinary transactions and exports instances back to CSV, so a
// confederation can be bootstrapped from existing dumps.
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"orchestra/internal/schema"
	"orchestra/internal/storage"
)

// ReadRelation parses CSV rows into tuples of the given relation. The file
// must have one column per attribute, in declared order; a header row equal
// to the attribute names is skipped if present. Labeled nulls are written
// and read as ⊥-prefixed Skolem terms.
func ReadRelation(r io.Reader, rel *schema.Relation) ([]schema.Tuple, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = rel.Arity()
	var out []schema.Tuple
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csvio: %s: %w", rel.Name, err)
		}
		line++
		if line == 1 && isHeader(rec, rel) {
			continue
		}
		tu := make(schema.Tuple, len(rec))
		for i, field := range rec {
			v, err := parseField(field, rel.Attrs[i].Type)
			if err != nil {
				return nil, fmt.Errorf("csvio: %s line %d column %s: %w", rel.Name, line, rel.Attrs[i].Name, err)
			}
			tu[i] = v
		}
		if err := rel.Validate(tu); err != nil {
			return nil, fmt.Errorf("csvio: %s line %d: %w", rel.Name, line, err)
		}
		out = append(out, tu)
	}
	return out, nil
}

func isHeader(rec []string, rel *schema.Relation) bool {
	for i, f := range rec {
		if f != rel.Attrs[i].Name {
			return false
		}
	}
	return true
}

func parseField(field string, kind schema.Kind) (schema.Value, error) {
	if len(field) > len("⊥") && field[:len("⊥")] == "⊥" {
		return schema.LabeledNull(field[len("⊥"):]), nil
	}
	switch kind {
	case schema.KindString:
		return schema.String(field), nil
	case schema.KindInt:
		i, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return schema.Value{}, fmt.Errorf("bad int %q", field)
		}
		return schema.Int(i), nil
	case schema.KindFloat:
		f, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return schema.Value{}, fmt.Errorf("bad float %q", field)
		}
		return schema.Float(f), nil
	case schema.KindBool:
		b, err := strconv.ParseBool(field)
		if err != nil {
			return schema.Value{}, fmt.Errorf("bad bool %q", field)
		}
		return schema.Bool(b), nil
	default:
		return schema.Value{}, fmt.Errorf("unsupported kind %s", kind)
	}
}

// WriteRelation writes a table's tuples as CSV with a header row, in
// deterministic order.
func WriteRelation(w io.Writer, tbl *storage.Table) error {
	cw := csv.NewWriter(w)
	rel := tbl.Relation()
	header := make([]string, rel.Arity())
	for i, a := range rel.Attrs {
		header[i] = a.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range tbl.Rows() {
		rec := make([]string, len(row.Tuple))
		for i, v := range row.Tuple {
			rec[i] = formatField(v)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatField(v schema.Value) string {
	if v.IsLabeledNull() {
		return "⊥" + v.Str()
	}
	return v.String()
}

// WriteInstance writes every relation of an instance through emit, which
// receives the relation name and must return the destination writer (e.g.
// one file per relation).
func WriteInstance(inst *storage.Instance, emit func(rel string) (io.Writer, error)) error {
	for _, rel := range inst.Schema().Relations() {
		w, err := emit(rel.Name)
		if err != nil {
			return err
		}
		if err := WriteRelation(w, inst.Table(rel.Name)); err != nil {
			return err
		}
	}
	return nil
}
