package recon

import (
	"errors"
	"fmt"
	"sort"

	"orchestra/internal/schema"
	"orchestra/internal/updates"
)

// Sentinel errors wrapped by the errors this package constructs, so that
// errors.Is works through the full chain up to the public orchestra facade.
var (
	// ErrAlreadyReconciled reports a candidate fed to Reconcile (or
	// AcceptLocal) after a status was already assigned to it.
	ErrAlreadyReconciled = errors.New("recon: transaction already reconciled")
	// ErrNotDeferred reports a Resolve call whose winner is not awaiting
	// manual conflict resolution.
	ErrNotDeferred = errors.New("recon: transaction is not deferred")
)

// Status is the local disposition of a candidate transaction.
type Status uint8

const (
	// StatusUnknown: the transaction has never been seen.
	StatusUnknown Status = iota
	// StatusPending: seen but not applied — typically distrusted
	// (priority 0) or missing antecedents. Pending transactions remain
	// eligible as antecedents of trusted transactions.
	StatusPending
	// StatusAccepted: applied to the local instance.
	StatusAccepted
	// StatusRejected: will never be applied; dependents are rejected too.
	StatusRejected
	// StatusDeferred: in conflict with a same-priority transaction (or
	// dependent on a deferred one); awaiting manual resolution.
	StatusDeferred
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusAccepted:
		return "accepted"
	case StatusRejected:
		return "rejected"
	case StatusDeferred:
		return "deferred"
	default:
		return "unknown"
	}
}

// writeVal is the net effect of some transaction on one (relation, key).
type writeVal struct {
	writer updates.TxnID
	del    bool
	tupKey string
}

func (w writeVal) sameValue(o writeVal) bool {
	return w.del == o.del && (w.del || w.tupKey == o.tupKey)
}

// State is a peer's persistent reconciliation state across update-exchange
// rounds: every candidate seen, its status and priority, and the writes of
// accepted transactions.
type State struct {
	keyOf          func(rel string, tu schema.Tuple) schema.Tuple
	graph          *updates.Graph
	status         map[updates.TxnID]Status
	prio           map[updates.TxnID]int
	acceptedWrites map[string]writeVal
	appliedOrder   []updates.TxnID
}

// NewState creates reconciliation state. keyOf must project a tuple of the
// named local relation onto its primary key.
func NewState(keyOf func(rel string, tu schema.Tuple) schema.Tuple) *State {
	return &State{
		keyOf:          keyOf,
		graph:          updates.NewGraph(),
		status:         map[updates.TxnID]Status{},
		prio:           map[updates.TxnID]int{},
		acceptedWrites: map[string]writeVal{},
	}
}

// Status returns the disposition of a transaction.
func (s *State) Status(id updates.TxnID) Status { return s.status[id] }

// Graph exposes the accumulated candidate dependency graph.
func (s *State) Graph() *updates.Graph { return s.graph }

// AppliedOrder returns all accepted transactions in application order.
func (s *State) AppliedOrder() []updates.TxnID {
	return append([]updates.TxnID(nil), s.appliedOrder...)
}

// Outcome reports the effects of one Reconcile or Resolve call.
type Outcome struct {
	// Accepted lists newly accepted transactions in application order;
	// the caller applies their updates to the local instance in this
	// order.
	Accepted []*updates.Transaction
	// Rejected, Deferred and Pending list the ids newly assigned those
	// statuses this round.
	Rejected []updates.TxnID
	Deferred []updates.TxnID
	Pending  []updates.TxnID
}

// Reconcile feeds a batch of candidate transactions (translated into the
// local schema) through the trust policy and the greedy consistent-set
// algorithm. It may also change the status of transactions from earlier
// rounds (e.g. a pending antecedent being accepted alongside a new trusted
// dependent).
func (s *State) Reconcile(policy *Policy, candidates []*updates.Transaction) (*Outcome, error) {
	for _, c := range candidates {
		if st := s.status[c.ID]; st != StatusUnknown {
			return nil, fmt.Errorf("%w: %s (status %s)", ErrAlreadyReconciled, c.ID, st)
		}
		if err := s.graph.Add(c); err != nil {
			return nil, err
		}
		s.status[c.ID] = StatusPending
		s.prio[c.ID] = policy.PriorityOf(c)
	}
	return s.process()
}

// AcceptLocal force-accepts a transaction without consulting any policy —
// used for the peer's own local transactions, which are always applied to
// the local instance at commit time. Their writes still participate in
// conflict detection against incoming candidates.
func (s *State) AcceptLocal(t *updates.Transaction) error {
	if st := s.status[t.ID]; st != StatusUnknown {
		return fmt.Errorf("%w: %s (status %s)", ErrAlreadyReconciled, t.ID, st)
	}
	if err := s.graph.Add(t); err != nil {
		return err
	}
	s.status[t.ID] = StatusAccepted
	s.appliedOrder = append(s.appliedOrder, t.ID)
	for k, w := range s.netWrites([]*updates.Transaction{t}) {
		s.acceptedWrites[k] = w
	}
	return nil
}

// netWrites computes the final (relation, key) -> value effect of applying
// the given transactions in order.
func (s *State) netWrites(txns []*updates.Transaction) map[string]writeVal {
	out := map[string]writeVal{}
	for _, t := range txns {
		for _, u := range t.Updates {
			k := u.Rel + "/" + s.keyOf(u.Rel, u.Target()).Key()
			w := writeVal{writer: t.ID, del: u.Op == updates.OpDelete}
			if !w.del {
				w.tupKey = u.New.Key()
			}
			out[k] = w
			if u.Op == updates.OpModify && u.Old != nil {
				// A modify may move the tuple to a new key; the old key is
				// written (vacated) too.
				ok := u.Rel + "/" + s.keyOf(u.Rel, u.Old).Key()
				if ok != k {
					out[ok] = writeVal{writer: t.ID, del: true}
				}
			}
		}
	}
	return out
}

// group is a candidate plus the pending antecedents that must be co-applied.
type group struct {
	cand    *updates.Transaction
	members []*updates.Transaction // in application order, candidate last
	closure map[updates.TxnID]bool // full antecedent closure incl. members
	// writes is the group's net effect (used for same-level conflict
	// detection and for recording accepted state).
	writes map[string]writeVal
	// memberWrites lists each member's own writes with that member's own
	// antecedent closure, for the pairwise conflict test against accepted
	// transactions (Taylor & Ives define conflicts pairwise, so a
	// member's conflicting intermediate write is a conflict even when a
	// later member of the same group overwrites it).
	memberWrites []memberWrite
	prio         int
}

// memberWrite is one member's writes plus its personal closure.
type memberWrite struct {
	id      updates.TxnID
	writes  map[string]writeVal
	closure map[updates.TxnID]bool
}

// buildGroup assembles the applicable transaction group for cand, or
// reports why it cannot be applied.
func (s *State) buildGroup(cand *updates.Transaction) (g *group, blocked Status, err error) {
	closure, missing := s.graph.AntecedentClosure(cand.ID)
	if len(missing) > 0 {
		return nil, StatusPending, nil // incomplete antecedents: wait
	}
	cl := map[updates.TxnID]bool{cand.ID: true}
	var pendingMembers []*updates.Transaction
	for _, a := range closure {
		cl[a] = true
		switch s.status[a] {
		case StatusRejected:
			return nil, StatusRejected, nil
		case StatusDeferred:
			return nil, StatusDeferred, nil
		case StatusAccepted:
			// already applied; not re-applied
		default:
			t, ok := s.graph.Get(a)
			if !ok {
				return nil, StatusPending, nil
			}
			pendingMembers = append(pendingMembers, t)
		}
	}
	// Application order: antecedents before dependents. Sort pending
	// members topologically using a local pass over closure depth.
	ordered, err := topoWithin(append(pendingMembers, cand), s.graph)
	if err != nil {
		return nil, StatusUnknown, err
	}
	g = &group{
		cand:    cand,
		members: ordered,
		closure: cl,
		prio:    s.prio[cand.ID],
	}
	g.writes = s.netWrites(g.members)
	for _, m := range ordered {
		mcl := map[updates.TxnID]bool{m.ID: true}
		mClosure, _ := s.graph.AntecedentClosure(m.ID)
		for _, a := range mClosure {
			mcl[a] = true
		}
		g.memberWrites = append(g.memberWrites, memberWrite{
			id:      m.ID,
			writes:  s.netWrites([]*updates.Transaction{m}),
			closure: mcl,
		})
	}
	return g, StatusUnknown, nil
}

// topoWithin orders the given transactions so that dependencies come first;
// dependencies outside the set are ignored.
func topoWithin(txns []*updates.Transaction, g *updates.Graph) ([]*updates.Transaction, error) {
	in := map[updates.TxnID]*updates.Transaction{}
	for _, t := range txns {
		in[t.ID] = t
	}
	indeg := map[updates.TxnID]int{}
	for _, t := range txns {
		for _, d := range t.Deps {
			if _, ok := in[d]; ok {
				indeg[t.ID]++
			}
		}
	}
	var ready []updates.TxnID
	for _, t := range txns {
		if indeg[t.ID] == 0 {
			ready = append(ready, t.ID)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i].Less(ready[j]) })
	var out []*updates.Transaction
	for len(ready) > 0 {
		cur := ready[0]
		ready = ready[1:]
		out = append(out, in[cur])
		var next []updates.TxnID
		for _, dep := range g.Dependents(cur) {
			if _, ok := in[dep]; !ok {
				continue
			}
			found := false
			for _, d := range in[dep].Deps {
				if d == cur {
					found = true
				}
			}
			if !found {
				continue
			}
			indeg[dep]--
			if indeg[dep] == 0 {
				next = append(next, dep)
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i].Less(next[j]) })
		ready = append(ready, next...)
	}
	if len(out) != len(txns) {
		return nil, fmt.Errorf("recon: cyclic dependencies within transaction group")
	}
	return out, nil
}

// conflictsWithAccepted reports whether any member's writes clash with the
// accepted state: same key, different value, and that member does not
// depend on the accepted writer (a dependent overwrite is legitimate).
// The test is per member, not on the group's net writes: two independent
// transactions with incompatible writes conflict even if a later group
// member would overwrite the key again.
func (s *State) conflictsWithAccepted(g *group) bool {
	for _, mw := range g.memberWrites {
		if s.status[mw.id] == StatusAccepted {
			// Already applied (e.g. as a shared antecedent accepted
			// earlier in this pass): its writes are part of the accepted
			// state, not a pending application.
			continue
		}
		for k, w := range mw.writes {
			aw, ok := s.acceptedWrites[k]
			if !ok {
				continue
			}
			if w.sameValue(aw) {
				continue
			}
			if mw.closure[aw.writer] {
				continue
			}
			return true
		}
	}
	return false
}

// deferredConflict reports whether the group's writes clash with any write
// in the deferred-writes index.
func deferredConflict(g *group, deferredWrites map[string][]writeVal) bool {
	for k, gw := range g.writes {
		for _, w := range deferredWrites[k] {
			if !gw.sameValue(w) {
				return true
			}
		}
	}
	return false
}

// accept applies a group: marks members accepted and records their writes.
func (s *State) accept(g *group, out *Outcome) {
	for _, m := range g.members {
		if s.status[m.ID] == StatusAccepted {
			continue
		}
		s.status[m.ID] = StatusAccepted
		s.appliedOrder = append(s.appliedOrder, m.ID)
		out.Accepted = append(out.Accepted, m)
	}
	for k, w := range g.writes {
		s.acceptedWrites[k] = w
	}
}

// process runs the greedy pass over all pending transactions until no more
// status changes occur.
func (s *State) process() (*Outcome, error) {
	out := &Outcome{}
	for {
		changed, err := s.pass(out)
		if err != nil {
			return nil, err
		}
		if !changed {
			break
		}
	}
	// Report transactions still pending (seen but unapplied) this round.
	for _, id := range s.graph.IDs() {
		if s.status[id] == StatusPending {
			out.Pending = append(out.Pending, id)
		}
	}
	return out, nil
}

// pass performs one priority-descending sweep; it reports whether any
// status changed.
func (s *State) pass(out *Outcome) (bool, error) {
	// Gather pending, trusted candidates by priority level, and index the
	// writes of currently-deferred transactions once for the whole sweep.
	byPrio := map[int][]updates.TxnID{}
	var prios []int
	deferredWrites := map[string][]writeVal{}
	for _, id := range s.graph.IDs() {
		if s.status[id] == StatusDeferred {
			t, _ := s.graph.Get(id)
			for k, w := range s.netWrites([]*updates.Transaction{t}) {
				deferredWrites[k] = append(deferredWrites[k], w)
			}
			continue
		}
		if s.status[id] != StatusPending {
			continue
		}
		p := s.prio[id]
		if p <= Distrusted {
			continue
		}
		if _, ok := byPrio[p]; !ok {
			prios = append(prios, p)
		}
		byPrio[p] = append(byPrio[p], id)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(prios)))
	deferWithWrites := func(id updates.TxnID) {
		s.defer1(id, out)
		t, _ := s.graph.Get(id)
		for k, w := range s.netWrites([]*updates.Transaction{t}) {
			deferredWrites[k] = append(deferredWrites[k], w)
		}
	}
	changed := false
	for _, p := range prios {
		var eligible []*group
		for _, id := range byPrio[p] {
			if s.status[id] != StatusPending {
				continue // may have been co-accepted by an earlier group
			}
			cand, _ := s.graph.Get(id)
			g, blocked, err := s.buildGroup(cand)
			if err != nil {
				return false, err
			}
			if g == nil {
				switch blocked {
				case StatusRejected:
					s.reject(id, out)
					changed = true
				case StatusDeferred:
					deferWithWrites(id)
					changed = true
				}
				continue
			}
			if s.conflictsWithAccepted(g) {
				s.reject(id, out)
				changed = true
				continue
			}
			if deferredConflict(g, deferredWrites) {
				deferWithWrites(id)
				changed = true
				continue
			}
			eligible = append(eligible, g)
		}
		// Same-priority conflict detection among eligible groups, indexed
		// by written key so disjoint groups never meet.
		conflicted := map[updates.TxnID]bool{}
		byKey := map[string][]*group{}
		for _, g := range eligible {
			for k := range g.writes {
				byKey[k] = append(byKey[k], g)
			}
		}
		for k, gs := range byKey {
			for i := 0; i < len(gs); i++ {
				for j := i + 1; j < len(gs); j++ {
					a, b := gs[i], gs[j]
					if a.closure[b.cand.ID] || b.closure[a.cand.ID] {
						continue // dependency, not a conflict
					}
					if !a.writes[k].sameValue(b.writes[k]) {
						conflicted[a.cand.ID] = true
						conflicted[b.cand.ID] = true
					}
				}
			}
		}
		for _, g := range eligible {
			if conflicted[g.cand.ID] {
				deferWithWrites(g.cand.ID)
				changed = true
			}
		}
		for _, g := range eligible {
			if conflicted[g.cand.ID] {
				continue
			}
			if s.status[g.cand.ID] != StatusPending {
				continue // accepted earlier in this loop as an antecedent
			}
			// Re-validate against writes accepted earlier in this level.
			if s.conflictsWithAccepted(g) {
				s.reject(g.cand.ID, out)
				changed = true
				continue
			}
			s.accept(g, out)
			changed = true
		}
	}
	return changed, nil
}

// reject marks a transaction rejected and cascades to its dependents.
func (s *State) reject(id updates.TxnID, out *Outcome) {
	if s.status[id] == StatusRejected {
		return
	}
	s.status[id] = StatusRejected
	out.Rejected = append(out.Rejected, id)
	for _, dep := range s.graph.DependentClosure(id) {
		if st := s.status[dep]; st == StatusPending || st == StatusDeferred {
			s.status[dep] = StatusRejected
			out.Rejected = append(out.Rejected, dep)
		}
	}
}

// defer1 marks a transaction deferred.
func (s *State) defer1(id updates.TxnID, out *Outcome) {
	if s.status[id] == StatusDeferred {
		return
	}
	s.status[id] = StatusDeferred
	out.Deferred = append(out.Deferred, id)
}

// Resolve settles a deferred conflict in favor of winner: deferred
// transactions whose writes clash with the winner's group are rejected
// (with their dependents), then the winner and all remaining deferred
// transactions are re-evaluated — transactions that depended on the winner
// are accepted automatically (demo scenario 4).
func (s *State) Resolve(winner updates.TxnID) (*Outcome, error) {
	if s.status[winner] != StatusDeferred {
		return nil, fmt.Errorf("%w: %s (status %s)", ErrNotDeferred, winner, s.status[winner])
	}
	out := &Outcome{}
	wt, _ := s.graph.Get(winner)
	wWrites := s.netWrites([]*updates.Transaction{wt})
	// Reject conflicting deferred losers. Deferred transactions that
	// *depend* on the winner are dependents, not competitors: their
	// overwrites of the winner's data are legitimate and they are
	// re-evaluated below.
	for _, id := range s.graph.IDs() {
		if id == winner || s.status[id] != StatusDeferred {
			continue
		}
		cl, _ := s.graph.AntecedentClosure(id)
		dependsOnWinner := false
		for _, a := range cl {
			if a == winner {
				dependsOnWinner = true
				break
			}
		}
		if dependsOnWinner {
			continue
		}
		t, _ := s.graph.Get(id)
		lw := s.netWrites([]*updates.Transaction{t})
		clash := false
		for k, w := range lw {
			if ww, ok := wWrites[k]; ok && !w.sameValue(ww) {
				clash = true
				break
			}
		}
		if clash {
			s.reject(id, out)
		}
	}
	// Re-open the winner and every surviving deferred transaction, then
	// re-run the greedy pass.
	s.status[winner] = StatusPending
	for _, id := range s.graph.IDs() {
		if s.status[id] == StatusDeferred {
			s.status[id] = StatusPending
		}
	}
	more, err := s.process()
	if err != nil {
		return nil, err
	}
	out.Accepted = append(out.Accepted, more.Accepted...)
	out.Rejected = append(out.Rejected, more.Rejected...)
	out.Deferred = append(out.Deferred, more.Deferred...)
	out.Pending = more.Pending
	if s.status[winner] != StatusAccepted {
		return nil, fmt.Errorf("recon: winner %s could not be applied after resolution (status %s)", winner, s.status[winner])
	}
	return out, nil
}
