// Package recon implements ORCHESTRA's reconciliation algorithm, following
// Taylor and Ives, "Reconciling while Tolerating Disagreement in
// Collaborative Data Sharing" (SIGMOD 2006) — the paper the demo cites for
// its reconciliation step ([11]).
//
// Reconciliation consumes candidate transactions (published transactions
// translated into the local schema by internal/exchange) and decides, per
// the local peer's trust policy, which to accept, reject, or defer:
//
//   - Trust conditions — predicates over the contents and provenance of
//     updates — assign numerical priorities to candidate transactions.
//   - A candidate is combined with the antecedent transactions it needs
//     into an applicable transaction group; a candidate whose antecedent
//     was rejected is rejected too.
//   - A greedy pass accepts the highest-priority mutually consistent set.
//     Same-priority conflicting transactions are deferred for the site
//     administrator, along with everything that depends on them.
//   - Resolve applies a manual decision: the chosen transaction (and
//     dependents that become applicable) are accepted; conflicting deferred
//     transactions and their dependents are rejected.
package recon

import (
	"orchestra/internal/provenance"
	"orchestra/internal/schema"
	"orchestra/internal/updates"
)

// Distrusted is the priority that marks an update (and hence a transaction)
// as not trusted: it is never applied on its own merits, only as the
// antecedent of a trusted transaction (demo scenario 3).
const Distrusted = 0

// Condition is one trust condition: if Matches accepts an update, the
// update is eligible for the condition's priority. Higher priority wins
// among matching conditions; transactions take the minimum priority over
// their updates (a transaction is as trusted as its least trusted update).
type Condition struct {
	Priority int
	Matches  func(origin string, u updates.Update) bool
}

// Policy is a peer's trust policy: an ordered list of conditions plus the
// default priority for updates no condition matches.
type Policy struct {
	Conditions []Condition
	Default    int
}

// TrustAll returns a policy that assigns every update the same priority.
func TrustAll(priority int) *Policy { return &Policy{Default: priority} }

// FromPeer matches updates from candidate transactions published by peer.
func FromPeer(peer string, priority int) Condition {
	return Condition{Priority: priority, Matches: func(origin string, u updates.Update) bool {
		return origin == peer
	}}
}

// OnRelation matches updates against a given local relation.
func OnRelation(rel string, priority int) Condition {
	return Condition{Priority: priority, Matches: func(origin string, u updates.Update) bool {
		return u.Rel == rel
	}}
}

// TupleWhere matches updates whose target tuple satisfies pred.
func TupleWhere(rel string, pred func(schema.Tuple) bool, priority int) Condition {
	return Condition{Priority: priority, Matches: func(origin string, u updates.Update) bool {
		return u.Rel == rel && pred(u.Target())
	}}
}

// ThroughMapping matches updates whose provenance passes through the given
// mapping (its token appears in the update's provenance polynomial). This
// is the provenance-based trust the CDSS model calls for: "a site will
// assign a value judgment to a modification based on where it originated or
// how it was assembled."
func ThroughMapping(mappingID string, priority int) Condition {
	return Condition{Priority: priority, Matches: func(origin string, u updates.Update) bool {
		for _, v := range u.Prov.Vars() {
			if string(v) == mappingID {
				return true
			}
		}
		return false
	}}
}

// DerivedFromPeer matches updates whose provenance mentions a token minted
// by the given peer — trusting data by its origin rather than by who
// forwarded it.
func DerivedFromPeer(peer string, priority int) Condition {
	return Condition{Priority: priority, Matches: func(origin string, u updates.Update) bool {
		for _, v := range u.Prov.Vars() {
			if id, ok := updates.TokenTxn(v); ok && id.Peer == peer {
				return true
			}
		}
		return false
	}}
}

// MinTrust matches updates whose provenance, evaluated under the trust
// semiring with the supplied per-token confidence assignment, reaches at
// least threshold. It demonstrates semiring evaluation as a trust policy.
func MinTrust(confidence func(provenance.Var) float64, threshold float64, priority int) Condition {
	return Condition{Priority: priority, Matches: func(origin string, u updates.Update) bool {
		got := provenance.Eval[float64](u.Prov, provenance.TrustSemiring{}, confidence)
		return got >= threshold
	}}
}

// updatePriority returns the priority of one update: the maximum over
// matching conditions, or the default.
func (p *Policy) updatePriority(origin string, u updates.Update) int {
	best := -1
	for _, c := range p.Conditions {
		if c.Matches != nil && c.Matches(origin, u) && c.Priority > best {
			best = c.Priority
		}
	}
	if best < 0 {
		return p.Default
	}
	return best
}

// PriorityOf returns the transaction's priority: the minimum over its
// updates' priorities (empty transactions get the default).
func (p *Policy) PriorityOf(t *updates.Transaction) int {
	if len(t.Updates) == 0 {
		return p.Default
	}
	prio := int(^uint(0) >> 1)
	for _, u := range t.Updates {
		if up := p.updatePriority(t.ID.Peer, u); up < prio {
			prio = up
		}
	}
	return prio
}
