package recon

import (
	"fmt"
	"sort"

	"orchestra/internal/updates"
)

// Serializable reconciliation state (DESIGN.md §13). Save flattens the
// peer's accumulated trust state — every graph node with its disposition
// and priority, the application order, and the accepted-write index — into
// plain data the durability layer encodes; Restore rebuilds the state
// exactly. The split matters for snapshot size: process() and Resolve only
// ever read the full Updates of Pending and Deferred nodes (group assembly
// and conflict-write computation), while Accepted and Rejected nodes
// contribute nothing but ID/Epoch/Deps to antecedent closures — so the
// encoder is free to strip their update lists down to skeletons, and
// NeedsFullTxn tells it which is which.

// SavedTxn is one graph node: the transaction plus its disposition.
type SavedTxn struct {
	Txn    *updates.Transaction
	Status Status
	Prio   int
}

// SavedWrite is one entry of the accepted-write index.
type SavedWrite struct {
	Key    string
	Writer updates.TxnID
	Del    bool
	TupKey string
}

// SavedState is the serializable form of a State.
type SavedState struct {
	Txns         []SavedTxn // in TxnID order
	AppliedOrder []updates.TxnID
	Writes       []SavedWrite // in key order
}

// NeedsFullTxn reports whether reconciliation can still read the node's
// update list after restore: true for Pending and Deferred (group building,
// deferred-write indexing, Resolve's net-write computation), false for
// Accepted and Rejected, whose updates are never consulted again.
func NeedsFullTxn(st Status) bool {
	return st == StatusPending || st == StatusDeferred
}

// Save flattens the state. The returned transactions are the graph's own
// (not copies); callers serialize, they do not mutate.
func (s *State) Save() *SavedState {
	sv := &SavedState{AppliedOrder: s.AppliedOrder()}
	for _, id := range s.graph.IDs() {
		t, _ := s.graph.Get(id)
		sv.Txns = append(sv.Txns, SavedTxn{Txn: t, Status: s.status[id], Prio: s.prio[id]})
	}
	keys := make([]string, 0, len(s.acceptedWrites))
	for k := range s.acceptedWrites {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w := s.acceptedWrites[k]
		sv.Writes = append(sv.Writes, SavedWrite{Key: k, Writer: w.writer, Del: w.del, TupKey: w.tupKey})
	}
	return sv
}

// Restore replaces the state's accumulated contents with a saved snapshot.
// The keyOf projection is kept; everything else is rebuilt. On error the
// state is unusable and must be discarded.
func (s *State) Restore(sv *SavedState) error {
	s.graph = updates.NewGraph()
	s.status = make(map[updates.TxnID]Status, len(sv.Txns))
	s.prio = make(map[updates.TxnID]int, len(sv.Txns))
	s.acceptedWrites = make(map[string]writeVal, len(sv.Writes))
	s.appliedOrder = append([]updates.TxnID(nil), sv.AppliedOrder...)
	for _, st := range sv.Txns {
		if st.Txn == nil {
			return fmt.Errorf("recon: saved state has a nil transaction")
		}
		if err := s.graph.Add(st.Txn); err != nil {
			return err
		}
		s.status[st.Txn.ID] = st.Status
		s.prio[st.Txn.ID] = st.Prio
	}
	for _, w := range sv.Writes {
		s.acceptedWrites[w.Key] = writeVal{writer: w.Writer, del: w.Del, tupKey: w.TupKey}
	}
	return nil
}
