package recon

import (
	"testing"

	"orchestra/internal/schema"
	"orchestra/internal/updates"
)

// keyFirst treats the first column as every relation's key.
func keyFirst(rel string, tu schema.Tuple) schema.Tuple { return tu.Project([]int{0}) }

func tup(vs ...int64) schema.Tuple {
	out := make(schema.Tuple, len(vs))
	for i, v := range vs {
		out[i] = schema.Int(v)
	}
	return out
}

func txn(peer string, seq uint64, us ...updates.Update) *updates.Transaction {
	return &updates.Transaction{ID: updates.TxnID{Peer: peer, Seq: seq}, Updates: us}
}

func dep(t *updates.Transaction, on ...*updates.Transaction) *updates.Transaction {
	for _, o := range on {
		t.Deps = append(t.Deps, o.ID)
	}
	return t
}

func ids(ts []*updates.Transaction) []updates.TxnID {
	out := make([]updates.TxnID, len(ts))
	for i, t := range ts {
		out[i] = t.ID
	}
	return out
}

func TestAcceptSimple(t *testing.T) {
	s := NewState(keyFirst)
	o, err := s.Reconcile(TrustAll(1), []*updates.Transaction{
		txn("a", 1, updates.Insert("R", tup(1, 10))),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Accepted) != 1 || s.Status(updates.TxnID{Peer: "a", Seq: 1}) != StatusAccepted {
		t.Errorf("outcome = %+v", o)
	}
}

func TestDistrustedStaysPending(t *testing.T) {
	s := NewState(keyFirst)
	o, err := s.Reconcile(&Policy{Default: Distrusted}, []*updates.Transaction{
		txn("a", 1, updates.Insert("R", tup(1, 10))),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Accepted) != 0 || len(o.Rejected) != 0 {
		t.Errorf("outcome = %+v", o)
	}
	if s.Status(updates.TxnID{Peer: "a", Seq: 1}) != StatusPending {
		t.Error("distrusted txn should stay pending")
	}
}

func TestDuplicateReconcileRejected(t *testing.T) {
	s := NewState(keyFirst)
	tx := txn("a", 1, updates.Insert("R", tup(1, 10)))
	if _, err := s.Reconcile(TrustAll(1), []*updates.Transaction{tx}); err != nil {
		t.Fatal(err)
	}
	tx2 := txn("a", 1, updates.Insert("R", tup(2, 10)))
	if _, err := s.Reconcile(TrustAll(1), []*updates.Transaction{tx2}); err == nil {
		t.Error("duplicate candidate accepted")
	}
}

// Demo scenario 2: Beijing and Dresden publish conflicting updates; Crete
// (trusting Beijing over Dresden) rejects Dresden's. Dresden's dependent
// follow-up is rejected too.
func TestScenario2PriorityConflict(t *testing.T) {
	s := NewState(keyFirst)
	policy := &Policy{Conditions: []Condition{
		FromPeer("beijing", 2),
		FromPeer("dresden", 1),
	}, Default: Distrusted}
	b := txn("beijing", 1, updates.Insert("OPS", tup(1, 100)))
	d := txn("dresden", 1, updates.Insert("OPS", tup(1, 200)))
	o, err := s.Reconcile(policy, []*updates.Transaction{b, d})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status(b.ID) != StatusAccepted {
		t.Errorf("beijing: %s", s.Status(b.ID))
	}
	if s.Status(d.ID) != StatusRejected {
		t.Errorf("dresden: %s", s.Status(d.ID))
	}
	if len(o.Accepted) != 1 || o.Accepted[0].ID != b.ID {
		t.Errorf("accepted = %v", ids(o.Accepted))
	}
	// Dresden publishes more updates depending on the rejected one.
	d2 := dep(txn("dresden", 2, updates.Modify("OPS", tup(1, 200), tup(1, 300))), d)
	o, err = s.Reconcile(policy, []*updates.Transaction{d2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status(d2.ID) != StatusRejected {
		t.Errorf("dresden follow-up: %s", s.Status(d2.ID))
	}
	if len(o.Rejected) != 1 || o.Rejected[0] != d2.ID {
		t.Errorf("rejected = %v", o.Rejected)
	}
}

// Demo scenario 3: Alaska (untrusted at Crete) inserts data; Beijing
// (trusted) modifies one tuple. Crete accepts Beijing's transaction AND the
// untrusted Alaska antecedent.
func TestScenario3AntecedentPullIn(t *testing.T) {
	s := NewState(keyFirst)
	policy := &Policy{Conditions: []Condition{
		FromPeer("beijing", 2),
	}, Default: Distrusted}
	a := txn("alaska", 1,
		updates.Insert("OPS", tup(1, 100)),
		updates.Insert("OPS", tup(2, 200)),
		updates.Insert("OPS", tup(3, 300)))
	o, err := s.Reconcile(policy, []*updates.Transaction{a})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Accepted) != 0 || s.Status(a.ID) != StatusPending {
		t.Fatalf("alaska should be pending, got %s", s.Status(a.ID))
	}
	b := dep(txn("beijing", 1, updates.Modify("OPS", tup(2, 200), tup(2, 250))), a)
	o, err = s.Reconcile(policy, []*updates.Transaction{b})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status(a.ID) != StatusAccepted || s.Status(b.ID) != StatusAccepted {
		t.Errorf("alaska=%s beijing=%s", s.Status(a.ID), s.Status(b.ID))
	}
	// Application order: antecedent first.
	if len(o.Accepted) != 2 || o.Accepted[0].ID != a.ID || o.Accepted[1].ID != b.ID {
		t.Errorf("accepted order = %v", ids(o.Accepted))
	}
}

// Demo scenario 4: same-priority conflict is deferred; a dependent of a
// deferred transaction is deferred; resolution accepts the winner's side
// and cascades.
func TestScenario4DeferAndResolve(t *testing.T) {
	s := NewState(keyFirst)
	policy := TrustAll(1)
	b := txn("beijing", 1, updates.Insert("OPS", tup(1, 100)))
	a := txn("alaska", 1, updates.Insert("OPS", tup(1, 200)))
	o, err := s.Reconcile(policy, []*updates.Transaction{b, a})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status(b.ID) != StatusDeferred || s.Status(a.ID) != StatusDeferred {
		t.Fatalf("beijing=%s alaska=%s", s.Status(b.ID), s.Status(a.ID))
	}
	if len(o.Deferred) != 2 {
		t.Errorf("deferred = %v", o.Deferred)
	}
	// Crete modifies Beijing's (deferred) update; the dependent defers too.
	c := dep(txn("crete", 1, updates.Modify("OPS", tup(1, 100), tup(1, 150))), b)
	o, err = s.Reconcile(policy, []*updates.Transaction{c})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status(c.ID) != StatusDeferred {
		t.Fatalf("crete = %s", s.Status(c.ID))
	}
	// Resolve in favor of Beijing: Alaska rejected, Crete's dependent
	// accepted automatically.
	o, err = s.Resolve(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status(b.ID) != StatusAccepted {
		t.Errorf("beijing = %s", s.Status(b.ID))
	}
	if s.Status(a.ID) != StatusRejected {
		t.Errorf("alaska = %s", s.Status(a.ID))
	}
	if s.Status(c.ID) != StatusAccepted {
		t.Errorf("crete = %s", s.Status(c.ID))
	}
	// Beijing applies before Crete.
	pos := map[updates.TxnID]int{}
	for i, tx := range o.Accepted {
		pos[tx.ID] = i
	}
	if pos[b.ID] > pos[c.ID] {
		t.Errorf("application order wrong: %v", ids(o.Accepted))
	}
}

func TestResolveLoserDependentsRejected(t *testing.T) {
	s := NewState(keyFirst)
	policy := TrustAll(1)
	b := txn("beijing", 1, updates.Insert("R", tup(1, 100)))
	a := txn("alaska", 1, updates.Insert("R", tup(1, 200)))
	if _, err := s.Reconcile(policy, []*updates.Transaction{b, a}); err != nil {
		t.Fatal(err)
	}
	// Dependents on both sides.
	db := dep(txn("crete", 1, updates.Modify("R", tup(1, 100), tup(1, 110))), b)
	da := dep(txn("dresden", 1, updates.Modify("R", tup(1, 200), tup(1, 210))), a)
	if _, err := s.Reconcile(policy, []*updates.Transaction{db, da}); err != nil {
		t.Fatal(err)
	}
	if s.Status(db.ID) != StatusDeferred || s.Status(da.ID) != StatusDeferred {
		t.Fatalf("dependents not deferred: %s %s", s.Status(db.ID), s.Status(da.ID))
	}
	if _, err := s.Resolve(a.ID); err != nil {
		t.Fatal(err)
	}
	if s.Status(a.ID) != StatusAccepted || s.Status(da.ID) != StatusAccepted {
		t.Errorf("winner side: a=%s da=%s", s.Status(a.ID), s.Status(da.ID))
	}
	if s.Status(b.ID) != StatusRejected || s.Status(db.ID) != StatusRejected {
		t.Errorf("loser side: b=%s db=%s", s.Status(b.ID), s.Status(db.ID))
	}
}

func TestResolveRequiresDeferred(t *testing.T) {
	s := NewState(keyFirst)
	tx := txn("a", 1, updates.Insert("R", tup(1, 10)))
	if _, err := s.Reconcile(TrustAll(1), []*updates.Transaction{tx}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Resolve(tx.ID); err == nil {
		t.Error("resolved a non-deferred transaction")
	}
}

func TestIdenticalWritesDoNotConflict(t *testing.T) {
	s := NewState(keyFirst)
	b := txn("beijing", 1, updates.Insert("R", tup(1, 100)))
	a := txn("alaska", 1, updates.Insert("R", tup(1, 100)))
	o, err := s.Reconcile(TrustAll(1), []*updates.Transaction{b, a})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status(b.ID) != StatusAccepted || s.Status(a.ID) != StatusAccepted {
		t.Errorf("identical writes deferred: b=%s a=%s", s.Status(b.ID), s.Status(a.ID))
	}
	if len(o.Deferred) != 0 {
		t.Errorf("deferred = %v", o.Deferred)
	}
}

func TestLowerPriorityConflictWithAcceptedRejected(t *testing.T) {
	s := NewState(keyFirst)
	policy := &Policy{Conditions: []Condition{
		FromPeer("hi", 2), FromPeer("lo", 1),
	}, Default: Distrusted}
	h := txn("hi", 1, updates.Insert("R", tup(1, 100)))
	l := txn("lo", 1, updates.Insert("R", tup(1, 200)))
	if _, err := s.Reconcile(policy, []*updates.Transaction{h, l}); err != nil {
		t.Fatal(err)
	}
	if s.Status(h.ID) != StatusAccepted || s.Status(l.ID) != StatusRejected {
		t.Errorf("h=%s l=%s", s.Status(h.ID), s.Status(l.ID))
	}
}

func TestDependentOverwriteIsNotConflict(t *testing.T) {
	s := NewState(keyFirst)
	a := txn("a", 1, updates.Insert("R", tup(1, 100)))
	if _, err := s.Reconcile(TrustAll(1), []*updates.Transaction{a}); err != nil {
		t.Fatal(err)
	}
	// b modifies a's accepted tuple, declaring the dependency: legitimate.
	b := dep(txn("b", 1, updates.Modify("R", tup(1, 100), tup(1, 150))), a)
	o, err := s.Reconcile(TrustAll(1), []*updates.Transaction{b})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status(b.ID) != StatusAccepted {
		t.Errorf("dependent modify = %s (outcome %+v)", s.Status(b.ID), o)
	}
	// c also modifies the same key but does NOT depend on a: conflict with
	// accepted state — rejected.
	c := txn("c", 1, updates.Insert("R", tup(1, 999)))
	if _, err := s.Reconcile(TrustAll(1), []*updates.Transaction{c}); err != nil {
		t.Fatal(err)
	}
	if s.Status(c.ID) != StatusRejected {
		t.Errorf("independent overwrite = %s", s.Status(c.ID))
	}
}

func TestMissingAntecedentWaits(t *testing.T) {
	s := NewState(keyFirst)
	ghost := updates.TxnID{Peer: "ghost", Seq: 9}
	b := txn("b", 1, updates.Modify("R", tup(1, 100), tup(1, 150)))
	b.Deps = append(b.Deps, ghost)
	o, err := s.Reconcile(TrustAll(1), []*updates.Transaction{b})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status(b.ID) != StatusPending || len(o.Pending) != 1 {
		t.Errorf("status=%s pending=%v", s.Status(b.ID), o.Pending)
	}
	// The missing antecedent arrives; both are applied.
	g := txn("ghost", 9, updates.Insert("R", tup(1, 100)))
	o, err = s.Reconcile(TrustAll(1), []*updates.Transaction{g})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status(b.ID) != StatusAccepted || s.Status(g.ID) != StatusAccepted {
		t.Errorf("b=%s ghost=%s", s.Status(b.ID), s.Status(g.ID))
	}
	if len(o.Accepted) != 2 || o.Accepted[0].ID != g.ID {
		t.Errorf("order = %v", ids(o.Accepted))
	}
}

func TestNewCandidateConflictingWithDeferredIsDeferred(t *testing.T) {
	s := NewState(keyFirst)
	b := txn("b", 1, updates.Insert("R", tup(1, 100)))
	a := txn("a", 1, updates.Insert("R", tup(1, 200)))
	if _, err := s.Reconcile(TrustAll(1), []*updates.Transaction{b, a}); err != nil {
		t.Fatal(err)
	}
	c := txn("c", 1, updates.Insert("R", tup(1, 300)))
	if _, err := s.Reconcile(TrustAll(1), []*updates.Transaction{c}); err != nil {
		t.Fatal(err)
	}
	if s.Status(c.ID) != StatusDeferred {
		t.Errorf("c = %s", s.Status(c.ID))
	}
	// Resolution in favor of c rejects both a and b.
	if _, err := s.Resolve(c.ID); err != nil {
		t.Fatal(err)
	}
	if s.Status(c.ID) != StatusAccepted || s.Status(a.ID) != StatusRejected || s.Status(b.ID) != StatusRejected {
		t.Errorf("c=%s a=%s b=%s", s.Status(c.ID), s.Status(a.ID), s.Status(b.ID))
	}
}

func TestPriorityIsMinOverUpdates(t *testing.T) {
	policy := &Policy{Conditions: []Condition{
		OnRelation("good", 5),
		OnRelation("bad", 1),
	}, Default: 3}
	tx := txn("p", 1,
		updates.Insert("good", tup(1)),
		updates.Insert("bad", tup(2)))
	if got := policy.PriorityOf(tx); got != 1 {
		t.Errorf("priority = %d, want 1 (min)", got)
	}
	tx2 := txn("p", 2, updates.Insert("other", tup(1)))
	if got := policy.PriorityOf(tx2); got != 3 {
		t.Errorf("priority = %d, want default 3", got)
	}
	empty := txn("p", 3)
	if got := policy.PriorityOf(empty); got != 3 {
		t.Errorf("empty priority = %d", got)
	}
}

func TestAppliedOrderAccumulates(t *testing.T) {
	s := NewState(keyFirst)
	a := txn("a", 1, updates.Insert("R", tup(1, 1)))
	b := txn("b", 1, updates.Insert("R", tup(2, 2)))
	if _, err := s.Reconcile(TrustAll(1), []*updates.Transaction{a}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reconcile(TrustAll(1), []*updates.Transaction{b}); err != nil {
		t.Fatal(err)
	}
	order := s.AppliedOrder()
	if len(order) != 2 || order[0] != a.ID || order[1] != b.ID {
		t.Errorf("order = %v", order)
	}
}
