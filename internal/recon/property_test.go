package recon

// Property-based validation of the greedy reconciliation algorithm on
// random instances (the DESIGN.md §4 ablation): the accepted set must be
// (1) conflict-free, (2) dependency-closed, (3) maximal — no rejected or
// pending trusted transaction could be added without violating (1) or (2) —
// and (4) on conflict-free instances it must accept everything. On tiny
// instances with unique priorities we additionally compare against the
// brute-force optimum of the greedy objective (accept higher priorities
// first).

import (
	"math/rand"
	"testing"

	"orchestra/internal/updates"
)

// randInstance builds n transactions from distinct peers writing random
// keys in [0, keys), with random value collisions and chain dependencies.
func randInstance(rng *rand.Rand, n, keys int, depProb float64) []*updates.Transaction {
	var txns []*updates.Transaction
	lastWriter := map[int64]updates.TxnID{}
	for i := 0; i < n; i++ {
		key := int64(rng.Intn(keys))
		val := int64(rng.Intn(3))
		t := txn("p"+string(rune('a'+i%26)), uint64(i+1),
			updates.Insert("R", tup(key, val)))
		if w, ok := lastWriter[key]; ok && rng.Float64() < depProb {
			// Declared dependency: the write is a legitimate overwrite.
			t.Updates[0] = updates.Modify("R", tup(key, -1), tup(key, val))
			t.Deps = append(t.Deps, w)
		}
		lastWriter[key] = t.ID
		txns = append(txns, t)
	}
	return txns
}

// checkInvariants verifies conflict-freedom, dependency-closure, and
// maximality of the accepted set.
func checkInvariants(t *testing.T, s *State, txns []*updates.Transaction) {
	t.Helper()
	byID := map[updates.TxnID]*updates.Transaction{}
	for _, tx := range txns {
		byID[tx.ID] = tx
	}
	accepted := map[updates.TxnID]bool{}
	for _, tx := range txns {
		if s.Status(tx.ID) == StatusAccepted {
			accepted[tx.ID] = true
		}
	}
	// (1) conflict-free: replay accepted writes in applied order; a write
	// to a key held by a different value must come from a txn that depends
	// (transitively) on the current writer.
	writes := map[string]writeVal{}
	for _, id := range s.AppliedOrder() {
		tx, ok := byID[id]
		if !ok {
			continue
		}
		cl, _ := s.graph.AntecedentClosure(id)
		inCl := map[updates.TxnID]bool{}
		for _, a := range cl {
			inCl[a] = true
		}
		for k, w := range s.netWrites([]*updates.Transaction{tx}) {
			if prev, ok := writes[k]; ok && !prev.sameValue(w) && !inCl[prev.writer] {
				t.Fatalf("accepted set conflicts: %s overwrites %s on %s without dependency",
					id, prev.writer, k)
			}
			writes[k] = w
		}
	}
	// (2) dependency-closed: every accepted txn's antecedents accepted.
	for id := range accepted {
		cl, missing := s.graph.AntecedentClosure(id)
		if len(missing) > 0 {
			t.Fatalf("accepted %s has missing antecedents %v", id, missing)
		}
		for _, a := range cl {
			if !accepted[a] {
				t.Fatalf("accepted %s depends on non-accepted %s (%s)", id, a, s.Status(a))
			}
		}
	}
	// (3) maximality: no rejected transaction could have been accepted.
	for _, tx := range txns {
		if s.Status(tx.ID) != StatusRejected {
			continue
		}
		// It is fine for a rejected txn to be blocked by a rejected
		// antecedent; otherwise it must clash with an accepted write.
		cl, _ := s.graph.AntecedentClosure(tx.ID)
		blockedByAntecedent := false
		inCl := map[updates.TxnID]bool{tx.ID: true}
		for _, a := range cl {
			inCl[a] = true
			if s.Status(a) == StatusRejected {
				blockedByAntecedent = true
			}
		}
		if blockedByAntecedent {
			continue
		}
		// Justified if it clashes with the final accepted state, or
		// pairwise with some accepted transaction's writes (a later
		// dependent overwrite may have made the current value compatible
		// again).
		clash := false
		mine := s.netWrites([]*updates.Transaction{tx})
		for k, w := range mine {
			if aw, ok := s.acceptedWrites[k]; ok && !aw.sameValue(w) && !inCl[aw.writer] {
				clash = true
			}
		}
		if !clash {
			for id := range accepted {
				other := byID[id]
				if other == nil {
					continue
				}
				for k, w := range s.netWrites([]*updates.Transaction{other}) {
					if mw, ok := mine[k]; ok && !mw.sameValue(w) && !inCl[id] {
						clash = true
					}
				}
			}
		}
		if !clash {
			t.Fatalf("rejected %s neither clashes with accepted writes nor has rejected antecedents", tx.ID)
		}
	}
}

func TestQuickGreedyInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(12)
		keys := 1 + rng.Intn(4)
		txns := randInstance(rng, n, keys, 0.4)
		s := NewState(keyFirst)
		// Unique priorities avoid deferral so acceptance is decisive.
		pol := &Policy{Default: 1}
		prio := map[string]int{}
		for i, tx := range txns {
			prio[tx.ID.String()] = i + 1
		}
		pol.Conditions = []Condition{{
			Priority: 0, // replaced dynamically below
		}}
		// Install per-transaction priorities via a matching closure.
		pol = &Policy{Default: 1}
		s2 := s
		_ = s2
		for i := range txns {
			i := i
			pol.Conditions = append(pol.Conditions, Condition{
				Priority: i + 2,
				Matches: func(origin string, u updates.Update) bool {
					return origin == txns[i].ID.Peer && u.Target() != nil &&
						u.Target().Equal(txns[i].Updates[0].Target())
				},
			})
		}
		if _, err := s.Reconcile(pol, txns); err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, s, txns)
	}
}

func TestQuickEqualPriorityDeferralInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(10)
		keys := 1 + rng.Intn(3)
		txns := randInstance(rng, n, keys, 0.3)
		s := NewState(keyFirst)
		if _, err := s.Reconcile(TrustAll(1), txns); err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, s, txns)
		// Deferred transactions must actually have a potential conflict:
		// for every deferred txn there exists another deferred or accepted
		// txn writing one of its keys with a different value.
		for _, tx := range txns {
			if s.Status(tx.ID) != StatusDeferred {
				continue
			}
			cl, _ := s.graph.AntecedentClosure(tx.ID)
			deferredAntecedent := false
			for _, a := range cl {
				if s.Status(a) == StatusDeferred {
					deferredAntecedent = true
				}
			}
			if deferredAntecedent {
				continue
			}
			found := false
			mine := s.netWrites([]*updates.Transaction{tx})
			for _, other := range txns {
				if other.ID == tx.ID || s.Status(other.ID) == StatusRejected {
					continue
				}
				for k, w := range s.netWrites([]*updates.Transaction{other}) {
					if mw, ok := mine[k]; ok && !mw.sameValue(w) {
						found = true
					}
				}
			}
			if !found {
				t.Fatalf("deferred %s has no conflicting counterpart", tx.ID)
			}
		}
	}
}

// TestQuickConflictFreeAcceptsAll: with no key collisions and any single
// policy priority >= 1, every transaction must be accepted.
func TestQuickConflictFreeAcceptsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(15)
		var txns []*updates.Transaction
		for i := 0; i < n; i++ {
			txns = append(txns, txn("p", uint64(i+1),
				updates.Insert("R", tup(int64(i), int64(rng.Intn(5))))))
		}
		s := NewState(keyFirst)
		out, err := s.Reconcile(TrustAll(1), txns)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Accepted) != n {
			t.Fatalf("accepted %d of %d conflict-free txns", len(out.Accepted), n)
		}
	}
}

// TestQuickResolutionTerminates: after deferrals, repeatedly resolving in
// favor of the smallest deferred id must terminate with no deferred txns.
func TestQuickResolutionTerminates(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(10)
		txns := randInstance(rng, n, 1+rng.Intn(2), 0.2)
		s := NewState(keyFirst)
		if _, err := s.Reconcile(TrustAll(1), txns); err != nil {
			t.Fatal(err)
		}
		for iter := 0; iter < n+1; iter++ {
			var deferred []updates.TxnID
			for _, tx := range txns {
				if s.Status(tx.ID) == StatusDeferred {
					deferred = append(deferred, tx.ID)
				}
			}
			if len(deferred) == 0 {
				break
			}
			if _, err := s.Resolve(deferred[0]); err != nil {
				t.Fatalf("resolve %s: %v", deferred[0], err)
			}
		}
		for _, tx := range txns {
			if s.Status(tx.ID) == StatusDeferred {
				t.Fatalf("deferred %s survives full resolution", tx.ID)
			}
		}
		checkInvariants(t, s, txns)
	}
}
