package config

import (
	"context"
	"strings"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/p2p"
	"orchestra/internal/recon"
	"orchestra/internal/updates"
	"orchestra/internal/workload"
)

const fig2Conf = `
# The paper's Figure 2 CDSS.
peer alaska {
    relation O(org string, oid int) key(oid)
    relation P(prot string, pid int) key(pid)
    relation S(oid int, pid int, seq string) key(oid, pid)
}
peer beijing like alaska
peer crete {
    relation OPS(org string, prot string, seq string) key(org, prot)
}
peer dresden like crete

mapping identity M_AB alaska beijing
mapping identity M_BA beijing alaska
mapping identity M_CD crete dresden
mapping identity M_DC dresden crete
mapping M_AC = crete.OPS(org, prot, seq) :-
    alaska.O(org, oid), alaska.P(prot, pid), alaska.S(oid, pid, seq).
mapping M_CA = alaska.O(org, oid), alaska.P(prot, pid), alaska.S(oid, pid, seq) :-
    crete.OPS(org, prot, seq).

trust crete {
    peer beijing 2
    peer dresden 1
    default 0
}
`

func TestParseFigure2Config(t *testing.T) {
	cfg, err := Parse(strings.NewReader(fig2Conf))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Peers) != 4 {
		t.Fatalf("peers = %d", len(cfg.Peers))
	}
	if cfg.Peers["alaska"] != cfg.Peers["beijing"] {
		t.Error("'like' did not share the schema")
	}
	if cfg.Peers["alaska"].Relation("S").Arity() != 3 {
		t.Error("S arity wrong")
	}
	// 4 identity groups (3+3+1+1 rules) + join + split.
	if len(cfg.Mappings) != 10 {
		t.Errorf("mappings = %d", len(cfg.Mappings))
	}
	sys, err := cfg.System()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Schema("dresden").Relation("OPS") == nil {
		t.Error("dresden schema wrong")
	}
	// Policies: crete custom, others default trust-all.
	if cfg.Policy("crete").Default != recon.Distrusted {
		t.Error("crete default wrong")
	}
	if cfg.Policy("alaska").Default != 1 {
		t.Error("alaska fallback policy wrong")
	}
}

// The config-built CDSS passes demo scenario 2 end to end.
func TestConfigDrivenScenario(t *testing.T) {
	cfg, err := Parse(strings.NewReader(fig2Conf))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := cfg.System()
	if err != nil {
		t.Fatal(err)
	}
	store := p2p.NewMemoryStore()
	mk := func(name string) *core.Peer {
		p, err := core.NewPeer(name, sys, store, cfg.Policy(name))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	beijing, dresden, crete := mk("beijing"), mk("dresden"), mk("crete")
	if _, err := beijing.NewTransaction().
		Insert("O", workload.OTuple("mouse", 1)).
		Insert("P", workload.PTuple("p53", 10)).
		Insert("S", workload.STuple(1, 10, "AAAA")).Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := beijing.Publish(context.Background()); err != nil {
		t.Fatal(err)
	}
	dTxn, err := dresden.NewTransaction().
		Insert("OPS", workload.OPSTuple("mouse", "p53", "CCCC")).Commit()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dresden.Publish(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := crete.Reconcile(context.Background()); err != nil {
		t.Fatal(err)
	}
	if crete.Status(dTxn.ID) != recon.StatusRejected {
		t.Errorf("dresden at crete = %s", crete.Status(dTxn.ID))
	}
	if !crete.Instance().Contains("OPS", workload.OPSTuple("mouse", "p53", "AAAA")) {
		t.Error("beijing's tuple missing at crete")
	}
	_ = updates.TxnID{}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"unknown directive": "frobnicate x\n",
		"peer no name":      "peer\n",
		"bad peer syntax":   "peer a [\n",
		"like unknown":      "peer a like b\n",
		"dup peer":          "peer a {\n}\npeer a {\n}\n",
		"unclosed peer":     "peer a {\nrelation R(x int)\n",
		"bad relation":      "peer a {\nrelation R\n}\n",
		"bad attr":          "peer a {\nrelation R(x)\n}\n",
		"bad type":          "peer a {\nrelation R(x blob)\n}\n",
		"bad key":           "peer a {\nrelation R(x int) key(y)\n}\n",
		"bad key syntax":    "peer a {\nrelation R(x int) keyz\n}\n",
		"identity unknown":  "peer a {\nrelation R(x int)\n}\nmapping identity M a b\n",
		"identity usage":    "peer a {\nrelation R(x int)\n}\nmapping identity M a\n",
		"mapping usage":     "peer a {\nrelation R(x int)\n}\nmapping M\n",
		"mapping unterminated": "peer a {\nrelation R(x int)\n}\n" +
			"mapping M = a.R(x) :- a.R(x)\n",
		"mapping unknown peer": "peer a {\nrelation R(x int)\n}\n" +
			"mapping M = b.R(x) :- a.R(x).\n",
		"trust unknown peer": "peer a {\nrelation R(x int)\n}\ntrust b {\n}\n",
		"trust bad entry":    "peer a {\nrelation R(x int)\n}\ntrust a {\nwhatever\n}\n",
		"trust bad number":   "peer a {\nrelation R(x int)\n}\ntrust a {\npeer a x\n}\n",
		"trust unclosed":     "peer a {\nrelation R(x int)\n}\ntrust a {\n",
		"dup trust":          "peer a {\nrelation R(x int)\n}\ntrust a {\n}\ntrust a {\n}\n",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestTrustConditionKinds(t *testing.T) {
	src := `
peer a {
    relation R(x int)
}
trust a {
    peer b 3
    mapping M_x 2
    relation R 4
    default 1
}
`
	cfg, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	pol := cfg.Policy("a")
	if len(pol.Conditions) != 3 || pol.Default != 1 {
		t.Fatalf("policy = %+v", pol)
	}
	// The relation condition matches updates on R.
	u := updates.Insert("R", workload.OTuple("x", 1)[:1])
	if got := pol.PriorityOf(&updates.Transaction{
		ID:      updates.TxnID{Peer: "z", Seq: 1},
		Updates: []updates.Update{u},
	}); got != 4 {
		t.Errorf("priority = %d", got)
	}
}
