// Package config parses the textual CDSS configuration format: peers with
// schemas, mappings (identity shorthands or tgd text), and per-peer trust
// policies. It is what lets an ORCHESTRA confederation be described in a
// file instead of Go code:
//
//	peer alaska {
//	    relation O(org string, oid int) key(oid)
//	    relation P(prot string, pid int) key(pid)
//	    relation S(oid int, pid int, seq string) key(oid, pid)
//	}
//	peer beijing like alaska
//	peer crete {
//	    relation OPS(org string, prot string, seq string) key(org, prot)
//	}
//	peer dresden like crete
//
//	mapping identity M_AB alaska beijing
//	mapping identity M_BA beijing alaska
//	mapping M_AC = crete.OPS(org, prot, seq) :-
//	    alaska.O(org, oid), alaska.P(prot, pid), alaska.S(oid, pid, seq).
//
//	trust crete {
//	    peer beijing 2
//	    peer dresden 1
//	    default 0
//	}
//
// Lines starting with # are comments. Unlisted peers default to trusting
// everything at priority 1.
package config

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"orchestra/internal/core"
	"orchestra/internal/mapping"
	"orchestra/internal/parser"
	"orchestra/internal/recon"
	"orchestra/internal/schema"
)

// Config is a parsed CDSS description.
type Config struct {
	Peers    map[string]*schema.Schema
	Mappings []*mapping.Mapping
	Policies map[string]*recon.Policy
}

// System builds the core.System for the configuration.
func (c *Config) System() (*core.System, error) {
	return core.NewSystem(c.Peers, c.Mappings)
}

// Policy returns the trust policy for a peer (default: trust all at 1).
func (c *Config) Policy(peer string) *recon.Policy {
	if p, ok := c.Policies[peer]; ok {
		return p
	}
	return recon.TrustAll(1)
}

// Parse reads a configuration.
func Parse(r io.Reader) (*Config, error) {
	cfg := &Config{
		Peers:    map[string]*schema.Schema{},
		Policies: map[string]*recon.Policy{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	ln := 0
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for ln < len(lines) {
		line := strings.TrimSpace(lines[ln])
		ln++
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "peer":
			var err error
			ln, err = cfg.parsePeer(lines, ln-1)
			if err != nil {
				return nil, err
			}
		case "mapping":
			var err error
			ln, err = cfg.parseMapping(lines, ln-1)
			if err != nil {
				return nil, err
			}
		case "trust":
			var err error
			ln, err = cfg.parseTrust(lines, ln-1)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("config: line %d: unknown directive %q", ln, fields[0])
		}
	}
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("config: no peers declared")
	}
	return cfg, nil
}

// parsePeer handles "peer NAME { ... }" and "peer NAME like OTHER".
func (cfg *Config) parsePeer(lines []string, i int) (int, error) {
	line := strings.TrimSpace(lines[i])
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return 0, fmt.Errorf("config: line %d: peer needs a name", i+1)
	}
	name := fields[1]
	if _, dup := cfg.Peers[name]; dup {
		return 0, fmt.Errorf("config: line %d: duplicate peer %s", i+1, name)
	}
	// "peer b like a": share a's schema object.
	if len(fields) == 4 && fields[2] == "like" {
		other, ok := cfg.Peers[fields[3]]
		if !ok {
			return 0, fmt.Errorf("config: line %d: peer %s declared before %s", i+1, fields[3], name)
		}
		cfg.Peers[name] = other
		return i + 1, nil
	}
	if len(fields) != 3 || fields[2] != "{" {
		return 0, fmt.Errorf("config: line %d: expected 'peer %s {' or 'peer %s like OTHER'", i+1, name, name)
	}
	s := schema.NewSchema(name)
	i++
	for ; i < len(lines); i++ {
		line := strings.TrimSpace(lines[i])
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "}" {
			cfg.Peers[name] = s
			return i + 1, nil
		}
		rel, err := parseRelationDecl(line, i+1)
		if err != nil {
			return 0, err
		}
		if err := s.AddRelation(rel); err != nil {
			return 0, fmt.Errorf("config: line %d: %v", i+1, err)
		}
	}
	return 0, fmt.Errorf("config: peer %s: missing closing '}'", name)
}

// parseRelationDecl parses: relation R(a type, b type, ...) key(a, b)
func parseRelationDecl(line string, lineNo int) (*schema.Relation, error) {
	if !strings.HasPrefix(line, "relation ") {
		return nil, fmt.Errorf("config: line %d: expected relation declaration, got %q", lineNo, line)
	}
	rest := strings.TrimSpace(strings.TrimPrefix(line, "relation "))
	open := strings.IndexByte(rest, '(')
	if open < 0 {
		return nil, fmt.Errorf("config: line %d: relation needs attributes", lineNo)
	}
	name := strings.TrimSpace(rest[:open])
	close1 := strings.IndexByte(rest, ')')
	if close1 < 0 {
		return nil, fmt.Errorf("config: line %d: missing ')'", lineNo)
	}
	var attrs []schema.Attribute
	for _, part := range strings.Split(rest[open+1:close1], ",") {
		kv := strings.Fields(strings.TrimSpace(part))
		if len(kv) != 2 {
			return nil, fmt.Errorf("config: line %d: attribute needs 'name type', got %q", lineNo, part)
		}
		var kind schema.Kind
		switch kv[1] {
		case "string":
			kind = schema.KindString
		case "int":
			kind = schema.KindInt
		case "float":
			kind = schema.KindFloat
		case "bool":
			kind = schema.KindBool
		default:
			return nil, fmt.Errorf("config: line %d: unknown type %q", lineNo, kv[1])
		}
		attrs = append(attrs, schema.Attribute{Name: kv[0], Type: kind})
	}
	var keyCols []string
	tail := strings.TrimSpace(rest[close1+1:])
	if tail != "" {
		if !strings.HasPrefix(tail, "key(") || !strings.HasSuffix(tail, ")") {
			return nil, fmt.Errorf("config: line %d: expected key(...), got %q", lineNo, tail)
		}
		for _, k := range strings.Split(tail[4:len(tail)-1], ",") {
			keyCols = append(keyCols, strings.TrimSpace(k))
		}
	}
	return schema.NewRelation(name, attrs, keyCols...)
}

// parseMapping handles "mapping identity ID SRC DST" and
// "mapping ID = tgd-text... ." (the tgd may span lines until a period).
func (cfg *Config) parseMapping(lines []string, i int) (int, error) {
	line := strings.TrimSpace(lines[i])
	fields := strings.Fields(line)
	if len(fields) >= 2 && fields[1] == "identity" {
		if len(fields) != 5 {
			return 0, fmt.Errorf("config: line %d: usage: mapping identity ID SRC DST", i+1)
		}
		id, src, dst := fields[2], fields[3], fields[4]
		s, ok := cfg.Peers[src]
		if !ok {
			return 0, fmt.Errorf("config: line %d: unknown peer %s", i+1, src)
		}
		if _, ok := cfg.Peers[dst]; !ok {
			return 0, fmt.Errorf("config: line %d: unknown peer %s", i+1, dst)
		}
		cfg.Mappings = append(cfg.Mappings, mapping.Identity(id, src, dst, s)...)
		return i + 1, nil
	}
	// mapping ID = <tgd ...>.
	eq := strings.IndexByte(line, '=')
	if len(fields) < 3 || eq < 0 {
		return 0, fmt.Errorf("config: line %d: usage: mapping ID = tgd.", i+1)
	}
	id := fields[1]
	var sb strings.Builder
	sb.WriteString(line[eq+1:])
	j := i
	for !strings.HasSuffix(strings.TrimSpace(sb.String()), ".") {
		j++
		if j >= len(lines) {
			return 0, fmt.Errorf("config: line %d: mapping %s: missing terminating '.'", i+1, id)
		}
		sb.WriteString("\n")
		sb.WriteString(lines[j])
	}
	m, err := parser.ParseMapping(id, sb.String())
	if err != nil {
		return 0, err
	}
	if _, ok := cfg.Peers[m.Source]; !ok {
		return 0, fmt.Errorf("config: mapping %s: unknown source peer %s", id, m.Source)
	}
	if _, ok := cfg.Peers[m.Target]; !ok {
		return 0, fmt.Errorf("config: mapping %s: unknown target peer %s", id, m.Target)
	}
	cfg.Mappings = append(cfg.Mappings, m)
	return j + 1, nil
}

// parseTrust handles "trust NAME { peer P N | mapping M N | default N }".
func (cfg *Config) parseTrust(lines []string, i int) (int, error) {
	fields := strings.Fields(strings.TrimSpace(lines[i]))
	if len(fields) != 3 || fields[2] != "{" {
		return 0, fmt.Errorf("config: line %d: usage: trust PEER {", i+1)
	}
	name := fields[1]
	if _, ok := cfg.Peers[name]; !ok {
		return 0, fmt.Errorf("config: line %d: unknown peer %s", i+1, name)
	}
	if _, dup := cfg.Policies[name]; dup {
		return 0, fmt.Errorf("config: line %d: duplicate trust block for %s", i+1, name)
	}
	pol := &recon.Policy{Default: recon.Distrusted}
	i++
	for ; i < len(lines); i++ {
		line := strings.TrimSpace(lines[i])
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "}" {
			cfg.Policies[name] = pol
			return i + 1, nil
		}
		kv := strings.Fields(line)
		bad := func() (int, error) {
			return 0, fmt.Errorf("config: line %d: expected 'peer P N', 'mapping M N', 'relation R N' or 'default N', got %q", i+1, line)
		}
		switch {
		case len(kv) == 2 && kv[0] == "default":
			n, err := strconv.Atoi(kv[1])
			if err != nil {
				return bad()
			}
			pol.Default = n
		case len(kv) == 3 && kv[0] == "peer":
			n, err := strconv.Atoi(kv[2])
			if err != nil {
				return bad()
			}
			pol.Conditions = append(pol.Conditions, recon.FromPeer(kv[1], n))
		case len(kv) == 3 && kv[0] == "mapping":
			n, err := strconv.Atoi(kv[2])
			if err != nil {
				return bad()
			}
			pol.Conditions = append(pol.Conditions, recon.ThroughMapping(kv[1], n))
		case len(kv) == 3 && kv[0] == "relation":
			n, err := strconv.Atoi(kv[2])
			if err != nil {
				return bad()
			}
			pol.Conditions = append(pol.Conditions, recon.OnRelation(kv[1], n))
		default:
			return bad()
		}
	}
	return 0, fmt.Errorf("config: trust %s: missing closing '}'", name)
}
