package datalog

import (
	"fmt"
	"testing"

	"orchestra/internal/schema"
)

// --- equality pushdown into probe keys ---

func findStep(p *plan, bodyIdx int) *planStep {
	for i := range p.steps {
		if p.steps[i].bodyIdx == bodyIdx {
			return &p.steps[i]
		}
	}
	return nil
}

func TestPushdownConstEqualityIntoProbe(t *testing.T) {
	// y = 3 must become a probe column of R's scan: the index bucket then
	// only surfaces matching facts. The filter still runs afterwards.
	r := Rule{ID: "p", Head: NewHead("Out", HV("x")), Body: []Literal{
		Pos(NewAtom("R", V("x"), V("y"))),
		Cmp(V("y"), OpEq, C(schema.Int(3))),
	}}
	p := buildPlan(r, -1, NewDB(), false)
	st := findStep(p, 0)
	if st == nil || st.kind != stepScan {
		t.Fatalf("no scan step for body 0 in %s", p)
	}
	if st.pushed != 1 || len(st.boundCols) != 1 || st.boundCols[0] != 1 {
		t.Fatalf("pushed=%d boundCols=%v, want the y column probed", st.pushed, st.boundCols)
	}
	if st.probes[0].mode != termConst || !st.probes[0].val.Equal(schema.Int(3)) {
		t.Fatalf("probe = %+v, want const 3", st.probes[0])
	}
	// The slot must still bind from the candidate (both columns actioned).
	if len(st.actions) != 2 {
		t.Fatalf("actions = %+v, want binds for both x and y", st.actions)
	}
}

func TestPushdownVarEqualityUsesEarlierSlot(t *testing.T) {
	// x binds in A; the filter x = y then lets B's scan probe its y column
	// with x's slot.
	r := Rule{ID: "pv", Head: NewHead("Out", HV("x"), HV("z")), Body: []Literal{
		Pos(NewAtom("A", V("x"))),
		Pos(NewAtom("B", V("y"), V("z"))),
		Cmp(V("x"), OpEq, V("y")),
	}}
	db := NewDB()
	db.AddTuple("A", schema.NewTuple(schema.Int(1)))
	for i := int64(0); i < 10; i++ {
		db.AddTuple("B", schema.NewTuple(schema.Int(i), schema.Int(i)))
	}
	p := buildPlan(r, -1, db, false)
	st := findStep(p, 1)
	if st == nil {
		t.Fatalf("no step for B in %s", p)
	}
	if st.pushed != 1 || len(st.boundCols) != 1 || st.boundCols[0] != 0 {
		t.Fatalf("pushed=%d boundCols=%v, want B's y column probed via x's slot", st.pushed, st.boundCols)
	}
	if st.probes[0].mode != termSlot {
		t.Fatalf("probe mode = %v, want termSlot", st.probes[0].mode)
	}
}

func TestPushdownRejectsSameAtomNeighbor(t *testing.T) {
	// x = y where BOTH variables are introduced by the same atom: the probe
	// key is encoded before the atom's bind actions run, so neither column
	// may be probed through the other's slot.
	r := Rule{ID: "sa", Head: NewHead("Out", HV("x")), Body: []Literal{
		Pos(NewAtom("R", V("x"), V("y"))),
		Cmp(V("x"), OpEq, V("y")),
	}}
	p := buildPlan(r, -1, NewDB(), false)
	st := findStep(p, 0)
	if st.pushed != 0 || len(st.boundCols) != 0 {
		t.Fatalf("pushed=%d boundCols=%v: same-atom equality must not push down", st.pushed, st.boundCols)
	}
}

func TestPushdownEquivalenceOnData(t *testing.T) {
	// End-to-end: the pushed plan computes exactly the reference results.
	prog := &Program{Rules: []Rule{
		{ID: "c", Head: NewHead("OutC", HV("x")), Body: []Literal{
			Pos(NewAtom("R", V("x"), V("y"))), Cmp(V("y"), OpEq, C(schema.Int(2)))}},
		{ID: "v", Head: NewHead("OutV", HV("x"), HV("z")), Body: []Literal{
			Pos(NewAtom("S", V("x"))),
			Pos(NewAtom("R", V("y"), V("z"))),
			Cmp(V("x"), OpEq, V("y"))}},
		{ID: "same", Head: NewHead("OutS", HV("x")), Body: []Literal{
			Pos(NewAtom("R", V("x"), V("y"))), Cmp(V("x"), OpEq, V("y"))}},
	}}
	edb := NewDB()
	for i := int64(0); i < 12; i++ {
		edb.AddTuple("R", schema.NewTuple(schema.Int(i%6), schema.Int(i%4)))
		if i < 6 {
			edb.AddTuple("S", schema.NewTuple(schema.Int(i)))
		}
	}
	want, err := Eval(prog, edb, Options{Provenance: true, Materialized: true, NoReorder: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Eval(prog, edb, Options{Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	requireDBsEqual(t, "pushdown", want, got)
}

// --- constant-only existence gates ---

func TestPlanConstOnlyAtomSchedulesBeforeDelta(t *testing.T) {
	// Gate(1) is a pure existence probe: under greedy ordering it runs
	// before the delta literal, so a failing gate costs one probe per round
	// instead of one per delta fact.
	r := Rule{ID: "g", Head: NewHead("Out", HV("x"), HV("y")), Body: []Literal{
		Pos(NewAtom("D", V("x"), V("y"))),
		Pos(NewAtom("Gate", C(schema.Int(1)))),
	}}
	p := buildPlan(r, 0, NewDB(), false)
	if got := fmt.Sprint(p.order()); got != "[1 0]" {
		t.Fatalf("plan order = %v (%s), want the gate before the delta", got, p)
	}
	// noReorder keeps the delta first, written order after.
	p = buildPlan(r, 0, NewDB(), true)
	if got := fmt.Sprint(p.order()); got != "[0 1]" {
		t.Fatalf("noReorder plan order = %v, want [0 1]", got)
	}
}

func TestConstGateEquivalenceOnData(t *testing.T) {
	prog := &Program{Rules: []Rule{{
		ID:   "gated",
		Head: NewHead("Out", HV("x")),
		Body: []Literal{
			Pos(NewAtom("In", V("x"))),
			Pos(NewAtom("Flag", C(schema.String("on")))),
		},
	}}}
	for _, flagged := range []bool{false, true} {
		edb := NewDB()
		for i := int64(0); i < 5; i++ {
			edb.AddTuple("In", schema.NewTuple(schema.Int(i)))
		}
		if flagged {
			edb.AddTuple("Flag", schema.NewTuple(schema.String("on")))
		}
		want, err := Eval(prog, edb, Options{Materialized: true, NoReorder: true})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Eval(prog, edb, Options{})
		if err != nil {
			t.Fatal(err)
		}
		requireDBsEqual(t, fmt.Sprintf("gate/flagged=%v", flagged), want, got)
		wantN := 0
		if flagged {
			wantN = 5
		}
		if got.Rel("Out").Len() != wantN {
			t.Fatalf("flagged=%v: Out has %d facts, want %d", flagged, got.Rel("Out").Len(), wantN)
		}
	}
}
