package datalog

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

// Cancellation must land mid-pipeline — inside one rule firing's
// enumeration, not just at round boundaries — and a half-consumed pipeline
// must leave the caller's EDB untouched and the executor's arena reusable.

// crossProductWorkload is a three-way cross product big enough that a single
// firing enumerates millions of candidate rows (far past pipeCancelStride),
// so a short deadline expires inside the pipeline.
func crossProductWorkload(n int64) (*Program, *DB) {
	prog := &Program{Rules: []Rule{{
		ID:   "x",
		Head: NewHead("X", HV("a"), HV("b"), HV("c")),
		Body: []Literal{
			Pos(NewAtom("A", V("a"))), Pos(NewAtom("B", V("b"))), Pos(NewAtom("C", V("c")))},
	}}}
	edb := NewDB()
	for i := int64(0); i < n; i++ {
		edb.AddTuple("A", schema.NewTuple(schema.Int(i)))
		edb.AddTuple("B", schema.NewTuple(schema.Int(i)))
		edb.AddTuple("C", schema.NewTuple(schema.Int(i)))
	}
	return prog, edb
}

func requireEDBUntouched(t *testing.T, edb *DB, n int) {
	t.Helper()
	for _, pred := range []string{"A", "B", "C"} {
		if got := edb.Rel(pred).Len(); got != n {
			t.Fatalf("EDB %s has %d facts after cancellation, want %d", pred, got, n)
		}
	}
	if got := edb.Rel("X").Len(); got != 0 {
		t.Fatalf("EDB gained %d derived X facts: snapshot isolation broken", got)
	}
}

func TestEvalCancellationMidPipeline(t *testing.T) {
	for _, par := range []int{-1, 4} {
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			prog, edb := crossProductWorkload(200) // 8M rows if run to completion
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
			defer cancel()
			res, err := EvalCtx(ctx, prog, edb, Options{Parallelism: par})
			if err == nil {
				t.Skip("machine fast enough to finish 8M rows in 2ms; nothing to assert")
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want context.DeadlineExceeded", err)
			}
			if res != nil {
				t.Fatal("cancelled evaluation returned a non-nil DB")
			}
			requireEDBUntouched(t, edb, 200)
			// The same EDB must evaluate cleanly afterwards.
			small, smallEDB := crossProductWorkload(8)
			got, err := Eval(small, smallEDB, Options{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			if got.Rel("X").Len() != 512 {
				t.Fatalf("post-cancel evaluation derived %d facts, want 512", got.Rel("X").Len())
			}
		})
	}
}

func TestEvalPreCancelledContextTouchesNothing(t *testing.T) {
	prog, edb := crossProductWorkload(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EvalCtx(ctx, prog, edb, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	requireEDBUntouched(t, edb, 4)
}

func TestIncrementalCancellationReleasesArena(t *testing.T) {
	// A cancelled propagation must leave the Incremental's shared arena
	// reusable: the next Insert on the same instance runs on the same
	// buffers. The -race CI job watches the worker pool here.
	prog := &Program{Rules: []Rule{{
		ID:   "pair",
		Head: NewHead("Pair", HV("x"), HV("y")),
		Body: []Literal{Pos(NewAtom("L", V("x"))), Pos(NewAtom("R", V("y")))},
	}}}
	edb := NewDB()
	for i := int64(0); i < 1500; i++ {
		edb.AddTuple("R", schema.NewTuple(schema.Int(i)))
	}
	inc, err := NewIncremental(prog, edb, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Each L seed joins all 1500 R facts: a large parallel round.
	batch := make([]Fact2, 0, 600)
	for i := int64(0); i < 600; i++ {
		batch = append(batch, Fact2{Pred: "L", Tuple: schema.NewTuple(schema.Int(i)),
			Prov: provenance.NewVar(provenance.Var(fmt.Sprint("l", i)))})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	if _, err := inc.Insert(ctx, batch); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want nil or context.DeadlineExceeded", err)
	}
	// Whatever the first insert managed, the arena must serve the next one.
	cs, err := inc.Insert(context.Background(), []Fact2{
		{Pred: "L", Tuple: schema.NewTuple(schema.Int(9999)), Prov: provenance.NewVar("fresh")},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + 1500 // the seed plus one Pair per R fact
	if len(cs) != want {
		t.Fatalf("follow-up insert reported %d changes, want %d", len(cs), want)
	}
	if got := inc.DB().Rel("Pair").lookup([]int{0}, schema.NewTuple(schema.Int(9999))); len(got) != 1500 {
		t.Fatalf("follow-up insert derived %d pairs, want 1500", len(got))
	}
}
