package datalog

import (
	"context"
	"testing"

	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

// TestBatchedInsertDuplicateTuple pins the batched-seed semantics: when one
// Insert batch carries the same tuple twice with distinct tokens, both
// tokens must propagate (regression: the second merge used to overwrite
// the first's delta, so derived facts lost the earlier derivation and a
// later DeleteBase of the second token killed facts the first still
// supported).
func TestBatchedInsertDuplicateTuple(t *testing.T) {
	prog := &Program{Rules: []Rule{
		{ID: "c", Head: NewHead("D", HV("x")),
			Body: []Literal{Pos(NewAtom("E", V("x")))}},
	}}
	tu := schema.NewTuple(schema.Int(1))
	batched, err := NewIncremental(prog, NewDB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := batched.Insert(context.Background(), []Fact2{
		{Pred: "E", Tuple: tu, Prov: provenance.NewVar("t1")},
		{Pred: "E", Tuple: tu, Prov: provenance.NewVar("t2")},
	}); err != nil {
		t.Fatal(err)
	}
	sequential, err := NewIncremental(prog, NewDB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range []provenance.Var{"t1", "t2"} {
		if _, err := sequential.Insert(context.Background(), []Fact2{{Pred: "E", Tuple: tu, Prov: provenance.NewVar(tok)}}); err != nil {
			t.Fatal(err)
		}
	}
	bf, _ := batched.DB().Rel("D").Get(tu)
	sf, _ := sequential.DB().Rel("D").Get(tu)
	if !bf.Prov.Equal(sf.Prov) {
		t.Fatalf("batched derived provenance %s != sequential %s", bf.Prov, sf.Prov)
	}
	if want := "t1 + t2"; bf.Prov.String() != want {
		t.Fatalf("derived provenance = %s, want %s", bf.Prov, want)
	}
	// Killing t2 must leave the fact derivable via t1 on both engines.
	batched.DeleteBase([]provenance.Var{"t2"})
	if !batched.DB().Rel("D").Contains(tu) {
		t.Fatal("fact lost after killing one of two supporting tokens")
	}
}
