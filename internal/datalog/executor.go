package datalog

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

// This file is the parallel stratum executor: the machinery that fires one
// round's jobs over a frozen database, folds the buffered head facts into
// their relations shard by shard, and reports changes deterministically.
//
// Three costs dominated the old per-round implementation and made
// parallelism a net loss on small machines (BenchmarkParallelStratum:
// workers=2/4/8 ~40% slower than workers=1 on one core):
//
//   - one goroutine per job per round, re-spawned every round of the
//     fixpoint;
//   - per-round allocation of every emission buffer, group map, and result
//     slice, discarded at the round barrier;
//   - a serial per-emission regrouping pass on the coordinator between the
//     probe and merge barriers.
//
// The executor replaces all three: a worker pool spawned once per fixpoint
// (coordinator participates, so sequential rounds cost nothing), an arena of
// buffers reused across rounds (and across consecutive incremental
// fixpoints), and grouping by job — every job is one rule, so all its
// emissions share the rule's head shard and whole buffers are handed to the
// merge phase without copying. An adaptive cost gate sizes the worker count
// from the round's estimated probe work, so tiny deltas run on the plain
// sequential path automatically.

// parallelGrain is the estimated probe work (input facts enumerated at the
// first plan step) one worker share should amortize the round barriers
// over. Rounds estimated below two grains run sequentially under the
// automatic setting; larger rounds get one worker per grain, capped at the
// resolved Parallelism.
const parallelGrain = 1024

// chunkMin is the smallest delta slice worth splitting into concurrent
// chunks when a round has fewer jobs than workers.
const chunkMin = 256

// AdaptiveWorkers resolves Options.Parallelism against a round's estimated
// probe work (see parallelGrain): explicit settings are honored as-is
// (positive taken literally, negative forcing sequential), while the
// automatic setting (0) picks min(runtime.NumCPU(), est/parallelGrain)
// workers and degrades to the sequential path — never below it — when the
// round is too small for the snapshot and merge barriers to pay.
func AdaptiveWorkers(parallelism, est int) int {
	w := EffectiveParallelism(parallelism)
	if parallelism != 0 || w <= 1 {
		return w
	}
	if est < 2*parallelGrain {
		return 1
	}
	if g := est / parallelGrain; g < w {
		return g
	}
	return w
}

// emission is one buffered head fact produced by a parallel firing. The
// head predicate is implicit: a job fires one rule, so a whole buffer
// belongs to that rule's head shard. key is the tuple's storage key when
// the emission came through a streaming pipeline (which already encoded
// it), and "" from the materialized path, whose merge re-derives it via
// Tuple.Key. (An empty head tuple also keys to "", which is harmless: both
// branches merge identically under that key.)
type emission struct {
	key   string
	tuple schema.Tuple
	prov  provenance.Poly
}

// canSkipParallel reports whether a parallel probe phase may suppress an
// emission because the frozen pre-round fact already subsumes it. Stored
// annotations only grow monotonically when no truncation is in play
// (Poly.Truncate keeps lowest-degree monomials, so a later Add can drop
// exactly the monomials that justified the skip); exact mode always
// accumulates and never skips.
func canSkipParallel(opts Options) bool {
	return !opts.Provenance || (!opts.Exact && opts.MaxMonomials == 0)
}

// mergeSink is the sequential streaming sink: every emitted head fact is
// merged into the live relation immediately, so a later rule of the same
// round sees facts merged by an earlier one — the materialized sequential
// schedule, preserved exactly. Its skip check consults the live relation,
// so it is exact in every mode.
type mergeSink struct {
	rel    *Rel
	pred   string
	opts   Options
	keep   bool // head pred can seed further rounds (need filter)
	absorb func(mergeResult)
}

func (s *mergeSink) skip(key []byte, prov provenance.Poly) bool {
	f := s.rel.facts[string(key)]
	if f == nil {
		return false
	}
	if !s.opts.Provenance {
		return true
	}
	if s.opts.Exact {
		return false
	}
	return f.Prov.Subsumes(prov)
}

func (s *mergeSink) emit(key []byte, t schema.Tuple, prov provenance.Poly) {
	mr, changed := mergeKeyed(s.rel, string(key), t, prov, s.opts)
	if changed && s.keep {
		mr.pred = s.pred
		s.absorb(mr)
	}
}

// bufSink is the parallel streaming sink: one per probe-phase job, appending
// emissions (with their pre-encoded keys) to the job's arena buffer. Its
// skip check reads the frozen pre-round relation — safe because phase-1
// workers only read and merges happen after the phase barrier — and is
// gated by canSkipParallel.
type bufSink struct {
	rel     *Rel
	buf     []emission
	opts    Options
	canSkip bool
}

func (s *bufSink) skip(key []byte, prov provenance.Poly) bool {
	if !s.canSkip {
		return false
	}
	f := s.rel.facts[string(key)]
	if f == nil {
		return false
	}
	if !s.opts.Provenance {
		return true
	}
	return f.Prov.Subsumes(prov)
}

func (s *bufSink) emit(key []byte, t schema.Tuple, prov provenance.Poly) {
	s.buf = append(s.buf, emission{key: string(key), tuple: t, prov: prov})
}

// predGroup collects, per head shard, the emission buffers of the jobs that
// derived into it this round, in job order.
type predGroup struct {
	pred    string
	rel     *Rel
	bufs    [][]emission
	n       int // total emissions across bufs
	results []mergeResult
}

// roundArena holds the buffers a round needs, reused across rounds of a
// fixpoint — and, when owned by an Incremental, across consecutive
// fixpoints — so steady-state rounds allocate nothing but the facts they
// derive. Buffers are cleared (not just truncated) after each round so the
// arena never pins the previous round's tuples or annotations.
type roundArena struct {
	buffers [][]emission
	errs    []error
	groups  map[string]*predGroup
	order   []*predGroup
	free    []*predGroup
	jobs    []job // chunk-partitioned job list, when partitioning applies
}

// poolTask is one round phase dispatched on the worker pool: fn applied to
// every index in [0, n), pulled off a shared counter so long and short jobs
// balance across workers.
type poolTask struct {
	n    int
	fn   func(int)
	next atomic.Int64
	wg   sync.WaitGroup
}

func (t *poolTask) run() {
	for {
		i := int(t.next.Add(1)) - 1
		if i >= t.n {
			return
		}
		t.fn(i)
	}
}

// workerPool is a fixed set of helper goroutines, spawned once per fixpoint
// and reused by every parallel phase of every round. The coordinator always
// participates in a dispatch, so a pool of w-1 helpers yields w workers and
// a sequential fixpoint never spawns at all.
type workerPool struct {
	tasks chan *poolTask
	size  int
}

func newWorkerPool(helpers int) *workerPool {
	p := &workerPool{tasks: make(chan *poolTask), size: helpers}
	for i := 0; i < helpers; i++ {
		go func() {
			for t := range p.tasks {
				t.run()
				t.wg.Done()
			}
		}()
	}
	return p
}

// dispatch runs fn(0..n-1) on the coordinator plus up to helpers pool
// workers, returning when every index has been processed.
func (p *workerPool) dispatch(n, helpers int, fn func(int)) {
	if helpers > n-1 {
		helpers = n - 1
	}
	if helpers > p.size {
		helpers = p.size
	}
	t := &poolTask{n: n, fn: fn}
	t.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		p.tasks <- t
	}
	t.run()
	t.wg.Wait()
}

func (p *workerPool) close() { close(p.tasks) }

// roundExec drives the rounds of one fixpoint: it owns the (lazily started)
// worker pool and borrows an arena from the caller, which may outlive it.
type roundExec struct {
	max   int  // resolved worker cap (EffectiveParallelism)
	auto  bool // Parallelism == 0: size workers from round cost
	arena *roundArena
	pool  *workerPool
	// scratch holds the sequential path's reusable pipeline buffers; only
	// the coordinator goroutine touches it.
	scratch pipeScratch
}

// newRoundExec prepares an executor for one fixpoint. arena may be nil (a
// private arena is created) or shared by the caller across fixpoints.
// Callers must close() the executor when the fixpoint ends; the arena
// survives it.
func newRoundExec(opts Options, arena *roundArena) *roundExec {
	if arena == nil {
		arena = &roundArena{}
	}
	return &roundExec{
		max:   EffectiveParallelism(opts.Parallelism),
		auto:  opts.Parallelism == 0,
		arena: arena,
	}
}

// close stops the worker pool, if one was started. The arena is left intact
// for the next fixpoint.
func (re *roundExec) close() {
	if re.pool != nil {
		re.pool.close()
		re.pool = nil
	}
}

// jobCost estimates a job's probe work: the number of input facts its first
// plan step enumerates (the delta slice for semi-naive jobs, the scanned
// extent for naive ones). It is a scheduling heuristic, not a cardinality
// estimate — joins can blow past it — but it separates "a handful of delta
// tuples" from "re-probe the corpus" reliably, which is all the cost gate
// needs.
func jobCost(j *job, db *DB) int {
	if j.delta != nil {
		return len(j.delta)
	}
	if len(j.pln.steps) > 0 {
		if st := &j.pln.steps[0]; st.kind == stepScan {
			return db.Rel(st.pred).Len()
		}
	}
	return 1
}

// partitionJobs splits large delta jobs into chunks when the round has
// fewer schedulable jobs than workers, so one dominant rule no longer
// serializes the round. Chunks of one job stay adjacent, preserving the
// deterministic (job, emission) merge order; annotation folding is
// order-insensitive (canonical witness-set union), so splitting never
// changes results. The returned slice aliases the arena and is valid until
// the next partitionJobs call on the same executor.
func partitionJobs(ar *roundArena, jobs []job, workers int) []job {
	if workers <= 1 || len(jobs) >= 2*workers {
		return jobs
	}
	splittable := false
	for i := range jobs {
		if len(jobs[i].delta) >= 2*chunkMin {
			splittable = true
			break
		}
	}
	if !splittable {
		return jobs
	}
	// Aim for ~2 chunks per worker in total so the shared-counter schedule
	// can balance uneven chunks.
	perJob := (2*workers + len(jobs) - 1) / len(jobs)
	out := ar.jobs[:0]
	for i := range jobs {
		j := jobs[i]
		if len(j.delta) < 2*chunkMin || perJob <= 1 {
			out = append(out, j)
			continue
		}
		chunks := len(j.delta) / chunkMin
		if chunks > perJob {
			chunks = perJob
		}
		size := (len(j.delta) + chunks - 1) / chunks
		for start := 0; start < len(j.delta); start += size {
			end := start + size
			if end > len(j.delta) {
				end = len(j.delta)
			}
			cj := j
			cj.delta = j.delta[start:end]
			out = append(out, cj)
		}
	}
	ar.jobs = out
	return out
}

// runRound fires the round's jobs, folds the emitted head facts into their
// shards, and reports each effective change through absorb (in a
// deterministic order, on the coordinator goroutine).
//
// Sequentially (resolved workers <= 1, including every round the adaptive
// gate deems too small) each firing merges eagerly, so a later rule sees
// facts merged by an earlier rule in the same round — the seed engine's
// behavior, preserved exactly. Parallel rounds run in three phases:
//
//  1. Probe: jobs enumerate joins against a frozen database concurrently on
//     the fixpoint's worker pool, buffering their emissions in the arena.
//     Relations are only read; the per-relation lock (relIndex.mu) guards
//     lazy index builds.
//  2. Merge: each job's buffer is handed whole to its rule's head shard
//     (predGroup), and the shards merge concurrently on the same pool —
//     one task per shard, so every shard sees its merges in deterministic
//     (job, emission) order and no two workers touch the same Rel.
//  3. Absorb: the coordinator walks the shards in first-appearance order
//     and feeds each change to absorb, which does the (shared, unlocked)
//     delta and change-log bookkeeping.
//
// The resulting fixpoint and provenance polynomials are therefore
// independent of goroutine scheduling. Facts a parallel round withholds
// from its sibling jobs are still in the round's delta, so the semi-naive
// loop derives everything the eager schedule would — at worst one round
// later.
//
// need, when non-nil, names the predicates whose changes can seed further
// rounds (they appear positively in some body of the stratum); changes to
// any other head predicate are merged but not reported to absorb, so dead
// delta maps are never built. nil keeps every change (incremental
// evaluation must observe all of them for its change log).
func (re *roundExec) runRound(ctx context.Context, jobs []job, db *DB, opts Options, need map[string]bool, absorb func(mergeResult)) error {
	if len(jobs) == 0 {
		return nil
	}
	if opts.Stats != nil {
		opts.Stats.Rounds.Add(1)
	}
	keep := func(pred string) bool { return need == nil || need[pred] }
	est := 0
	for i := range jobs {
		est += jobCost(&jobs[i], db)
	}
	workers := re.max
	if re.auto {
		workers = AdaptiveWorkers(0, est)
		if workers > re.max {
			workers = re.max
		}
	}
	if workers > 1 {
		jobs = partitionJobs(re.arena, jobs, workers)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if opts.Stats != nil {
		opts.Stats.WorkersUsed.Add(int64(workers))
		if workers > 1 {
			opts.Stats.ParallelRounds.Add(1)
		}
	}
	if workers <= 1 {
		if opts.Materialized {
			emit := func(pred string, t schema.Tuple, p provenance.Poly) {
				mr, changed := merge(db.MutableRel(pred), t, p, opts)
				if changed && keep(pred) {
					mr.pred = pred
					absorb(mr)
				}
			}
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					return err
				}
				j := &jobs[i]
				if err := fireRule(j.rule, j.pln, db, j.delta, opts, emit); err != nil {
					return err
				}
			}
			return nil
		}
		sink := mergeSink{opts: opts, absorb: absorb}
		for i := range jobs {
			if err := ctx.Err(); err != nil {
				return err
			}
			j := &jobs[i]
			sink.pred = j.rule.Head.Pred
			sink.rel = db.MutableRel(sink.pred)
			sink.keep = keep(sink.pred)
			if err := fireRuleStream(ctx, j.rule, j.pln, db, j.delta, opts, &sink, &re.scratch); err != nil {
				return err
			}
		}
		return nil
	}
	if re.pool == nil {
		re.pool = newWorkerPool(re.max - 1)
	}
	ar := re.arena
	for len(ar.buffers) < len(jobs) {
		ar.buffers = append(ar.buffers, nil)
		ar.errs = append(ar.errs, nil)
	}
	// Phase 1: probe.
	if opts.Materialized {
		re.pool.dispatch(len(jobs), workers-1, func(i int) {
			if err := ctx.Err(); err != nil {
				ar.errs[i] = err
				return
			}
			j := &jobs[i]
			buf := ar.buffers[i]
			ar.errs[i] = fireRule(j.rule, j.pln, db, j.delta, opts, func(_ string, t schema.Tuple, p provenance.Poly) {
				buf = append(buf, emission{tuple: t, prov: p})
			})
			ar.buffers[i] = buf
		})
	} else {
		// Head relations are resolved on the coordinator: workers must not
		// race on the db.rels map, and the sinks' frozen-state skip checks
		// read these extents concurrently (reads only — merges wait for the
		// phase barrier).
		canSkip := canSkipParallel(opts)
		rels := make([]*Rel, len(jobs))
		for i := range jobs {
			rels[i] = db.Rel(jobs[i].rule.Head.Pred)
		}
		re.pool.dispatch(len(jobs), workers-1, func(i int) {
			if err := ctx.Err(); err != nil {
				ar.errs[i] = err
				return
			}
			j := &jobs[i]
			sink := bufSink{rel: rels[i], buf: ar.buffers[i], opts: opts, canSkip: canSkip}
			ar.errs[i] = fireRuleStream(ctx, j.rule, j.pln, db, j.delta, opts, &sink, nil)
			ar.buffers[i] = sink.buf
		})
	}
	for _, err := range ar.errs[:len(jobs)] {
		if err != nil {
			ar.reset(len(jobs))
			return err
		}
	}
	if opts.Stats != nil {
		live := int64(0)
		for i := range jobs {
			live += int64(len(ar.buffers[i]))
		}
		atomicMax(&opts.Stats.PeakLive, live)
	}
	// Phase 2: hand each job's buffer to its head shard and merge the
	// shards concurrently. The mutable (COW-cloned if snapshot-shared)
	// extents are resolved on the coordinator before the merge tasks start:
	// a clone swaps the db.rels map entry, which must not race with sibling
	// shards.
	if ar.groups == nil {
		ar.groups = map[string]*predGroup{}
	}
	for i := range jobs {
		if len(ar.buffers[i]) == 0 {
			continue
		}
		pred := jobs[i].rule.Head.Pred
		g := ar.groups[pred]
		if g == nil {
			if n := len(ar.free); n > 0 {
				g = ar.free[n-1]
				ar.free = ar.free[:n-1]
			} else {
				g = &predGroup{}
			}
			g.pred = pred
			g.rel = db.MutableRel(pred)
			ar.groups[pred] = g
			ar.order = append(ar.order, g)
		}
		g.bufs = append(g.bufs, ar.buffers[i])
		g.n += len(ar.buffers[i])
	}
	mergeGroup := func(g *predGroup) {
		keepPred := keep(g.pred)
		g.rel.reserve(g.n)
		for _, buf := range g.bufs {
			for i := range buf {
				e := &buf[i]
				// Re-run the chase redundancy check against the merged
				// state: the emit-time check saw only the frozen pre-round
				// database, so a subsumer merged earlier this round (always
				// into this same shard) would be missed.
				if opts.ChaseSubsumption && e.tuple.HasLabeledNull() && subsumedByExisting(g.rel, e.tuple) {
					continue
				}
				var mr mergeResult
				var changed bool
				if e.key != "" {
					mr, changed = mergeKeyed(g.rel, e.key, e.tuple, e.prov, opts)
				} else {
					mr, changed = merge(g.rel, e.tuple, e.prov, opts)
				}
				if changed && keepPred {
					mr.pred = g.pred
					g.results = append(g.results, mr)
				}
			}
		}
	}
	if len(ar.order) == 1 {
		mergeGroup(ar.order[0])
	} else if len(ar.order) > 1 {
		re.pool.dispatch(len(ar.order), workers-1, func(i int) {
			mergeGroup(ar.order[i])
		})
	}
	// Phase 3: absorb on the coordinator, in deterministic shard order.
	for _, g := range ar.order {
		for i := range g.results {
			absorb(g.results[i])
		}
	}
	ar.reset(len(jobs))
	return nil
}

// reset clears the arena's per-round state, keeping capacity but dropping
// every reference so tuples and annotations from this round are not pinned
// into the next.
func (ar *roundArena) reset(njobs int) {
	for i := 0; i < njobs && i < len(ar.buffers); i++ {
		b := ar.buffers[i]
		clear(b)
		ar.buffers[i] = b[:0]
		ar.errs[i] = nil
	}
	for _, g := range ar.order {
		delete(ar.groups, g.pred)
		clear(g.results)
		clear(g.bufs)
		*g = predGroup{results: g.results[:0], bufs: g.bufs[:0]}
		ar.free = append(ar.free, g)
	}
	ar.order = ar.order[:0]
	clear(ar.jobs)
	ar.jobs = ar.jobs[:0]
}

// deltaList flattens one predicate's delta map into the arena-free slice
// form jobs consume: slices are cheaper to scan than maps, chunkable by
// subslicing, and give every probe of the same delta a consistent order
// within the round.
// deltaList flattens a round's pending delta in storage-key order, so the
// enumeration order of every downstream join — and with it the change log
// and the chunk boundaries of partitionJobs — is identical across runs
// instead of following map iteration order.
func deltaList(m map[string]deltaFact) []deltaFact {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]deltaFact, 0, len(m))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}
