// Package datalog implements the rule language and evaluation engine that
// ORCHESTRA compiles schema mappings into. It supports recursive datalog
// with stratified negation, comparison builtins, Skolem-function head terms
// (producing labeled nulls for existentials), and provenance-annotated
// semi-naive evaluation.
//
// Provenance mode computes, for every derived tuple, a polynomial over the
// provenance tokens of the base (EDB) tuples and the rule/mapping tokens,
// kept in the B[X] witness-set quotient (provenance.Poly.Linearize). B[X]
// is a finite lattice over any finite token set, so recursive programs —
// including the mapping cycles created by ORCHESTRA's bidirectional peer
// mappings — reach a fixpoint. Evaluation of the resulting polynomials
// under idempotent semirings (boolean derivability, trust, security) is
// exactly as in full N[X]; see internal/provenance.
package datalog

import (
	"fmt"
	"strings"

	"orchestra/internal/schema"
)

// Term is a variable or a constant appearing in an atom.
type Term struct {
	// Name is the variable name; empty for constants.
	Name string
	// Value is the constant value; meaningful only when Name is empty.
	Value schema.Value
}

// V constructs a variable term.
func V(name string) Term { return Term{Name: name} }

// C constructs a constant term.
func C(v schema.Value) Term { return Term{Value: v} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Name != "" }

// String renders the term.
func (t Term) String() string {
	if t.IsVar() {
		return t.Name
	}
	return t.Value.String()
}

// Atom is a predicate applied to terms, e.g. S(oid, pid, seq).
type Atom struct {
	Pred  string
	Terms []Term
}

// NewAtom builds an atom.
func NewAtom(pred string, terms ...Term) Atom { return Atom{Pred: pred, Terms: terms} }

// String renders the atom.
func (a Atom) String() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ", ") + ")"
}

// CmpOp is a comparison operator for builtin literals.
type CmpOp uint8

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "?"
	}
}

// Literal is a body element: a positive or negated atom, or a builtin
// comparison between two terms.
type Literal struct {
	Atom    Atom
	Negated bool
	// Builtin, when non-nil, makes this literal a comparison; Atom is
	// ignored.
	Builtin *Comparison
}

// Comparison is a builtin literal Left op Right.
type Comparison struct {
	Op          CmpOp
	Left, Right Term
}

// Pos constructs a positive body literal.
func Pos(a Atom) Literal { return Literal{Atom: a} }

// Neg constructs a negated body literal.
func Neg(a Atom) Literal { return Literal{Atom: a, Negated: true} }

// Cmp constructs a builtin comparison literal.
func Cmp(left Term, op CmpOp, right Term) Literal {
	return Literal{Builtin: &Comparison{Op: op, Left: left, Right: right}}
}

// String renders the literal.
func (l Literal) String() string {
	if l.Builtin != nil {
		return fmt.Sprintf("%s %s %s", l.Builtin.Left, l.Builtin.Op, l.Builtin.Right)
	}
	if l.Negated {
		return "¬" + l.Atom.String()
	}
	return l.Atom.String()
}

// Skolem is a head term f(args...): at firing time it produces the labeled
// null whose term is the canonical encoding of f applied to the bound
// arguments. It implements the existential variables of tgd mappings.
type Skolem struct {
	Fn   string
	Args []Term
}

// HeadTerm is one position of a rule head: either a plain term or a Skolem
// application.
type HeadTerm struct {
	Term   Term
	Skolem *Skolem
}

// HV is a head variable term.
func HV(name string) HeadTerm { return HeadTerm{Term: V(name)} }

// HC is a head constant term.
func HC(v schema.Value) HeadTerm { return HeadTerm{Term: C(v)} }

// HSkolem is a Skolem-function head term.
func HSkolem(fn string, args ...Term) HeadTerm {
	return HeadTerm{Skolem: &Skolem{Fn: fn, Args: args}}
}

// String renders the head term.
func (h HeadTerm) String() string {
	if h.Skolem != nil {
		parts := make([]string, len(h.Skolem.Args))
		for i, a := range h.Skolem.Args {
			parts[i] = a.String()
		}
		return h.Skolem.Fn + "(" + strings.Join(parts, ",") + ")"
	}
	return h.Term.String()
}

// Head is the rule head: a predicate with head terms.
type Head struct {
	Pred  string
	Terms []HeadTerm
}

// NewHead builds a rule head.
func NewHead(pred string, terms ...HeadTerm) Head { return Head{Pred: pred, Terms: terms} }

// String renders the head.
func (h Head) String() string {
	parts := make([]string, len(h.Terms))
	for i, t := range h.Terms {
		parts[i] = t.String()
	}
	return h.Pred + "(" + strings.Join(parts, ", ") + ")"
}

// Rule is head :- body. ProvToken, when non-empty, is multiplied into the
// provenance of every firing; ORCHESTRA uses it to record which mapping
// produced a derivation.
type Rule struct {
	ID        string
	Head      Head
	Body      []Literal
	ProvToken string
	// ProvNeutral marks an auxiliary rule whose derived facts always carry
	// the annotation 1 regardless of the body facts joined: the firing still
	// participates in the fixpoint (deltas, negation membership) but never
	// contributes body provenance to its head. The magic-sets rewrite uses it
	// for magic/demand predicates, whose facts gate evaluation but must not
	// pollute the provenance polynomials of real answers.
	ProvNeutral bool
}

// String renders the rule.
func (r Rule) String() string {
	parts := make([]string, len(r.Body))
	for i, l := range r.Body {
		parts[i] = l.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ")
}

// Program is a set of rules evaluated together.
type Program struct {
	Rules []Rule
}

// IDBPreds returns the set of predicates defined by some rule head.
func (p *Program) IDBPreds() map[string]bool {
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	return idb
}

// Validate checks range restriction (safety): every head variable and every
// variable in a negated or builtin literal must occur in a positive body
// atom.
func (p *Program) Validate() error {
	for _, r := range p.Rules {
		bound := map[string]bool{}
		for _, l := range r.Body {
			if l.Builtin == nil && !l.Negated {
				for _, t := range l.Atom.Terms {
					if t.IsVar() {
						bound[t.Name] = true
					}
				}
			}
		}
		check := func(t Term, where string) error {
			if t.IsVar() && !bound[t.Name] {
				return fmt.Errorf("datalog: rule %q: unsafe variable %s in %s", r, t.Name, where)
			}
			return nil
		}
		for _, ht := range r.Head.Terms {
			if ht.Skolem != nil {
				for _, a := range ht.Skolem.Args {
					if err := check(a, "skolem argument"); err != nil {
						return err
					}
				}
				continue
			}
			if err := check(ht.Term, "head"); err != nil {
				return err
			}
		}
		for _, l := range r.Body {
			if l.Builtin != nil {
				if err := check(l.Builtin.Left, "builtin"); err != nil {
					return err
				}
				if err := check(l.Builtin.Right, "builtin"); err != nil {
					return err
				}
			} else if l.Negated {
				for _, t := range l.Atom.Terms {
					if err := check(t, "negated atom"); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// Stratify partitions the program's rules into strata such that negation
// only refers to strictly lower strata. It returns an error if a predicate
// depends negatively on itself through a cycle.
func (p *Program) Stratify() ([][]Rule, error) {
	idb := p.IDBPreds()
	// stratum number per IDB predicate, computed by the standard
	// iterate-to-fixpoint algorithm.
	stratum := map[string]int{}
	for pred := range idb {
		stratum[pred] = 0
	}
	n := len(idb)
	for iter := 0; ; iter++ {
		changed := false
		for _, r := range p.Rules {
			h := r.Head.Pred
			for _, l := range r.Body {
				if l.Builtin != nil || !idb[l.Atom.Pred] {
					continue
				}
				req := stratum[l.Atom.Pred]
				if l.Negated {
					req++
				}
				if stratum[h] < req {
					stratum[h] = req
					changed = true
				}
			}
		}
		if !changed {
			break
		}
		if iter > n+1 {
			return nil, fmt.Errorf("datalog: program is not stratifiable (negative cycle)")
		}
	}
	maxS := 0
	for _, s := range stratum {
		if s > maxS {
			maxS = s
		}
	}
	out := make([][]Rule, maxS+1)
	for _, r := range p.Rules {
		s := stratum[r.Head.Pred]
		out[s] = append(out[s], r)
	}
	return out, nil
}
