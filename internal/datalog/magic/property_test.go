package magic

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"orchestra/internal/datalog"
	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

// The central guarantee of the subsystem: for every program, database, and
// goal binding pattern, goal-directed evaluation returns exactly the tuples
// AND exactly the provenance polynomials of the full fixpoint — across
// randomized recursive programs, stratified negation, comparisons, repeated
// variables, and both SIP strategies.
func TestGoalDirectedEquivalenceProperty(t *testing.T) {
	trials := 120
	if testing.Short() {
		trials = 30
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 7919))
		edb, domain := randomEDB(rng)
		rules := randomProgram(rng)
		goal := randomGoal(rng, domain)
		opts := datalog.Options{Provenance: true}
		if rng.Intn(2) == 0 {
			opts.Parallelism = 1 + rng.Intn(4)
		}
		ctx := context.Background()

		want, fullErr := EvalGoalFull(ctx, rules, goal, edb, opts)
		// The same full fixpoint through the materialized reference
		// evaluator: the streaming pipelines must agree under the rewritten
		// programs too, not just on hand-written ones.
		matOpts := opts
		matOpts.Materialized = true
		matWant, matErr := EvalGoalFull(ctx, rules, goal, edb, matOpts)
		if (matErr != nil) != (fullErr != nil) {
			t.Fatalf("trial %d: error divergence: streaming %v, materialized %v\nrules: %v\ngoal: %v",
				trial, fullErr, matErr, rules, goal)
		}
		if fullErr == nil && !sameAnswers(want, matWant) {
			t.Fatalf("trial %d: streaming full fixpoint diverges from materialized\ngoal: %v\nrules: %s\n got: %v\nwant: %v",
				trial, goal, formatRules(rules), want, matWant)
		}
		for _, sip := range []SIP{LeftToRight, MostBound} {
			got, _, err := EvalGoal(ctx, rules, goal, edb, opts, Options{SIP: sip})
			if (err != nil) != (fullErr != nil) {
				t.Fatalf("trial %d sip %s: error divergence: goal-directed %v, full %v\nrules: %v\ngoal: %v",
					trial, sip, err, fullErr, rules, goal)
			}
			if fullErr != nil {
				continue
			}
			if !sameAnswers(got, want) {
				t.Fatalf("trial %d sip %s: answers diverge\ngoal: %v\nrules: %s\n got: %v\nwant: %v",
					trial, sip, goal, formatRules(rules), got, want)
			}
			matGot, _, err := EvalGoal(ctx, rules, goal, edb, matOpts, Options{SIP: sip})
			if err != nil {
				t.Fatalf("trial %d sip %s: materialized goal-directed error: %v", trial, sip, err)
			}
			if !sameAnswers(matGot, got) {
				t.Fatalf("trial %d sip %s: materialized goal-directed diverges from streaming\ngoal: %v\nrules: %s\n got: %v\nwant: %v",
					trial, sip, goal, formatRules(rules), got, matGot)
			}
		}
	}
}

func sameAnswers(got, want []datalog.Fact) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if !got[i].Tuple.Equal(want[i].Tuple) || !got[i].Prov.Equal(want[i].Prov) {
			return false
		}
	}
	return true
}

func formatRules(rules []datalog.Rule) string {
	s := ""
	for _, r := range rules {
		s += "\n  " + r.String()
	}
	return s
}

// randomEDB populates EDB predicates e0..e2 (arity 2) over a small integer
// domain; every fact carries its own provenance token. Sizes are kept tiny
// on purpose: unbounded B[X] witness sets grow with the number of distinct
// derivations, and the equivalence check needs exact (untruncated)
// polynomials on both paths.
func randomEDB(rng *rand.Rand) (*datalog.DB, []schema.Value) {
	db := datalog.NewDB()
	dom := make([]schema.Value, 3+rng.Intn(2))
	for i := range dom {
		dom[i] = schema.Int(int64(i))
	}
	for p := 0; p < 3; p++ {
		pred := fmt.Sprintf("e%d", p)
		db.Rel(pred) // keep the extent present even if no facts land
		for i, n := 0, 3+rng.Intn(6); i < n; i++ {
			tu := schema.NewTuple(dom[rng.Intn(len(dom))], dom[rng.Intn(len(dom))])
			db.Add(pred, tu, provenance.NewVar(provenance.Var(fmt.Sprintf("t%s.%d", pred, i))))
		}
	}
	return db, dom
}

var varPool = []string{"x", "y", "z", "w"}

// randomAtom builds an atom over pred with arity 2: arguments are variables
// from the pool (possibly repeated) or domain constants.
func randomAtom(rng *rand.Rand, pred string, dom []schema.Value) datalog.Atom {
	terms := make([]datalog.Term, 2)
	for i := range terms {
		if rng.Intn(5) == 0 {
			terms[i] = datalog.C(dom[rng.Intn(len(dom))])
		} else {
			terms[i] = datalog.V(varPool[rng.Intn(len(varPool))])
		}
	}
	return datalog.NewAtom(pred, terms...)
}

// randomProgram builds a stratified-by-construction random program:
//
//	layer A: p0, p1 — positive (possibly mutually recursive) rules over
//	         EDB preds and layer-A preds;
//	layer B: q0 — rules over EDB and layer A, optionally with a negated
//	         layer-A literal and a comparison, variables bound positively.
func randomProgram(rng *rand.Rand) []datalog.Rule {
	var rules []datalog.Rule
	bodyPreds := []string{"e0", "e1", "e2", "p0", "p1"}
	addRule := func(id, head string, dom []schema.Value, allowNeg bool) {
		n := 1 + rng.Intn(2)
		var body []datalog.Literal
		seenVars := map[string]bool{}
		idbUsed := false // at most one IDB literal per body keeps witness sets small
		for i := 0; i < n; i++ {
			pred := bodyPreds[rng.Intn(len(bodyPreds))]
			if (pred == "p0" || pred == "p1") && idbUsed {
				pred = fmt.Sprintf("e%d", rng.Intn(3))
			}
			if pred == "p0" || pred == "p1" {
				idbUsed = true
			}
			a := randomAtom(rng, pred, dom)
			body = append(body, datalog.Pos(a))
			for _, tm := range a.Terms {
				if tm.IsVar() {
					seenVars[tm.Name] = true
				}
			}
		}
		var vars []string
		for _, v := range varPool {
			if seenVars[v] {
				vars = append(vars, v)
			}
		}
		if len(vars) == 0 {
			return // all-constant body makes a dull rule; skip
		}
		if allowNeg && rng.Intn(2) == 0 {
			// Negate a layer-A atom whose variables are all positively bound.
			neg := datalog.NewAtom(fmt.Sprintf("p%d", rng.Intn(2)),
				datalog.V(vars[rng.Intn(len(vars))]),
				datalog.V(vars[rng.Intn(len(vars))]))
			body = append(body, datalog.Neg(neg))
		}
		if rng.Intn(3) == 0 {
			ops := []datalog.CmpOp{datalog.OpEq, datalog.OpNe, datalog.OpLt, datalog.OpLe, datalog.OpGt, datalog.OpGe}
			body = append(body, datalog.Cmp(
				datalog.V(vars[rng.Intn(len(vars))]),
				ops[rng.Intn(len(ops))],
				datalog.C(dom[rng.Intn(len(dom))])))
		}
		head1 := datalog.HV(vars[rng.Intn(len(vars))])
		head2 := datalog.HV(vars[rng.Intn(len(vars))])
		rules = append(rules, datalog.Rule{
			ID:        id,
			Head:      datalog.Head{Pred: head, Terms: []datalog.HeadTerm{head1, head2}},
			Body:      body,
			ProvToken: "rule:" + id,
		})
	}
	dom := []schema.Value{schema.Int(0), schema.Int(1), schema.Int(2)}
	for i, n := 0, 1+rng.Intn(2); i < n; i++ {
		addRule(fmt.Sprintf("a%d", i), fmt.Sprintf("p%d", rng.Intn(2)), dom, false)
	}
	addRule("b0", "q0", dom, true)
	// Guarantee p0, p1, q0 are all defined so goals always name an IDB pred.
	for _, pred := range []string{"p0", "p1", "q0"} {
		rules = append(rules, datalog.Rule{
			ID:        "seed-" + pred,
			Head:      datalog.NewHead(pred, datalog.HV("x"), datalog.HV("y")),
			Body:      []datalog.Literal{datalog.Pos(datalog.NewAtom("e0", datalog.V("x"), datalog.V("y")))},
			ProvToken: "rule:seed-" + pred,
		})
	}
	return rules
}

// randomGoal picks a predicate (IDB or EDB) and a random binding pattern:
// constants for bound positions, variables (sometimes repeated) for free
// ones.
func randomGoal(rng *rand.Rand, dom []schema.Value) datalog.Atom {
	preds := []string{"p0", "p1", "q0", "q0", "e0"}
	pred := preds[rng.Intn(len(preds))]
	terms := make([]datalog.Term, 2)
	names := []string{"g1", "g2", "g1"} // third choice repeats g1
	for i := range terms {
		if rng.Intn(2) == 0 {
			terms[i] = datalog.C(dom[rng.Intn(len(dom))])
		} else {
			terms[i] = datalog.V(names[rng.Intn(len(names))])
		}
	}
	return datalog.NewAtom(pred, terms...)
}
