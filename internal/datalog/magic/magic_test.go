package magic

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"orchestra/internal/datalog"
	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

func str(s string) schema.Value { return schema.String(s) }

// edge builds an EDB of the given directed edges, each annotated with its
// own token so provenance is distinguishable per base fact.
func edgeDB(edges [][2]string) *datalog.DB {
	db := datalog.NewDB()
	for i, e := range edges {
		db.Add("edge", schema.NewTuple(str(e[0]), str(e[1])),
			provenance.NewVar(provenance.Var(fmt.Sprintf("e%d", i))))
	}
	return db
}

func tcRules() []datalog.Rule {
	return []datalog.Rule{
		{
			ID:   "base",
			Head: datalog.NewHead("reach", datalog.HV("x"), datalog.HV("y")),
			Body: []datalog.Literal{datalog.Pos(datalog.NewAtom("edge", datalog.V("x"), datalog.V("y")))},
		},
		{
			ID:   "step",
			Head: datalog.NewHead("reach", datalog.HV("x"), datalog.HV("y")),
			Body: []datalog.Literal{
				datalog.Pos(datalog.NewAtom("reach", datalog.V("x"), datalog.V("z"))),
				datalog.Pos(datalog.NewAtom("edge", datalog.V("z"), datalog.V("y"))),
			},
		},
	}
}

// Two disconnected components; a goal bound to the first must never demand
// the second.
var twoComponents = [][2]string{
	{"a", "b"}, {"b", "c"}, {"c", "d"},
	{"u", "v"}, {"v", "w"}, {"w", "u"},
}

func TestRewriteBoundReachability(t *testing.T) {
	edb := edgeDB(twoComponents)
	goal := datalog.NewAtom("reach", datalog.C(str("a")), datalog.V("y"))
	for _, sip := range []SIP{LeftToRight, MostBound} {
		t.Run(sip.String(), func(t *testing.T) {
			got, goalDirected, err := EvalGoal(context.Background(), tcRules(), goal, edb,
				datalog.Options{Provenance: true}, Options{SIP: sip})
			if err != nil {
				t.Fatal(err)
			}
			if !goalDirected {
				t.Fatal("rewrite unexpectedly fell back to full evaluation")
			}
			want, err := EvalGoalFull(context.Background(), tcRules(), goal, edb, datalog.Options{Provenance: true})
			if err != nil {
				t.Fatal(err)
			}
			assertSameAnswers(t, got, want)
			if len(got) != 3 { // b, c, d
				t.Fatalf("answers = %v", got)
			}
		})
	}
}

// The goal-directed fixpoint must not materialize the undemanded component:
// that is the whole point of the rewrite.
func TestRewriteDerivesOnlyDemandedFacts(t *testing.T) {
	edb := edgeDB(twoComponents)
	prog := program(tcRules(), datalog.NewAtom("reach", datalog.C(str("a")), datalog.V("y")))
	res, err := Rewrite(prog, AnswerPred, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seeded := edb.Snapshot()
	seeded.Set(res.SeedPred, schema.Tuple{}, provenance.One())
	out, err := datalog.Eval(res.Program, seeded, datalog.Options{Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	reach := out.Rel(adornedName("reach", "bf"))
	if reach.Len() != 3 {
		t.Fatalf("adorned reach extent = %d facts, want 3 (a->b,c,d)", reach.Len())
	}
	for _, f := range reach.Facts() {
		if !f.Tuple[0].Equal(str("a")) {
			t.Fatalf("undemanded fact derived: %v", f.Tuple)
		}
	}
	// Full evaluation derives the whole transitive closure of both
	// components: 6 pairs on the a->b->c->d path, 9 on the u/v/w cycle.
	full, err := datalog.Eval(&datalog.Program{Rules: tcRules()}, edb, datalog.Options{Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	if n := full.Rel("reach").Len(); n != 15 {
		t.Fatalf("full closure = %d facts, want 15", n)
	}
}

// Magic (demand) facts must be provenance-neutral: annotated 1, never a
// product of the prefix they were derived through.
func TestMagicFactsCarryNoProvenance(t *testing.T) {
	edb := edgeDB(twoComponents)
	prog := program(tcRules(), datalog.NewAtom("reach", datalog.C(str("a")), datalog.V("y")))
	res, err := Rewrite(prog, AnswerPred, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seeded := edb.Snapshot()
	seeded.Set(res.SeedPred, schema.Tuple{}, provenance.One())
	out, err := datalog.Eval(res.Program, seeded, datalog.Options{Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, pred := range out.Preds() {
		if !strings.HasPrefix(pred, "magic@") {
			continue
		}
		for _, f := range out.Rel(pred).Facts() {
			if !f.Prov.IsOne() {
				t.Fatalf("magic fact %s%v carries provenance %v", pred, f.Tuple, f.Prov)
			}
		}
	}
}

func TestRewriteStratifiedNegation(t *testing.T) {
	// unreachable(x) :- node(x), !reach@ff... : nodes not reachable from "a".
	rules := append(tcRules(), datalog.Rule{
		ID:   "unreached",
		Head: datalog.NewHead("unreached", datalog.HV("x")),
		Body: []datalog.Literal{
			datalog.Pos(datalog.NewAtom("node", datalog.V("x"))),
			datalog.Neg(datalog.NewAtom("reach", datalog.C(str("a")), datalog.V("x"))),
		},
	})
	edb := edgeDB(twoComponents)
	for _, n := range []string{"a", "b", "c", "d", "u", "v", "w"} {
		edb.Add("node", schema.NewTuple(str(n)), provenance.NewVar(provenance.Var("n:"+n)))
	}
	goal := datalog.NewAtom("unreached", datalog.V("x"))
	got, goalDirected, err := EvalGoal(context.Background(), rules, goal, edb,
		datalog.Options{Provenance: true}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !goalDirected {
		t.Fatal("stratified negation should rewrite goal-directedly")
	}
	want, err := EvalGoalFull(context.Background(), rules, goal, edb, datalog.Options{Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, got, want)
	if len(got) != 4 { // a, u, v, w
		t.Fatalf("answers = %v", got)
	}
}

func TestRewriteSkolemHeadDemoted(t *testing.T) {
	// view(f(x), x) :- edge(x, y): a bound first goal argument cannot be
	// joined against the Skolem position; the rewrite must demote it and
	// still answer correctly.
	rules := []datalog.Rule{{
		ID: "sk",
		Head: datalog.Head{Pred: "view", Terms: []datalog.HeadTerm{
			datalog.HSkolem("f", datalog.V("x")),
			datalog.HV("x"),
		}},
		Body: []datalog.Literal{datalog.Pos(datalog.NewAtom("edge", datalog.V("x"), datalog.V("y")))},
	}}
	edb := edgeDB([][2]string{{"a", "b"}, {"c", "d"}})
	goal := datalog.NewAtom("view", datalog.V("n"), datalog.C(str("a")))
	got, _, err := EvalGoal(context.Background(), rules, goal, edb, datalog.Options{Provenance: true}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := EvalGoalFull(context.Background(), rules, goal, edb, datalog.Options{Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, got, want)
	if len(got) != 1 || !got[0].Tuple[0].IsLabeledNull() {
		t.Fatalf("answers = %v", got)
	}
}

func TestRewriteRejectsNonIDBGoal(t *testing.T) {
	if _, err := Rewrite(&datalog.Program{Rules: tcRules()}, "edge", Options{}); err == nil {
		t.Fatal("EDB goal accepted")
	}
}

func TestEvalGoalFallbackSurfacesErrors(t *testing.T) {
	// Unsafe rule: head variable never bound. The rewrite refuses it and
	// the full-evaluation fallback re-surfaces the validation error.
	rules := []datalog.Rule{{
		ID:   "unsafe",
		Head: datalog.NewHead("bad", datalog.HV("x"), datalog.HV("ghost")),
		Body: []datalog.Literal{datalog.Pos(datalog.NewAtom("edge", datalog.V("x"), datalog.V("y")))},
	}}
	_, goalDirected, err := EvalGoal(context.Background(), rules,
		datalog.NewAtom("bad", datalog.V("a"), datalog.V("b")), edgeDB(nil),
		datalog.Options{}, Options{})
	if err == nil {
		t.Fatal("unsafe program accepted")
	}
	if goalDirected {
		t.Fatal("unsafe program reported as goal-directed")
	}
}

// Boolean goal: every argument bound, answer is the empty tuple iff true.
func TestEvalGoalBooleanQuery(t *testing.T) {
	edb := edgeDB(twoComponents)
	yes := datalog.NewAtom("reach", datalog.C(str("a")), datalog.C(str("d")))
	no := datalog.NewAtom("reach", datalog.C(str("a")), datalog.C(str("u")))
	got, _, err := EvalGoal(context.Background(), tcRules(), yes, edb, datalog.Options{Provenance: true}, Options{})
	if err != nil || len(got) != 1 || len(got[0].Tuple) != 0 {
		t.Fatalf("boolean true: %v %v", got, err)
	}
	got, _, err = EvalGoal(context.Background(), tcRules(), no, edb, datalog.Options{Provenance: true}, Options{})
	if err != nil || len(got) != 0 {
		t.Fatalf("boolean false: %v %v", got, err)
	}
}

// assertSameAnswers requires identical tuples and identical provenance
// polynomials, in the same (deterministic) order.
func assertSameAnswers(t *testing.T, got, want []datalog.Fact) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("answer count: got %d, want %d\n got: %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range got {
		if !got[i].Tuple.Equal(want[i].Tuple) {
			t.Fatalf("answer %d: got %v, want %v", i, got[i].Tuple, want[i].Tuple)
		}
		if !got[i].Prov.Equal(want[i].Prov) {
			t.Fatalf("answer %d (%v): provenance diverged\n got: %v\nwant: %v",
				i, got[i].Tuple, got[i].Prov, want[i].Prov)
		}
	}
}
