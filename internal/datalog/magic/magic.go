// Package magic implements goal-directed evaluation of datalog programs by
// the magic-sets rewrite: predicate adornment, sideways-information-passing
// (SIP) strategies, constant-binding specialization, and generation of
// magic (demand) predicates that gate rule firing, so that a bottom-up
// fixpoint over the rewritten program derives only the facts reachable from
// a goal instead of the whole model.
//
// The rewrite is the textbook generalized-magic-sets construction over
// stratified programs:
//
//   - Every IDB predicate is specialized per binding pattern ("adornment"):
//     a string of 'b'/'f' marking which argument positions arrive bound.
//     Bindings originate in the goal's constants and propagate sideways
//     through rule bodies in SIP order.
//   - For each adorned predicate p^a a magic predicate magic@a@p holds the
//     demanded bindings of p's bound positions. Each adorned rule for p^a
//     is guarded by its magic literal, and each IDB body occurrence q^b
//     contributes a magic rule deriving q's demand from p's demand joined
//     with the positive body prefix (supplementary-magic style, with the
//     prefix inlined).
//   - Negated IDB literals are demanded with the all-free adornment — their
//     whole (reachable) extent is computed — because negation needs the
//     complete extent to be sound. Filters (negation, comparisons) never
//     appear in magic rule bodies: demand is over-approximated, which is
//     always sound.
//
// Magic rules are provenance-neutral (datalog.Rule.ProvNeutral): demand
// facts carry annotation 1 and therefore never pollute the provenance
// polynomials of real answers — goal-directed answers carry exactly the
// polynomials full evaluation computes (see the equivalence property test).
//
// Adornment can interact with negation to produce a non-stratifiable
// rewrite even when the input is stratified (a magic predicate's prefix can
// pull an adorned predicate into a recursive component that a negation
// crosses). Rewrite detects this — it validates and stratifies its output —
// and returns an error; callers fall back to full evaluation, which EvalGoal
// does automatically.
package magic

import (
	"fmt"
	"strings"

	"orchestra/internal/datalog"
)

// SIP selects the sideways-information-passing strategy: the order in which
// a rule body's positive literals are considered when propagating bindings,
// which determines both each IDB occurrence's adornment and the prefix its
// magic rule joins.
type SIP uint8

const (
	// LeftToRight passes bindings through positive literals in their
	// written order — the classic strategy; predictable, and right when the
	// author ordered the body selectively.
	LeftToRight SIP = iota
	// MostBound greedily picks the next positive literal with the most
	// bound arguments (constants plus already-bound variables), mirroring
	// the evaluator's greedy join planner, so demand propagates along the
	// same selective path the joins will take.
	MostBound
)

// String renders the strategy name.
func (s SIP) String() string {
	switch s {
	case LeftToRight:
		return "left-to-right"
	case MostBound:
		return "most-bound"
	default:
		return fmt.Sprintf("sip(%d)", uint8(s))
	}
}

// Options configures the rewrite.
type Options struct {
	// SIP is the sideways-information-passing strategy (default
	// LeftToRight).
	SIP SIP
}

// Result is the outcome of a magic-sets rewrite.
type Result struct {
	// Program is the rewritten (adorned + magic) program.
	Program *datalog.Program
	// SeedPred is the goal's nullary magic predicate: evaluation must seed
	// it with the empty tuple (annotated 1) to switch the demand cascade on.
	SeedPred string
	// AnswerPred is the adorned goal predicate; after evaluation its extent
	// holds exactly the goal's answers.
	AnswerPred string
}

// adornedName is the specialized predicate p^pattern.
func adornedName(pred, pattern string) string {
	return pred + "@" + pattern
}

// magicName is the demand predicate for p^pattern; its arity is the number
// of 'b's in the pattern.
func magicName(pred, pattern string) string {
	return "magic@" + pattern + "@" + pred
}

// demand identifies one adorned predicate awaiting rule generation.
type demand struct {
	pred    string
	pattern string
}

// Rewrite performs the magic-sets rewrite of p for the given goal
// predicate, demanded with the all-free adornment (bindings enter through
// constants in the goal rule's body — see EvalGoal's answer rule). The goal
// must be an IDB predicate of p. Predicate names containing '@' are
// reserved for the rewrite's adorned and magic predicates; callers must not
// feed programs that use them.
//
// The returned program is validated and stratified; an error means the
// rewrite cannot be used (most notably a stratification conflict introduced
// by adornment under negation) and the caller should evaluate the original
// program in full.
func Rewrite(p *datalog.Program, goal string, opts Options) (*Result, error) {
	idb := p.IDBPreds()
	if !idb[goal] {
		return nil, fmt.Errorf("magic: goal predicate %q is not defined by any rule", goal)
	}
	rulesByHead := map[string][]datalog.Rule{}
	arities := map[string]int{}
	for _, r := range p.Rules {
		rulesByHead[r.Head.Pred] = append(rulesByHead[r.Head.Pred], r)
		if n, ok := arities[r.Head.Pred]; ok && n != len(r.Head.Terms) {
			return nil, fmt.Errorf("magic: predicate %s defined with arities %d and %d", r.Head.Pred, n, len(r.Head.Terms))
		}
		arities[r.Head.Pred] = len(r.Head.Terms)
	}
	goalPattern := strings.Repeat("f", arities[goal])
	out := &datalog.Program{}
	seen := map[demand]bool{{goal, goalPattern}: true}
	worklist := []demand{{goal, goalPattern}}
	for len(worklist) > 0 {
		d := worklist[0]
		worklist = worklist[1:]
		for _, r := range rulesByHead[d.pred] {
			adornedRule, magicRules, demands := adornRule(r, d.pattern, idb, opts.SIP)
			out.Rules = append(out.Rules, adornedRule)
			out.Rules = append(out.Rules, magicRules...)
			for _, nd := range demands {
				if !seen[nd] {
					seen[nd] = true
					worklist = append(worklist, nd)
				}
			}
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("magic: rewrite produced an unsafe program: %w", err)
	}
	if _, err := out.Stratify(); err != nil {
		return nil, fmt.Errorf("magic: rewrite is not stratifiable: %w", err)
	}
	return &Result{
		Program:    out,
		SeedPred:   magicName(goal, goalPattern),
		AnswerPred: adornedName(goal, goalPattern),
	}, nil
}

// adornRule specializes one rule to the head binding pattern: it builds the
// guarded adorned rule, the magic rules demanded by its IDB body literals,
// and the list of adorned predicates those literals reference.
func adornRule(r datalog.Rule, pattern string, idb map[string]bool, sip SIP) (datalog.Rule, []datalog.Rule, []demand) {
	bound := map[string]bool{}
	// The rule's own magic literal: the head terms at bound positions. A
	// Skolem head term cannot be joined against the demanded binding — the
	// rule constructs that value — so its position is demoted to a fresh
	// don't-care variable: the guard then admits every demanded binding at
	// that position, a sound over-approximation.
	magicTerms := make([]datalog.Term, 0, len(pattern))
	fresh := 0
	for i, ht := range r.Head.Terms {
		if pattern[i] != 'b' {
			continue
		}
		switch {
		case ht.Skolem != nil:
			magicTerms = append(magicTerms, datalog.V(fmt.Sprintf("_magic_any%d", fresh)))
			fresh++
		case ht.Term.IsVar():
			magicTerms = append(magicTerms, ht.Term)
			bound[ht.Term.Name] = true
		default:
			magicTerms = append(magicTerms, ht.Term)
		}
	}
	magicLit := datalog.Pos(datalog.NewAtom(magicName(r.Head.Pred, pattern), magicTerms...))

	posOrder := sipOrder(r.Body, bound, sip)
	newBody := make([]datalog.Literal, 0, len(r.Body)+1)
	newBody = append(newBody, magicLit)
	prefix := []datalog.Literal{magicLit}
	var magicRules []datalog.Rule
	var demands []demand
	mcount := 0
	emitMagic := func(a datalog.Atom, pat string, body []datalog.Literal) {
		headTerms := make([]datalog.HeadTerm, 0, len(a.Terms))
		for i, t := range a.Terms {
			if pat[i] == 'b' {
				headTerms = append(headTerms, datalog.HeadTerm{Term: t})
			}
		}
		magicRules = append(magicRules, datalog.Rule{
			ID:          fmt.Sprintf("%s@%s/magic%d", r.ID, pattern, mcount),
			Head:        datalog.Head{Pred: magicName(a.Pred, pat), Terms: headTerms},
			Body:        body,
			ProvNeutral: true,
		})
		mcount++
		demands = append(demands, demand{a.Pred, pat})
	}
	for _, bi := range posOrder {
		l := r.Body[bi]
		if idb[l.Atom.Pred] {
			pat := patternFor(l.Atom.Terms, bound)
			emitMagic(l.Atom, pat, append([]datalog.Literal(nil), prefix...))
			l = datalog.Pos(datalog.NewAtom(adornedName(l.Atom.Pred, pat), l.Atom.Terms...))
		}
		newBody = append(newBody, l)
		prefix = append(prefix, l)
		for _, t := range l.Atom.Terms {
			if t.IsVar() {
				bound[t.Name] = true
			}
		}
	}
	// Filters ride along unchanged — except negated IDB literals, which are
	// renamed to (and demand) the all-free adorned variant: negation is only
	// sound against a complete extent, so the whole reachable extent of the
	// negated predicate is computed whenever this rule is demanded at all.
	for _, l := range r.Body {
		switch {
		case l.Builtin != nil:
			newBody = append(newBody, l)
		case l.Negated:
			if idb[l.Atom.Pred] {
				pat := strings.Repeat("f", len(l.Atom.Terms))
				emitMagic(l.Atom, pat, []datalog.Literal{magicLit})
				l = datalog.Neg(datalog.NewAtom(adornedName(l.Atom.Pred, pat), l.Atom.Terms...))
			}
			newBody = append(newBody, l)
		}
	}
	adornedRule := datalog.Rule{
		ID:        r.ID + "@" + pattern,
		Head:      datalog.Head{Pred: adornedName(r.Head.Pred, pattern), Terms: r.Head.Terms},
		Body:      newBody,
		ProvToken: r.ProvToken,
	}
	return adornedRule, magicRules, demands
}

// patternFor computes the adornment of an atom occurrence under the current
// binding set: constants and bound variables are 'b', everything else 'f'.
func patternFor(terms []datalog.Term, bound map[string]bool) string {
	b := make([]byte, len(terms))
	for i, t := range terms {
		if !t.IsVar() || bound[t.Name] {
			b[i] = 'b'
		} else {
			b[i] = 'f'
		}
	}
	return string(b)
}

// sipOrder returns the indexes of the body's positive literals in SIP
// order. LeftToRight keeps written order; MostBound repeatedly picks the
// literal with the most bound arguments under the bindings accumulated so
// far (ties broken by written order), simulating the binding growth as it
// goes. The caller's bound set is not modified.
func sipOrder(body []datalog.Literal, bound map[string]bool, sip SIP) []int {
	var positives []int
	for i, l := range body {
		if l.Builtin == nil && !l.Negated {
			positives = append(positives, i)
		}
	}
	if sip == LeftToRight || len(positives) < 2 {
		return positives
	}
	sim := make(map[string]bool, len(bound))
	for v := range bound {
		sim[v] = true
	}
	order := make([]int, 0, len(positives))
	remaining := append([]int(nil), positives...)
	for len(remaining) > 0 {
		best, bestBound := -1, -1
		for _, bi := range remaining {
			nb := 0
			for _, t := range body[bi].Atom.Terms {
				if !t.IsVar() || sim[t.Name] {
					nb++
				}
			}
			if nb > bestBound {
				best, bestBound = bi, nb
			}
		}
		order = append(order, best)
		for i, bi := range remaining {
			if bi == best {
				remaining = append(remaining[:i], remaining[i+1:]...)
				break
			}
		}
		for _, t := range body[best].Atom.Terms {
			if t.IsVar() {
				sim[t.Name] = true
			}
		}
	}
	return order
}
