package magic

import (
	"context"
	"fmt"

	"orchestra/internal/datalog"
	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

// AnswerPred is the reserved head predicate of the synthetic answer rule
// that wraps a goal atom. Programs handed to EvalGoal must not define it.
const AnswerPred = "@goal"

// AnswerRule wraps a goal atom in the synthetic answer rule
//
//	@goal(x1, ..., xk) :- goal
//
// whose head lists the goal's distinct free variables in first-occurrence
// order. Constants in the goal stay in the body, where adornment sees them
// as bound — this is how constant bindings enter the magic rewrite.
func AnswerRule(goal datalog.Atom) datalog.Rule {
	var head []datalog.HeadTerm
	seen := map[string]bool{}
	for _, t := range goal.Terms {
		if t.IsVar() && !seen[t.Name] {
			seen[t.Name] = true
			head = append(head, datalog.HV(t.Name))
		}
	}
	return datalog.Rule{
		ID:   "@goal",
		Head: datalog.Head{Pred: AnswerPred, Terms: head},
		Body: []datalog.Literal{datalog.Pos(goal)},
	}
}

// EvalGoal evaluates the goal atom over edb, under the given view rules,
// goal-directedly: the program (rules + answer rule) is magic-rewritten for
// the goal's binding pattern, the demand seed is planted, and the rewritten
// program runs through the ordinary planner/parallel-stratum executor. Only
// demanded facts drive the fixpoint.
//
// edb is never modified (the seed is planted in a copy-on-write snapshot).
// The returned facts are the goal's answers — one per binding of the goal's
// distinct free variables, in deterministic order — annotated with exactly
// the provenance polynomials full evaluation would compute.
//
// goalDirected reports whether the magic rewrite was used; when the rewrite
// is unusable (see Rewrite) EvalGoal transparently falls back to full
// evaluation, so callers always get the right answers.
func EvalGoal(ctx context.Context, rules []datalog.Rule, goal datalog.Atom, edb *datalog.DB,
	opts datalog.Options, mopts Options) (answers []datalog.Fact, goalDirected bool, err error) {

	prog := program(rules, goal)
	res, rerr := Rewrite(prog, AnswerPred, mopts)
	if rerr != nil {
		// Stratification conflicts introduced by adornment (or unsafe input
		// rules, whose error full evaluation re-surfaces) — evaluate in full.
		facts, err := evalProgram(ctx, prog, AnswerPred, edb, opts)
		return facts, false, err
	}
	seeded := edb.Snapshot()
	seeded.Set(res.SeedPred, schema.Tuple{}, provenance.One())
	facts, err := evalProgram(ctx, res.Program, res.AnswerPred, seeded, opts)
	return facts, true, err
}

// EvalGoalFull evaluates the same query by the baseline strategy: the full
// fixpoint of rules over edb, with the answer rule extracting the goal's
// bindings. It is the reference EvalGoal is equivalent to (and measured
// against).
func EvalGoalFull(ctx context.Context, rules []datalog.Rule, goal datalog.Atom, edb *datalog.DB,
	opts datalog.Options) ([]datalog.Fact, error) {

	return evalProgram(ctx, program(rules, goal), AnswerPred, edb, opts)
}

// program assembles rules + answer rule, validating nothing: EvalCtx
// validates, and Rewrite re-checks its own output.
func program(rules []datalog.Rule, goal datalog.Atom) *datalog.Program {
	all := make([]datalog.Rule, 0, len(rules)+1)
	all = append(all, rules...)
	all = append(all, AnswerRule(goal))
	return &datalog.Program{Rules: all}
}

// evalProgram runs the program and extracts the answer predicate's extent.
func evalProgram(ctx context.Context, p *datalog.Program, answerPred string, edb *datalog.DB,
	opts datalog.Options) ([]datalog.Fact, error) {

	out, err := datalog.EvalCtx(ctx, p, edb, opts)
	if err != nil {
		return nil, fmt.Errorf("magic: goal evaluation: %w", err)
	}
	return out.Rel(answerPred).Facts(), nil
}
