package datalog

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

// --- plan ordering ---

func TestPlanDimensionTablesBeforeWideScan(t *testing.T) {
	// Written order is pessimal: the wide fact table first, the unrelated
	// dimension table last. Greedy must start from the smallest relation
	// and follow bound variables.
	r := Rule{ID: "j", Head: NewHead("Out", HV("x"), HV("z")), Body: []Literal{
		Pos(NewAtom("Wide", V("x"), V("y"))),
		Pos(NewAtom("Mid", V("y"), V("z"))),
		Pos(NewAtom("Tiny", V("x"))),
	}}
	db := NewDB()
	for i := int64(0); i < 100; i++ {
		db.AddTuple("Wide", schema.NewTuple(schema.Int(i%4), schema.Int(i)))
	}
	for i := int64(0); i < 20; i++ {
		db.AddTuple("Mid", schema.NewTuple(schema.Int(i), schema.Int(i)))
	}
	for i := int64(0); i < 4; i++ {
		db.AddTuple("Tiny", schema.NewTuple(schema.Int(i)))
	}
	p := buildPlan(r, -1, db, false)
	got := fmt.Sprint(p.order())
	// Tiny (4 facts) first; it binds x, making Wide a 1-bound probe that
	// beats unbound Mid; then Mid joins on the bound y.
	if want := "[2 0 1]"; got != want {
		t.Fatalf("plan order = %v (%s), want %v", got, p, want)
	}
}

func TestPlanConstantSelectiveAtomFirst(t *testing.T) {
	// An atom with a constant is more bound than a bigger unbound one even
	// though both relations have the same size.
	r := Rule{ID: "c", Head: NewHead("Out", HV("y")), Body: []Literal{
		Pos(NewAtom("R", V("x"), V("y"))),
		Pos(NewAtom("S", C(schema.String("k")), V("x"))),
	}}
	db := NewDB()
	for i := int64(0); i < 10; i++ {
		db.AddTuple("R", schema.NewTuple(schema.Int(i), schema.Int(i)))
		db.AddTuple("S", schema.NewTuple(schema.String("k"), schema.Int(i)))
	}
	p := buildPlan(r, -1, db, false)
	if got := fmt.Sprint(p.order()); got != "[1 0]" {
		t.Fatalf("plan order = %v (%s), want [1 0]", got, p)
	}
}

func TestPlanFullyBoundAtomBecomesExistenceProbe(t *testing.T) {
	// Once x and y are bound, Big(x,y) is fully bound: it must be probed
	// before the huge half-bound scan even though Big is the largest
	// relation.
	r := Rule{ID: "f", Head: NewHead("Out", HV("x"), HV("y"), HV("z")), Body: []Literal{
		Pos(NewAtom("Big", V("x"), V("y"))),
		Pos(NewAtom("Fan", V("x"), V("z"))),
		Pos(NewAtom("Pair", V("x"), V("y"))),
	}}
	db := NewDB()
	for i := int64(0); i < 500; i++ {
		db.AddTuple("Big", schema.NewTuple(schema.Int(i), schema.Int(i)))
		db.AddTuple("Fan", schema.NewTuple(schema.Int(i%10), schema.Int(i)))
	}
	for i := int64(0); i < 30; i++ {
		db.AddTuple("Pair", schema.NewTuple(schema.Int(i), schema.Int(i)))
	}
	p := buildPlan(r, -1, db, false)
	// Pair (30) first, binding x,y; Big is then fully bound and probes
	// before the half-bound Fan scan.
	if got := fmt.Sprint(p.order()); got != "[2 0 1]" {
		t.Fatalf("plan order = %v (%s), want [2 0 1]", got, p)
	}
}

func TestPlanDeltaLiteralAlwaysFirst(t *testing.T) {
	r := Rule{ID: "d", Head: NewHead("Out", HV("x"), HV("z")), Body: []Literal{
		Pos(NewAtom("A", V("x"), V("y"))),
		Pos(NewAtom("B", V("y"), V("z"))),
	}}
	db := NewDB()
	for i := 0; i < 2; i++ {
		p := buildPlan(r, i, db, false)
		if p.order()[0] != i {
			t.Errorf("deltaIdx %d: plan order = %v, delta not first", i, p.order())
		}
	}
}

func TestPlanNoReorderKeepsWrittenOrder(t *testing.T) {
	r := Rule{ID: "n", Head: NewHead("Out", HV("x"), HV("z")), Body: []Literal{
		Pos(NewAtom("Wide", V("x"), V("y"))),
		Pos(NewAtom("Mid", V("y"), V("z"))),
		Pos(NewAtom("Tiny", V("x"))),
	}}
	p := buildPlan(r, -1, NewDB(), true)
	if got := fmt.Sprint(p.order()); got != "[0 1 2]" {
		t.Fatalf("NoReorder plan order = %v, want [0 1 2]", got)
	}
}

func TestPlanFiltersFloatToEarliestBoundPoint(t *testing.T) {
	// The comparison y < 5 and the negation ¬Bad(x) are written first but
	// must wait for their variables; each must run immediately after the
	// atom binding its last variable, not at the end.
	r := Rule{ID: "fl", Head: NewHead("Out", HV("x"), HV("y")), Body: []Literal{
		Cmp(V("y"), OpLt, C(schema.Int(5))),
		Neg(NewAtom("Bad", V("x"))),
		Pos(NewAtom("A", V("x"))),
		Pos(NewAtom("B", V("x"), V("y"))),
	}}
	db := NewDB()
	db.AddTuple("A", schema.NewTuple(schema.Int(1)))
	for i := int64(0); i < 50; i++ {
		db.AddTuple("B", schema.NewTuple(schema.Int(1), schema.Int(i)))
	}
	p := buildPlan(r, -1, db, false)
	// A (smaller) first, then ¬Bad(x) immediately, then B, then y<5.
	if got := fmt.Sprint(p.order()); got != "[2 1 3 0]" {
		t.Fatalf("plan order = %v (%s), want [2 1 3 0]", got, p)
	}
}

func TestPlanComparisonStaysAfterVariablesBind(t *testing.T) {
	// x < y cannot run until both scans have bound their variables, even
	// though it is written first.
	r := Rule{ID: "cmp", Head: NewHead("Out", HV("x"), HV("y")), Body: []Literal{
		Cmp(V("x"), OpLt, V("y")),
		Pos(NewAtom("A", V("x"))),
		Pos(NewAtom("B", V("y"))),
	}}
	p := buildPlan(r, -1, NewDB(), false)
	order := p.order()
	if order[len(order)-1] != 0 {
		t.Fatalf("plan order = %v: comparison must come after both scans", order)
	}
}

func TestPlanCacheReusesShapes(t *testing.T) {
	pl := newPlanner(false)
	r := tcProgram().Rules[1]
	db := NewDB()
	p1 := pl.planFor(r, -1, db)
	p2 := pl.planFor(r, -1, db)
	if p1 != p2 {
		t.Error("same (rule, delta) shape compiled twice")
	}
	if pd := pl.planFor(r, 0, db); pd == p1 {
		t.Error("distinct delta positions share a plan")
	}
}

func TestPlanCacheKeyIsStructural(t *testing.T) {
	// Rule.String renders the variable x and the string constant "x"
	// identically, and Int(1) and Float(1) both as "1"; the cache must not
	// conflate them.
	prog := &Program{Rules: []Rule{
		{ID: "int", Head: NewHead("H", HV("y")), Body: []Literal{
			Pos(NewAtom("R", V("y"), C(schema.Int(1))))}},
		{ID: "float", Head: NewHead("H", HV("y")), Body: []Literal{
			Pos(NewAtom("R", V("y"), C(schema.Float(1))))}},
		{ID: "var", Head: NewHead("G", HV("y")), Body: []Literal{
			Pos(NewAtom("S", V("y"), V("x")))}},
		{ID: "const", Head: NewHead("G", HV("y")), Body: []Literal{
			Pos(NewAtom("S", V("y"), C(schema.String("x"))))}},
	}}
	edb := NewDB()
	edb.AddTuple("R", schema.NewTuple(schema.String("viaInt"), schema.Int(1)))
	edb.AddTuple("R", schema.NewTuple(schema.String("viaFloat"), schema.Float(1)))
	edb.AddTuple("S", schema.NewTuple(schema.String("viaVar"), schema.String("anything")))
	res, err := Eval(prog, edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"viaInt", "viaFloat"} {
		if !res.Rel("H").Contains(schema.NewTuple(schema.String(want))) {
			t.Errorf("H(%s) missing: int/float constant rules shared a plan", want)
		}
	}
	if !res.Rel("G").Contains(schema.NewTuple(schema.String("viaVar"))) {
		t.Error("G(viaVar) missing: var rule shared the string-constant rule's plan")
	}
}

// --- evaluation equivalence across planner and parallelism settings ---

// equivPrograms builds a set of (program, edb) workloads covering the
// engine's features: recursion, negation, builtins, skolems, repeated
// variables, constants, cross products, and single-atom rules.
func equivPrograms() map[string]func() (*Program, *DB) {
	return map[string]func() (*Program, *DB){
		"transitive-closure": func() (*Program, *DB) {
			// Witness-set provenance on cyclic graphs is combinatorial in
			// graph density, so this stays small and sparse (the truncated
			// and set-semantics variants cover scale).
			edb := NewDB()
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 6; i++ {
				for j := 0; j < 6; j++ {
					if i != j && rng.Float64() < 0.25 {
						edb.Add("E", edge(fmt.Sprint("v", i), fmt.Sprint("v", j)),
							provenance.NewVar(provenance.Var(fmt.Sprintf("e%d_%d", i, j))))
					}
				}
			}
			return tcProgram(), edb
		},
		"stratified-negation": func() (*Program, *DB) {
			prog := tcProgram()
			prog.Rules = append(prog.Rules,
				Rule{ID: "n1", Head: NewHead("N", HV("x")), Body: []Literal{Pos(NewAtom("E", V("x"), V("y")))}},
				Rule{ID: "n2", Head: NewHead("N", HV("y")), Body: []Literal{Pos(NewAtom("E", V("x"), V("y")))}},
				Rule{ID: "u", Head: NewHead("U", HV("x"), HV("y")), Body: []Literal{
					Pos(NewAtom("N", V("x"))), Pos(NewAtom("N", V("y"))), Neg(NewAtom("T", V("x"), V("y")))}},
			)
			edb := NewDB()
			for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"e", "f"}} {
				edb.AddTuple("E", edge(e[0], e[1]))
			}
			return prog, edb
		},
		"builtins-and-constants": func() (*Program, *DB) {
			prog := &Program{Rules: []Rule{
				{ID: "lt", Head: NewHead("L", HV("x"), HV("y")), Body: []Literal{
					Pos(NewAtom("N", V("x"))), Pos(NewAtom("N", V("y"))), Cmp(V("x"), OpLt, V("y"))}},
				{ID: "c", Head: NewHead("C5", HV("y")), Body: []Literal{
					Pos(NewAtom("P", C(schema.Int(5)), V("y")))}},
			}}
			edb := NewDB()
			for i := int64(1); i <= 6; i++ {
				edb.AddTuple("N", schema.NewTuple(schema.Int(i)))
				edb.AddTuple("P", schema.NewTuple(schema.Int(i%3+4), schema.Int(i)))
			}
			return prog, edb
		},
		"skolem-split": func() (*Program, *DB) {
			prog := &Program{Rules: []Rule{
				{ID: "m1", ProvToken: "M1", Head: NewHead("O", HV("org"), HSkolem("f_oid", V("org"))),
					Body: []Literal{Pos(NewAtom("OPS", V("org"), V("prot"), V("seq")))}},
				{ID: "m2", ProvToken: "M2", Head: NewHead("P", HV("prot"), HSkolem("f_oid", V("org"))),
					Body: []Literal{Pos(NewAtom("OPS", V("org"), V("prot"), V("seq")))}},
			}}
			edb := NewDB()
			for i := 0; i < 6; i++ {
				edb.Add("OPS", schema.NewTuple(
					schema.String(fmt.Sprint("org", i%2)), schema.String(fmt.Sprint("p", i)), schema.String("ACGT")),
					provenance.NewVar(provenance.Var(fmt.Sprint("t", i))))
			}
			return prog, edb
		},
		"repeated-vars-and-self-join": func() (*Program, *DB) {
			prog := &Program{Rules: []Rule{
				{ID: "self", Head: NewHead("S", HV("x")), Body: []Literal{Pos(NewAtom("E", V("x"), V("x")))}},
				{ID: "tri", Head: NewHead("Tri", HV("x"), HV("y"), HV("z")), Body: []Literal{
					Pos(NewAtom("E", V("x"), V("y"))), Pos(NewAtom("E", V("y"), V("z"))), Pos(NewAtom("E", V("z"), V("x")))}},
			}}
			edb := NewDB()
			edges := [][2]string{{"a", "a"}, {"a", "b"}, {"b", "c"}, {"c", "a"}, {"c", "d"}}
			for i, e := range edges {
				edb.Add("E", edge(e[0], e[1]), provenance.NewVar(provenance.Var(fmt.Sprint("e", i))))
			}
			return prog, edb
		},
		"cross-product": func() (*Program, *DB) {
			// No shared variables at all: the planner must still enumerate
			// the full product, whatever order it picks.
			prog := &Program{Rules: []Rule{{ID: "x", Head: NewHead("X", HV("a"), HV("b")), Body: []Literal{
				Pos(NewAtom("L", V("a"))), Pos(NewAtom("R", V("b")))}}}}
			edb := NewDB()
			for i := int64(0); i < 4; i++ {
				edb.AddTuple("L", schema.NewTuple(schema.Int(i)))
				edb.AddTuple("R", schema.NewTuple(schema.Int(10+i)))
			}
			return prog, edb
		},
		"single-atom-rule": func() (*Program, *DB) {
			prog := &Program{Rules: []Rule{{ID: "cp", ProvToken: "M", Head: NewHead("Out", HV("x")),
				Body: []Literal{Pos(NewAtom("In", V("x")))}}}}
			edb := NewDB()
			for i := int64(0); i < 5; i++ {
				edb.Add("In", schema.NewTuple(schema.Int(i)), provenance.NewVar(provenance.Var(fmt.Sprint("b", i))))
			}
			return prog, edb
		},
	}
}

// requireDBsEqual asserts byte-identical relations and provenance.
func requireDBsEqual(t *testing.T, name string, want, got *DB) {
	t.Helper()
	wp, gp := want.Preds(), got.Preds()
	if fmt.Sprint(wp) != fmt.Sprint(gp) {
		t.Fatalf("%s: predicates differ: %v vs %v", name, wp, gp)
	}
	for _, pred := range wp {
		wf, gf := want.Rel(pred).Facts(), got.Rel(pred).Facts()
		if len(wf) != len(gf) {
			t.Fatalf("%s: %s has %d facts, want %d", name, pred, len(gf), len(wf))
		}
		for i := range wf {
			if !wf[i].Tuple.Equal(gf[i].Tuple) {
				t.Fatalf("%s: %s fact %d: %v != %v", name, pred, i, gf[i].Tuple, wf[i].Tuple)
			}
			if !wf[i].Prov.Equal(gf[i].Prov) {
				t.Fatalf("%s: %s %v provenance: %v != %v", name, pred, wf[i].Tuple, gf[i].Prov, wf[i].Prov)
			}
		}
	}
}

func TestPlannerEquivalentToNoReorder(t *testing.T) {
	for name, build := range equivPrograms() {
		for _, prov := range []bool{false, true} {
			for _, maxMono := range []int{0, 2} {
				if maxMono != 0 && !prov {
					continue
				}
				prog, edb := build()
				base := Options{Provenance: prov, MaxMonomials: maxMono}
				ordered := base
				ordered.NoReorder = true
				want, err := Eval(prog, edb, ordered)
				if err != nil {
					t.Fatal(err)
				}
				got, err := Eval(prog, edb, base)
				if err != nil {
					t.Fatal(err)
				}
				requireDBsEqual(t, fmt.Sprintf("%s/prov=%v/max=%d", name, prov, maxMono), want, got)
			}
		}
	}
}

func TestParallelEquivalentToSequential(t *testing.T) {
	for name, build := range equivPrograms() {
		for _, par := range []int{2, 4, 8} {
			prog, edb := build()
			seq := Options{Provenance: true}
			want, err := Eval(prog, edb, seq)
			if err != nil {
				t.Fatal(err)
			}
			popt := seq
			popt.Parallelism = par
			got, err := Eval(prog, edb, popt)
			if err != nil {
				t.Fatal(err)
			}
			requireDBsEqual(t, fmt.Sprintf("%s/parallelism=%d", name, par), want, got)
		}
	}
}

func TestParallelIncrementalMatchesSequential(t *testing.T) {
	prog := tcProgram()
	edb := NewDB()
	for i := 0; i < 8; i++ {
		edb.Add("E", edge(fmt.Sprint("n", i), fmt.Sprint("n", i+1)),
			provenance.NewVar(provenance.Var(fmt.Sprint("e", i))))
	}
	seqInc, err := NewIncremental(prog, edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	parInc, err := NewIncremental(prog, edb, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	batch := []Fact2{
		{Pred: "E", Tuple: edge("n8", "n0"), Prov: provenance.NewVar("loop")},
		{Pred: "E", Tuple: edge("x", "y"), Prov: provenance.NewVar("xy")},
	}
	seqCh, err := seqInc.Insert(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	parCh, err := parInc.Insert(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqCh) != len(parCh) {
		t.Fatalf("change count: parallel %d vs sequential %d", len(parCh), len(seqCh))
	}
	requireDBsEqual(t, "incremental-insert", seqInc.DB(), parInc.DB())
	// Deletion must also agree, exercising incremental index maintenance.
	seqInc.DeleteBase([]provenance.Var{"loop", "e3"})
	parInc.DeleteBase([]provenance.Var{"loop", "e3"})
	requireDBsEqual(t, "incremental-delete", seqInc.DB(), parInc.DB())
}

// --- edge cases through the full Eval path ---

func TestAllUnboundCrossProductEnumeratesFully(t *testing.T) {
	prog := &Program{Rules: []Rule{{ID: "x", Head: NewHead("X", HV("a"), HV("b"), HV("c")), Body: []Literal{
		Pos(NewAtom("A", V("a"))), Pos(NewAtom("B", V("b"))), Pos(NewAtom("C", V("c")))}}}}
	edb := NewDB()
	for i := int64(0); i < 3; i++ {
		edb.AddTuple("A", schema.NewTuple(schema.Int(i)))
		edb.AddTuple("B", schema.NewTuple(schema.Int(i)))
		edb.AddTuple("C", schema.NewTuple(schema.Int(i)))
	}
	res, err := Eval(prog, edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel("X").Len() != 27 {
		t.Errorf("cross product = %d facts, want 27", res.Rel("X").Len())
	}
}

func TestNegationAgainstEmptyRelation(t *testing.T) {
	// The negated predicate has no extent at all.
	prog := &Program{Rules: []Rule{{ID: "n", Head: NewHead("Out", HV("x")), Body: []Literal{
		Pos(NewAtom("A", V("x"))), Neg(NewAtom("Gone", V("x")))}}}}
	edb := NewDB()
	edb.AddTuple("A", schema.NewTuple(schema.Int(1)))
	res, err := Eval(prog, edb, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel("Out").Len() != 1 {
		t.Errorf("Out = %v", res.Rel("Out").Facts())
	}
}

func TestEmptyBodyIntermediateTerminatesEarly(t *testing.T) {
	// Middle atom has an empty extent: the rule fires zero times and the
	// planner's early termination must not error.
	prog := &Program{Rules: []Rule{{ID: "e", Head: NewHead("Out", HV("x"), HV("z")), Body: []Literal{
		Pos(NewAtom("A", V("x"), V("y"))), Pos(NewAtom("Empty", V("y"), V("z")))}}}}
	edb := NewDB()
	edb.AddTuple("A", schema.NewTuple(schema.Int(1), schema.Int(2)))
	res, err := Eval(prog, edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel("Out").Len() != 0 {
		t.Errorf("Out = %v", res.Rel("Out").Facts())
	}
}

func TestParallelStressTransitiveClosure(t *testing.T) {
	// A denser graph with provenance, run at high parallelism — the -race
	// CI job exercises the worker pool here.
	edb := NewDB()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 25; i++ {
		for j := 0; j < 25; j++ {
			if i != j && rng.Float64() < 0.15 {
				edb.AddTuple("E", edge(fmt.Sprint("v", i), fmt.Sprint("v", j)))
			}
		}
	}
	want, err := Eval(tcProgram(), edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Eval(tcProgram(), edb, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	requireDBsEqual(t, "stress-tc", want, got)
}

// --- index layer maintenance ---

func TestIndexMaintainedAcrossPutAndRemove(t *testing.T) {
	r := NewRel()
	tu := func(a, b int64) schema.Tuple { return schema.NewTuple(schema.Int(a), schema.Int(b)) }
	for i := int64(0); i < 10; i++ {
		r.put(tu(i%2, i), provenance.One())
	}
	// Build two indexes, then mutate and re-probe.
	if n := len(r.lookup([]int{0}, schema.NewTuple(schema.Int(0)))); n != 5 {
		t.Fatalf("col-0 probe = %d, want 5", n)
	}
	if n := len(r.lookup(nil, nil)); n != 10 {
		t.Fatalf("full scan = %d, want 10", n)
	}
	r.put(tu(0, 100), provenance.One())
	if n := len(r.lookup([]int{0}, schema.NewTuple(schema.Int(0)))); n != 6 {
		t.Fatalf("col-0 probe after insert = %d, want 6", n)
	}
	r.remove(tu(0, 100).Key())
	r.remove(tu(0, 0).Key())
	if n := len(r.lookup([]int{0}, schema.NewTuple(schema.Int(0)))); n != 4 {
		t.Fatalf("col-0 probe after remove = %d, want 4", n)
	}
	if n := len(r.lookup(nil, nil)); n != 9 {
		t.Fatalf("full scan after remove = %d, want 9", n)
	}
	// Probing a drained bucket must be empty, not stale.
	if n := len(r.lookup([]int{1}, schema.NewTuple(schema.Int(100)))); n != 0 {
		t.Fatalf("removed key still indexed: %d facts", n)
	}
}

func TestOversizedBucketDropsIndexOnRemove(t *testing.T) {
	// Buckets beyond bucketScanLimit are not scanned on removal: the whole
	// index is dropped and must rebuild correctly on the next probe.
	r := NewRel()
	for i := int64(0); i < 3*bucketScanLimit; i++ {
		r.put(schema.NewTuple(schema.Int(0), schema.Int(i)), provenance.One())
	}
	if n := len(r.lookup(nil, nil)); n != 3*bucketScanLimit {
		t.Fatalf("full scan = %d", n)
	}
	if n := len(r.lookup([]int{0}, schema.NewTuple(schema.Int(0)))); n != 3*bucketScanLimit {
		t.Fatalf("col-0 probe = %d", n)
	}
	for i := int64(0); i < bucketScanLimit; i++ {
		r.remove(schema.NewTuple(schema.Int(0), schema.Int(i)).Key())
	}
	if n := len(r.lookup(nil, nil)); n != 2*bucketScanLimit {
		t.Fatalf("full scan after bulk remove = %d, want %d", n, 2*bucketScanLimit)
	}
	if n := len(r.lookup([]int{0}, schema.NewTuple(schema.Int(0)))); n != 2*bucketScanLimit {
		t.Fatalf("col-0 probe after bulk remove = %d, want %d", n, 2*bucketScanLimit)
	}
}
