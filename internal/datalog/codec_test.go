package datalog

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

// buildCodecDB constructs a database with shared annotations, multi-variable
// monomials, constants, and several predicates — the shapes the snapshot
// codec must carry exactly.
func buildCodecDB() *DB {
	db := NewDB()
	x := provenance.NewVar("p:1/0")
	y := provenance.NewVar("q:2/1")
	z := provenance.NewVar("r:3/0")
	shared := x.Mul(y).Add(z).Intern()
	db.Set("G", schema.NewTuple(schema.Int(1), schema.Int(2)), shared)
	db.Set("G", schema.NewTuple(schema.Int(2), schema.Int(3)), shared)
	db.Set("G", schema.NewTuple(schema.Int(3), schema.Int(1)), x.Mul(x).Add(provenance.Const(2)).Intern())
	db.Set("H", schema.NewTuple(schema.String("a"), schema.Int(-7)), provenance.One())
	db.Set("H", schema.NewTuple(schema.String("b\x00c"), schema.Int(0)), y)
	db.Set("Empty0", schema.NewTuple(), provenance.One())
	return db
}

func TestCodecRoundTrip(t *testing.T) {
	db := buildCodecDB()
	blob, err := EncodeDB(db)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDB(blob)
	if err != nil {
		t.Fatal(err)
	}
	if want, have := fingerprint(db), fingerprint(got); want != have {
		t.Fatalf("round trip changed the database:\nwant:\n%s\ngot:\n%s", want, have)
	}
	// Provenance equality must be exact (not just same rendering).
	for _, pred := range db.Preds() {
		for _, f := range db.Rel(pred).Facts() {
			gf, ok := got.Rel(pred).Get(f.Tuple)
			if !ok {
				t.Fatalf("%s: %v missing after round trip", pred, f.Tuple)
			}
			if !gf.Prov.Equal(f.Prov) {
				t.Fatalf("%s %v: provenance %s != %s", pred, f.Tuple, gf.Prov, f.Prov)
			}
		}
	}
}

// TestCodecPreservesSharing pins the dedup property: two facts that shared
// one interned annotation before encoding share one node after decoding
// (Poly is a single-pointer struct, so == is node identity).
func TestCodecPreservesSharing(t *testing.T) {
	db := buildCodecDB()
	blob, err := EncodeDB(db)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDB(blob)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := got.Rel("G").Get(schema.NewTuple(schema.Int(1), schema.Int(2)))
	b, _ := got.Rel("G").Get(schema.NewTuple(schema.Int(2), schema.Int(3)))
	if a.Prov != b.Prov {
		t.Fatalf("shared annotation decoded into distinct nodes: %s vs %s", a.Prov, b.Prov)
	}
	stats, err := StatDB(blob)
	if err != nil {
		t.Fatal(err)
	}
	// 5 distinct annotations: shared, x²+2, 1, y — and 1 again for Empty0,
	// which dedups with H's constant. Distinct vars: x, y, z.
	if stats.PolyNodes != 4 {
		t.Fatalf("PolyNodes = %d, want 4 (polynomial table must dedup)", stats.PolyNodes)
	}
	if stats.Vars != 3 || stats.Preds != 3 || stats.Facts != 6 || stats.Bytes != len(blob) {
		t.Fatalf("stats = %+v, want Vars 3, Preds 3, Facts 6, Bytes %d", stats, len(blob))
	}
}

// TestCodecOrderIndependent pins that the encoding is a function of logical
// content only: the same fact set inserted in reverse order — with interning
// churn in between — encodes to identical bytes.
func TestCodecOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type entry struct {
		pred string
		t    schema.Tuple
		p    provenance.Poly
	}
	var entries []entry
	for i := 0; i < 64; i++ {
		v := provenance.NewVar(provenance.Var(fmt.Sprintf("p:%d/0", i%7)))
		w := provenance.NewVar(provenance.Var(fmt.Sprintf("q:%d/0", i%5)))
		entries = append(entries, entry{
			pred: fmt.Sprintf("R%d", i%3),
			t:    schema.NewTuple(schema.Int(int64(i)), schema.String(fmt.Sprint(i%4))),
			p:    v.Mul(w).Add(provenance.Const(uint64(i%2 + 1))).Intern(),
		})
	}
	build := func(order []int) *DB {
		db := NewDB()
		for _, i := range order {
			e := entries[i]
			// Rebuild the polynomial from scratch so the two databases do
			// not share construction history.
			db.Set(e.pred, e.t, provenance.FromMonomials(e.p.Monomials()))
		}
		return db
	}
	fwd := make([]int, len(entries))
	for i := range fwd {
		fwd[i] = i
	}
	rev := append([]int(nil), fwd...)
	rng.Shuffle(len(rev), func(i, j int) { rev[i], rev[j] = rev[j], rev[i] })
	b1, err := EncodeDB(build(fwd))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := EncodeDB(build(rev))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("encoding depends on insertion order: %d vs %d bytes differ", len(b1), len(b2))
	}
}

func TestCodecRejectsCorruptSnapshots(t *testing.T) {
	db := buildCodecDB()
	blob, err := EncodeDB(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeDB([]byte("XXXX")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := DecodeDB(nil); err == nil {
		t.Fatal("empty snapshot accepted")
	}
	for _, cut := range []int{len(blob) / 4, len(blob) / 2, len(blob) - 1} {
		if _, err := DecodeDB(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeDB(append(append([]byte(nil), blob...), 0x7)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}
