package datalog

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"orchestra/internal/provenance"
)

func tok(i, j int) provenance.Var { return provenance.Var(fmt.Sprintf("e%d_%d", i, j)) }

func TestIncrementalInsertMatchesBatch(t *testing.T) {
	edges := [][2]string{{"a", "b"}, {"b", "c"}}
	edb := NewDB()
	for i, e := range edges {
		edb.Add("E", edge(e[0], e[1]), provenance.NewVar(provenance.Var(fmt.Sprint("e", i))))
	}
	inc, err := NewIncremental(tcProgram(), edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if inc.DB().Rel("T").Len() != 3 { // ab, bc, ac
		t.Fatalf("initial T = %v", inc.DB().Rel("T").Facts())
	}
	// Insert c->d incrementally.
	changes, err := inc.Insert(context.Background(), []Fact2{{Pred: "E", Tuple: edge("c", "d"), Prov: provenance.NewVar("e2")}})
	if err != nil {
		t.Fatal(err)
	}
	// New T facts: cd, bd, ad (+ base E change).
	newT := 0
	for _, c := range changes {
		if c.Pred == "T" && c.Fresh {
			newT++
		}
	}
	if newT != 3 {
		t.Errorf("incremental derived %d new T facts, want 3; changes=%v", newT, changes)
	}
	// Compare against batch evaluation from scratch.
	edb.Add("E", edge("c", "d"), provenance.NewVar("e2"))
	batch, err := Eval(tcProgram(), edb, Options{Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Rel("T").Len() != inc.DB().Rel("T").Len() {
		t.Fatalf("incremental T=%d, batch T=%d", inc.DB().Rel("T").Len(), batch.Rel("T").Len())
	}
	for _, f := range batch.Rel("T").Facts() {
		g, ok := inc.DB().Rel("T").Get(f.Tuple)
		if !ok {
			t.Errorf("missing %v", f.Tuple)
			continue
		}
		if !g.Prov.Equal(f.Prov) {
			t.Errorf("prov mismatch for %v: inc=%v batch=%v", f.Tuple, g.Prov, f.Prov)
		}
	}
}

func TestIncrementalInsertNoOp(t *testing.T) {
	edb := NewDB()
	edb.Add("E", edge("a", "b"), provenance.NewVar("e0"))
	inc, err := NewIncremental(tcProgram(), edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Re-inserting the same fact with the same provenance changes nothing.
	changes, err := inc.Insert(context.Background(), []Fact2{{Pred: "E", Tuple: edge("a", "b"), Prov: provenance.NewVar("e0")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 0 {
		t.Errorf("no-op insert produced %v", changes)
	}
}

func TestIncrementalDeleteBase(t *testing.T) {
	// Diamond: a->b->d and a->c->d. Deleting edge b->d keeps T(a,d) alive
	// through c; deleting c->d too removes it.
	edb := NewDB()
	type e struct {
		from, to string
		tok      provenance.Var
	}
	es := []e{{"a", "b", "ab"}, {"b", "d", "bd"}, {"a", "c", "ac"}, {"c", "d", "cd"}}
	for _, x := range es {
		edb.Add("E", edge(x.from, x.to), provenance.NewVar(x.tok))
	}
	inc, err := NewIncremental(tcProgram(), edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !inc.DB().Rel("T").Contains(edge("a", "d")) {
		t.Fatal("T(a,d) missing")
	}
	// Kill bd.
	changes := inc.DeleteBase([]provenance.Var{"bd"})
	// T(b,d) must be removed; T(a,d) must survive with reduced provenance.
	removedBD := false
	for _, c := range changes {
		if c.Pred == "T" && c.Tuple.Equal(edge("b", "d")) && c.Removed {
			removedBD = true
		}
		if c.Pred == "T" && c.Tuple.Equal(edge("a", "d")) && c.Removed {
			t.Error("T(a,d) wrongly removed")
		}
	}
	if !removedBD {
		t.Error("T(b,d) not removed")
	}
	if !inc.DB().Rel("T").Contains(edge("a", "d")) {
		t.Error("T(a,d) lost")
	}
	// Kill cd: now T(a,d) must go.
	inc.DeleteBase([]provenance.Var{"cd"})
	if inc.DB().Rel("T").Contains(edge("a", "d")) {
		t.Error("T(a,d) survived with no derivation")
	}
	// E(b,d) itself must be gone (its own token died).
	if inc.DB().Rel("E").Contains(edge("b", "d")) {
		t.Error("base fact E(b,d) survived token kill")
	}
}

func TestIncrementalDeleteMatchesBatch(t *testing.T) {
	// Random graphs: incremental delete must agree with recomputation.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(3)
		var all [][2]int
		edb := NewDB()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.25 {
					all = append(all, [2]int{i, j})
					edb.Add("E", edge(fmt.Sprint("v", i), fmt.Sprint("v", j)), provenance.NewVar(tok(i, j)))
				}
			}
		}
		if len(all) == 0 {
			continue
		}
		inc, err := NewIncremental(tcProgram(), edb, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Delete a random half of the edges incrementally.
		kill := all[:len(all)/2]
		var toks []provenance.Var
		for _, k := range kill {
			toks = append(toks, tok(k[0], k[1]))
		}
		inc.DeleteBase(toks)
		// Recompute from the surviving edges.
		edb2 := NewDB()
		for _, k := range all[len(all)/2:] {
			edb2.Add("E", edge(fmt.Sprint("v", k[0]), fmt.Sprint("v", k[1])), provenance.NewVar(tok(k[0], k[1])))
		}
		batch, err := Eval(tcProgram(), edb2, Options{Provenance: true})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := inc.DB().Rel("T").Len(), batch.Rel("T").Len(); got != want {
			t.Fatalf("trial %d: incremental T=%d, batch T=%d", trial, got, want)
		}
		for _, f := range batch.Rel("T").Facts() {
			if !inc.DB().Rel("T").Contains(f.Tuple) {
				t.Fatalf("trial %d: missing %v", trial, f.Tuple)
			}
		}
	}
}

func TestIncrementalRejectsNegation(t *testing.T) {
	prog := &Program{Rules: []Rule{{
		ID:   "n",
		Head: NewHead("P", HV("x")),
		Body: []Literal{Pos(NewAtom("A", V("x"))), Neg(NewAtom("B", V("x")))},
	}}}
	if _, err := NewIncremental(prog, NewDB(), Options{}); err == nil {
		t.Error("negation accepted by incremental engine")
	}
}

func TestIncrementalInsertThenDeleteRoundTrip(t *testing.T) {
	edb := NewDB()
	edb.Add("E", edge("a", "b"), provenance.NewVar("ab"))
	inc, err := NewIncremental(tcProgram(), edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := inc.DB().Rel("T").Len()
	if _, err := inc.Insert(context.Background(), []Fact2{{Pred: "E", Tuple: edge("b", "c"), Prov: provenance.NewVar("bc")}}); err != nil {
		t.Fatal(err)
	}
	inc.DeleteBase([]provenance.Var{"bc"})
	if inc.DB().Rel("T").Len() != before {
		t.Errorf("T size %d after round trip, want %d", inc.DB().Rel("T").Len(), before)
	}
	if inc.DB().Rel("E").Contains(edge("b", "c")) {
		t.Error("base edge survived")
	}
}
