package datalog

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

// pathEDB seeds the transitive-closure program (tcProgram, eval_test.go)
// with a path of n edges: the fixpoint then needs one semi-naive iteration
// per hop, which is what the deadline tests lean on.
func pathEDB(n int) *DB {
	edb := NewDB()
	for i := 0; i < n; i++ {
		edb.Add("E", schema.NewTuple(schema.String(fmt.Sprint(i)), schema.String(fmt.Sprint(i+1))), provenance.One())
	}
	return edb
}

// TestEvalCtxExpiredBeforeFirstIteration: an already-expired context
// returns its error before a single iteration runs — the result database is
// never produced and the EDB is untouched.
func TestEvalCtxExpiredBeforeFirstIteration(t *testing.T) {
	edb := pathEDB(10)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Minute))
	defer cancel()
	res, err := EvalCtx(ctx, tcProgram(), edb, Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("EvalCtx = %v, want DeadlineExceeded", err)
	}
	if res != nil {
		t.Fatal("expired evaluation still returned a database")
	}
	if got := edb.Rel("T").Len(); got != 0 {
		t.Fatalf("expired evaluation derived %d tc facts into the EDB", got)
	}
}

// TestEvalCtxDeadlineStopsLongFixpoint: transitive closure over a long
// path needs one semi-naive iteration per hop; a short deadline stops it
// within one iteration instead of running all of them.
func TestEvalCtxDeadlineStopsLongFixpoint(t *testing.T) {
	prog, edb := tcProgram(), pathEDB(3000)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := EvalCtx(ctx, prog, edb, Options{Provenance: true, Parallelism: -1})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("EvalCtx = %v, want DeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	t.Logf("deadline honored after %v", elapsed)
}

// TestEvalCtxCancelParallelWorkers: cancellation also reaches the parallel
// stratum workers' per-job checks.
func TestEvalCtxCancelParallelWorkers(t *testing.T) {
	prog, edb := tcProgram(), pathEDB(2000)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := EvalCtx(ctx, prog, edb, Options{Provenance: true, Parallelism: 4})
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallel EvalCtx = %v, want Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("parallel evaluation ignored cancellation")
	}
}

// TestIncrementalInsertExpiredContext: an expired context stops Insert
// before the seed merge mutates the maintained database.
func TestIncrementalInsertExpiredContext(t *testing.T) {
	inc, err := NewIncremental(tcProgram(), pathEDB(5), Options{Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	before := inc.DB().Rel("T").Len()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err = inc.Insert(ctx, []Fact2{{Pred: "E",
		Tuple: schema.NewTuple(schema.String("x"), schema.String("y")), Prov: provenance.NewVar("t")}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Insert = %v, want DeadlineExceeded", err)
	}
	if got := inc.DB().Rel("T").Len(); got != before {
		t.Fatalf("expired Insert changed the database: %d -> %d", before, got)
	}
	if inc.DB().Rel("E").Len() != 5 {
		t.Fatalf("expired Insert merged the seed fact")
	}
}
