package datalog

import (
	"context"
	"fmt"
	"testing"

	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

// The streaming iterator pipelines (pipeline.go) must produce byte-identical
// databases — tuples AND provenance polynomials — to the materialized
// reference evaluator, across every workload shape, provenance mode, and
// parallelism setting. Options.Materialized selects the reference.

func TestStreamingEquivalentToMaterialized(t *testing.T) {
	for name, build := range equivPrograms() {
		for _, prov := range []bool{false, true} {
			for _, maxMono := range []int{0, 2} {
				if maxMono != 0 && !prov {
					continue
				}
				for _, par := range []int{-1, 2, 8} {
					prog, edb := build()
					opts := Options{Provenance: prov, MaxMonomials: maxMono, Parallelism: par}
					mat := opts
					mat.Materialized = true
					want, err := Eval(prog, edb, mat)
					if err != nil {
						t.Fatal(err)
					}
					got, err := Eval(prog, edb, opts)
					if err != nil {
						t.Fatal(err)
					}
					requireDBsEqual(t, fmt.Sprintf("%s/prov=%v/max=%d/par=%d", name, prov, maxMono, par), want, got)
				}
			}
		}
	}
}

func TestStreamingExactProvenanceMatchesMaterialized(t *testing.T) {
	// Exact N[X] mode takes the dedicated non-recursive path (evalExact),
	// which has its own streaming sink.
	prog := &Program{Rules: []Rule{
		{ID: "a", Head: NewHead("A", HV("x"), HV("z")), Body: []Literal{
			Pos(NewAtom("E", V("x"), V("y"))), Pos(NewAtom("E", V("y"), V("z")))}},
		{ID: "b", Head: NewHead("B", HV("x")), Body: []Literal{
			Pos(NewAtom("A", V("x"), V("z")))}},
	}}
	edb := NewDB()
	for i := 0; i < 5; i++ {
		edb.Add("E", edge(fmt.Sprint("n", i%3), fmt.Sprint("n", (i+1)%4)),
			provenance.NewVar(provenance.Var(fmt.Sprint("e", i))))
	}
	opts := Options{Provenance: true, Exact: true}
	mat := opts
	mat.Materialized = true
	want, err := Eval(prog, edb, mat)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Eval(prog, edb, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireDBsEqual(t, "exact", want, got)
}

func TestStreamingIncrementalMatchesMaterialized(t *testing.T) {
	build := func(materialized bool) (*Incremental, error) {
		edb := NewDB()
		for i := 0; i < 8; i++ {
			edb.Add("E", edge(fmt.Sprint("n", i), fmt.Sprint("n", i+1)),
				provenance.NewVar(provenance.Var(fmt.Sprint("e", i))))
		}
		return NewIncremental(tcProgram(), edb, Options{Materialized: materialized})
	}
	matInc, err := build(true)
	if err != nil {
		t.Fatal(err)
	}
	strInc, err := build(false)
	if err != nil {
		t.Fatal(err)
	}
	requireDBsEqual(t, "initial-fixpoint", matInc.DB(), strInc.DB())
	batch := []Fact2{
		{Pred: "E", Tuple: edge("n8", "n0"), Prov: provenance.NewVar("loop")},
		{Pred: "E", Tuple: edge("x", "y"), Prov: provenance.NewVar("xy")},
	}
	matCh, err := matInc.Insert(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	strCh, err := strInc.Insert(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(matCh) != len(strCh) {
		t.Fatalf("change count: streaming %d vs materialized %d", len(strCh), len(matCh))
	}
	for i := range matCh {
		if matCh[i].Pred != strCh[i].Pred || !matCh[i].Tuple.Equal(strCh[i].Tuple) ||
			!matCh[i].Prov.Equal(strCh[i].Prov) || matCh[i].Fresh != strCh[i].Fresh {
			t.Fatalf("change %d diverges: %+v vs %+v", i, strCh[i], matCh[i])
		}
	}
	requireDBsEqual(t, "after-insert", matInc.DB(), strInc.DB())
	matInc.DeleteBase([]provenance.Var{"loop", "e3"})
	strInc.DeleteBase([]provenance.Var{"loop", "e3"})
	requireDBsEqual(t, "after-delete", matInc.DB(), strInc.DB())
}

func TestStreamingChunkedParallelEquivalence(t *testing.T) {
	// A delta far beyond chunkMin with few jobs forces partitionJobs to
	// split one firing across workers; the streaming buffer sinks must
	// preserve the deterministic (job, emission) merge order.
	build := func(materialized bool) (*DB, []Change) {
		edb := NewDB()
		for i := int64(0); i < 8; i++ {
			edb.AddTuple("E", schema.NewTuple(schema.Int(i), schema.Int(i+1)))
		}
		inc, err := NewIncremental(tcProgram(), edb,
			Options{Parallelism: 4, Materialized: materialized})
		if err != nil {
			t.Fatal(err)
		}
		// Disjoint edges: a big delta (forcing chunk partitioning) without a
		// combinatorial closure.
		batch := make([]Fact2, 0, 1200)
		for i := int64(0); i < 1200; i++ {
			batch = append(batch, Fact2{
				Pred:  "E",
				Tuple: schema.NewTuple(schema.Int(1000+2*i), schema.Int(1000+2*i+1)),
				Prov:  provenance.NewVar(provenance.Var(fmt.Sprint("t", i))),
			})
		}
		cs, err := inc.Insert(context.Background(), batch)
		if err != nil {
			t.Fatal(err)
		}
		return inc.DB(), cs
	}
	wantDB, wantCh := build(true)
	gotDB, gotCh := build(false)
	if len(wantCh) != len(gotCh) {
		t.Fatalf("change count: streaming %d vs materialized %d", len(gotCh), len(wantCh))
	}
	requireDBsEqual(t, "chunked-parallel", wantDB, gotDB)
}

func TestDeltaHashJoinEquivalence(t *testing.T) {
	// A delta atom with a constant column and a delta extent beyond
	// deltaHashMin takes the transient-hash path; results must match the
	// materialized linear scan exactly, and the build must be observable.
	prog := &Program{Rules: []Rule{{
		ID:   "sel",
		Head: NewHead("Out", HV("y")),
		Body: []Literal{Pos(NewAtom("P", C(schema.Int(7)), V("y")))},
	}}}
	run := func(materialized bool, stats *EvalStats) (*DB, []Change) {
		inc, err := NewIncremental(prog, NewDB(),
			Options{Materialized: materialized, Stats: stats})
		if err != nil {
			t.Fatal(err)
		}
		batch := make([]Fact2, 0, 4*deltaHashMin)
		for i := int64(0); i < 4*deltaHashMin; i++ {
			batch = append(batch, Fact2{
				Pred:  "P",
				Tuple: schema.NewTuple(schema.Int(i%9), schema.Int(i)),
				Prov:  provenance.NewVar(provenance.Var(fmt.Sprint("p", i))),
			})
		}
		cs, err := inc.Insert(context.Background(), batch)
		if err != nil {
			t.Fatal(err)
		}
		return inc.DB(), cs
	}
	wantDB, wantCh := run(true, nil)
	var stats EvalStats
	gotDB, gotCh := run(false, &stats)
	if len(wantCh) != len(gotCh) {
		t.Fatalf("change count: streaming %d vs materialized %d", len(gotCh), len(wantCh))
	}
	requireDBsEqual(t, "delta-hash", wantDB, gotDB)
	if stats.HashJoinBuilds.Load() == 0 {
		t.Error("expected at least one delta hash build on a probed delta this large")
	}
}

func TestEvalStatsCounters(t *testing.T) {
	// A rule with a pushed-down equality filter: the probe counters, the
	// pushdown hit rate, and the emission counters must all be live.
	prog := &Program{Rules: []Rule{{
		ID:   "f",
		Head: NewHead("Out", HV("x"), HV("y")),
		Body: []Literal{
			Pos(NewAtom("R", V("x"), V("y"))),
			Cmp(V("y"), OpEq, C(schema.Int(3))),
		},
	}}}
	edb := NewDB()
	for i := int64(0); i < 40; i++ {
		edb.AddTuple("R", schema.NewTuple(schema.Int(i), schema.Int(i%5)))
	}
	var stats EvalStats
	res, err := Eval(prog, edb, Options{Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rel("Out").Len(); got != 8 {
		t.Fatalf("Out has %d facts, want 8", got)
	}
	if stats.Probes.Load() == 0 {
		t.Error("Probes = 0")
	}
	if stats.PushdownProbes.Load() == 0 {
		t.Error("PushdownProbes = 0: the y=3 equality did not reach the probe key")
	}
	if rate := stats.PushdownRate(); rate <= 0 || rate > 1 {
		t.Errorf("PushdownRate = %v, want in (0, 1]", rate)
	}
	if got := stats.Emitted.Load(); got != 8 {
		t.Errorf("Emitted = %d, want 8", got)
	}
	// Pushdown means the index bucket only surfaced matching rows.
	if c := stats.Candidates.Load(); c != 8 {
		t.Errorf("Candidates = %d, want 8 (pushdown should hide non-matching rows)", c)
	}
	if stats.Rounds.Load() == 0 {
		t.Error("Rounds = 0")
	}
	if stats.String() == "" {
		t.Error("String() empty")
	}
}

func TestEvalStatsPeakLiveParallel(t *testing.T) {
	// Parallel rounds buffer emissions at the round barrier; PeakLive must
	// report the high-water mark. Sequential streaming buffers nothing.
	prog := &Program{Rules: []Rule{
		{ID: "a", Head: NewHead("A", HV("x"), HV("y")), Body: []Literal{Pos(NewAtom("E", V("x"), V("y")))}},
		{ID: "b", Head: NewHead("B", HV("x"), HV("y")), Body: []Literal{Pos(NewAtom("E", V("x"), V("y")))}},
	}}
	edb := NewDB()
	for i := int64(0); i < 2000; i++ {
		edb.AddTuple("E", schema.NewTuple(schema.Int(i), schema.Int(i+1)))
	}
	var seq EvalStats
	if _, err := Eval(prog, edb, Options{Parallelism: -1, Stats: &seq}); err != nil {
		t.Fatal(err)
	}
	if got := seq.PeakLive.Load(); got != 0 {
		t.Errorf("sequential PeakLive = %d, want 0 (eager merge buffers nothing)", got)
	}
	var par EvalStats
	if _, err := Eval(prog, edb, Options{Parallelism: 4, Stats: &par}); err != nil {
		t.Fatal(err)
	}
	if got := par.PeakLive.Load(); got != 4000 {
		t.Errorf("parallel PeakLive = %d, want 4000 (both rules' round-0 buffers)", got)
	}
}
