package datalog

import (
	"context"
	"fmt"
	"testing"

	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

// BenchmarkIncrementalRounds measures consecutive incremental fixpoints on
// one maintained Incremental — the executor's steady state, where the
// arena's buffers (and within a fixpoint, the worker pool) are reused
// round after round. Sweeps the parallelism settings so allocation and
// coordination overhead per setting show up in -benchmem.
func BenchmarkIncrementalRounds(b *testing.B) {
	prog := &Program{Rules: []Rule{{
		ID:   "tc",
		Head: NewHead("T", HV("x"), HV("z")),
		Body: []Literal{
			Pos(NewAtom("E", V("x"), V("y"))),
			Pos(NewAtom("E", V("y"), V("z"))),
		},
	}}}
	for _, m := range []struct {
		name string
		par  int
	}{{"sequential", -1}, {"workers=4", 4}, {"adaptive", 0}} {
		b.Run(m.name, func(b *testing.B) {
			edb := NewDB()
			for i := int64(0); i < 256; i++ {
				edb.AddTuple("E", schema.NewTuple(schema.Int(i), schema.Int(i+1)))
			}
			inc, err := NewIncremental(prog, edb, Options{Provenance: true, Parallelism: m.par})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := int64(10_000 + i)
				batch := []Fact2{
					{Pred: "E", Tuple: schema.NewTuple(schema.Int(k), schema.Int(k+1)),
						Prov: provenance.NewVar(provenance.Var(fmt.Sprint("a", i)))},
					{Pred: "E", Tuple: schema.NewTuple(schema.Int(k+1), schema.Int(k+2)),
						Prov: provenance.NewVar(provenance.Var(fmt.Sprint("b", i)))},
				}
				if _, err := inc.Insert(context.Background(), batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
