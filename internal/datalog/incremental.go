package datalog

import (
	"context"
	"fmt"
	"sort"

	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

// Change describes one fact affected by an incremental operation.
type Change struct {
	Pred  string
	Tuple schema.Tuple
	// Key is Tuple.Key(), carried from the merge that produced the change
	// so downstream consumers (e.g. exchange collation) need not re-encode
	// the tuple.
	Key string
	// Prov is the annotation delta: for insertions, the new provenance
	// part; for deletions, the remaining provenance (zero if the fact was
	// removed entirely).
	Prov provenance.Poly
	// Removed reports that the fact was deleted from the database.
	Removed bool
	// Fresh reports that the fact is entirely new (not just new
	// provenance on an existing tuple).
	Fresh bool
}

// Incremental maintains the fixpoint of a datalog program under base-fact
// insertions and deletions. It is the machinery behind ORCHESTRA's
// incremental update exchange [Green et al., VLDB 2007]: insertions
// propagate with semi-naive evaluation seeded from the delta; deletions
// use the provenance annotations to decide which derived tuples lost all
// their derivations, avoiding full recomputation.
//
// Incremental evaluation always computes witness-set (B[X]) provenance —
// deletion propagation is impossible without annotations.
type Incremental struct {
	prog    *Program
	strata  [][]Rule
	db      *DB
	pl      *planner
	planTab [][]rulePlans // resolved plans, aligned with strata
	opts    Options
	maxIter int
	// tokenIndex maps a provenance variable to the set of facts whose
	// annotation currently mentions it, as pred -> tuple keys. It is built
	// lazily: insertions append to tokenLog (a flat, duplicate-tolerant
	// record of token occurrences), and the deletion-side consumers fold
	// the log into the maps on demand. Insert-heavy streams — the common
	// update-exchange shape — therefore never pay the nested-map
	// maintenance or its GC scan load.
	tokenIndex map[provenance.Var]map[string]map[string]bool
	tokenLog   []tokenEntry
	dead       map[provenance.Var]bool
	// arena holds the round executor's reusable buffers. It persists across
	// Insert/InsertGroups calls, so consecutive incremental fixpoints reuse
	// the same emission buffers and shard groups instead of reallocating
	// them per propagation (see executor.go).
	arena roundArena
	// needTab[si] is the union of positive body predicates of strata si and
	// later: the only predicates whose changes can seed further semi-naive
	// rounds once propagation has reached stratum si. Delta entries for any
	// other predicate are dead weight (heads that no body consumes — the
	// common update-exchange shape) and are never built.
	needTab []map[string]bool
}

// seedNeed returns the need set for seed-time delta construction (stratum 0
// sees everything later strata consume), or nil when the program has no
// strata.
func (inc *Incremental) seedNeed() map[string]bool {
	if len(inc.needTab) == 0 {
		return nil
	}
	return inc.needTab[0]
}

// tokenEntry records that the fact stored under key in pred mentioned the
// token at some point; duplicates are harmless (folding is idempotent).
type tokenEntry struct {
	v    provenance.Var
	pred string
	key  string
}

// TokenEntry is the exported form of one token-occurrence record: the fact
// stored under Key in Pred mentioned Var in its annotation at some point.
// Duplicates are tolerated everywhere (folding is idempotent), which is
// what lets the engine snapshot carry the flat log instead of the folded
// nested-map index.
type TokenEntry struct {
	Var  provenance.Var
	Pred string
	Key  string
}

// TokenOccurrences returns the maintained token-occurrence state flattened
// into one deterministic (sorted, deduplicated) list — the serializable
// form of tokenIndex plus the pending tokenLog. RestoreIncremental accepts
// it back verbatim; the lazy index refolds on the first deletion-side
// consumer.
func (inc *Incremental) TokenOccurrences() []TokenEntry {
	inc.foldTokenLog()
	out := make([]TokenEntry, 0, len(inc.tokenLog))
	for v, preds := range inc.tokenIndex {
		for pred, keys := range preds {
			for k := range keys {
				out = append(out, TokenEntry{Var: v, Pred: pred, Key: k})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Var != b.Var {
			return a.Var < b.Var
		}
		if a.Pred != b.Pred {
			return a.Pred < b.Pred
		}
		return a.Key < b.Key
	})
	return out
}

// DeadTokens returns the sorted set of tokens killed by DeleteBase since
// construction — part of the serializable engine state: a restored engine
// must keep treating them as dead when later deletions restrict
// annotations.
func (inc *Incremental) DeadTokens() []provenance.Var {
	out := make([]provenance.Var, 0, len(inc.dead))
	for v := range inc.dead {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RestoreIncremental rebuilds maintained state around a database already at
// fixpoint — the snapshot-restore counterpart of NewIncremental. It skips
// the initial evaluation entirely (the caller warrants db is the fixpoint
// of p over its base facts, e.g. a DecodeDB of a snapshot taken from a
// live Incremental) but rebuilds everything derived from the program text:
// strata, compiled plans, and the need tables. The token occurrences and
// dead set seed the deletion index lazily, exactly as a live engine keeps
// them. Ownership of db transfers to the returned Incremental.
func RestoreIncremental(p *Program, db *DB, opts Options, occurrences []TokenEntry, dead []provenance.Var) (*Incremental, error) {
	for _, r := range p.Rules {
		for _, l := range r.Body {
			if l.Negated {
				return nil, fmt.Errorf("datalog: incremental maintenance requires a negation-free program (rule %s)", r.ID)
			}
		}
	}
	strata, err := p.Stratify()
	if err != nil {
		return nil, err
	}
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = DefaultMaxIterations
	}
	ensurePreds(p, db)
	inc := &Incremental{
		prog:   p,
		strata: strata,
		db:     db,
		pl:     newPlanner(opts.NoReorder),
		opts: Options{
			Provenance:       true,
			ChaseSubsumption: opts.ChaseSubsumption,
			MaxMonomials:     opts.MaxMonomials,
			Parallelism:      opts.Parallelism,
			NoReorder:        opts.NoReorder,
			Materialized:     opts.Materialized,
			Stats:            opts.Stats,
		},
		maxIter:    maxIter,
		tokenIndex: map[provenance.Var]map[string]map[string]bool{},
		dead:       make(map[provenance.Var]bool, len(dead)),
	}
	inc.planTab = make([][]rulePlans, len(strata))
	for si, stratum := range strata {
		inc.planTab[si] = inc.pl.plansFor(stratum, db)
	}
	inc.needTab = make([]map[string]bool, len(strata))
	suffix := map[string]bool{}
	for si := len(strata) - 1; si >= 0; si-- {
		for _, r := range strata[si] {
			for _, l := range r.Body {
				if l.Builtin == nil && !l.Negated {
					suffix[l.Atom.Pred] = true
				}
			}
		}
		m := make(map[string]bool, len(suffix))
		for p := range suffix {
			m[p] = true
		}
		inc.needTab[si] = m
	}
	inc.tokenLog = make([]tokenEntry, 0, len(occurrences))
	for _, e := range occurrences {
		inc.tokenLog = append(inc.tokenLog, tokenEntry{v: e.Var, pred: e.Pred, key: e.Key})
	}
	for _, v := range dead {
		inc.dead[v] = true
	}
	return inc, nil
}

// NewIncremental computes the initial fixpoint over edb and returns the
// maintained state. The input database is captured by copy-on-write
// snapshot, never mutated: extents the maintained fixpoint later touches
// are cloned lazily, on first write.
func NewIncremental(p *Program, edb *DB, opts Options) (*Incremental, error) {
	// Deletion propagation relies on provenance annotations, which do not
	// record negative dependencies; tgd mapping programs are negation-free.
	for _, r := range p.Rules {
		for _, l := range r.Body {
			if l.Negated {
				return nil, fmt.Errorf("datalog: incremental maintenance requires a negation-free program (rule %s)", r.ID)
			}
		}
	}
	opts.Provenance = true
	opts.Exact = false
	res, err := Eval(p, edb, opts)
	if err != nil {
		return nil, err
	}
	strata, err := p.Stratify()
	if err != nil {
		return nil, err
	}
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = DefaultMaxIterations
	}
	ensurePreds(p, res)
	inc := &Incremental{
		prog:   p,
		strata: strata,
		db:     res,
		pl:     newPlanner(opts.NoReorder),
		opts: Options{
			Provenance:       true,
			ChaseSubsumption: opts.ChaseSubsumption,
			MaxMonomials:     opts.MaxMonomials,
			Parallelism:      opts.Parallelism,
			NoReorder:        opts.NoReorder,
			Materialized:     opts.Materialized,
			Stats:            opts.Stats,
		},
		maxIter:    maxIter,
		tokenIndex: map[provenance.Var]map[string]map[string]bool{},
		dead:       map[provenance.Var]bool{},
	}
	inc.planTab = make([][]rulePlans, len(strata))
	for si, stratum := range strata {
		inc.planTab[si] = inc.pl.plansFor(stratum, res)
	}
	inc.needTab = make([]map[string]bool, len(strata))
	suffix := map[string]bool{}
	for si := len(strata) - 1; si >= 0; si-- {
		for _, r := range strata[si] {
			for _, l := range r.Body {
				if l.Builtin == nil && !l.Negated {
					suffix[l.Atom.Pred] = true
				}
			}
		}
		m := make(map[string]bool, len(suffix))
		for p := range suffix {
			m[p] = true
		}
		inc.needTab[si] = m
	}
	for _, pred := range res.Preds() {
		for _, f := range res.Rel(pred).Facts() {
			inc.indexFact(pred, f.Tuple.Key(), f.Prov)
		}
	}
	return inc, nil
}

// DB returns the maintained database (read-only by convention).
func (inc *Incremental) DB() *DB { return inc.db }

// indexFact records, for every token mentioned in p, that the fact stored
// under key k in pred currently depends on it. k must be t.Key() of the
// stored tuple; callers on the hot path already have it.
// tokenLogFoldThreshold bounds the pending occurrence log: beyond this many
// entries the log folds into the deduplicated maps even without a
// deletion-side consumer, so insert-only streams cannot grow it without
// bound (occurrences repeat on every re-derivation; the maps store each
// (token, pred, key) once).
const tokenLogFoldThreshold = 1 << 18

func (inc *Incremental) indexFact(pred, k string, p provenance.Poly) {
	// Append raw variable occurrences; foldTokenLog dedups into the nested
	// maps when a deletion-side consumer needs them or the log grows large.
	for _, m := range p.Monomials() {
		for _, vp := range m.Vars {
			inc.tokenLog = append(inc.tokenLog, tokenEntry{v: vp.Var, pred: pred, key: k})
		}
	}
	if len(inc.tokenLog) >= tokenLogFoldThreshold {
		inc.foldTokenLog()
	}
}

// foldTokenLog drains the pending occurrence log into tokenIndex.
func (inc *Incremental) foldTokenLog() {
	if len(inc.tokenLog) == 0 {
		return
	}
	for _, e := range inc.tokenLog {
		preds := inc.tokenIndex[e.v]
		if preds == nil {
			preds = map[string]map[string]bool{}
			inc.tokenIndex[e.v] = preds
		}
		keys := preds[e.pred]
		if keys == nil {
			keys = map[string]bool{}
			preds[e.pred] = keys
		}
		keys[e.key] = true
	}
	inc.tokenLog = inc.tokenLog[:0]
}

// Insert adds base facts and propagates them through the program. It
// returns every change to the database in deterministic order. Cancellation
// is cooperative: the context is checked before the seed merge and once per
// semi-naive iteration, so a propagation started with an expired context
// returns ctx.Err() before mutating the database.
func (inc *Incremental) Insert(ctx context.Context, facts []Fact2) ([]Change, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var changes []Change
	// Seed: merge the base facts, collecting genuine delta — but only for
	// predicates some rule body consumes (seedNeed); a seed no rule reads
	// cannot propagate, so its delta entry would only be dead weight.
	delta := map[string]map[string]deltaFact{}
	need := inc.seedNeed()
	opts := inc.opts
	for _, bf := range facts {
		mr, changed := merge(inc.db.MutableRel(bf.Pred), bf.Tuple, bf.Prov, opts)
		if !changed {
			continue
		}
		inc.indexFact(bf.Pred, mr.key, mr.newPart)
		if need == nil || need[bf.Pred] {
			addDelta(delta, bf.Pred, mr.key, bf.Tuple, mr.newPart)
		}
		changes = append(changes, Change{Pred: bf.Pred, Tuple: bf.Tuple, Key: mr.key, Prov: mr.newPart, Fresh: true})
	}
	if len(changes) == 0 {
		return nil, nil
	}
	if len(delta) > 0 {
		// Propagate stratum by stratum; the delta from earlier strata feeds
		// later ones. One executor serves every stratum's rounds, borrowing
		// the maintained arena so consecutive Inserts reuse its buffers.
		sink := func(mr mergeResult) {
			changes = append(changes, Change{Pred: mr.pred, Tuple: mr.tuple, Key: mr.key, Prov: mr.newPart, Fresh: mr.fresh})
		}
		re := newRoundExec(inc.opts, &inc.arena)
		defer re.close()
		for si, stratum := range inc.strata {
			var err error
			delta, err = inc.propagate(ctx, stratum, inc.planTab[si], re, inc.needTab[si], delta, sink)
			if err != nil {
				return nil, err
			}
		}
	}
	sortChanges(changes)
	return changes, nil
}

// addDelta folds one merge's genuinely new annotation part into a pending
// delta. The same tuple can appear more than once in a batch (distinct
// tokens): its delta annotation accumulates, never overwrites.
func addDelta(delta map[string]map[string]deltaFact, pred, k string, tu schema.Tuple, newPart provenance.Poly) {
	m := delta[pred]
	if m == nil {
		m = map[string]deltaFact{}
		delta[pred] = m
	}
	if df, ok := m[k]; ok {
		df.prov = df.prov.Add(newPart).Linearize()
		m[k] = df
	} else {
		m[k] = deltaFact{tuple: tu, prov: newPart}
	}
}

// Fact2 is a base fact targeted at a predicate (the name Fact is taken by
// the annotated-tuple type).
type Fact2 struct {
	Pred  string
	Tuple schema.Tuple
	Prov  provenance.Poly
}

// groupPart is one batched merge's contribution to a tuple, attributed to
// the insertion group that owns it (see InsertGroups).
type groupPart struct {
	group int
	seed  bool // a base-fact seed merge, not a derived one
	prov  provenance.Poly
}

// groupAcc collects everything a batched propagation did to one tuple, in
// arrival order, so per-group change lists can be replayed afterwards.
type groupAcc struct {
	pred    string
	key     string
	tuple   schema.Tuple
	existed bool            // stored before the batch
	prior   provenance.Poly // annotation before the batch (zero if !existed)
	parts   []groupPart
}

// InsertGroups is the group-commit form of Insert: it merges every group's
// base facts and runs one semi-naive propagation per seed-disjoint run of
// groups — for a burst of transactions touching distinct tuples, one
// fixpoint for the whole burst — then reconstructs per-group change lists
// equivalent to inserting the groups one Insert call at a time, in order.
// The returned slice is aligned with groups.
//
// Attribution works through the provenance tokens: a monomial derived by
// the batch belongs to the latest group whose seed tokens it mentions —
// exactly the group whose sequential Insert would first derive it, since
// evaluation is monotone and earlier groups' facts are all in place by
// then. For each touched tuple the per-group annotation deltas are then
// replayed in group order through the same Add/Linearize/Truncate algebra
// the sequential merges use, so reported Prov deltas and Fresh flags match
// the sequential ones. Two groups seeding the SAME tuple would defeat this
// (their pooled delta annotation makes downstream rule firings emit
// monomial mixes that sequential insertion splits across separate merges),
// so the batch is partitioned into runs at every seed overlap and the runs
// propagate sequentially. The one remaining divergence window is a binding
// MaxMonomials bound: when truncation discards witnesses mid-propagation,
// sequential insertion may retain already-derived products of a witness the
// batch never materializes. Both results are valid bounded witness sets;
// they can simply retain different short derivations (see DESIGN.md §8).
func (inc *Incremental) InsertGroups(ctx context.Context, groups [][]Fact2) ([][]Change, error) {
	out := make([][]Change, len(groups))
	// Attribution needs every seed annotation to mention at least one
	// variable (update-exchange seeds are single tokens): a monomial derived
	// from a token-free seed carries no trace of its group. Fall back to
	// sequential insertion for such batches rather than misattribute.
	tokenFree := false
	for _, facts := range groups {
		for _, bf := range facts {
			for _, m := range bf.Prov.Monomials() {
				if len(m.Vars) == 0 {
					tokenFree = true
				}
			}
		}
	}
	if tokenFree {
		for j, g := range groups {
			cs, err := inc.Insert(ctx, g)
			if err != nil {
				return nil, err
			}
			out[j] = cs
		}
		return out, nil
	}
	start := 0
	seen := map[string]bool{}
	flush := func(end int) error {
		if start >= end {
			return nil
		}
		cs, err := inc.insertGroupRun(ctx, groups[start:end])
		if err != nil {
			return err
		}
		copy(out[start:end], cs)
		start = end
		return nil
	}
	for gi, facts := range groups {
		overlap := false
		for _, bf := range facts {
			if seen[bf.Pred+"\x00"+bf.Tuple.Key()] {
				overlap = true
				break
			}
		}
		if overlap {
			if err := flush(gi); err != nil {
				return nil, err
			}
			seen = map[string]bool{}
		}
		for _, bf := range facts {
			seen[bf.Pred+"\x00"+bf.Tuple.Key()] = true
		}
	}
	if err := flush(len(groups)); err != nil {
		return nil, err
	}
	return out, nil
}

// insertGroupRun batches one seed-disjoint run of groups through a single
// seeded propagation. See InsertGroups.
func (inc *Incremental) insertGroupRun(ctx context.Context, groups [][]Fact2) ([][]Change, error) {
	out := make([][]Change, len(groups))
	if len(groups) == 1 {
		cs, err := inc.Insert(ctx, groups[0])
		if err != nil {
			return nil, err
		}
		out[0] = cs
		return out, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Map each seed token to the latest group that mints it.
	tokenGroup := map[provenance.Var]int{}
	for gi, facts := range groups {
		for _, bf := range facts {
			for _, m := range bf.Prov.Monomials() {
				for _, vp := range m.Vars {
					if old, ok := tokenGroup[vp.Var]; !ok || gi > old {
						tokenGroup[vp.Var] = gi
					}
				}
			}
		}
	}
	accs := map[string]*groupAcc{}
	touch := func(pred string, mr mergeResult) *groupAcc {
		ak := pred + "\x00" + mr.key
		a := accs[ak]
		if a == nil {
			a = &groupAcc{pred: pred, key: mr.key, tuple: mr.tuple, existed: !mr.fresh, prior: mr.prior}
			accs[ak] = a
		}
		return a
	}
	// owner returns the group a derived monomial belongs to: the latest
	// group among its seed tokens. Foreign factors (mapping tokens,
	// pre-batch data) do not contribute.
	owner := func(m provenance.Monomial) int {
		gi := 0
		for _, vp := range m.Vars {
			if g, ok := tokenGroup[vp.Var]; ok && g > gi {
				gi = g
			}
		}
		return gi
	}
	opts := inc.opts
	delta := map[string]map[string]deltaFact{}
	need := inc.seedNeed()
	// Seed every group's base facts, in group order.
	for gi, facts := range groups {
		for _, bf := range facts {
			mr, changed := merge(inc.db.MutableRel(bf.Pred), bf.Tuple, bf.Prov, opts)
			if !changed {
				continue
			}
			inc.indexFact(bf.Pred, mr.key, mr.newPart)
			if need == nil || need[bf.Pred] {
				addDelta(delta, bf.Pred, mr.key, bf.Tuple, mr.newPart)
			}
			a := touch(bf.Pred, mr)
			a.parts = append(a.parts, groupPart{group: gi, seed: true, prov: mr.newPart})
		}
	}
	if len(delta) > 0 {
		// One propagation for the whole batch. Each merge's new monomials
		// are split by owning group, preserving arrival order.
		sink := func(mr mergeResult) {
			a := touch(mr.pred, mr)
			monos := mr.newPart.Monomials()
			single := true
			gi := owner(monos[0])
			for _, m := range monos[1:] {
				if owner(m) != gi {
					single = false
					break
				}
			}
			if single {
				a.parts = append(a.parts, groupPart{group: gi, prov: mr.newPart})
				return
			}
			byGroup := map[int][]provenance.Monomial{}
			order := []int{}
			for _, m := range monos {
				g := owner(m)
				if _, ok := byGroup[g]; !ok {
					order = append(order, g)
				}
				byGroup[g] = append(byGroup[g], m)
			}
			sort.Ints(order)
			for _, g := range order {
				a.parts = append(a.parts, groupPart{group: g, prov: provenance.FromMonomials(byGroup[g])})
			}
		}
		re := newRoundExec(inc.opts, &inc.arena)
		defer re.close()
		for si, stratum := range inc.strata {
			var err error
			delta, err = inc.propagate(ctx, stratum, inc.planTab[si], re, inc.needTab[si], delta, sink)
			if err != nil {
				return nil, err
			}
		}
	}
	// Replay each touched tuple's contributions in group order, rebasing
	// every part onto the group-ordered annotation chain, so each group's
	// reported deltas are the ones its own sequential Insert would produce.
	for _, a := range accs {
		sameGroup := true
		for _, p := range a.parts[1:] {
			if p.group != a.parts[0].group {
				sameGroup = false
				break
			}
		}
		if sameGroup {
			// Single-group tuples (the common case): the batched merges ARE
			// the sequential ones; emit their deltas directly.
			gi := a.parts[0].group
			present := a.existed
			for _, p := range a.parts {
				out[gi] = append(out[gi], Change{Pred: a.pred, Tuple: a.tuple, Key: a.key, Prov: p.prov, Fresh: p.seed || !present})
				present = true
			}
			continue
		}
		prev := a.prior
		present := a.existed
		for gi := range groups {
			for _, p := range a.parts {
				if p.group != gi {
					continue
				}
				merged := prev.Add(p.prov).Linearize().Truncate(opts.MaxMonomials)
				if merged.Equal(prev) {
					continue
				}
				newPart := diffNew(merged, prev)
				out[gi] = append(out[gi], Change{Pred: a.pred, Tuple: a.tuple, Key: a.key, Prov: newPart, Fresh: p.seed || !present})
				present = true
				prev = merged
			}
		}
	}
	for gi := range out {
		sortChanges(out[gi])
	}
	return out, nil
}

// propagate runs semi-naive rounds of one stratum starting from seed; it
// returns the accumulated delta (seed plus everything newly derived) so
// later strata can consume it, and reports every effective merge to sink in
// deterministic order. Rounds run on the caller's executor, so one worker
// pool and buffer arena serve the whole propagation.
//
// need (needTab[si] of the stratum being propagated) filters which merges
// grow the pending delta: a head predicate no body of this or any later
// stratum consumes cannot seed further rounds, so its delta entries are
// never built. sink still observes every merge — the change log is
// unfiltered.
func (inc *Incremental) propagate(ctx context.Context, rules []Rule, plans []rulePlans, re *roundExec, need map[string]bool, seed map[string]map[string]deltaFact, sink func(mergeResult)) (map[string]map[string]deltaFact, error) {
	opts := inc.opts
	// The caller hands over ownership of seed (Insert rebinds its delta to
	// the return value), so the accumulator aliases it instead of copying:
	// per-round results merge into the seed maps after the round has
	// finished reading them.
	accum := seed
	cur := seed
	var jobs []job
	for iter := 0; len(cur) > 0; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if iter >= inc.maxIter {
			return nil, fmt.Errorf("datalog: incremental fixpoint not reached after %d iterations", inc.maxIter)
		}
		next := map[string]map[string]deltaFact{}
		absorb := func(mr mergeResult) {
			inc.indexFact(mr.pred, mr.key, mr.newPart)
			if need == nil || need[mr.pred] {
				addDelta(next, mr.pred, mr.key, mr.tuple, mr.newPart)
			}
			sink(mr)
		}
		jobs = jobs[:0]
		lists := map[string][]deltaFact{}
		for ri, r := range rules {
			for i, l := range r.Body {
				if l.Builtin != nil || l.Negated {
					continue
				}
				if dm, ok := cur[l.Atom.Pred]; ok && len(dm) > 0 {
					dl, ok := lists[l.Atom.Pred]
					if !ok {
						dl = deltaList(dm)
						lists[l.Atom.Pred] = dl
					}
					jobs = append(jobs, job{rule: r, pln: plans[ri].delta[i], delta: dl})
				}
			}
		}
		if err := re.runRound(ctx, jobs, inc.db, opts, nil, absorb); err != nil {
			return nil, err
		}
		copyInto(accum, next)
		cur = next
	}
	return accum, nil
}

func copyInto(dst, src map[string]map[string]deltaFact) {
	for pred, m := range src {
		dm := dst[pred]
		if dm == nil {
			dm = map[string]deltaFact{}
			dst[pred] = dm
		}
		for k, df := range m {
			if prev, ok := dm[k]; ok {
				prev.prov = prev.prov.Add(df.prov).Linearize()
				dm[k] = prev
			} else {
				dm[k] = df
			}
		}
	}
}

// DeleteBase removes base facts by killing their provenance tokens. Every
// fact whose annotation mentions a killed token is re-examined: monomials
// using dead tokens are dropped, and facts with no surviving derivation are
// removed. The returned changes list removed facts (Removed=true) and facts
// that survived with reduced provenance.
//
// The tokens killed are exactly the variables of the given facts' CURRENT
// base annotations that look like update tokens owned by those facts; in
// ORCHESTRA each published tuple carries a unique token, which the exchange
// layer passes in.
func (inc *Incremental) DeleteBase(tokens []provenance.Var) []Change {
	inc.foldTokenLog()
	touched := map[string]map[string]bool{} // pred -> keys
	for _, tok := range tokens {
		inc.dead[tok] = true
		for pred, keys := range inc.tokenIndex[tok] {
			tm := touched[pred]
			if tm == nil {
				tm = map[string]bool{}
				touched[pred] = tm
			}
			for k := range keys {
				tm[k] = true
			}
		}
	}
	alive := func(v provenance.Var) bool { return !inc.dead[v] }
	var changes []Change
	for pred, keys := range touched {
		rel := inc.db.MutableRel(pred)
		for k := range keys {
			f, ok := rel.facts[k]
			if !ok {
				continue
			}
			rest := f.Prov.Restrict(alive)
			if rest.Equal(f.Prov) {
				continue
			}
			if rest.IsZero() {
				tu := f.Tuple // remove zeroes the slab slot; copy out first
				rel.remove(k) // maintains the hash indexes incrementally
				changes = append(changes, Change{Pred: pred, Tuple: tu, Key: k, Removed: true})
			} else {
				f.Prov = rest.Intern() // facts are stored by pointer; in-place update
				changes = append(changes, Change{Pred: pred, Tuple: f.Tuple, Key: k, Prov: rest})
			}
		}
	}
	sortChanges(changes)
	return changes
}

// DependentCount returns how many facts currently mention the token in
// their provenance — a cheap measure of the collateral damage of killing
// it, used by the exchange layer's view-deletion heuristic.
func (inc *Incremental) DependentCount(tok provenance.Var) int {
	inc.foldTokenLog()
	n := 0
	for _, keys := range inc.tokenIndex[tok] {
		n += len(keys)
	}
	return n
}

// Affected reports, without mutating the database, which facts would be
// removed (Removed=true) or lose provenance if the given tokens were
// killed. The exchange layer uses it to translate a peer's deletion of
// *derived* data: the union database keeps the original publisher's tuples
// (other peers may keep trusting them), while the deleting peer's candidate
// transaction carries the would-be deletions.
func (inc *Incremental) Affected(tokens []provenance.Var) []Change {
	inc.foldTokenLog()
	tmpDead := map[provenance.Var]bool{}
	for _, tok := range tokens {
		tmpDead[tok] = true
	}
	alive := func(v provenance.Var) bool { return !inc.dead[v] && !tmpDead[v] }
	var changes []Change
	seen := map[string]bool{}
	for _, tok := range tokens {
		for pred, keys := range inc.tokenIndex[tok] {
			rel := inc.db.Rel(pred)
			for k := range keys {
				if seen[pred+"\x00"+k] {
					continue
				}
				seen[pred+"\x00"+k] = true
				f, ok := rel.facts[k]
				if !ok {
					continue
				}
				rest := f.Prov.Restrict(alive)
				if rest.Equal(f.Prov) {
					continue
				}
				if rest.IsZero() {
					changes = append(changes, Change{Pred: pred, Tuple: f.Tuple, Key: k, Removed: true})
				} else {
					changes = append(changes, Change{Pred: pred, Tuple: f.Tuple, Key: k, Prov: rest})
				}
			}
		}
	}
	sortChanges(changes)
	return changes
}

// sortChanges orders a change log by (pred, tuple); the stable sort keeps
// multiple changes to one tuple in derivation (round) order.
func sortChanges(cs []Change) {
	sort.SliceStable(cs, func(i, j int) bool {
		if cs[i].Pred != cs[j].Pred {
			return cs[i].Pred < cs[j].Pred
		}
		return cs[i].Tuple.Compare(cs[j].Tuple) < 0
	})
}
