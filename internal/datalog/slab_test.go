package datalog

import (
	"fmt"
	"testing"

	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

func slabTuple(i int) schema.Tuple {
	return schema.NewTuple(schema.Int(int64(i)), schema.String(fmt.Sprintf("v%d", i)))
}

// Stored fact pointers must stay valid as slabs fill and new slabs start:
// the facts map and every index bucket hold *Fact into slab memory.
func TestSlabPointerStability(t *testing.T) {
	r := NewRel()
	const n = 3*relSlabSize + 17
	ptrs := make([]*Fact, 0, n)
	for i := 0; i < n; i++ {
		tu := slabTuple(i)
		r.put(tu, provenance.NewVar(provenance.Var(fmt.Sprintf("x%d", i))))
		ptrs = append(ptrs, r.facts[tu.Key()])
	}
	if r.Len() != n {
		t.Fatalf("Len = %d, want %d", r.Len(), n)
	}
	for i, f := range ptrs {
		if got := r.facts[slabTuple(i).Key()]; got != f {
			t.Fatalf("fact %d moved: %p != %p", i, got, f)
		}
		if !f.Tuple.Equal(slabTuple(i)) {
			t.Fatalf("fact %d corrupted: %v", i, f.Tuple)
		}
	}
}

// Removing a fact zeroes its slab slot so the dead entry stops pinning the
// tuple and annotation memory.
func TestSlabRemoveZeroesSlot(t *testing.T) {
	r := NewRel()
	tu := slabTuple(1)
	r.put(tu, provenance.NewVar("x"))
	f := r.facts[tu.Key()]
	r.remove(tu.Key())
	if r.Contains(tu) {
		t.Fatal("removed tuple still present")
	}
	if f.Tuple != nil || !f.Prov.IsZero() {
		t.Fatalf("dead slab slot not zeroed: %+v", *f)
	}
}

// Freed slots are reused by later insertions, so delete-heavy churn
// recycles slab capacity instead of pinning mostly dead slabs.
func TestSlabFreeSlotReuse(t *testing.T) {
	r := NewRel()
	r.put(slabTuple(1), provenance.NewVar("x"))
	f := r.facts[slabTuple(1).Key()]
	r.remove(slabTuple(1).Key())
	if len(r.free) != 1 {
		t.Fatalf("free list = %d entries, want 1", len(r.free))
	}
	used := len(r.slab)
	r.put(slabTuple(2), provenance.NewVar("y"))
	if got := r.facts[slabTuple(2).Key()]; got != f {
		t.Fatalf("freed slot not reused: %p vs %p", got, f)
	}
	if len(r.free) != 0 || len(r.slab) != used {
		t.Fatalf("reuse grew the slab: free=%d slab=%d (was %d)", len(r.free), len(r.slab), used)
	}
	if !f.Tuple.Equal(slabTuple(2)) {
		t.Fatalf("reused slot holds %v", f.Tuple)
	}
}

// A COW clone must land in one exactly-sized slab and stay independent of
// the original.
func TestSlabCowCloneDense(t *testing.T) {
	db := NewDB()
	const n = relSlabSize + 31
	for i := 0; i < n; i++ {
		db.Add("R", slabTuple(i), provenance.NewVar("x"))
	}
	snap := db.Snapshot()
	// First write after the snapshot clones the shard.
	db.Add("R", slabTuple(n), provenance.NewVar("y"))
	if got := snap.Rel("R").Len(); got != n {
		t.Fatalf("snapshot grew through COW boundary: %d", got)
	}
	if got := db.Rel("R").Len(); got != n+1 {
		t.Fatalf("post-clone extent = %d, want %d", got, n+1)
	}
	// The clone's facts live in a single contiguous slab (plus the one slab
	// started for the post-clone insert).
	if c := cap(db.Rel("R").slab); c != relSlabSize {
		t.Fatalf("current slab cap = %d, want fresh slab of %d", c, relSlabSize)
	}
	for i := 0; i <= n; i++ {
		if !db.Rel("R").Contains(slabTuple(i)) {
			t.Fatalf("clone lost tuple %d", i)
		}
	}
}
