package datalog

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"

	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

// This file is the streaming evaluator: a compiled plan (planner.go)
// executes as a composed iterator pipeline instead of a materialized
// binding relation. Each plan step is a pull-based operator — index probe,
// full scan, delta scan (with a transient hash build for probed deltas),
// comparison filter, negation check — that yields one (slots, annotation)
// row at a time into the step below it. A rule firing therefore holds one
// row of state per step: the only thing the engine ever materializes is the
// fixpoint itself (stored facts plus the semi-naive delta), never the
// intermediate binding sets.
//
// Re-iteration needs no extra buffering: a step that is re-entered re-probes
// its relation, and the hash-index layer (index.go) already keeps every
// probed bucket — including the empty-column full-scan bucket — as a stable
// shared slice. Those buckets are the plan's re-scan buffers, built once per
// (relation, column set) and never copied.
//
// Head rows leave the pipeline through a rowSink. The sink sees the head
// tuple's storage key before the tuple is materialized, so it can both
// merge without re-encoding the key (the old Tuple.Key memoization cloned
// every derived tuple) and veto provably redundant emissions before they
// allocate anything.

// pipeCancelStride is how many candidate rows a pipeline examines between
// cooperative context checks, so cancellation lands mid-enumeration instead
// of waiting out a huge cross product. Must be a power of two: the scan
// loops test it with a mask so the per-candidate cost is one AND.
const pipeCancelStride = 4096

// deltaHashMin is the smallest delta extent worth building a transient hash
// table over when a plan probes the delta with bound columns. Below it the
// linear scan wins (and the build allocation is not worth it).
const deltaHashMin = 16

// rowSink consumes the head facts a pipeline emits.
type rowSink interface {
	// skip reports whether emitting (key, prov) provably could not change
	// the target relation, letting the pipeline drop the row before the
	// head tuple is materialized. Implementations must be conservative:
	// false is always safe.
	skip(key []byte, prov provenance.Poly) bool
	// emit delivers one head fact. key is t's storage key (Tuple.Key
	// encoding) and is only valid for the duration of the call — it aliases
	// a reused buffer; retaining implementations must copy (a string
	// conversion does).
	emit(key []byte, t schema.Tuple, prov provenance.Poly)
}

// EvalStats collects evaluation counters when installed via Options.Stats.
// All fields are atomic: one stats struct may be shared by the parallel
// workers of a round, and by concurrent evaluations. Counters accumulate
// across rounds, strata, and (if the caller reuses the struct) evaluations.
type EvalStats struct {
	// Probes counts index-bucket probes issued by scan steps.
	Probes atomic.Int64
	// PushdownProbes counts probes whose key included at least one column
	// bound by a pushed-down equality filter rather than a join variable or
	// an atom constant (see planner.go).
	PushdownProbes atomic.Int64
	// Candidates counts facts surfaced by scan steps after the index probe —
	// the rows a materialized evaluator would have buffered per step.
	Candidates atomic.Int64
	// Emitted counts head facts handed to the merge layer.
	Emitted atomic.Int64
	// Suppressed counts emissions vetoed by the pre-merge subsumption check
	// before the head tuple was materialized.
	Suppressed atomic.Int64
	// HashJoinBuilds counts transient hash tables built over delta extents.
	HashJoinBuilds atomic.Int64
	// Rounds counts executed stratum rounds (naive and semi-naive).
	Rounds atomic.Int64
	// ParallelRounds counts rounds that ran with more than one worker; the
	// ratio to Rounds is the adaptive scheduler's fan-out decision rate.
	ParallelRounds atomic.Int64
	// WorkersUsed sums the worker count over all rounds, so
	// WorkersUsed/Rounds is mean per-round worker utilization.
	WorkersUsed atomic.Int64
	// PeakLive is the maximum number of intermediate head emissions buffered
	// at any single round barrier. The streaming sequential path merges
	// eagerly and buffers nothing, so it reports 0; parallel rounds report
	// their probe-phase buffer occupancy.
	PeakLive atomic.Int64
}

// PushdownRate returns the fraction of index probes whose key carried at
// least one pushed-down filter column — the pushdown hit rate.
func (s *EvalStats) PushdownRate() float64 {
	p := s.Probes.Load()
	if p == 0 {
		return 0
	}
	return float64(s.PushdownProbes.Load()) / float64(p)
}

// String renders the counters on one line, for logs and test failures.
func (s *EvalStats) String() string {
	return fmt.Sprintf(
		"probes=%d pushdown=%d candidates=%d emitted=%d suppressed=%d hashjoins=%d rounds=%d parrounds=%d workers=%d peaklive=%d",
		s.Probes.Load(), s.PushdownProbes.Load(), s.Candidates.Load(), s.Emitted.Load(),
		s.Suppressed.Load(), s.HashJoinBuilds.Load(), s.Rounds.Load(),
		s.ParallelRounds.Load(), s.WorkersUsed.Load(), s.PeakLive.Load())
}

// atomicMax raises a to at least v.
func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// pipeCursor is one operator's mutable state: its candidate source, scan
// position, and the annotation product up to and including its current row.
type pipeCursor struct {
	bucket []*Fact // index bucket (stored-relation scans)
	hash   []int32 // delta hash bucket: indices into the delta slice
	hashed bool    // delta step resolved through the transient hash table
	pos    int
	done   bool // filter/negation steps: condition already consumed
	prov   provenance.Poly
}

// pipeline executes one rule firing as a composed pull pipeline over the
// plan's steps.
type pipeline struct {
	rule    Rule
	pln     *plan
	db      *DB
	delta   []deltaFact
	opts    Options
	ctx     context.Context
	useProv bool

	env     []schema.Value
	cur     []pipeCursor
	keyBuf  []byte       // probe keys, negation keys, and the head key
	headBuf schema.Tuple // head values, reused across emissions

	// deltaHash is the transient hash table over the delta extent, built on
	// first probe of a delta step with bound columns (a plan has at most one
	// delta step). This is the hash-join operator for the one join input the
	// index layer cannot cover: stored relations are always probed through
	// their lazily built persistent indexes, so the delta slice is the only
	// stream-side input, and hashing it once replaces a linear re-scan per
	// outer row.
	deltaHash map[string][]int32

	ticks                                                         int
	probes, pushProbes, candidates, emitted, suppressed, hjBuilds int64
}

// pipeScratch carries a pipeline's reusable buffers across firings, so a
// round of many small firings pays the environment, cursor, and key-buffer
// allocations once instead of per rule. A scratch is single-goroutine
// state: sequential rounds keep one on the executor, parallel workers pass
// nil (their firings are large enough that per-firing setup is noise).
type pipeScratch struct {
	env     []schema.Value
	cur     []pipeCursor
	keyBuf  []byte
	headBuf schema.Tuple
}

// fireRuleStream enumerates all satisfying assignments of the rule body as
// a composed iterator pipeline, feeding each head fact to sink. It produces
// exactly the rows fireRule produces, in the same order — the two paths are
// interchangeable (Options.Materialized selects the recursive reference).
// sc may be nil; when given, its buffers are borrowed for this firing and
// returned grown.
func fireRuleStream(ctx context.Context, r Rule, pln *plan, db *DB, delta []deltaFact,
	opts Options, sink rowSink, sc *pipeScratch) error {

	p := pipeline{
		rule:    r,
		pln:     pln,
		db:      db,
		delta:   delta,
		opts:    opts,
		ctx:     ctx,
		useProv: opts.Provenance && !pln.provNeutral,
	}
	if sc != nil {
		p.env, p.cur, p.keyBuf, p.headBuf = sc.env, sc.cur, sc.keyBuf, sc.headBuf
	}
	if cap(p.env) < pln.nslots {
		p.env = make([]schema.Value, pln.nslots)
	} else {
		p.env = p.env[:pln.nslots]
		clear(p.env)
	}
	if cap(p.cur) < len(pln.steps) {
		p.cur = make([]pipeCursor, len(pln.steps))
	} else {
		// enter() resets every cursor field the operators read; stale
		// bucket references only live until the next firing overwrites
		// them.
		p.cur = p.cur[:len(pln.steps)]
	}
	err := p.run(ctx, sink)
	p.flushStats()
	if sc != nil {
		sc.env, sc.cur, sc.keyBuf, sc.headBuf = p.env, p.cur, p.keyBuf, p.headBuf
	}
	return err
}

// run drives the operator stack: advance the deepest cursor, descend on a
// row, back up on exhaustion, emit at the bottom. Depth-first over the same
// candidate orders as the recursive enumerator, so results (and their
// deterministic order) are byte-identical.
func (p *pipeline) run(ctx context.Context, sink rowSink) error {
	n := len(p.pln.steps)
	if n == 0 {
		return p.emitRow(provenance.One(), sink)
	}
	depth := 0
	p.enter(0)
	for depth >= 0 {
		// Accumulated across next() calls; a long scan inside one call
		// checks on its own stride boundaries.
		if p.ticks >= pipeCancelStride {
			p.ticks = 0
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		ok, err := p.next(depth)
		if err != nil {
			return err
		}
		if !ok {
			depth--
			continue
		}
		if depth == n-1 {
			if err := p.emitRow(p.cur[depth].prov, sink); err != nil {
				return err
			}
			continue
		}
		depth++
		p.enter(depth)
	}
	return nil
}

// enter resets the cursor at depth and resolves a scan step's candidate
// source. For stored relations the probe key is encoded from the
// environment — constants, join slots, and pushed-down filter columns alike
// — and the shared index bucket becomes the candidate slice. For a probed
// delta step the (lazily built) delta hash table is consulted instead.
func (p *pipeline) enter(depth int) {
	st := &p.pln.steps[depth]
	cs := &p.cur[depth]
	cs.pos = 0
	cs.done = false
	if st.kind != stepScan {
		return
	}
	if st.isDelta {
		cs.bucket = nil
		cs.hash = nil
		cs.hashed = len(st.boundCols) > 0 && len(p.delta) >= deltaHashMin
		if cs.hashed {
			if p.deltaHash == nil {
				p.buildDeltaHash(st)
			}
			p.keyBuf = p.keyBuf[:0]
			for _, pt := range st.probes {
				p.keyBuf = appendProjKey(p.keyBuf, pt.value(p.env))
			}
			cs.hash = p.deltaHash[string(p.keyBuf)]
		}
		return
	}
	p.keyBuf = p.keyBuf[:0]
	for _, pt := range st.probes {
		p.keyBuf = appendProjKey(p.keyBuf, pt.value(p.env))
	}
	p.probes++
	if st.pushed > 0 {
		p.pushProbes++
	}
	cs.bucket = p.db.Rel(st.pred).lookupBucket(st.colKey, st.boundCols, p.keyBuf)
}

// buildDeltaHash materializes the transient hash table over the delta
// extent, keyed by the step's probe columns. Bucket entries keep ascending
// delta order, so hashed enumeration matches the linear scan's order
// exactly. Value-key encoding is injective and Value.Equal is kind-strict,
// so key equality on the probe columns is exactly the probe check the
// linear path performs.
func (p *pipeline) buildDeltaHash(st *planStep) {
	h := make(map[string][]int32, len(p.delta))
	arity := len(st.lit.Atom.Terms)
	var kb []byte
	for i := range p.delta {
		tu := p.delta[i].tuple
		if len(tu) != arity {
			continue
		}
		kb = kb[:0]
		for _, c := range st.boundCols {
			kb = appendProjKey(kb, tu[c])
		}
		h[string(kb)] = append(h[string(kb)], int32(i))
	}
	p.deltaHash = h
	p.hjBuilds++
}

// prevProv is the annotation product of the rows above depth.
func (p *pipeline) prevProv(depth int) provenance.Poly {
	if depth == 0 {
		return provenance.One()
	}
	return p.cur[depth-1].prov
}

// stepProv folds one candidate's annotation into the running product.
func (p *pipeline) stepProv(depth int, f provenance.Poly) provenance.Poly {
	pr := p.prevProv(depth)
	if p.useProv {
		pr = pr.Mul(f)
	}
	return pr
}

// next advances the cursor at depth to its following row, binding slots as
// a side effect; it reports whether a row is available.
func (p *pipeline) next(depth int) (bool, error) {
	st := &p.pln.steps[depth]
	cs := &p.cur[depth]
	if st.unbound {
		// The planner floats filters to where their variables are bound;
		// Validate rejects bodies where they never bind.
		return false, fmt.Errorf("datalog: rule %q: unbound filter literal", p.rule.ID)
	}
	switch st.kind {
	case stepCmp:
		if cs.done {
			return false, nil
		}
		cs.done = true
		p.ticks++
		if !compare(st.op, st.left.value(p.env), st.right.value(p.env)) {
			return false, nil
		}
		cs.prov = p.prevProv(depth)
		return true, nil
	case stepNeg:
		if cs.done {
			return false, nil
		}
		cs.done = true
		p.ticks++
		p.keyBuf = p.keyBuf[:0]
		for _, pt := range st.negTerms {
			p.keyBuf = appendProjKey(p.keyBuf, pt.value(p.env))
		}
		if p.db.Rel(st.pred).containsKey(p.keyBuf) {
			return false, nil
		}
		cs.prov = p.prevProv(depth)
		return true, nil
	}
	// The candidate loops below keep their row counter in a register (n)
	// and fold it into the pipeline's counters only on exit — a heap store
	// per candidate costs ~30% on probe-heavy workloads. Mid-loop, the
	// stride mask triggers the cooperative cancellation check.
	arity := len(st.lit.Atom.Terms)
	n := 0
	if st.isDelta {
		if cs.hashed {
			for cs.pos < len(cs.hash) {
				df := &p.delta[cs.hash[cs.pos]]
				cs.pos++
				if n++; n&(pipeCancelStride-1) == 0 {
					if err := p.ctx.Err(); err != nil {
						p.bump(n)
						return false, err
					}
				}
				if !applyActions(st, df.tuple, p.env) {
					continue
				}
				cs.prov = p.stepProv(depth, df.prov)
				p.bump(n)
				return true, nil
			}
			p.bump(n)
			return false, nil
		}
		for cs.pos < len(p.delta) {
			df := &p.delta[cs.pos]
			cs.pos++
			if n++; n&(pipeCancelStride-1) == 0 {
				if err := p.ctx.Err(); err != nil {
					p.bump(n)
					return false, err
				}
			}
			if len(df.tuple) != arity || !matchDelta(st, df.tuple, p.env) {
				continue
			}
			cs.prov = p.stepProv(depth, df.prov)
			p.bump(n)
			return true, nil
		}
		p.bump(n)
		return false, nil
	}
	for cs.pos < len(cs.bucket) {
		f := cs.bucket[cs.pos]
		cs.pos++
		if n++; n&(pipeCancelStride-1) == 0 {
			if err := p.ctx.Err(); err != nil {
				p.bump(n)
				return false, err
			}
		}
		if len(f.Tuple) != arity {
			continue
		}
		if !applyActions(st, f.Tuple, p.env) {
			continue
		}
		cs.prov = p.stepProv(depth, f.Prov)
		p.bump(n)
		return true, nil
	}
	p.bump(n)
	return false, nil
}

// bump folds one next() call's examined-row count into the cancellation
// tick and candidate counters.
func (p *pipeline) bump(n int) {
	p.ticks += n
	p.candidates += int64(n)
}

// applyActions binds and checks a scan step's non-probed columns against
// one candidate tuple.
func applyActions(st *planStep, tu schema.Tuple, env []schema.Value) bool {
	for _, a := range st.actions {
		if a.check {
			if !env[a.slot].Equal(tu[a.col]) {
				return false
			}
		} else {
			env[a.slot] = tu[a.col]
		}
	}
	return true
}

// emitRow instantiates the head over the environment, encodes its storage
// key into the reused buffer, and hands the row to the sink — giving the
// sink a chance to veto it before the tuple is allocated.
func (p *pipeline) emitRow(prov provenance.Poly, sink rowSink) error {
	pln := p.pln
	if pln.headErr != nil {
		return pln.headErr
	}
	out := p.headBuf[:0]
	for _, ha := range pln.head {
		if ha.skolem != nil {
			args := make([]string, len(ha.args))
			for j, at := range ha.args {
				args[j] = at.value(p.env).Key()
			}
			out = append(out, schema.LabeledNull(ha.skolem.Fn+"("+strings.Join(args, ",")+")"))
			continue
		}
		out = append(out, ha.term.value(p.env))
	}
	p.headBuf = out
	if p.opts.Provenance && !pln.tokProv.IsZero() {
		prov = prov.Mul(pln.tokProv)
	}
	if !p.opts.Provenance {
		prov = provenance.One()
	}
	if p.opts.ChaseSubsumption && out.HasLabeledNull() && subsumedByExisting(p.db.Rel(p.rule.Head.Pred), out) {
		return nil
	}
	p.keyBuf = p.keyBuf[:0]
	for _, v := range out {
		p.keyBuf = appendProjKey(p.keyBuf, v)
	}
	if sink.skip(p.keyBuf, prov) {
		p.suppressed++
		return nil
	}
	p.emitted++
	t := make(schema.Tuple, len(out))
	copy(t, out)
	sink.emit(p.keyBuf, t, prov)
	return nil
}

// flushStats folds the pipeline's local counters into the shared stats once
// per firing, keeping atomics off the per-row path.
func (p *pipeline) flushStats() {
	s := p.opts.Stats
	if s == nil {
		return
	}
	s.Probes.Add(p.probes)
	s.PushdownProbes.Add(p.pushProbes)
	s.Candidates.Add(p.candidates)
	s.Emitted.Add(p.emitted)
	s.Suppressed.Add(p.suppressed)
	s.HashJoinBuilds.Add(p.hjBuilds)
}
