package datalog

import (
	"sync"

	"orchestra/internal/schema"
)

// relIndex is the per-relation hash-index layer. For every bound-column set
// that evaluation has probed, it keeps a map from the projected value key to
// the matching facts. An index is built once, on first probe, and from then
// on is maintained incrementally as facts merge in (Rel.put) or die
// (Rel.remove) — it is never rebuilt per probe or invalidated wholesale on
// deletion. The empty column set is an index too: its single bucket is the
// relation's full-scan order.
//
// Buckets hold *Fact, so probes return shared slices with no per-probe
// copying, and a provenance update through the pointer is visible in every
// index at once. Callers must treat returned buckets as read-only.
//
// The mutex doubles as the relation's merge lock: during a parallel stratum
// round many workers probe the same relation concurrently (read lock), and a
// worker that needs a not-yet-built index takes the write lock to build it
// against the fact set, which is frozen for the duration of the probe phase.
// Bucket contents are only mutated between rounds (eager sequential merges,
// the coordinator's buffered merge, or incremental deletion), never while
// workers are probing.
type relIndex struct {
	mu     sync.RWMutex
	byCols map[string]*colIndex
}

// colIndex is one hash index over a fixed bound-column set.
type colIndex struct {
	cols    []int
	buckets map[string][]*Fact // projected value key -> facts
}

func encodeCols(cols []int) string {
	b := make([]byte, 0, len(cols)*2)
	for _, c := range cols {
		// Arities are tiny; one byte per column is plenty.
		b = append(b, byte(c), ';')
	}
	return string(b)
}

// ensureIndex returns the index on cols, building it on first use. colKey
// must equal encodeCols(cols); callers on the hot path have it precomputed.
func (r *Rel) ensureIndex(colKey string, cols []int) *colIndex {
	r.idx.mu.RLock()
	ci := r.idx.byCols[colKey]
	r.idx.mu.RUnlock()
	if ci != nil {
		return ci
	}
	r.idx.mu.Lock()
	defer r.idx.mu.Unlock()
	if ci := r.idx.byCols[colKey]; ci != nil {
		return ci
	}
	ci = &colIndex{cols: append([]int(nil), cols...), buckets: map[string][]*Fact{}}
	var kb []byte
	for _, f := range r.facts {
		kb = kb[:0]
		for _, c := range ci.cols {
			kb = appendProjKey(kb, f.Tuple[c])
		}
		ci.buckets[string(kb)] = append(ci.buckets[string(kb)], f)
	}
	if r.idx.byCols == nil {
		r.idx.byCols = map[string]*colIndex{}
	}
	r.idx.byCols[colKey] = ci
	return ci
}

// appendProjKey appends one length-prefixed component of a projection key.
// Delegating to the schema package keeps this encoding byte-identical to
// the Tuple.Key encoding of the facts map, which negation membership
// probes (containsKey) rely on.
func appendProjKey(b []byte, v schema.Value) []byte {
	return schema.AppendComponentKeyTo(b, v)
}

// lookupBucket returns the facts whose projection on the index's columns
// has the given (pre-encoded) value key. The returned slice is shared with
// the index: callers must not mutate it.
func (r *Rel) lookupBucket(colKey string, cols []int, valKey []byte) []*Fact {
	return r.ensureIndex(colKey, cols).buckets[string(valKey)]
}

// lookup returns the facts whose projection on cols equals vals. With no
// bound columns it returns all facts. The returned slice is shared with the
// index: callers must not mutate it.
func (r *Rel) lookup(cols []int, vals schema.Tuple) []*Fact {
	var kb []byte
	for _, v := range vals {
		kb = appendProjKey(kb, v)
	}
	return r.lookupBucket(encodeCols(cols), cols, kb)
}

// indexInsert adds a freshly stored fact to every maintained index.
func (r *Rel) indexInsert(f *Fact) {
	r.idx.mu.Lock()
	var kb []byte
	for _, ci := range r.idx.byCols {
		kb = kb[:0]
		for _, c := range ci.cols {
			kb = appendProjKey(kb, f.Tuple[c])
		}
		ci.buckets[string(kb)] = append(ci.buckets[string(kb)], f)
	}
	r.idx.mu.Unlock()
}

// bucketScanLimit bounds the work indexRemove spends shifting one bucket.
// Removal from a bucket is a linear scan, so on huge buckets — notably the
// single full-scan bucket of the empty column set — per-fact maintenance
// would make bulk deletions quadratic. Beyond this size the whole index is
// dropped instead and rebuilt lazily on the next probe (one O(n) rebuild
// per deletion batch, like the pre-index-layer engine), while selective
// indexes with small buckets keep their cheap incremental updates.
const bucketScanLimit = 64

// indexRemove drops a deleted fact from every maintained index, preserving
// bucket order so candidate enumeration stays deterministic.
func (r *Rel) indexRemove(f *Fact) {
	r.idx.mu.Lock()
	var kb []byte
	for colKey, ci := range r.idx.byCols {
		kb = kb[:0]
		for _, c := range ci.cols {
			kb = appendProjKey(kb, f.Tuple[c])
		}
		vk := string(kb)
		b := ci.buckets[vk]
		if len(b) > bucketScanLimit {
			delete(r.idx.byCols, colKey)
			continue
		}
		for i, ff := range b {
			if ff == f {
				b = append(b[:i], b[i+1:]...)
				break
			}
		}
		if len(b) == 0 {
			delete(ci.buckets, vk)
		} else {
			ci.buckets[vk] = b
		}
	}
	r.idx.mu.Unlock()
}
