package datalog

import (
	"fmt"
	"math/rand"
	"testing"

	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

func edge(a, b string) schema.Tuple { return schema.NewTuple(schema.String(a), schema.String(b)) }

func tcProgram() *Program {
	return &Program{Rules: []Rule{
		{ID: "tc1", Head: NewHead("T", HV("x"), HV("y")), Body: []Literal{Pos(NewAtom("E", V("x"), V("y")))}},
		{ID: "tc2", Head: NewHead("T", HV("x"), HV("z")), Body: []Literal{
			Pos(NewAtom("T", V("x"), V("y"))), Pos(NewAtom("E", V("y"), V("z")))}},
	}}
}

func TestTransitiveClosure(t *testing.T) {
	edb := NewDB()
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}} {
		edb.AddTuple("E", edge(e[0], e[1]))
	}
	res, err := Eval(tcProgram(), edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]string{{"a", "b"}, {"a", "c"}, {"a", "d"}, {"b", "c"}, {"b", "d"}, {"c", "d"}}
	if res.Rel("T").Len() != len(want) {
		t.Fatalf("T has %d facts, want %d", res.Rel("T").Len(), len(want))
	}
	for _, w := range want {
		if !res.Rel("T").Contains(edge(w[0], w[1])) {
			t.Errorf("missing T(%s,%s)", w[0], w[1])
		}
	}
	// Input DB must be untouched.
	if edb.Has("T") && edb.Rel("T").Len() > 0 {
		t.Error("Eval mutated input database")
	}
}

func TestTransitiveClosureCyclicGraph(t *testing.T) {
	edb := NewDB()
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}} {
		edb.AddTuple("E", edge(e[0], e[1]))
	}
	res, err := Eval(tcProgram(), edb, Options{Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel("T").Len() != 9 {
		t.Errorf("cycle TC: %d facts, want 9", res.Rel("T").Len())
	}
}

func TestStratifiedNegation(t *testing.T) {
	// Unreachable pairs: U(x,y) :- N(x), N(y), ¬T(x,y)
	prog := tcProgram()
	prog.Rules = append(prog.Rules,
		Rule{ID: "n1", Head: NewHead("N", HV("x")), Body: []Literal{Pos(NewAtom("E", V("x"), V("y")))}},
		Rule{ID: "n2", Head: NewHead("N", HV("y")), Body: []Literal{Pos(NewAtom("E", V("x"), V("y")))}},
		Rule{ID: "u", Head: NewHead("U", HV("x"), HV("y")), Body: []Literal{
			Pos(NewAtom("N", V("x"))), Pos(NewAtom("N", V("y"))), Neg(NewAtom("T", V("x"), V("y")))}},
	)
	edb := NewDB()
	edb.AddTuple("E", edge("a", "b"))
	edb.AddTuple("E", edge("c", "d"))
	res, err := Eval(prog, edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rel("U").Contains(edge("a", "c")) || !res.Rel("U").Contains(edge("a", "d")) {
		t.Error("missing unreachable pairs")
	}
	if res.Rel("U").Contains(edge("a", "b")) {
		t.Error("reachable pair in U")
	}
	// a is not reachable from itself here (no self-loop).
	if !res.Rel("U").Contains(edge("a", "a")) {
		t.Error("missing U(a,a)")
	}
}

func TestNonStratifiable(t *testing.T) {
	prog := &Program{Rules: []Rule{
		{ID: "p", Head: NewHead("P", HV("x")), Body: []Literal{
			Pos(NewAtom("E", V("x"), V("x"))), Neg(NewAtom("Q", V("x")))}},
		{ID: "q", Head: NewHead("Q", HV("x")), Body: []Literal{
			Pos(NewAtom("E", V("x"), V("x"))), Neg(NewAtom("P", V("x")))}},
	}}
	if _, err := Eval(prog, NewDB(), Options{}); err == nil {
		t.Error("non-stratifiable program accepted")
	}
}

func TestUnsafeRules(t *testing.T) {
	cases := []Rule{
		// Head var not in body.
		{ID: "h", Head: NewHead("H", HV("z")), Body: []Literal{Pos(NewAtom("E", V("x"), V("y")))}},
		// Negated-only var.
		{ID: "n", Head: NewHead("H", HV("x")), Body: []Literal{
			Pos(NewAtom("E", V("x"), V("x"))), Neg(NewAtom("F", V("w")))}},
		// Builtin-only var.
		{ID: "b", Head: NewHead("H", HV("x")), Body: []Literal{
			Pos(NewAtom("E", V("x"), V("x"))), Cmp(V("q"), OpLt, V("x"))}},
		// Unsafe skolem arg.
		{ID: "s", Head: NewHead("H", HSkolem("f", V("nope"))), Body: []Literal{
			Pos(NewAtom("E", V("x"), V("y")))}},
	}
	for _, r := range cases {
		prog := &Program{Rules: []Rule{r}}
		if _, err := Eval(prog, NewDB(), Options{}); err == nil {
			t.Errorf("unsafe rule %s accepted", r.ID)
		}
	}
}

func TestBuiltins(t *testing.T) {
	// Pairs with x < y.
	prog := &Program{Rules: []Rule{{
		ID:   "lt",
		Head: NewHead("L", HV("x"), HV("y")),
		Body: []Literal{
			Pos(NewAtom("N", V("x"))), Pos(NewAtom("N", V("y"))), Cmp(V("x"), OpLt, V("y"))},
	}}}
	edb := NewDB()
	for i := int64(1); i <= 3; i++ {
		edb.AddTuple("N", schema.NewTuple(schema.Int(i)))
	}
	res, err := Eval(prog, edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel("L").Len() != 3 { // (1,2),(1,3),(2,3)
		t.Errorf("L has %d facts", res.Rel("L").Len())
	}
	// All six operators.
	ops := []struct {
		op   CmpOp
		want int // over pairs from {1,2,3}²
	}{{OpEq, 3}, {OpNe, 6}, {OpLt, 3}, {OpLe, 6}, {OpGt, 3}, {OpGe, 6}}
	for _, c := range ops {
		p := &Program{Rules: []Rule{{
			ID:   "op",
			Head: NewHead("R", HV("x"), HV("y")),
			Body: []Literal{Pos(NewAtom("N", V("x"))), Pos(NewAtom("N", V("y"))), Cmp(V("x"), c.op, V("y"))},
		}}}
		res, err := Eval(p, edb, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Rel("R").Len() != c.want {
			t.Errorf("op %v: %d facts, want %d", c.op, res.Rel("R").Len(), c.want)
		}
	}
}

func TestConstantsInAtoms(t *testing.T) {
	prog := &Program{Rules: []Rule{{
		ID:   "c",
		Head: NewHead("Out", HV("y")),
		Body: []Literal{Pos(NewAtom("E", C(schema.String("a")), V("y")))},
	}}}
	edb := NewDB()
	edb.AddTuple("E", edge("a", "b"))
	edb.AddTuple("E", edge("c", "d"))
	res, err := Eval(prog, edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel("Out").Len() != 1 || !res.Rel("Out").Contains(schema.NewTuple(schema.String("b"))) {
		t.Errorf("Out = %v", res.Rel("Out").Facts())
	}
	// Constant in head.
	prog2 := &Program{Rules: []Rule{{
		ID:   "hc",
		Head: NewHead("Tagged", HC(schema.String("tag")), HV("x")),
		Body: []Literal{Pos(NewAtom("E", V("x"), V("y")))},
	}}}
	res2, err := Eval(prog2, edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Rel("Tagged").Contains(schema.NewTuple(schema.String("tag"), schema.String("a"))) {
		t.Error("head constant lost")
	}
}

func TestRepeatedVariable(t *testing.T) {
	// Self-loops only: S(x) :- E(x,x).
	prog := &Program{Rules: []Rule{{
		ID:   "self",
		Head: NewHead("S", HV("x")),
		Body: []Literal{Pos(NewAtom("E", V("x"), V("x")))},
	}}}
	edb := NewDB()
	edb.AddTuple("E", edge("a", "a"))
	edb.AddTuple("E", edge("a", "b"))
	res, err := Eval(prog, edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel("S").Len() != 1 || !res.Rel("S").Contains(schema.NewTuple(schema.String("a"))) {
		t.Errorf("S = %v", res.Rel("S").Facts())
	}
}

func TestSkolemHeads(t *testing.T) {
	// OPS(org,prot,seq) -> O(org, f(org)) : invent an oid per org.
	prog := &Program{Rules: []Rule{{
		ID:   "m1",
		Head: NewHead("O", HV("org"), HSkolem("f_oid", V("org"))),
		Body: []Literal{Pos(NewAtom("OPS", V("org"), V("prot"), V("seq")))},
	}}}
	edb := NewDB()
	edb.AddTuple("OPS", schema.NewTuple(schema.String("mouse"), schema.String("p53"), schema.String("ACGT")))
	edb.AddTuple("OPS", schema.NewTuple(schema.String("mouse"), schema.String("brca1"), schema.String("TTTT")))
	edb.AddTuple("OPS", schema.NewTuple(schema.String("rat"), schema.String("p53"), schema.String("GGGG")))
	res, err := Eval(prog, edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Two orgs -> two O facts; same org yields the SAME labeled null.
	if res.Rel("O").Len() != 2 {
		t.Fatalf("O = %v", res.Rel("O").Facts())
	}
	for _, f := range res.Rel("O").Facts() {
		if !f.Tuple[1].IsLabeledNull() {
			t.Errorf("oid not a labeled null: %v", f.Tuple)
		}
	}
}

func TestExactProvenance(t *testing.T) {
	// A(x) :- B(x), C(x): provenance must be b·c.
	prog := &Program{Rules: []Rule{
		{ID: "r1", Head: NewHead("A", HV("x")), Body: []Literal{
			Pos(NewAtom("B", V("x"))), Pos(NewAtom("C", V("x")))}},
		{ID: "r2", Head: NewHead("A", HV("x")), Body: []Literal{
			Pos(NewAtom("D", V("x")))}},
	}}
	one := schema.NewTuple(schema.Int(1))
	edb := NewDB()
	edb.Add("B", one, provenance.NewVar("b"))
	edb.Add("C", one, provenance.NewVar("c"))
	edb.Add("D", one, provenance.NewVar("d"))
	res, err := Eval(prog, edb, Options{Provenance: true, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	f, ok := res.Rel("A").Get(one)
	if !ok {
		t.Fatal("A(1) missing")
	}
	want := provenance.NewVar("b").Mul(provenance.NewVar("c")).Add(provenance.NewVar("d"))
	if !f.Prov.Equal(want) {
		t.Errorf("prov = %v, want %v", f.Prov, want)
	}
}

func TestExactProvenanceMultiLevel(t *testing.T) {
	// Chain: M(x) :- A(x); N(x) :- M(x), M(x) — self-join of an IDB pred.
	prog := &Program{Rules: []Rule{
		{ID: "m", Head: NewHead("M", HV("x")), Body: []Literal{Pos(NewAtom("A", V("x")))}},
		{ID: "n", Head: NewHead("N", HV("x")), Body: []Literal{
			Pos(NewAtom("M", V("x"))), Pos(NewAtom("M", V("x")))}},
	}}
	one := schema.NewTuple(schema.Int(1))
	edb := NewDB()
	edb.Add("A", one, provenance.NewVar("a"))
	res, err := Eval(prog, edb, Options{Provenance: true, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := res.Rel("N").Get(one)
	// N's provenance is a² — exact N[X] keeps the square.
	want := provenance.NewVar("a").Mul(provenance.NewVar("a"))
	if !f.Prov.Equal(want) {
		t.Errorf("prov = %v, want %v", f.Prov, want)
	}
}

func TestExactRejectsRecursion(t *testing.T) {
	if _, err := Eval(tcProgram(), NewDB(), Options{Provenance: true, Exact: true}); err == nil {
		t.Error("exact provenance accepted recursive program")
	}
}

func TestRuleProvToken(t *testing.T) {
	prog := &Program{Rules: []Rule{{
		ID: "m1", ProvToken: "M1",
		Head: NewHead("B", HV("x")),
		Body: []Literal{Pos(NewAtom("A", V("x")))},
	}}}
	one := schema.NewTuple(schema.Int(1))
	edb := NewDB()
	edb.Add("A", one, provenance.NewVar("a"))
	res, err := Eval(prog, edb, Options{Provenance: true, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := res.Rel("B").Get(one)
	want := provenance.NewVar("a").Mul(provenance.NewVar("M1"))
	if !f.Prov.Equal(want) {
		t.Errorf("prov = %v, want %v", f.Prov, want)
	}
}

func TestFixpointProvenanceOnCycle(t *testing.T) {
	// The ORCHESTRA echo case: identity mappings A→B and B→A.
	prog := &Program{Rules: []Rule{
		{ID: "ab", ProvToken: "Mab", Head: NewHead("B", HV("x")), Body: []Literal{Pos(NewAtom("A", V("x")))}},
		{ID: "ba", ProvToken: "Mba", Head: NewHead("A", HV("x")), Body: []Literal{Pos(NewAtom("B", V("x")))}},
	}}
	one := schema.NewTuple(schema.Int(1))
	edb := NewDB()
	edb.Add("A", one, provenance.NewVar("a"))
	res, err := Eval(prog, edb, Options{Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	// B(1) must be derivable exactly when a is alive.
	fb, ok := res.Rel("B").Get(one)
	if !ok {
		t.Fatal("B(1) missing")
	}
	if !fb.Prov.Derivable(func(x provenance.Var) bool { return true }) {
		t.Error("B(1) not derivable")
	}
	if fb.Prov.Derivable(func(x provenance.Var) bool { return x != "a" }) {
		t.Error("B(1) derivable without a")
	}
	// A(1)'s provenance gains the echo derivation a·Mab·Mba but must still
	// require a.
	fa, _ := res.Rel("A").Get(one)
	if fa.Prov.Derivable(func(x provenance.Var) bool { return x != "a" }) {
		t.Error("A(1) derivable without its base tuple")
	}
}

func TestProvenanceDisabledIsFast(t *testing.T) {
	edb := NewDB()
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}} {
		edb.AddTuple("E", edge(e[0], e[1]))
	}
	res, err := Eval(tcProgram(), edb, Options{Provenance: false})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Rel("T").Facts() {
		if !f.Prov.IsOne() {
			t.Errorf("non-trivial provenance with provenance disabled: %v", f.Prov)
		}
	}
}

func TestMaxIterations(t *testing.T) {
	// Force a tiny bound on a program needing several rounds.
	edb := NewDB()
	for i := 0; i < 20; i++ {
		edb.AddTuple("E", edge(fmt.Sprint("n", i), fmt.Sprint("n", i+1)))
	}
	if _, err := Eval(tcProgram(), edb, Options{MaxIterations: 2}); err == nil {
		t.Error("iteration bound not enforced")
	}
}

// Property: datalog TC agrees with BFS reachability on random graphs, and
// every derived edge's provenance is derivable from the EDB tokens.
func TestQuickTCMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		// Provenance witness sets grow exponentially on dense cyclic
		// graphs (every minimal edge-set witness is enumerated), so the
		// provenance-enabled trials stay small and sparse; larger graphs
		// run tuple-only. See DESIGN.md §4 and internal/exchange for how
		// update exchange sidesteps this with per-hop provenance.
		withProv := trial%2 == 0
		n := 3 + rng.Intn(3)
		density := 0.25
		if !withProv {
			n = 5 + rng.Intn(5)
			density = 0.3
		}
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		edb := NewDB()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < density {
					adj[i][j] = true
					edb.Add("E", edge(fmt.Sprint("v", i), fmt.Sprint("v", j)),
						provenance.NewVar(provenance.Var(fmt.Sprintf("e%d_%d", i, j))))
				}
			}
		}
		res, err := Eval(tcProgram(), edb, Options{Provenance: withProv})
		if err != nil {
			t.Fatal(err)
		}
		// BFS reachability in >=1 steps from each node.
		for s := 0; s < n; s++ {
			reach := make([]bool, n)
			queue := []int{}
			for j := 0; j < n; j++ {
				if adj[s][j] {
					reach[j] = true
					queue = append(queue, j)
				}
			}
			for len(queue) > 0 {
				cur := queue[0]
				queue = queue[1:]
				for j := 0; j < n; j++ {
					if adj[cur][j] && !reach[j] {
						reach[j] = true
						queue = append(queue, j)
					}
				}
			}
			for j := 0; j < n; j++ {
				got := res.Rel("T").Contains(edge(fmt.Sprint("v", s), fmt.Sprint("v", j)))
				if got != reach[j] {
					t.Fatalf("trial %d: T(v%d,v%d)=%v, BFS=%v", trial, s, j, got, reach[j])
				}
			}
		}
		// Provenance sanity: with all edges alive everything is derivable;
		// with none alive nothing is.
		if withProv {
			for _, f := range res.Rel("T").Facts() {
				if !f.Prov.Derivable(func(provenance.Var) bool { return true }) {
					t.Fatalf("underivable TC fact %v", f.Tuple)
				}
				if f.Prov.Derivable(func(provenance.Var) bool { return false }) {
					t.Fatalf("TC fact %v derivable from nothing", f.Tuple)
				}
			}
		}
	}
}
