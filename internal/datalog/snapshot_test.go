package datalog

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

// fingerprint renders the complete observable state of a database —
// predicates, tuples in canonical order, and provenance strings — so
// aliasing bugs that leak through any path (facts map, *Fact in-place
// provenance writes, index buckets) show up as a diff.
func fingerprint(db *DB) string {
	var b strings.Builder
	for _, pred := range db.Preds() {
		b.WriteString(pred)
		b.WriteString(":\n")
		for _, f := range db.Rel(pred).Facts() {
			fmt.Fprintf(&b, "  %v @ %s\n", f.Tuple, f.Prov)
		}
	}
	return b.String()
}

func randTuple(rng *rand.Rand, space int64) schema.Tuple {
	return schema.NewTuple(schema.Int(rng.Int63n(space)), schema.Int(rng.Int63n(space)))
}

// TestSnapshotIsolationProperty drives randomized mutation scripts against
// a database with a live snapshot and asserts, after every step, that the
// frozen view still fingerprints exactly as it did at snapshot time. The
// mutations deliberately cover the two in-place-write hazards: provenance
// merges on existing tuples (putKeyed writes through the shared *Fact
// pointer) and index maintenance (indexInsert/indexRemove rewrite shared
// buckets).
func TestSnapshotIsolationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	preds := []string{"A", "B", "C"}
	for round := 0; round < 20; round++ {
		db := NewDB()
		for i := 0; i < 30; i++ {
			pred := preds[rng.Intn(len(preds))]
			db.Add(pred, randTuple(rng, 10), provenance.NewVar(provenance.Var(fmt.Sprintf("x%d", i))))
		}
		// Build an index on the soon-to-be-frozen extents so the snapshot
		// side holds live bucket state.
		for _, pred := range preds {
			db.Rel(pred).lookup([]int{0}, schema.NewTuple(schema.Int(3)))
		}
		snap := db.Snapshot()
		want := fingerprint(snap)
		wantBucket := fmt.Sprint(factTuples(snap.Rel("A").lookup([]int{0}, schema.NewTuple(schema.Int(3)))))

		for step := 0; step < 40; step++ {
			pred := preds[rng.Intn(len(preds))]
			tu := randTuple(rng, 10)
			switch rng.Intn(3) {
			case 0: // fresh or merging insert (in-place provenance write)
				db.Add(pred, tu, provenance.NewVar(provenance.Var(fmt.Sprintf("m%d_%d", round, step))))
			case 1: // provenance merge via the evaluator's merge path
				merge(db.MutableRel(pred), tu,
					provenance.NewVar(provenance.Var(fmt.Sprintf("e%d_%d", round, step))),
					Options{Provenance: true})
			case 2: // deletion (index removal path)
				r := db.MutableRel(pred)
				for k := range r.facts {
					r.remove(k)
					break
				}
			}
			if got := fingerprint(snap); got != want {
				t.Fatalf("round %d step %d: mutation leaked into snapshot:\nwant:\n%s\ngot:\n%s", round, step, want, got)
			}
		}
		// Index probes on the frozen side must still see the frozen facts.
		if got := fmt.Sprint(factTuples(snap.Rel("A").lookup([]int{0}, schema.NewTuple(schema.Int(3))))); got != wantBucket {
			t.Fatalf("round %d: snapshot index bucket changed: want %s, got %s", round, wantBucket, got)
		}
	}
}

// TestSnapshotReverseIsolation checks the other direction: mutating the
// snapshot (it is a first-class DB) must never leak into the original.
func TestSnapshotReverseIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := NewDB()
	for i := 0; i < 25; i++ {
		db.Add("A", randTuple(rng, 8), provenance.NewVar(provenance.Var(fmt.Sprintf("x%d", i))))
	}
	want := fingerprint(db)
	snap := db.Snapshot()
	for step := 0; step < 30; step++ {
		tu := randTuple(rng, 8)
		snap.Add("A", tu, provenance.NewVar(provenance.Var(fmt.Sprintf("s%d", step))))
		if step%5 == 0 {
			r := snap.MutableRel("A")
			for k := range r.facts {
				r.remove(k)
				break
			}
		}
		if got := fingerprint(db); got != want {
			t.Fatalf("step %d: snapshot mutation leaked into original:\nwant:\n%s\ngot:\n%s", step, want, got)
		}
	}
}

// TestSnapshotIncrementalIsolation freezes the maintained database of an
// Incremental engine mid-stream and asserts that further incremental
// insertions and token-kill deletions — which mutate facts in place and
// maintain hash indexes incrementally — never alter the frozen view.
func TestSnapshotIncrementalIsolation(t *testing.T) {
	prog := &Program{Rules: []Rule{
		{ID: "tc1", Head: NewHead("T", HV("x"), HV("y")),
			Body: []Literal{Pos(NewAtom("E", V("x"), V("y")))}},
		{ID: "tc2", Head: NewHead("T", HV("x"), HV("z")),
			Body: []Literal{
				Pos(NewAtom("T", V("x"), V("y"))),
				Pos(NewAtom("E", V("y"), V("z")))}},
	}}
	edb := NewDB()
	var toks []provenance.Var
	for i := 0; i < 10; i++ {
		v := provenance.Var(fmt.Sprintf("e%d", i))
		toks = append(toks, v)
		edb.Add("E", schema.NewTuple(schema.Int(int64(i)), schema.Int(int64(i+1))), provenance.NewVar(v))
	}
	inc, err := NewIncremental(prog, edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap := inc.DB().Snapshot()
	want := fingerprint(snap)

	var newToks []provenance.Var
	for i := 10; i < 16; i++ {
		v := provenance.Var(fmt.Sprintf("e%d", i))
		newToks = append(newToks, v)
		if _, err := inc.Insert(context.Background(), []Fact2{{Pred: "E",
			Tuple: schema.NewTuple(schema.Int(int64(i)), schema.Int(int64(i+1))),
			Prov:  provenance.NewVar(v)}}); err != nil {
			t.Fatal(err)
		}
		if got := fingerprint(snap); got != want {
			t.Fatalf("insert %d leaked into snapshot", i)
		}
	}
	inc.DeleteBase(append(newToks, toks[0], toks[5]))
	if got := fingerprint(snap); got != want {
		t.Fatalf("DeleteBase leaked into snapshot:\nwant:\n%s\ngot:\n%s", want, got)
	}
	// And the engine kept working: the maintained db differs from the frozen
	// view (sanity that the test would catch a false sharing).
	if fingerprint(inc.DB()) == want {
		t.Fatal("maintained database unchanged after insert+delete stream")
	}
}

// TestSnapshotEvalByteIdentical asserts the acceptance property directly:
// evaluating over a snapshot-captured EDB yields byte-identical relations
// and provenance to evaluating over an eager deep clone, and leaves the
// caller's EDB untouched.
//
// The workload is a chain with a few shortcut edges: every tuple has a
// handful of alternative derivations, but witness sets stay below the
// truncation bound. (When truncation actually drops monomials, which
// same-degree witnesses survive depends on fact enumeration order — map
// order — so no two independent evaluations are byte-comparable; that is
// pre-existing engine semantics, independent of snapshots, and the reason
// the incremental-vs-recompute tests compare like against like.)
func TestSnapshotEvalByteIdentical(t *testing.T) {
	prog := &Program{Rules: []Rule{
		{ID: "j", Head: NewHead("J", HV("x"), HV("z")),
			Body: []Literal{
				Pos(NewAtom("A", V("x"), V("y"))),
				Pos(NewAtom("B", V("y"), V("z")))}},
		{ID: "tc", Head: NewHead("T", HV("x"), HV("z")),
			Body: []Literal{
				Pos(NewAtom("T", V("x"), V("y"))),
				Pos(NewAtom("J", V("y"), V("z")))}},
		{ID: "seed", Head: NewHead("T", HV("x"), HV("y")),
			Body: []Literal{Pos(NewAtom("J", V("x"), V("y")))}},
	}}
	for _, opts := range []Options{
		{},
		{Provenance: true},
		{Provenance: true, MaxMonomials: 8},
	} {
		edb := NewDB()
		node := func(i int) schema.Value { return schema.Int(int64(i)) }
		for i := 0; i < 14; i++ {
			edb.Add("A", schema.NewTuple(node(i), node(i+1)), provenance.NewVar(provenance.Var(fmt.Sprintf("a%d", i))))
			edb.Add("B", schema.NewTuple(node(i), node(i+1)), provenance.NewVar(provenance.Var(fmt.Sprintf("b%d", i))))
		}
		// Shortcuts create alternative derivations without blowing up the
		// witness count.
		edb.Add("A", schema.NewTuple(node(0), node(2)), provenance.NewVar("ashort"))
		edb.Add("B", schema.NewTuple(node(5), node(7)), provenance.NewVar("bshort"))
		before := fingerprint(edb)
		// Snapshot-based evaluation (Eval's internal path).
		got, err := Eval(prog, edb, opts)
		if err != nil {
			t.Fatal(err)
		}
		// Deep-copy evaluation: the pre-COW semantics, reproduced by
		// evaluating over an eagerly cloned EDB.
		want, err := Eval(prog, edb.Clone(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(got) != fingerprint(want) {
			t.Fatalf("opts %+v: snapshot-based eval differs from deep-copy eval", opts)
		}
		if fingerprint(edb) != before {
			t.Fatalf("opts %+v: Eval mutated the caller's EDB", opts)
		}
	}
}

func factTuples(fs []*Fact) []schema.Tuple {
	out := make([]schema.Tuple, 0, len(fs))
	for _, f := range fs {
		out = append(out, f.Tuple)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}
