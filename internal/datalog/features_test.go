package datalog

import (
	"context"
	"fmt"
	"testing"

	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

// splitJoinProgram models the ORCHESTRA cycle: OPS splits into O/S with an
// invented oid, and O/S join back into OPS.
func splitJoinProgram() *Program {
	return &Program{Rules: []Rule{
		{ID: "split.O", ProvToken: "Msplit",
			Head: NewHead("O", HV("org"), HSkolem("sk_oid", V("org"), V("seq"))),
			Body: []Literal{Pos(NewAtom("OPS", V("org"), V("seq")))}},
		{ID: "split.S", ProvToken: "Msplit",
			Head: NewHead("S", HSkolem("sk_oid", V("org"), V("seq")), HV("seq")),
			Body: []Literal{Pos(NewAtom("OPS", V("org"), V("seq")))}},
		{ID: "join", ProvToken: "Mjoin",
			Head: NewHead("OPS", HV("org"), HV("seq")),
			Body: []Literal{
				Pos(NewAtom("O", V("org"), V("oid"))),
				Pos(NewAtom("S", V("oid"), V("seq")))}},
	}}
}

func TestChaseSubsumptionSuppressesEcho(t *testing.T) {
	edb := NewDB()
	edb.Add("O", schema.NewTuple(schema.String("mouse"), schema.Int(1)), provenance.NewVar("o"))
	edb.Add("S", schema.NewTuple(schema.Int(1), schema.String("ACGT")), provenance.NewVar("s"))

	// Without the chase check, the O tuple echoes back as a Skolem variant.
	plain, err := Eval(splitJoinProgram(), edb, Options{Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Rel("O").Len() != 2 {
		t.Fatalf("expected skolem echo without chase check, O = %v", plain.Rel("O").Facts())
	}

	// With it, the concrete tuple subsumes the null-padded variant.
	chased, err := Eval(splitJoinProgram(), edb, Options{Provenance: true, ChaseSubsumption: true})
	if err != nil {
		t.Fatal(err)
	}
	if chased.Rel("O").Len() != 1 {
		t.Errorf("echo not suppressed: O = %v", chased.Rel("O").Facts())
	}
	// The joined OPS tuple itself must still be derived.
	if !chased.Rel("OPS").Contains(schema.NewTuple(schema.String("mouse"), schema.String("ACGT"))) {
		t.Error("OPS lost")
	}
}

func TestChaseSubsumptionKeepsNovelNulls(t *testing.T) {
	// A split with NO concrete counterpart must still materialize.
	edb := NewDB()
	edb.Add("OPS", schema.NewTuple(schema.String("fly"), schema.String("GGGG")), provenance.NewVar("x"))
	res, err := Eval(splitJoinProgram(), edb, Options{Provenance: true, ChaseSubsumption: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel("O").Len() != 1 || res.Rel("S").Len() != 1 {
		t.Fatalf("split output = O:%v S:%v", res.Rel("O").Facts(), res.Rel("S").Facts())
	}
	for _, f := range res.Rel("O").Facts() {
		if !f.Tuple[1].IsLabeledNull() {
			t.Errorf("expected labeled null, got %v", f.Tuple)
		}
	}
}

func TestMaxMonomialsBoundsAnnotations(t *testing.T) {
	// A tuple derivable via many alternative paths: U(x) :- E_i(x) for
	// many i.
	prog := &Program{}
	edb := NewDB()
	one := schema.NewTuple(schema.Int(1))
	for i := 0; i < 20; i++ {
		pred := fmt.Sprintf("E%d", i)
		prog.Rules = append(prog.Rules, Rule{
			ID:   pred,
			Head: NewHead("U", HV("x")),
			Body: []Literal{Pos(NewAtom(pred, V("x")))},
		})
		edb.Add(pred, one, provenance.NewVar(provenance.Var(fmt.Sprint("e", i))))
	}
	res, err := Eval(prog, edb, Options{Provenance: true, MaxMonomials: 4})
	if err != nil {
		t.Fatal(err)
	}
	f, ok := res.Rel("U").Get(one)
	if !ok {
		t.Fatal("U(1) missing")
	}
	if f.Prov.NumMonomials() > 4 {
		t.Errorf("annotation has %d monomials, bound was 4", f.Prov.NumMonomials())
	}
	// Unbounded keeps all 20.
	res2, err := Eval(prog, edb, Options{Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := res2.Rel("U").Get(one)
	if f2.Prov.NumMonomials() != 20 {
		t.Errorf("unbounded = %d monomials", f2.Prov.NumMonomials())
	}
}

func TestJoinOrderIndependence(t *testing.T) {
	// The same query with body atoms in every order must produce identical
	// results (the greedy join orderer must not change semantics).
	bodies := [][]Literal{
		{Pos(NewAtom("A", V("x"))), Pos(NewAtom("B", V("x"), V("y"))), Pos(NewAtom("C", V("y")))},
		{Pos(NewAtom("C", V("y"))), Pos(NewAtom("B", V("x"), V("y"))), Pos(NewAtom("A", V("x")))},
		{Pos(NewAtom("B", V("x"), V("y"))), Pos(NewAtom("C", V("y"))), Pos(NewAtom("A", V("x")))},
	}
	edb := NewDB()
	for i := int64(0); i < 10; i++ {
		edb.AddTuple("A", schema.NewTuple(schema.Int(i)))
		edb.AddTuple("C", schema.NewTuple(schema.Int(i*2)))
		edb.AddTuple("B", schema.NewTuple(schema.Int(i), schema.Int(i*2)))
	}
	var first []Fact
	for i, body := range bodies {
		prog := &Program{Rules: []Rule{{
			ID: fmt.Sprint("q", i), Head: NewHead("Out", HV("x"), HV("y")), Body: body,
		}}}
		res, err := Eval(prog, edb, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := res.Rel("Out").Facts()
		if i == 0 {
			first = got
			if len(first) != 10 {
				t.Fatalf("Out = %v", first)
			}
			continue
		}
		if len(got) != len(first) {
			t.Fatalf("order %d: %d facts vs %d", i, len(got), len(first))
		}
		for j := range got {
			if !got[j].Tuple.Equal(first[j].Tuple) {
				t.Errorf("order %d: fact %d differs", i, j)
			}
		}
	}
}

func TestRepeatedVariableAcrossAtoms(t *testing.T) {
	// R(x,x) via two atoms sharing x both ways around.
	prog := &Program{Rules: []Rule{{
		ID:   "rr",
		Head: NewHead("Out", HV("x")),
		Body: []Literal{
			Pos(NewAtom("A", V("x"), V("x"))),
			Pos(NewAtom("B", V("x"))),
		},
	}}}
	edb := NewDB()
	edb.AddTuple("A", schema.NewTuple(schema.Int(1), schema.Int(1)))
	edb.AddTuple("A", schema.NewTuple(schema.Int(1), schema.Int(2)))
	edb.AddTuple("A", schema.NewTuple(schema.Int(3), schema.Int(3)))
	edb.AddTuple("B", schema.NewTuple(schema.Int(1)))
	edb.AddTuple("B", schema.NewTuple(schema.Int(3)))
	res, err := Eval(prog, edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel("Out").Len() != 2 {
		t.Errorf("Out = %v", res.Rel("Out").Facts())
	}
}

func TestIncrementalWithMaxMonomials(t *testing.T) {
	// Incremental maintenance under a tight monomial bound still converges
	// and keeps tuples correct on a cyclic identity pair.
	prog := &Program{Rules: []Rule{
		{ID: "ab", ProvToken: "Mab", Head: NewHead("B", HV("x")), Body: []Literal{Pos(NewAtom("A", V("x")))}},
		{ID: "ba", ProvToken: "Mba", Head: NewHead("A", HV("x")), Body: []Literal{Pos(NewAtom("B", V("x")))}},
	}}
	inc, err := NewIncremental(prog, NewDB(), Options{MaxMonomials: 1})
	if err != nil {
		t.Fatal(err)
	}
	one := schema.NewTuple(schema.Int(1))
	if _, err := inc.Insert(context.Background(), []Fact2{{Pred: "A", Tuple: one, Prov: provenance.NewVar("a1")}}); err != nil {
		t.Fatal(err)
	}
	if !inc.DB().Rel("B").Contains(one) {
		t.Fatal("B(1) missing")
	}
	f, _ := inc.DB().Rel("B").Get(one)
	if f.Prov.NumMonomials() > 1 {
		t.Errorf("bound violated: %v", f.Prov)
	}
	// Deleting the base token removes everything.
	inc.DeleteBase([]provenance.Var{"a1"})
	if inc.DB().Rel("B").Contains(one) || inc.DB().Rel("A").Contains(one) {
		t.Error("deletion incomplete under monomial bound")
	}
}
