package datalog

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

// Options configures evaluation.
type Options struct {
	// Provenance enables annotation computation. When false all facts are
	// annotated 1 and only tuple sets are computed (fastest).
	Provenance bool
	// Exact requests exact N[X] provenance. Exact evaluation requires a
	// non-recursive program; the fixpoint engine otherwise computes the
	// B[X] witness-set quotient (see package comment).
	Exact bool
	// MaxIterations bounds the fixpoint loop; 0 means the default (100000).
	MaxIterations int
	// MaxMonomials, when positive, bounds every stored annotation to that
	// many lowest-degree witness monomials (provenance.Poly.Truncate). On
	// dense or cyclic mapping graphs the number of alternative derivation
	// paths grows combinatorially; bounded witness sets keep evaluation
	// polynomial while preserving the short derivations that trust
	// conditions and deletion propagation use. 0 means unbounded.
	MaxMonomials int
	// ChaseSubsumption enables the chase-style redundancy check used for
	// schema-mapping programs: a derived tuple containing labeled nulls is
	// not emitted if an existing tuple of the same predicate subsumes it
	// (maps onto it by a consistent substitution of its nulls). This keeps
	// cyclic mapping graphs — e.g. ORCHESTRA's A→C join composed with the
	// C→A split — from echoing Skolem-padded variants of data the target
	// already has in concrete form.
	ChaseSubsumption bool
	// Parallelism bounds the worker pool that fires independent rules (and
	// delta positions, in semi-naive rounds) of one stratum concurrently.
	// 0 (the zero value) means adaptive: each round picks a worker count
	// from its estimated probe work, up to runtime.NumCPU(), and rounds too
	// small to amortize the snapshot and merge barriers run on the plain
	// sequential path — the automatic setting is never slower than
	// Parallelism=-1 by more than the estimate itself costs (a per-job
	// extent-size read). See AdaptiveWorkers. 1 evaluates sequentially, as
	// does any negative value (the explicit escape hatch). Workers probe a
	// frozen database and buffer their head facts; the coordinator then
	// merges the buffers in deterministic job order, so fixpoints and
	// provenance polynomials do not depend on goroutine scheduling —
	// results are byte-identical at every setting.
	Parallelism int
	// NoReorder disables the greedy join-order planner: positive body atoms
	// are joined strictly in their written order (negations and comparisons
	// still float to the earliest point where their variables are bound —
	// an unbound filter cannot run at all).
	NoReorder bool
	// Materialized selects the recursive reference evaluator that buffers
	// each rule firing's head facts before merging, instead of the default
	// streaming iterator pipelines (pipeline.go). Results are byte-identical
	// either way; the switch exists as the equivalence-test oracle and as an
	// escape hatch.
	Materialized bool
	// Stats, when non-nil, receives evaluation counters (probe counts,
	// pushdown hit rate, peak live intermediate tuples — see EvalStats). The
	// struct may be shared across evaluations; counters accumulate.
	Stats *EvalStats
}

// DefaultMaxIterations is the fixpoint iteration bound when unspecified.
const DefaultMaxIterations = 100000

// EffectiveParallelism resolves Options.Parallelism to a concrete worker
// count: 0 (unset) auto-detects runtime.NumCPU(), negative values force
// sequential evaluation, and positive values are taken as-is. runRound is
// the single choke point that applies it.
func EffectiveParallelism(n int) int {
	switch {
	case n == 0:
		return runtime.NumCPU()
	case n < 0:
		return 1
	default:
		return n
	}
}

// Eval evaluates the program over the EDB and returns a database containing
// both EDB and derived facts. The input database is not modified. It is
// EvalCtx with a background context — use EvalCtx to bound or cancel long
// fixpoints.
func Eval(p *Program, edb *DB, opts Options) (*DB, error) {
	return EvalCtx(context.Background(), p, edb, opts)
}

// EvalCtx is Eval under a context. Cancellation is cooperative: the context
// is checked before evaluation starts, before every fixpoint iteration of
// each stratum, and before each rule firing of a round (including on the
// parallel workers), so an expired context returns ctx.Err() — typically
// context.DeadlineExceeded — without completing a single iteration, and a
// runaway recursive program stops within one round of the deadline.
func EvalCtx(ctx context.Context, p *Program, edb *DB, opts Options) (*DB, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	strata, err := p.Stratify()
	if err != nil {
		return nil, err
	}
	// An O(#preds) copy-on-write snapshot replaces the old deep clone: the
	// caller's EDB is untouched, and only relations evaluation actually
	// mutates (head predicates) are ever copied.
	result := edb.Snapshot()
	ensurePreds(p, result)
	pl := newPlanner(opts.NoReorder)
	if opts.Exact && opts.Provenance {
		if cyc := recursivePreds(p); len(cyc) > 0 {
			return nil, fmt.Errorf("datalog: exact provenance requires a non-recursive program; recursive predicates: %s",
				strings.Join(cyc, ", "))
		}
		if err := evalExact(ctx, p, result, pl, opts); err != nil {
			return nil, err
		}
		return result, nil
	}
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = DefaultMaxIterations
	}
	// One executor for the whole evaluation: its worker pool and buffer
	// arena are shared by every stratum's rounds instead of being rebuilt
	// per round (see executor.go).
	re := newRoundExec(opts, nil)
	defer re.close()
	for _, stratum := range strata {
		if err := evalStratum(ctx, stratum, result, pl, re, opts, maxIter); err != nil {
			return nil, err
		}
	}
	return result, nil
}

// ensurePreds materializes an extent for every predicate the program can
// touch, so that parallel firings never create map entries concurrently.
func ensurePreds(p *Program, db *DB) {
	for _, r := range p.Rules {
		db.Rel(r.Head.Pred)
		for _, l := range r.Body {
			if l.Builtin == nil {
				db.Rel(l.Atom.Pred)
			}
		}
	}
}

// evalExact evaluates a non-recursive program with exact N[X] provenance:
// predicates are processed in dependency order and every rule fires exactly
// once over complete extents, so each derivation is counted exactly once.
func evalExact(ctx context.Context, p *Program, db *DB, pl *planner, opts Options) error {
	idb := p.IDBPreds()
	// Kahn topological sort of IDB predicates by body dependencies.
	deps := map[string]map[string]bool{}  // head -> IDB body preds
	rdeps := map[string]map[string]bool{} // body pred -> heads
	for pred := range idb {
		deps[pred] = map[string]bool{}
	}
	for _, r := range p.Rules {
		for _, l := range r.Body {
			if l.Builtin == nil && idb[l.Atom.Pred] && l.Atom.Pred != r.Head.Pred {
				deps[r.Head.Pred][l.Atom.Pred] = true
				if rdeps[l.Atom.Pred] == nil {
					rdeps[l.Atom.Pred] = map[string]bool{}
				}
				rdeps[l.Atom.Pred][r.Head.Pred] = true
			}
		}
	}
	var ready []string
	indeg := map[string]int{}
	for pred, ds := range deps {
		indeg[pred] = len(ds)
		if len(ds) == 0 {
			ready = append(ready, pred)
		}
	}
	sort.Strings(ready)
	rulesByHead := map[string][]Rule{}
	for _, r := range p.Rules {
		rulesByHead[r.Head.Pred] = append(rulesByHead[r.Head.Pred], r)
	}
	emit := func(pred string, t schema.Tuple, prov provenance.Poly) {
		rel := db.MutableRel(pred)
		k := t.Key()
		if f := rel.facts[k]; f != nil {
			f.Prov = f.Prov.Add(prov).Intern()
			return
		}
		rel.putKeyed(k, t, prov)
	}
	processed := 0
	var sc pipeScratch
	for len(ready) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		pred := ready[0]
		ready = ready[1:]
		processed++
		for _, r := range rulesByHead[pred] {
			pln := pl.planFor(r, -1, db)
			if opts.Materialized {
				if err := fireRule(r, pln, db, nil, opts, emit); err != nil {
					return err
				}
				continue
			}
			sink := &exactSink{rel: db.MutableRel(r.Head.Pred)}
			if err := fireRuleStream(ctx, r, pln, db, nil, opts, sink, &sc); err != nil {
				return err
			}
		}
		var next []string
		for dep := range rdeps[pred] {
			indeg[dep]--
			if indeg[dep] == 0 {
				next = append(next, dep)
			}
		}
		sort.Strings(next)
		ready = append(ready, next...)
	}
	if processed != len(idb) {
		return fmt.Errorf("datalog: internal: exact evaluation left %d predicates unprocessed", len(idb)-processed)
	}
	return nil
}

// exactSink merges streamed head facts under exact N[X] semantics: every
// derivation is enumerated exactly once (non-recursive programs in
// dependency order), so annotations always accumulate and no emission can
// be skipped.
type exactSink struct {
	rel *Rel
}

func (s *exactSink) skip(key []byte, prov provenance.Poly) bool { return false }

func (s *exactSink) emit(key []byte, t schema.Tuple, prov provenance.Poly) {
	k := string(key)
	if f := s.rel.facts[k]; f != nil {
		f.Prov = f.Prov.Add(prov).Intern()
		return
	}
	s.rel.putKeyed(k, t, prov)
}

// recursivePreds returns IDB predicates involved in dependency cycles.
func recursivePreds(p *Program) []string {
	idb := p.IDBPreds()
	adj := map[string]map[string]bool{}
	for _, r := range p.Rules {
		for _, l := range r.Body {
			if l.Builtin == nil && idb[l.Atom.Pred] {
				if adj[r.Head.Pred] == nil {
					adj[r.Head.Pred] = map[string]bool{}
				}
				adj[r.Head.Pred][l.Atom.Pred] = true
			}
		}
	}
	// A pred is recursive if it can reach itself.
	var cyc []string
	for start := range idb {
		seen := map[string]bool{}
		stack := []string{start}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for next := range adj[cur] {
				if next == start {
					cyc = append(cyc, start)
					stack = nil
					break
				}
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
	}
	return cyc
}

// deltaFact pairs a tuple with the annotation portion that is new this
// iteration and must still be propagated.
type deltaFact struct {
	tuple schema.Tuple
	prov  provenance.Poly
}

// absorbInto returns the post-merge callback for one round: it accumulates
// each merge's genuinely new annotation part in delta.
func absorbInto(delta map[string]map[string]deltaFact, opts Options) func(mergeResult) {
	return func(mr mergeResult) {
		m := delta[mr.pred]
		if m == nil {
			m = map[string]deltaFact{}
			delta[mr.pred] = m
		}
		if df, ok := m[mr.key]; ok {
			df.prov = df.prov.Add(mr.newPart)
			if opts.Provenance && !opts.Exact {
				df.prov = df.prov.Linearize()
			}
			m[mr.key] = df
		} else {
			m[mr.key] = deltaFact{tuple: mr.tuple, prov: mr.newPart}
		}
	}
}

// evalStratum runs semi-naive evaluation of one stratum to fixpoint,
// checking the context once per iteration so runaway recursion stops on
// cancellation or deadline. Rounds execute on the caller's executor, whose
// worker pool and buffers persist across rounds (see executor.go).
func evalStratum(ctx context.Context, rules []Rule, db *DB, pl *planner, re *roundExec, opts Options, maxIter int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	plans := pl.plansFor(rules, db)
	// Only predicates that appear positively in some body of this (or, for
	// full Eval, any later — strata are closed under dependencies, so "this")
	// stratum can seed further rounds: delta entries for anything else are
	// dead weight. need filters them out at the merge barrier.
	need := map[string]bool{}
	for _, r := range rules {
		for _, l := range r.Body {
			if l.Builtin == nil && !l.Negated {
				need[l.Atom.Pred] = true
			}
		}
	}
	// Round 0: naive firing of every rule over the current database.
	delta := map[string]map[string]deltaFact{}
	jobs := make([]job, 0, len(rules))
	for ri, r := range rules {
		jobs = append(jobs, job{rule: r, pln: plans[ri].full})
	}
	if err := re.runRound(ctx, jobs, db, opts, need, absorbInto(delta, opts)); err != nil {
		return err
	}
	// Semi-naive rounds: join each rule with the delta at one position.
	for iter := 0; len(delta) > 0; iter++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if iter >= maxIter {
			return fmt.Errorf("datalog: fixpoint not reached after %d iterations", maxIter)
		}
		prev := delta
		delta = map[string]map[string]deltaFact{}
		jobs = jobs[:0]
		lists := map[string][]deltaFact{}
		for ri, r := range rules {
			for i, l := range r.Body {
				if l.Builtin != nil || l.Negated {
					continue
				}
				if dm, ok := prev[l.Atom.Pred]; ok && len(dm) > 0 {
					dl, ok := lists[l.Atom.Pred]
					if !ok {
						dl = deltaList(dm)
						lists[l.Atom.Pred] = dl
					}
					jobs = append(jobs, job{rule: r, pln: plans[ri].delta[i], delta: dl})
				}
			}
		}
		if err := re.runRound(ctx, jobs, db, opts, need, absorbInto(delta, opts)); err != nil {
			return err
		}
	}
	return nil
}

// job is one rule firing scheduled within a stratum round: a rule, its
// compiled plan, and (for semi-naive rounds) the delta slice substituted at
// the plan's delta position. Chunk partitioning subslices delta to split one
// firing across workers (see partitionJobs).
type job struct {
	rule  Rule
	pln   *plan
	delta []deltaFact
}

// mergeResult describes the outcome of folding one derived fact into its
// relation: the genuinely new annotation part, whether the tuple itself was
// absent before the merge, and the annotation the tuple carried before
// (zero when fresh) — batched insertion replays per-transaction merges from
// it (see Incremental.InsertGroups).
type mergeResult struct {
	pred    string
	key     string
	tuple   schema.Tuple
	newPart provenance.Poly
	fresh   bool
	prior   provenance.Poly
}

// merge folds a derived annotation into the stored fact. It returns the
// merge outcome (pred left for the caller to fill) and whether anything
// changed.
func merge(rel *Rel, t schema.Tuple, p provenance.Poly, opts Options) (mergeResult, bool) {
	return mergeKeyed(rel, t.Key(), t, p, opts)
}

// mergeKeyed is merge with the tuple's storage key supplied by the caller.
// The streaming pipelines encode head keys into a reused buffer, so they
// merge without paying Tuple.Key's memoization clone per derived fact.
func mergeKeyed(rel *Rel, k string, t schema.Tuple, p provenance.Poly, opts Options) (mergeResult, bool) {
	if !opts.Provenance {
		if _, ok := rel.facts[k]; ok {
			return mergeResult{key: k, tuple: t}, false
		}
		rel.putKeyed(k, t, provenance.One())
		return mergeResult{key: k, tuple: t, newPart: provenance.One(), fresh: true}, true
	}
	if !opts.Exact {
		p = p.Linearize()
	}
	existing := rel.facts[k]
	if existing == nil {
		if !opts.Exact {
			p = p.Truncate(opts.MaxMonomials)
		}
		rel.putKeyed(k, t, p)
		return mergeResult{key: k, tuple: t, newPart: p, fresh: true}, true
	}
	if opts.Exact {
		// Exact mode runs on non-recursive programs where each derivation
		// is enumerated exactly once: always accumulate.
		prior := existing.Prov
		rel.putKeyed(k, t, p)
		return mergeResult{key: k, tuple: t, newPart: p, prior: prior}, true
	}
	// Fast path: a re-derivation whose witnesses are already stored changes
	// nothing. The containment walk over cached keys avoids the
	// Add/Linearize/Truncate allocation chain that dominates convergence
	// rounds.
	if existing.Prov.Subsumes(p) {
		return mergeResult{key: k, tuple: t}, false
	}
	merged := existing.Prov.Add(p).Linearize().Truncate(opts.MaxMonomials)
	if merged.Equal(existing.Prov) {
		return mergeResult{key: k, tuple: t}, false
	}
	newPart := diffNew(merged, existing.Prov)
	prior := existing.Prov
	existing.Prov = merged.Intern()
	return mergeResult{key: k, tuple: t, newPart: newPart, prior: prior}, true
}

// diffNew returns the monomials of merged that existing lacks (truncation
// only drops monomials, so merged != existing implies at least one new
// one). Both polynomials are canonical, so their cached key lists are
// sorted and a two-pointer walk finds the difference without building a
// map.
func diffNew(merged, existing provenance.Poly) provenance.Poly {
	exKeys := existing.Keys()
	mKeys, mMonos := merged.Keys(), merged.Monomials()
	var fresh []provenance.Monomial
	i := 0
	for j, key := range mKeys {
		for i < len(exKeys) && exKeys[i] < key {
			i++
		}
		if i < len(exKeys) && exKeys[i] == key {
			i++
			continue
		}
		fresh = append(fresh, mMonos[j])
	}
	return provenance.FromMonomials(fresh)
}

// fireRule enumerates all satisfying assignments of the rule body in the
// compiled plan's order and calls emit for each resulting head fact. If the
// plan's delta position is set, that body literal ranges over the delta
// slice (with delta annotations) instead of the full extent. Enumeration
// terminates early the moment any step's candidate set is empty.
//
// Variable bindings live in a flat slot environment; which slots a step
// binds or checks was decided at plan time, so no undo bookkeeping is
// needed — a slot is always rewritten before any deeper step reads it.
func fireRule(r Rule, pln *plan, db *DB, delta []deltaFact, opts Options,
	emit func(string, schema.Tuple, provenance.Poly)) error {

	env := make([]schema.Value, pln.nslots)
	var keyBuf []byte
	steps := pln.steps
	// Provenance-neutral rules skip every annotation product: prov stays 1
	// through the whole enumeration and the head fact is emitted annotated 1.
	useProv := opts.Provenance && !pln.provNeutral
	var rec func(depth int, prov provenance.Poly) error
	rec = func(depth int, prov provenance.Poly) error {
		if depth == len(steps) {
			return emitHead(r, pln, env, prov, db, opts, emit)
		}
		st := &steps[depth]
		if st.unbound {
			// The planner floats filters to where their variables are
			// bound; Validate rejects bodies where they never bind.
			return fmt.Errorf("datalog: rule %q: unbound filter literal", r.ID)
		}
		switch st.kind {
		case stepCmp:
			if !compare(st.op, st.left.value(env), st.right.value(env)) {
				return nil
			}
			return rec(depth+1, prov)
		case stepNeg:
			keyBuf = keyBuf[:0]
			for _, pt := range st.negTerms {
				keyBuf = appendProjKey(keyBuf, pt.value(env))
			}
			if db.Rel(st.pred).containsKey(keyBuf) {
				return nil
			}
			return rec(depth+1, prov)
		}
		arity := len(st.lit.Atom.Terms)
		if st.isDelta {
			for di := range delta {
				df := &delta[di]
				if len(df.tuple) != arity || !matchDelta(st, df.tuple, env) {
					continue
				}
				np := prov
				if useProv {
					np = np.Mul(df.prov)
				}
				if err := rec(depth+1, np); err != nil {
					return err
				}
			}
			return nil
		}
		keyBuf = keyBuf[:0]
		for _, pt := range st.probes {
			keyBuf = appendProjKey(keyBuf, pt.value(env))
		}
		bucket := db.Rel(st.pred).lookupBucket(st.colKey, st.boundCols, keyBuf)
	cand:
		for _, f := range bucket {
			if len(f.Tuple) != arity {
				continue
			}
			for _, a := range st.actions {
				if a.check {
					if !env[a.slot].Equal(f.Tuple[a.col]) {
						continue cand
					}
				} else {
					env[a.slot] = f.Tuple[a.col]
				}
			}
			np := prov
			if useProv {
				np = np.Mul(f.Prov)
			}
			if err := rec(depth+1, np); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0, provenance.One())
}

// matchDelta checks a delta candidate against the step's probe columns
// (which the hash index would otherwise guarantee) and applies its
// bind/check actions.
func matchDelta(st *planStep, tu schema.Tuple, env []schema.Value) bool {
	for i, c := range st.boundCols {
		if !st.probes[i].value(env).Equal(tu[c]) {
			return false
		}
	}
	for _, a := range st.actions {
		if a.check {
			if !env[a.slot].Equal(tu[a.col]) {
				return false
			}
		} else {
			env[a.slot] = tu[a.col]
		}
	}
	return true
}

// compare applies a builtin comparison to two values.
func compare(op CmpOp, l, r schema.Value) bool {
	switch op {
	case OpEq:
		return l.Equal(r)
	case OpNe:
		return !l.Equal(r)
	case OpLt:
		return l.Compare(r) < 0
	case OpLe:
		return l.Compare(r) <= 0
	case OpGt:
		return l.Compare(r) > 0
	case OpGe:
		return l.Compare(r) >= 0
	default:
		return false
	}
}

// emitHead instantiates the compiled rule head over the slot environment
// and emits the fact.
func emitHead(r Rule, pln *plan, env []schema.Value, prov provenance.Poly, db *DB, opts Options,
	emit func(string, schema.Tuple, provenance.Poly)) error {

	if pln.headErr != nil {
		return pln.headErr
	}
	out := make(schema.Tuple, len(pln.head))
	for i, ha := range pln.head {
		if ha.skolem != nil {
			args := make([]string, len(ha.args))
			for j, at := range ha.args {
				args[j] = at.value(env).Key()
			}
			out[i] = schema.LabeledNull(ha.skolem.Fn + "(" + strings.Join(args, ",") + ")")
			continue
		}
		out[i] = ha.term.value(env)
	}
	if opts.Provenance && !pln.tokProv.IsZero() {
		prov = prov.Mul(pln.tokProv)
	}
	if !opts.Provenance {
		prov = provenance.One()
	}
	if opts.ChaseSubsumption && out.HasLabeledNull() && subsumedByExisting(db.Rel(r.Head.Pred), out) {
		return nil
	}
	emit(r.Head.Pred, out, prov)
	return nil
}

// subsumedByExisting reports whether some stored tuple is a homomorphic
// image of t: equal at t's concrete positions, with a consistent
// substitution for t's labeled nulls.
func subsumedByExisting(rel *Rel, t schema.Tuple) bool {
	var cols []int
	var vals schema.Tuple
	for i, v := range t {
		if !v.IsLabeledNull() {
			cols = append(cols, i)
			vals = append(vals, v)
		}
	}
	for _, f := range rel.lookup(cols, vals) {
		if f.Tuple.Equal(t) {
			continue // the tuple itself (or an identical copy) — not a subsumer
		}
		subst := map[string]schema.Value{}
		ok := true
		for i, v := range t {
			if !v.IsLabeledNull() {
				continue
			}
			if prev, seen := subst[v.Str()]; seen {
				if !prev.Equal(f.Tuple[i]) {
					ok = false
					break
				}
			} else {
				subst[v.Str()] = f.Tuple[i]
			}
		}
		if ok {
			return true
		}
	}
	return false
}
