package datalog

import (
	"fmt"
	"sort"
	"strings"

	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

// Options configures evaluation.
type Options struct {
	// Provenance enables annotation computation. When false all facts are
	// annotated 1 and only tuple sets are computed (fastest).
	Provenance bool
	// Exact requests exact N[X] provenance. Exact evaluation requires a
	// non-recursive program; the fixpoint engine otherwise computes the
	// B[X] witness-set quotient (see package comment).
	Exact bool
	// MaxIterations bounds the fixpoint loop; 0 means the default (100000).
	MaxIterations int
	// MaxMonomials, when positive, bounds every stored annotation to that
	// many lowest-degree witness monomials (provenance.Poly.Truncate). On
	// dense or cyclic mapping graphs the number of alternative derivation
	// paths grows combinatorially; bounded witness sets keep evaluation
	// polynomial while preserving the short derivations that trust
	// conditions and deletion propagation use. 0 means unbounded.
	MaxMonomials int
	// ChaseSubsumption enables the chase-style redundancy check used for
	// schema-mapping programs: a derived tuple containing labeled nulls is
	// not emitted if an existing tuple of the same predicate subsumes it
	// (maps onto it by a consistent substitution of its nulls). This keeps
	// cyclic mapping graphs — e.g. ORCHESTRA's A→C join composed with the
	// C→A split — from echoing Skolem-padded variants of data the target
	// already has in concrete form.
	ChaseSubsumption bool
}

// DefaultMaxIterations is the fixpoint iteration bound when unspecified.
const DefaultMaxIterations = 100000

// Eval evaluates the program over the EDB and returns a database containing
// both EDB and derived facts. The input database is not modified.
func Eval(p *Program, edb *DB, opts Options) (*DB, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	strata, err := p.Stratify()
	if err != nil {
		return nil, err
	}
	result := edb.Clone()
	if opts.Exact && opts.Provenance {
		if cyc := recursivePreds(p); len(cyc) > 0 {
			return nil, fmt.Errorf("datalog: exact provenance requires a non-recursive program; recursive predicates: %s",
				strings.Join(cyc, ", "))
		}
		if err := evalExact(p, result, opts); err != nil {
			return nil, err
		}
		return result, nil
	}
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = DefaultMaxIterations
	}
	for _, stratum := range strata {
		if err := evalStratum(stratum, result, opts, maxIter); err != nil {
			return nil, err
		}
	}
	return result, nil
}

// evalExact evaluates a non-recursive program with exact N[X] provenance:
// predicates are processed in dependency order and every rule fires exactly
// once over complete extents, so each derivation is counted exactly once.
func evalExact(p *Program, db *DB, opts Options) error {
	idb := p.IDBPreds()
	// Kahn topological sort of IDB predicates by body dependencies.
	deps := map[string]map[string]bool{}  // head -> IDB body preds
	rdeps := map[string]map[string]bool{} // body pred -> heads
	for pred := range idb {
		deps[pred] = map[string]bool{}
	}
	for _, r := range p.Rules {
		for _, l := range r.Body {
			if l.Builtin == nil && idb[l.Atom.Pred] && l.Atom.Pred != r.Head.Pred {
				deps[r.Head.Pred][l.Atom.Pred] = true
				if rdeps[l.Atom.Pred] == nil {
					rdeps[l.Atom.Pred] = map[string]bool{}
				}
				rdeps[l.Atom.Pred][r.Head.Pred] = true
			}
		}
	}
	var ready []string
	indeg := map[string]int{}
	for pred, ds := range deps {
		indeg[pred] = len(ds)
		if len(ds) == 0 {
			ready = append(ready, pred)
		}
	}
	sort.Strings(ready)
	rulesByHead := map[string][]Rule{}
	for _, r := range p.Rules {
		rulesByHead[r.Head.Pred] = append(rulesByHead[r.Head.Pred], r)
	}
	emit := func(pred string, t schema.Tuple, prov provenance.Poly) {
		rel := db.Rel(pred)
		if f, ok := rel.Get(t); ok {
			f.Prov = f.Prov.Add(prov)
			rel.facts[t.Key()] = f
			return
		}
		rel.put(t, prov)
	}
	processed := 0
	for len(ready) > 0 {
		pred := ready[0]
		ready = ready[1:]
		processed++
		for _, r := range rulesByHead[pred] {
			if err := fireRule(r, db, nil, -1, opts, emit); err != nil {
				return err
			}
		}
		var next []string
		for dep := range rdeps[pred] {
			indeg[dep]--
			if indeg[dep] == 0 {
				next = append(next, dep)
			}
		}
		sort.Strings(next)
		ready = append(ready, next...)
	}
	if processed != len(idb) {
		return fmt.Errorf("datalog: internal: exact evaluation left %d predicates unprocessed", len(idb)-processed)
	}
	return nil
}

// recursivePreds returns IDB predicates involved in dependency cycles.
func recursivePreds(p *Program) []string {
	idb := p.IDBPreds()
	adj := map[string]map[string]bool{}
	for _, r := range p.Rules {
		for _, l := range r.Body {
			if l.Builtin == nil && idb[l.Atom.Pred] {
				if adj[r.Head.Pred] == nil {
					adj[r.Head.Pred] = map[string]bool{}
				}
				adj[r.Head.Pred][l.Atom.Pred] = true
			}
		}
	}
	// A pred is recursive if it can reach itself.
	var cyc []string
	for start := range idb {
		seen := map[string]bool{}
		stack := []string{start}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for next := range adj[cur] {
				if next == start {
					cyc = append(cyc, start)
					stack = nil
					break
				}
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
	}
	return cyc
}

// deltaFact pairs a tuple with the annotation portion that is new this
// iteration and must still be propagated.
type deltaFact struct {
	tuple schema.Tuple
	prov  provenance.Poly
}

// evalStratum runs semi-naive evaluation of one stratum to fixpoint.
func evalStratum(rules []Rule, db *DB, opts Options, maxIter int) error {
	// Round 0: naive firing of every rule over the current database.
	delta := map[string]map[string]deltaFact{}
	record := func(pred string, t schema.Tuple, p provenance.Poly) {
		newPart, changed := merge(db.Rel(pred), t, p, opts)
		if !changed {
			return
		}
		m := delta[pred]
		if m == nil {
			m = map[string]deltaFact{}
			delta[pred] = m
		}
		k := t.Key()
		if df, ok := m[k]; ok {
			df.prov = df.prov.Add(newPart)
			if opts.Provenance && !opts.Exact {
				df.prov = df.prov.Linearize()
			}
			m[k] = df
		} else {
			m[k] = deltaFact{tuple: t, prov: newPart}
		}
	}
	for _, r := range rules {
		if err := fireRule(r, db, nil, -1, opts, record); err != nil {
			return err
		}
	}
	// Semi-naive rounds: join each rule with the delta at one position.
	for iter := 0; len(delta) > 0; iter++ {
		if iter >= maxIter {
			return fmt.Errorf("datalog: fixpoint not reached after %d iterations", maxIter)
		}
		prev := delta
		delta = map[string]map[string]deltaFact{}
		record = func(pred string, t schema.Tuple, p provenance.Poly) {
			newPart, changed := merge(db.Rel(pred), t, p, opts)
			if !changed {
				return
			}
			m := delta[pred]
			if m == nil {
				m = map[string]deltaFact{}
				delta[pred] = m
			}
			k := t.Key()
			if df, ok := m[k]; ok {
				df.prov = df.prov.Add(newPart)
				if opts.Provenance && !opts.Exact {
					df.prov = df.prov.Linearize()
				}
				m[k] = df
			} else {
				m[k] = deltaFact{tuple: t, prov: newPart}
			}
		}
		for _, r := range rules {
			for i, l := range r.Body {
				if l.Builtin != nil || l.Negated {
					continue
				}
				if dm, ok := prev[l.Atom.Pred]; ok && len(dm) > 0 {
					if err := fireRule(r, db, dm, i, opts, record); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// merge folds a derived annotation into the stored fact. It returns the
// genuinely new annotation part and whether anything changed.
func merge(rel *Rel, t schema.Tuple, p provenance.Poly, opts Options) (provenance.Poly, bool) {
	if !opts.Provenance {
		if rel.Contains(t) {
			return provenance.Poly{}, false
		}
		rel.put(t, provenance.One())
		return provenance.One(), true
	}
	if !opts.Exact {
		p = p.Linearize()
	}
	existing, ok := rel.Get(t)
	if !ok {
		if !opts.Exact {
			p = p.Truncate(opts.MaxMonomials)
		}
		rel.put(t, p)
		return p, true
	}
	if opts.Exact {
		// Exact mode runs on non-recursive programs where each derivation
		// is enumerated exactly once: always accumulate.
		rel.put(t, p)
		return p, true
	}
	merged := existing.Prov.Add(p).Linearize().Truncate(opts.MaxMonomials)
	if merged.Equal(existing.Prov) {
		return provenance.Poly{}, false
	}
	// Isolate the monomials not already present (truncation only drops
	// monomials, so merged != existing implies at least one new one).
	have := map[string]bool{}
	for _, m := range existing.Prov.Monomials() {
		have[monoKey(m)] = true
	}
	var fresh []provenance.Monomial
	for _, m := range merged.Monomials() {
		if !have[monoKey(m)] {
			fresh = append(fresh, m)
		}
	}
	newPart := provenance.FromMonomials(fresh)
	rel.set(t, merged)
	return newPart, true
}

func monoKey(m provenance.Monomial) string { return m.Key() }

// binding maps variable names to values during rule evaluation.
type binding map[string]schema.Value

// fireRule enumerates all satisfying assignments of the rule body and calls
// emit for each resulting head fact. If deltaIdx >= 0, body literal
// deltaIdx ranges over deltaExt (with delta annotations) instead of the
// full extent.
func fireRule(r Rule, db *DB, deltaExt map[string]deltaFact, deltaIdx int, opts Options,
	emit func(string, schema.Tuple, provenance.Poly)) error {

	// Order of evaluation: positive literals in order; negations and
	// builtins are applied as soon as their variables are bound.
	type litState struct {
		lit  Literal
		idx  int
		done bool
	}
	lits := make([]*litState, len(r.Body))
	for i := range r.Body {
		lits[i] = &litState{lit: r.Body[i], idx: i}
	}

	var rec func(b binding, prov provenance.Poly) error
	rec = func(b binding, prov provenance.Poly) error {
		// Apply every pending filter whose variables are all bound.
		undone := []*litState{}
		for _, ls := range lits {
			if ls.done {
				continue
			}
			if ls.lit.Builtin != nil {
				if l, okL := resolve(ls.lit.Builtin.Left, b); okL {
					if rr, okR := resolve(ls.lit.Builtin.Right, b); okR {
						if !compare(ls.lit.Builtin.Op, l, rr) {
							return nil
						}
						continue // satisfied; do not re-add
					}
				}
				undone = append(undone, ls)
				continue
			}
			if ls.lit.Negated {
				if vals, ok := resolveAtom(ls.lit.Atom, b); ok {
					if db.Rel(ls.lit.Atom.Pred).Contains(vals) {
						return nil
					}
					continue
				}
				undone = append(undone, ls)
				continue
			}
			undone = append(undone, ls)
		}
		// Choose the next positive literal greedily by selectivity: the
		// delta literal first (it is both mandatory and usually tiny),
		// otherwise the literal with the fewest matching facts under the
		// current bindings. This keeps e.g. the 3-way join of the split
		// mapping from enumerating a cartesian product with an unbound
		// dimension table.
		var next *litState
		bestCount := -1
		for _, ls := range undone {
			if ls.lit.Builtin != nil || ls.lit.Negated {
				continue
			}
			if ls.idx == deltaIdx {
				next = ls
				break
			}
			var cols []int
			var vals schema.Tuple
			for i, tm := range ls.lit.Atom.Terms {
				if v, ok := resolve(tm, b); ok {
					cols = append(cols, i)
					vals = append(vals, v)
				}
			}
			n := db.Rel(ls.lit.Atom.Pred).lookupCount(cols, vals)
			if bestCount == -1 || n < bestCount {
				next, bestCount = ls, n
			}
		}
		if next == nil {
			if len(undone) > 0 {
				// Only unbound negations/builtins remain: unsafe rule
				// bodies are rejected by Validate, so this is internal.
				return fmt.Errorf("datalog: rule %q: unbound filter literal", r.ID)
			}
			return emitHead(r, b, prov, db, opts, emit)
		}
		// Enumerate matches for next.
		next.done = true
		defer func() { next.done = false }()
		atom := next.lit.Atom
		var candidates []Fact
		if next.idx == deltaIdx {
			candidates = make([]Fact, 0, len(deltaExt))
			for _, df := range deltaExt {
				candidates = append(candidates, Fact{Tuple: df.tuple, Prov: df.prov})
			}
			candidates = filterMatches(atom, b, candidates)
		} else {
			candidates = indexedMatches(db.Rel(atom.Pred), atom, b)
		}
		for _, f := range candidates {
			added, ok := extend(atom, f.Tuple, b)
			if !ok {
				for _, v := range added {
					delete(b, v)
				}
				continue
			}
			np := prov
			if opts.Provenance {
				np = np.Mul(f.Prov)
			}
			if err := rec(b, np); err != nil {
				return err
			}
			for _, v := range added {
				delete(b, v)
			}
		}
		return nil
	}
	return rec(binding{}, provenance.One())
}

// resolve returns the value of a term under the binding.
func resolve(t Term, b binding) (schema.Value, bool) {
	if !t.IsVar() {
		return t.Value, true
	}
	v, ok := b[t.Name]
	return v, ok
}

// resolveAtom grounds an atom completely, or reports failure.
func resolveAtom(a Atom, b binding) (schema.Tuple, bool) {
	out := make(schema.Tuple, len(a.Terms))
	for i, t := range a.Terms {
		v, ok := resolve(t, b)
		if !ok {
			return nil, false
		}
		out[i] = v
	}
	return out, true
}

// indexedMatches returns candidate facts for an atom using a hash index on
// the bound positions.
func indexedMatches(rel *Rel, a Atom, b binding) []Fact {
	var cols []int
	var vals schema.Tuple
	for i, t := range a.Terms {
		if v, ok := resolve(t, b); ok {
			cols = append(cols, i)
			vals = append(vals, v)
		}
	}
	cand := rel.lookup(cols, vals)
	// lookup guarantees the bound positions match; repeated variables in
	// the atom (e.g. R(x,x)) still need the extend check, done by caller.
	return cand
}

// filterMatches filters candidates by the bound positions of the atom.
func filterMatches(a Atom, b binding, facts []Fact) []Fact {
	out := facts[:0]
	for _, f := range facts {
		ok := true
		for i, t := range a.Terms {
			if v, bound := resolve(t, b); bound && !v.Equal(f.Tuple[i]) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, f)
		}
	}
	return out
}

// extend unifies the atom's terms with the tuple, mutating b in place. It
// returns the variable names it added (for the caller to undo) and whether
// unification succeeded.
func extend(a Atom, tu schema.Tuple, b binding) (added []string, ok bool) {
	if len(a.Terms) != len(tu) {
		return nil, false
	}
	for i, t := range a.Terms {
		if t.IsVar() {
			if v, bound := b[t.Name]; bound {
				if !v.Equal(tu[i]) {
					return added, false
				}
			} else {
				b[t.Name] = tu[i]
				added = append(added, t.Name)
			}
		} else if !t.Value.Equal(tu[i]) {
			return added, false
		}
	}
	return added, true
}

// compare applies a builtin comparison to two values.
func compare(op CmpOp, l, r schema.Value) bool {
	switch op {
	case OpEq:
		return l.Equal(r)
	case OpNe:
		return !l.Equal(r)
	case OpLt:
		return l.Compare(r) < 0
	case OpLe:
		return l.Compare(r) <= 0
	case OpGt:
		return l.Compare(r) > 0
	case OpGe:
		return l.Compare(r) >= 0
	default:
		return false
	}
}

// emitHead instantiates the rule head under the binding and emits the fact.
func emitHead(r Rule, b binding, prov provenance.Poly, db *DB, opts Options,
	emit func(string, schema.Tuple, provenance.Poly)) error {

	out := make(schema.Tuple, len(r.Head.Terms))
	for i, ht := range r.Head.Terms {
		if ht.Skolem != nil {
			args := make([]string, len(ht.Skolem.Args))
			for j, at := range ht.Skolem.Args {
				v, ok := resolve(at, b)
				if !ok {
					return fmt.Errorf("datalog: rule %q: unbound skolem argument %s", r.ID, at)
				}
				args[j] = v.Key()
			}
			out[i] = schema.LabeledNull(ht.Skolem.Fn + "(" + strings.Join(args, ",") + ")")
			continue
		}
		v, ok := resolve(ht.Term, b)
		if !ok {
			return fmt.Errorf("datalog: rule %q: unbound head variable %s", r.ID, ht.Term)
		}
		out[i] = v
	}
	if opts.Provenance && r.ProvToken != "" {
		prov = prov.Mul(provenance.NewVar(provenance.Var(r.ProvToken)))
	}
	if !opts.Provenance {
		prov = provenance.One()
	}
	if opts.ChaseSubsumption && out.HasLabeledNull() && subsumedByExisting(db.Rel(r.Head.Pred), out) {
		return nil
	}
	emit(r.Head.Pred, out, prov)
	return nil
}

// subsumedByExisting reports whether some stored tuple is a homomorphic
// image of t: equal at t's concrete positions, with a consistent
// substitution for t's labeled nulls.
func subsumedByExisting(rel *Rel, t schema.Tuple) bool {
	var cols []int
	var vals schema.Tuple
	for i, v := range t {
		if !v.IsLabeledNull() {
			cols = append(cols, i)
			vals = append(vals, v)
		}
	}
	for _, f := range rel.lookup(cols, vals) {
		if f.Tuple.Equal(t) {
			continue // the tuple itself (or an identical copy) — not a subsumer
		}
		subst := map[string]schema.Value{}
		ok := true
		for i, v := range t {
			if !v.IsLabeledNull() {
				continue
			}
			if prev, seen := subst[v.Str()]; seen {
				if !prev.Equal(f.Tuple[i]) {
					ok = false
					break
				}
			} else {
				subst[v.Str()] = f.Tuple[i]
			}
		}
		if ok {
			return true
		}
	}
	return false
}
