package datalog

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

// groupsProgram is a small recursive program with a join, so batched
// propagation exercises multi-round derivation and cross-group monomials:
//
//	T(x,z) :- E(x,y), T(y,z).    T(x,y) :- E(x,y).
//	J(x,z) :- E(x,y), F(y,z).
func groupsProgram(t *testing.T) *Program {
	t.Helper()
	p := &Program{Rules: []Rule{
		{ID: "tc1", Head: NewHead("T", HV("x"), HV("y")),
			Body: []Literal{Pos(NewAtom("E", V("x"), V("y")))}},
		{ID: "tc2", Head: NewHead("T", HV("x"), HV("z")),
			Body: []Literal{Pos(NewAtom("E", V("x"), V("y"))), Pos(NewAtom("T", V("y"), V("z")))}},
		{ID: "j", Head: NewHead("J", HV("x"), HV("z")),
			Body: []Literal{Pos(NewAtom("E", V("x"), V("y"))), Pos(NewAtom("F", V("y"), V("z")))}},
	}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// randomGroups builds n insertion groups of random E/F edges over a small
// node domain, each fact carrying a unique token (the update-exchange
// shape).
func randomGroups(rng *rand.Rand, n, perGroup, domain int) [][]Fact2 {
	groups := make([][]Fact2, n)
	tok := 0
	for gi := range groups {
		for f := 0; f < perGroup; f++ {
			pred := "E"
			if rng.Intn(3) == 0 {
				pred = "F"
			}
			tu := schema.NewTuple(schema.Int(int64(rng.Intn(domain))), schema.Int(int64(rng.Intn(domain))))
			groups[gi] = append(groups[gi], Fact2{
				Pred:  pred,
				Tuple: tu,
				Prov:  provenance.NewVar(provenance.Var(fmt.Sprintf("g%d:%d/%d", gi, gi+1, tok))),
			})
			tok++
		}
	}
	return groups
}

func dbsEqual(t *testing.T, label string, a, b *DB) {
	t.Helper()
	ap, bp := a.Preds(), b.Preds()
	if len(ap) != len(bp) {
		t.Fatalf("%s: predicate sets differ: %v vs %v", label, ap, bp)
	}
	for i, p := range ap {
		if bp[i] != p {
			t.Fatalf("%s: predicate sets differ: %v vs %v", label, ap, bp)
		}
		af, bf := a.Rel(p).Facts(), b.Rel(p).Facts()
		if len(af) != len(bf) {
			t.Fatalf("%s: %s has %d vs %d facts", label, p, len(af), len(bf))
		}
		for j := range af {
			if !af[j].Tuple.Equal(bf[j].Tuple) {
				t.Fatalf("%s: %s fact %d: %v vs %v", label, p, j, af[j].Tuple, bf[j].Tuple)
			}
			if !af[j].Prov.Equal(bf[j].Prov) {
				t.Fatalf("%s: %s%v provenance: %v vs %v", label, p, af[j].Tuple, af[j].Prov, bf[j].Prov)
			}
		}
	}
}

// changesEqual compares two change lists on the projection that is stable
// under batching: which tuples changed freshly (or were removed), and the
// accumulated annotation delta per tuple. Individual merge granularity —
// how many Change records a tuple's new monomials split across, and which
// split carries the Fresh flag's provenance — legitimately differs on
// adversarial recursive programs, because batched propagation measures
// derivation heights from the batch seeds rather than each group's seeds.
// The exchange-layer equivalence tests check the collated per-transaction
// results (provenance included) strictly on update-exchange workloads.
func changesEqual(t *testing.T, label string, a, b []Change) {
	t.Helper()
	project := func(cs []Change) (visible []string, growth map[string]provenance.Poly) {
		growth = map[string]provenance.Poly{}
		for _, c := range cs {
			if c.Fresh || c.Removed {
				visible = append(visible, fmt.Sprintf("%s|%s|fresh=%v|removed=%v", c.Pred, c.Key, c.Fresh, c.Removed))
			}
			k := c.Pred + "|" + c.Key
			growth[k] = growth[k].Add(c.Prov).Linearize()
		}
		sort.Strings(visible)
		return visible, growth
	}
	av, ag := project(a)
	bv, bg := project(b)
	if len(av) != len(bv) {
		t.Fatalf("%s: %d vs %d visible changes\n a=%v\n b=%v", label, len(av), len(bv), av, bv)
	}
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("%s: visible change %d differs:\n a=%s\n b=%s", label, i, av[i], bv[i])
		}
	}
	if len(ag) != len(bg) {
		t.Fatalf("%s: %d vs %d touched tuples", label, len(ag), len(bg))
	}
	for k, ap := range ag {
		if bp, ok := bg[k]; !ok || !ap.Equal(bp) {
			t.Fatalf("%s: accumulated delta for %s differs: %v vs %v", label, k, ap, bg[k])
		}
	}
}

// InsertGroups must yield, per group, exactly the changes sequential Insert
// calls would, and leave the maintained database in the same state.
func TestInsertGroupsMatchesSequentialInserts(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		prog := groupsProgram(t)
		// Unbounded witness sets: the equivalence guarantee is exact when
		// the MaxMonomials bound does not bind (see InsertGroups doc).
		opts := Options{Provenance: true}
		seq, err := NewIncremental(prog, NewDB(), opts)
		if err != nil {
			t.Fatal(err)
		}
		bat, err := NewIncremental(prog, NewDB(), opts)
		if err != nil {
			t.Fatal(err)
		}
		groups := randomGroups(rng, 2+rng.Intn(6), 1+rng.Intn(4), 4+rng.Intn(4))

		var want [][]Change
		for _, g := range groups {
			cs, err := seq.Insert(context.Background(), g)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, cs)
		}
		got, err := bat.InsertGroups(context.Background(), groups)
		if err != nil {
			t.Fatal(err)
		}
		for gi := range groups {
			changesEqual(t, fmt.Sprintf("trial %d group %d", trial, gi), want[gi], got[gi])
		}
		dbsEqual(t, fmt.Sprintf("trial %d", trial), seq.DB(), bat.DB())
	}
}

// A token-free seed annotation (provenance.One) leaves derived monomials
// with no trace of their group, so InsertGroups must fall back to
// sequential insertion rather than misattribute them to group 0.
func TestInsertGroupsTokenFreeSeedsFallBack(t *testing.T) {
	prog := groupsProgram(t)
	opts := Options{Provenance: true}
	seq, _ := NewIncremental(prog, NewDB(), opts)
	bat, _ := NewIncremental(prog, NewDB(), opts)
	e := func(a, b int64) schema.Tuple { return schema.NewTuple(schema.Int(a), schema.Int(b)) }
	groups := [][]Fact2{
		{{Pred: "E", Tuple: e(1, 2), Prov: provenance.NewVar("p:1/0")}},
		{{Pred: "E", Tuple: e(2, 3), Prov: provenance.One()}}, // token-free
	}
	var want [][]Change
	for _, g := range groups {
		cs, err := seq.Insert(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, cs)
	}
	got, err := bat.InsertGroups(context.Background(), groups)
	if err != nil {
		t.Fatal(err)
	}
	for gi := range groups {
		if len(got[gi]) != len(want[gi]) {
			t.Fatalf("group %d: %d vs %d changes\n want=%v\n got=%v", gi, len(want[gi]), len(got[gi]), want[gi], got[gi])
		}
		for i := range got[gi] {
			w, g := want[gi][i], got[gi][i]
			if w.Pred != g.Pred || !w.Tuple.Equal(g.Tuple) || w.Fresh != g.Fresh || !w.Prov.Equal(g.Prov) {
				t.Fatalf("group %d change %d: want %+v, got %+v", gi, i, w, g)
			}
		}
	}
	dbsEqual(t, "token-free", seq.DB(), bat.DB())
}

// A batch where later groups re-insert tuples earlier groups created (same
// tuple, fresh token) exercises the cross-group replay path.
func TestInsertGroupsCrossGroupTuples(t *testing.T) {
	prog := groupsProgram(t)
	opts := Options{Provenance: true, MaxMonomials: 8}
	seq, _ := NewIncremental(prog, NewDB(), opts)
	bat, _ := NewIncremental(prog, NewDB(), opts)
	e := func(a, b int64) schema.Tuple { return schema.NewTuple(schema.Int(a), schema.Int(b)) }
	groups := [][]Fact2{
		{{Pred: "E", Tuple: e(1, 2), Prov: provenance.NewVar("p:1/0")}},
		{{Pred: "E", Tuple: e(2, 3), Prov: provenance.NewVar("p:2/0")}},
		// Same edge again under a new token: annotation growth, not a fresh
		// tuple, and the T-closure gains mixed-group monomials.
		{{Pred: "E", Tuple: e(1, 2), Prov: provenance.NewVar("p:3/0")},
			{Pred: "F", Tuple: e(3, 4), Prov: provenance.NewVar("p:3/1")}},
	}
	var want [][]Change
	for _, g := range groups {
		cs, err := seq.Insert(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, cs)
	}
	got, err := bat.InsertGroups(context.Background(), groups)
	if err != nil {
		t.Fatal(err)
	}
	for gi := range groups {
		changesEqual(t, fmt.Sprintf("group %d", gi), want[gi], got[gi])
	}
	dbsEqual(t, "final", seq.DB(), bat.DB())
}
