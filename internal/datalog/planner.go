package datalog

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

// The planner compiles each rule body into a plan: an ordered list of steps
// with every variable lowered to an integer slot in a flat environment, so
// that firing a rule never touches a string-keyed binding map. Ordering is
// the statistics-free greedy strategy that wins for pattern-based datalog
// workloads: selectivity is visible in the pattern syntax (constants and
// already-bound variables), so no cardinality estimation is needed beyond
// whole-relation sizes for tie-breaking.

// termMode says where a compiled term's value comes from at runtime.
type termMode uint8

const (
	termConst termMode = iota // a constant from the rule text
	termSlot                  // a variable slot bound by an earlier step
)

// planTerm is a compiled term: a constant or a reference to a bound slot.
type planTerm struct {
	mode termMode
	slot int
	val  schema.Value
}

func (pt planTerm) value(env []schema.Value) schema.Value {
	if pt.mode == termSlot {
		return env[pt.slot]
	}
	return pt.val
}

// scanAction handles one non-probed column of a scanned atom: bind the
// candidate's value into a fresh slot, or (for a variable repeated within
// the same atom) check it against the slot bound a column earlier.
type scanAction struct {
	col   int
	slot  int
	check bool
}

// stepKind discriminates compiled plan steps.
type stepKind uint8

const (
	stepScan stepKind = iota // enumerate a positive atom's extent
	stepNeg                  // negated atom: fail if the ground tuple exists
	stepCmp                  // builtin comparison over bound terms
)

// planStep is one scheduled, compiled body literal.
type planStep struct {
	kind    stepKind
	lit     Literal // original literal, for rendering and errors
	bodyIdx int     // position in the original rule body

	// stepScan:
	pred      string
	isDelta   bool
	boundCols []int      // columns probed through the hash index
	colKey    string     // encodeCols(boundCols), precomputed
	probes    []planTerm // value sources for boundCols, aligned
	actions   []scanAction
	// pushed counts boundCols entries that exist only because an OpEq
	// filter was pushed down into the probe key (see buildPlan); such
	// columns also carry a bind action, since the probe narrows the bucket
	// but does not bind the slot.
	pushed int

	// stepNeg:
	negTerms []planTerm

	// stepCmp:
	op          CmpOp
	left, right planTerm

	// unbound marks a filter whose variables never bind — rejected by
	// Validate, but fireRule may be handed unvalidated rules.
	unbound bool
}

// headAction builds one column of the head tuple from the environment.
type headAction struct {
	skolem *Skolem // non-nil: Skolem application over args
	args   []planTerm
	term   planTerm
}

// plan is the compiled evaluation order for one rule, specialized to the
// body position substituted with the delta extent in a semi-naive round
// (deltaIdx == -1 for naive/full firings).
type plan struct {
	steps    []planStep
	deltaIdx int
	nslots   int
	head     []headAction
	headErr  error // unbound head variable (unvalidated rules only)
	// tokProv is the rule's provenance-token polynomial (zero if the rule
	// has none), built once at plan time so emitting a head fact does not
	// re-derive the canonical single-variable polynomial per emission.
	tokProv provenance.Poly
	// provNeutral mirrors Rule.ProvNeutral: firings skip all annotation
	// products and emit 1.
	provNeutral bool
}

// String renders the plan's literal order, for tests and debugging.
func (p *plan) String() string {
	parts := make([]string, len(p.steps))
	for i, s := range p.steps {
		parts[i] = s.lit.String()
	}
	return strings.Join(parts, ", ")
}

// order returns the body indexes in scheduled order.
func (p *plan) order() []int {
	out := make([]int, len(p.steps))
	for i, s := range p.steps {
		out[i] = s.bodyIdx
	}
	return out
}

// planner computes and caches plans. One planner serves one evaluation (an
// Eval call, or the lifetime of an Incremental); plans are cached per
// (rule shape, delta position), so each shape is compiled exactly once per
// evaluation rather than re-ordered at every binding during every firing.
// Relation cardinalities for tie-breaking are sampled when the shape is
// first planned.
type planner struct {
	noReorder bool
	mu        sync.Mutex
	plans     map[string]*plan
}

func newPlanner(noReorder bool) *planner {
	return &planner{noReorder: noReorder, plans: map[string]*plan{}}
}

// planFor returns the cached plan for (rule, delta position), building it on
// first use. The cache key is an injective structural encoding — the display
// rendering (Rule.String) conflates e.g. the variable x with the string
// constant "x" and Int(1) with Float(1), which would make semantically
// different rules share one compiled plan.
func (pl *planner) planFor(r Rule, deltaIdx int, db *DB) *plan {
	key := string(appendRuleKey(nil, r)) + "\x00" + strconv.Itoa(deltaIdx)
	pl.mu.Lock()
	p, ok := pl.plans[key]
	pl.mu.Unlock()
	if ok {
		return p
	}
	p = buildPlan(r, deltaIdx, db, pl.noReorder)
	pl.mu.Lock()
	pl.plans[key] = p
	pl.mu.Unlock()
	return p
}

// appendLP appends a length-prefixed string, keeping concatenations of
// arbitrary names unambiguous.
func appendLP(b []byte, s string) []byte {
	b = strconv.AppendInt(b, int64(len(s)), 10)
	b = append(b, ':')
	return append(b, s...)
}

// appendTermKey appends an injective encoding of a term: variables and
// constants are tagged, and constant values use schema.Value.Key (which
// distinguishes kinds).
func appendTermKey(b []byte, t Term) []byte {
	if t.IsVar() {
		b = append(b, 'v')
		return appendLP(b, t.Name)
	}
	b = append(b, 'c')
	return appendLP(b, t.Value.Key())
}

// appendRuleKey appends an injective structural encoding of the rule (ID
// included, since plans bake the ID into their defensive error messages).
func appendRuleKey(b []byte, r Rule) []byte {
	if r.ProvNeutral {
		b = append(b, '0')
	} else {
		b = append(b, '1')
	}
	b = appendLP(b, r.ID)
	b = appendLP(b, r.Head.Pred)
	for _, ht := range r.Head.Terms {
		if ht.Skolem != nil {
			b = append(b, 'k')
			b = appendLP(b, ht.Skolem.Fn)
			for _, a := range ht.Skolem.Args {
				b = appendTermKey(b, a)
			}
			b = append(b, ';')
			continue
		}
		b = appendTermKey(b, ht.Term)
	}
	for _, l := range r.Body {
		switch {
		case l.Builtin != nil:
			b = append(b, 'b', byte('0'+l.Builtin.Op))
			b = appendTermKey(b, l.Builtin.Left)
			b = appendTermKey(b, l.Builtin.Right)
		case l.Negated:
			b = append(b, 'n')
			b = appendLP(b, l.Atom.Pred)
			for _, t := range l.Atom.Terms {
				b = appendTermKey(b, t)
			}
		default:
			b = append(b, 'p')
			b = appendLP(b, l.Atom.Pred)
			for _, t := range l.Atom.Terms {
				b = appendTermKey(b, t)
			}
		}
	}
	return b
}

// rulePlans holds one rule's resolved plans: the full (naive) plan and one
// delta-specialized plan per positive body position.
type rulePlans struct {
	full  *plan
	delta []*plan // indexed by body position; nil for filter literals
}

// plansFor resolves plans for a whole rule set up front, so per-round job
// construction indexes a table instead of re-encoding each rule's (
// structural) cache key once per rule per round.
func (pl *planner) plansFor(rules []Rule, db *DB) []rulePlans {
	out := make([]rulePlans, len(rules))
	for i, r := range rules {
		out[i].full = pl.planFor(r, -1, db)
		out[i].delta = make([]*plan, len(r.Body))
		for j, l := range r.Body {
			if l.Builtin == nil && !l.Negated {
				out[i].delta[j] = pl.planFor(r, j, db)
			}
		}
	}
	return out
}

// buildPlan orders one rule body greedily and compiles it to slots:
//
//   - Fully-constant atoms (every term a constant) are O(1) existence
//     gates: under greedy ordering they schedule first of all, even before
//     the delta literal, so a failing gate costs one probe per round
//     instead of one probe per delta fact.
//   - The delta literal (when present) scans next — it is both mandatory
//     and usually tiny.
//   - Among the remaining positive atoms, prefer fully-bound atoms (they
//     are O(1) existence probes), then the atom sharing the most bound
//     terms — constants plus variables bound by earlier steps — with the
//     current binding set, breaking ties by current relation cardinality
//     and finally by body position.
//   - Negations and comparisons float to the earliest step at which their
//     variables are all bound; they never scan, only filter, so running
//     them early prunes the enumeration without changing its result.
//
// Equality filters additionally push down into probe keys: when a scan
// introduces a variable x and the body carries x = c (or x = y with y
// already bound by an earlier step), x's column joins the probe columns so
// non-matching facts never leave the index bucket. The filter step itself
// still runs — pushdown only narrows candidate sets, it never changes
// results — and the pushed column still binds its slot via a scan action.
//
// With noReorder, positive atoms keep their written order (filters still
// float — an unbound filter cannot run at all; pushdown still applies).
// Early termination on empty intermediates needs no planning: enumeration
// stops the moment any step has no candidates.
func buildPlan(r Rule, deltaIdx int, db *DB, noReorder bool) *plan {
	p := &plan{deltaIdx: deltaIdx, steps: make([]planStep, 0, len(r.Body)), provNeutral: r.ProvNeutral}
	if r.ProvToken != "" && !r.ProvNeutral {
		p.tokProv = provenance.NewVar(provenance.Var(r.ProvToken))
	}
	var positives, filters []int
	for i, l := range r.Body {
		if l.Builtin == nil && !l.Negated {
			positives = append(positives, i)
		} else {
			filters = append(filters, i)
		}
	}
	// Equality-filter sources for pushdown: var = const and var = var.
	eqConst := map[string]schema.Value{}
	eqVars := map[string][]string{}
	for _, fi := range filters {
		bt := r.Body[fi].Builtin
		if bt == nil || bt.Op != OpEq {
			continue
		}
		l, rt := bt.Left, bt.Right
		switch {
		case l.IsVar() && !rt.IsVar():
			if _, ok := eqConst[l.Name]; !ok {
				eqConst[l.Name] = rt.Value
			}
		case !l.IsVar() && rt.IsVar():
			if _, ok := eqConst[rt.Name]; !ok {
				eqConst[rt.Name] = l.Value
			}
		case l.IsVar() && rt.IsVar() && l.Name != rt.Name:
			eqVars[l.Name] = append(eqVars[l.Name], rt.Name)
			eqVars[rt.Name] = append(eqVars[rt.Name], l.Name)
		}
	}
	slots := map[string]int{} // bound variable -> slot
	newSlot := func(name string) int {
		s := p.nslots
		p.nslots++
		slots[name] = s
		return s
	}
	compileTerm := func(t Term) (planTerm, bool) {
		if !t.IsVar() {
			return planTerm{mode: termConst, val: t.Value}, true
		}
		if s, ok := slots[t.Name]; ok {
			return planTerm{mode: termSlot, slot: s}, true
		}
		return planTerm{}, false
	}
	placed := make([]bool, len(r.Body))
	filterReady := func(l Literal) bool {
		if l.Builtin != nil {
			_, okL := compileTerm(l.Builtin.Left)
			_, okR := compileTerm(l.Builtin.Right)
			return okL && okR
		}
		for _, t := range l.Atom.Terms {
			if _, ok := compileTerm(t); !ok {
				return false
			}
		}
		return true
	}
	compileFilter := func(fi int) planStep {
		l := r.Body[fi]
		st := planStep{lit: l, bodyIdx: fi}
		if l.Builtin != nil {
			st.kind = stepCmp
			st.op = l.Builtin.Op
			var okL, okR bool
			st.left, okL = compileTerm(l.Builtin.Left)
			st.right, okR = compileTerm(l.Builtin.Right)
			st.unbound = !okL || !okR
			return st
		}
		st.kind = stepNeg
		st.pred = l.Atom.Pred
		st.negTerms = make([]planTerm, len(l.Atom.Terms))
		for i, t := range l.Atom.Terms {
			var ok bool
			st.negTerms[i], ok = compileTerm(t)
			if !ok {
				st.unbound = true
			}
		}
		return st
	}
	sweepFilters := func() {
		for _, fi := range filters {
			if !placed[fi] && filterReady(r.Body[fi]) {
				placed[fi] = true
				p.steps = append(p.steps, compileFilter(fi))
			}
		}
	}
	// pushTerm resolves the probe source an equality filter supplies for a
	// variable the current atom is about to introduce: a constant from
	// x = c, or the slot of an x = y neighbor bound by an EARLIER step.
	// Neighbors introduced by the same atom (newInAtom) are rejected — probe
	// keys are encoded before the atom's bind actions run, so their slots
	// hold stale values at probe time.
	pushTerm := func(name string, newInAtom map[string]bool) (planTerm, bool) {
		if cv, ok := eqConst[name]; ok {
			return planTerm{mode: termConst, val: cv}, true
		}
		for _, nb := range eqVars[name] {
			if s, ok := slots[nb]; ok && !newInAtom[nb] {
				return planTerm{mode: termSlot, slot: s}, true
			}
		}
		return planTerm{}, false
	}
	compileScan := func(bi int, isDelta bool) planStep {
		a := r.Body[bi].Atom
		st := planStep{kind: stepScan, lit: r.Body[bi], bodyIdx: bi, pred: a.Pred, isDelta: isDelta}
		newInAtom := map[string]bool{}
		for col, t := range a.Terms {
			switch {
			case !t.IsVar():
				st.boundCols = append(st.boundCols, col)
				st.probes = append(st.probes, planTerm{mode: termConst, val: t.Value})
			case newInAtom[t.Name]:
				// Repeated within this atom: the first occurrence binds the
				// slot during the same candidate, so this one only checks.
				st.actions = append(st.actions, scanAction{col: col, slot: slots[t.Name], check: true})
			default:
				if s, ok := slots[t.Name]; ok {
					st.boundCols = append(st.boundCols, col)
					st.probes = append(st.probes, planTerm{mode: termSlot, slot: s})
				} else {
					if pt, ok := pushTerm(t.Name, newInAtom); ok {
						// Filter pushdown: probe the column with the filter's
						// value so the bucket never surfaces non-matches. The
						// slot still binds from the candidate below.
						st.boundCols = append(st.boundCols, col)
						st.probes = append(st.probes, pt)
						st.pushed++
					}
					newInAtom[t.Name] = true
					st.actions = append(st.actions, scanAction{col: col, slot: newSlot(t.Name)})
				}
			}
		}
		st.colKey = encodeCols(st.boundCols)
		return st
	}
	take := func(bi int, isDelta bool) {
		placed[bi] = true
		p.steps = append(p.steps, compileScan(bi, isDelta))
		sweepFilters()
	}
	sweepFilters() // constant-only filters run before any scan
	remaining := append([]int(nil), positives...)
	removeIdx := func(s []int, v int) []int {
		for i, x := range s {
			if x == v {
				return append(s[:i], s[i+1:]...)
			}
		}
		return s
	}
	if !noReorder {
		// Fully-constant atoms are existence gates: one probe decides the
		// whole round, so they schedule even before the delta literal
		// (ascending body position keeps them deterministic).
		for _, bi := range append([]int(nil), remaining...) {
			if bi == deltaIdx {
				continue
			}
			constOnly := true
			for _, t := range r.Body[bi].Atom.Terms {
				if t.IsVar() {
					constOnly = false
					break
				}
			}
			if constOnly {
				take(bi, false)
				remaining = removeIdx(remaining, bi)
			}
		}
	}
	if deltaIdx >= 0 {
		take(deltaIdx, true)
		remaining = removeIdx(remaining, deltaIdx)
	}
	if noReorder {
		for _, bi := range remaining {
			take(bi, false)
		}
	} else {
		for len(remaining) > 0 {
			best, bestFull, bestBound, bestCard := -1, false, -1, -1
			for _, bi := range remaining {
				a := r.Body[bi].Atom
				nb := 0
				for _, t := range a.Terms {
					if !t.IsVar() {
						nb++
					} else if _, ok := slots[t.Name]; ok {
						nb++
					} else if _, ok := pushTerm(t.Name, nil); ok {
						// A pushed-down equality makes this column a probe
						// column even though the variable is new.
						nb++
					}
				}
				full := nb == len(a.Terms)
				card := db.Rel(a.Pred).Len()
				better := false
				switch {
				case best == -1:
					better = true
				case full != bestFull:
					better = full
				case nb != bestBound:
					better = nb > bestBound
				case card != bestCard:
					better = card < bestCard
				}
				if better {
					best, bestFull, bestBound, bestCard = bi, full, nb, card
				}
			}
			take(best, false)
			remaining = removeIdx(remaining, best)
		}
	}
	// Defensive: filters whose variables never bind (rejected by Validate,
	// but fireRule may be handed unvalidated rules) run last and fail there.
	for _, fi := range filters {
		if !placed[fi] {
			p.steps = append(p.steps, compileFilter(fi))
		}
	}
	// Compile the head.
	p.head = make([]headAction, len(r.Head.Terms))
	for i, ht := range r.Head.Terms {
		if ht.Skolem != nil {
			ha := headAction{skolem: ht.Skolem, args: make([]planTerm, len(ht.Skolem.Args))}
			for j, at := range ht.Skolem.Args {
				var ok bool
				ha.args[j], ok = compileTerm(at)
				if !ok && p.headErr == nil {
					p.headErr = fmt.Errorf("datalog: rule %q: unbound skolem argument %s", r.ID, at)
				}
			}
			p.head[i] = ha
			continue
		}
		pt, ok := compileTerm(ht.Term)
		if !ok && p.headErr == nil {
			p.headErr = fmt.Errorf("datalog: rule %q: unbound head variable %s", r.ID, ht.Term)
		}
		p.head[i] = headAction{term: pt}
	}
	return p
}
