package datalog

import (
	"encoding/binary"
	"fmt"
	"sort"

	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

// Binary snapshot codec for a DB: the durable form of the translation
// engine's union database (DESIGN.md §13). The format is a pure function
// of the database's logical content — the set of (predicate, tuple,
// polynomial) facts — so two databases that are Equal encode to identical
// bytes regardless of insertion order, intern-cache state, or slab layout.
// Provenance polynomials are encoded once each against a node table and
// referenced by index, so the hash-consed sharing the in-memory
// representation relies on survives the round trip: every fact that shared
// an annotation before EncodeDB shares one interned node after DecodeDB.
//
// Layout (all integers unsigned varints, all strings varint-length-prefixed):
//
//	magic "ODB1"
//	varCount, then each provenance.Var (sorted ascending)
//	polyCount, then each polynomial: monoCount ·
//	    { coef, varPowCount, { varIndex, pow }* }*
//	predCount, then each predicate (sorted ascending): name, factCount,
//	    { tupleKey, polyIndex }*
//
// Tuples travel as schema.Tuple.Key() strings (injective, parsed back with
// schema.ParseTupleKey); polynomials rebuild through provenance.FromMonomials
// and re-intern on decode. A polynomial table entry with zero monomials is
// the zero polynomial.

// codecMagic identifies (and versions) the snapshot format. Bump the digit
// on any layout change: DecodeDB refuses unknown magics instead of
// misparsing, which is what lets recovery fall back to full replay when it
// meets a snapshot written by a different build.
const codecMagic = "ODB1"

// DBStats summarizes an encoded DB snapshot without materializing it.
type DBStats struct {
	Preds     int // predicates with at least one encoded extent
	Facts     int // total facts across all predicates
	PolyNodes int // distinct provenance polynomials in the node table
	Vars      int // distinct provenance variables
	Bytes     int // encoded size
}

// EncodeDB serializes the database. Lazy extents are materialized first so
// the snapshot is truthful. The encoding is deterministic (see the package
// comment above): preds and vars are sorted, facts ride in Rel.Facts()
// tuple order, and polynomial table indices are assigned in first-encounter
// order over that fixed walk.
func EncodeDB(db *DB) ([]byte, error) {
	preds := db.Preds()
	type extent struct {
		name  string
		facts []Fact
	}
	extents := make([]extent, 0, len(preds))
	for _, p := range preds {
		extents = append(extents, extent{name: p, facts: db.Rel(p).Facts()})
	}

	// Pass 1: collect the variable universe and deduplicate polynomials by
	// content (hash-bucketed, Equal-confirmed), so structurally equal
	// annotations share one table entry even when the bounded intern cache
	// let them diverge into distinct nodes in memory.
	varSet := map[provenance.Var]struct{}{}
	type bucket struct {
		poly provenance.Poly
		idx  int
	}
	table := []provenance.Poly{}
	buckets := map[uint64][]bucket{}
	polyIndex := func(p provenance.Poly) int {
		h := p.Hash()
		for _, b := range buckets[h] {
			if b.poly.Equal(p) {
				return b.idx
			}
		}
		idx := len(table)
		table = append(table, p)
		buckets[h] = append(buckets[h], bucket{poly: p, idx: idx})
		return idx
	}
	factPolys := make([][]int, len(extents))
	for i, ext := range extents {
		factPolys[i] = make([]int, len(ext.facts))
		for j, f := range ext.facts {
			factPolys[i][j] = polyIndex(f.Prov)
			for _, m := range f.Prov.Monomials() {
				for _, vp := range m.Vars {
					varSet[vp.Var] = struct{}{}
				}
			}
		}
	}
	vars := make([]provenance.Var, 0, len(varSet))
	for v := range varSet {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	varIdx := make(map[provenance.Var]int, len(vars))
	for i, v := range vars {
		varIdx[v] = i
	}

	// Pass 2: emit.
	buf := append([]byte(nil), codecMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(vars)))
	for _, v := range vars {
		buf = appendString(buf, string(v))
	}
	buf = binary.AppendUvarint(buf, uint64(len(table)))
	for _, p := range table {
		monos := p.Monomials()
		buf = binary.AppendUvarint(buf, uint64(len(monos)))
		for _, m := range monos {
			buf = binary.AppendUvarint(buf, m.Coef)
			buf = binary.AppendUvarint(buf, uint64(len(m.Vars)))
			for _, vp := range m.Vars {
				buf = binary.AppendUvarint(buf, uint64(varIdx[vp.Var]))
				buf = binary.AppendUvarint(buf, uint64(vp.Pow))
			}
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(extents)))
	for i, ext := range extents {
		buf = appendString(buf, ext.name)
		buf = binary.AppendUvarint(buf, uint64(len(ext.facts)))
		for j, f := range ext.facts {
			buf = appendString(buf, f.Tuple.Key())
			buf = binary.AppendUvarint(buf, uint64(factPolys[i][j]))
		}
	}
	return buf, nil
}

// DecodeDB materializes a database from an EncodeDB snapshot. Each
// polynomial table entry is rebuilt and interned exactly once, then shared
// by every fact that references it.
func DecodeDB(blob []byte) (*DB, error) {
	db := NewDB()
	_, err := walkSnapshot(blob, func(pred string, key string, p provenance.Poly) error {
		t, err := schema.ParseTupleKey(key)
		if err != nil {
			return fmt.Errorf("datalog: snapshot tuple in %s: %w", pred, err)
		}
		db.setKeyed(pred, key, t, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return db, nil
}

// StatDB parses an encoded snapshot's structure without building a DB —
// the cheap path behind `orchestra inspect`.
func StatDB(blob []byte) (DBStats, error) {
	return walkSnapshot(blob, nil)
}

// walkSnapshot decodes the snapshot, invoking visit (when non-nil) for
// every fact, and returns the structural stats either way.
func walkSnapshot(blob []byte, visit func(pred, tupleKey string, p provenance.Poly) error) (DBStats, error) {
	var stats DBStats
	stats.Bytes = len(blob)
	if len(blob) < len(codecMagic) || string(blob[:len(codecMagic)]) != codecMagic {
		return stats, fmt.Errorf("datalog: not a DB snapshot (bad magic)")
	}
	r := &reader{buf: blob[len(codecMagic):]}

	nVars := r.uvarint()
	vars := make([]provenance.Var, 0, nVars)
	for i := uint64(0); i < nVars; i++ {
		vars = append(vars, provenance.Var(r.string()))
	}
	stats.Vars = len(vars)

	nPolys := r.uvarint()
	table := make([]provenance.Poly, 0, nPolys)
	// Monomials and their variable-power lists are tiny, numerous, and all
	// long-lived together once the poly table retains them, so carve them
	// from chunked arenas instead of paying one heap allocation (and one
	// GC mark) per monomial. FromCanonicalMonomials takes ownership, which
	// is what makes handing out arena-backed slices sound.
	var monoArena []provenance.Monomial
	var vpArena []provenance.VarPow
	for i := uint64(0); i < nPolys; i++ {
		nMonos := r.uvarint()
		if int(nMonos) > cap(monoArena)-len(monoArena) {
			size := 4096
			if int(nMonos) > size {
				size = int(nMonos)
			}
			monoArena = make([]provenance.Monomial, 0, size)
		}
		monos := monoArena[len(monoArena) : len(monoArena) : len(monoArena)+int(nMonos)]
		monoArena = monoArena[:len(monoArena)+int(nMonos)]
		for j := uint64(0); j < nMonos; j++ {
			m := provenance.Monomial{Coef: r.uvarint()}
			nvp := r.uvarint()
			if int(nvp) > cap(vpArena)-len(vpArena) {
				size := 8192
				if int(nvp) > size {
					size = int(nvp)
				}
				vpArena = make([]provenance.VarPow, 0, size)
			}
			m.Vars = vpArena[len(vpArena) : len(vpArena) : len(vpArena)+int(nvp)]
			vpArena = vpArena[:len(vpArena)+int(nvp)]
			for k := uint64(0); k < nvp; k++ {
				vi := r.uvarint()
				pow := r.uvarint()
				if r.err == nil && vi >= uint64(len(vars)) {
					r.err = fmt.Errorf("datalog: snapshot var index %d out of range", vi)
				}
				if r.err != nil {
					return stats, r.err
				}
				m.Vars = append(m.Vars, provenance.VarPow{Var: vars[vi], Pow: int(pow)})
			}
			monos = append(monos, m)
		}
		if r.err != nil {
			return stats, r.err
		}
		table = append(table, provenance.FromCanonicalMonomials(monos).Intern())
	}
	stats.PolyNodes = len(table)

	nPreds := r.uvarint()
	for i := uint64(0); i < nPreds; i++ {
		pred := r.string()
		nFacts := r.uvarint()
		for j := uint64(0); j < nFacts; j++ {
			key := r.string()
			pi := r.uvarint()
			if r.err == nil && pi >= uint64(len(table)) {
				r.err = fmt.Errorf("datalog: snapshot poly index %d out of range", pi)
			}
			if r.err != nil {
				return stats, r.err
			}
			if visit != nil {
				if err := visit(pred, key, table[pi]); err != nil {
					return stats, err
				}
			}
			stats.Facts++
		}
		stats.Preds++
	}
	if r.err != nil {
		return stats, r.err
	}
	if len(r.buf) != 0 {
		return stats, fmt.Errorf("datalog: %d trailing bytes after DB snapshot", len(r.buf))
	}
	return stats, nil
}

// appendString appends a varint-length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// reader is a cursor over the snapshot body with sticky error handling.
type reader struct {
	buf []byte
	err error
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.err = fmt.Errorf("datalog: truncated DB snapshot (bad varint)")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)) {
		r.err = fmt.Errorf("datalog: truncated DB snapshot (string overruns buffer)")
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}
