package datalog

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"orchestra/internal/provenance"
)

// TestEffectiveParallelism pins the Options.Parallelism override path:
// 0 (unset) auto-detects the CPU count, explicit positive values are taken
// as-is, and negative values force sequential evaluation.
func TestEffectiveParallelism(t *testing.T) {
	if got, want := EffectiveParallelism(0), runtime.NumCPU(); got != want {
		t.Errorf("EffectiveParallelism(0) = %d, want runtime.NumCPU() = %d", got, want)
	}
	if got := EffectiveParallelism(1); got != 1 {
		t.Errorf("EffectiveParallelism(1) = %d, want 1", got)
	}
	if got := EffectiveParallelism(7); got != 7 {
		t.Errorf("EffectiveParallelism(7) = %d, want 7", got)
	}
	for _, n := range []int{-1, -8} {
		if got := EffectiveParallelism(n); got != 1 {
			t.Errorf("EffectiveParallelism(%d) = %d, want 1 (forced sequential)", n, got)
		}
	}
	// A request beyond the machine is honored as-is: explicit settings are
	// the caller's to waste (the benchmark sweep depends on this).
	if over := runtime.NumCPU() * 4; EffectiveParallelism(over) != over {
		t.Errorf("EffectiveParallelism(%d) = %d, want %d (explicit overcommit honored)",
			over, EffectiveParallelism(over), over)
	}
}

// TestAdaptiveWorkers pins the cost gate: explicit settings bypass it
// entirely, while the automatic setting sizes workers from estimated probe
// work and falls back to sequential on tiny rounds.
func TestAdaptiveWorkers(t *testing.T) {
	ncpu := runtime.NumCPU()
	huge := 1 << 30
	// Explicit settings are honored regardless of round size.
	if got := AdaptiveWorkers(4, 1); got != 4 {
		t.Errorf("AdaptiveWorkers(4, tiny) = %d, want 4 (explicit)", got)
	}
	if over := ncpu * 4; AdaptiveWorkers(over, 1) != over {
		t.Errorf("AdaptiveWorkers(%d, tiny) = %d, want %d (explicit > NumCPU)",
			over, AdaptiveWorkers(over, 1), over)
	}
	for _, n := range []int{-1, -8, 1} {
		if got := AdaptiveWorkers(n, huge); got != 1 {
			t.Errorf("AdaptiveWorkers(%d, huge) = %d, want 1 (forced sequential)", n, got)
		}
	}
	// Automatic: tiny rounds run sequentially (whatever the core count)...
	for _, est := range []int{0, 1, parallelGrain, 2*parallelGrain - 1} {
		if got := AdaptiveWorkers(0, est); got != 1 {
			t.Errorf("AdaptiveWorkers(0, %d) = %d, want 1 (below the gate)", est, got)
		}
	}
	// ...mid-size rounds get one worker per grain...
	if ncpu >= 2 {
		if got := AdaptiveWorkers(0, 2*parallelGrain); got != 2 {
			t.Errorf("AdaptiveWorkers(0, 2 grains) = %d, want 2", got)
		}
	}
	// ...and huge rounds cap at the CPU count.
	if got := AdaptiveWorkers(0, huge); got != ncpu {
		t.Errorf("AdaptiveWorkers(0, huge) = %d, want NumCPU = %d", got, ncpu)
	}
}

// TestAdaptiveTinyDeltaMatchesSequential checks the Parallelism=0 path on a
// round far below the cost gate produces exactly the sequential result —
// the "never degrades below the sequential path" contract, verified on
// results (timing is CI-hostile; the benchmark sweep covers speed).
func TestAdaptiveTinyDeltaMatchesSequential(t *testing.T) {
	build := func() (*Incremental, error) {
		edb := NewDB()
		for i := 0; i < 6; i++ {
			edb.AddTuple("E", edge(fmt.Sprint("n", i), fmt.Sprint("n", i+1)))
		}
		return NewIncremental(tcProgram(), edb, Options{Provenance: true})
	}
	seq, err := build()
	if err != nil {
		t.Fatal(err)
	}
	adapt, err := build()
	if err != nil {
		t.Fatal(err)
	}
	// Zero value is already Parallelism: 0; make the contrast explicit.
	seq.opts.Parallelism = -1
	adapt.opts.Parallelism = 0
	batch := []Fact2{{Pred: "E", Tuple: edge("n6", "n0"), Prov: provenance.NewVar("loop")}}
	seqCh, err := seq.Insert(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	adaptCh, err := adapt.Insert(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqCh) != len(adaptCh) {
		t.Fatalf("changes: adaptive %d vs sequential %d", len(adaptCh), len(seqCh))
	}
	requireDBsEqual(t, "tiny-delta-adaptive", seq.DB(), adapt.DB())
}

// TestPoolReuseAcrossConsecutiveInserts drives several incremental
// fixpoints through one Incremental at forced parallelism, so the arena —
// and within each fixpoint, the worker pool — is reused round after round.
// This is the -race CI job's probe for executor state leaking between
// rounds or fixpoints.
func TestPoolReuseAcrossConsecutiveInserts(t *testing.T) {
	edb := NewDB()
	for i := 0; i < 4; i++ {
		edb.AddTuple("E", edge(fmt.Sprint("n", i), fmt.Sprint("n", i+1)))
	}
	par, err := NewIncremental(tcProgram(), edb, Options{Provenance: true, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewIncremental(tcProgram(), edb, Options{Provenance: true, Parallelism: -1})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		batch := []Fact2{
			{Pred: "E", Tuple: edge(fmt.Sprint("x", round), fmt.Sprint("n", round)),
				Prov: provenance.NewVar(provenance.Var(fmt.Sprint("x", round)))},
			{Pred: "E", Tuple: edge(fmt.Sprint("n", round+4), fmt.Sprint("x", round)),
				Prov: provenance.NewVar(provenance.Var(fmt.Sprint("y", round)))},
		}
		if _, err := par.Insert(context.Background(), batch); err != nil {
			t.Fatalf("round %d parallel: %v", round, err)
		}
		if _, err := seq.Insert(context.Background(), batch); err != nil {
			t.Fatalf("round %d sequential: %v", round, err)
		}
		requireDBsEqual(t, fmt.Sprintf("round-%d", round), seq.DB(), par.DB())
	}
}

// TestChunkedDeltaMatchesUnchunked inserts a batch large enough that
// partitionJobs splits the delta into concurrent chunks (few rules, many
// delta facts), and checks the chunked parallel run agrees with the
// sequential one on facts and provenance.
func TestChunkedDeltaMatchesUnchunked(t *testing.T) {
	prog := &Program{Rules: []Rule{
		{ID: "copy", Head: NewHead("Out", HV("a"), HV("b")), Body: []Literal{Pos(NewAtom("In", V("a"), V("b")))}},
	}}
	build := func(par int) (*Incremental, error) {
		return NewIncremental(prog, NewDB(), Options{Provenance: true, Parallelism: par})
	}
	seq, err := build(-1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := build(4)
	if err != nil {
		t.Fatal(err)
	}
	var batch []Fact2
	for i := 0; i < 4*chunkMin; i++ { // one rule, 4 chunks' worth of delta
		batch = append(batch, Fact2{Pred: "In", Tuple: edge(fmt.Sprint("a", i), fmt.Sprint("b", i)),
			Prov: provenance.NewVar(provenance.Var(fmt.Sprint("t", i)))})
	}
	seqCh, err := seq.Insert(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	parCh, err := par.Insert(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqCh) != len(parCh) {
		t.Fatalf("changes: chunked %d vs sequential %d", len(parCh), len(seqCh))
	}
	requireDBsEqual(t, "chunked-delta", seq.DB(), par.DB())
}
