package datalog

import (
	"runtime"
	"testing"
)

// TestEffectiveParallelism pins the Options.Parallelism override path:
// 0 (unset) auto-detects the CPU count, explicit positive values are taken
// as-is, and negative values force sequential evaluation.
func TestEffectiveParallelism(t *testing.T) {
	if got, want := EffectiveParallelism(0), runtime.NumCPU(); got != want {
		t.Errorf("EffectiveParallelism(0) = %d, want runtime.NumCPU() = %d", got, want)
	}
	if got := EffectiveParallelism(1); got != 1 {
		t.Errorf("EffectiveParallelism(1) = %d, want 1", got)
	}
	if got := EffectiveParallelism(7); got != 7 {
		t.Errorf("EffectiveParallelism(7) = %d, want 7", got)
	}
	for _, n := range []int{-1, -8} {
		if got := EffectiveParallelism(n); got != 1 {
			t.Errorf("EffectiveParallelism(%d) = %d, want 1 (forced sequential)", n, got)
		}
	}
}
