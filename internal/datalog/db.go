package datalog

import (
	"sort"
	"sync"
	"sync/atomic"

	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

// Fact is a tuple with its provenance annotation.
type Fact struct {
	Tuple schema.Tuple
	Prov  provenance.Poly
}

// Rel is the annotated extent of one predicate — the per-predicate shard of
// a DB. Facts are stored once, by pointer, and shared with the hash-index
// layer (index.go), so a provenance update is a single in-place write. The
// *Fact structs themselves are allocated from contiguous slabs (see
// newFact): one bulk allocation per relSlabSize facts instead of one heap
// object per fact, which densifies the long-lived union database and cuts
// the GC's pointer-chasing scan load on large accumulated extents.
//
// A Rel captured by DB.Snapshot is marked shared: every DB holding it must
// copy-on-write (DB.MutableRel) before its next mutation, because both the
// facts map and the *Fact structs it points to are reachable from the frozen
// view. Read paths (Get, Contains, lookup, Facts) never need the copy; lazy
// index builds are semantically read-only and stay safe on a shared Rel.
type Rel struct {
	facts map[string]*Fact
	// slab is the current allocation slab. Slabs are fixed-capacity and
	// never reallocated, so &slab[i] stays valid for the extent's lifetime —
	// the address stability the facts map and index buckets rely on.
	slab []Fact
	// free lists zeroed slots of removed facts for reuse, so delete-heavy
	// churn recycles slab capacity instead of pinning mostly dead slabs
	// behind a few live stragglers.
	free []*Fact
	idx  relIndex // see index.go
	// shared marks the extent as reachable from a snapshot. Once set it is
	// never cleared: each holder clones on its first subsequent mutation.
	// Atomic so that concurrent evaluations over one shared EDB — each
	// snapshotting it at entry — stay race-free.
	shared atomic.Bool
}

// NewRel creates an empty extent.
func NewRel() *Rel {
	return &Rel{facts: map[string]*Fact{}}
}

// relSlabSize is the number of facts allocated per contiguous slab.
const relSlabSize = 256

// newFact allocates storage for one fact, reusing a freed slot when one
// exists and otherwise appending to the shard's current slab (starting a
// fresh slab when full). Callers must store the returned pointer in the
// facts map before the next newFact call.
func (r *Rel) newFact(t schema.Tuple, p provenance.Poly) *Fact {
	if n := len(r.free); n > 0 {
		f := r.free[n-1]
		r.free = r.free[:n-1]
		*f = Fact{Tuple: t, Prov: p}
		return f
	}
	if len(r.slab) == cap(r.slab) {
		r.slab = make([]Fact, 0, relSlabSize)
	}
	r.slab = append(r.slab, Fact{Tuple: t, Prov: p})
	return &r.slab[len(r.slab)-1]
}

// reserve sizes the next slab for an expected burst of n inserts, so a
// large merge lands in one bulk allocation instead of n/relSlabSize slab
// starts. It only acts when the current slab is exhausted and no freed
// slots are pending — partially filled slabs keep filling as usual — and
// caps the pre-allocation so a wildly overestimated n cannot pin memory.
func (r *Rel) reserve(n int) {
	if n <= relSlabSize || len(r.slab) < cap(r.slab) || len(r.free) > 0 {
		return
	}
	if n > 1<<16 {
		n = 1 << 16
	}
	r.slab = make([]Fact, 0, n)
}

// Len returns the number of facts.
func (r *Rel) Len() int { return len(r.facts) }

// Get returns the fact for the tuple, if present.
func (r *Rel) Get(t schema.Tuple) (Fact, bool) {
	if f := r.facts[t.Key()]; f != nil {
		return *f, true
	}
	return Fact{}, false
}

// Contains reports tuple membership.
func (r *Rel) Contains(t schema.Tuple) bool {
	_, ok := r.facts[t.Key()]
	return ok
}

// containsKey reports membership by pre-encoded tuple key.
func (r *Rel) containsKey(key []byte) bool {
	_, ok := r.facts[string(key)]
	return ok
}

// put inserts or merges a fact; it reports whether the extent changed.
func (r *Rel) put(t schema.Tuple, p provenance.Poly) bool {
	return r.putKeyed(t.Key(), t, p)
}

// putKeyed is put with the tuple key already computed. Genuine insertions
// are folded incrementally into every maintained index.
func (r *Rel) putKeyed(k string, t schema.Tuple, p provenance.Poly) bool {
	if f := r.facts[k]; f != nil {
		if f.Prov.Subsumes(p) {
			return false
		}
		// Stored annotations are interned (hash-consed): equal polynomials
		// across the database share one allocation and compare by pointer.
		f.Prov = f.Prov.Add(p).Intern()
		return true
	}
	f := r.newFact(t, p.Intern())
	r.facts[k] = f
	r.indexInsert(f)
	return true
}

// remove deletes the fact stored under key k, keeping indexes in sync. The
// dead slab slot is zeroed so it stops pinning the tuple and annotation,
// and queued for reuse by the next insertion; callers that still need the
// fact's contents must copy them out first.
func (r *Rel) remove(k string) {
	f, ok := r.facts[k]
	if !ok {
		return
	}
	delete(r.facts, k)
	r.indexRemove(f)
	*f = Fact{}
	r.free = append(r.free, f)
}

// Facts returns all facts in deterministic (tuple) order.
func (r *Rel) Facts() []Fact {
	out := make([]Fact, 0, len(r.facts))
	for _, f := range r.facts {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tuple.Compare(out[j].Tuple) < 0 })
	return out
}

// lazyExtents is a shared registry of extents that materialize on first
// access: each declared predicate carries a fill function that streams its
// facts in (from a storage snapshot, an LSM checkpoint scan, ...) the first
// time any attached DB touches the predicate. The registry is shared by a DB
// and all its Snapshots, so one materialization serves every view; it is the
// only concurrency-safe piece of a DB, because snapshots taken from one
// mirror are evaluated on separate goroutines.
type lazyExtents struct {
	mu   sync.Mutex
	fill map[string]func(add func(schema.Tuple, provenance.Poly))
	done map[string]*Rel
}

// get materializes (or returns the cached) extent for pred. The extent
// comes back marked shared: many DBs may attach it, so each must
// copy-on-write before mutating, exactly as with snapshot-shared extents.
func (l *lazyExtents) get(pred string) (*Rel, bool) {
	if l == nil {
		return nil, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if r, ok := l.done[pred]; ok {
		return r, true
	}
	fill, ok := l.fill[pred]
	if !ok {
		return nil, false
	}
	r := NewRel()
	fill(func(t schema.Tuple, p provenance.Poly) { r.put(t, p) })
	r.shared.Store(true)
	l.done[pred] = r
	return r, true
}

func (l *lazyExtents) has(pred string) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.fill[pred]
	return ok
}

func (l *lazyExtents) preds() []string {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.fill))
	for p := range l.fill {
		out = append(out, p)
	}
	return out
}

// DB maps predicate names to extents.
type DB struct {
	rels map[string]*Rel
	// lazy holds declared-but-unmaterialized extents; nil for fully eager
	// databases. Shared (by pointer) with snapshots.
	lazy *lazyExtents
}

// NewDB creates an empty database.
func NewDB() *DB { return &DB{rels: map[string]*Rel{}} }

// SetLazy declares that pred's extent exists but materializes on first
// access: fill streams the facts in when (if) the predicate is first
// touched. Queries then pay only for the relations their plan reaches —
// the point of the hook is feeding pull-based pipelines from sources
// (instance snapshots, durable checkpoint scans) without loading every
// relation up front. fill must be deterministic and safe to call from any
// goroutine; it runs at most once per registry, under the registry lock.
// An eager extent later created or mutated under the same name shadows the
// lazy declaration.
func (db *DB) SetLazy(pred string, fill func(add func(schema.Tuple, provenance.Poly))) {
	if db.lazy == nil {
		db.lazy = &lazyExtents{fill: map[string]func(add func(schema.Tuple, provenance.Poly)){}, done: map[string]*Rel{}}
	}
	db.lazy.mu.Lock()
	db.lazy.fill[pred] = fill
	db.lazy.mu.Unlock()
}

// Rel returns the extent for pred, creating it if needed (materializing a
// lazy declaration first). The returned extent may be shared with a
// snapshot or a lazy registry: callers must treat it as read-only and
// obtain mutable extents through MutableRel.
func (db *DB) Rel(pred string) *Rel {
	r, ok := db.rels[pred]
	if !ok {
		if lr, lok := db.lazy.get(pred); lok {
			db.rels[pred] = lr
			return lr
		}
		r = NewRel()
		db.rels[pred] = r
	}
	return r
}

// MutableRel returns an extent for pred that is exclusively owned by db,
// copy-on-write-cloning it first if it is shared with a snapshot or a lazy
// registry. All mutation paths (put, remove, in-place provenance writes)
// must go through it; with no snapshot outstanding it is a map lookup and a
// flag test.
func (db *DB) MutableRel(pred string) *Rel {
	r, ok := db.rels[pred]
	if !ok {
		if lr, lok := db.lazy.get(pred); lok {
			r = lr.cowClone()
			db.rels[pred] = r
			return r
		}
		r = NewRel()
		db.rels[pred] = r
		return r
	}
	if r.shared.Load() {
		r = r.cowClone()
		db.rels[pred] = r
	}
	return r
}

// cowClone deep-copies the extent's facts (the *Fact structs are mutated in
// place by provenance merges, so they cannot be shared across the COW
// boundary). The clone's facts land in one exactly-sized slab — a cloned
// shard is maximally dense regardless of the original's slab fill. Indexes
// are not copied — the clone rebuilds them lazily on first probe, while the
// frozen side keeps its own.
func (r *Rel) cowClone() *Rel {
	nr := NewRel()
	nr.slab = make([]Fact, 0, len(r.facts))
	for k, f := range r.facts {
		nr.slab = append(nr.slab, *f)
		nr.facts[k] = &nr.slab[len(nr.slab)-1]
	}
	return nr
}

// Has reports whether the predicate has a (possibly empty or still
// unmaterialized) extent.
func (db *DB) Has(pred string) bool {
	if _, ok := db.rels[pred]; ok {
		return true
	}
	return db.lazy.has(pred)
}

// Preds returns the sorted predicate names present, including lazy
// declarations not yet materialized.
func (db *DB) Preds() []string {
	out := make([]string, 0, len(db.rels))
	for p := range db.rels {
		out = append(out, p)
	}
	for _, p := range db.lazy.preds() {
		if _, ok := db.rels[p]; !ok {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Add inserts a fact.
func (db *DB) Add(pred string, t schema.Tuple, p provenance.Poly) bool {
	return db.MutableRel(pred).put(t, p)
}

// AddTuple inserts a fact annotated 1 (used for plain set-semantics EDBs).
func (db *DB) AddTuple(pred string, t schema.Tuple) bool {
	return db.MutableRel(pred).put(t, provenance.One())
}

// Set stores the fact, replacing (not merging) any existing annotation for
// the tuple. Mirrors of external stores use it to track the store's exact
// annotation instead of Add's alternative-derivation accumulation. An
// annotation-only change writes the stored fact in place — the tuple's
// index entries are unaffected, so no index maintenance runs.
func (db *DB) Set(pred string, t schema.Tuple, p provenance.Poly) {
	db.setKeyed(pred, t.Key(), t, p)
}

// setKeyed is Set for callers that already hold the tuple's canonical key
// (the snapshot codec decodes keys before tuples, and the key computation is
// measurable on the recovery path).
func (db *DB) setKeyed(pred, k string, t schema.Tuple, p provenance.Poly) {
	r := db.MutableRel(pred)
	if f := r.facts[k]; f != nil {
		f.Prov = p.Intern()
		return
	}
	r.putKeyed(k, t, p)
}

// Remove deletes the tuple from pred's extent, if present.
func (db *DB) Remove(pred string, t schema.Tuple) {
	db.MutableRel(pred).remove(t.Key())
}

// Size returns the total number of facts; lazy extents materialize so the
// count is truthful.
func (db *DB) Size() int {
	for _, p := range db.lazy.preds() {
		db.Rel(p)
	}
	n := 0
	for _, r := range db.rels {
		n += len(r.facts)
	}
	return n
}

// Snapshot returns an O(#preds) frozen view of the database: the snapshot
// shares every extent with db, and both sides mark the extents shared so
// the first mutation of each extent — on either side — clones it first
// (copy-on-write, see MutableRel). Extents that are never mutated are never
// copied, which is what makes snapshot-based evaluation cheap: Eval only
// pays for the head relations it actually derives into.
//
// The snapshot observes none of db's later changes and vice versa, exactly
// like the deep Clone it replaces, provided all mutations go through the DB
// API (Add, MutableRel, and the evaluator's merge paths).
func (db *DB) Snapshot() *DB {
	c := &DB{rels: make(map[string]*Rel, len(db.rels)), lazy: db.lazy}
	for p, r := range db.rels {
		r.shared.Store(true)
		c.rels[p] = r
	}
	return c
}

// Clone deep-copies the database eagerly (indexes are not copied). Most
// callers want Snapshot instead; Clone remains for tests and for callers
// that need a guaranteed-private copy regardless of mutation patterns.
func (db *DB) Clone() *DB {
	for _, p := range db.lazy.preds() {
		db.Rel(p)
	}
	c := NewDB()
	for p, r := range db.rels {
		c.rels[p] = r.cowClone()
	}
	return c
}
