package datalog

import (
	"sort"

	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

// Fact is a tuple with its provenance annotation.
type Fact struct {
	Tuple schema.Tuple
	Prov  provenance.Poly
}

// Rel is the annotated extent of one predicate. Facts are stored once, by
// pointer, and shared with the hash-index layer (index.go), so a provenance
// update is a single in-place write.
type Rel struct {
	facts map[string]*Fact
	idx   relIndex // see index.go
}

// NewRel creates an empty extent.
func NewRel() *Rel {
	return &Rel{facts: map[string]*Fact{}}
}

// Len returns the number of facts.
func (r *Rel) Len() int { return len(r.facts) }

// Get returns the fact for the tuple, if present.
func (r *Rel) Get(t schema.Tuple) (Fact, bool) {
	if f := r.facts[t.Key()]; f != nil {
		return *f, true
	}
	return Fact{}, false
}

// Contains reports tuple membership.
func (r *Rel) Contains(t schema.Tuple) bool {
	_, ok := r.facts[t.Key()]
	return ok
}

// containsKey reports membership by pre-encoded tuple key.
func (r *Rel) containsKey(key []byte) bool {
	_, ok := r.facts[string(key)]
	return ok
}

// put inserts or merges a fact; it reports whether the extent changed.
func (r *Rel) put(t schema.Tuple, p provenance.Poly) bool {
	return r.putKeyed(t.Key(), t, p)
}

// putKeyed is put with the tuple key already computed. Genuine insertions
// are folded incrementally into every maintained index.
func (r *Rel) putKeyed(k string, t schema.Tuple, p provenance.Poly) bool {
	if f := r.facts[k]; f != nil {
		if f.Prov.Subsumes(p) {
			return false
		}
		f.Prov = f.Prov.Add(p)
		return true
	}
	f := &Fact{Tuple: t, Prov: p}
	r.facts[k] = f
	r.indexInsert(f)
	return true
}

// remove deletes the fact stored under key k, keeping indexes in sync.
func (r *Rel) remove(k string) {
	f, ok := r.facts[k]
	if !ok {
		return
	}
	delete(r.facts, k)
	r.indexRemove(f)
}

// Facts returns all facts in deterministic (tuple) order.
func (r *Rel) Facts() []Fact {
	out := make([]Fact, 0, len(r.facts))
	for _, f := range r.facts {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tuple.Compare(out[j].Tuple) < 0 })
	return out
}

// DB maps predicate names to extents.
type DB struct {
	rels map[string]*Rel
}

// NewDB creates an empty database.
func NewDB() *DB { return &DB{rels: map[string]*Rel{}} }

// Rel returns the extent for pred, creating it if needed.
func (db *DB) Rel(pred string) *Rel {
	r, ok := db.rels[pred]
	if !ok {
		r = NewRel()
		db.rels[pred] = r
	}
	return r
}

// Has reports whether the predicate has a (possibly empty) extent.
func (db *DB) Has(pred string) bool {
	_, ok := db.rels[pred]
	return ok
}

// Preds returns the sorted predicate names present.
func (db *DB) Preds() []string {
	out := make([]string, 0, len(db.rels))
	for p := range db.rels {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Add inserts a fact.
func (db *DB) Add(pred string, t schema.Tuple, p provenance.Poly) bool {
	return db.Rel(pred).put(t, p)
}

// AddTuple inserts a fact annotated 1 (used for plain set-semantics EDBs).
func (db *DB) AddTuple(pred string, t schema.Tuple) bool {
	return db.Rel(pred).put(t, provenance.One())
}

// Size returns the total number of facts.
func (db *DB) Size() int {
	n := 0
	for _, r := range db.rels {
		n += len(r.facts)
	}
	return n
}

// Clone deep-copies the database (indexes are not copied).
func (db *DB) Clone() *DB {
	c := NewDB()
	for p, r := range db.rels {
		nr := NewRel()
		for k, f := range r.facts {
			cp := *f
			nr.facts[k] = &cp
		}
		c.rels[p] = nr
	}
	return c
}
