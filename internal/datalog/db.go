package datalog

import (
	"sort"

	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

// Fact is a tuple with its provenance annotation.
type Fact struct {
	Tuple schema.Tuple
	Prov  provenance.Poly
}

// Rel is the annotated extent of one predicate.
type Rel struct {
	facts   map[string]Fact
	indexes map[string]map[string][]string // colset -> valueKey -> tuple keys
}

// NewRel creates an empty extent.
func NewRel() *Rel {
	return &Rel{facts: map[string]Fact{}, indexes: map[string]map[string][]string{}}
}

// Len returns the number of facts.
func (r *Rel) Len() int { return len(r.facts) }

// Get returns the fact for the tuple, if present.
func (r *Rel) Get(t schema.Tuple) (Fact, bool) {
	f, ok := r.facts[t.Key()]
	return f, ok
}

// Contains reports tuple membership.
func (r *Rel) Contains(t schema.Tuple) bool {
	_, ok := r.facts[t.Key()]
	return ok
}

// put inserts or merges a fact; it reports whether the extent changed and
// invalidates indexes on genuine insertion.
func (r *Rel) put(t schema.Tuple, p provenance.Poly) bool {
	k := t.Key()
	if f, ok := r.facts[k]; ok {
		if f.Prov.Subsumes(p) {
			return false
		}
		f.Prov = f.Prov.Add(p)
		r.facts[k] = f
		return true
	}
	r.facts[k] = Fact{Tuple: t, Prov: p}
	// New tuple: incrementally update existing indexes.
	for colKey, idx := range r.indexes {
		cols := decodeCols(colKey)
		vk := t.Project(cols).Key()
		idx[vk] = append(idx[vk], k)
	}
	return true
}

// set replaces the annotation of an existing fact (internal; indexes track
// tuples, not annotations, so none are touched).
func (r *Rel) set(t schema.Tuple, p provenance.Poly) {
	k := t.Key()
	if f, ok := r.facts[k]; ok {
		f.Prov = p
		r.facts[k] = f
	}
}

// Facts returns all facts in deterministic (tuple) order.
func (r *Rel) Facts() []Fact {
	out := make([]Fact, 0, len(r.facts))
	for _, f := range r.facts {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tuple.Compare(out[j].Tuple) < 0 })
	return out
}

func encodeCols(cols []int) string {
	b := make([]byte, 0, len(cols)*2)
	for _, c := range cols {
		// Arities are tiny; one byte per column is plenty.
		b = append(b, byte(c), ';')
	}
	return string(b)
}

func decodeCols(key string) []int {
	cols := make([]int, 0, len(key)/2)
	for i := 0; i+1 < len(key); i += 2 {
		cols = append(cols, int(key[i]))
	}
	return cols
}

// lookupCount returns the number of facts whose projection on cols equals
// vals without materializing them — the cardinality estimate the join
// orderer uses.
func (r *Rel) lookupCount(cols []int, vals schema.Tuple) int {
	if len(cols) == 0 {
		return len(r.facts)
	}
	colKey := encodeCols(cols)
	idx, ok := r.indexes[colKey]
	if !ok {
		idx = map[string][]string{}
		for k, f := range r.facts {
			vk := f.Tuple.Project(cols).Key()
			idx[vk] = append(idx[vk], k)
		}
		r.indexes[colKey] = idx
	}
	return len(idx[vals.Key()])
}

// lookup returns the facts whose projection on cols equals vals, building a
// hash index on first use. With no bound columns it returns all facts.
func (r *Rel) lookup(cols []int, vals schema.Tuple) []Fact {
	if len(cols) == 0 {
		out := make([]Fact, 0, len(r.facts))
		for _, f := range r.facts {
			out = append(out, f)
		}
		return out
	}
	colKey := encodeCols(cols)
	idx, ok := r.indexes[colKey]
	if !ok {
		idx = map[string][]string{}
		for k, f := range r.facts {
			vk := f.Tuple.Project(cols).Key()
			idx[vk] = append(idx[vk], k)
		}
		r.indexes[colKey] = idx
	}
	keys := idx[vals.Key()]
	out := make([]Fact, 0, len(keys))
	for _, k := range keys {
		if f, ok := r.facts[k]; ok {
			out = append(out, f)
		}
	}
	return out
}

// DB maps predicate names to extents.
type DB struct {
	rels map[string]*Rel
}

// NewDB creates an empty database.
func NewDB() *DB { return &DB{rels: map[string]*Rel{}} }

// Rel returns the extent for pred, creating it if needed.
func (db *DB) Rel(pred string) *Rel {
	r, ok := db.rels[pred]
	if !ok {
		r = NewRel()
		db.rels[pred] = r
	}
	return r
}

// Has reports whether the predicate has a (possibly empty) extent.
func (db *DB) Has(pred string) bool {
	_, ok := db.rels[pred]
	return ok
}

// Preds returns the sorted predicate names present.
func (db *DB) Preds() []string {
	out := make([]string, 0, len(db.rels))
	for p := range db.rels {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Add inserts a fact.
func (db *DB) Add(pred string, t schema.Tuple, p provenance.Poly) bool {
	return db.Rel(pred).put(t, p)
}

// AddTuple inserts a fact annotated 1 (used for plain set-semantics EDBs).
func (db *DB) AddTuple(pred string, t schema.Tuple) bool {
	return db.Rel(pred).put(t, provenance.One())
}

// Size returns the total number of facts.
func (db *DB) Size() int {
	n := 0
	for _, r := range db.rels {
		n += len(r.facts)
	}
	return n
}

// Clone deep-copies the database (indexes are not copied).
func (db *DB) Clone() *DB {
	c := NewDB()
	for p, r := range db.rels {
		nr := NewRel()
		for k, f := range r.facts {
			nr.facts[k] = f
		}
		c.rels[p] = nr
	}
	return c
}
