package storage

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

// instFingerprint renders an instance's full observable state — relations,
// rows in canonical order, provenance strings — so any aliasing between a
// snapshot and the live instance shows up as a diff.
func instFingerprint(in *Instance) string {
	var b strings.Builder
	for _, r := range in.Schema().Relations() {
		t := in.Table(r.Name)
		if t == nil {
			continue
		}
		b.WriteString(r.Name)
		b.WriteString(":\n")
		for _, row := range t.Rows() {
			fmt.Fprintf(&b, "  %v @ %s\n", row.Tuple, row.Prov)
		}
	}
	return b.String()
}

// TestInstanceSnapshotIsolationProperty drives random insert/upsert/delete
// scripts against an instance with a live snapshot — the Peer.Publish
// pattern — and asserts after every step that the frozen public snapshot
// is unchanged, including through the indexed-lookup path.
func TestInstanceSnapshotIsolationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for round := 0; round < 15; round++ {
		in := NewInstance(sigma1())
		for i := 0; i < 25; i++ {
			k := rng.Int63n(40)
			_, err := in.Upsert("S", seqTuple(k, rng.Int63n(40), "ACGT"), provenance.One())
			if err != nil {
				t.Fatal(err)
			}
		}
		// Force an index on the soon-to-be-shared table, so the frozen side
		// holds bucket state built before the snapshot.
		in.Table("S").LookupIndex([]int{1}, schema.NewTuple(schema.Int(3)))
		snap := in.Snapshot()
		want := instFingerprint(snap)
		wantRows := fmt.Sprint(snap.Table("S").LookupIndex([]int{1}, schema.NewTuple(schema.Int(3))))

		for step := 0; step < 50; step++ {
			k := rng.Int63n(40)
			switch rng.Intn(3) {
			case 0:
				if _, err := in.Upsert("S", seqTuple(k, rng.Int63n(40), "TTTT"), provenance.One()); err != nil {
					t.Fatal(err)
				}
			case 1: // provenance merge on an identical tuple
				if err := in.Insert("S", seqTuple(k, k, "GGGG"), provenance.NewVar(provenance.Var(fmt.Sprintf("p%d", step)))); err != nil {
					if _, isKey := err.(*ErrKeyViolation); !isKey {
						t.Fatal(err)
					}
				}
			case 2:
				if _, err := in.Delete("S", seqTuple(k, k, "ACGT")); err != nil {
					t.Fatal(err)
				}
			}
			if got := instFingerprint(snap); got != want {
				t.Fatalf("round %d step %d: mutation leaked into snapshot:\nwant:\n%s\ngot:\n%s", round, step, want, got)
			}
		}
		if got := fmt.Sprint(snap.Table("S").LookupIndex([]int{1}, schema.NewTuple(schema.Int(3)))); got != wantRows {
			t.Fatalf("round %d: snapshot index rows changed:\nwant %s\ngot  %s", round, wantRows, got)
		}
	}
}

// TestInstanceSnapshotReverseIsolation mutates the snapshot and asserts the
// original instance never observes the changes.
func TestInstanceSnapshotReverseIsolation(t *testing.T) {
	in := NewInstance(sigma1())
	for i := int64(0); i < 20; i++ {
		if err := in.Insert("S", seqTuple(i, i, "ACGT"), provenance.One()); err != nil {
			t.Fatal(err)
		}
	}
	want := instFingerprint(in)
	snap := in.Snapshot()
	for i := int64(0); i < 20; i++ {
		if _, err := snap.Upsert("S", seqTuple(i, i, "CCCC"), provenance.One()); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if _, err := snap.Delete("S", seqTuple(i, i, "CCCC")); err != nil {
				t.Fatal(err)
			}
		}
		if got := instFingerprint(in); got != want {
			t.Fatalf("i=%d: snapshot mutation leaked into original:\nwant:\n%s\ngot:\n%s", i, want, got)
		}
	}
}

// TestSnapshotChainAcrossPublishes models repeated Publish cycles: take a
// snapshot, mutate, snapshot again, and verify every captured view stays
// exactly as captured.
func TestSnapshotChainAcrossPublishes(t *testing.T) {
	in := NewInstance(sigma1())
	var snaps []*Instance
	var wants []string
	for cycle := int64(0); cycle < 6; cycle++ {
		if err := in.Insert("S", seqTuple(cycle, cycle, "ACGT"), provenance.One()); err != nil {
			t.Fatal(err)
		}
		s := in.Snapshot()
		snaps = append(snaps, s)
		wants = append(wants, instFingerprint(s))
		for i, prev := range snaps {
			if got := instFingerprint(prev); got != wants[i] {
				t.Fatalf("cycle %d: snapshot %d drifted:\nwant:\n%s\ngot:\n%s", cycle, i, wants[i], got)
			}
		}
	}
}
