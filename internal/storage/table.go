// Package storage provides the in-memory relational storage engine that
// backs each CDSS peer's local database instance. It supports set-semantics
// tables with primary-key enforcement, hash secondary indexes, per-tuple
// provenance annotations, deep snapshots (the "public snapshot" the CDSS
// exposes after publishing), and instance diffing (to derive the update
// stream from local edits).
//
// The full ORCHESTRA prototype sat on an RDBMS; this embedded engine is the
// laptop-scale substitute documented in DESIGN.md. It preserves the
// semantics update exchange needs: set semantics, keys, and indexed lookup.
package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

// Row is a stored tuple together with its provenance annotation. Base
// tuples (locally inserted) carry a single provenance token; tuples derived
// by update exchange carry the polynomial computed by the mapping rules.
type Row struct {
	Tuple schema.Tuple
	Prov  provenance.Poly
}

// Table stores the extent of one relation. It enforces the relation's
// primary key: two distinct tuples with the same key cannot coexist.
// Table methods are not safe for concurrent mutation; Instance provides
// the locking.
type Table struct {
	rel *schema.Relation
	// rows maps full-tuple key -> row.
	rows map[string]Row
	// pk maps key-columns key -> full-tuple key.
	pk map[string]string
	// indexes maps a canonical column-set name to a hash index.
	indexes map[string]*hashIndex
	// shared marks the table as captured by an Instance.Snapshot: the next
	// mutation (on any holder) must copy-on-write first. Never cleared once
	// set; Instance.mutable performs the clone. Atomic because snapshots of
	// two instances sharing this table synchronize on different mutexes.
	shared atomic.Bool
	// idxMu guards the indexes map: lazy index creation (LookupIndex) can
	// run on a snapshot-shared table, concurrently from the instances that
	// share it, while row mutations always happen on an exclusively owned
	// table under its instance's lock.
	idxMu sync.Mutex
}

// hashIndex maps the key of a column projection to the set of full-tuple
// keys having that projection.
type hashIndex struct {
	cols    []int
	buckets map[string]map[string]struct{}
}

func indexName(cols []int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprint(c)
	}
	return strings.Join(parts, ",")
}

// NewTable creates an empty table for the relation.
func NewTable(rel *schema.Relation) *Table {
	return &Table{
		rel:     rel,
		rows:    map[string]Row{},
		pk:      map[string]string{},
		indexes: map[string]*hashIndex{},
	}
}

// Relation returns the table's relation descriptor.
func (t *Table) Relation() *schema.Relation { return t.rel }

// Len returns the number of stored tuples.
func (t *Table) Len() int { return len(t.rows) }

// ErrKeyViolation is returned by Insert when a different tuple with the
// same primary key already exists.
type ErrKeyViolation struct {
	Relation string
	Key      schema.Tuple
	Existing schema.Tuple
	New      schema.Tuple
}

// Error implements error.
func (e *ErrKeyViolation) Error() string {
	return fmt.Sprintf("storage: key violation in %s: key %v held by %v, attempted %v",
		e.Relation, e.Key, e.Existing, e.New)
}

// Insert adds a tuple with provenance. Inserting an identical tuple merges
// provenance by addition (alternative derivations). Inserting a different
// tuple with an existing key returns *ErrKeyViolation.
func (t *Table) Insert(tu schema.Tuple, prov provenance.Poly) error {
	if err := t.rel.Validate(tu); err != nil {
		return err
	}
	fk := tu.Key()
	if existing, ok := t.rows[fk]; ok {
		existing.Prov = existing.Prov.Add(prov).Intern()
		t.rows[fk] = existing
		return nil
	}
	kk := t.rel.KeyOf(tu).Key()
	if prevFK, ok := t.pk[kk]; ok {
		prev := t.rows[prevFK]
		return &ErrKeyViolation{Relation: t.rel.Name, Key: t.rel.KeyOf(tu), Existing: prev.Tuple, New: tu}
	}
	// Stored annotations are interned so identical provenance across rows,
	// tables, and snapshots shares one allocation.
	t.rows[fk] = Row{Tuple: tu.Clone(), Prov: prov.Intern()}
	t.pk[kk] = fk
	t.idxMu.Lock()
	for _, idx := range t.indexes {
		idx.add(tu, fk)
	}
	t.idxMu.Unlock()
	return nil
}

// Upsert inserts the tuple, replacing any existing tuple with the same
// primary key. It returns the replaced tuple, if any.
func (t *Table) Upsert(tu schema.Tuple, prov provenance.Poly) (replaced *schema.Tuple, err error) {
	if err := t.rel.Validate(tu); err != nil {
		return nil, err
	}
	kk := t.rel.KeyOf(tu).Key()
	if prevFK, ok := t.pk[kk]; ok {
		prev := t.rows[prevFK].Tuple
		if prev.Equal(tu) {
			r := t.rows[prevFK]
			r.Prov = r.Prov.Add(prov).Intern()
			t.rows[prevFK] = r
			return nil, nil
		}
		t.deleteByFullKey(prevFK)
		if err := t.Insert(tu, prov); err != nil {
			return nil, err
		}
		return &prev, nil
	}
	return nil, t.Insert(tu, prov)
}

// Delete removes the exact tuple. It reports whether the tuple was present.
func (t *Table) Delete(tu schema.Tuple) bool {
	fk := tu.Key()
	if _, ok := t.rows[fk]; !ok {
		return false
	}
	t.deleteByFullKey(fk)
	return true
}

func (t *Table) deleteByFullKey(fk string) {
	row, ok := t.rows[fk]
	if !ok {
		return
	}
	delete(t.rows, fk)
	delete(t.pk, t.rel.KeyOf(row.Tuple).Key())
	t.idxMu.Lock()
	for _, idx := range t.indexes {
		idx.remove(row.Tuple, fk)
	}
	t.idxMu.Unlock()
}

// Contains reports whether the exact tuple is stored.
func (t *Table) Contains(tu schema.Tuple) bool {
	_, ok := t.rows[tu.Key()]
	return ok
}

// Get returns the row for the exact tuple.
func (t *Table) Get(tu schema.Tuple) (Row, bool) {
	r, ok := t.rows[tu.Key()]
	return r, ok
}

// GetByKey returns the row whose primary key matches, if any.
func (t *Table) GetByKey(key schema.Tuple) (Row, bool) {
	fk, ok := t.pk[key.Key()]
	if !ok {
		return Row{}, false
	}
	return t.rows[fk], true
}

// SetProvenance replaces the provenance annotation of an existing tuple.
func (t *Table) SetProvenance(tu schema.Tuple, prov provenance.Poly) bool {
	fk := tu.Key()
	r, ok := t.rows[fk]
	if !ok {
		return false
	}
	r.Prov = prov.Intern()
	t.rows[fk] = r
	return true
}

// CreateIndex builds (or returns) a hash index on the given columns.
func (t *Table) CreateIndex(cols []int) {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	t.createIndexLocked(cols)
}

func (t *Table) createIndexLocked(cols []int) *hashIndex {
	name := indexName(cols)
	if idx, ok := t.indexes[name]; ok {
		return idx
	}
	idx := &hashIndex{cols: append([]int(nil), cols...), buckets: map[string]map[string]struct{}{}}
	for fk, row := range t.rows {
		idx.add(row.Tuple, fk)
	}
	t.indexes[name] = idx
	return idx
}

// LookupIndex returns rows whose projection on cols equals vals. If no
// index exists on cols one is created on first use — safe even when the
// table is snapshot-shared between instances (idxMu serializes the lazy
// build; rows on a shared table are immutable by the COW contract).
func (t *Table) LookupIndex(cols []int, vals schema.Tuple) []Row {
	t.idxMu.Lock()
	idx, ok := t.indexes[indexName(cols)]
	if !ok {
		idx = t.createIndexLocked(cols)
	}
	bucket := idx.buckets[vals.Key()]
	out := make([]Row, 0, len(bucket))
	for fk := range bucket {
		out = append(out, t.rows[fk])
	}
	t.idxMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tuple.Compare(out[j].Tuple) < 0 })
	return out
}

func (ix *hashIndex) add(tu schema.Tuple, fk string) {
	k := tu.Project(ix.cols).Key()
	b, ok := ix.buckets[k]
	if !ok {
		b = map[string]struct{}{}
		ix.buckets[k] = b
	}
	b[fk] = struct{}{}
}

func (ix *hashIndex) remove(tu schema.Tuple, fk string) {
	k := tu.Project(ix.cols).Key()
	if b, ok := ix.buckets[k]; ok {
		delete(b, fk)
		if len(b) == 0 {
			delete(ix.buckets, k)
		}
	}
}

// Scan calls fn for every row in unspecified order; returning false stops
// the scan early.
func (t *Table) Scan(fn func(Row) bool) {
	for _, row := range t.rows {
		if !fn(row) {
			return
		}
	}
}

// Rows returns all rows sorted by tuple order (deterministic).
func (t *Table) Rows() []Row {
	out := make([]Row, 0, len(t.rows))
	for _, r := range t.rows {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tuple.Compare(out[j].Tuple) < 0 })
	return out
}

// Clone returns a deep copy of the table (indexes are rebuilt lazily).
func (t *Table) Clone() *Table {
	c := NewTable(t.rel)
	for fk, row := range t.rows {
		c.rows[fk] = Row{Tuple: row.Tuple.Clone(), Prov: row.Prov}
		c.pk[t.rel.KeyOf(row.Tuple).Key()] = fk
	}
	return c
}

// cowClone copies the table's row and key maps for copy-on-write after a
// snapshot. Stored tuples are immutable once inserted (Insert defensively
// clones its input and mutations replace whole rows), so the tuple slices
// and provenance values are shared with the frozen side; only the maps are
// rebuilt. Indexes are dropped and rebuilt lazily on the next lookup.
func (t *Table) cowClone() *Table {
	c := NewTable(t.rel)
	for fk, row := range t.rows {
		c.rows[fk] = row
	}
	for kk, fk := range t.pk {
		c.pk[kk] = fk
	}
	return c
}
