package storage

import (
	"errors"
	"testing"
	"testing/quick"

	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

func seqRel() *schema.Relation {
	return schema.MustRelation("S",
		[]schema.Attribute{{Name: "oid", Type: schema.KindInt}, {Name: "pid", Type: schema.KindInt}, {Name: "seq", Type: schema.KindString}},
		"oid", "pid")
}

func seqTuple(oid, pid int64, s string) schema.Tuple {
	return schema.NewTuple(schema.Int(oid), schema.Int(pid), schema.String(s))
}

func TestTableInsertDelete(t *testing.T) {
	tbl := NewTable(seqRel())
	tu := seqTuple(1, 2, "ACGT")
	if err := tbl.Insert(tu, provenance.NewVar("p1")); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 || !tbl.Contains(tu) {
		t.Error("insert lost")
	}
	if !tbl.Delete(tu) {
		t.Error("delete missed")
	}
	if tbl.Delete(tu) {
		t.Error("double delete succeeded")
	}
	if tbl.Len() != 0 {
		t.Error("table not empty")
	}
}

func TestTableKeyViolation(t *testing.T) {
	tbl := NewTable(seqRel())
	if err := tbl.Insert(seqTuple(1, 2, "AAA"), provenance.One()); err != nil {
		t.Fatal(err)
	}
	err := tbl.Insert(seqTuple(1, 2, "BBB"), provenance.One())
	var kv *ErrKeyViolation
	if !errors.As(err, &kv) {
		t.Fatalf("want ErrKeyViolation, got %v", err)
	}
	if kv.Relation != "S" {
		t.Errorf("violation relation = %s", kv.Relation)
	}
	if kv.Error() == "" {
		t.Error("empty error message")
	}
	// Same tuple again is fine (set semantics, provenance merged).
	if err := tbl.Insert(seqTuple(1, 2, "AAA"), provenance.NewVar("x")); err != nil {
		t.Fatal(err)
	}
	row, _ := tbl.Get(seqTuple(1, 2, "AAA"))
	if row.Prov.NumMonomials() != 2 {
		t.Errorf("provenance not merged: %v", row.Prov)
	}
}

func TestTableUpsert(t *testing.T) {
	tbl := NewTable(seqRel())
	if _, err := tbl.Upsert(seqTuple(1, 2, "AAA"), provenance.One()); err != nil {
		t.Fatal(err)
	}
	replaced, err := tbl.Upsert(seqTuple(1, 2, "BBB"), provenance.One())
	if err != nil {
		t.Fatal(err)
	}
	if replaced == nil || !replaced.Equal(seqTuple(1, 2, "AAA")) {
		t.Errorf("replaced = %v", replaced)
	}
	if tbl.Len() != 1 || !tbl.Contains(seqTuple(1, 2, "BBB")) {
		t.Error("upsert result wrong")
	}
	// Upsert of identical tuple merges provenance, replaces nothing.
	replaced, err = tbl.Upsert(seqTuple(1, 2, "BBB"), provenance.NewVar("y"))
	if err != nil || replaced != nil {
		t.Errorf("identical upsert: replaced=%v err=%v", replaced, err)
	}
}

func TestTableGetByKey(t *testing.T) {
	tbl := NewTable(seqRel())
	tu := seqTuple(7, 8, "CCC")
	if err := tbl.Insert(tu, provenance.One()); err != nil {
		t.Fatal(err)
	}
	row, ok := tbl.GetByKey(schema.NewTuple(schema.Int(7), schema.Int(8)))
	if !ok || !row.Tuple.Equal(tu) {
		t.Errorf("GetByKey = %v, %v", row, ok)
	}
	if _, ok := tbl.GetByKey(schema.NewTuple(schema.Int(9), schema.Int(9))); ok {
		t.Error("phantom key")
	}
}

func TestTableIndex(t *testing.T) {
	tbl := NewTable(seqRel())
	for i := int64(0); i < 10; i++ {
		if err := tbl.Insert(seqTuple(i%3, i, "s"), provenance.One()); err != nil {
			t.Fatal(err)
		}
	}
	rows := tbl.LookupIndex([]int{0}, schema.NewTuple(schema.Int(0)))
	if len(rows) != 4 { // oids 0,3,6,9
		t.Errorf("index lookup returned %d rows", len(rows))
	}
	// Index maintained under delete.
	tbl.Delete(seqTuple(0, 0, "s"))
	rows = tbl.LookupIndex([]int{0}, schema.NewTuple(schema.Int(0)))
	if len(rows) != 3 {
		t.Errorf("after delete: %d rows", len(rows))
	}
	// Index maintained under insert after creation.
	if err := tbl.Insert(seqTuple(0, 100, "s"), provenance.One()); err != nil {
		t.Fatal(err)
	}
	rows = tbl.LookupIndex([]int{0}, schema.NewTuple(schema.Int(0)))
	if len(rows) != 4 {
		t.Errorf("after insert: %d rows", len(rows))
	}
	// Deterministic order.
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Tuple.Compare(rows[i].Tuple) >= 0 {
			t.Error("index rows not sorted")
		}
	}
}

func TestTableSetProvenance(t *testing.T) {
	tbl := NewTable(seqRel())
	tu := seqTuple(1, 1, "x")
	if err := tbl.Insert(tu, provenance.One()); err != nil {
		t.Fatal(err)
	}
	if !tbl.SetProvenance(tu, provenance.NewVar("q")) {
		t.Error("SetProvenance failed")
	}
	row, _ := tbl.Get(tu)
	if !row.Prov.Equal(provenance.NewVar("q")) {
		t.Errorf("prov = %v", row.Prov)
	}
	if tbl.SetProvenance(seqTuple(9, 9, "z"), provenance.One()) {
		t.Error("SetProvenance on missing tuple succeeded")
	}
}

func TestTableCloneIsolation(t *testing.T) {
	tbl := NewTable(seqRel())
	if err := tbl.Insert(seqTuple(1, 1, "x"), provenance.One()); err != nil {
		t.Fatal(err)
	}
	c := tbl.Clone()
	if err := c.Insert(seqTuple(2, 2, "y"), provenance.One()); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 || c.Len() != 2 {
		t.Error("clone aliases original")
	}
	c.Delete(seqTuple(1, 1, "x"))
	if !tbl.Contains(seqTuple(1, 1, "x")) {
		t.Error("delete in clone affected original")
	}
}

func TestTableScanEarlyStop(t *testing.T) {
	tbl := NewTable(seqRel())
	for i := int64(0); i < 5; i++ {
		if err := tbl.Insert(seqTuple(i, i, "x"), provenance.One()); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	tbl.Scan(func(Row) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("scan visited %d rows", n)
	}
}

func TestTableValidateOnWrite(t *testing.T) {
	tbl := NewTable(seqRel())
	if err := tbl.Insert(schema.NewTuple(schema.Int(1)), provenance.One()); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := tbl.Upsert(schema.NewTuple(schema.Int(1)), provenance.One()); err == nil {
		t.Error("upsert wrong arity accepted")
	}
}

// Property: insert-then-delete round trips leave a table unchanged.
func TestQuickInsertDeleteRoundTrip(t *testing.T) {
	f := func(oid, pid int64, s string) bool {
		tbl := NewTable(seqRel())
		base := seqTuple(0, 0, "base")
		if err := tbl.Insert(base, provenance.One()); err != nil {
			return false
		}
		tu := seqTuple(oid, pid, s)
		if tu.Equal(base) || (oid == 0 && pid == 0) {
			return true // key collides with base; skip
		}
		if err := tbl.Insert(tu, provenance.One()); err != nil {
			return false
		}
		if !tbl.Delete(tu) {
			return false
		}
		return tbl.Len() == 1 && tbl.Contains(base)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
