package storage

import (
	"fmt"
	"sync"

	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

// Instance is a database instance over one schema: one table per relation.
// An Instance is safe for concurrent use; a coarse RW mutex suffices at the
// scales a single CDSS peer handles between update exchanges.
type Instance struct {
	mu     sync.RWMutex
	schema *schema.Schema
	tables map[string]*Table
	// version counts successful mutations (Insert/Upsert/Delete). Derived
	// caches over the instance — notably the peer's datalog-EDB query mirror
	// — compare versions to detect out-of-band writes and rebuild instead of
	// serving stale data.
	version uint64
}

// NewInstance creates an empty instance with one table per relation.
func NewInstance(s *schema.Schema) *Instance {
	inst := &Instance{schema: s, tables: map[string]*Table{}}
	for _, r := range s.Relations() {
		inst.tables[r.Name] = NewTable(r)
	}
	return inst
}

// Schema returns the instance's schema.
func (in *Instance) Schema() *schema.Schema { return in.schema }

// Table returns the table for a relation name, or nil. The returned table
// may be shared with a snapshot: callers must treat it as read-only and
// mutate only through the Instance methods, which copy-on-write as needed.
func (in *Instance) Table(name string) *Table {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.tables[name]
}

// mutable returns the exclusively owned table for rel, copy-on-write-cloning
// it first if a snapshot shares it. Callers must hold in.mu for writing.
func (in *Instance) mutable(rel string) (*Table, bool) {
	t, ok := in.tables[rel]
	if !ok {
		return nil, false
	}
	if t.shared.Load() {
		t = t.cowClone()
		in.tables[rel] = t
	}
	return t, true
}

// Insert adds a tuple to the named relation.
func (in *Instance) Insert(rel string, tu schema.Tuple, prov provenance.Poly) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	t, ok := in.mutable(rel)
	if !ok {
		return fmt.Errorf("%w %s", ErrUnknownRelation, rel)
	}
	in.version++
	return t.Insert(tu, prov)
}

// Upsert inserts or key-replaces a tuple in the named relation.
func (in *Instance) Upsert(rel string, tu schema.Tuple, prov provenance.Poly) (*schema.Tuple, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	t, ok := in.mutable(rel)
	if !ok {
		return nil, fmt.Errorf("%w %s", ErrUnknownRelation, rel)
	}
	in.version++
	return t.Upsert(tu, prov)
}

// Delete removes a tuple from the named relation.
func (in *Instance) Delete(rel string, tu schema.Tuple) (bool, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	t, ok := in.mutable(rel)
	if !ok {
		return false, fmt.Errorf("%w %s", ErrUnknownRelation, rel)
	}
	in.version++
	return t.Delete(tu), nil
}

// Version returns the instance's mutation counter: it advances on every
// Insert, Upsert, or Delete (successful or not — it only ever
// over-invalidates). Snapshots and clones start their own counter.
func (in *Instance) Version() uint64 {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.version
}

// Rows returns the named relation's rows sorted by tuple order, under the
// instance lock — safe against concurrent mutation, unlike calling
// Table(rel).Rows() on a live instance. ok is false for an unknown
// relation.
func (in *Instance) Rows(rel string) (rows []Row, ok bool) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	t, ok := in.tables[rel]
	if !ok {
		return nil, false
	}
	return t.Rows(), true
}

// Contains reports whether the named relation holds the exact tuple.
func (in *Instance) Contains(rel string, tu schema.Tuple) bool {
	in.mu.RLock()
	defer in.mu.RUnlock()
	t, ok := in.tables[rel]
	return ok && t.Contains(tu)
}

// Size returns the total number of tuples across all relations.
func (in *Instance) Size() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	n := 0
	for _, t := range in.tables {
		n += t.Len()
	}
	return n
}

// Snapshot returns an O(#relations) copy-on-write frozen view — the
// mechanism behind the CDSS "public snapshot": the published view shares
// every table with the live instance, and the first post-snapshot mutation
// of a table (on either side) clones it, so later local edits never show
// through the snapshot. Tables that are never edited are never copied.
func (in *Instance) Snapshot() *Instance {
	in.mu.RLock() // shared flags are atomic; only the map iteration needs the lock
	defer in.mu.RUnlock()
	c := &Instance{schema: in.schema, tables: make(map[string]*Table, len(in.tables))}
	for name, t := range in.tables {
		t.shared.Store(true)
		c.tables[name] = t
	}
	return c
}

// Clone returns an eager deep copy. Most callers want Snapshot instead;
// Clone remains for tests and callers that need a guaranteed-private copy.
func (in *Instance) Clone() *Instance {
	in.mu.RLock()
	defer in.mu.RUnlock()
	c := &Instance{schema: in.schema, tables: map[string]*Table{}}
	for name, t := range in.tables {
		c.tables[name] = t.Clone()
	}
	return c
}

// Delta is the difference between two instances over the same schema,
// expressed as tuples to insert and tuples to delete per relation.
type Delta struct {
	Inserts map[string][]schema.Tuple
	Deletes map[string][]schema.Tuple
}

// Empty reports whether the delta contains no changes.
func (d Delta) Empty() bool {
	for _, ts := range d.Inserts {
		if len(ts) > 0 {
			return false
		}
	}
	for _, ts := range d.Deletes {
		if len(ts) > 0 {
			return false
		}
	}
	return true
}

// Count returns the total number of changed tuples.
func (d Delta) Count() int {
	n := 0
	for _, ts := range d.Inserts {
		n += len(ts)
	}
	for _, ts := range d.Deletes {
		n += len(ts)
	}
	return n
}

// Diff computes the delta that transforms base into in: tuples present in
// in but not base are inserts; tuples present in base but not in are
// deletes. Both instances must share a schema.
func (in *Instance) Diff(base *Instance) (Delta, error) {
	if in.schema != base.schema && in.schema.Name != base.schema.Name {
		return Delta{}, fmt.Errorf("storage: diff across schemas %s and %s", in.schema.Name, base.schema.Name)
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	base.mu.RLock()
	defer base.mu.RUnlock()

	d := Delta{Inserts: map[string][]schema.Tuple{}, Deletes: map[string][]schema.Tuple{}}
	for name, t := range in.tables {
		bt := base.tables[name]
		for _, row := range t.Rows() {
			if bt == nil || !bt.Contains(row.Tuple) {
				d.Inserts[name] = append(d.Inserts[name], row.Tuple)
			}
		}
		if bt != nil {
			for _, row := range bt.Rows() {
				if !t.Contains(row.Tuple) {
					d.Deletes[name] = append(d.Deletes[name], row.Tuple)
				}
			}
		}
	}
	return d, nil
}

// Equal reports whether two instances hold exactly the same tuples
// (ignoring provenance).
func (in *Instance) Equal(o *Instance) bool {
	d, err := in.Diff(o)
	return err == nil && d.Empty()
}
