package storage

import (
	"sync"
	"testing"

	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

func sigma1() *schema.Schema {
	s := schema.NewSchema("Σ1")
	s.MustAddRelation(schema.MustRelation("O",
		[]schema.Attribute{{Name: "org", Type: schema.KindString}, {Name: "oid", Type: schema.KindInt}}, "oid"))
	s.MustAddRelation(schema.MustRelation("P",
		[]schema.Attribute{{Name: "prot", Type: schema.KindString}, {Name: "pid", Type: schema.KindInt}}, "pid"))
	s.MustAddRelation(schema.MustRelation("S",
		[]schema.Attribute{{Name: "oid", Type: schema.KindInt}, {Name: "pid", Type: schema.KindInt}, {Name: "seq", Type: schema.KindString}}, "oid", "pid"))
	return s
}

func TestInstanceBasics(t *testing.T) {
	in := NewInstance(sigma1())
	if in.Table("O") == nil || in.Table("P") == nil || in.Table("S") == nil {
		t.Fatal("missing tables")
	}
	if in.Table("missing") != nil {
		t.Error("phantom table")
	}
	tu := schema.NewTuple(schema.String("mouse"), schema.Int(1))
	if err := in.Insert("O", tu, provenance.One()); err != nil {
		t.Fatal(err)
	}
	if !in.Contains("O", tu) {
		t.Error("insert lost")
	}
	if in.Size() != 1 {
		t.Errorf("size = %d", in.Size())
	}
	if err := in.Insert("missing", tu, provenance.One()); err == nil {
		t.Error("insert into unknown relation accepted")
	}
	ok, err := in.Delete("O", tu)
	if err != nil || !ok {
		t.Errorf("delete: %v %v", ok, err)
	}
	if _, err := in.Delete("missing", tu); err == nil {
		t.Error("delete from unknown relation accepted")
	}
	if _, err := in.Upsert("missing", tu, provenance.One()); err == nil {
		t.Error("upsert into unknown relation accepted")
	}
}

func TestInstanceCloneSnapshot(t *testing.T) {
	in := NewInstance(sigma1())
	tu := schema.NewTuple(schema.String("mouse"), schema.Int(1))
	if err := in.Insert("O", tu, provenance.One()); err != nil {
		t.Fatal(err)
	}
	snap := in.Clone()
	// Continue editing the local instance; the snapshot must not change.
	tu2 := schema.NewTuple(schema.String("rat"), schema.Int(2))
	if err := in.Insert("O", tu2, provenance.One()); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Delete("O", tu); err != nil {
		t.Fatal(err)
	}
	if !snap.Contains("O", tu) || snap.Contains("O", tu2) {
		t.Error("snapshot leaked local edits")
	}
}

func TestInstanceDiff(t *testing.T) {
	base := NewInstance(sigma1())
	cur := NewInstance(sigma1())
	a := schema.NewTuple(schema.String("mouse"), schema.Int(1))
	b := schema.NewTuple(schema.String("rat"), schema.Int(2))
	c := schema.NewTuple(schema.String("fly"), schema.Int(3))
	if err := base.Insert("O", a, provenance.One()); err != nil {
		t.Fatal(err)
	}
	if err := base.Insert("O", b, provenance.One()); err != nil {
		t.Fatal(err)
	}
	if err := cur.Insert("O", b, provenance.One()); err != nil {
		t.Fatal(err)
	}
	if err := cur.Insert("O", c, provenance.One()); err != nil {
		t.Fatal(err)
	}
	d, err := cur.Diff(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Inserts["O"]) != 1 || !d.Inserts["O"][0].Equal(c) {
		t.Errorf("inserts = %v", d.Inserts)
	}
	if len(d.Deletes["O"]) != 1 || !d.Deletes["O"][0].Equal(a) {
		t.Errorf("deletes = %v", d.Deletes)
	}
	if d.Empty() {
		t.Error("non-empty delta reported empty")
	}
	if d.Count() != 2 {
		t.Errorf("count = %d", d.Count())
	}
	// Diff against self is empty.
	d2, err := cur.Diff(cur)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Empty() || d2.Count() != 0 {
		t.Error("self-diff non-empty")
	}
	if !cur.Equal(cur) || cur.Equal(base) {
		t.Error("Equal wrong")
	}
}

func TestInstanceDiffSchemaMismatch(t *testing.T) {
	other := schema.NewSchema("Σ2")
	other.MustAddRelation(schema.MustRelation("OPS",
		[]schema.Attribute{{Name: "org", Type: schema.KindString}}))
	a := NewInstance(sigma1())
	b := NewInstance(other)
	if _, err := a.Diff(b); err == nil {
		t.Error("cross-schema diff accepted")
	}
}

func TestInstanceConcurrentAccess(t *testing.T) {
	in := NewInstance(sigma1())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tu := schema.NewTuple(schema.Int(int64(g*1000+i)), schema.Int(int64(i)), schema.String("s"))
				if err := in.Insert("S", tu, provenance.One()); err != nil {
					t.Error(err)
					return
				}
				in.Contains("S", tu)
				in.Size()
			}
		}(g)
	}
	wg.Wait()
	if in.Size() != 800 {
		t.Errorf("size = %d, want 800", in.Size())
	}
}
