package storage

import "errors"

// ErrUnknownRelation is the sentinel wrapped by every storage error caused
// by addressing a relation the instance's schema does not declare. Callers
// test with errors.Is; the public orchestra facade translates it to
// orchestra.ErrUnknownRelation.
var ErrUnknownRelation = errors.New("storage: unknown relation")
