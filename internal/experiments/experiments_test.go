package experiments

import (
	"strconv"
	"strings"
	"testing"

	"orchestra/internal/recon"
)

// The experiment harness at tiny sizes: every experiment must run, produce
// a table with the declared header width, and exhibit the coarse shape its
// caption promises.

func TestE1Shape(t *testing.T) {
	tbl, err := E1InsertionScaling([]int{5, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if len(r) != len(tbl.Header) {
			t.Errorf("ragged row %v", r)
		}
	}
	// More insertions must derive more updates.
	if tbl.Rows[0][4] >= tbl.Rows[1][4] && len(tbl.Rows[0][4]) >= len(tbl.Rows[1][4]) {
		t.Errorf("derived updates did not grow: %v vs %v", tbl.Rows[0], tbl.Rows[1])
	}
}

func TestE2Shape(t *testing.T) {
	tbl, err := E2IncrementalVsFull(100, []float64{0.01, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// The small-delta speedup must exceed the full-delta speedup.
	s0 := parseSpeedup(t, tbl.Rows[0][4])
	s1 := parseSpeedup(t, tbl.Rows[1][4])
	if s0 <= s1 {
		t.Errorf("speedup not decreasing: %.1f vs %.1f", s0, s1)
	}
}

func TestE3Shape(t *testing.T) {
	tbl, err := E3DeletionPropagation(100, []float64{0.01})
	if err != nil {
		t.Fatal(err)
	}
	if s := parseSpeedup(t, tbl.Rows[0][4]); s < 2 {
		t.Errorf("provenance deletion should beat re-derivation, got %.1fx", s)
	}
}

func TestE4Shape(t *testing.T) {
	tbl, err := E4ProvenanceOverhead(500)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// All three modes derive the same number of facts.
	if tbl.Rows[0][2] != tbl.Rows[1][2] || tbl.Rows[1][2] != tbl.Rows[2][2] {
		t.Errorf("fact counts diverge: %v", tbl.Rows)
	}
}

func TestE8Shape(t *testing.T) {
	tbl, err := E8GoalDirectedQuery(500)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// E8GoalDirectedQuery itself verifies answer-count agreement; the table
	// must report one row per strategy with matching counts.
	if tbl.Rows[0][2] != tbl.Rows[1][2] || tbl.Rows[1][2] != tbl.Rows[2][2] {
		t.Errorf("answer counts diverge: %v", tbl.Rows)
	}
}

func TestE5Shape(t *testing.T) {
	tbl, err := E5Reconciliation([]int{50}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Zero conflicts: everything accepted, nothing deferred.
	if tbl.Rows[0][4] != "100" || tbl.Rows[0][5] != "0" {
		t.Errorf("rate-0 row = %v", tbl.Rows[0])
	}
	// Full conflicts: deferred outnumber accepted.
	if tbl.Rows[1][5] == "0" {
		t.Errorf("rate-1 row = %v", tbl.Rows[1])
	}
}

func TestE6Shape(t *testing.T) {
	tbl, err := E6Topologies([]int{2, 3}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 { // 3 topologies × 2 sizes
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestTableFprint(t *testing.T) {
	tbl := &Table{ID: "T", Caption: "cap", Header: []string{"a", "bb"},
		Rows: [][]string{{"1", "2"}, {"333", "4"}}}
	var sb strings.Builder
	tbl.Fprint(&sb)
	out := sb.String()
	if !strings.Contains(out, "T: cap") || !strings.Contains(out, "333") {
		t.Errorf("Fprint = %q", out)
	}
}

func TestBuildReconWorkloadShape(t *testing.T) {
	st, mixed := BuildReconWorkload(10, 1)
	if len(mixed) != 20 {
		t.Fatalf("mixed = %d", len(mixed))
	}
	out, err := st.Reconcile(recon.TrustAll(1), mixed)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Deferred) == 0 {
		t.Error("full-conflict workload deferred nothing")
	}
}

func parseSpeedup(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("bad speedup %q: %v", s, err)
	}
	return v
}

func TestE9Shape(t *testing.T) {
	tbl, err := E9PublishBatch(12, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d: %v", len(tbl.Rows), tbl.Rows)
	}
	for _, row := range tbl.Rows {
		if len(row) != 6 {
			t.Fatalf("row shape: %v", row)
		}
	}
}
