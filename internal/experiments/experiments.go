// Package experiments implements the quantitative experiment harness
// E1–E7 described in DESIGN.md §2. The SIGMOD'07 demo paper itself has no
// evaluation tables; these experiments regenerate the measurable content of
// the companion papers it presents — update exchange with provenance
// (VLDB'07) and transaction reconciliation (SIGMOD'06) — on the synthetic
// workloads of internal/workload. cmd/orchestra-bench prints the tables;
// bench_test.go exposes the same workloads as testing.B benchmarks.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"orchestra/internal/datalog"
	"orchestra/internal/datalog/magic"
	"orchestra/internal/exchange"
	"orchestra/internal/mapping"
	"orchestra/internal/provenance"
	"orchestra/internal/recon"
	"orchestra/internal/schema"
	"orchestra/internal/updates"
	"orchestra/internal/workload"
)

// Stats, when non-nil, receives the datalog evaluator's counters from every
// experiment run: engines are built over it and the inline evaluations carry
// it in their Options. All fields are atomic, so one struct can span
// concurrent runs. cmd/orchestra-bench -metrics installs one and prints the
// per-experiment deltas; the testing.B benchmarks leave it nil.
var Stats *datalog.EvalStats

// engineConfig is the exchange configuration every experiment engine is
// built with — just the shared stats sink; tuning stays at defaults so the
// tables measure what they always measured.
func engineConfig() exchange.Config { return exchange.Config{Stats: Stats} }

// Table is one experiment's result table.
type Table struct {
	ID      string
	Caption string
	Header  []string
	Rows    [][]string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s: %s\n", t.ID, t.Caption)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
}

func dur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// seedEngine builds an exchange engine for a topology and inserts the O/P
// dimension rows needed so S streams join successfully.
func seedEngine(topo *workload.Topology, origin string, keySpace int, maxPid int) (*exchange.Engine, uint64, error) {
	eng, err := exchange.NewEngineWith(topo.Peers, topo.Mappings, engineConfig())
	if err != nil {
		return nil, 0, err
	}
	base := workload.OPBaseTxn(origin, 1, keySpace, maxPid)
	if _, err := eng.Apply(context.Background(), base); err != nil {
		return nil, 0, err
	}
	return eng, 2, nil
}

// ApplyStream pushes a transaction stream through an engine, returning the
// total number of derived per-peer updates. Exported for reuse by the
// testing.B benchmarks.
func ApplyStream(eng *exchange.Engine, txns []*updates.Transaction) (int, error) {
	derived := 0
	for _, t := range txns {
		res, err := eng.Apply(context.Background(), t)
		if err != nil {
			return 0, err
		}
		for _, us := range res.PerPeer {
			derived += len(us)
		}
	}
	return derived, nil
}

// BuildInsertWorkload prepares an engine over a join/split chain and an
// insert stream of n transactions at its head peer. Exported for the
// testing.B benchmarks.
func BuildInsertWorkload(n, txnSize int) (*exchange.Engine, []*updates.Transaction, error) {
	topo := workload.ChainJoinSplit(4)
	origin := topo.Names[0]
	keySpace := int(math.Ceil(math.Sqrt(float64(n * txnSize))))
	maxPid := n*txnSize/keySpace + 2
	eng, seq, err := seedEngine(topo, origin, keySpace, maxPid)
	if err != nil {
		return nil, nil, err
	}
	stream := workload.Stream(origin, seq, n, workload.StreamOpts{
		TxnSize: txnSize, KeySpace: int64(keySpace), Seed: 42,
	})
	return eng, stream, nil
}

// E1InsertionScaling measures update-exchange translation time as the
// number of published insertions grows (shape of VLDB'07's incremental
// insertion experiment: near-linear in the delta size).
func E1InsertionScaling(sizes []int) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Caption: "update-exchange translation time vs. published insertions (join/split chain of 4 peers)",
		Header:  []string{"insertions", "txns", "time", "µs/insert", "derived-updates"},
	}
	const txnSize = 5
	for _, n := range sizes {
		eng, stream, err := BuildInsertWorkload(n, txnSize)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		derived, err := ApplyStream(eng, stream)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		inserts := n * txnSize
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(inserts), fmt.Sprint(n), dur(elapsed),
			fmt.Sprintf("%.1f", float64(elapsed.Microseconds())/float64(inserts)),
			fmt.Sprint(derived),
		})
	}
	return t, nil
}

// BuildFig2Engine seeds a Figure 2 engine with base tuples at Alaska.
// Exported for the testing.B benchmarks.
func BuildFig2Engine(base int) (*exchange.Engine, uint64, error) {
	eng, err := exchange.NewEngineWith(workload.Figure2Peers(), workload.Figure2Mappings(), engineConfig())
	if err != nil {
		return nil, 0, err
	}
	keySpace := int(math.Ceil(math.Sqrt(float64(base))))
	seed := workload.OPBaseTxn(workload.Alaska, 1, keySpace, base/keySpace+2)
	if _, err := eng.Apply(context.Background(), seed); err != nil {
		return nil, 0, err
	}
	stream := workload.Stream(workload.Alaska, 2, base, workload.StreamOpts{
		TxnSize: 1, KeySpace: int64(keySpace), Seed: 7,
	})
	if _, err := ApplyStream(eng, stream); err != nil {
		return nil, 0, err
	}
	return eng, uint64(base) + 2, nil
}

// E2IncrementalVsFull compares incremental propagation of a delta against
// full recomputation of the union database (VLDB'07's headline result:
// incremental wins for small deltas, converging as delta → instance size).
func E2IncrementalVsFull(base int, fracs []float64) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Caption: fmt.Sprintf("incremental vs. full recomputation (Figure 2 CDSS, base %d S-tuples)", base),
		Header:  []string{"delta", "delta/base", "incremental", "full-recompute", "speedup"},
	}
	for _, frac := range fracs {
		d := int(float64(base) * frac)
		if d < 1 {
			d = 1
		}
		eng, seq, err := BuildFig2Engine(base)
		if err != nil {
			return nil, err
		}
		keySpace := int(math.Ceil(math.Sqrt(float64(base))))
		delta := workload.Stream(workload.Alaska, seq, d, workload.StreamOpts{
			TxnSize: 1, KeySpace: int64(keySpace), Seed: 99,
		})
		// Offset fresh keys so the delta does not collide with the base.
		for _, txn := range delta {
			for i := range txn.Updates {
				u := &txn.Updates[i]
				if u.New != nil {
					u.New = schema.NewTuple(u.New[0], schema.Int(u.New[1].IntVal()+int64(base)+1000), u.New[2])
				}
			}
		}
		start := time.Now()
		if _, err := ApplyStream(eng, delta); err != nil {
			return nil, err
		}
		inc := time.Since(start)
		start = time.Now()
		if _, err := eng.Recompute(context.Background()); err != nil {
			return nil, err
		}
		full := time.Since(start)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(d), fmt.Sprintf("%.1f%%", frac*100), dur(inc), dur(full),
			fmt.Sprintf("%.1fx", float64(full)/float64(inc)),
		})
	}
	return t, nil
}

// E3DeletionPropagation compares provenance-based deletion against full
// re-derivation (the provenance-semirings payoff: the deletion test is a
// polynomial restriction, not a recomputation).
func E3DeletionPropagation(base int, fracs []float64) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Caption: fmt.Sprintf("deletion propagation: provenance test vs. re-derivation (base %d S-tuples)", base),
		Header:  []string{"deletes", "frac", "provenance-delete", "re-derivation", "speedup"},
	}
	keySpace := int(math.Ceil(math.Sqrt(float64(base))))
	for _, frac := range fracs {
		d := int(float64(base) * frac)
		if d < 1 {
			d = 1
		}
		eng, seq, err := BuildFig2Engine(base)
		if err != nil {
			return nil, err
		}
		// Regenerate the same base stream to learn the inserted tuples.
		baseStream := workload.Stream(workload.Alaska, 2, base, workload.StreamOpts{
			TxnSize: 1, KeySpace: int64(keySpace), Seed: 7,
		})
		var delTxns []*updates.Transaction
		for i := 0; i < d && i < len(baseStream); i++ {
			ins := baseStream[i].Updates[0]
			delTxns = append(delTxns, &updates.Transaction{
				ID:      updates.TxnID{Peer: workload.Alaska, Seq: seq + uint64(i)},
				Updates: []updates.Update{updates.Delete("S", ins.New)},
			})
		}
		start := time.Now()
		if _, err := ApplyStream(eng, delTxns); err != nil {
			return nil, err
		}
		inc := time.Since(start)
		start = time.Now()
		if _, err := eng.Recompute(context.Background()); err != nil {
			return nil, err
		}
		full := time.Since(start)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(d), fmt.Sprintf("%.1f%%", frac*100), dur(inc), dur(full),
			fmt.Sprintf("%.1fx", float64(full)/float64(inc)),
		})
	}
	return t, nil
}

// BuildJoinEDB builds the acyclic join-mapping program and an EDB of n
// S-tuples (with dimension rows). Exported for the testing.B benchmarks.
func BuildJoinEDB(n int) (*datalog.Program, *datalog.DB, error) {
	m := workload.JoinMapping("M_AC", "a", "c")
	prog, err := mapping.Compile([]*mapping.Mapping{m})
	if err != nil {
		return nil, nil, err
	}
	keySpace := int(math.Ceil(math.Sqrt(float64(n))))
	edb := datalog.NewDB()
	for i := 0; i < keySpace; i++ {
		edb.AddTuple("a.O", workload.OTuple(workload.Organism(i), int64(i)))
	}
	for i := 0; i <= n/keySpace+1; i++ {
		edb.AddTuple("a.P", workload.PTuple(workload.Protein(i), int64(i)))
	}
	for i := 0; i < n; i++ {
		oid := int64(i % keySpace)
		pid := int64(i / keySpace)
		edb.AddTuple("a.S", workload.STuple(oid, pid, workload.Sequence(oid, pid)))
	}
	return prog, edb, nil
}

// E4ProvenanceOverhead isolates the cost of provenance bookkeeping:
// identical join workload evaluated with no provenance, witness-set B[X]
// provenance, and exact N[X] provenance (the VLDB'07 claim: a modest
// constant factor).
func E4ProvenanceOverhead(n int) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Caption: fmt.Sprintf("provenance overhead ablation (3-way join of %d S-tuples)", n),
		Header:  []string{"mode", "time", "facts", "slowdown-vs-none"},
	}
	prog, edb, err := BuildJoinEDB(n)
	if err != nil {
		return nil, err
	}
	modes := []struct {
		name string
		opts datalog.Options
	}{
		{"none", datalog.Options{Stats: Stats}},
		{"witness-B[X]", datalog.Options{Provenance: true, Stats: Stats}},
		{"exact-N[X]", datalog.Options{Provenance: true, Exact: true, Stats: Stats}},
	}
	var baseline time.Duration
	for i, m := range modes {
		start := time.Now()
		res, err := datalog.Eval(prog, edb, m.opts)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		if i == 0 {
			baseline = elapsed
		}
		t.Rows = append(t.Rows, []string{
			m.name, dur(elapsed), fmt.Sprint(res.Size()),
			fmt.Sprintf("%.2fx", float64(elapsed)/float64(baseline)),
		})
	}
	return t, nil
}

// BuildReconWorkload prepares a reconciliation state and the interleaved
// candidate stream for n transaction pairs at the given conflict rate.
// Exported for the testing.B benchmarks.
func BuildReconWorkload(n int, rate float64) (*recon.State, []*updates.Transaction) {
	s1 := workload.Sigma1()
	keyOf := func(rel string, tu schema.Tuple) schema.Tuple {
		r := s1.Relation(rel)
		if r == nil {
			return tu
		}
		return r.KeyOf(tu)
	}
	st := recon.NewState(keyOf)
	a, b := workload.ConflictingStreams("peerA", "peerB", n, rate, 5)
	mixed := make([]*updates.Transaction, 0, 2*n)
	for i := range a {
		mixed = append(mixed, a[i], b[i])
	}
	return st, mixed
}

// E5Reconciliation measures reconciliation time against transaction count
// and conflict rate (shape of SIGMOD'06: near-linear in transactions, with
// a conflict-rate-dependent constant and deferred count).
func E5Reconciliation(sizes []int, rates []float64) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Caption: "reconciliation time vs. transactions and conflict rate (two publishers)",
		Header:  []string{"txns", "conflict-rate", "time", "µs/txn", "accepted", "deferred"},
	}
	for _, n := range sizes {
		for _, rate := range rates {
			st, mixed := BuildReconWorkload(n, rate)
			start := time.Now()
			out, err := st.Reconcile(recon.TrustAll(1), mixed)
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(len(mixed)), fmt.Sprintf("%.0f%%", rate*100), dur(elapsed),
				fmt.Sprintf("%.1f", float64(elapsed.Microseconds())/float64(len(mixed))),
				fmt.Sprint(len(out.Accepted)), fmt.Sprint(len(out.Deferred)),
			})
		}
	}
	return t, nil
}

// E7WitnessBound ablates the bounded-witness-set design decision
// (DESIGN.md §4.1/§6.1): the same mesh workload is translated under
// different MaxMonomials bounds, including unbounded. Dense topologies are
// where unbounded witness sets blow up combinatorially.
func E7WitnessBound(peers, txns int, bounds []int) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Caption: fmt.Sprintf("witness-set bound ablation (%d-peer identity mesh, %d single-insert txns)", peers, txns),
		Header:  []string{"max-monomials", "time", "max-witnesses/tuple", "derived-updates"},
	}
	for _, bound := range bounds {
		topo := workload.Mesh(peers)
		origin := topo.Names[0]
		prog, err := mapping.Compile(topo.Mappings)
		if err != nil {
			return nil, err
		}
		opts := datalog.Options{Provenance: true, ChaseSubsumption: true, MaxMonomials: bound, Stats: Stats}
		inc, err := datalog.NewIncremental(prog, datalog.NewDB(), opts)
		if err != nil {
			return nil, err
		}
		stream := workload.Stream(origin, 1, txns, workload.StreamOpts{TxnSize: 1, Seed: 11})
		start := time.Now()
		derived := 0
		for _, txn := range stream {
			for i, u := range txn.Updates {
				cs, err := inc.Insert(context.Background(), []datalog.Fact2{{
					Pred:  mapping.Qualify(origin, u.Rel),
					Tuple: u.New,
					Prov:  provenance.NewVar(txn.Token(i)),
				}})
				if err != nil {
					return nil, err
				}
				derived += len(cs)
			}
		}
		elapsed := time.Since(start)
		maxW := 0
		for _, pred := range inc.DB().Preds() {
			for _, f := range inc.DB().Rel(pred).Facts() {
				if n := f.Prov.NumMonomials(); n > maxW {
					maxW = n
				}
			}
		}
		label := fmt.Sprint(bound)
		if bound == 0 {
			label = "unbounded"
		}
		t.Rows = append(t.Rows, []string{label, dur(elapsed), fmt.Sprint(maxW), fmt.Sprint(derived)})
	}
	return t, nil
}

// E6Topologies sweeps mapping topologies and peer counts, measuring
// propagation cost of a fixed update stream (the CDSS scaling story of
// Sections 1–2: mapping count, not peer count alone, drives cost).
func E6Topologies(sizes []int, txns int) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Caption: fmt.Sprintf("topology sweep: translate %d single-insert txns from one peer", txns),
		Header:  []string{"topology", "peers", "mappings", "time", "derived-updates"},
	}
	kinds := []struct {
		name  string
		build func(int) *workload.Topology
	}{
		{"chain", workload.Chain},
		{"star", workload.Star},
		{"mesh", workload.Mesh},
	}
	for _, k := range kinds {
		for _, n := range sizes {
			topo := k.build(n)
			origin := topo.Names[0]
			keySpace := int(math.Ceil(math.Sqrt(float64(txns))))
			eng, seq, err := seedEngine(topo, origin, keySpace, txns/keySpace+2)
			if err != nil {
				return nil, err
			}
			stream := workload.Stream(origin, seq, txns, workload.StreamOpts{
				TxnSize: 1, KeySpace: int64(keySpace), Seed: 3,
			})
			start := time.Now()
			derived, err := ApplyStream(eng, stream)
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			t.Rows = append(t.Rows, []string{
				k.name, fmt.Sprint(n), fmt.Sprint(len(topo.Mappings)), dur(elapsed), fmt.Sprint(derived),
			})
		}
	}
	return t, nil
}

// PipelineBurst builds a burst of n insert transactions published
// round-robin by the first npub peers of a topology, txnSize S-tuples each,
// over a fresh key range. Exported for the testing.B benchmarks.
func PipelineBurst(topo *workload.Topology, n, npub, txnSize int) []*updates.Transaction {
	var txns []*updates.Transaction
	seqs := map[string]uint64{}
	key := int64(1 << 30)
	for i := 0; i < n; i++ {
		peer := topo.Names[i%npub]
		seqs[peer]++
		t := &updates.Transaction{ID: updates.TxnID{Peer: peer, Seq: seqs[peer]}}
		for j := 0; j < txnSize; j++ {
			t.Updates = append(t.Updates, updates.Insert("S", workload.STuple(key, key, workload.Sequence(key, key))))
			key++
		}
		txns = append(txns, t)
	}
	return txns
}

// E9PublishBatch measures group-commit update exchange: a multi-peer burst
// of published transactions translated one Apply per transaction versus one
// ApplyAll per burst (one seeded semi-naive fixpoint per insert-only run).
// Swept across topologies: the one-directional distribution pipeline (where
// per-transaction fixed costs dominate and group commit pays most), the
// bidirectional chain, and the identity mesh (where echo-convergence
// derivation work dominates and the win is smaller).
func E9PublishBatch(burst, npub int) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Caption: fmt.Sprintf("group-commit translation: %d-txn burst from %d peers, ApplyAll vs sequential Apply", burst, npub),
		Header:  []string{"topology", "peers", "mappings", "sequential", "grouped", "speedup"},
	}
	kinds := []struct {
		name string
		topo *workload.Topology
	}{
		{"pipeline", workload.Pipeline(6)},
		{"chain", workload.Chain(4)},
		{"mesh", workload.Mesh(4)},
	}
	for _, k := range kinds {
		txns := PipelineBurst(k.topo, burst, npub, 1)
		seqEng, err := exchange.NewEngineWith(k.topo.Peers, k.topo.Mappings, engineConfig())
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := ApplyStream(seqEng, txns); err != nil {
			return nil, err
		}
		seq := time.Since(start)
		batEng, err := exchange.NewEngineWith(k.topo.Peers, k.topo.Mappings, engineConfig())
		if err != nil {
			return nil, err
		}
		start = time.Now()
		if _, err := batEng.ApplyAll(context.Background(), txns); err != nil {
			return nil, err
		}
		bat := time.Since(start)
		t.Rows = append(t.Rows, []string{
			k.name, fmt.Sprint(len(k.topo.Names)), fmt.Sprint(len(k.topo.Mappings)),
			dur(seq), dur(bat), fmt.Sprintf("%.2fx", float64(seq)/float64(bat)),
		})
	}
	return t, nil
}

// E8GoalDirectedQuery measures the goal-directed query subsystem
// (internal/datalog/magic) on the E4 join workload: a point query binding a
// single organism key against the 3-way OPS join view, evaluated by the
// full fixpoint (materialize the view, then filter) and by the magic-sets
// rewrite under both SIP strategies. The goal-directed runs must return the
// same answers while touching only the bound key's join partners.
func E8GoalDirectedQuery(n int) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Caption: fmt.Sprintf("goal-directed point query vs full fixpoint (3-way join of %d S-tuples)", n),
		Header:  []string{"strategy", "time", "answers", "speedup-vs-full"},
	}
	prog, edb, err := BuildJoinEDB(n)
	if err != nil {
		return nil, err
	}
	goal := datalog.NewAtom("c.OPS",
		datalog.C(schema.String(workload.Organism(3))), datalog.V("p"), datalog.V("s"))
	opts := datalog.Options{Provenance: true, Stats: Stats}
	ctx := context.Background()

	start := time.Now()
	full, err := magic.EvalGoalFull(ctx, prog.Rules, goal, edb, opts)
	if err != nil {
		return nil, err
	}
	fullTime := time.Since(start)
	t.Rows = append(t.Rows, []string{"full-fixpoint", dur(fullTime), fmt.Sprint(len(full)), "1.00x"})

	for _, sip := range []magic.SIP{magic.LeftToRight, magic.MostBound} {
		start = time.Now()
		ans, goalDirected, err := magic.EvalGoal(ctx, prog.Rules, goal, edb, opts, magic.Options{SIP: sip})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		if !goalDirected {
			return nil, fmt.Errorf("E8: magic rewrite fell back to full evaluation")
		}
		if len(ans) != len(full) {
			return nil, fmt.Errorf("E8: goal-directed (%s) returned %d answers, full fixpoint %d",
				sip, len(ans), len(full))
		}
		t.Rows = append(t.Rows, []string{
			"goal-directed/" + sip.String(), dur(elapsed), fmt.Sprint(len(ans)),
			fmt.Sprintf("%.2fx", float64(fullTime)/float64(elapsed)),
		})
	}
	return t, nil
}

// BuildParallelStratum builds the worker-sweep workload: nrules independent
// two-way join rules over disjoint relations of nrows facts each, so one
// stratum round carries nrules embarrassingly parallel probe jobs — the
// update-exchange shape where many mapping rules fire over the same round.
// The same workload backs BenchmarkParallelStratum; keep them in sync.
func BuildParallelStratum(nrules, nrows int) (*datalog.Program, *datalog.DB) {
	prog := &datalog.Program{}
	edb := datalog.NewDB()
	for r := 0; r < nrules; r++ {
		ra, rb, rh := fmt.Sprintf("A%d", r), fmt.Sprintf("B%d", r), fmt.Sprintf("H%d", r)
		prog.Rules = append(prog.Rules, datalog.Rule{
			ID:   fmt.Sprintf("j%d", r),
			Head: datalog.NewHead(rh, datalog.HV("x"), datalog.HV("z")),
			Body: []datalog.Literal{
				datalog.Pos(datalog.NewAtom(ra, datalog.V("x"), datalog.V("y"))),
				datalog.Pos(datalog.NewAtom(rb, datalog.V("y"), datalog.V("z"))),
			},
		})
		for i := int64(0); i < int64(nrows); i++ {
			edb.AddTuple(ra, schema.NewTuple(schema.Int(i), schema.Int(i%97)))
			edb.AddTuple(rb, schema.NewTuple(schema.Int(i%97), schema.Int(i)))
		}
	}
	return prog, edb
}

// E10ParallelStratum measures the adaptive parallel stratum executor on the
// worker-sweep workload: sequential evaluation against explicit worker
// counts and the adaptive setting (workers sized per round from estimated
// probe work). Every run must derive the same facts; speedups below 1.00x
// on few-core machines are the expected cost-gate territory — the adaptive
// row is the one that must never fall meaningfully below sequential.
func E10ParallelStratum(nrules, nrows int, workers []int) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Caption: fmt.Sprintf("adaptive parallel stratum executor (%d join rules x %d rows)", nrules, nrows),
		Header:  []string{"workers", "time", "facts", "speedup-vs-seq"},
	}
	prog, edb := BuildParallelStratum(nrules, nrows)
	run := func(par int) (time.Duration, int, error) {
		start := time.Now()
		res, err := datalog.Eval(prog, edb, datalog.Options{Provenance: true, Parallelism: par, Stats: Stats})
		if err != nil {
			return 0, 0, err
		}
		elapsed := time.Since(start)
		facts := 0
		for _, pred := range res.Preds() {
			facts += res.Rel(pred).Len()
		}
		return elapsed, facts, nil
	}
	seqTime, seqFacts, err := run(-1)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"sequential", dur(seqTime), fmt.Sprint(seqFacts), "1.00x"})
	for _, w := range append(workers, 0) {
		label := fmt.Sprint(w)
		if w == 0 {
			label = "adaptive"
		}
		elapsed, facts, err := run(w)
		if err != nil {
			return nil, err
		}
		if facts != seqFacts {
			return nil, fmt.Errorf("E10: workers=%s derived %d facts, sequential %d", label, facts, seqFacts)
		}
		t.Rows = append(t.Rows, []string{label, dur(elapsed), fmt.Sprint(facts),
			fmt.Sprintf("%.2fx", float64(seqTime)/float64(elapsed))})
	}
	return t, nil
}
