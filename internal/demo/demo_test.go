package demo

import (
	"strings"
	"testing"

	"orchestra/internal/p2p"
	"orchestra/internal/workload"
)

func TestAllScenariosRun(t *testing.T) {
	want := map[int][]string{
		1: {"joined into OPS", "split into O,P,S", "OPS(mouse, p53, ACGT)"},
		2: {"accepted=[beijing:1]", "rejected=[dresden:1]", "dresden:1 is rejected"},
		3: {"alaska:1 is pending", "alaska:1=accepted beijing:1=accepted"},
		4: {"defers both", "rejected=[alaska:1]", "crete:1=accepted"},
		5: {"surviving replica", "accepted=[beijing:1]"},
	}
	for n := 1; n <= Scenarios(); n++ {
		var sb strings.Builder
		if err := Run(&sb, n); err != nil {
			t.Fatalf("scenario %d: %v", n, err)
		}
		out := sb.String()
		for _, frag := range want[n] {
			if !strings.Contains(out, frag) {
				t.Errorf("scenario %d transcript missing %q:\n%s", n, frag, out)
			}
		}
	}
}

func TestRunUnknownScenario(t *testing.T) {
	var sb strings.Builder
	if err := Run(&sb, 0); err == nil {
		t.Error("scenario 0 accepted")
	}
	if err := Run(&sb, 99); err == nil {
		t.Error("scenario 99 accepted")
	}
}

func TestNewFigure2TrustShape(t *testing.T) {
	peers, err := NewFigure2(p2p.NewMemoryStore())
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 4 {
		t.Fatalf("peers = %d", len(peers))
	}
	for _, name := range []string{workload.Alaska, workload.Beijing, workload.Crete, workload.Dresden} {
		if peers[name] == nil {
			t.Errorf("missing peer %s", name)
		}
	}
}
