// Package demo drives the paper's Section 4 demonstration scenarios over
// the Figure 2 CDSS programmatically, writing a transcript of each step.
// It backs cmd/orchestra-demo and the scenario regression tests.
package demo

import (
	"context"
	"fmt"
	"io"

	"orchestra/internal/core"
	"orchestra/internal/p2p"
	"orchestra/internal/recon"
	"orchestra/internal/workload"
)

// NewFigure2 builds a fresh Figure 2 confederation on the given store with
// the paper's trust relationships: Alaska, Beijing and Dresden trust all
// other participants equally; Crete trusts only Beijing and Dresden, and
// prefers Beijing in the event of a conflict.
func NewFigure2(store p2p.Store) (map[string]*core.Peer, error) {
	sys, err := core.NewSystem(workload.Figure2Peers(), workload.Figure2Mappings())
	if err != nil {
		return nil, err
	}
	policies := map[string]*recon.Policy{
		workload.Alaska:  recon.TrustAll(1),
		workload.Beijing: recon.TrustAll(1),
		workload.Dresden: recon.TrustAll(1),
		workload.Crete: {Conditions: []recon.Condition{
			recon.FromPeer(workload.Beijing, 2),
			recon.FromPeer(workload.Dresden, 1),
		}, Default: recon.Distrusted},
	}
	peers := map[string]*core.Peer{}
	for name, pol := range policies {
		p, err := core.NewPeer(name, sys, store, pol)
		if err != nil {
			return nil, err
		}
		peers[name] = p
	}
	return peers, nil
}

// Scenarios returns the number of demonstration scenarios.
func Scenarios() int { return 5 }

// Run executes demonstration scenario n (1-based) on a fresh CDSS, writing
// a transcript to w.
func Run(w io.Writer, n int) error {
	switch n {
	case 1:
		return scenario1(w)
	case 2:
		return scenario2(w)
	case 3:
		return scenario3(w)
	case 4:
		return scenario4(w)
	case 5:
		return scenario5(w)
	default:
		return fmt.Errorf("demo: no scenario %d (have 1..%d)", n, Scenarios())
	}
}

func dump(w io.Writer, p *core.Peer) {
	fmt.Fprintf(w, "  state of %s:\n", p.Name())
	empty := true
	for _, rel := range p.Instance().Schema().Relations() {
		for _, r := range p.Instance().Table(rel.Name).Rows() {
			fmt.Fprintf(w, "    %s%s\n", rel.Name, r.Tuple)
			empty = false
		}
	}
	if empty {
		fmt.Fprintln(w, "    (empty)")
	}
}

func scenario1(w io.Writer) error {
	peers, err := NewFigure2(p2p.NewMemoryStore())
	if err != nil {
		return err
	}
	alaska, dresden := peers[workload.Alaska], peers[workload.Dresden]
	fmt.Fprintln(w, "Alaska inserts O(mouse,1), P(p53,10), S(1,10,ACGT); publishes.")
	if _, err := alaska.NewTransaction().
		Insert("O", workload.OTuple("mouse", 1)).
		Insert("P", workload.PTuple("p53", 10)).
		Insert("S", workload.STuple(1, 10, "ACGT")).Commit(); err != nil {
		return err
	}
	if _, err := alaska.Publish(context.Background()); err != nil {
		return err
	}
	if _, err := dresden.Reconcile(context.Background()); err != nil {
		return err
	}
	fmt.Fprintln(w, "Dresden reconciles; the Σ1 tuples arrive joined into OPS.")
	dump(w, dresden)
	fmt.Fprintln(w, "Dresden inserts OPS(fly,myc,GGGG); Alaska receives it split into O,P,S.")
	if _, err := dresden.NewTransaction().
		Insert("OPS", workload.OPSTuple("fly", "myc", "GGGG")).Commit(); err != nil {
		return err
	}
	if _, err := dresden.Publish(context.Background()); err != nil {
		return err
	}
	if _, err := alaska.Reconcile(context.Background()); err != nil {
		return err
	}
	dump(w, alaska)
	return nil
}

func scenario2(w io.Writer) error {
	peers, err := NewFigure2(p2p.NewMemoryStore())
	if err != nil {
		return err
	}
	beijing, crete, dresden := peers[workload.Beijing], peers[workload.Crete], peers[workload.Dresden]
	fmt.Fprintln(w, "Beijing and Dresden publish conflicting sequence data for (mouse,p53).")
	if _, err := beijing.NewTransaction().
		Insert("O", workload.OTuple("mouse", 1)).
		Insert("P", workload.PTuple("p53", 10)).
		Insert("S", workload.STuple(1, 10, "AAAA")).Commit(); err != nil {
		return err
	}
	if _, err := beijing.Publish(context.Background()); err != nil {
		return err
	}
	dTxn, err := dresden.NewTransaction().
		Insert("OPS", workload.OPSTuple("mouse", "p53", "CCCC")).Commit()
	if err != nil {
		return err
	}
	if _, err := dresden.Publish(context.Background()); err != nil {
		return err
	}
	r, err := crete.Reconcile(context.Background())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Crete (prefers Beijing) reconciles: accepted=%v rejected=%v\n",
		r.Accepted, r.Rejected)
	dump(w, crete)
	fmt.Fprintln(w, "Dresden publishes a follow-up depending on its rejected update.")
	if _, err := dresden.NewTransaction().
		Modify("OPS", workload.OPSTuple("mouse", "p53", "CCCC"),
			workload.OPSTuple("mouse", "p53", "TTTT")).Commit(); err != nil {
		return err
	}
	if _, err := dresden.Publish(context.Background()); err != nil {
		return err
	}
	r, err = crete.Reconcile(context.Background())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Crete rejects the dependent follow-up too: rejected=%v (dresden:1 is %s)\n",
		r.Rejected, crete.Status(dTxn.ID))
	return nil
}

func scenario3(w io.Writer) error {
	peers, err := NewFigure2(p2p.NewMemoryStore())
	if err != nil {
		return err
	}
	alaska, beijing, crete := peers[workload.Alaska], peers[workload.Beijing], peers[workload.Crete]
	fmt.Fprintln(w, "Alaska publishes several data points in one transaction.")
	aTxn, err := alaska.NewTransaction().
		Insert("O", workload.OTuple("rat", 2)).
		Insert("P", workload.PTuple("ins", 20)).
		Insert("S", workload.STuple(2, 20, "AAAA")).Commit()
	if err != nil {
		return err
	}
	if _, err := alaska.Publish(context.Background()); err != nil {
		return err
	}
	if _, err := crete.Reconcile(context.Background()); err != nil {
		return err
	}
	fmt.Fprintf(w, "Crete does not trust Alaska: alaska:1 is %s.\n", crete.Status(aTxn.ID))
	fmt.Fprintln(w, "Beijing reconciles and publishes a modification of one tuple.")
	if _, err := beijing.Reconcile(context.Background()); err != nil {
		return err
	}
	bTxn, err := beijing.NewTransaction().
		Modify("S", workload.STuple(2, 20, "AAAA"), workload.STuple(2, 20, "TTTT")).Commit()
	if err != nil {
		return err
	}
	if _, err := beijing.Publish(context.Background()); err != nil {
		return err
	}
	if _, err := crete.Reconcile(context.Background()); err != nil {
		return err
	}
	fmt.Fprintf(w, "Crete accepts Beijing's txn AND the untrusted antecedent: alaska:1=%s beijing:1=%s\n",
		crete.Status(aTxn.ID), crete.Status(bTxn.ID))
	dump(w, crete)
	return nil
}

func scenario4(w io.Writer) error {
	peers, err := NewFigure2(p2p.NewMemoryStore())
	if err != nil {
		return err
	}
	alaska, beijing := peers[workload.Alaska], peers[workload.Beijing]
	crete, dresden := peers[workload.Crete], peers[workload.Dresden]
	fmt.Fprintln(w, "Beijing and Alaska publish conflicting updates.")
	bTxn, err := beijing.NewTransaction().
		Insert("O", workload.OTuple("fly", 3)).
		Insert("P", workload.PTuple("tnf", 30)).
		Insert("S", workload.STuple(3, 30, "XXXX")).Commit()
	if err != nil {
		return err
	}
	if _, err := beijing.Publish(context.Background()); err != nil {
		return err
	}
	aTxn, err := alaska.NewTransaction().
		Insert("O", workload.OTuple("fly", 3)).
		Insert("P", workload.PTuple("tnf", 30)).
		Insert("S", workload.STuple(3, 30, "YYYY")).Commit()
	if err != nil {
		return err
	}
	if _, err := alaska.Publish(context.Background()); err != nil {
		return err
	}
	r, err := dresden.Reconcile(context.Background())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Dresden (trusts both equally) defers both: %v\n", r.Deferred)
	fmt.Fprintln(w, "Crete accepts Beijing's and publishes a modification of it.")
	if _, err := crete.Reconcile(context.Background()); err != nil {
		return err
	}
	cTxn, err := crete.NewTransaction().
		Modify("OPS", workload.OPSTuple("fly", "tnf", "XXXX"),
			workload.OPSTuple("fly", "tnf", "ZZZZ")).Commit()
	if err != nil {
		return err
	}
	if _, err := crete.Publish(context.Background()); err != nil {
		return err
	}
	r, err = dresden.Reconcile(context.Background())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Dresden defers Crete's dependent update: %v\n", r.Deferred)
	fmt.Fprintln(w, "Dresden's administrator resolves the conflict in favor of Beijing.")
	rr, err := dresden.Resolve(context.Background(), bTxn.ID)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Resolution: accepted=%v rejected=%v\n", rr.Accepted, rr.Rejected)
	fmt.Fprintf(w, "Final statuses at Dresden: beijing:1=%s alaska:1=%s crete:1=%s\n",
		dresden.Status(bTxn.ID), dresden.Status(aTxn.ID), dresden.Status(cTxn.ID))
	dump(w, dresden)
	return nil
}

func scenario5(w io.Writer) error {
	srv1, err := p2p.NewServer(p2p.NewMemoryStore(), "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv2, err := p2p.NewServer(p2p.NewMemoryStore(), "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv2.Close()
	mkStore := func() p2p.Store {
		return p2p.NewReplicatedStore(p2p.NewClient(srv1.Addr()), p2p.NewClient(srv2.Addr()))
	}
	peersB, err := NewFigure2(mkStore())
	if err != nil {
		srv1.Close()
		return err
	}
	// Alaska uses its own replicated-store handle, as it would in a real
	// deployment.
	peersA, err := NewFigure2(mkStore())
	if err != nil {
		srv1.Close()
		return err
	}
	beijing, alaska := peersB[workload.Beijing], peersA[workload.Alaska]
	fmt.Fprintf(w, "Update store replicas at %s and %s.\n", srv1.Addr(), srv2.Addr())
	fmt.Fprintln(w, "Beijing publishes a number of updates...")
	if _, err := beijing.NewTransaction().
		Insert("O", workload.OTuple("worm", 4)).
		Insert("P", workload.PTuple("dmd", 40)).
		Insert("S", workload.STuple(4, 40, "CAGT")).Commit(); err != nil {
		srv1.Close()
		return err
	}
	if _, err := beijing.Publish(context.Background()); err != nil {
		srv1.Close()
		return err
	}
	fmt.Fprintln(w, "...and goes offline (replica 1 goes down with it).")
	srv1.Close()
	r, err := alaska.Reconcile(context.Background())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Alaska reconciles from the surviving replica: accepted=%v\n", r.Accepted)
	dump(w, alaska)
	return nil
}
