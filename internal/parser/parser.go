package parser

import (
	"fmt"
	"strconv"
	"strings"

	"orchestra/internal/datalog"
	"orchestra/internal/mapping"
	"orchestra/internal/schema"
)

// parser walks a token stream.
type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token       { return p.toks[p.i] }
func (p *parser) next() token       { t := p.toks[p.i]; p.i++; return t }
func (p *parser) at(k tokKind) bool { return p.toks[p.i].kind == k }

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("parser: line %d: expected %s, got %q", t.line, what, t.text)
	}
	return t, nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("parser: line %d: %s", p.peek().line, fmt.Sprintf(format, args...))
}

// parseTerm parses a variable or constant.
func (p *parser) parseTerm() (datalog.Term, error) {
	t := p.next()
	switch t.kind {
	case tokIdent:
		switch t.text {
		case "true":
			return datalog.C(schema.Bool(true)), nil
		case "false":
			return datalog.C(schema.Bool(false)), nil
		}
		if strings.Contains(t.text, ".") {
			return datalog.Term{}, fmt.Errorf("parser: line %d: qualified name %q cannot be a term", t.line, t.text)
		}
		return datalog.V(t.text), nil
	case tokString:
		return datalog.C(schema.String(t.text)), nil
	case tokNumber:
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return datalog.Term{}, fmt.Errorf("parser: line %d: bad float %q", t.line, t.text)
			}
			return datalog.C(schema.Float(f)), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return datalog.Term{}, fmt.Errorf("parser: line %d: bad int %q", t.line, t.text)
		}
		return datalog.C(schema.Int(n)), nil
	default:
		return datalog.Term{}, fmt.Errorf("parser: line %d: expected term, got %q", t.line, t.text)
	}
}

// parseAtom parses Pred(t1, ..., tn).
func (p *parser) parseAtom() (datalog.Atom, error) {
	name, err := p.expect(tokIdent, "predicate name")
	if err != nil {
		return datalog.Atom{}, err
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return datalog.Atom{}, err
	}
	var terms []datalog.Term
	if !p.at(tokRParen) {
		for {
			t, err := p.parseTerm()
			if err != nil {
				return datalog.Atom{}, err
			}
			terms = append(terms, t)
			if p.at(tokComma) {
				p.next()
				continue
			}
			break
		}
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return datalog.Atom{}, err
	}
	return datalog.NewAtom(name.text, terms...), nil
}

var ops = map[string]datalog.CmpOp{
	"=": datalog.OpEq, "!=": datalog.OpNe,
	"<": datalog.OpLt, "<=": datalog.OpLe,
	">": datalog.OpGt, ">=": datalog.OpGe,
}

// parseLiteral parses one body element: atom, !atom, or comparison.
func (p *parser) parseLiteral() (datalog.Literal, error) {
	if p.at(tokBang) {
		p.next()
		a, err := p.parseAtom()
		if err != nil {
			return datalog.Literal{}, err
		}
		return datalog.Neg(a), nil
	}
	// Lookahead: ident followed by '(' is an atom; otherwise it must be a
	// comparison's left term.
	if p.at(tokIdent) && p.toks[p.i+1].kind == tokLParen {
		a, err := p.parseAtom()
		if err != nil {
			return datalog.Literal{}, err
		}
		return datalog.Pos(a), nil
	}
	left, err := p.parseTerm()
	if err != nil {
		return datalog.Literal{}, err
	}
	opTok, err := p.expect(tokOp, "comparison operator")
	if err != nil {
		return datalog.Literal{}, err
	}
	op, ok := ops[opTok.text]
	if !ok {
		return datalog.Literal{}, fmt.Errorf("parser: line %d: unknown operator %q", opTok.line, opTok.text)
	}
	right, err := p.parseTerm()
	if err != nil {
		return datalog.Literal{}, err
	}
	return datalog.Cmp(left, op, right), nil
}

// parseBody parses comma-separated literals up to the rule period.
func (p *parser) parseBody() ([]datalog.Literal, error) {
	var body []datalog.Literal
	for {
		l, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		body = append(body, l)
		if p.at(tokComma) {
			p.next()
			continue
		}
		return body, nil
	}
}

// ruleText is one parsed rule before conversion: head atoms and body.
type ruleText struct {
	heads []datalog.Atom
	body  []datalog.Literal
}

// parseRuleText parses: atom (, atom)* :- literal (, literal)* '.'
func (p *parser) parseRuleText() (*ruleText, error) {
	var heads []datalog.Atom
	for {
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		heads = append(heads, a)
		if p.at(tokComma) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokArrow, "':-'"); err != nil {
		return nil, err
	}
	body, err := p.parseBody()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPeriod, "'.'"); err != nil {
		return nil, err
	}
	return &ruleText{heads: heads, body: body}, nil
}

// ParseRules parses a newline/period-separated list of single-head datalog
// rules. Rule IDs are "r0", "r1", ... unless the text is empty.
func ParseRules(src string) ([]datalog.Rule, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var rules []datalog.Rule
	for !p.at(tokEOF) {
		rt, err := p.parseRuleText()
		if err != nil {
			return nil, err
		}
		if len(rt.heads) != 1 {
			return nil, fmt.Errorf("parser: datalog rules take exactly one head atom (got %d); use ParseMapping for tgds", len(rt.heads))
		}
		terms := make([]datalog.HeadTerm, len(rt.heads[0].Terms))
		for i, t := range rt.heads[0].Terms {
			if t.IsVar() {
				terms[i] = datalog.HV(t.Name)
			} else {
				terms[i] = datalog.HC(t.Value)
			}
		}
		rules = append(rules, datalog.Rule{
			ID:   fmt.Sprintf("r%d", len(rules)),
			Head: datalog.Head{Pred: rt.heads[0].Pred, Terms: terms},
			Body: rt.body,
		})
	}
	return rules, nil
}

// ParseMapping parses one tgd with a (possibly multi-atom) head into a
// schema mapping. All predicates must be peer-qualified; source and target
// peers are inferred from the qualifications, which must be consistent.
func ParseMapping(id, src string) (*mapping.Mapping, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	rt, err := p.parseRuleText()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF) {
		return nil, fmt.Errorf("parser: mapping %s: trailing input after rule", id)
	}
	return mappingFromRule(id, rt)
}

// ParseMappings parses a block of "Mid: tgd." declarations, one mapping per
// rule, where each rule is preceded by "<id>:" on the same logical line:
//
//	M_AC: crete.OPS(org, prot, seq) :- alaska.O(org, oid), ... .
//
// For convenience it also accepts rules without an id prefix, naming them
// "M<n>".
func ParseMappings(src string) ([]*mapping.Mapping, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []*mapping.Mapping
	for !p.at(tokEOF) {
		id := fmt.Sprintf("M%d", len(out))
		// Optional "ident :" prefix — detected as ident followed by an
		// arrow NOT preceded by an atom; simplest reliable signal: ident
		// followed by tokOp "="? We instead require the explicit form
		// "id = rule": ident '=' rule.
		if p.at(tokIdent) && p.toks[p.i+1].kind == tokOp && p.toks[p.i+1].text == "=" {
			id = p.next().text
			p.next() // '='
		}
		rt, err := p.parseRuleText()
		if err != nil {
			return nil, err
		}
		m, err := mappingFromRule(id, rt)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

func mappingFromRule(id string, rt *ruleText) (*mapping.Mapping, error) {
	var source, target string
	for _, l := range rt.body {
		if l.Builtin != nil {
			continue
		}
		peer, _, err := mapping.SplitQualified(l.Atom.Pred)
		if err != nil {
			return nil, fmt.Errorf("parser: mapping %s: predicate %q must be peer-qualified", id, l.Atom.Pred)
		}
		if source == "" {
			source = peer
		} else if source != peer {
			return nil, fmt.Errorf("parser: mapping %s: body mixes peers %s and %s", id, source, peer)
		}
	}
	for _, a := range rt.heads {
		peer, _, err := mapping.SplitQualified(a.Pred)
		if err != nil {
			return nil, fmt.Errorf("parser: mapping %s: predicate %q must be peer-qualified", id, a.Pred)
		}
		if target == "" {
			target = peer
		} else if target != peer {
			return nil, fmt.Errorf("parser: mapping %s: head mixes peers %s and %s", id, target, peer)
		}
	}
	m := &mapping.Mapping{ID: id, Source: source, Target: target, Body: rt.body, Head: rt.heads}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
