package parser

import (
	"strings"
	"testing"

	"orchestra/internal/datalog"
	"orchestra/internal/mapping"
	"orchestra/internal/provenance"
	"orchestra/internal/schema"
)

func TestParseRulesTC(t *testing.T) {
	rules, err := ParseRules(`
		# transitive closure
		T(x, y) :- E(x, y).
		T(x, z) :- T(x, y), E(y, z).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("rules = %d", len(rules))
	}
	prog := &datalog.Program{Rules: rules}
	edb := datalog.NewDB()
	edb.AddTuple("E", schema.NewTuple(schema.String("a"), schema.String("b")))
	edb.AddTuple("E", schema.NewTuple(schema.String("b"), schema.String("c")))
	res, err := datalog.Eval(prog, edb, datalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel("T").Len() != 3 {
		t.Errorf("T = %v", res.Rel("T").Facts())
	}
}

func TestParseRuleFeatures(t *testing.T) {
	rules, err := ParseRules(`
		Out(x, "tag", 42, 2.5, true) :- In(x), x < 10, x != 3, !Skip(x).
	`)
	if err != nil {
		t.Fatal(err)
	}
	r := rules[0]
	if len(r.Head.Terms) != 5 {
		t.Fatalf("head = %v", r.Head)
	}
	if r.Head.Terms[1].Term.Value.Str() != "tag" {
		t.Errorf("string constant = %v", r.Head.Terms[1])
	}
	if r.Head.Terms[2].Term.Value.IntVal() != 42 {
		t.Errorf("int constant = %v", r.Head.Terms[2])
	}
	if r.Head.Terms[3].Term.Value.FloatVal() != 2.5 {
		t.Errorf("float constant = %v", r.Head.Terms[3])
	}
	if !r.Head.Terms[4].Term.Value.BoolVal() {
		t.Errorf("bool constant = %v", r.Head.Terms[4])
	}
	if len(r.Body) != 4 {
		t.Fatalf("body = %v", r.Body)
	}
	if r.Body[1].Builtin == nil || r.Body[1].Builtin.Op != datalog.OpLt {
		t.Errorf("builtin = %v", r.Body[1])
	}
	if r.Body[2].Builtin == nil || r.Body[2].Builtin.Op != datalog.OpNe {
		t.Errorf("builtin = %v", r.Body[2])
	}
	if !r.Body[3].Negated {
		t.Errorf("negation = %v", r.Body[3])
	}
}

func TestParseStringEscapes(t *testing.T) {
	rules, err := ParseRules(`Out(x) :- In(x, "a\"b\\c\nd\te").`)
	if err != nil {
		t.Fatal(err)
	}
	got := rules[0].Body[0].Atom.Terms[1].Value.Str()
	if got != "a\"b\\c\nd\te" {
		t.Errorf("escaped string = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                       // empty is fine -> zero rules (not error); skip below
		"T(x y) :- E(x, y).",     // missing comma
		"T(x) :- E(x)",           // missing period
		"T(x) :- .",              // empty body element
		"T(x) :- E(x), x << 3.",  // bad operator
		`T(x) :- E(x, "unterm).`, // unterminated string
		"T(x) :- E(x) :- F(x).",  // double arrow
		"T(x) :- E(x), !G(x.y).", // qualified term
		"T(-) :- E(x).",          // bare minus
	}
	for _, c := range cases[1:] {
		if _, err := ParseRules(c); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
	rules, err := ParseRules(cases[0])
	if err != nil || len(rules) != 0 {
		t.Errorf("empty input: %v %v", rules, err)
	}
}

// The REPL's query command parses with ParseRules: the first rule is the
// goal, later rules define views (see internal/repl).
func TestParseQueryShapedRules(t *testing.T) {
	rules, err := ParseRules(`q(org, seq) :- O(org, oid), S(oid, pid, seq). v(x) :- O(x, y).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("rules = %v", rules)
	}
	head := rules[0].Head
	if head.Pred != "q" || len(head.Terms) != 2 ||
		head.Terms[0].Term.Name != "org" || head.Terms[1].Term.Name != "seq" {
		t.Errorf("goal head = %v", head)
	}
	if len(rules[0].Body) != 2 {
		t.Errorf("goal body = %v", rules[0].Body)
	}
}

func TestParseMappingJoin(t *testing.T) {
	m, err := ParseMapping("M_AC", `
		crete.OPS(org, prot, seq) :-
			alaska.O(org, oid), alaska.P(prot, pid), alaska.S(oid, pid, seq).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if m.Source != "alaska" || m.Target != "crete" {
		t.Errorf("peers = %s -> %s", m.Source, m.Target)
	}
	if len(m.ExistentialVars()) != 0 {
		t.Errorf("existentials = %v", m.ExistentialVars())
	}
	if _, err := mapping.Compile([]*mapping.Mapping{m}); err != nil {
		t.Fatal(err)
	}
}

func TestParseMappingSplitWithExistentials(t *testing.T) {
	m, err := ParseMapping("M_CA", `
		alaska.O(org, oid), alaska.P(prot, pid), alaska.S(oid, pid, seq) :-
			crete.OPS(org, prot, seq).
	`)
	if err != nil {
		t.Fatal(err)
	}
	ex := m.ExistentialVars()
	if len(ex) != 2 || ex[0] != "oid" || ex[1] != "pid" {
		t.Errorf("existentials = %v", ex)
	}
	// The parsed split mapping behaves like the hand-built one.
	prog, err := mapping.Compile([]*mapping.Mapping{m})
	if err != nil {
		t.Fatal(err)
	}
	edb := datalog.NewDB()
	edb.Add("crete.OPS", schema.NewTuple(schema.String("fly"), schema.String("myc"), schema.String("G")),
		provenance.NewVar("x"))
	res, err := datalog.Eval(prog, edb, datalog.Options{Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel("alaska.O").Len() != 1 || res.Rel("alaska.S").Len() != 1 {
		t.Errorf("split output missing")
	}
}

func TestParseMappingErrors(t *testing.T) {
	cases := map[string]string{
		"unqualified body": `crete.OPS(o, p, s) :- O(o, oid).`,
		"unqualified head": `OPS(o, p, s) :- alaska.O(o, oid).`,
		"mixed body peers": `crete.OPS(o, p, s) :- alaska.O(o, x), beijing.P(p, y), alaska.S(x, y, s).`,
		"mixed head peers": `crete.OPS(o, p, s), dresden.OPS(o, p, s) :- alaska.O(o, p), alaska.S(o, p, s).`,
		"trailing input":   `crete.OPS(o, p, s) :- alaska.X(o, p, s). extra`,
	}
	for name, src := range cases {
		if _, err := ParseMapping("M", src); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestParseMappingsBlock(t *testing.T) {
	ms, err := ParseMappings(`
		# the Figure 2 non-identity mappings
		M_AC = crete.OPS(org, prot, seq) :-
			alaska.O(org, oid), alaska.P(prot, pid), alaska.S(oid, pid, seq).
		M_CA = alaska.O(org, oid), alaska.P(prot, pid), alaska.S(oid, pid, seq) :-
			crete.OPS(org, prot, seq).
		// anonymous mapping gets a generated id
		dresden.OPS(o, p, s) :- crete.OPS(o, p, s).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("mappings = %d", len(ms))
	}
	if ms[0].ID != "M_AC" || ms[1].ID != "M_CA" || ms[2].ID != "M2" {
		t.Errorf("ids = %s %s %s", ms[0].ID, ms[1].ID, ms[2].ID)
	}
	if _, err := mapping.Compile(ms); err != nil {
		t.Fatal(err)
	}
}

func TestParsedEqualsHandBuilt(t *testing.T) {
	// The parsed join mapping produces the same rules as workload's
	// hand-built one (modulo rule ids).
	m, err := ParseMapping("M_AC", `
		crete.OPS(org, prot, seq) :- alaska.O(org, oid), alaska.P(prot, pid), alaska.S(oid, pid, seq).
	`)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := m.Rules()
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 {
		t.Fatalf("rules = %d", len(rules))
	}
	got := rules[0].String()
	if !strings.Contains(got, "crete.OPS(org, prot, seq)") ||
		!strings.Contains(got, "alaska.S(oid, pid, seq)") {
		t.Errorf("rule = %s", got)
	}
}
