// Package parser provides the textual syntax for ORCHESTRA's rules,
// queries, and schema mappings, so mappings can live in configuration
// files instead of Go code:
//
//	crete.OPS(org, prot, seq) :- alaska.O(org, oid),
//	                             alaska.P(prot, pid),
//	                             alaska.S(oid, pid, seq).
//
// Syntax summary:
//
//   - Atoms: Pred(t1, ..., tn); predicates may be qualified (peer.Rel).
//   - Terms: bare identifiers are variables; "double-quoted" strings,
//     integers, floats, and true/false are constants.
//   - Body literals separated by commas: atoms, negated atoms (!Atom(...)),
//     and comparisons (x < 5, y != "z") with = != < <= > >=.
//   - Rules end with a period. Line comments start with # or //.
//   - Mappings are tgd rules whose heads may list several atoms separated
//     by commas and may use head-only (existential) variables, which the
//     mapping compiler Skolemizes.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token types.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokString
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokPeriod
	tokArrow // :-
	tokBang  // !
	tokOp    // = != < <= > >=
)

type token struct {
	kind tokKind
	text string
	pos  int // byte offset, for errors
	line int
}

// lexer tokenizes rule text.
type lexer struct {
	src    string
	pos    int
	line   int
	tokens []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			l.skipLine()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLine()
		case c == '(':
			l.emit(tokLParen, "(")
		case c == ')':
			l.emit(tokRParen, ")")
		case c == ',':
			l.emit(tokComma, ",")
		case c == '.':
			// A period inside a qualified identifier is handled by
			// lexIdent; here it terminates a rule.
			l.emit(tokPeriod, ".")
		case c == '!':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.emitN(tokOp, "!=", 2)
			} else {
				l.emit(tokBang, "!")
			}
		case c == ':':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
				l.emitN(tokArrow, ":-", 2)
			} else {
				return nil, fmt.Errorf("parser: line %d: unexpected ':'", l.line)
			}
		case c == '=':
			l.emit(tokOp, "=")
		case c == '<':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.emitN(tokOp, "<=", 2)
			} else {
				l.emit(tokOp, "<")
			}
		case c == '>':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.emitN(tokOp, ">=", 2)
			} else {
				l.emit(tokOp, ">")
			}
		case c == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '-' || (c >= '0' && c <= '9'):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		default:
			if isIdentStart(rune(c)) {
				l.lexIdent()
			} else {
				return nil, fmt.Errorf("parser: line %d: unexpected character %q", l.line, c)
			}
		}
	}
	l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos, line: l.line})
	return l.tokens, nil
}

func (l *lexer) skipLine() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
}

func (l *lexer) emit(k tokKind, text string) { l.emitN(k, text, len(text)) }

func (l *lexer) emitN(k tokKind, text string, n int) {
	l.tokens = append(l.tokens, token{kind: k, text: text, pos: l.pos, line: l.line})
	l.pos += n
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '-' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// lexIdent consumes an identifier, optionally qualified by a single dot
// (peer.Relation). A trailing dot followed by a non-identifier stays a
// period token (rule terminator).
func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	// Qualified name: ident '.' ident with no spaces.
	if l.pos+1 < len(l.src) && l.src[l.pos] == '.' && isIdentStart(rune(l.src[l.pos+1])) {
		l.pos++
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
	}
	l.tokens = append(l.tokens, token{kind: tokIdent, text: l.src[start:l.pos], pos: start, line: l.line})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\\' && l.pos+1 < len(l.src) {
			next := l.src[l.pos+1]
			switch next {
			case '"', '\\':
				sb.WriteByte(next)
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			default:
				return fmt.Errorf("parser: line %d: unknown escape \\%c", l.line, next)
			}
			l.pos += 2
			continue
		}
		if c == '"' {
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokString, text: sb.String(), pos: start, line: l.line})
			return nil
		}
		if c == '\n' {
			return fmt.Errorf("parser: line %d: unterminated string", l.line)
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("parser: line %d: unterminated string", l.line)
}

func (l *lexer) lexNumber() error {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	digits := 0
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
		digits++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' &&
		l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
			digits++
		}
	}
	if digits == 0 {
		return fmt.Errorf("parser: line %d: malformed number", l.line)
	}
	l.tokens = append(l.tokens, token{kind: tokNumber, text: l.src[start:l.pos], pos: start, line: l.line})
	return nil
}
