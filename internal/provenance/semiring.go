// Package provenance implements the semiring provenance framework of Green,
// Karvounarakis, and Tannen ("Provenance Semirings", PODS 2007), which is
// the formal foundation ORCHESTRA uses to trace where exchanged data came
// from. Derived tuples carry provenance polynomials in N[X] — the most
// general ("universal") provenance semiring — and any concrete annotation
// (trust, boolean derivability, counting, cost) is obtained by evaluating
// the polynomial under the unique semiring homomorphism determined by an
// assignment of the variables.
package provenance

// Semiring describes a commutative semiring (K, +, ·, 0, 1): both
// operations are associative and commutative, · distributes over +, 0 is
// the additive identity and annihilates under ·, and 1 is the
// multiplicative identity. All provenance computations in the CDSS are
// parameterized by this interface.
type Semiring[T any] interface {
	// Zero returns the additive identity.
	Zero() T
	// One returns the multiplicative identity.
	One() T
	// Add combines alternative derivations.
	Add(a, b T) T
	// Mul combines joint (conjunctive) use of inputs.
	Mul(a, b T) T
	// Eq reports semantic equality of two elements.
	Eq(a, b T) bool
}

// BoolSemiring is the boolean semiring (B, ∨, ∧, false, true): evaluating
// an N[X] polynomial under it answers "is this tuple still derivable?",
// which drives provenance-based deletion propagation.
type BoolSemiring struct{}

// Zero returns false.
func (BoolSemiring) Zero() bool { return false }

// One returns true.
func (BoolSemiring) One() bool { return true }

// Add is logical or.
func (BoolSemiring) Add(a, b bool) bool { return a || b }

// Mul is logical and.
func (BoolSemiring) Mul(a, b bool) bool { return a && b }

// Eq is boolean equality.
func (BoolSemiring) Eq(a, b bool) bool { return a == b }

// CountSemiring is (N, +, ·, 0, 1): evaluation counts the number of
// distinct derivations of a tuple (bag semantics).
type CountSemiring struct{}

// Zero returns 0.
func (CountSemiring) Zero() uint64 { return 0 }

// One returns 1.
func (CountSemiring) One() uint64 { return 1 }

// Add is addition.
func (CountSemiring) Add(a, b uint64) uint64 { return a + b }

// Mul is multiplication.
func (CountSemiring) Mul(a, b uint64) uint64 { return a * b }

// Eq is numeric equality.
func (CountSemiring) Eq(a, b uint64) bool { return a == b }

// TropicalSemiring is (N ∪ {∞}, min, +, ∞, 0): evaluation computes the
// cheapest derivation, used e.g. for "distance from origin peer" scoring.
// Infinity is represented by TropicalInf.
type TropicalSemiring struct{}

// TropicalInf represents +∞ in the tropical semiring.
const TropicalInf = int64(1) << 62

// Zero returns +∞.
func (TropicalSemiring) Zero() int64 { return TropicalInf }

// One returns 0.
func (TropicalSemiring) One() int64 { return 0 }

// Add is min.
func (TropicalSemiring) Add(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Mul is saturating addition.
func (TropicalSemiring) Mul(a, b int64) int64 {
	if a >= TropicalInf || b >= TropicalInf || a+b >= TropicalInf {
		return TropicalInf
	}
	return a + b
}

// Eq is numeric equality.
func (TropicalSemiring) Eq(a, b int64) bool { return a == b }

// TrustSemiring is the fuzzy/confidence semiring ([0,1], max, min, 0, 1):
// evaluation computes the confidence of the *most trusted* derivation,
// where a joint derivation is only as trusted as its weakest input. This
// is the semiring ORCHESTRA's trust conditions evaluate provenance under.
type TrustSemiring struct{}

// Zero returns 0 (completely untrusted).
func (TrustSemiring) Zero() float64 { return 0 }

// One returns 1 (fully trusted).
func (TrustSemiring) One() float64 { return 1 }

// Add is max: alternative derivations take the best confidence.
func (TrustSemiring) Add(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Mul is min: a conjunction is as weak as its weakest conjunct.
func (TrustSemiring) Mul(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Eq is numeric equality.
func (TrustSemiring) Eq(a, b float64) bool { return a == b }

// SecuritySemiring is the access-control semiring over clearance levels
// (Public < Confidential < Secret < TopSecret < Unusable) with
// (min-rank, max-rank) as (+, ·): an alternative derivation lowers the
// required clearance, a joint derivation requires the stricter one.
type SecuritySemiring struct{}

// Clearance levels, ordered from least to most restricted.
const (
	Public       = int8(0)
	Confidential = int8(1)
	Secret       = int8(2)
	TopSecret    = int8(3)
	Unusable     = int8(4) // additive identity: no derivation at all
)

// Zero returns Unusable.
func (SecuritySemiring) Zero() int8 { return Unusable }

// One returns Public.
func (SecuritySemiring) One() int8 { return Public }

// Add takes the less restricted level.
func (SecuritySemiring) Add(a, b int8) int8 {
	if a < b {
		return a
	}
	return b
}

// Mul takes the more restricted level.
func (SecuritySemiring) Mul(a, b int8) int8 {
	if a > b {
		return a
	}
	return b
}

// Eq is equality of levels.
func (SecuritySemiring) Eq(a, b int8) bool { return a == b }
