package provenance

import (
	"testing"
)

func TestTruncateKeepsLowestDegree(t *testing.T) {
	x, y, z := v("x"), v("y"), v("z")
	// p = x + y·z + x·y·z : degrees 1, 2, 3.
	p := x.Add(y.Mul(z)).Add(x.Mul(y).Mul(z))
	q := p.Truncate(2)
	if q.NumMonomials() != 2 {
		t.Fatalf("truncated to %d monomials", q.NumMonomials())
	}
	if q.Degree() != 2 {
		t.Errorf("kept degree %d; want the two shortest derivations", q.Degree())
	}
	// The shortest derivation always survives.
	if !q.Subsumes(x) {
		t.Errorf("lost the degree-1 witness: %v", q)
	}
}

func TestTruncateNoOpCases(t *testing.T) {
	p := v("x").Add(v("y"))
	if !p.Truncate(0).Equal(p) {
		t.Error("k=0 must mean unbounded")
	}
	if !p.Truncate(5).Equal(p) {
		t.Error("k larger than size must be a no-op")
	}
	if !Zero().Truncate(3).Equal(Zero()) {
		t.Error("zero truncation broken")
	}
}

func TestTruncatePreservesDerivabilityOfKept(t *testing.T) {
	// Truncation may drop alternative witnesses but never invents
	// derivability: Derivable(truncated) implies Derivable(full).
	x, y, z, w := v("x"), v("y"), v("z"), v("w")
	p := x.Mul(y).Add(z.Mul(w)).Add(x.Mul(w))
	q := p.Truncate(2)
	checks := [][]Var{{"x", "y"}, {"z", "w"}, {"x", "w"}, {"x"}, {}}
	for _, aliveSet := range checks {
		aliveMap := map[Var]bool{}
		for _, a := range aliveSet {
			aliveMap[a] = true
		}
		alive := func(v Var) bool { return aliveMap[v] }
		if q.Derivable(alive) && !p.Derivable(alive) {
			t.Errorf("truncation invented derivability under %v", aliveSet)
		}
	}
}

func TestMonomialKey(t *testing.T) {
	x := v("x").Mul(v("x")).Mul(v("y"))
	m := x.Monomials()[0]
	if m.Key() != "x^2;y;" {
		t.Errorf("Key = %q", m.Key())
	}
	lin := x.Linearize().Monomials()[0]
	if lin.Key() != "x;y;" {
		t.Errorf("linearized Key = %q", lin.Key())
	}
}

func TestSubsumes(t *testing.T) {
	x, y := v("x"), v("y")
	p := x.Add(x.Mul(y))
	if !p.Subsumes(x) {
		t.Error("p must subsume its own monomial")
	}
	if p.Subsumes(y) {
		t.Error("p must not subsume an absent monomial")
	}
	// Subsumption works modulo linearization (powers collapse).
	if !p.Subsumes(x.Mul(x)) {
		t.Error("x² must be subsumed by p containing x")
	}
	if !Zero().Subsumes(Zero()) {
		t.Error("zero subsumes zero")
	}
	if Zero().Subsumes(x) {
		t.Error("zero subsumes nothing else")
	}
}

func TestLinearize(t *testing.T) {
	x, y := v("x"), v("y")
	p := Const(3).Mul(x).Mul(x).Add(Const(2).Mul(y))
	l := p.Linearize()
	want := x.Add(y)
	if !l.Equal(want) {
		t.Errorf("Linearize = %v, want %v", l, want)
	}
	// Linearizing an already-linear polynomial returns it unchanged.
	if !want.Linearize().Equal(want) {
		t.Error("idempotence broken")
	}
	// Powers collapsing can merge monomials: x²y + xy² -> xy.
	p2 := x.Mul(x).Mul(y).Add(x.Mul(y).Mul(y))
	if got := p2.Linearize(); got.NumMonomials() != 1 {
		t.Errorf("merge after linearize = %v", got)
	}
}
