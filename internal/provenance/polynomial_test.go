package provenance

import (
	"testing"
)

func v(name string) Poly { return NewVar(Var(name)) }

func TestPolyBasics(t *testing.T) {
	if !Zero().IsZero() {
		t.Error("Zero not zero")
	}
	if !One().IsOne() {
		t.Error("One not one")
	}
	if !Const(0).IsZero() {
		t.Error("Const(0) not zero")
	}
	x := v("x")
	if x.IsZero() || x.IsOne() {
		t.Error("variable misclassified")
	}
	if x.String() != "x" {
		t.Errorf("x renders as %q", x.String())
	}
}

func TestPolyAddMul(t *testing.T) {
	x, y := v("x"), v("y")
	// (x + y)·(x + y) = x^2 + 2xy + y^2
	sq := x.Add(y).Mul(x.Add(y))
	want := x.Mul(x).Add(Const(2).Mul(x).Mul(y)).Add(y.Mul(y))
	if !sq.Equal(want) {
		t.Errorf("(x+y)^2 = %v, want %v", sq, want)
	}
	if sq.Degree() != 2 {
		t.Errorf("degree = %d", sq.Degree())
	}
	if sq.NumMonomials() != 3 {
		t.Errorf("monomials = %d", sq.NumMonomials())
	}
}

func TestPolyCanonicalForm(t *testing.T) {
	x, y := v("x"), v("y")
	a := x.Mul(y)
	b := y.Mul(x)
	if !a.Equal(b) {
		t.Error("xy != yx: canonical form broken")
	}
	// x + x = 2x, represented once.
	two := x.Add(x)
	if two.NumMonomials() != 1 || two.Monomials()[0].Coef != 2 {
		t.Errorf("x+x = %v", two)
	}
	// Addition/multiplication with zero/one shortcuts.
	if !x.Add(Zero()).Equal(x) || !Zero().Add(x).Equal(x) {
		t.Error("zero addition identity broken")
	}
	if !x.Mul(One()).Equal(x) || !One().Mul(x).Equal(x) {
		t.Error("one multiplication identity broken")
	}
	if !x.Mul(Zero()).IsZero() {
		t.Error("zero annihilation broken")
	}
}

func TestPolyVars(t *testing.T) {
	p := v("b").Mul(v("a")).Add(v("c"))
	vars := p.Vars()
	if len(vars) != 3 || vars[0] != "a" || vars[1] != "b" || vars[2] != "c" {
		t.Errorf("Vars = %v", vars)
	}
}

func TestEvalHomomorphism(t *testing.T) {
	// p = x·y + 2·z. Under counting with x=3,y=4,z=5: 3·4 + 2·5 = 22.
	p := v("x").Mul(v("y")).Add(Const(2).Mul(v("z")))
	assignN := func(x Var) uint64 {
		switch x {
		case "x":
			return 3
		case "y":
			return 4
		default:
			return 5
		}
	}
	if got := Eval[uint64](p, CountSemiring{}, assignN); got != 22 {
		t.Errorf("count eval = %d, want 22", got)
	}
	// Under boolean with z=false: x·y still derives it.
	assignB := func(x Var) bool { return x != "z" }
	if !Eval[bool](p, BoolSemiring{}, assignB) {
		t.Error("bool eval should be true via x·y")
	}
	// With y also false, nothing derives it.
	assignB2 := func(x Var) bool { return x == "x" }
	if Eval[bool](p, BoolSemiring{}, assignB2) {
		t.Error("bool eval should be false")
	}
	// Under trust with x=0.9, y=0.4, z=0.7: max(min(.9,.4), .7) = 0.7.
	assignT := func(x Var) float64 {
		switch x {
		case "x":
			return 0.9
		case "y":
			return 0.4
		default:
			return 0.7
		}
	}
	if got := Eval[float64](p, TrustSemiring{}, assignT); got != 0.7 {
		t.Errorf("trust eval = %v, want 0.7", got)
	}
	// Under tropical with x=1,y=2,z=4: min(1+2, 0+4+4)... coefficient 2 in
	// tropical is min over two copies = identity for the sum, so 2·z means
	// z added twice? No: coefficient c folds c copies via Add (min), which
	// for c≥1 is just the term itself. min(3, 4) = 3.
	assignTr := func(x Var) int64 {
		switch x {
		case "x":
			return 1
		case "y":
			return 2
		default:
			return 4
		}
	}
	if got := Eval[int64](p, TropicalSemiring{}, assignTr); got != 3 {
		t.Errorf("tropical eval = %d, want 3", got)
	}
}

// Property: Eval is a semiring homomorphism — it commutes with Add and Mul.
func TestQuickEvalCommutes(t *testing.T) {
	var seed uint64 = 99
	next := func() uint64 { seed = seed*6364136223846793005 + 1442695040888963407; return seed }
	names := []Var{"a", "b", "c", "d"}
	randPoly := func() Poly {
		p := Zero()
		terms := int(next()%3) + 1
		for i := 0; i < terms; i++ {
			m := Const(next()%3 + 1)
			factors := int(next() % 3)
			for j := 0; j < factors; j++ {
				m = m.Mul(NewVar(names[next()%4]))
			}
			p = p.Add(m)
		}
		return p
	}
	s := CountSemiring{}
	for i := 0; i < 300; i++ {
		p, q := randPoly(), randPoly()
		assign := map[Var]uint64{}
		for _, n := range names {
			assign[n] = next() % 5
		}
		get := func(x Var) uint64 { return assign[x] }
		sum := Eval[uint64](p.Add(q), s, get)
		if sum != Eval[uint64](p, s, get)+Eval[uint64](q, s, get) {
			t.Fatalf("Eval(p+q) != Eval(p)+Eval(q) for p=%v q=%v", p, q)
		}
		prod := Eval[uint64](p.Mul(q), s, get)
		if prod != Eval[uint64](p, s, get)*Eval[uint64](q, s, get) {
			t.Fatalf("Eval(p·q) != Eval(p)·Eval(q) for p=%v q=%v", p, q)
		}
	}
}

func TestDerivableAndRestrict(t *testing.T) {
	// p = x·y + z
	p := v("x").Mul(v("y")).Add(v("z"))
	all := func(Var) bool { return true }
	if !p.Derivable(all) {
		t.Error("derivable with all vars")
	}
	noZ := func(x Var) bool { return x != "z" }
	if !p.Derivable(noZ) {
		t.Error("still derivable via x·y")
	}
	onlyZ := func(x Var) bool { return x == "z" }
	if !p.Derivable(onlyZ) {
		t.Error("still derivable via z")
	}
	onlyX := func(x Var) bool { return x == "x" }
	if p.Derivable(onlyX) {
		t.Error("not derivable with only x")
	}
	r := p.Restrict(noZ)
	if !r.Equal(v("x").Mul(v("y"))) {
		t.Errorf("Restrict = %v", r)
	}
	// Restrict with everything alive returns p unchanged (same value).
	if !p.Restrict(all).Equal(p) {
		t.Error("Restrict(all) changed p")
	}
	if !p.Restrict(func(Var) bool { return false }).IsZero() {
		t.Error("Restrict(none) should be zero")
	}
	// Constants are always derivable.
	if !One().Derivable(func(Var) bool { return false }) {
		t.Error("constant 1 must be derivable")
	}
	if Zero().Derivable(all) {
		t.Error("zero is never derivable")
	}
}

func TestPolySemiringLaws(t *testing.T) {
	s := PolySemiring()
	var seed uint64 = 7
	next := func() uint64 { seed = seed*2862933555777941757 + 3037000493; return seed }
	names := []Var{"x", "y", "z"}
	gen := func() Poly {
		p := Zero()
		for i := uint64(0); i < next()%3+1; i++ {
			m := Const(next()%2 + 1)
			for j := uint64(0); j < next()%2+1; j++ {
				m = m.Mul(NewVar(names[next()%3]))
			}
			p = p.Add(m)
		}
		return p
	}
	checkSemiringLaws[Poly](t, "N[X]", s, gen)
}

func TestPolyString(t *testing.T) {
	p := Const(2).Mul(v("x")).Mul(v("x")).Add(v("y")).Add(One())
	got := p.String()
	// Canonical order: constant monomial key "" sorts first.
	if got != "1 + 2·x^2 + y" {
		t.Errorf("String() = %q", got)
	}
	if Zero().String() != "0" {
		t.Errorf("Zero renders as %q", Zero().String())
	}
}
