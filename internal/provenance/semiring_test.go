package provenance

import (
	"testing"
	"testing/quick"
)

// checkSemiringLaws verifies the commutative-semiring axioms on sampled
// elements of any semiring.
func checkSemiringLaws[T any](t *testing.T, name string, s Semiring[T], gen func() T) {
	t.Helper()
	f := func() bool {
		a, b, c := gen(), gen(), gen()
		// Associativity and commutativity of +.
		if !s.Eq(s.Add(s.Add(a, b), c), s.Add(a, s.Add(b, c))) {
			return false
		}
		if !s.Eq(s.Add(a, b), s.Add(b, a)) {
			return false
		}
		// Identity and annihilator.
		if !s.Eq(s.Add(a, s.Zero()), a) {
			return false
		}
		if !s.Eq(s.Mul(a, s.One()), a) {
			return false
		}
		if !s.Eq(s.Mul(a, s.Zero()), s.Zero()) {
			return false
		}
		// Associativity and commutativity of ·.
		if !s.Eq(s.Mul(s.Mul(a, b), c), s.Mul(a, s.Mul(b, c))) {
			return false
		}
		if !s.Eq(s.Mul(a, b), s.Mul(b, a)) {
			return false
		}
		// Distributivity.
		return s.Eq(s.Mul(a, s.Add(b, c)), s.Add(s.Mul(a, b), s.Mul(a, c)))
	}
	for i := 0; i < 200; i++ {
		if !f() {
			t.Fatalf("%s: semiring law violated", name)
		}
	}
}

func TestSemiringLaws(t *testing.T) {
	var seed uint64 = 12345
	next := func() uint64 { seed = seed*6364136223846793005 + 1442695040888963407; return seed }

	checkSemiringLaws[bool](t, "bool", BoolSemiring{}, func() bool { return next()%2 == 0 })
	checkSemiringLaws[uint64](t, "count", CountSemiring{}, func() uint64 { return next() % 100 })
	checkSemiringLaws[int64](t, "tropical", TropicalSemiring{}, func() int64 {
		v := int64(next() % 1000)
		if v > 990 {
			return TropicalInf
		}
		return v
	})
	checkSemiringLaws[float64](t, "trust", TrustSemiring{}, func() float64 { return float64(next()%101) / 100 })
	checkSemiringLaws[int8](t, "security", SecuritySemiring{}, func() int8 { return int8(next() % 5) })
}

func TestTropicalSaturation(t *testing.T) {
	s := TropicalSemiring{}
	if s.Mul(TropicalInf, TropicalInf) != TropicalInf {
		t.Error("∞+∞ must saturate at ∞")
	}
	if s.Mul(TropicalInf, 5) != TropicalInf {
		t.Error("∞+5 must be ∞")
	}
	if s.Add(TropicalInf, 5) != 5 {
		t.Error("min(∞,5) must be 5")
	}
}

func TestSecurityLevels(t *testing.T) {
	s := SecuritySemiring{}
	// A joint derivation using a Secret and a Public tuple needs Secret.
	if s.Mul(Public, Secret) != Secret {
		t.Error("joint clearance wrong")
	}
	// An alternative Public derivation makes the data Public.
	if s.Add(Secret, Public) != Public {
		t.Error("alternative clearance wrong")
	}
	if s.Add(s.Zero(), TopSecret) != TopSecret {
		t.Error("Unusable must be additive identity")
	}
}

func TestTrustSemiringWeakestLink(t *testing.T) {
	s := TrustSemiring{}
	// Conjunction of 0.9-trusted and 0.3-trusted inputs is 0.3-trusted.
	if got := s.Mul(0.9, 0.3); got != 0.3 {
		t.Errorf("Mul(0.9,0.3) = %v", got)
	}
	// Best of two alternative derivations.
	if got := s.Add(0.3, 0.7); got != 0.7 {
		t.Errorf("Add(0.3,0.7) = %v", got)
	}
}

// Property-based law checks via testing/quick for the two semirings whose
// carrier types quick can generate directly.
func TestQuickBoolDistributivity(t *testing.T) {
	s := BoolSemiring{}
	f := func(a, b, c bool) bool {
		return s.Mul(a, s.Add(b, c)) == s.Add(s.Mul(a, b), s.Mul(a, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCountDistributivity(t *testing.T) {
	s := CountSemiring{}
	f := func(a, b, c uint32) bool {
		A, B, C := uint64(a), uint64(b), uint64(c)
		return s.Mul(A, s.Add(B, C)) == s.Add(s.Mul(A, B), s.Mul(A, C))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
