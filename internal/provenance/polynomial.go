package provenance

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Var identifies a provenance token: in ORCHESTRA, one token is minted per
// base (published) tuple, so a polynomial over Vars describes exactly which
// combinations of published data derive a tuple.
type Var string

// VarPow is one factor x^k of a monomial.
type VarPow struct {
	Var Var
	Pow int
}

// Monomial is coef · x1^k1 · ... · xn^kn with Vars sorted by name and all
// powers ≥ 1. A Monomial with no vars is a constant.
type Monomial struct {
	Coef uint64
	Vars []VarPow
}

// varKey returns the canonical key of the monomial's variable part. It is
// on the hot path of polynomial normalization, so it avoids fmt.
func (m Monomial) varKey() string {
	n := 0
	for _, vp := range m.Vars {
		n += len(vp.Var) + 2
	}
	var b strings.Builder
	b.Grow(n)
	for _, vp := range m.Vars {
		b.WriteString(string(vp.Var))
		if vp.Pow != 1 {
			b.WriteByte('^')
			b.WriteString(strconv.Itoa(vp.Pow))
		}
		b.WriteByte(';')
	}
	return b.String()
}

// Key returns the canonical key of the monomial's variable part (ignoring
// the coefficient); two monomials with the same Key merge under addition.
func (m Monomial) Key() string { return m.varKey() }

// Degree returns the total degree of the monomial.
func (m Monomial) Degree() int {
	d := 0
	for _, vp := range m.Vars {
		d += vp.Pow
	}
	return d
}

// String renders the monomial, e.g. "2·x·y^2".
func (m Monomial) String() string {
	if len(m.Vars) == 0 {
		return fmt.Sprintf("%d", m.Coef)
	}
	parts := []string{}
	if m.Coef != 1 {
		parts = append(parts, fmt.Sprintf("%d", m.Coef))
	}
	for _, vp := range m.Vars {
		if vp.Pow == 1 {
			parts = append(parts, string(vp.Var))
		} else {
			parts = append(parts, fmt.Sprintf("%s^%d", vp.Var, vp.Pow))
		}
	}
	return strings.Join(parts, "·")
}

// Poly is a provenance polynomial in N[X], kept in canonical form: monomials
// sorted by variable key, no zero coefficients, variable lists sorted and
// deduplicated. The zero polynomial is the empty monomial list. Poly values
// are immutable; operations return new polynomials.
type Poly struct {
	monos []Monomial
}

// Zero returns the zero polynomial (no derivations).
func Zero() Poly { return Poly{} }

// One returns the constant polynomial 1.
func One() Poly { return Const(1) }

// Const returns the constant polynomial c.
func Const(c uint64) Poly {
	if c == 0 {
		return Poly{}
	}
	return Poly{monos: []Monomial{{Coef: c}}}
}

// NewVar returns the polynomial consisting of the single variable x.
func NewVar(x Var) Poly {
	return Poly{monos: []Monomial{{Coef: 1, Vars: []VarPow{{Var: x, Pow: 1}}}}}
}

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(p.monos) == 0 }

// IsOne reports whether p is the constant 1.
func (p Poly) IsOne() bool {
	return len(p.monos) == 1 && p.monos[0].Coef == 1 && len(p.monos[0].Vars) == 0
}

// Monomials returns the canonical monomial list (shared; do not modify).
func (p Poly) Monomials() []Monomial { return p.monos }

// NumMonomials returns the number of monomials (distinct derivation shapes).
func (p Poly) NumMonomials() int { return len(p.monos) }

// Degree returns the maximum monomial degree, or 0 for constants/zero.
func (p Poly) Degree() int {
	d := 0
	for _, m := range p.monos {
		if md := m.Degree(); md > d {
			d = md
		}
	}
	return d
}

// Vars returns the sorted set of variables mentioned in p.
func (p Poly) Vars() []Var {
	set := map[Var]bool{}
	for _, m := range p.monos {
		for _, vp := range m.Vars {
			set[vp.Var] = true
		}
	}
	out := make([]Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FromMonomials builds a polynomial from raw monomials, normalizing into
// canonical form (merging duplicates, dropping zero coefficients).
func FromMonomials(monos []Monomial) Poly { return normalize(monos) }

// normalize sorts and merges a raw monomial list into canonical form.
func normalize(monos []Monomial) Poly {
	byKey := map[string]*Monomial{}
	keys := []string{}
	for _, m := range monos {
		if m.Coef == 0 {
			continue
		}
		k := m.varKey()
		if existing, ok := byKey[k]; ok {
			existing.Coef += m.Coef
		} else {
			cp := Monomial{Coef: m.Coef, Vars: append([]VarPow(nil), m.Vars...)}
			byKey[k] = &cp
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]Monomial, 0, len(keys))
	for _, k := range keys {
		if byKey[k].Coef != 0 {
			out = append(out, *byKey[k])
		}
	}
	return Poly{monos: out}
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	if p.IsZero() {
		return q
	}
	if q.IsZero() {
		return p
	}
	all := make([]Monomial, 0, len(p.monos)+len(q.monos))
	all = append(all, p.monos...)
	all = append(all, q.monos...)
	return normalize(all)
}

// mulMono multiplies two monomials.
func mulMono(a, b Monomial) Monomial {
	out := Monomial{Coef: a.Coef * b.Coef}
	i, j := 0, 0
	for i < len(a.Vars) && j < len(b.Vars) {
		switch {
		case a.Vars[i].Var < b.Vars[j].Var:
			out.Vars = append(out.Vars, a.Vars[i])
			i++
		case a.Vars[i].Var > b.Vars[j].Var:
			out.Vars = append(out.Vars, b.Vars[j])
			j++
		default:
			out.Vars = append(out.Vars, VarPow{Var: a.Vars[i].Var, Pow: a.Vars[i].Pow + b.Vars[j].Pow})
			i++
			j++
		}
	}
	out.Vars = append(out.Vars, a.Vars[i:]...)
	out.Vars = append(out.Vars, b.Vars[j:]...)
	return out
}

// Mul returns p · q.
func (p Poly) Mul(q Poly) Poly {
	if p.IsZero() || q.IsZero() {
		return Poly{}
	}
	if p.IsOne() {
		return q
	}
	if q.IsOne() {
		return p
	}
	all := make([]Monomial, 0, len(p.monos)*len(q.monos))
	for _, a := range p.monos {
		for _, b := range q.monos {
			all = append(all, mulMono(a, b))
		}
	}
	return normalize(all)
}

// Equal reports canonical equality of two polynomials.
func (p Poly) Equal(q Poly) bool {
	if len(p.monos) != len(q.monos) {
		return false
	}
	for i := range p.monos {
		a, b := p.monos[i], q.monos[i]
		if a.Coef != b.Coef || len(a.Vars) != len(b.Vars) {
			return false
		}
		for j := range a.Vars {
			if a.Vars[j] != b.Vars[j] {
				return false
			}
		}
	}
	return true
}

// String renders the polynomial, e.g. "x·y + 2·z".
func (p Poly) String() string {
	if p.IsZero() {
		return "0"
	}
	parts := make([]string, len(p.monos))
	for i, m := range p.monos {
		parts[i] = m.String()
	}
	return strings.Join(parts, " + ")
}

// Eval evaluates p under the semiring homomorphism determined by assign:
// each variable x is replaced by assign(x) and +/· are interpreted in s.
// This is the "factorization" property of N[X]: a single polynomial answers
// trust, derivability, counting, and cost queries.
func Eval[T any](p Poly, s Semiring[T], assign func(Var) T) T {
	acc := s.Zero()
	for _, m := range p.monos {
		// Interpret the coefficient as a c-fold sum of 1.
		term := s.Zero()
		for c := uint64(0); c < m.Coef; c++ {
			term = s.Add(term, s.One())
		}
		for _, vp := range m.Vars {
			v := assign(vp.Var)
			for k := 0; k < vp.Pow; k++ {
				term = s.Mul(term, v)
			}
		}
		acc = s.Add(acc, term)
	}
	return acc
}

// Derivable reports whether p is still derivable when exactly the variables
// in alive are present (all others deleted). It is Eval under the boolean
// semiring with the characteristic assignment of alive, and is the test
// that drives provenance-based deletion propagation in update exchange.
func (p Poly) Derivable(alive func(Var) bool) bool {
	for _, m := range p.monos {
		ok := true
		for _, vp := range m.Vars {
			if !alive(vp.Var) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// Restrict returns p with all monomials mentioning a dead variable removed —
// the polynomial of the instance after deleting those base tuples.
func (p Poly) Restrict(alive func(Var) bool) Poly {
	out := make([]Monomial, 0, len(p.monos))
	for _, m := range p.monos {
		ok := true
		for _, vp := range m.Vars {
			if !alive(vp.Var) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, m)
		}
	}
	if len(out) == len(p.monos) {
		return p
	}
	return Poly{monos: out}
}

// Linearize maps p from N[X] onto the B[X] "witness set" quotient: every
// coefficient becomes 1 and every variable power becomes 1, then duplicate
// monomials merge. The result enumerates the distinct sets of base tuples
// that each support a derivation. Evaluation under any semiring with
// idempotent + and · (boolean, trust, security) is unchanged by
// linearization, which is why the datalog engine can use it to obtain a
// finite fixpoint for recursive mapping programs (see internal/datalog).
func (p Poly) Linearize() Poly {
	if p.IsZero() {
		return p
	}
	out := make([]Monomial, 0, len(p.monos))
	changed := false
	for _, m := range p.monos {
		nm := Monomial{Coef: 1, Vars: make([]VarPow, len(m.Vars))}
		if m.Coef != 1 {
			changed = true
		}
		for i, vp := range m.Vars {
			if vp.Pow != 1 {
				changed = true
			}
			nm.Vars[i] = VarPow{Var: vp.Var, Pow: 1}
		}
		out = append(out, nm)
	}
	if !changed {
		return p
	}
	q := normalize(out)
	// normalize may have merged duplicates, re-cap coefficients at 1.
	for i := range q.monos {
		q.monos[i].Coef = 1
	}
	return q
}

// Truncate returns p with at most k monomials, keeping those with the
// lowest degree (shortest derivations) and breaking ties canonically. The
// datalog engine uses it to bound witness-set growth on dense mapping
// graphs, where the number of alternative derivation paths — and hence
// monomials — can grow combinatorially. Short derivations are the ones
// trust conditions and deletion propagation care about; see DESIGN.md §4.
func (p Poly) Truncate(k int) Poly {
	if k <= 0 || len(p.monos) <= k {
		return p
	}
	idx := make([]int, len(p.monos))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		da, db := p.monos[idx[a]].Degree(), p.monos[idx[b]].Degree()
		if da != db {
			return da < db
		}
		return idx[a] < idx[b] // canonical order as tiebreak
	})
	keep := idx[:k]
	sort.Ints(keep)
	out := make([]Monomial, 0, k)
	for _, i := range keep {
		out = append(out, p.monos[i])
	}
	return Poly{monos: out}
}

// Subsumes reports whether every monomial of q is present in p (ignoring
// coefficients and powers after linearization). It is the ≤ test of the
// B[X] lattice used by the fixpoint convergence check.
func (p Poly) Subsumes(q Poly) bool {
	lp, lq := p.Linearize(), q.Linearize()
	have := map[string]bool{}
	for _, m := range lp.monos {
		have[m.varKey()] = true
	}
	for _, m := range lq.monos {
		if !have[m.varKey()] {
			return false
		}
	}
	return true
}

// polySemiring makes Poly itself a Semiring[Poly] — N[X] is the free
// commutative semiring, so datalog evaluation can run directly over it.
type polySemiring struct{}

func (polySemiring) Zero() Poly         { return Zero() }
func (polySemiring) One() Poly          { return One() }
func (polySemiring) Add(a, b Poly) Poly { return a.Add(b) }
func (polySemiring) Mul(a, b Poly) Poly { return a.Mul(b) }
func (polySemiring) Eq(a, b Poly) bool  { return a.Equal(b) }

// PolySemiring returns N[X] as a Semiring[Poly].
func PolySemiring() Semiring[Poly] { return polySemiring{} }
