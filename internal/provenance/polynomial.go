package provenance

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Var identifies a provenance token: in ORCHESTRA, one token is minted per
// base (published) tuple, so a polynomial over Vars describes exactly which
// combinations of published data derive a tuple.
type Var string

// VarPow is one factor x^k of a monomial.
type VarPow struct {
	Var Var
	Pow int
}

// Monomial is coef · x1^k1 · ... · xn^kn with Vars sorted by name and all
// powers ≥ 1. A Monomial with no vars is a constant.
type Monomial struct {
	Coef uint64
	Vars []VarPow
}

// varKey returns the canonical key of the monomial's variable part. It is
// computed once per interned monomial (see intern.go) and cached alongside
// the canonical monomial list, so it avoids fmt.
func (m Monomial) varKey() string {
	n := 0
	for _, vp := range m.Vars {
		n += len(vp.Var) + 2
	}
	var b strings.Builder
	b.Grow(n)
	for _, vp := range m.Vars {
		b.WriteString(string(vp.Var))
		if vp.Pow != 1 {
			b.WriteByte('^')
			b.WriteString(strconv.Itoa(vp.Pow))
		}
		b.WriteByte(';')
	}
	return b.String()
}

// Key returns the canonical key of the monomial's variable part (ignoring
// the coefficient); two monomials with the same Key merge under addition.
func (m Monomial) Key() string { return m.varKey() }

// Degree returns the total degree of the monomial.
func (m Monomial) Degree() int {
	d := 0
	for _, vp := range m.Vars {
		d += vp.Pow
	}
	return d
}

// String renders the monomial, e.g. "2·x·y^2".
func (m Monomial) String() string {
	if len(m.Vars) == 0 {
		return fmt.Sprintf("%d", m.Coef)
	}
	parts := []string{}
	if m.Coef != 1 {
		parts = append(parts, fmt.Sprintf("%d", m.Coef))
	}
	for _, vp := range m.Vars {
		if vp.Pow == 1 {
			parts = append(parts, string(vp.Var))
		} else {
			parts = append(parts, fmt.Sprintf("%s^%d", vp.Var, vp.Pow))
		}
	}
	return strings.Join(parts, "·")
}

// Poly is a provenance polynomial in N[X], kept in canonical form: monomials
// sorted by variable key, no zero coefficients, variable lists sorted and
// deduplicated. The zero polynomial is the zero value. Poly values are
// immutable; operations return new polynomials.
//
// Every polynomial points at a canonical node carrying a precomputed
// structural hash and the cached variable key of each monomial, built
// through the bounded hash-consing cache in intern.go: recurring
// polynomials share one allocation, so equality on them is a pointer
// comparison (with a hash-guarded structural fallback when two equal values
// missed each other in the cache), and Add/Linearize/Subsumes reuse the
// cached sorted keys instead of rebuilding map-and-sort state per
// operation. Linearizations are memoized per node.
type Poly struct {
	n *polyNode
}

// Zero returns the zero polynomial (no derivations).
func Zero() Poly { return Poly{} }

// One returns the constant polynomial 1.
func One() Poly { return Const(1) }

// Const returns the constant polynomial c.
func Const(c uint64) Poly {
	if c == 0 {
		return Poly{}
	}
	if c == 1 {
		return polyOne
	}
	return newNode([]Monomial{{Coef: c}}, []string{""})
}

// polyOne is the interned constant 1 — the most common annotation in the
// system (every set-semantics fact), shared process-wide.
var polyOne = newNode([]Monomial{{Coef: 1}}, []string{""}).Intern()

// NewVar returns the polynomial consisting of the single variable x.
func NewVar(x Var) Poly {
	m := Monomial{Coef: 1, Vars: []VarPow{{Var: x, Pow: 1}}}
	return newNode([]Monomial{m}, []string{m.varKey()})
}

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return p.n == nil }

// IsOne reports whether p is the constant 1.
func (p Poly) IsOne() bool {
	return p.n != nil && len(p.n.monos) == 1 && p.n.monos[0].Coef == 1 && len(p.n.monos[0].Vars) == 0
}

// Monomials returns the canonical monomial list (shared; do not modify).
func (p Poly) Monomials() []Monomial {
	if p.n == nil {
		return nil
	}
	return p.n.monos
}

// Keys returns the canonical variable key of each monomial, aligned with
// Monomials() and sorted ascending. The slice is the interned node's cache:
// shared, do not modify.
func (p Poly) Keys() []string {
	if p.n == nil {
		return nil
	}
	return p.n.keys
}

// Hash returns the precomputed structural hash of the polynomial.
func (p Poly) Hash() uint64 {
	if p.n == nil {
		return 0
	}
	return p.n.hash
}

// NumMonomials returns the number of monomials (distinct derivation shapes).
func (p Poly) NumMonomials() int {
	if p.n == nil {
		return 0
	}
	return len(p.n.monos)
}

// Degree returns the maximum monomial degree, or 0 for constants/zero.
func (p Poly) Degree() int {
	d := 0
	for _, m := range p.Monomials() {
		if md := m.Degree(); md > d {
			d = md
		}
	}
	return d
}

// Vars returns the sorted set of variables mentioned in p.
func (p Poly) Vars() []Var {
	set := map[Var]bool{}
	for _, m := range p.Monomials() {
		for _, vp := range m.Vars {
			set[vp.Var] = true
		}
	}
	out := make([]Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FromMonomials builds a polynomial from raw monomials, normalizing into
// canonical form (merging duplicates, dropping zero coefficients). The
// input monomials are copied; the caller keeps ownership of its slices.
func FromMonomials(monos []Monomial) Poly {
	out := make([]Monomial, 0, len(monos))
	keys := make([]string, 0, len(monos))
	for _, m := range monos {
		if m.Coef == 0 {
			continue
		}
		out = append(out, Monomial{Coef: m.Coef, Vars: append([]VarPow(nil), m.Vars...)})
		keys = append(keys, m.varKey())
	}
	return canonicalize(out, keys, false)
}

// FromCanonicalMonomials builds a polynomial from monomials already in
// canonical form: strictly increasing variable keys, no zero coefficients.
// That is exactly the order Monomials() reports and the snapshot codecs
// preserve, so decode paths can skip both the sort-and-merge normalization
// and the defensive copy FromMonomials makes. Ownership of monos and its
// Vars slices transfers to the polynomial — the caller must not retain or
// mutate them afterwards. The canonical-form invariant is verified on the
// way in; input that violates it falls back to FromMonomials (which
// copies), so a hand-crafted or corrupted monomial list can never produce
// a non-canonical node.
func FromCanonicalMonomials(monos []Monomial) Poly {
	if len(monos) == 0 {
		return Poly{}
	}
	keys := make([]string, 0, len(monos))
	for i, m := range monos {
		if m.Coef == 0 {
			return FromMonomials(monos)
		}
		keys = append(keys, m.varKey())
		if i > 0 && keys[i-1] >= keys[i] {
			return FromMonomials(monos)
		}
	}
	return newNode(monos, keys)
}

// canonicalize sorts a raw (owned) monomial list by variable key, merges
// duplicate keys by coefficient addition (capped at 1 when capCoef is set),
// drops zero coefficients, and interns the result. It replaces the old
// map[string]*Monomial + sort.Strings normalizer with one sort and a linear
// in-place merge.
func canonicalize(monos []Monomial, keys []string, capCoef bool) Poly {
	if len(monos) == 0 {
		return Poly{}
	}
	sort.Sort(&monoSorter{monos: monos, keys: keys})
	w := 0
	for r := 0; r < len(monos); {
		m := monos[r]
		k := keys[r]
		coef := m.Coef
		for r++; r < len(monos) && keys[r] == k; r++ {
			coef += monos[r].Coef
		}
		if capCoef && coef > 1 {
			coef = 1
		}
		if coef == 0 {
			continue
		}
		monos[w] = Monomial{Coef: coef, Vars: m.Vars}
		keys[w] = k
		w++
	}
	return newNode(monos[:w], keys[:w])
}

// Add returns p + q: a single merge of the two canonical (sorted) monomial
// lists using the cached keys — no map, no re-sort, no key recomputation.
func (p Poly) Add(q Poly) Poly {
	if p.IsZero() {
		return q
	}
	if q.IsZero() {
		return p
	}
	am, ak := p.n.monos, p.n.keys
	bm, bk := q.n.monos, q.n.keys
	monos := make([]Monomial, 0, len(am)+len(bm))
	keys := make([]string, 0, len(am)+len(bm))
	i, j := 0, 0
	for i < len(am) && j < len(bm) {
		switch {
		case ak[i] < bk[j]:
			monos = append(monos, am[i])
			keys = append(keys, ak[i])
			i++
		case ak[i] > bk[j]:
			monos = append(monos, bm[j])
			keys = append(keys, bk[j])
			j++
		default:
			if c := am[i].Coef + bm[j].Coef; c != 0 {
				monos = append(monos, Monomial{Coef: c, Vars: am[i].Vars})
				keys = append(keys, ak[i])
			}
			i++
			j++
		}
	}
	for ; i < len(am); i++ {
		monos = append(monos, am[i])
		keys = append(keys, ak[i])
	}
	for ; j < len(bm); j++ {
		monos = append(monos, bm[j])
		keys = append(keys, bk[j])
	}
	return newNode(monos, keys)
}

// mulMono multiplies two monomials.
func mulMono(a, b Monomial) Monomial {
	out := Monomial{Coef: a.Coef * b.Coef, Vars: make([]VarPow, 0, len(a.Vars)+len(b.Vars))}
	i, j := 0, 0
	for i < len(a.Vars) && j < len(b.Vars) {
		switch {
		case a.Vars[i].Var < b.Vars[j].Var:
			out.Vars = append(out.Vars, a.Vars[i])
			i++
		case a.Vars[i].Var > b.Vars[j].Var:
			out.Vars = append(out.Vars, b.Vars[j])
			j++
		default:
			out.Vars = append(out.Vars, VarPow{Var: a.Vars[i].Var, Pow: a.Vars[i].Pow + b.Vars[j].Pow})
			i++
			j++
		}
	}
	out.Vars = append(out.Vars, a.Vars[i:]...)
	out.Vars = append(out.Vars, b.Vars[j:]...)
	return out
}

// Mul returns p · q.
func (p Poly) Mul(q Poly) Poly {
	if p.IsZero() || q.IsZero() {
		return Poly{}
	}
	if p.IsOne() {
		return q
	}
	if q.IsOne() {
		return p
	}
	pm, qm := p.n.monos, q.n.monos
	monos := make([]Monomial, 0, len(pm)*len(qm))
	keys := make([]string, 0, len(pm)*len(qm))
	for _, a := range pm {
		for _, b := range qm {
			m := mulMono(a, b)
			if m.Coef == 0 {
				continue
			}
			monos = append(monos, m)
			keys = append(keys, m.varKey())
		}
	}
	return canonicalize(monos, keys, false)
}

// Equal reports canonical equality of two polynomials. Every canonical
// polynomial is interned, so live equal polynomials share one node and the
// comparison is pointer-fast; the structural fallback (gated on the
// precomputed hash) is defense in depth and never fires under the intern
// invariant.
func (p Poly) Equal(q Poly) bool {
	if p.n == q.n {
		return true
	}
	if p.n == nil || q.n == nil || p.n.hash != q.n.hash {
		return false
	}
	return sameMonos(p.n.monos, q.n.monos)
}

// String renders the polynomial, e.g. "x·y + 2·z".
func (p Poly) String() string {
	if p.IsZero() {
		return "0"
	}
	parts := make([]string, len(p.n.monos))
	for i, m := range p.n.monos {
		parts[i] = m.String()
	}
	return strings.Join(parts, " + ")
}

// Eval evaluates p under the semiring homomorphism determined by assign:
// each variable x is replaced by assign(x) and +/· are interpreted in s.
// This is the "factorization" property of N[X]: a single polynomial answers
// trust, derivability, counting, and cost queries.
//
// Coefficients are interpreted as c-fold sums of 1 and powers as k-fold
// products, both computed by double-and-add / square-and-multiply, so the
// cost is O(log c + log k) semiring operations rather than O(c + k).
func Eval[T any](p Poly, s Semiring[T], assign func(Var) T) T {
	acc := s.Zero()
	for _, m := range p.Monomials() {
		term := addTimes(s, m.Coef)
		for _, vp := range m.Vars {
			v := assign(vp.Var)
			if vp.Pow == 1 {
				term = s.Mul(term, v)
			} else if vp.Pow > 1 {
				term = s.Mul(term, powTimes(s, v, vp.Pow))
			}
		}
		acc = s.Add(acc, term)
	}
	return acc
}

// addTimes returns the c-fold sum 1 + 1 + ... + 1 in s, by double-and-add.
func addTimes[T any](s Semiring[T], c uint64) T {
	acc := s.Zero()
	base := s.One()
	for c > 0 {
		if c&1 != 0 {
			acc = s.Add(acc, base)
		}
		c >>= 1
		if c != 0 {
			base = s.Add(base, base)
		}
	}
	return acc
}

// powTimes returns v^k in s (k ≥ 1), by square-and-multiply.
func powTimes[T any](s Semiring[T], v T, k int) T {
	acc := s.One()
	base := v
	for k > 0 {
		if k&1 != 0 {
			acc = s.Mul(acc, base)
		}
		k >>= 1
		if k != 0 {
			base = s.Mul(base, base)
		}
	}
	return acc
}

// Derivable reports whether p is still derivable when exactly the variables
// in alive are present (all others deleted). It is Eval under the boolean
// semiring with the characteristic assignment of alive, and is the test
// that drives provenance-based deletion propagation in update exchange.
func (p Poly) Derivable(alive func(Var) bool) bool {
	for _, m := range p.Monomials() {
		ok := true
		for _, vp := range m.Vars {
			if !alive(vp.Var) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// Restrict returns p with all monomials mentioning a dead variable removed —
// the polynomial of the instance after deleting those base tuples.
func (p Poly) Restrict(alive func(Var) bool) Poly {
	if p.IsZero() {
		return p
	}
	out := make([]Monomial, 0, len(p.n.monos))
	keys := make([]string, 0, len(p.n.monos))
	for i, m := range p.n.monos {
		ok := true
		for _, vp := range m.Vars {
			if !alive(vp.Var) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, m)
			keys = append(keys, p.n.keys[i])
		}
	}
	if len(out) == len(p.n.monos) {
		return p
	}
	return newNode(out, keys)
}

// Linearize maps p from N[X] onto the B[X] "witness set" quotient: every
// coefficient becomes 1 and every variable power becomes 1, then duplicate
// monomials merge. The result enumerates the distinct sets of base tuples
// that each support a derivation. Evaluation under any semiring with
// idempotent + and · (boolean, trust, security) is unchanged by
// linearization, which is why the datalog engine can use it to obtain a
// finite fixpoint for recursive mapping programs (see internal/datalog).
//
// The result is cached on the interned node: linearizing the same shared
// polynomial twice costs one atomic load.
func (p Poly) Linearize() Poly {
	if p.IsZero() {
		return p
	}
	if lin := p.n.lin.Load(); lin != nil {
		return Poly{n: lin}
	}
	changed := false
	for _, m := range p.n.monos {
		if m.Coef != 1 {
			changed = true
			break
		}
		for _, vp := range m.Vars {
			if vp.Pow != 1 {
				changed = true
				break
			}
		}
		if changed {
			break
		}
	}
	q := p
	if changed {
		out := make([]Monomial, len(p.n.monos))
		keys := make([]string, len(p.n.monos))
		for i, m := range p.n.monos {
			nm := Monomial{Coef: 1, Vars: make([]VarPow, len(m.Vars))}
			for j, vp := range m.Vars {
				nm.Vars[j] = VarPow{Var: vp.Var, Pow: 1}
			}
			out[i] = nm
			keys[i] = nm.varKey()
		}
		q = canonicalize(out, keys, true)
	}
	p.n.lin.Store(q.n)
	if q.n != nil && q.n.lin.Load() == nil {
		q.n.lin.Store(q.n) // a linearized polynomial is its own quotient
	}
	return q
}

// Truncate returns p with at most k monomials, keeping those with the
// lowest degree (shortest derivations) and breaking ties canonically. The
// datalog engine uses it to bound witness-set growth on dense mapping
// graphs, where the number of alternative derivation paths — and hence
// monomials — can grow combinatorially. Short derivations are the ones
// trust conditions and deletion propagation care about; see DESIGN.md §4.
func (p Poly) Truncate(k int) Poly {
	if k <= 0 || p.NumMonomials() <= k {
		return p
	}
	idx := make([]int, len(p.n.monos))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		da, db := p.n.monos[idx[a]].Degree(), p.n.monos[idx[b]].Degree()
		if da != db {
			return da < db
		}
		return idx[a] < idx[b] // canonical order as tiebreak
	})
	keep := idx[:k]
	sort.Ints(keep)
	out := make([]Monomial, 0, k)
	keys := make([]string, 0, k)
	for _, i := range keep {
		out = append(out, p.n.monos[i])
		keys = append(keys, p.n.keys[i])
	}
	return newNode(out, keys)
}

// Subsumes reports whether every monomial of q is present in p (ignoring
// coefficients and powers after linearization). It is the ≤ test of the
// B[X] lattice used by the fixpoint convergence check. Both linearized key
// lists are sorted, so this is a two-pointer containment walk over the
// cached keys — no map is built.
func (p Poly) Subsumes(q Poly) bool {
	if q.IsZero() {
		return true
	}
	if p.n == q.n {
		return true
	}
	lp, lq := p.Linearize(), q.Linearize()
	if lp.n == lq.n {
		return true
	}
	pk, qk := lp.Keys(), lq.Keys()
	if len(qk) > len(pk) {
		return false
	}
	i := 0
	for _, k := range qk {
		for i < len(pk) && pk[i] < k {
			i++
		}
		if i == len(pk) || pk[i] != k {
			return false
		}
		i++
	}
	return true
}

// polySemiring makes Poly itself a Semiring[Poly] — N[X] is the free
// commutative semiring, so datalog evaluation can run directly over it.
type polySemiring struct{}

func (polySemiring) Zero() Poly         { return Zero() }
func (polySemiring) One() Poly          { return One() }
func (polySemiring) Add(a, b Poly) Poly { return a.Add(b) }
func (polySemiring) Mul(a, b Poly) Poly { return a.Mul(b) }
func (polySemiring) Eq(a, b Poly) bool  { return a.Equal(b) }

// PolySemiring returns N[X] as a Semiring[Poly].
func PolySemiring() Semiring[Poly] { return polySemiring{} }
