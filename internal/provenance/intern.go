package provenance

import (
	"sync/atomic"
)

// polyNode is the canonical (hash-consed) representation behind a Poly: the
// sorted monomial list, the cached variable key of each monomial, and a
// precomputed structural hash. Nodes are immutable after construction; the
// cached linearization is the only field written later, through an atomic
// pointer. Canonical polynomials that recur share one node through the
// intern cache below, making equality on them a pointer comparison.
type polyNode struct {
	monos []Monomial
	keys  []string // varKey per monomial, aligned with monos
	hash  uint64
	// lin caches the node of Linearize(p); nil until first computed. A node
	// that is its own linearization stores itself.
	lin atomic.Pointer[polyNode]
}

// The intern cache is a fixed-size, direct-mapped, lock-free table of
// canonical nodes indexed by structural hash. Interning is *approximate by
// design*: a recurring polynomial almost always finds its slot occupied by
// an equal node and shares that one allocation, while a hash-slot conflict
// simply evicts the older resident. This bounds the cache's memory and GC
// root set — a strong exhaustive table would pin every polynomial ever
// built, and a weak table pays per-node registration costs that dwarf the
// arithmetic on transient values. Correctness never depends on sharing:
// Equal falls back to a hash-guarded structural comparison when two equal
// polynomials missed each other in the cache.
//
// internSlots must be a power of two.
const internSlots = 1 << 15

var internCache [internSlots]atomic.Pointer[polyNode]

// fnv-1a over the canonical monomial list: coefficient bytes then varKey.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hashMonos(monos []Monomial, keys []string) uint64 {
	h := uint64(fnvOffset)
	for i, m := range monos {
		c := m.Coef
		for b := 0; b < 8; b++ {
			h ^= c & 0xff
			h *= fnvPrime
			c >>= 8
		}
		k := keys[i]
		for j := 0; j < len(k); j++ {
			h ^= uint64(k[j])
			h *= fnvPrime
		}
	}
	return h
}

// sameMonos reports structural equality of two canonical monomial lists.
// Keys alone are not decisive (a pathological variable name can collide
// with a power suffix), so variable lists are compared directly.
func sameMonos(a, b []Monomial) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Coef != b[i].Coef || len(a[i].Vars) != len(b[i].Vars) {
			return false
		}
		for j := range a[i].Vars {
			if a[i].Vars[j] != b[i].Vars[j] {
				return false
			}
		}
	}
	return true
}

// newNode returns the canonical polynomial for an already-canonical monomial
// list (sorted by varKey, duplicates merged, no zero coefficients),
// consulting the intern cache: if an equal node is resident it is shared
// and the caller's slices are discarded; otherwise a new node is built and
// published to its slot. The caller hands over ownership of both slices.
// An empty list is the zero polynomial (nil node).
func newNode(monos []Monomial, keys []string) Poly {
	if len(monos) == 0 {
		return Poly{}
	}
	h := hashMonos(monos, keys)
	slot := &internCache[h&(internSlots-1)]
	if n := slot.Load(); n != nil && n.hash == h && sameMonos(n.monos, monos) {
		return Poly{n: n}
	}
	n := &polyNode{monos: monos, keys: keys, hash: h}
	slot.Store(n)
	return Poly{n: n}
}

// Intern re-canonicalizes p against the intern cache: if an equal node is
// resident, that shared allocation is returned; otherwise p installs its
// own node and is returned unchanged. Construction already interns, so this
// is only useful to re-converge values built concurrently on different
// goroutines before storing them long-term. Idempotent and lock-free.
func (p Poly) Intern() Poly {
	if p.n == nil {
		return p
	}
	slot := &internCache[p.n.hash&(internSlots-1)]
	if n := slot.Load(); n != nil {
		if n == p.n {
			return p
		}
		if n.hash == p.n.hash && sameMonos(n.monos, p.n.monos) {
			return Poly{n: n}
		}
	}
	slot.Store(p.n)
	return p
}

// InternTableSize returns the number of resident interned polynomials — an
// observability hook for tests and memory diagnostics.
func InternTableSize() int {
	n := 0
	for i := range internCache {
		if internCache[i].Load() != nil {
			n++
		}
	}
	return n
}

// monoSorter sorts a raw monomial list and its aligned keys by key; it is
// the canonical order of Poly (identical to the sort.Strings order the
// map-based normalizer used).
type monoSorter struct {
	monos []Monomial
	keys  []string
}

func (s *monoSorter) Len() int           { return len(s.monos) }
func (s *monoSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *monoSorter) Swap(i, j int) {
	s.monos[i], s.monos[j] = s.monos[j], s.monos[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}
