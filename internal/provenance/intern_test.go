package provenance

import (
	"fmt"
	"testing"
)

// TestInternSharing pins the hash-consing contract: rebuilding the same
// polynomial yields the same shared node (pointer-equal), and Equal takes
// the pointer fast path.
func TestInternSharing(t *testing.T) {
	mk := func() Poly {
		p := Zero()
		for i := 0; i < 5; i++ {
			p = p.Add(NewVar(Var(fmt.Sprint("x", i))).Mul(NewVar(Var(fmt.Sprint("y", i)))))
		}
		return p
	}
	p, q := mk(), mk()
	if p.n != q.n {
		t.Errorf("rebuilt polynomial did not share the interned node")
	}
	if !p.Equal(q) {
		t.Errorf("Equal(p, q) = false for identical polynomials")
	}
	if One().n != Const(1).n {
		t.Errorf("One and Const(1) are not the shared singleton")
	}
}

// TestEqualStructuralFallback verifies that equality does not depend on
// cache residency: two structurally equal nodes built outside the cache
// (simulating a slot eviction between their constructions) still compare
// equal through the hash-guarded structural path.
func TestEqualStructuralFallback(t *testing.T) {
	m := Monomial{Coef: 2, Vars: []VarPow{{Var: "a", Pow: 1}, {Var: "b", Pow: 3}}}
	a := Poly{n: &polyNode{monos: []Monomial{m}, keys: []string{m.varKey()}, hash: hashMonos([]Monomial{m}, []string{m.varKey()})}}
	b := Poly{n: &polyNode{monos: []Monomial{m}, keys: []string{m.varKey()}, hash: a.n.hash}}
	if a.n == b.n {
		t.Fatal("test needs two distinct nodes")
	}
	if !a.Equal(b) {
		t.Errorf("structurally equal polynomials with distinct nodes compare unequal")
	}
	c := NewVar("a")
	if a.Equal(c) {
		t.Errorf("distinct polynomials compare equal")
	}
}

// TestInternEviction exercises the direct-mapped eviction path: flooding
// the cache with distinct polynomials must never corrupt previously built
// values, only reduce sharing.
func TestInternEviction(t *testing.T) {
	keep := NewVar("keeper").Mul(NewVar("kept"))
	want := keep.String()
	for i := 0; i < 3*internSlots/2; i++ {
		_ = NewVar(Var(fmt.Sprint("flood", i)))
	}
	if keep.String() != want {
		t.Errorf("interned value changed under eviction pressure: %s != %s", keep.String(), want)
	}
	rebuilt := NewVar("keeper").Mul(NewVar("kept"))
	if !keep.Equal(rebuilt) {
		t.Errorf("rebuilt polynomial unequal after eviction")
	}
	if InternTableSize() == 0 {
		t.Errorf("intern table empty after flood")
	}
}

// TestInternedLinearizeCache checks the memoized linearization is shared
// and correct across aliased nodes.
func TestInternedLinearizeCache(t *testing.T) {
	p := NewVar("x").Mul(NewVar("x")).Add(Const(3))
	l1, l2 := p.Linearize(), p.Linearize()
	if l1.n != l2.n {
		t.Errorf("linearization not memoized")
	}
	if l1.String() != "1 + x" {
		t.Errorf("Linearize = %s, want 1 + x", l1)
	}
	if l1.Linearize().n != l1.n {
		t.Errorf("linearized polynomial is not its own quotient")
	}
}
