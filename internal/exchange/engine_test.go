package exchange

import (
	"context"
	"testing"

	"orchestra/internal/updates"
	"orchestra/internal/workload"
)

func fig2Engine(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEngine(workload.Figure2Peers(), workload.Figure2Mappings())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func txn(peer string, seq uint64, us ...updates.Update) *updates.Transaction {
	return &updates.Transaction{ID: updates.TxnID{Peer: peer, Seq: seq}, Updates: us}
}

func TestInsertPropagatesThroughJoin(t *testing.T) {
	e := fig2Engine(t)
	// Alaska publishes O, P, S tuples in one transaction.
	res, err := e.Apply(context.Background(), txn(workload.Alaska, 1,
		updates.Insert("O", workload.OTuple("mouse", 1)),
		updates.Insert("P", workload.PTuple("p53", 10)),
		updates.Insert("S", workload.STuple(1, 10, "ACGT")),
	))
	if err != nil {
		t.Fatal(err)
	}
	// Beijing gets all three via the identity mapping.
	if got := len(res.PerPeer[workload.Beijing]); got != 3 {
		t.Errorf("beijing updates = %v", res.PerPeer[workload.Beijing])
	}
	// Crete gets the joined OPS tuple.
	cre := res.PerPeer[workload.Crete]
	if len(cre) != 1 || cre[0].Op != updates.OpInsert ||
		!cre[0].New.Equal(workload.OPSTuple("mouse", "p53", "ACGT")) {
		t.Errorf("crete updates = %v", cre)
	}
	// Dresden gets it too (via Crete's identity mapping — the mapping
	// graph composes M_AC with M_CD).
	dre := res.PerPeer[workload.Dresden]
	if len(dre) != 1 || !dre[0].New.Equal(workload.OPSTuple("mouse", "p53", "ACGT")) {
		t.Errorf("dresden updates = %v", dre)
	}
	// Alaska's own updates are included for uniformity (plus skolemized
	// echo tuples may appear; at minimum the three originals).
	if got := len(res.PerPeer[workload.Alaska]); got < 3 {
		t.Errorf("alaska updates = %v", res.PerPeer[workload.Alaska])
	}
}

func TestJoinNeedsAllThreeParts(t *testing.T) {
	e := fig2Engine(t)
	// O and P alone do not produce an OPS tuple.
	res, err := e.Apply(context.Background(), txn(workload.Alaska, 1,
		updates.Insert("O", workload.OTuple("mouse", 1)),
		updates.Insert("P", workload.PTuple("p53", 10)),
	))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerPeer[workload.Crete]) != 0 {
		t.Errorf("premature OPS: %v", res.PerPeer[workload.Crete])
	}
	// The S tuple published later completes the join.
	res, err = e.Apply(context.Background(), txn(workload.Alaska, 2,
		updates.Insert("S", workload.STuple(1, 10, "ACGT"))))
	if err != nil {
		t.Fatal(err)
	}
	cre := res.PerPeer[workload.Crete]
	if len(cre) != 1 || !cre[0].New.Equal(workload.OPSTuple("mouse", "p53", "ACGT")) {
		t.Errorf("crete updates = %v", cre)
	}
}

func TestCrossTxnJoinYieldsExtraDeps(t *testing.T) {
	e := fig2Engine(t)
	if _, err := e.Apply(context.Background(), txn(workload.Alaska, 1,
		updates.Insert("O", workload.OTuple("mouse", 1)),
		updates.Insert("P", workload.PTuple("p53", 10)))); err != nil {
		t.Fatal(err)
	}
	// Beijing publishes the S tuple; the OPS derivation at Crete joins
	// Beijing's S with Alaska's O and P (via identity B→A), so the
	// candidate at Crete must gain a dependency on Alaska's txn.
	res, err := e.Apply(context.Background(), txn(workload.Beijing, 1,
		updates.Insert("S", workload.STuple(1, 10, "ACGT"))))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerPeer[workload.Crete]) != 1 {
		t.Fatalf("crete updates = %v", res.PerPeer[workload.Crete])
	}
	deps := res.ExtraDeps[workload.Crete]
	want := updates.TxnID{Peer: workload.Alaska, Seq: 1}
	found := false
	for _, d := range deps {
		if d == want {
			found = true
		}
	}
	if !found {
		t.Errorf("crete extra deps = %v, want to include %v", deps, want)
	}
}

func TestSplitMappingInventsSharedNulls(t *testing.T) {
	e := fig2Engine(t)
	res, err := e.Apply(context.Background(), txn(workload.Crete, 1,
		updates.Insert("OPS", workload.OPSTuple("fly", "myc", "GATTACA"))))
	if err != nil {
		t.Fatal(err)
	}
	// Alaska receives O, P, S with invented ids.
	al := res.PerPeer[workload.Alaska]
	if len(al) != 3 {
		t.Fatalf("alaska updates = %v", al)
	}
	var oid, sOid interface{ Key() string }
	for _, u := range al {
		switch u.Rel {
		case "O":
			if !u.New[1].IsLabeledNull() {
				t.Errorf("oid not invented: %v", u.New)
			}
			oid = u.New[1]
		case "S":
			sOid = u.New[0]
		}
	}
	if oid == nil || sOid == nil || oid.Key() != sOid.Key() {
		t.Errorf("skolem oid not shared between O and S: %v vs %v", oid, sOid)
	}
}

func TestDeletePropagates(t *testing.T) {
	e := fig2Engine(t)
	if _, err := e.Apply(context.Background(), txn(workload.Alaska, 1,
		updates.Insert("O", workload.OTuple("mouse", 1)),
		updates.Insert("P", workload.PTuple("p53", 10)),
		updates.Insert("S", workload.STuple(1, 10, "ACGT")))); err != nil {
		t.Fatal(err)
	}
	// Delete the S tuple: Crete's OPS tuple loses its only derivation.
	res, err := e.Apply(context.Background(), txn(workload.Alaska, 2,
		updates.Delete("S", workload.STuple(1, 10, "ACGT"))))
	if err != nil {
		t.Fatal(err)
	}
	cre := res.PerPeer[workload.Crete]
	if len(cre) != 1 || cre[0].Op != updates.OpDelete ||
		!cre[0].Old.Equal(workload.OPSTuple("mouse", "p53", "ACGT")) {
		t.Errorf("crete updates = %v", cre)
	}
	// Beijing loses its copy of S.
	foundDel := false
	for _, u := range res.PerPeer[workload.Beijing] {
		if u.Op == updates.OpDelete && u.Rel == "S" {
			foundDel = true
		}
	}
	if !foundDel {
		t.Errorf("beijing updates = %v", res.PerPeer[workload.Beijing])
	}
}

func TestDeleteWithAlternativeDerivationKeepsTuple(t *testing.T) {
	e := fig2Engine(t)
	// Alaska and Beijing both publish the same O tuple.
	if _, err := e.Apply(context.Background(), txn(workload.Alaska, 1,
		updates.Insert("O", workload.OTuple("mouse", 1)))); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(context.Background(), txn(workload.Beijing, 1,
		updates.Insert("O", workload.OTuple("mouse", 1)))); err != nil {
		t.Fatal(err)
	}
	// Alaska deletes its copy. Beijing's still supports the tuple at both
	// peers, so no deletion is emitted anywhere.
	res, err := e.Apply(context.Background(), txn(workload.Alaska, 2,
		updates.Delete("O", workload.OTuple("mouse", 1))))
	if err != nil {
		t.Fatal(err)
	}
	for peer, us := range res.PerPeer {
		for _, u := range us {
			if u.Op == updates.OpDelete {
				t.Errorf("%s got spurious delete %v", peer, u)
			}
		}
	}
}

func TestModifyTranslatesToModify(t *testing.T) {
	e := fig2Engine(t)
	if _, err := e.Apply(context.Background(), txn(workload.Alaska, 1,
		updates.Insert("O", workload.OTuple("mouse", 1)),
		updates.Insert("P", workload.PTuple("p53", 10)),
		updates.Insert("S", workload.STuple(1, 10, "ACGT")))); err != nil {
		t.Fatal(err)
	}
	// Modify the sequence: Crete sees a modification of its OPS tuple
	// (same (org, prot) key, new seq).
	res, err := e.Apply(context.Background(), txn(workload.Beijing, 1,
		updates.Modify("S", workload.STuple(1, 10, "ACGT"), workload.STuple(1, 10, "TTTT"))))
	if err != nil {
		t.Fatal(err)
	}
	cre := res.PerPeer[workload.Crete]
	if len(cre) != 1 || cre[0].Op != updates.OpModify {
		t.Fatalf("crete updates = %v", cre)
	}
	if !cre[0].Old.Equal(workload.OPSTuple("mouse", "p53", "ACGT")) ||
		!cre[0].New.Equal(workload.OPSTuple("mouse", "p53", "TTTT")) {
		t.Errorf("modify = %v", cre[0])
	}
}

func TestDuplicateApplyRejected(t *testing.T) {
	e := fig2Engine(t)
	tx := txn(workload.Alaska, 1, updates.Insert("O", workload.OTuple("mouse", 1)))
	if _, err := e.Apply(context.Background(), tx); err != nil {
		t.Fatal(err)
	}
	if !e.Applied(tx.ID) {
		t.Error("Applied() false")
	}
	tx2 := txn(workload.Alaska, 1, updates.Insert("O", workload.OTuple("rat", 2)))
	if _, err := e.Apply(context.Background(), tx2); err == nil {
		t.Error("duplicate transaction accepted")
	}
}

func TestUnknownPeerAndRelation(t *testing.T) {
	e := fig2Engine(t)
	if _, err := e.Apply(context.Background(), txn("nowhere", 1, updates.Insert("O", workload.OTuple("x", 1)))); err == nil {
		t.Error("unknown peer accepted")
	}
	if _, err := e.Apply(context.Background(), txn(workload.Alaska, 1, updates.Insert("OPS", workload.OPSTuple("x", "y", "z")))); err == nil {
		t.Error("unknown relation accepted")
	}
}

func TestMaterializePeerTrustFiltering(t *testing.T) {
	e := fig2Engine(t)
	aTx := txn(workload.Alaska, 1,
		updates.Insert("O", workload.OTuple("mouse", 1)),
		updates.Insert("P", workload.PTuple("p53", 10)),
		updates.Insert("S", workload.STuple(1, 10, "ACGT")))
	dTx := txn(workload.Dresden, 1,
		updates.Insert("OPS", workload.OPSTuple("rat", "ins", "CCCC")))
	if _, err := e.Apply(context.Background(), aTx); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(context.Background(), dTx); err != nil {
		t.Fatal(err)
	}
	// Crete trusting everyone sees both OPS tuples.
	all, err := e.MaterializePeer(context.Background(), workload.Crete, func(updates.TxnID) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if all.Table("OPS").Len() != 2 {
		t.Errorf("crete sees %d OPS tuples, want 2", all.Table("OPS").Len())
	}
	// Crete trusting only Dresden sees only Dresden's tuple.
	onlyD, err := e.MaterializePeer(context.Background(), workload.Crete, func(id updates.TxnID) bool {
		return id.Peer == workload.Dresden
	})
	if err != nil {
		t.Fatal(err)
	}
	if onlyD.Table("OPS").Len() != 1 ||
		!onlyD.Contains("OPS", workload.OPSTuple("rat", "ins", "CCCC")) {
		t.Errorf("crete(trust dresden) = %v", onlyD.Table("OPS").Rows())
	}
}

func TestRecomputeMatchesIncremental(t *testing.T) {
	e := fig2Engine(t)
	txns := []*updates.Transaction{
		txn(workload.Alaska, 1,
			updates.Insert("O", workload.OTuple("mouse", 1)),
			updates.Insert("P", workload.PTuple("p53", 10)),
			updates.Insert("S", workload.STuple(1, 10, "ACGT"))),
		txn(workload.Crete, 1,
			updates.Insert("OPS", workload.OPSTuple("fly", "myc", "GGGG"))),
		txn(workload.Beijing, 1,
			updates.Insert("S", workload.STuple(1, 10, "AAAA"))),
		txn(workload.Alaska, 2,
			updates.Delete("S", workload.STuple(1, 10, "ACGT"))),
	}
	for _, tx := range txns {
		if _, err := e.Apply(context.Background(), tx); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := e.Recompute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	incDB := e.UnionDB()
	for _, pred := range batch.Preds() {
		if batch.Rel(pred).Len() != incDB.Rel(pred).Len() {
			t.Errorf("%s: batch=%d incremental=%d", pred, batch.Rel(pred).Len(), incDB.Rel(pred).Len())
		}
		for _, f := range batch.Rel(pred).Facts() {
			if !incDB.Rel(pred).Contains(f.Tuple) {
				t.Errorf("%s: missing %v", pred, f.Tuple)
			}
		}
	}
}
