package exchange

import (
	"context"
	"fmt"
	"testing"

	"orchestra/internal/datalog"
	"orchestra/internal/updates"
	"orchestra/internal/workload"
)

// applyScript feeds a fixed transaction script — inserts completing 3-way
// joins, a split-mapping insert, a modification, and deletions of both base
// and derived data — through one engine.
func applyScript(t *testing.T, e *Engine) []*Result {
	t.Helper()
	var results []*Result
	script := []*updates.Transaction{
		txn(workload.Alaska, 1,
			updates.Insert("O", workload.OTuple("mouse", 1)),
			updates.Insert("P", workload.PTuple("p53", 10)),
			updates.Insert("S", workload.STuple(1, 10, "ACGT"))),
		txn(workload.Alaska, 2,
			updates.Insert("O", workload.OTuple("rat", 2)),
			updates.Insert("P", workload.PTuple("brca1", 20))),
		txn(workload.Beijing, 1,
			updates.Insert("S", workload.STuple(2, 20, "TTTT"))),
		txn(workload.Crete, 1,
			updates.Insert("OPS", workload.OPSTuple("fly", "myc", "GATTACA"))),
		txn(workload.Alaska, 3,
			updates.Modify("S", workload.STuple(1, 10, "ACGT"), workload.STuple(1, 10, "GGGG"))),
		txn(workload.Beijing, 2,
			updates.Delete("S", workload.STuple(2, 20, "TTTT"))),
	}
	for _, tx := range script {
		res, err := e.Apply(context.Background(), tx)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	return results
}

// TestParallelEngineMatchesSequential runs the same update-exchange script
// through a sequential and a parallel engine and demands byte-identical
// union databases, per-peer updates, and dependency sets.
func TestParallelEngineMatchesSequential(t *testing.T) {
	seq := fig2Engine(t)
	par, err := NewEngineWith(workload.Figure2Peers(), workload.Figure2Mappings(), Config{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	seqRes := applyScript(t, seq)
	parRes := applyScript(t, par)
	for i := range seqRes {
		if got, want := fmt.Sprint(parRes[i].PerPeer), fmt.Sprint(seqRes[i].PerPeer); got != want {
			t.Errorf("txn %d: per-peer updates differ:\nparallel:   %s\nsequential: %s", i, got, want)
		}
		if got, want := fmt.Sprint(parRes[i].ExtraDeps), fmt.Sprint(seqRes[i].ExtraDeps); got != want {
			t.Errorf("txn %d: extra deps differ: %s vs %s", i, got, want)
		}
	}
	requireUnionDBsEqual(t, seq.UnionDB(), par.UnionDB())
}

// TestParallelismOverridePath pins the Config.Parallelism resolution: an
// unset config (0 → automatic, runtime.NumCPU() workers) and an explicitly
// forced-sequential config (negative) must produce byte-identical union
// databases and per-peer results on the same script.
func TestParallelismOverridePath(t *testing.T) {
	auto, err := NewEngineWith(workload.Figure2Peers(), workload.Figure2Mappings(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	forced, err := NewEngineWith(workload.Figure2Peers(), workload.Figure2Mappings(), Config{Parallelism: -1})
	if err != nil {
		t.Fatal(err)
	}
	autoRes := applyScript(t, auto)
	forcedRes := applyScript(t, forced)
	for i := range autoRes {
		if got, want := fmt.Sprint(autoRes[i].PerPeer), fmt.Sprint(forcedRes[i].PerPeer); got != want {
			t.Errorf("txn %d: per-peer updates differ:\nauto:       %s\nsequential: %s", i, got, want)
		}
	}
	requireUnionDBsEqual(t, forced.UnionDB(), auto.UnionDB())
}

// TestNoReorderEngineMatchesPlanned does the same for the planner knob.
func TestNoReorderEngineMatchesPlanned(t *testing.T) {
	planned := fig2Engine(t)
	unplanned, err := NewEngineWith(workload.Figure2Peers(), workload.Figure2Mappings(), Config{NoReorder: true})
	if err != nil {
		t.Fatal(err)
	}
	applyScript(t, planned)
	applyScript(t, unplanned)
	requireUnionDBsEqual(t, unplanned.UnionDB(), planned.UnionDB())
}

func requireUnionDBsEqual(t *testing.T, want, got *datalog.DB) {
	t.Helper()
	if fmt.Sprint(want.Preds()) != fmt.Sprint(got.Preds()) {
		t.Fatalf("predicates differ: %v vs %v", got.Preds(), want.Preds())
	}
	for _, pred := range want.Preds() {
		wf, gf := want.Rel(pred).Facts(), got.Rel(pred).Facts()
		if len(wf) != len(gf) {
			t.Fatalf("%s: %d facts, want %d", pred, len(gf), len(wf))
		}
		for i := range wf {
			if !wf[i].Tuple.Equal(gf[i].Tuple) {
				t.Fatalf("%s fact %d: %v != %v", pred, i, gf[i].Tuple, wf[i].Tuple)
			}
			if !wf[i].Prov.Equal(gf[i].Prov) {
				t.Fatalf("%s %v provenance: %v != %v", pred, wf[i].Tuple, gf[i].Prov, wf[i].Prov)
			}
		}
	}
}

// TestParallelRecompute exercises the from-scratch evaluation path (used by
// the E2 baseline) under parallelism. Incremental maintenance and full
// recomputation may legitimately keep different same-degree witness subsets
// once MaxMonomials truncation kicks in, so the parallel recompute is
// compared against a sequential recompute of identical state, where exact
// equality is required.
func TestParallelRecompute(t *testing.T) {
	seq := fig2Engine(t)
	par, err := NewEngineWith(workload.Figure2Peers(), workload.Figure2Mappings(), Config{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	applyScript(t, seq)
	applyScript(t, par)
	seqDB, err := seq.Recompute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	parDB, err := par.Recompute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	requireUnionDBsEqual(t, seqDB, parDB)
}
