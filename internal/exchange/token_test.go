package exchange

import (
	"testing"

	"orchestra/internal/provenance"
	"orchestra/internal/updates"
)

func TestSplitToken(t *testing.T) {
	cases := []struct {
		tok  provenance.Var
		id   updates.TxnID
		idx  int
		isUp bool
	}{
		{"p:3/0", updates.TxnID{Peer: "p", Seq: 3}, 0, true},
		{"p:3/17", updates.TxnID{Peer: "p", Seq: 3}, 17, true},
		{"peer:12/345", updates.TxnID{Peer: "peer", Seq: 12}, 345, true},
		// Trailing slash: no digits follow, so there is no update index.
		// The old parser's empty digit loop fell through to index 0.
		{"peer:3/", updates.TxnID{Peer: "peer", Seq: 3}, -1, true},
		// Garbage after the slash is not an index either.
		{"p:3/x1", updates.TxnID{Peer: "p", Seq: 3}, -1, true},
		// Mapping tokens (no slash) are not update tokens.
		{"M_AC", updates.TxnID{}, -1, false},
		{"", updates.TxnID{}, -1, false},
		// A slash without a parseable peer:seq prefix is not an update token.
		{"nocolon/4", updates.TxnID{}, -1, false},
	}
	for _, c := range cases {
		id, idx, ok := splitToken(c.tok)
		if id != c.id || idx != c.idx || ok != c.isUp {
			t.Errorf("splitToken(%q) = (%v, %d, %v), want (%v, %d, %v)",
				c.tok, id, idx, ok, c.id, c.idx, c.isUp)
		}
	}
}

func TestTokenNewer(t *testing.T) {
	cases := []struct {
		a, b provenance.Var
		want bool
		why  string
	}{
		{"p:10/0", "p:9/0", true, "same peer, numerically later seq is newer"},
		{"p:9/0", "p:10/0", false, "same peer, numerically earlier seq is older"},
		{"p:2/3", "p:2/1", true, "same txn, higher update index is newer"},
		{"p:2/1", "p:2/3", false, "same txn, lower update index is older"},
		// Cross-peer: the lexicographic fallback ordered "a:10/0" below
		// "b:9/0" by the peer prefix; sequence numbers compare numerically
		// first so the later publication wins regardless of peer name.
		{"a:10/0", "b:9/0", true, "cross-peer, higher seq is newer"},
		{"b:9/0", "a:10/0", false, "cross-peer, lower seq is older"},
		{"b:2/0", "a:2/0", true, "cross-peer seq tie breaks by peer name"},
		// Update tokens are newer than mapping tokens.
		{"p:1/0", "M_AC", true, "update token beats mapping token"},
		{"M_AC", "p:1/0", false, "mapping token loses to update token"},
		// Pure mapping tokens fall back to a deterministic string order.
		{"M_CD", "M_AC", true, "mapping tokens order lexicographically"},
		{"M_AC", "M_CD", false, "mapping tokens order lexicographically"},
	}
	for _, c := range cases {
		if got := tokenNewer(c.a, c.b); got != c.want {
			t.Errorf("tokenNewer(%q, %q) = %v, want %v (%s)", c.a, c.b, got, c.want, c.why)
		}
	}
	// Antisymmetry on distinct tokens: exactly one direction is newer.
	toks := []provenance.Var{"p:1/0", "p:1/1", "p:2/0", "q:1/0", "q:3/2", "M_AC", "M_CD", "p:3/"}
	for _, a := range toks {
		for _, b := range toks {
			if a == b {
				continue
			}
			x, y := tokenNewer(a, b), tokenNewer(b, a)
			if x == y {
				t.Errorf("tokenNewer(%q,%q)=%v and tokenNewer(%q,%q)=%v: order is not antisymmetric",
					a, b, x, b, a, y)
			}
		}
	}
}
