// Package exchange implements ORCHESTRA's update translation: propagating
// published transactions through schema mappings into every peer's schema,
// while maintaining provenance. It follows Green, Karvounarakis, Ives, and
// Tannen, "Update Exchange with Mappings and Provenance" (VLDB 2007), the
// paper the SIGMOD'07 demo cites as its translation machinery ([5]):
//
//   - Mappings compile to datalog rules (internal/mapping) evaluated over a
//     global "union database" of all published data, with one provenance
//     token per published tuple-level update.
//   - Insertions propagate incrementally by semi-naive evaluation seeded
//     with the new tuples.
//   - Deletions propagate by killing the deleted tuples' tokens and testing
//     which derived tuples lost every derivation — no re-derivation of the
//     whole instance.
//
// The result of applying a transaction is the set of derived changes per
// peer; the reconciliation layer groups them into candidate transactions.
package exchange

import (
	"context"
	"fmt"
	"sort"

	"orchestra/internal/datalog"
	"orchestra/internal/mapping"
	"orchestra/internal/provenance"
	"orchestra/internal/schema"
	"orchestra/internal/storage"
	"orchestra/internal/updates"
)

// DefaultMaxMonomials bounds each tuple's witness set in the union
// database. On dense or cyclic mapping graphs the number of alternative
// derivation paths is combinatorial; ORCHESTRA's prototype avoided the
// blowup by storing provenance one mapping-hop at a time, and bounded
// witness sets are this implementation's equivalent compromise: the
// shortest derivations — the ones trust conditions and deletion
// propagation act on — are always retained. See DESIGN.md §4.
const DefaultMaxMonomials = 8

// Engine maintains the global union database and translates transactions.
type Engine struct {
	peers    map[string]*schema.Schema
	mappings []*mapping.Mapping
	prog     *datalog.Program
	inc      *datalog.Incremental
	// baseTokens maps (qualified pred, tuple key) to the tokens of the
	// published inserts that created the tuple; deletes kill them.
	baseTokens map[string][]provenance.Var
	applied    map[updates.TxnID]bool
	opts       datalog.Options
	// unionSnap memoizes the frozen view handed out by UnionDB between
	// mutations, so polling after every Apply freezes each extent at most
	// once per mutation epoch.
	unionSnap *datalog.DB
}

// Config tunes the datalog evaluation behind the engine's provenance-aware
// translation. The zero value is the default configuration.
type Config struct {
	// Parallelism bounds the worker pool used to fire independent mapping
	// rules (and delta positions) within a stratum round of the maintained
	// fixpoint. 0 (unset) means automatic — runtime.NumCPU() workers; 1 or
	// any negative value evaluates sequentially. Results are byte-identical
	// at every setting (see datalog.Options.Parallelism).
	Parallelism int
	// NoReorder disables the greedy join-order planner, joining mapping rule
	// bodies strictly in compiled order — the pre-planner behavior, kept as
	// an escape hatch and for A/B benchmarking.
	NoReorder bool
	// MaxMonomials bounds each stored annotation's witness set; 0 means
	// DefaultMaxMonomials, negative means unbounded (exact witness sets, at
	// combinatorial cost on dense mapping graphs).
	MaxMonomials int
	// ReconcileWindow bounds how many fetched transactions a reconciliation
	// feeds through one ApplyAll group-commit window. 0 (unset) sizes
	// windows adaptively from observed backlog and drain latency (see
	// AdaptiveWindow); n > 0 pins the window to n transactions; negative
	// translates the whole backlog as a single batch. Results are identical
	// at every setting — ApplyAll over consecutive sub-batches equals one
	// batched call — so the window only trades peak memory and
	// time-to-first-change against per-batch fixpoint amortization.
	ReconcileWindow int
	// Stats, when non-nil, receives the engine's datalog evaluation counters
	// (probes, emissions, fixpoint rounds, worker utilization). The struct is
	// shared with the evaluator's workers and survives engine rebuilds, so an
	// owner installs one struct for the peer's lifetime.
	Stats *datalog.EvalStats
}

// maxMonomials resolves the configured witness bound.
func (c Config) maxMonomials() int {
	switch {
	case c.MaxMonomials == 0:
		return DefaultMaxMonomials
	case c.MaxMonomials < 0:
		return 0 // unbounded
	default:
		return c.MaxMonomials
	}
}

// NewEngine builds an engine for the given peers and mappings, starting
// from an empty union database.
func NewEngine(peers map[string]*schema.Schema, mappings []*mapping.Mapping) (*Engine, error) {
	return NewEngineWith(peers, mappings, Config{})
}

// NewEngineWith builds an engine with explicit evaluation tuning.
func NewEngineWith(peers map[string]*schema.Schema, mappings []*mapping.Mapping, cfg Config) (*Engine, error) {
	prog, err := mapping.Compile(mappings)
	if err != nil {
		return nil, err
	}
	opts := datalog.Options{
		Provenance:       true,
		ChaseSubsumption: true,
		MaxMonomials:     cfg.maxMonomials(),
		Parallelism:      cfg.Parallelism,
		NoReorder:        cfg.NoReorder,
		Stats:            cfg.Stats,
	}
	inc, err := datalog.NewIncremental(prog, datalog.NewDB(), opts)
	if err != nil {
		return nil, err
	}
	for peer, s := range peers {
		if s == nil {
			return nil, fmt.Errorf("exchange: peer %s has no schema", peer)
		}
	}
	return &Engine{
		peers:      peers,
		mappings:   mappings,
		prog:       prog,
		inc:        inc,
		baseTokens: map[string][]provenance.Var{},
		applied:    map[updates.TxnID]bool{},
		opts:       opts,
	}, nil
}

// Result is the outcome of translating one transaction.
type Result struct {
	// PerPeer maps each peer to the net updates the transaction induces in
	// that peer's schema (including the origin peer's own updates).
	PerPeer map[string][]updates.Update
	// ExtraDeps maps each peer to transactions (other than the applied one)
	// whose published data contributed to a derived insert — the candidate
	// transaction at that peer must also depend on them.
	ExtraDeps map[string][]updates.TxnID
}

// Applied reports whether the transaction has already been fed in.
func (e *Engine) Applied(id updates.TxnID) bool { return e.applied[id] }

// UnionDB exposes the maintained union database as an O(#preds)
// copy-on-write snapshot: the returned view is frozen — later transactions
// applied to the engine do not show through it, and mutating it cannot
// corrupt the engine's incremental state. Callers that previously relied on
// the returned database tracking the engine live should re-call UnionDB
// after each Apply. The snapshot is memoized until the next Apply, so
// polling is cheap.
func (e *Engine) UnionDB() *datalog.DB {
	if e.unionSnap == nil {
		e.unionSnap = e.inc.DB().Snapshot()
	}
	return e.unionSnap
}

// Apply feeds one published transaction into the union database,
// propagates it through the mappings, and returns the per-peer net changes.
// Transactions must be applied in a causal order (antecedents first); the
// store guarantees this ordering. The context bounds the incremental
// fixpoints the insert runs seed; cancellation mid-transaction can leave a
// prefix of the transaction's updates in the union database, so callers
// should treat a context error as fatal for this engine.
func (e *Engine) Apply(ctx context.Context, txn *updates.Transaction) (*Result, error) {
	rs, err := e.ApplyAll(ctx, []*updates.Transaction{txn})
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// ApplyAll is the group-commit form of Apply: it feeds a causally ordered
// batch of published transactions through the engine, running one seeded
// semi-naive fixpoint per run of insert-only transactions instead of one
// per transaction, with per-transaction change attribution through the
// provenance tokens (datalog.Incremental.InsertGroups). Transactions that
// delete or modify split the batch: they must observe the union database
// exactly as the preceding transactions left it. The returned results are
// aligned with txns and identical to applying the transactions one Apply
// call at a time, in order.
//
// The whole batch is validated before anything is applied; a validation
// error leaves the engine untouched. After validation, an error (typically
// context cancellation mid-fixpoint) can leave a prefix of the batch
// applied, which the engine declares fatal — the same contract as Apply.
func (e *Engine) ApplyAll(ctx context.Context, txns []*updates.Transaction) ([]*Result, error) {
	seen := map[updates.TxnID]bool{}
	for _, txn := range txns {
		if e.applied[txn.ID] || seen[txn.ID] {
			return nil, fmt.Errorf("%w: %s", ErrAlreadyApplied, txn.ID)
		}
		seen[txn.ID] = true
		origin := txn.ID.Peer
		s, ok := e.peers[origin]
		if !ok {
			return nil, fmt.Errorf("%w %s", ErrUnknownPeer, origin)
		}
		for _, u := range txn.Updates {
			if s.Relation(u.Rel) == nil {
				return nil, fmt.Errorf("%w: peer %s has no relation %s", ErrUnknownRelation, origin, u.Rel)
			}
			switch u.Op {
			case updates.OpInsert, updates.OpDelete, updates.OpModify:
			default:
				return nil, fmt.Errorf("exchange: unknown op %v", u.Op)
			}
		}
	}
	if len(txns) == 0 {
		return nil, nil
	}
	e.unionSnap = nil // the memoized UnionDB view goes stale on mutation
	results := make([]*Result, len(txns))
	insertOnly := func(txn *updates.Transaction) bool {
		for _, u := range txn.Updates {
			if u.Op != updates.OpInsert {
				return false
			}
		}
		return true
	}
	for i := 0; i < len(txns); {
		if !insertOnly(txns[i]) {
			res, err := e.applyOne(ctx, txns[i])
			if err != nil {
				return nil, err
			}
			results[i] = res
			i++
			continue
		}
		j := i + 1
		for j < len(txns) && insertOnly(txns[j]) {
			j++
		}
		if err := e.applyInsertRun(ctx, txns[i:j], results[i:j]); err != nil {
			return nil, err
		}
		i = j
	}
	return results, nil
}

// applyInsertRun group-commits a run of insert-only transactions through
// one batched propagation, collating each transaction's attributed changes
// separately.
func (e *Engine) applyInsertRun(ctx context.Context, txns []*updates.Transaction, results []*Result) error {
	groups := make([][]datalog.Fact2, len(txns))
	toks := make([][]provenance.Var, len(txns)) // minted once, reused below
	for i, txn := range txns {
		origin := txn.ID.Peer
		toks[i] = make([]provenance.Var, len(txn.Updates))
		for ui, u := range txn.Updates {
			toks[i][ui] = txn.Token(ui)
			groups[i] = append(groups[i], datalog.Fact2{
				Pred:  mapping.Qualify(origin, u.Rel),
				Tuple: u.New,
				Prov:  provenance.NewVar(toks[i][ui]),
			})
		}
	}
	changes, err := e.inc.InsertGroups(ctx, groups)
	if err != nil {
		return err
	}
	// Collation reads each inserted tuple's stored annotation, which after a
	// batched propagation already includes later transactions' derivations;
	// restricting to the tokens published up to each transaction recovers
	// the annotation exactly as that transaction's own Apply would have left
	// it.
	laterTokens := map[provenance.Var]int{}
	for i := range txns {
		for _, tok := range toks[i] {
			laterTokens[tok] = i
		}
	}
	for i, txn := range txns {
		for ui, u := range txn.Updates {
			k := mapping.Qualify(txn.ID.Peer, u.Rel) + "/" + u.New.Key()
			e.baseTokens[k] = append(e.baseTokens[k], toks[i][ui])
		}
		e.applied[txn.ID] = true
		upTo := i
		asOf := func(p provenance.Poly) provenance.Poly {
			return p.Restrict(func(v provenance.Var) bool {
				gi, ok := laterTokens[v]
				return !ok || gi <= upTo
			})
		}
		res, err := e.collate(txn, changes[i], map[updates.TxnID]bool{}, asOf)
		if err != nil {
			return err
		}
		results[i] = res
	}
	return nil
}

// applyOne translates one (already validated) transaction, the
// deletion-capable path.
func (e *Engine) applyOne(ctx context.Context, txn *updates.Transaction) (*Result, error) {
	origin := txn.ID.Peer
	var all []datalog.Change
	depSet := map[updates.TxnID]bool{}
	// Consecutive insertions batch into one semi-naive propagation: a run
	// of inserts seeds a single fixpoint instead of cascading per tuple.
	// Runs break at deletions (and the delete half of a modification),
	// which must observe the database state left by the preceding inserts.
	var pend []pendingInsert
	flush := func() error {
		if len(pend) == 0 {
			return nil
		}
		cs, err := e.insertBatch(ctx, pend)
		pend = pend[:0]
		if err != nil {
			return err
		}
		all = append(all, cs...)
		return nil
	}
	for i, u := range txn.Updates {
		pred := mapping.Qualify(origin, u.Rel)
		switch u.Op {
		case updates.OpInsert:
			pend = append(pend, pendingInsert{pred: pred, tuple: u.New, tok: txn.Token(i)})
		case updates.OpDelete:
			if err := flush(); err != nil {
				return nil, err
			}
			all = append(all, e.delete(pred, u.Old, txn.ID, depSet)...)
		case updates.OpModify:
			if err := flush(); err != nil {
				return nil, err
			}
			all = append(all, e.delete(pred, u.Old, txn.ID, depSet)...)
			pend = append(pend, pendingInsert{pred: pred, tuple: u.New, tok: txn.Token(i)})
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	e.applied[txn.ID] = true
	return e.collate(txn, all, depSet, nil)
}

// pendingInsert is one insertion awaiting batched propagation.
type pendingInsert struct {
	pred  string
	tuple schema.Tuple
	tok   provenance.Var
}

// insertBatch feeds a run of insertions through one incremental fixpoint.
func (e *Engine) insertBatch(ctx context.Context, pend []pendingInsert) ([]datalog.Change, error) {
	facts := make([]datalog.Fact2, len(pend))
	for i, p := range pend {
		facts[i] = datalog.Fact2{Pred: p.pred, Tuple: p.tuple, Prov: provenance.NewVar(p.tok)}
	}
	cs, err := e.inc.Insert(ctx, facts)
	if err != nil {
		return nil, err
	}
	for _, p := range pend {
		k := p.pred + "/" + p.tuple.Key()
		e.baseTokens[k] = append(e.baseTokens[k], p.tok)
	}
	return cs, nil
}

// delete translates one deletion. Two cases, per DESIGN.md:
//
//   - The origin peer owns base tokens for the tuple (it published the
//     insert itself): a true retraction. The tokens are killed in the
//     union database and the loss propagates by derivability.
//
//   - The tuple is *derived* at the origin (e.g. Beijing deleting or
//     modifying data it received from Alaska — demo scenario 3): the
//     union database keeps the original publisher's data, because other
//     peers may keep trusting it; the candidate transaction carries the
//     would-be deletions, computed read-only from the tuple's supporting
//     tokens, and gains dependencies on the supporting transactions.
func (e *Engine) delete(pred string, tu schema.Tuple, self updates.TxnID, depSet map[updates.TxnID]bool) []datalog.Change {
	k := pred + "/" + tu.Key()
	if toks := e.baseTokens[k]; len(toks) > 0 {
		delete(e.baseTokens, k)
		return e.inc.DeleteBase(toks)
	}
	f, ok := e.inc.DB().Rel(pred).Get(tu)
	if !ok {
		return nil // deleting a tuple that does not exist: no-op
	}
	supports := e.minimalKillSet(f.Prov)
	if len(supports) == 0 {
		return nil
	}
	for _, v := range supports {
		if id, isTok := updates.TokenTxn(v); isTok && id != self {
			depSet[id] = true
		}
	}
	return e.inc.Affected(supports)
}

// minimalKillSet chooses update tokens whose removal makes the polynomial
// underivable. Deleting a derived tuple is the classic view-deletion
// problem with multiple minimal solutions; we use a greedy hitting set over
// the witness monomials, preferring the token with the least collateral
// damage (fewest other facts depending on it). E.g. modifying a protein
// sequence kills the S-tuple token, not the organism or protein rows.
func (e *Engine) minimalKillSet(p provenance.Poly) []provenance.Var {
	type mono struct {
		toks []provenance.Var
	}
	var monos []mono
	for _, m := range p.Monomials() {
		var toks []provenance.Var
		for _, vp := range m.Vars {
			if _, isTok := updates.TokenTxn(vp.Var); isTok {
				toks = append(toks, vp.Var)
			}
		}
		if len(toks) == 0 {
			return nil // a token-free derivation exists; the tuple cannot be killed
		}
		monos = append(monos, mono{toks: toks})
	}
	alive := func(i int, kill map[provenance.Var]bool) bool {
		for _, t := range monos[i].toks {
			if kill[t] {
				return false
			}
		}
		return true
	}
	kill := map[provenance.Var]bool{}
	for {
		remaining := 0
		counts := map[provenance.Var]int{}
		for i := range monos {
			if !alive(i, kill) {
				continue
			}
			remaining++
			for _, t := range monos[i].toks {
				counts[t]++
			}
		}
		if remaining == 0 {
			break
		}
		// Prefer tokens hitting more monomials; break ties by least
		// collateral, then by most recently minted (latest transaction,
		// highest update index) — the most specific contributor. For the
		// Figure 2 join this picks the sequence row over the organism or
		// protein rows when collateral counts tie.
		var best provenance.Var
		bestCollateral := -1
		bestHits := 0
		for t, hits := range counts {
			collateral := e.inc.DependentCount(t)
			better := bestCollateral == -1 || hits > bestHits ||
				(hits == bestHits && (collateral < bestCollateral ||
					(collateral == bestCollateral && tokenNewer(t, best))))
			if better {
				best, bestCollateral, bestHits = t, collateral, hits
			}
		}
		kill[best] = true
	}
	out := make([]provenance.Var, 0, len(kill))
	for t := range kill {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// collate turns raw changes into per-peer net updates, pairing same-key
// delete/insert into modifications and dropping provenance-only changes.
// Each inserted update carries the tuple's full stored annotation as of
// this transaction — the complete witness set trust evaluation and
// subscribers should see, not just the fixpoint's first-emission slice. The
// optional asOf restriction masks tokens of transactions applied after this
// one in the same group-commit batch (nil means the union database already
// reflects exactly this transaction's application point).
func (e *Engine) collate(txn *updates.Transaction, changes []datalog.Change, depSet map[updates.TxnID]bool, asOf func(provenance.Poly) provenance.Poly) (*Result, error) {
	type slot struct {
		pred     string
		inserted *datalog.Change
		removed  *datalog.Change
	}
	// Net effect per (pred, full tuple key): insertion cancelled by
	// removal and vice versa.
	net := map[string]*slot{}
	order := []string{}
	for i := range changes {
		c := &changes[i]
		if !c.Fresh && !c.Removed {
			continue // provenance-only growth or shrink
		}
		tk := c.Key
		if tk == "" {
			tk = c.Tuple.Key()
		}
		k := c.Pred + "/" + tk
		s, ok := net[k]
		if !ok {
			s = &slot{pred: c.Pred}
			net[k] = s
			order = append(order, k)
		}
		if c.Removed {
			if s.inserted != nil {
				s.inserted = nil // inserted then removed within this txn
			} else {
				s.removed = c
			}
		} else {
			if s.removed != nil && s.removed.Tuple.Equal(c.Tuple) {
				s.removed = nil // removed then re-inserted: no net change
			} else {
				s.inserted = c
			}
		}
	}
	sort.Strings(order)

	res := &Result{PerPeer: map[string][]updates.Update{}, ExtraDeps: map[string][]updates.TxnID{}}
	extra := map[string]map[updates.TxnID]bool{}
	type keyed struct {
		dels map[string]updates.Update // relation-key -> delete update
		rel  *schema.Relation
	}
	// First pass: collect deletes per (peer, rel, key) so inserts can be
	// paired into modifies.
	pendingDel := map[string]map[string]schema.Tuple{} // peer.rel -> keyKey -> old tuple
	for _, k := range order {
		s := net[k]
		if s.removed == nil {
			continue
		}
		peer, rel, err := mapping.SplitQualified(s.pred)
		if err != nil {
			return nil, err
		}
		r := e.peers[peer].Relation(rel)
		if r == nil {
			continue // mapping wrote to a relation the peer doesn't declare
		}
		m := pendingDel[s.pred]
		if m == nil {
			m = map[string]schema.Tuple{}
			pendingDel[s.pred] = m
		}
		m[r.KeyOf(s.removed.Tuple).Key()] = s.removed.Tuple
	}
	// Second pass: emit updates.
	for _, k := range order {
		s := net[k]
		if s.inserted == nil {
			continue
		}
		peer, rel, err := mapping.SplitQualified(s.pred)
		if err != nil {
			return nil, err
		}
		r := e.peers[peer].Relation(rel)
		if r == nil {
			continue
		}
		var u updates.Update
		matched := false
		if len(pendingDel) > 0 { // key projection only needed when deletes can pair
			kk := r.KeyOf(s.inserted.Tuple).Key()
			if old, ok := pendingDel[s.pred][kk]; ok {
				u = updates.Modify(rel, old, s.inserted.Tuple)
				delete(pendingDel[s.pred], kk)
				matched = true
			}
		}
		if !matched {
			u = updates.Insert(rel, s.inserted.Tuple)
		}
		u.Prov = s.inserted.Prov
		if f, ok := e.inc.DB().Rel(s.pred).Get(s.inserted.Tuple); ok {
			u.Prov = f.Prov
			if asOf != nil {
				u.Prov = asOf(u.Prov)
			}
		}
		res.PerPeer[peer] = append(res.PerPeer[peer], u)
		// Extra dependencies: the candidate needs *one* derivation of the
		// tuple to hold, so it depends on the transactions of the monomial
		// with the fewest foreign contributors — not the union over all
		// alternative derivations (which would turn genuine conflicts
		// between independent publishers into false dependencies).
		for _, id := range minimalDeps(u.Prov, txn.ID) {
			if extra[peer] == nil {
				extra[peer] = map[updates.TxnID]bool{}
			}
			extra[peer][id] = true
		}
	}
	// Remaining unpaired deletes.
	for pred, m := range pendingDel {
		peer, rel, err := mapping.SplitQualified(pred)
		if err != nil {
			return nil, err
		}
		keys := make([]string, 0, len(m))
		for kk := range m {
			keys = append(keys, kk)
		}
		sort.Strings(keys)
		for _, kk := range keys {
			res.PerPeer[peer] = append(res.PerPeer[peer], updates.Delete(rel, m[kk]))
		}
	}
	// Dependencies from foreign deletions apply to every peer that
	// received updates from this transaction.
	for peer := range res.PerPeer {
		ids := extra[peer]
		if ids == nil {
			ids = map[updates.TxnID]bool{}
			extra[peer] = ids
		}
		for id := range depSet {
			ids[id] = true
		}
	}
	for peer, ids := range extra {
		out := make([]updates.TxnID, 0, len(ids))
		for id := range ids {
			out = append(out, id)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
		res.ExtraDeps[peer] = out
	}
	return res, nil
}

// tokenNewer orders update tokens by recency: higher sequence number first,
// then higher update index, then peer name as a deterministic tie-break.
// Update tokens always order newer than non-update (mapping) tokens; the raw
// string comparison is only the fallback when neither side parses. Comparing
// the parsed numeric fields matters: the old lexicographic fallback ordered
// cross-peer tokens by their string prefix, so a seq-10 token could lose to
// a seq-2 token published earlier.
func tokenNewer(a, b provenance.Var) bool {
	ida, ia, aok := splitToken(a)
	idb, ib, bok := splitToken(b)
	switch {
	case aok && bok:
		if ida.Seq != idb.Seq {
			return ida.Seq > idb.Seq
		}
		if ia != ib {
			return ia > ib
		}
		return ida.Peer > idb.Peer
	case aok != bok:
		return aok
	default:
		return a > b
	}
}

// splitToken parses "peer:seq/idx" into the transaction id, the update
// index, and whether the token is an update token at all. idx is -1 when no
// well-formed index follows the slash — including the trailing-slash form
// "peer:seq/", which the old digit loop silently parsed as index 0.
func splitToken(v provenance.Var) (updates.TxnID, int, bool) {
	id, ok := updates.TokenTxn(v)
	if !ok {
		return updates.TxnID{}, -1, false
	}
	s := string(v)
	idx := -1
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			digits := s[i+1:]
			if len(digits) == 0 {
				return id, -1, true
			}
			n := 0
			for _, c := range digits {
				if c < '0' || c > '9' {
					return id, -1, true
				}
				n = n*10 + int(c-'0')
			}
			idx = n
			break
		}
	}
	return id, idx, true
}

// minimalDeps returns the foreign transaction set of the monomial of p with
// the fewest foreign contributors (ties broken deterministically).
func minimalDeps(p provenance.Poly, self updates.TxnID) []updates.TxnID {
	var best []updates.TxnID
	found := false
	var ids []updates.TxnID // reused across monomials; winners are copied out
	for _, m := range p.Monomials() {
		ids = ids[:0]
		for _, vp := range m.Vars {
			id, ok := updates.TokenTxn(vp.Var)
			if !ok || id == self {
				continue
			}
			dup := false
			for _, e := range ids {
				if e == id {
					dup = true
					break
				}
			}
			if !dup {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
		if !found || len(ids) < len(best) || (len(ids) == len(best) && lessIDs(ids, best)) {
			best = append(best[:0], ids...)
			found = true
		}
	}
	return best
}

func lessIDs(a, b []updates.TxnID) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i].Less(b[i])
		}
	}
	return len(a) < len(b)
}

// MaterializePeer builds the storage instance a peer would hold if it
// accepted exactly the transactions for which trusts returns true: a tuple
// is present iff its provenance is derivable using only tokens of trusted
// transactions (mapping tokens are always alive). This is the declarative
// counterpart of incrementally applying accepted candidate updates, used
// for cross-checking and for cold-start materialization. The context is
// checked per relation; materialization mutates only the returned instance,
// so cancellation is safe at any point.
func (e *Engine) MaterializePeer(ctx context.Context, peer string, trusts func(updates.TxnID) bool) (*storage.Instance, error) {
	s, ok := e.peers[peer]
	if !ok {
		return nil, fmt.Errorf("%w %s", ErrUnknownPeer, peer)
	}
	alive := func(v provenance.Var) bool {
		id, isTok := updates.TokenTxn(v)
		if !isTok {
			return true // mapping token
		}
		return trusts(id)
	}
	inst := storage.NewInstance(s)
	db := e.inc.DB()
	for _, rel := range s.Relations() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pred := mapping.Qualify(peer, rel.Name)
		if !db.Has(pred) {
			continue
		}
		for _, f := range db.Rel(pred).Facts() {
			if !f.Prov.Derivable(alive) {
				continue
			}
			if err := inst.Insert(rel.Name, f.Tuple, f.Prov.Restrict(alive)); err != nil {
				// Key violations can occur when two trusted transactions
				// disagree; materialization is first-writer-wins here, and
				// reconciliation is responsible for not trusting
				// conflicting transactions simultaneously.
				var kv *storage.ErrKeyViolation
				if asKeyViolation(err, &kv) {
					continue
				}
				return nil, err
			}
		}
	}
	return inst, nil
}

func asKeyViolation(err error, target **storage.ErrKeyViolation) bool {
	kv, ok := err.(*storage.ErrKeyViolation)
	if ok {
		*target = kv
	}
	return ok
}

// Recompute rebuilds the union database from scratch using the base facts
// currently alive — the non-incremental baseline for benchmarking
// incremental maintenance (experiment E2).
func (e *Engine) Recompute(ctx context.Context) (*datalog.DB, error) {
	edb := datalog.NewDB()
	for k, toks := range e.baseTokens {
		// k is pred + "/" + tupleKey
		for i := 0; i < len(k); i++ {
			if k[i] == '/' {
				pred := k[:i]
				tu, err := schema.ParseTupleKey(k[i+1:])
				if err != nil {
					return nil, err
				}
				p := provenance.Zero()
				for _, t := range toks {
					p = p.Add(provenance.NewVar(t))
				}
				edb.Add(pred, tu, p)
				break
			}
		}
	}
	return datalog.EvalCtx(ctx, e.prog, edb, e.opts)
}
