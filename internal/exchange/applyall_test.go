package exchange

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"orchestra/internal/mapping"
	"orchestra/internal/schema"
	"orchestra/internal/updates"
	"orchestra/internal/workload"
)

// resultsEqual asserts two translation results are identical: per-peer
// update lists (ops, tuples, and provenance) and dependency sets.
func resultsEqual(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if len(want.PerPeer) != len(got.PerPeer) {
		t.Fatalf("%s: peers with updates: %d vs %d\n want=%v\n got=%v", label, len(want.PerPeer), len(got.PerPeer), want.PerPeer, got.PerPeer)
	}
	for peer, wus := range want.PerPeer {
		gus := got.PerPeer[peer]
		if len(wus) != len(gus) {
			t.Fatalf("%s: %s updates: %d vs %d\n want=%v\n got=%v", label, peer, len(wus), len(gus), wus, gus)
		}
		for i := range wus {
			w, g := wus[i], gus[i]
			tupEq := func(a, b schema.Tuple) bool {
				if (a == nil) != (b == nil) {
					return false
				}
				return a == nil || a.Equal(b)
			}
			if w.Rel != g.Rel || w.Op != g.Op || !tupEq(w.Old, g.Old) || !tupEq(w.New, g.New) || !w.Prov.Equal(g.Prov) {
				t.Fatalf("%s: %s update %d differs:\n want=%+v prov=%v\n got=%+v prov=%v", label, peer, i, w, w.Prov, g, g.Prov)
			}
		}
	}
	if len(want.ExtraDeps) != len(got.ExtraDeps) {
		t.Fatalf("%s: extra-dep peers: %v vs %v", label, want.ExtraDeps, got.ExtraDeps)
	}
	for peer, wd := range want.ExtraDeps {
		gd := got.ExtraDeps[peer]
		if len(wd) != len(gd) {
			t.Fatalf("%s: %s extra deps: %v vs %v", label, peer, wd, gd)
		}
		for i := range wd {
			if wd[i] != gd[i] {
				t.Fatalf("%s: %s extra deps: %v vs %v", label, peer, wd, gd)
			}
		}
	}
}

// unionDBsEqual asserts the two engines maintain identical union databases,
// stored provenance included.
func unionDBsEqual(t *testing.T, label string, a, b *Engine) {
	t.Helper()
	da, db := a.UnionDB(), b.UnionDB()
	ap, bp := da.Preds(), db.Preds()
	if fmt.Sprint(ap) != fmt.Sprint(bp) {
		t.Fatalf("%s: predicates %v vs %v", label, ap, bp)
	}
	for _, p := range ap {
		fa, fb := da.Rel(p).Facts(), db.Rel(p).Facts()
		if len(fa) != len(fb) {
			t.Fatalf("%s: %s: %d vs %d facts", label, p, len(fa), len(fb))
		}
		for i := range fa {
			if !fa[i].Tuple.Equal(fb[i].Tuple) {
				t.Fatalf("%s: %s fact %d: %v vs %v", label, p, i, fa[i].Tuple, fb[i].Tuple)
			}
			if !fa[i].Prov.Equal(fb[i].Prov) {
				t.Fatalf("%s: %s%v prov: %v vs %v", label, p, fa[i].Tuple, fa[i].Prov, fb[i].Prov)
			}
		}
	}
}

// checkApplyAllEquivalence applies txns one at a time to one engine and as
// a single batch to its twin, then compares every per-transaction result
// and the final union databases.
func checkApplyAllEquivalence(t *testing.T, label string, peers func() map[string]*schema.Schema, mappings func() []*mapping.Mapping, txns []*updates.Transaction) {
	t.Helper()
	// Unbounded witness sets: batched and sequential translation are
	// identical exactly when the MaxMonomials truncation does not bind (a
	// binding bound may keep different — equally valid — short derivations
	// on the two paths; see Engine.ApplyAll).
	cfg := Config{MaxMonomials: -1}
	seqE, err := NewEngineWith(peers(), mappings(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	batE, err := NewEngineWith(peers(), mappings(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*Result, len(txns))
	for i, txn := range txns {
		res, err := seqE.Apply(context.Background(), txn)
		if err != nil {
			t.Fatalf("%s: sequential apply %s: %v", label, txn.ID, err)
		}
		want[i] = res
	}
	got, err := batE.ApplyAll(context.Background(), txns)
	if err != nil {
		t.Fatalf("%s: ApplyAll: %v", label, err)
	}
	for i := range txns {
		resultsEqual(t, fmt.Sprintf("%s txn %s", label, txns[i].ID), want[i], got[i])
	}
	unionDBsEqual(t, label, seqE, batE)
}

// A multi-peer Figure 2 burst: Alaska and Beijing interleave S publications
// over shared dimension rows, so derived OPS tuples join data across
// transactions of the batch.
func TestApplyAllEquivalenceFigure2Burst(t *testing.T) {
	var txns []*updates.Transaction
	txns = append(txns, workload.OPBaseTxn(workload.Alaska, 1, 4, 6))
	sa := workload.Stream(workload.Alaska, 2, 12, workload.StreamOpts{TxnSize: 2, KeySpace: 4, Seed: 5})
	sb := workload.Stream(workload.Beijing, 1, 12, workload.StreamOpts{TxnSize: 2, KeySpace: 4, Seed: 9})
	for i := range sa {
		txns = append(txns, sa[i], sb[i])
	}
	checkApplyAllEquivalence(t, "fig2", workload.Figure2Peers, workload.Figure2Mappings, txns)
}

// Deletions and modifications split the batch: the run around them must
// still translate identically, including the foreign deletion of derived
// data (kill sets) mid-burst.
func TestApplyAllEquivalenceWithDeletes(t *testing.T) {
	var txns []*updates.Transaction
	txns = append(txns, workload.OPBaseTxn(workload.Alaska, 1, 3, 4))
	s1 := workload.STuple(0, 1, "AAAA")
	s2 := workload.STuple(1, 2, "CCCC")
	txns = append(txns,
		txn(workload.Alaska, 2, updates.Insert("S", s1)),
		txn(workload.Beijing, 1, updates.Insert("S", s2)),
		// Beijing deletes derived data it received from Alaska.
		txn(workload.Beijing, 2, updates.Delete("S", s1)),
		txn(workload.Alaska, 3, updates.Insert("S", workload.STuple(2, 3, "GGGG"))),
		// Alaska retracts its own row (true deletion, kills the token).
		txn(workload.Alaska, 4, updates.Delete("S", s1)),
		txn(workload.Alaska, 5, updates.Modify("S", workload.STuple(2, 3, "GGGG"), workload.STuple(2, 3, "TTTT"))),
		txn(workload.Beijing, 3, updates.Insert("S", workload.STuple(0, 3, "AATT"))),
	)
	checkApplyAllEquivalence(t, "deletes", workload.Figure2Peers, workload.Figure2Mappings, txns)
}

// An identity mesh: every insert echoes through every peer, the same logical
// tuple is published by different peers (cross-group shared derived tuples),
// and one peer re-publishes its own tuple (seed overlap, which must split
// the batched propagation into runs).
func TestApplyAllEquivalenceMeshOverlap(t *testing.T) {
	topo := workload.Mesh(3)
	s := func(k int64, seq string) schema.Tuple { return workload.STuple(k, k, seq) }
	txns := []*updates.Transaction{
		txn("p00", 1, updates.Insert("S", s(1, "AA"))),
		txn("p01", 1, updates.Insert("S", s(1, "AA"))), // same tuple, different peer
		txn("p02", 1, updates.Insert("S", s(2, "CC"))),
		txn("p00", 2, updates.Insert("S", s(2, "CC"))), // echo of p02's data
		txn("p00", 3, updates.Insert("S", s(1, "AA"))), // re-publish: seed overlap with own txn 1
		txn("p01", 2, updates.Insert("S", s(3, "GG"))),
	}
	checkApplyAllEquivalence(t, "mesh",
		func() map[string]*schema.Schema { return topo.Peers },
		func() []*mapping.Mapping { return topo.Mappings },
		txns)
}

// Randomized property: arbitrary multi-peer insert/delete/modify streams
// over the Figure 2 CDSS translate identically batched and sequential.
func TestApplyAllEquivalenceProperty(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		var txns []*updates.Transaction
		txns = append(txns, workload.OPBaseTxn(workload.Alaska, 1, 3, 5))
		seqs := map[string]uint64{workload.Alaska: 2, workload.Beijing: 1, workload.Crete: 1}
		peers := []string{workload.Alaska, workload.Beijing}
		var live []schema.Tuple
		n := 8 + rng.Intn(16)
		for i := 0; i < n; i++ {
			peer := peers[rng.Intn(len(peers))]
			id := updates.TxnID{Peer: peer, Seq: seqs[peer]}
			seqs[peer]++
			var ups []updates.Update
			k := 1 + rng.Intn(2)
			for j := 0; j < k; j++ {
				switch {
				case len(live) > 0 && rng.Intn(5) == 0:
					// Delete a random previously inserted tuple (possibly at
					// a peer that only holds it as derived data).
					tu := live[rng.Intn(len(live))]
					ups = append(ups, updates.Delete("S", tu))
				case len(live) > 0 && rng.Intn(6) == 0:
					tu := live[rng.Intn(len(live))]
					nw := workload.STuple(tu[0].IntVal(), tu[1].IntVal(), fmt.Sprintf("MOD%d", i))
					ups = append(ups, updates.Modify("S", tu, nw))
					live = append(live, nw)
				default:
					tu := workload.STuple(int64(rng.Intn(3)), int64(10+rng.Intn(8)), fmt.Sprintf("SEQ%d_%d", i, j))
					ups = append(ups, updates.Insert("S", tu))
					live = append(live, tu)
				}
			}
			txns = append(txns, &updates.Transaction{ID: id, Updates: ups})
		}
		checkApplyAllEquivalence(t, fmt.Sprintf("property trial %d", trial),
			workload.Figure2Peers, workload.Figure2Mappings, txns)
	}
}

// ApplyAll validates the whole batch up front: a duplicate or malformed
// transaction rejects the batch before any state changes.
func TestApplyAllValidatesUpfront(t *testing.T) {
	e := fig2Engine(t)
	good := txn(workload.Alaska, 1, updates.Insert("O", workload.OTuple("mouse", 1)))
	bad := txn(workload.Alaska, 2, updates.Insert("Nope", workload.OTuple("mouse", 1)))
	if _, err := e.ApplyAll(context.Background(), []*updates.Transaction{good, bad}); !errors.Is(err, ErrUnknownRelation) {
		t.Fatalf("expected ErrUnknownRelation, got %v", err)
	}
	if e.Applied(good.ID) {
		t.Fatal("validation failure must not apply any transaction of the batch")
	}
	if _, err := e.ApplyAll(context.Background(), []*updates.Transaction{good, good}); !errors.Is(err, ErrAlreadyApplied) {
		t.Fatalf("expected ErrAlreadyApplied for in-batch duplicate, got %v", err)
	}
	if _, err := e.Apply(context.Background(), good); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ApplyAll(context.Background(), []*updates.Transaction{good}); !errors.Is(err, ErrAlreadyApplied) {
		t.Fatalf("expected ErrAlreadyApplied, got %v", err)
	}
}
