package exchange

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"orchestra/internal/updates"
	"orchestra/internal/workload"
)

// unionFingerprint renders the engine's union database — predicates, tuples,
// and provenance strings — so any state divergence shows as a diff.
func unionFingerprint(e *Engine) string {
	var b strings.Builder
	db := e.UnionDB()
	for _, pred := range db.Preds() {
		b.WriteString(pred)
		b.WriteString(":\n")
		for _, f := range db.Rel(pred).Facts() {
			fmt.Fprintf(&b, "  %v @ %s\n", f.Tuple, f.Prov)
		}
	}
	return b.String()
}

// applyHistory drives a mixed workload: cross-peer inserts that derive
// joined tuples, a modify, and a delete — exercising base tokens, dead
// tokens, and the token-occurrence index.
func applyHistory(t *testing.T, e *Engine) []*Result {
	t.Helper()
	var results []*Result
	txns := []*updates.Transaction{
		txn(workload.Alaska, 1,
			updates.Insert("O", workload.OTuple("mouse", 1)),
			updates.Insert("P", workload.PTuple("p53", 10)),
			updates.Insert("S", workload.STuple(1, 10, "ACGT"))),
		txn(workload.Beijing, 1,
			updates.Insert("S", workload.STuple(1, 10, "TTTT"))),
		txn(workload.Alaska, 2,
			updates.Modify("S", workload.STuple(1, 10, "ACGT"), workload.STuple(1, 10, "GGGG"))),
		txn(workload.Beijing, 2,
			updates.Delete("S", workload.STuple(1, 10, "TTTT"))),
	}
	for _, tx := range txns {
		res, err := e.Apply(context.Background(), tx)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	return results
}

// TestEngineStateRoundTrip pins that SaveState→LoadState reproduces the
// engine exactly: same union database (tuples AND provenance), same applied
// set, and identical behavior on subsequent transactions — including
// deletions, which depend on the restored base tokens, dead set, and token
// occurrences.
func TestEngineStateRoundTrip(t *testing.T) {
	live := fig2Engine(t)
	applyHistory(t, live)
	blob, err := live.SaveState()
	if err != nil {
		t.Fatal(err)
	}

	restored := fig2Engine(t)
	if err := restored.LoadState(blob); err != nil {
		t.Fatal(err)
	}
	if want, got := unionFingerprint(live), unionFingerprint(restored); want != got {
		t.Fatalf("restored union DB differs:\nlive:\n%s\nrestored:\n%s", want, got)
	}
	for _, id := range []updates.TxnID{{Peer: workload.Alaska, Seq: 1}, {Peer: workload.Alaska, Seq: 2},
		{Peer: workload.Beijing, Seq: 1}, {Peer: workload.Beijing, Seq: 2}} {
		if !restored.Applied(id) {
			t.Fatalf("restored engine lost applied txn %s", id)
		}
	}
	if restored.Applied(updates.TxnID{Peer: workload.Crete, Seq: 1}) {
		t.Fatal("restored engine invented an applied txn")
	}

	// Both engines must now translate the same future identically — a
	// delete of a base tuple (kills restored base tokens) and a fresh
	// insert joining against restored state.
	future := []*updates.Transaction{
		txn(workload.Alaska, 3, updates.Delete("O", workload.OTuple("mouse", 1))),
		txn(workload.Beijing, 3, updates.Insert("O", workload.OTuple("rat", 2))),
	}
	for _, tx := range future {
		cp := *tx
		wantRes, err := live.Apply(context.Background(), &cp)
		if err != nil {
			t.Fatal(err)
		}
		gotRes, err := restored.Apply(context.Background(), tx)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(describeResult(wantRes), describeResult(gotRes)) {
			t.Fatalf("txn %s diverged:\nlive: %v\nrestored: %v", tx.ID, describeResult(wantRes), describeResult(gotRes))
		}
	}
	if want, got := unionFingerprint(live), unionFingerprint(restored); want != got {
		t.Fatalf("union DBs diverged after post-restore traffic:\nlive:\n%s\nrestored:\n%s", want, got)
	}
}

// describeResult renders a Result deterministically (updates with
// provenance strings plus extra deps) for comparison.
func describeResult(r *Result) map[string][]string {
	out := map[string][]string{}
	for peer, ups := range r.PerPeer {
		for _, u := range ups {
			out[peer] = append(out[peer], fmt.Sprintf("%s @ %s", u, u.Prov))
		}
		for _, id := range r.ExtraDeps[peer] {
			out[peer] = append(out[peer], "dep:"+id.String())
		}
	}
	return out
}

func TestEngineStateRejectsCorruptBlobs(t *testing.T) {
	e := fig2Engine(t)
	applyHistory(t, e)
	blob, err := e.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	fresh := fig2Engine(t)
	if err := fresh.LoadState([]byte("nope")); err == nil {
		t.Fatal("bad magic accepted")
	}
	for _, cut := range []int{5, len(blob) / 2, len(blob) - 1} {
		if err := fresh.LoadState(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if err := fresh.LoadState(append(append([]byte(nil), blob...), 1)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	// A failed load leaves the engine usable and empty.
	if fresh.Applied(updates.TxnID{Peer: workload.Alaska, Seq: 1}) {
		t.Fatal("failed LoadState mutated the engine")
	}
	if err := fresh.LoadState(blob); err != nil {
		t.Fatal(err)
	}
	if stats, err := StatState(blob); err != nil || stats.Facts == 0 || stats.Preds == 0 {
		t.Fatalf("StatState = %+v, %v", stats, err)
	}
}
