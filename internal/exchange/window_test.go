package exchange

import (
	"testing"
	"time"
)

func TestAdaptiveWindowFixed(t *testing.T) {
	w := NewAdaptiveWindow(10)
	if got := w.Next(100); got != 10 {
		t.Fatalf("fixed window Next(100) = %d, want 10", got)
	}
	if got := w.Next(3); got != 3 {
		t.Fatalf("fixed window Next(3) = %d, want 3 (backlog clamp)", got)
	}
	if got := w.Next(0); got != 0 {
		t.Fatalf("fixed window Next(0) = %d, want 0", got)
	}
	// Observations must not move a fixed window.
	w.Observe(10, time.Hour)
	if got := w.Next(100); got != 10 {
		t.Fatalf("fixed window after Observe: Next(100) = %d, want 10", got)
	}
}

func TestAdaptiveWindowUnbounded(t *testing.T) {
	w := NewAdaptiveWindow(-1)
	if got := w.Next(12345); got != 12345 {
		t.Fatalf("unbounded window Next(12345) = %d, want whole backlog", got)
	}
	w.Observe(12345, time.Hour)
	if got := w.Next(7); got != 7 {
		t.Fatalf("unbounded window after Observe: Next(7) = %d, want 7", got)
	}
}

func TestAdaptiveWindowSeedAndClamp(t *testing.T) {
	w := NewAdaptiveWindow(0)
	if got := w.Next(1_000_000); got != windowSeed {
		t.Fatalf("unobserved adaptive Next = %d, want seed %d", got, windowSeed)
	}
	if got := w.Next(5); got != 5 {
		t.Fatalf("adaptive Next(5) = %d, want 5 (backlog clamp)", got)
	}
	if got := w.Next(0); got != 0 {
		t.Fatalf("adaptive Next(0) = %d, want 0", got)
	}
}

func TestAdaptiveWindowGrowsWhenFast(t *testing.T) {
	w := NewAdaptiveWindow(0)
	// Drains at ~1µs/txn: the target latency affords far more than
	// windowMax transactions, so the window must pin to the ceiling.
	for i := 0; i < 8; i++ {
		w.Observe(64, 64*time.Microsecond)
	}
	if got := w.Next(1_000_000); got != windowMax {
		t.Fatalf("fast-drain adaptive Next = %d, want max %d", got, windowMax)
	}
}

func TestAdaptiveWindowShrinksWhenSlow(t *testing.T) {
	w := NewAdaptiveWindow(0)
	// Drains at ~1s/txn: the target affords well under one transaction, so
	// the window must pin to the floor rather than going to zero.
	for i := 0; i < 8; i++ {
		w.Observe(4, 4*time.Second)
	}
	if got := w.Next(1_000_000); got != windowMin {
		t.Fatalf("slow-drain adaptive Next = %d, want min %d", got, windowMin)
	}
	if got := w.Next(3); got != 3 {
		t.Fatalf("slow-drain adaptive Next(3) = %d, want 3", got)
	}
}

func TestAdaptiveWindowTracksLatencyShift(t *testing.T) {
	w := NewAdaptiveWindow(0)
	for i := 0; i < 8; i++ {
		w.Observe(64, 64*time.Microsecond) // fast regime → max window
	}
	if got := w.Next(1 << 20); got != windowMax {
		t.Fatalf("pre-shift Next = %d, want %d", got, windowMax)
	}
	for i := 0; i < 32; i++ {
		w.Observe(8, 8*time.Second) // slow regime → the EWMA must converge down
	}
	if got := w.Next(1 << 20); got != windowMin {
		t.Fatalf("post-shift Next = %d, want %d", got, windowMin)
	}
	// Zero-count observations are ignored, not a division by zero.
	w.Observe(0, time.Second)
}
