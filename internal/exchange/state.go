package exchange

import (
	"encoding/binary"
	"fmt"
	"sort"

	"orchestra/internal/datalog"
	"orchestra/internal/provenance"
	"orchestra/internal/updates"
)

// Engine state serialization (DESIGN.md §13). SaveState captures everything
// the translation engine accumulates over its lifetime — the union database
// (through the datalog snapshot codec), the flat token-occurrence log the
// lazy deletion index refolds from, the dead-token set, the base-token map,
// and the applied-transaction set — so a recovered peer restores the engine
// and replays only the post-checkpoint archive suffix instead of its whole
// fetched history.
//
// Layout (uvarint integers, uvarint-length-prefixed strings):
//
//	magic "OES1"
//	dbLen, then the EncodeDB blob
//	occCount · { var, pred, tupleKey }   (sorted — TokenOccurrences order)
//	deadCount · { var }                  (sorted)
//	baseCount · { key, tokCount · tok }  (sorted by key)
//	appliedCount · { peer, seq }         (sorted by TxnID)

// stateMagic versions the engine-state layout; see codecMagic in
// internal/datalog for the refusal contract.
const stateMagic = "OES1"

// SaveState serializes the engine's accumulated state. The engine is not
// mutated (the token log folds into its index, which is an internal
// representation change only).
func (e *Engine) SaveState() ([]byte, error) {
	dbBlob, err := datalog.EncodeDB(e.inc.DB())
	if err != nil {
		return nil, err
	}
	buf := append([]byte(nil), stateMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(dbBlob)))
	buf = append(buf, dbBlob...)

	occ := e.inc.TokenOccurrences()
	buf = binary.AppendUvarint(buf, uint64(len(occ)))
	for _, o := range occ {
		buf = appendStateString(buf, string(o.Var))
		buf = appendStateString(buf, o.Pred)
		buf = appendStateString(buf, o.Key)
	}

	dead := e.inc.DeadTokens()
	buf = binary.AppendUvarint(buf, uint64(len(dead)))
	for _, v := range dead {
		buf = appendStateString(buf, string(v))
	}

	baseKeys := make([]string, 0, len(e.baseTokens))
	for k := range e.baseTokens {
		baseKeys = append(baseKeys, k)
	}
	sort.Strings(baseKeys)
	buf = binary.AppendUvarint(buf, uint64(len(baseKeys)))
	for _, k := range baseKeys {
		buf = appendStateString(buf, k)
		toks := e.baseTokens[k]
		buf = binary.AppendUvarint(buf, uint64(len(toks)))
		for _, t := range toks {
			buf = appendStateString(buf, string(t))
		}
	}

	applied := make([]updates.TxnID, 0, len(e.applied))
	for id := range e.applied {
		applied = append(applied, id)
	}
	sort.Slice(applied, func(i, j int) bool { return applied[i].Less(applied[j]) })
	buf = binary.AppendUvarint(buf, uint64(len(applied)))
	for _, id := range applied {
		buf = appendStateString(buf, id.Peer)
		buf = binary.AppendUvarint(buf, id.Seq)
	}
	return buf, nil
}

// LoadState replaces the engine's accumulated state with a SaveState
// snapshot: the union database is decoded and wrapped in restored
// incremental maintenance (no re-evaluation — the snapshot is already at
// fixpoint), and the base-token map and applied set are rebuilt exactly.
// On error the engine is left unchanged.
func (e *Engine) LoadState(blob []byte) error {
	if len(blob) < len(stateMagic) || string(blob[:len(stateMagic)]) != stateMagic {
		return fmt.Errorf("exchange: not an engine snapshot (bad magic)")
	}
	r := &stateReader{buf: blob[len(stateMagic):]}

	dbLen := r.uvarint()
	if r.err == nil && dbLen > uint64(len(r.buf)) {
		r.err = fmt.Errorf("exchange: truncated engine snapshot (db blob overruns buffer)")
	}
	if r.err != nil {
		return r.err
	}
	db, err := datalog.DecodeDB(r.buf[:dbLen])
	if err != nil {
		return err
	}
	r.buf = r.buf[dbLen:]

	nOcc := r.uvarint()
	occ := make([]datalog.TokenEntry, 0, nOcc)
	for i := uint64(0); i < nOcc && r.err == nil; i++ {
		occ = append(occ, datalog.TokenEntry{
			Var:  provenance.Var(r.string()),
			Pred: r.string(),
			Key:  r.string(),
		})
	}
	nDead := r.uvarint()
	dead := make([]provenance.Var, 0, nDead)
	for i := uint64(0); i < nDead && r.err == nil; i++ {
		dead = append(dead, provenance.Var(r.string()))
	}
	nBase := r.uvarint()
	base := make(map[string][]provenance.Var, nBase)
	for i := uint64(0); i < nBase && r.err == nil; i++ {
		k := r.string()
		nToks := r.uvarint()
		toks := make([]provenance.Var, 0, nToks)
		for j := uint64(0); j < nToks && r.err == nil; j++ {
			toks = append(toks, provenance.Var(r.string()))
		}
		base[k] = toks
	}
	nApplied := r.uvarint()
	applied := make(map[updates.TxnID]bool, nApplied)
	for i := uint64(0); i < nApplied && r.err == nil; i++ {
		id := updates.TxnID{Peer: r.string()}
		id.Seq = r.uvarint()
		applied[id] = true
	}
	if r.err != nil {
		return r.err
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("exchange: %d trailing bytes after engine snapshot", len(r.buf))
	}

	inc, err := datalog.RestoreIncremental(e.prog, db, e.opts, occ, dead)
	if err != nil {
		return err
	}
	e.inc = inc
	e.baseTokens = base
	e.applied = applied
	e.unionSnap = nil
	return nil
}

// StatState summarizes an engine snapshot's union-database section without
// materializing it — the path behind `orchestra inspect`.
func StatState(blob []byte) (datalog.DBStats, error) {
	if len(blob) < len(stateMagic) || string(blob[:len(stateMagic)]) != stateMagic {
		return datalog.DBStats{}, fmt.Errorf("exchange: not an engine snapshot (bad magic)")
	}
	r := &stateReader{buf: blob[len(stateMagic):]}
	dbLen := r.uvarint()
	if r.err == nil && dbLen > uint64(len(r.buf)) {
		r.err = fmt.Errorf("exchange: truncated engine snapshot (db blob overruns buffer)")
	}
	if r.err != nil {
		return datalog.DBStats{}, r.err
	}
	return datalog.StatDB(r.buf[:dbLen])
}

func appendStateString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// stateReader is a cursor over the snapshot body with sticky error handling.
type stateReader struct {
	buf []byte
	err error
}

func (r *stateReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.err = fmt.Errorf("exchange: truncated engine snapshot (bad varint)")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *stateReader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)) {
		r.err = fmt.Errorf("exchange: truncated engine snapshot (string overruns buffer)")
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}
