package exchange

import "time"

// Group-commit window tuning. The adaptive controller aims each window at
// windowTarget of fixpoint work: fast drains widen the window (better
// amortization of the per-batch seeded fixpoint), slow drains shrink it
// (bounded peak memory and time-to-first-change for subscribers).
const (
	// windowSeed is the first window's size, before any drain has been
	// observed.
	windowSeed = 64
	// windowMin / windowMax clamp adaptive window sizes. The floor keeps
	// pathological latency spikes (a GC pause during one drain) from
	// collapsing to per-transaction fixpoints; the ceiling bounds how much
	// translation state one window can pin.
	windowMin = 8
	windowMax = 4096
	// windowTarget is the drain latency one window aims for.
	windowTarget = 50 * time.Millisecond
	// windowAlpha is the EWMA smoothing factor for per-transaction drain
	// latency: new samples move the estimate a quarter of the way.
	windowAlpha = 0.25
)

// AdaptiveWindow sizes group-commit windows for Engine.ApplyAll from the
// observed backlog and drain latency. Callers take Next(backlog)
// transactions per batch and report each batch's wall-clock back through
// Observe; the controller keeps an EWMA of per-transaction drain latency
// and aims subsequent windows at windowTarget of work. Because ApplyAll
// over consecutive sub-batches is defined to equal one batched call,
// window sizing never changes results — only peak memory and
// time-to-first-change.
//
// The zero value adapts; NewAdaptiveWindow wires the Config.ReconcileWindow
// escape hatches (fixed or unbounded windows). An AdaptiveWindow is not
// safe for concurrent use; each Engine owner keeps its own.
type AdaptiveWindow struct {
	// fixed pins the window size: >0 exactly that many transactions per
	// batch, <0 the whole backlog in one batch, 0 adaptive.
	fixed int
	// perTxn is the EWMA of observed drain seconds per transaction; 0 until
	// the first Observe.
	perTxn float64
}

// NewAdaptiveWindow builds the window controller for a configured
// ReconcileWindow value (see Config.ReconcileWindow for the semantics).
func NewAdaptiveWindow(configured int) *AdaptiveWindow {
	return &AdaptiveWindow{fixed: configured}
}

// Next returns how many of the backlog transactions the next group-commit
// window should take: at least 1 when the backlog is non-empty, never more
// than the backlog.
func (w *AdaptiveWindow) Next(backlog int) int {
	if backlog <= 0 {
		return 0
	}
	var n int
	switch {
	case w.fixed > 0:
		n = w.fixed
	case w.fixed < 0:
		return backlog
	case w.perTxn > 0:
		n = int(windowTarget.Seconds() / w.perTxn)
		if n < windowMin {
			n = windowMin
		}
		if n > windowMax {
			n = windowMax
		}
	default:
		n = windowSeed
	}
	if n > backlog {
		n = backlog
	}
	return n
}

// Observe records one drained window of n transactions taking elapsed, and
// folds it into the per-transaction latency estimate. Fixed and unbounded
// configurations ignore observations.
func (w *AdaptiveWindow) Observe(n int, elapsed time.Duration) {
	if n <= 0 || w.fixed != 0 {
		return
	}
	sample := elapsed.Seconds() / float64(n)
	if w.perTxn == 0 {
		w.perTxn = sample
		return
	}
	w.perTxn += windowAlpha * (sample - w.perTxn)
}

// PerTxn returns the current EWMA of drain latency per transaction (0 until
// the first observation, and always 0 for fixed or unbounded windows).
func (w *AdaptiveWindow) PerTxn() time.Duration {
	return time.Duration(w.perTxn * float64(time.Second))
}

// PerTxnSeconds returns the raw EWMA estimate in seconds per transaction —
// the serializable form of the controller's learned state, restored with
// SeedPerTxn after a crash.
func (w *AdaptiveWindow) PerTxnSeconds() float64 { return w.perTxn }

// SeedPerTxn restores a previously saved EWMA estimate, so a recovered peer
// sizes its first windows from pre-crash drain latency instead of
// re-learning from windowSeed. Fixed and unbounded configurations ignore
// seeds, exactly as they ignore observations.
func (w *AdaptiveWindow) SeedPerTxn(seconds float64) {
	if w.fixed != 0 || seconds <= 0 {
		return
	}
	w.perTxn = seconds
}
