package exchange

import (
	"context"
	"testing"

	"orchestra/internal/updates"
	"orchestra/internal/workload"
)

// The view-deletion heuristic: modifying data derived through a join must
// retract the least-collateral source row, not every contributor.
func TestForeignModifyKillsOnlySequenceRow(t *testing.T) {
	e := fig2Engine(t)
	// Alaska publishes two sequences sharing one organism and protein.
	if _, err := e.Apply(context.Background(), txn(workload.Alaska, 1,
		updates.Insert("O", workload.OTuple("mouse", 1)),
		updates.Insert("P", workload.PTuple("p53", 10)),
		updates.Insert("P", workload.PTuple("ins", 20)),
		updates.Insert("S", workload.STuple(1, 10, "AAAA")),
		updates.Insert("S", workload.STuple(1, 20, "BBBB")))); err != nil {
		t.Fatal(err)
	}
	// Dresden modifies the OPS tuple for (mouse, p53) — derived data.
	res, err := e.Apply(context.Background(), txn(workload.Dresden, 1,
		updates.Modify("OPS",
			workload.OPSTuple("mouse", "p53", "AAAA"),
			workload.OPSTuple("mouse", "p53", "CCCC"))))
	if err != nil {
		t.Fatal(err)
	}
	// Crete's candidate: the (mouse,p53) tuple modified; the (mouse,ins)
	// tuple untouched — i.e. the kill set chose the S row, not O or P.
	for _, u := range res.PerPeer[workload.Crete] {
		if u.Op == updates.OpDelete || u.Op == updates.OpModify {
			if u.Old != nil && u.Old.Equal(workload.OPSTuple("mouse", "ins", "BBBB")) {
				t.Errorf("collateral deletion of unrelated OPS tuple: %v", u)
			}
		}
	}
	// Alaska's candidate deletes only the S row for (1,10).
	for _, u := range res.PerPeer[workload.Alaska] {
		if u.Rel == "O" && (u.Op == updates.OpDelete || u.Op == updates.OpModify) {
			t.Errorf("organism row deleted: %v", u)
		}
		if u.Rel == "P" && (u.Op == updates.OpDelete || u.Op == updates.OpModify) {
			t.Errorf("protein row deleted: %v", u)
		}
	}
	// The candidate transaction gains a dependency on Alaska's publish.
	found := false
	for _, d := range res.ExtraDeps[workload.Crete] {
		if d == (updates.TxnID{Peer: workload.Alaska, Seq: 1}) {
			found = true
		}
	}
	if !found {
		t.Errorf("missing dependency on supporting txn: %v", res.ExtraDeps[workload.Crete])
	}
}

// Kill-set tie-break regression: when every contributor of a derived
// tuple ties on monomial hits and collateral, the kill set must choose the
// most recently minted token by *numeric* (Seq, idx) order. Here the three
// join contributors come from different peers and transactions — Beijing's
// O at seq 1, Beijing's P at seq 2, Alaska's S at seq 10 — so the old raw
// string fallback ("beijing:2/0" > "alaska:10/0") picked Beijing's protein
// row, while numeric ordering correctly retracts the newest and most
// specific contributor, the sequence row.
func TestKillSetTieBreakUsesNumericTokenOrder(t *testing.T) {
	e := fig2Engine(t)
	if _, err := e.Apply(context.Background(), txn(workload.Beijing, 1,
		updates.Insert("P", workload.PTuple("p53", 10)))); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(context.Background(), txn(workload.Beijing, 2,
		updates.Insert("O", workload.OTuple("mouse", 1)))); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(context.Background(), txn(workload.Alaska, 10,
		updates.Insert("S", workload.STuple(1, 10, "AAAA")))); err != nil {
		t.Fatal(err)
	}
	// Dresden deletes the derived OPS tuple; the kill set must pick exactly
	// one of the three tied contributors.
	res, err := e.Apply(context.Background(), txn(workload.Dresden, 1,
		updates.Delete("OPS", workload.OPSTuple("mouse", "p53", "AAAA"))))
	if err != nil {
		t.Fatal(err)
	}
	var delS, delO, delP bool
	for _, u := range res.PerPeer[workload.Alaska] {
		if u.Op != updates.OpDelete {
			continue
		}
		switch u.Rel {
		case "S":
			delS = true
		case "O":
			delO = true
		case "P":
			delP = true
		}
	}
	if !delS {
		t.Errorf("alaska candidate misses the S-row deletion: %v", res.PerPeer[workload.Alaska])
	}
	if delO || delP {
		t.Errorf("kill set chose an older contributor (O deleted: %v, P deleted: %v): %v",
			delO, delP, res.PerPeer[workload.Alaska])
	}
}

func TestDeleteOfNonexistentTupleIsNoop(t *testing.T) {
	e := fig2Engine(t)
	res, err := e.Apply(context.Background(), txn(workload.Alaska, 1,
		updates.Delete("S", workload.STuple(9, 9, "NOPE"))))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, us := range res.PerPeer {
		total += len(us)
	}
	if total != 0 {
		t.Errorf("phantom delete produced %v", res.PerPeer)
	}
}

func TestReinsertAfterDelete(t *testing.T) {
	e := fig2Engine(t)
	if _, err := e.Apply(context.Background(), txn(workload.Alaska, 1,
		updates.Insert("O", workload.OTuple("mouse", 1)))); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(context.Background(), txn(workload.Alaska, 2,
		updates.Delete("O", workload.OTuple("mouse", 1)))); err != nil {
		t.Fatal(err)
	}
	// Re-insert the same tuple under a fresh token.
	res, err := e.Apply(context.Background(), txn(workload.Alaska, 3,
		updates.Insert("O", workload.OTuple("mouse", 1))))
	if err != nil {
		t.Fatal(err)
	}
	ins := 0
	for _, u := range res.PerPeer[workload.Beijing] {
		if u.Op == updates.OpInsert && u.Rel == "O" {
			ins++
		}
	}
	if ins != 1 {
		t.Errorf("beijing updates after re-insert = %v", res.PerPeer[workload.Beijing])
	}
}

func TestInsertDeleteWithinOneTxnIsNoop(t *testing.T) {
	e := fig2Engine(t)
	res, err := e.Apply(context.Background(), txn(workload.Alaska, 1,
		updates.Insert("O", workload.OTuple("mouse", 1)),
		updates.Delete("O", workload.OTuple("mouse", 1))))
	if err != nil {
		t.Fatal(err)
	}
	for peer, us := range res.PerPeer {
		if len(us) != 0 {
			t.Errorf("%s got %v from a self-cancelling txn", peer, us)
		}
	}
	if e.UnionDB().Rel("alaska.O").Contains(workload.OTuple("mouse", 1)) {
		t.Error("cancelled tuple survives in union DB")
	}
}
