package exchange

import "errors"

// Sentinel errors wrapped by the errors this package constructs, so that
// errors.Is works through the full chain up to the public orchestra facade.
var (
	// ErrUnknownPeer reports a peer the engine's configuration does not
	// declare.
	ErrUnknownPeer = errors.New("exchange: unknown peer")
	// ErrUnknownRelation reports a relation the publishing peer's schema
	// does not declare.
	ErrUnknownRelation = errors.New("exchange: unknown relation")
	// ErrAlreadyApplied reports a transaction fed to Apply twice.
	ErrAlreadyApplied = errors.New("exchange: transaction already applied")
)
