package schema

import (
	"fmt"
	"sync"
	"testing"
)

// encodeDirect is the uncached reference encoding.
func encodeDirect(t Tuple) string { return string(t.AppendKeyTo(nil)) }

func TestMemoizedKeyMatchesDirectEncoding(t *testing.T) {
	tuples := []Tuple{
		{},
		NewTuple(String("a")),
		NewTuple(String("ab"), String("c")),
		NewTuple(String("a"), String("bc")), // same bytes, different grouping
		NewTuple(Int(42), Bool(true), Float(3.25)),
		NewTuple(LabeledNull("f(x,1)"), Int(-7)),
		NewTuple(String(""), String("")),
	}
	for i := 0; i < 64; i++ {
		tuples = append(tuples, NewTuple(String(fmt.Sprintf("gene-%d", i)), Int(int64(i))))
	}
	for _, tu := range tuples {
		want := encodeDirect(tu)
		if got := tu.Key(); got != want {
			t.Fatalf("Key(%v) = %q, want %q", tu, got, want)
		}
		// Second call exercises the cache-hit path.
		if got := tu.Key(); got != want {
			t.Fatalf("memoized Key(%v) = %q, want %q", tu, got, want)
		}
		// A fresh, equal slice must hit or recompute identically.
		if got := tu.Clone().Key(); got != want {
			t.Fatalf("cloned Key(%v) = %q, want %q", tu, got, want)
		}
	}
}

func TestMemoizedKeyDistinguishesGroupings(t *testing.T) {
	a := NewTuple(String("ab"), String("c"))
	b := NewTuple(String("a"), String("bc"))
	if a.Key() == b.Key() {
		t.Fatalf("distinct tuples share key %q", a.Key())
	}
}

func TestMemoizedKeyConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tu := NewTuple(String(fmt.Sprintf("k%d", i%37)), Int(int64(i%11)))
				if got, want := tu.Key(), encodeDirect(tu); got != want {
					t.Errorf("goroutine %d: Key = %q, want %q", g, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
