package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Attribute describes one column of a relation.
type Attribute struct {
	Name string
	Type Kind
}

// Relation describes a named relation: its attributes and primary key.
// The key columns are used to detect conflicting updates (two updates that
// assign different non-key values to the same key conflict) and to drive
// index construction in the storage engine.
type Relation struct {
	Name  string
	Attrs []Attribute
	// Key lists the positions of the primary-key columns. If empty, the
	// whole tuple is the key (pure set semantics).
	Key []int
}

// NewRelation builds a relation; keyCols name the primary-key attributes.
func NewRelation(name string, attrs []Attribute, keyCols ...string) (*Relation, error) {
	r := &Relation{Name: name, Attrs: attrs}
	seen := map[string]bool{}
	for _, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("schema: relation %s has unnamed attribute", name)
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("schema: relation %s has duplicate attribute %s", name, a.Name)
		}
		seen[a.Name] = true
	}
	for _, kc := range keyCols {
		pos := r.AttrIndex(kc)
		if pos < 0 {
			return nil, fmt.Errorf("schema: relation %s: key column %s not found", name, kc)
		}
		r.Key = append(r.Key, pos)
	}
	return r, nil
}

// MustRelation is NewRelation that panics on error; for static schemas.
func MustRelation(name string, attrs []Attribute, keyCols ...string) *Relation {
	r, err := NewRelation(name, attrs, keyCols...)
	if err != nil {
		panic(err)
	}
	return r
}

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.Attrs) }

// AttrIndex returns the position of the named attribute, or -1.
func (r *Relation) AttrIndex(name string) int {
	for i, a := range r.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// KeyColumns returns the key positions; if no explicit key was declared,
// every column is a key column.
func (r *Relation) KeyColumns() []int {
	if len(r.Key) > 0 {
		return r.Key
	}
	all := make([]int, len(r.Attrs))
	for i := range all {
		all[i] = i
	}
	return all
}

// KeyOf projects the tuple onto the relation's key columns.
func (r *Relation) KeyOf(t Tuple) Tuple { return t.Project(r.KeyColumns()) }

// Validate checks that a tuple conforms to the relation: correct arity and
// compatible types (labeled nulls are accepted in any column).
func (r *Relation) Validate(t Tuple) error {
	if len(t) != len(r.Attrs) {
		return fmt.Errorf("schema: relation %s expects arity %d, got %d", r.Name, len(r.Attrs), len(t))
	}
	for i, v := range t {
		if v.IsNull() {
			return fmt.Errorf("schema: relation %s column %s: null value", r.Name, r.Attrs[i].Name)
		}
		if v.IsLabeledNull() {
			continue
		}
		if v.Kind() != r.Attrs[i].Type {
			return fmt.Errorf("schema: relation %s column %s: expected %s, got %s",
				r.Name, r.Attrs[i].Name, r.Attrs[i].Type, v.Kind())
		}
	}
	return nil
}

// String renders the relation signature, e.g. O(org string, oid int).
func (r *Relation) String() string {
	parts := make([]string, len(r.Attrs))
	for i, a := range r.Attrs {
		parts[i] = a.Name + " " + a.Type.String()
	}
	return r.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Schema is a named collection of relations — one peer's local schema.
type Schema struct {
	Name      string
	relations map[string]*Relation
}

// NewSchema creates an empty schema.
func NewSchema(name string) *Schema {
	return &Schema{Name: name, relations: map[string]*Relation{}}
}

// AddRelation registers a relation; it is an error to register the same
// name twice.
func (s *Schema) AddRelation(r *Relation) error {
	if _, ok := s.relations[r.Name]; ok {
		return fmt.Errorf("schema: %s already has relation %s", s.Name, r.Name)
	}
	s.relations[r.Name] = r
	return nil
}

// MustAddRelation is AddRelation that panics on error.
func (s *Schema) MustAddRelation(r *Relation) {
	if err := s.AddRelation(r); err != nil {
		panic(err)
	}
}

// Relation looks up a relation by name, or nil.
func (s *Schema) Relation(name string) *Relation { return s.relations[name] }

// Relations returns all relations sorted by name.
func (s *Schema) Relations() []*Relation {
	out := make([]*Relation, 0, len(s.relations))
	for _, r := range s.relations {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// String renders the schema as Name{R1(...), R2(...)}.
func (s *Schema) String() string {
	rels := s.Relations()
	parts := make([]string, len(rels))
	for i, r := range rels {
		parts[i] = r.String()
	}
	return s.Name + "{" + strings.Join(parts, "; ") + "}"
}
