package schema

import (
	"math"
	"sync/atomic"
)

// Tuple.Key is recomputed for the same logical tuple at every layer of the
// update-exchange path: storage insertion, datalog merge, collation,
// write-set tracking, and reconciliation each re-encode the tuple they were
// handed. The encodings are identical, so a small direct-mapped cache keyed
// by a structural hash turns all but the first computation into a pointer
// load plus an equality walk — no allocation, no strconv.
//
// The cache is lossy by design: a slot collision simply evicts the previous
// entry, and a hash collision fails the Equal check and falls through to a
// fresh encoding. Correctness never depends on the cache, only latency.
const (
	keyCacheBits = 13
	keyCacheSize = 1 << keyCacheBits
	keyCacheMask = keyCacheSize - 1
)

type keyCacheEntry struct {
	hash  uint64
	tuple Tuple
	key   string
}

var keyCache [keyCacheSize]atomic.Pointer[keyCacheEntry]

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// keyHash computes an FNV-1a style structural hash over the tuple. Each
// component mixes its kind, payload length, and payload so that tuples
// differing only in how bytes group into components still hash apart.
func (t Tuple) keyHash() uint64 {
	h := uint64(fnvOffset)
	for _, v := range t {
		h = (h ^ uint64(v.kind)) * fnvPrime
		switch v.kind {
		case KindString, KindLabeledNull:
			h = (h ^ uint64(len(v.s))) * fnvPrime
			for i := 0; i < len(v.s); i++ {
				h = (h ^ uint64(v.s[i])) * fnvPrime
			}
		case KindInt, KindBool:
			x := uint64(v.i)
			h = (h ^ (x & 0xffffffff)) * fnvPrime
			h = (h ^ (x >> 32)) * fnvPrime
		case KindFloat:
			x := math.Float64bits(v.f)
			h = (h ^ (x & 0xffffffff)) * fnvPrime
			h = (h ^ (x >> 32)) * fnvPrime
		}
	}
	return h
}

// memoizedKey returns the cached canonical key for t, encoding and caching
// it on first sight. Safe for concurrent use from any number of goroutines.
func (t Tuple) memoizedKey() string {
	h := t.keyHash()
	slot := &keyCache[h&keyCacheMask]
	if e := slot.Load(); e != nil && e.hash == h && e.tuple.Equal(t) {
		return e.key
	}
	k := string(t.AppendKeyTo(make([]byte, 0, 16*len(t))))
	// Clone defensively: tuples are immutable by convention, but the cache
	// outlives any caller and must not alias a slice the caller reuses.
	slot.Store(&keyCacheEntry{hash: h, tuple: t.Clone(), key: k})
	return k
}
