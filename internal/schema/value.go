// Package schema defines the relational model used throughout the CDSS:
// attribute types, values (including the labeled nulls produced by
// Skolemizing existential variables in schema mappings), tuples, relations,
// and schemas. Everything downstream — storage, datalog evaluation, update
// translation, and reconciliation — is expressed over these types.
package schema

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

const (
	// KindNull is the zero Value; it never appears in well-formed tuples.
	KindNull Kind = iota
	// KindString is a UTF-8 string value.
	KindString
	// KindInt is a 64-bit signed integer value.
	KindInt
	// KindFloat is a 64-bit IEEE-754 value.
	KindFloat
	// KindBool is a boolean value.
	KindBool
	// KindLabeledNull is a labeled null (Skolem value) introduced for an
	// existential variable during update exchange. Labeled nulls compare
	// equal only to themselves (same Skolem term), following the data
	// exchange semantics of Fagin et al. used by ORCHESTRA.
	KindLabeledNull
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindLabeledNull:
		return "labeled-null"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a single attribute value. Values are immutable and comparable
// with Equal; Key produces a canonical encoding suitable for map keys.
type Value struct {
	kind Kind
	s    string  // string payload, or Skolem term for labeled nulls
	i    int64   // int payload; 0/1 for bool
	f    float64 // float payload
}

// String constructs a string Value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Int constructs an integer Value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float constructs a float Value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Bool constructs a boolean Value.
func Bool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// LabeledNull constructs a labeled null from a canonical Skolem term, e.g.
// "f_M3.2(act1,7)". Two labeled nulls are equal iff their terms are equal.
func LabeledNull(term string) Value { return Value{kind: KindLabeledNull, s: term} }

// Kind reports the value's runtime type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the zero (absent) value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// IsLabeledNull reports whether v is a labeled null.
func (v Value) IsLabeledNull() bool { return v.kind == KindLabeledNull }

// Str returns the string payload. It is valid for string and labeled-null
// values; for other kinds it returns "".
func (v Value) Str() string { return v.s }

// IntVal returns the integer payload (0 for non-integer values).
func (v Value) IntVal() int64 { return v.i }

// FloatVal returns the float payload (0 for non-float values).
func (v Value) FloatVal() float64 { return v.f }

// BoolVal returns the boolean payload (false for non-bool values).
func (v Value) BoolVal() bool { return v.kind == KindBool && v.i == 1 }

// Equal reports whether two values are identical in kind and payload.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindString, KindLabeledNull:
		return v.s == o.s
	case KindInt, KindBool:
		return v.i == o.i
	case KindFloat:
		return v.f == o.f
	default:
		return true
	}
}

// Compare orders values: first by kind, then by payload. It provides a
// total order used for deterministic iteration and canonical encodings.
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindString, KindLabeledNull:
		return strings.Compare(v.s, o.s)
	case KindInt, KindBool:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		}
		return 0
	case KindFloat:
		switch {
		case v.f < o.f:
			return -1
		case v.f > o.f:
			return 1
		}
		return 0
	default:
		return 0
	}
}

// Key returns a canonical, injective string encoding of the value, usable
// as a Go map key. Distinct values always produce distinct keys.
func (v Value) Key() string {
	switch v.kind {
	case KindString:
		return "s:" + v.s
	case KindLabeledNull:
		return "n:" + v.s
	case KindInt:
		return "i:" + strconv.FormatInt(v.i, 10)
	case KindBool:
		if v.i == 1 {
			return "b:1"
		}
		return "b:0"
	case KindFloat:
		return "f:" + strconv.FormatFloat(v.f, 'g', -1, 64)
	default:
		return "_"
	}
}

// AppendKeyTo appends the value's canonical Key encoding to b and returns
// the extended slice — the allocation-free form of Key for hot paths.
func (v Value) AppendKeyTo(b []byte) []byte {
	switch v.kind {
	case KindString:
		b = append(b, 's', ':')
		return append(b, v.s...)
	case KindLabeledNull:
		b = append(b, 'n', ':')
		return append(b, v.s...)
	case KindInt:
		b = append(b, 'i', ':')
		return strconv.AppendInt(b, v.i, 10)
	case KindBool:
		if v.i == 1 {
			return append(b, 'b', ':', '1')
		}
		return append(b, 'b', ':', '0')
	case KindFloat:
		b = append(b, 'f', ':')
		return strconv.AppendFloat(b, v.f, 'g', -1, 64)
	default:
		return append(b, '_')
	}
}

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case KindString:
		return v.s
	case KindLabeledNull:
		return "⊥" + v.s
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindBool:
		return strconv.FormatBool(v.i == 1)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	default:
		return "NULL"
	}
}

// ParseValue parses the canonical Key encoding back into a Value. It is the
// inverse of Key and is used by the wire codec in the p2p package.
func ParseValue(key string) (Value, error) {
	if len(key) < 2 || (key != "_" && key[1] != ':') {
		if key == "_" {
			return Value{}, nil
		}
		return Value{}, fmt.Errorf("schema: malformed value key %q", key)
	}
	payload := key[2:]
	switch key[0] {
	case 's':
		return String(payload), nil
	case 'n':
		return LabeledNull(payload), nil
	case 'i':
		i, err := strconv.ParseInt(payload, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("schema: malformed int key %q: %v", key, err)
		}
		return Int(i), nil
	case 'b':
		return Bool(payload == "1"), nil
	case 'f':
		f, err := strconv.ParseFloat(payload, 64)
		if err != nil {
			return Value{}, fmt.Errorf("schema: malformed float key %q: %v", key, err)
		}
		return Float(f), nil
	default:
		return Value{}, fmt.Errorf("schema: unknown value kind in key %q", key)
	}
}
