package schema

import (
	"strings"
	"testing"
	"testing/quick"
)

func seqRel(t *testing.T) *Relation {
	t.Helper()
	r, err := NewRelation("S",
		[]Attribute{{"oid", KindInt}, {"pid", KindInt}, {"seq", KindString}},
		"oid", "pid")
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRelationValidation(t *testing.T) {
	if _, err := NewRelation("R", []Attribute{{"a", KindInt}, {"a", KindString}}); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := NewRelation("R", []Attribute{{"", KindInt}}); err == nil {
		t.Error("unnamed attribute accepted")
	}
	if _, err := NewRelation("R", []Attribute{{"a", KindInt}}, "nope"); err == nil {
		t.Error("unknown key column accepted")
	}
}

func TestRelationKeyOf(t *testing.T) {
	r := seqRel(t)
	tup := NewTuple(Int(1), Int(2), String("ACGT"))
	key := r.KeyOf(tup)
	if !key.Equal(NewTuple(Int(1), Int(2))) {
		t.Errorf("KeyOf = %v", key)
	}
	// No declared key: whole tuple is the key.
	r2 := MustRelation("T", []Attribute{{"x", KindInt}, {"y", KindInt}})
	if !r2.KeyOf(tup[:2]).Equal(tup[:2]) {
		t.Error("implicit whole-tuple key wrong")
	}
}

func TestRelationValidate(t *testing.T) {
	r := seqRel(t)
	ok := NewTuple(Int(1), Int(2), String("ACGT"))
	if err := r.Validate(ok); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	if err := r.Validate(NewTuple(Int(1), Int(2))); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := r.Validate(NewTuple(Int(1), String("x"), String("s"))); err == nil {
		t.Error("wrong type accepted")
	}
	// Labeled nulls are allowed anywhere (data exchange semantics).
	withNull := NewTuple(Int(1), LabeledNull("f(1)"), String("ACGT"))
	if err := r.Validate(withNull); err != nil {
		t.Errorf("labeled null rejected: %v", err)
	}
	var zero Value
	if err := r.Validate(NewTuple(Int(1), Int(2), zero)); err == nil {
		t.Error("null value accepted")
	}
}

func TestSchemaAddLookup(t *testing.T) {
	s := NewSchema("Σ1")
	r := seqRel(t)
	if err := s.AddRelation(r); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRelation(r); err == nil {
		t.Error("duplicate relation accepted")
	}
	if s.Relation("S") != r {
		t.Error("lookup failed")
	}
	if s.Relation("missing") != nil {
		t.Error("missing relation should be nil")
	}
	s.MustAddRelation(MustRelation("A", []Attribute{{"x", KindInt}}))
	rels := s.Relations()
	if len(rels) != 2 || rels[0].Name != "A" || rels[1].Name != "S" {
		t.Errorf("Relations() = %v, want sorted [A S]", rels)
	}
	if !strings.Contains(s.String(), "Σ1{") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestTupleBasics(t *testing.T) {
	a := NewTuple(Int(1), String("x"))
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone not equal")
	}
	b[0] = Int(2)
	if a.Equal(b) {
		t.Error("clone aliases original")
	}
	if a.Equal(NewTuple(Int(1))) {
		t.Error("different arity equal")
	}
	p := NewTuple(Int(1), String("x"), Bool(true)).Project([]int{2, 0})
	if !p.Equal(NewTuple(Bool(true), Int(1))) {
		t.Errorf("Project = %v", p)
	}
	if !NewTuple(Int(1), LabeledNull("z")).HasLabeledNull() {
		t.Error("HasLabeledNull false negative")
	}
	if NewTuple(Int(1)).HasLabeledNull() {
		t.Error("HasLabeledNull false positive")
	}
	if got := NewTuple(Int(1), String("x")).String(); got != "(1, x)" {
		t.Errorf("String() = %q", got)
	}
}

func TestTupleCompare(t *testing.T) {
	a := NewTuple(Int(1), String("a"))
	b := NewTuple(Int(1), String("b"))
	c := NewTuple(Int(1))
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 {
		t.Error("lexicographic order wrong")
	}
	if c.Compare(a) >= 0 {
		t.Error("prefix should sort before extension")
	}
	if a.Compare(a) != 0 {
		t.Error("self-compare nonzero")
	}
}

func TestTupleKeyRoundTrip(t *testing.T) {
	tuples := []Tuple{
		{},
		NewTuple(Int(1), String("x|y"), Bool(true)),
		NewTuple(LabeledNull("f(1|2)"), Float(1.5)),
		NewTuple(String(""), String("")),
	}
	for _, tu := range tuples {
		got, err := ParseTupleKey(tu.Key())
		if err != nil {
			t.Fatalf("ParseTupleKey(%q): %v", tu.Key(), err)
		}
		if !got.Equal(tu) {
			t.Errorf("round trip %v -> %v", tu, got)
		}
	}
	if _, err := ParseTupleKey("notakey"); err == nil {
		t.Error("malformed tuple key accepted")
	}
}

// Property: tuple keys are injective — two tuples collide iff equal.
func TestQuickTupleKeyInjective(t *testing.T) {
	f := func(a1, a2, b1, b2 string) bool {
		ta := NewTuple(String(a1), String(a2))
		tb := NewTuple(String(b1), String(b2))
		return (ta.Key() == tb.Key()) == ta.Equal(tb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: tuple key round trip is the identity for mixed-kind tuples.
func TestQuickTupleRoundTrip(t *testing.T) {
	f := func(s string, i int64, b bool) bool {
		tu := NewTuple(String(s), Int(i), Bool(b), LabeledNull(s+"!"))
		got, err := ParseTupleKey(tu.Key())
		return err == nil && got.Equal(tu)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
