package schema

import (
	"fmt"
	"strconv"
	"strings"
)

// Tuple is an ordered list of values conforming to some relation's arity.
// Tuples are treated as immutable once constructed; callers that need to
// modify a tuple should Clone it first.
type Tuple []Value

// NewTuple builds a tuple from values.
func NewTuple(vs ...Value) Tuple { return Tuple(vs) }

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Equal reports component-wise equality.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically by Value.Compare.
func (t Tuple) Compare(o Tuple) int {
	n := len(t)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(o[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(o):
		return -1
	case len(t) > len(o):
		return 1
	}
	return 0
}

// Key returns a canonical injective encoding of the whole tuple, usable as
// a map key. Component keys are length-prefixed so that no two distinct
// tuples collide. Results are memoized in a bounded process-wide cache
// (keycache.go): every layer of the update-exchange path re-encodes the
// tuples it is handed, and all but the first encoding of a hot tuple is a
// cache hit.
func (t Tuple) Key() string {
	if len(t) == 0 {
		return ""
	}
	return t.memoizedKey()
}

// AppendKeyTo appends the tuple's canonical Key encoding to b and returns
// the extended slice — the allocation-free form of Key for hot paths. The
// encoding is identical to Key: length-prefixed component keys.
func (t Tuple) AppendKeyTo(b []byte) []byte {
	for _, v := range t {
		b = AppendComponentKeyTo(b, v)
	}
	return b
}

// AppendComponentKeyTo appends one length-prefixed component of a tuple
// key — the unit Tuple.AppendKeyTo and ParseTupleKey are built from. It is
// exported so index layers can assemble projection keys (and whole-tuple
// membership keys) with the identical encoding, rather than duplicating it.
func AppendComponentKeyTo(b []byte, v Value) []byte {
	var scratch [48]byte
	vk := v.AppendKeyTo(scratch[:0])
	b = strconv.AppendInt(b, int64(len(vk)), 10)
	b = append(b, '|')
	return append(b, vk...)
}

// Project returns the subtuple at the given column positions.
func (t Tuple) Project(cols []int) Tuple {
	p := make(Tuple, len(cols))
	for i, c := range cols {
		p[i] = t[c]
	}
	return p
}

// HasLabeledNull reports whether any component is a labeled null.
func (t Tuple) HasLabeledNull() bool {
	for _, v := range t {
		if v.IsLabeledNull() {
			return true
		}
	}
	return false
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// ParseTupleKey decodes a canonical tuple key produced by Tuple.Key.
func ParseTupleKey(key string) (Tuple, error) {
	var t Tuple
	for len(key) > 0 {
		bar := strings.IndexByte(key, '|')
		if bar < 0 {
			return nil, fmt.Errorf("schema: malformed tuple key %q", key)
		}
		n, err := strconv.Atoi(key[:bar])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("schema: malformed tuple key length %q: %v", key[:bar], err)
		}
		if bar+1+n > len(key) {
			return nil, fmt.Errorf("schema: truncated tuple key %q", key)
		}
		v, verr := ParseValue(key[bar+1 : bar+1+n])
		if verr != nil {
			return nil, verr
		}
		t = append(t, v)
		key = key[bar+1+n:]
	}
	return t, nil
}
