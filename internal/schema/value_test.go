package schema

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{String("hello"), KindString},
		{Int(42), KindInt},
		{Float(3.14), KindFloat},
		{Bool(true), KindBool},
		{Bool(false), KindBool},
		{LabeledNull("f1(a,b)"), KindLabeledNull},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
	if String("x").Str() != "x" {
		t.Error("Str() lost payload")
	}
	if Int(7).IntVal() != 7 {
		t.Error("IntVal() lost payload")
	}
	if Float(2.5).FloatVal() != 2.5 {
		t.Error("FloatVal() lost payload")
	}
	if !Bool(true).BoolVal() || Bool(false).BoolVal() {
		t.Error("BoolVal() wrong")
	}
	if !LabeledNull("t").IsLabeledNull() {
		t.Error("IsLabeledNull() false for labeled null")
	}
	var zero Value
	if !zero.IsNull() {
		t.Error("zero value should be null")
	}
}

func TestValueEqualDistinguishesKinds(t *testing.T) {
	// "1" as string, int, and labeled null must all be distinct.
	vs := []Value{String("1"), Int(1), LabeledNull("1"), Bool(true), Float(1)}
	for i := range vs {
		for j := range vs {
			if (i == j) != vs[i].Equal(vs[j]) {
				t.Errorf("Equal(%v, %v) = %v, want %v", vs[i], vs[j], vs[i].Equal(vs[j]), i == j)
			}
		}
	}
}

func TestLabeledNullIdentity(t *testing.T) {
	a := LabeledNull("f(1)")
	b := LabeledNull("f(1)")
	c := LabeledNull("f(2)")
	if !a.Equal(b) {
		t.Error("same-term labeled nulls must be equal")
	}
	if a.Equal(c) {
		t.Error("different-term labeled nulls must differ")
	}
}

func TestValueKeyInjective(t *testing.T) {
	vs := []Value{
		String(""), String("a"), String("i:1"), Int(1), Int(-1), Int(0),
		Float(0), Float(1), Float(-1.5), Bool(true), Bool(false),
		LabeledNull(""), LabeledNull("x"), String("x"),
	}
	seen := map[string]Value{}
	for _, v := range vs {
		k := v.Key()
		if prev, ok := seen[k]; ok && !prev.Equal(v) {
			t.Errorf("key collision: %v and %v both encode to %q", prev, v, k)
		}
		seen[k] = v
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	vs := []Value{
		String("hello world"), String(""), Int(math.MaxInt64), Int(math.MinInt64),
		Float(1e-300), Float(-2.5), Bool(true), Bool(false), LabeledNull("f_M1.2(s:abc,i:9)"),
	}
	for _, v := range vs {
		got, err := ParseValue(v.Key())
		if err != nil {
			t.Fatalf("ParseValue(%q): %v", v.Key(), err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip %v -> %q -> %v", v, v.Key(), got)
		}
	}
	if _, err := ParseValue("zz"); err == nil {
		t.Error("ParseValue accepted malformed key")
	}
	if _, err := ParseValue("i:notanumber"); err == nil {
		t.Error("ParseValue accepted bad int")
	}
}

func TestValueCompareTotalOrder(t *testing.T) {
	vs := []Value{
		String("a"), String("b"), Int(1), Int(2), Float(0.5), Bool(false), Bool(true),
		LabeledNull("a"), LabeledNull("b"),
	}
	for i := range vs {
		for j := range vs {
			cij := vs[i].Compare(vs[j])
			cji := vs[j].Compare(vs[i])
			if cij != -cji {
				t.Errorf("Compare not antisymmetric for %v,%v: %d vs %d", vs[i], vs[j], cij, cji)
			}
			if (cij == 0) != vs[i].Equal(vs[j]) {
				t.Errorf("Compare==0 disagrees with Equal for %v,%v", vs[i], vs[j])
			}
		}
	}
}

// Property: string round trip through Key/ParseValue is the identity.
func TestQuickStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		v, err := ParseValue(String(s).Key())
		return err == nil && v.Equal(String(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: int round trip and ordering consistency.
func TestQuickIntProperties(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		rt, err := ParseValue(va.Key())
		if err != nil || !rt.Equal(va) {
			return false
		}
		switch {
		case a < b:
			return va.Compare(vb) < 0
		case a > b:
			return va.Compare(vb) > 0
		default:
			return va.Compare(vb) == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: keys are injective across string/labeled-null payload space.
func TestQuickKeyInjective(t *testing.T) {
	f := func(s string, asNull bool, s2 string, asNull2 bool) bool {
		var v1, v2 Value
		if asNull {
			v1 = LabeledNull(s)
		} else {
			v1 = String(s)
		}
		if asNull2 {
			v2 = LabeledNull(s2)
		} else {
			v2 = String(s2)
		}
		return (v1.Key() == v2.Key()) == v1.Equal(v2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
