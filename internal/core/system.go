// Package core is the public heart of the ORCHESTRA CDSS: it wires the
// storage engine, schema mappings, update-exchange translation,
// reconciliation, and the published-update store into the peer lifecycle
// the paper describes — locally autonomous editing, publication, and
// reconciliation, each advancing the system's logical clock.
//
// Typical use:
//
//	sys, _ := core.NewSystem(peers, mappings)
//	store := p2p.NewMemoryStore()
//	alice, _ := core.NewPeer("alice", sys, store, recon.TrustAll(1))
//	tx := alice.NewTransaction()
//	tx.Insert("R", tuple)
//	tx.Commit()
//	alice.Publish()
//	bob.Reconcile() // bob receives alice's data translated into his schema
package core

import (
	"fmt"

	"orchestra/internal/mapping"
	"orchestra/internal/schema"
)

// System is the static configuration of a CDSS: the confederation's peer
// schemas and the declarative mappings relating them.
type System struct {
	peers    map[string]*schema.Schema
	mappings []*mapping.Mapping
}

// NewSystem validates and packages a CDSS configuration.
func NewSystem(peers map[string]*schema.Schema, mappings []*mapping.Mapping) (*System, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("core: a CDSS needs at least one peer")
	}
	for name, s := range peers {
		if s == nil {
			return nil, fmt.Errorf("core: peer %s has a nil schema", name)
		}
	}
	for _, m := range mappings {
		if err := m.Validate(); err != nil {
			return nil, err
		}
		if _, ok := peers[m.Source]; !ok {
			return nil, fmt.Errorf("%w %s (source of mapping %s)", ErrUnknownPeer, m.Source, m.ID)
		}
		if _, ok := peers[m.Target]; !ok {
			return nil, fmt.Errorf("%w %s (target of mapping %s)", ErrUnknownPeer, m.Target, m.ID)
		}
	}
	return &System{peers: peers, mappings: mappings}, nil
}

// Schema returns the schema of the named peer, or nil.
func (s *System) Schema(peer string) *schema.Schema { return s.peers[peer] }

// Peers returns the peer -> schema map (shared; treat as read-only).
func (s *System) Peers() map[string]*schema.Schema { return s.peers }

// Mappings returns the mapping list (shared; treat as read-only).
func (s *System) Mappings() []*mapping.Mapping { return s.mappings }
