package core

// Crash tests for the engine-snapshot and resolve-decision keyspaces: a torn
// checkpoint batch must fall back to the previous snapshot plus a longer
// replay (never a corrupt engine), and an archived Resolve decision must
// survive a kill-and-restart whether or not a checkpoint followed it.

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"orchestra/internal/recon"
	"orchestra/internal/workload"
)

func copyDirFiles(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// singleWAL returns the path of the only WAL segment in dir.
func singleWAL(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want one wal segment, got %v (%v)", matches, err)
	}
	return matches[0]
}

// TestTornEngineCheckpointRecoveryFallsBack: the engine-snapshot blob rides
// in the checkpoint's atomic batch, so a crash that tears that batch's WAL
// frame must drop the whole checkpoint — recovery falls back to the previous
// snapshot and replays a longer suffix, and is indistinguishable from the
// live peer at every randomized cut point.
func TestTornEngineCheckpointRecoveryFallsBack(t *testing.T) {
	src := t.TempDir()
	db, ds := openDurableTier(t, src)
	sys, err := NewSystem(workload.Figure2Peers(), workload.Figure2Mappings())
	if err != nil {
		t.Fatal(err)
	}
	alaska, err := NewPeer(workload.Alaska, sys, ds, recon.TrustAll(1))
	if err != nil {
		t.Fatal(err)
	}
	dresden, err := NewPeer(workload.Dresden, sys, ds, recon.TrustAll(1))
	if err != nil {
		t.Fatal(err)
	}

	// History up to checkpoint #1.
	commit(t, alaska.NewTransaction().
		Insert("O", workload.OTuple("mouse", 1)).
		Insert("P", workload.PTuple("p53", 10)).
		Insert("S", workload.STuple(1, 10, "AAAA")))
	publish(t, alaska)
	reconcile(t, dresden)
	checkpoint(t, dresden, db)
	epochAtCk1 := dresden.Epoch()

	// More history, then checkpoint #2 — the batch the cuts will tear.
	commit(t, alaska.NewTransaction().
		Modify("S", workload.STuple(1, 10, "AAAA"), workload.STuple(1, 10, "CCCC")))
	publish(t, alaska)
	reconcile(t, dresden)
	own := commit(t, dresden.NewTransaction().Insert("OPS", workload.OPSTuple("rat", "brca1", "TTTT")))
	publish(t, dresden)
	reconcile(t, dresden)

	walPath := singleWAL(t, src)
	pre, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	checkpoint(t, dresden, db)
	post, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if post.Size() <= pre.Size() {
		t.Fatalf("checkpoint wrote nothing: wal %d -> %d bytes", pre.Size(), post.Size())
	}

	// Simulated crash: the DB is abandoned without Close; the WAL is the only
	// durable state. Cut points cover both frame boundaries of checkpoint
	// #2's batch plus randomized offsets inside it.
	rng := rand.New(rand.NewSource(7))
	cuts := []int64{pre.Size(), pre.Size() + 1, post.Size() - 1, post.Size()}
	for len(cuts) < 12 {
		cuts = append(cuts, pre.Size()+rng.Int63n(post.Size()-pre.Size()))
	}
	for _, cut := range cuts {
		dst := t.TempDir()
		copyDirFiles(t, src, dst)
		if err := os.Truncate(filepath.Join(dst, filepath.Base(walPath)), cut); err != nil {
			t.Fatal(err)
		}
		db2, ds2 := openDurableTier(t, dst)
		d2 := recoverPeer(t, workload.Dresden, ds2, recon.TrustAll(1), db2)

		// Whatever survived, the recovered peer equals the live one: every
		// publish preceded checkpoint #2, so the archive is intact and the
		// torn checkpoint costs only replay length, never state.
		if !d2.Instance().Equal(dresden.Instance()) {
			t.Fatalf("cut %d: recovered instance (%d tuples) != live (%d tuples)",
				cut, d2.Instance().Size(), dresden.Instance().Size())
		}
		if d2.Epoch() != dresden.Epoch() {
			t.Errorf("cut %d: epoch %d, live %d", cut, d2.Epoch(), dresden.Epoch())
		}
		if got, want := d2.Status(own.ID), dresden.Status(own.ID); got != want {
			t.Errorf("cut %d: own txn status %v, live %v", cut, got, want)
		}
		_, watermark, ok, err := EngineSnapshotStats(db2, workload.Dresden)
		if err != nil || !ok {
			t.Fatalf("cut %d: engine snapshot stats: ok=%v err=%v", cut, ok, err)
		}
		if cut < post.Size() {
			// Torn batch dropped atomically: checkpoint #1's snapshot is the
			// one on disk, and recovery paid for the longer suffix.
			if watermark != epochAtCk1 {
				t.Errorf("cut %d: snapshot watermark %d, want fallback %d", cut, watermark, epochAtCk1)
			}
			if d2.recReplayTxns == 0 {
				t.Errorf("cut %d: fallback recovery replayed nothing", cut)
			}
		} else if watermark != dresden.Epoch() {
			t.Errorf("cut %d: intact snapshot watermark %d, want %d", cut, watermark, dresden.Epoch())
		}
		if err := db2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func testResolveSurvivesCrash(t *testing.T, ckBeforeResolve bool) {
	dir := t.TempDir()
	db, ds := openDurableTier(t, dir)
	sys, err := NewSystem(workload.Figure2Peers(), workload.Figure2Mappings())
	if err != nil {
		t.Fatal(err)
	}
	alaska, err := NewPeer(workload.Alaska, sys, ds, recon.TrustAll(1))
	if err != nil {
		t.Fatal(err)
	}
	beijing, err := NewPeer(workload.Beijing, sys, ds, recon.TrustAll(1))
	if err != nil {
		t.Fatal(err)
	}
	// The durable peer comes up through recovery (as the SDK creates it), so
	// it is attached to the LSM tier and Resolve archives its decision.
	dresden := recoverPeer(t, workload.Dresden, ds, recon.TrustAll(1), db)

	bTxn := commit(t, beijing.NewTransaction().
		Insert("O", workload.OTuple("fly", 3)).
		Insert("P", workload.PTuple("tnf", 30)).
		Insert("S", workload.STuple(3, 30, "XXXX")))
	publish(t, beijing)
	aTxn := commit(t, alaska.NewTransaction().
		Insert("O", workload.OTuple("fly", 3)).
		Insert("P", workload.PTuple("tnf", 30)).
		Insert("S", workload.STuple(3, 30, "YYYY")))
	publish(t, alaska)
	reconcile(t, dresden)
	if dresden.Status(bTxn.ID) != recon.StatusDeferred || dresden.Status(aTxn.ID) != recon.StatusDeferred {
		t.Fatalf("setup: beijing=%s alaska=%s", dresden.Status(bTxn.ID), dresden.Status(aTxn.ID))
	}
	if ckBeforeResolve {
		checkpoint(t, dresden, db)
	}

	// The administrator settles the conflict; the decision lands strictly
	// after the last checkpoint (or with no checkpoint at all).
	if _, err := dresden.Resolve(context.Background(), bTxn.ID); err != nil {
		t.Fatal(err)
	}
	// Post-decision history that probes the decision's replay position:
	// beijing modifies the contested data. Live, the translated modify picks
	// up a dependency on the rejected loser and is itself rejected; a
	// recovery that replayed the suffix before re-applying the decision
	// would leave it deferred instead.
	mTxn := commit(t, beijing.NewTransaction().
		Modify("S", workload.STuple(3, 30, "XXXX"), workload.STuple(3, 30, "QQQQ")))
	publish(t, beijing)
	reconcile(t, dresden)
	if dresden.Status(mTxn.ID) != recon.StatusRejected {
		t.Fatalf("setup: post-decision modify = %s, expected the live path to reject it",
			dresden.Status(mTxn.ID))
	}

	// Kill and restart.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, ds2 := openDurableTier(t, dir)
	d2 := recoverPeer(t, workload.Dresden, ds2, recon.TrustAll(1), db2)

	if d2.Status(bTxn.ID) != recon.StatusAccepted {
		t.Errorf("recovered winner status = %s, want accepted", d2.Status(bTxn.ID))
	}
	if d2.Status(aTxn.ID) != recon.StatusRejected {
		t.Errorf("recovered loser status = %s, want rejected", d2.Status(aTxn.ID))
	}
	if got, want := d2.Status(mTxn.ID), dresden.Status(mTxn.ID); got != want {
		t.Errorf("post-decision modify status: recovered %s, live %s", got, want)
	}
	if !d2.Instance().Equal(dresden.Instance()) {
		t.Fatalf("recovered instance (%d tuples) != live (%d tuples)",
			d2.Instance().Size(), dresden.Instance().Size())
	}
	winRow := workload.OPSTuple("fly", "tnf", "XXXX")
	got, ok := d2.Instance().Table("OPS").Get(winRow)
	if !ok {
		t.Fatal("recovered instance lost the winner's row")
	}
	want, _ := dresden.Instance().Table("OPS").Get(winRow)
	if !got.Prov.Equal(want.Prov) {
		t.Errorf("provenance of %v: recovered %v, live %v", winRow, got.Prov, want.Prov)
	}

	// A clean checkpoint folds the decision into the engine snapshot and
	// clears the archive; a second crash must still come back settled.
	checkpoint(t, d2, db2)
	sn := db2.Snapshot()
	rb := rkBase(workload.Dresden)
	archived := 0
	if err := sn.Scan(rb, ckPrefixEnd(rb), func(k, v []byte) bool { archived++; return true }); err != nil {
		t.Fatal(err)
	}
	sn.Close()
	if archived != 0 {
		t.Errorf("decision archive holds %d records after a clean checkpoint, want 0", archived)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	db3, ds3 := openDurableTier(t, dir)
	defer db3.Close()
	d3 := recoverPeer(t, workload.Dresden, ds3, recon.TrustAll(1), db3)
	if d3.Status(bTxn.ID) != recon.StatusAccepted || d3.Status(aTxn.ID) != recon.StatusRejected {
		t.Errorf("after snapshot fold-in: winner=%s loser=%s", d3.Status(bTxn.ID), d3.Status(aTxn.ID))
	}
	if d3.recReplayTxns != 0 {
		t.Errorf("snapshot-covered recovery replayed %d txns, want 0", d3.recReplayTxns)
	}
	if !d3.Instance().Equal(dresden.Instance()) {
		t.Fatal("instance diverged after snapshot fold-in recovery")
	}
}

// TestResolveSurvivesCrashRecovery: kill-and-restart after Peer.Resolve must
// keep the conflict settled and the winner applied — when the decision lands
// after the last checkpoint, and when no checkpoint was ever taken.
func TestResolveSurvivesCrashRecovery(t *testing.T) {
	t.Run("decision-after-checkpoint", func(t *testing.T) { testResolveSurvivesCrash(t, true) })
	t.Run("no-checkpoint-full-replay", func(t *testing.T) { testResolveSurvivesCrash(t, false) })
}

// TestResolveSurvivesDirtyCheckpointCrash: a checkpoint taken while the
// engine is dirty cannot snapshot, so it keeps the decision archive but marks
// each record instance-applied (its effects are in the checkpoint rows).
// Recovery must repair the trust state from the archive without re-applying
// the winner's updates — double application would corrupt provenance.
func TestResolveSurvivesDirtyCheckpointCrash(t *testing.T) {
	dir := t.TempDir()
	db, ds := openDurableTier(t, dir)
	sys, err := NewSystem(workload.Figure2Peers(), workload.Figure2Mappings())
	if err != nil {
		t.Fatal(err)
	}
	alaska, err := NewPeer(workload.Alaska, sys, ds, recon.TrustAll(1))
	if err != nil {
		t.Fatal(err)
	}
	beijing, err := NewPeer(workload.Beijing, sys, ds, recon.TrustAll(1))
	if err != nil {
		t.Fatal(err)
	}
	dresden := recoverPeer(t, workload.Dresden, ds, recon.TrustAll(1), db)
	bTxn := commit(t, beijing.NewTransaction().
		Insert("O", workload.OTuple("fly", 3)).
		Insert("P", workload.PTuple("tnf", 30)).
		Insert("S", workload.STuple(3, 30, "XXXX")))
	publish(t, beijing)
	aTxn := commit(t, alaska.NewTransaction().
		Insert("O", workload.OTuple("fly", 3)).
		Insert("P", workload.PTuple("tnf", 30)).
		Insert("S", workload.STuple(3, 30, "YYYY")))
	publish(t, alaska)
	reconcile(t, dresden)
	if _, err := dresden.Resolve(context.Background(), bTxn.ID); err != nil {
		t.Fatal(err)
	}

	// Simulate a failed Apply having left the engine undefined, then
	// checkpoint: the dirty path drops the stale snapshot and rewrites the
	// archived decision as instance-applied.
	dresden.mu.Lock()
	dresden.engineDirty = true
	dresden.mu.Unlock()
	checkpoint(t, dresden, db)
	if _, _, ok, err := EngineSnapshotStats(db, workload.Dresden); err != nil || ok {
		t.Fatalf("dirty checkpoint left an engine snapshot: ok=%v err=%v", ok, err)
	}
	sn := db.Snapshot()
	rb := rkBase(workload.Dresden)
	var decisions []resolveDecision
	err = sn.Scan(rb, ckPrefixEnd(rb), func(k, v []byte) bool {
		var d resolveDecision
		if e := json.Unmarshal(v, &d); e != nil {
			t.Errorf("bad archived decision: %v", e)
			return false
		}
		decisions = append(decisions, d)
		if len(k) < len(rb)+8 {
			t.Errorf("short decision key %x", k)
		} else if seq := binary.BigEndian.Uint64(k[len(rb):]); seq != 0 {
			t.Errorf("decision seq = %d, want 0", seq)
		}
		return true
	})
	sn.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) != 1 || !decisions[0].InstanceApplied {
		t.Fatalf("archived decisions after dirty checkpoint: %+v", decisions)
	}

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, ds2 := openDurableTier(t, dir)
	defer db2.Close()
	d2 := recoverPeer(t, workload.Dresden, ds2, recon.TrustAll(1), db2)
	if d2.Status(bTxn.ID) != recon.StatusAccepted || d2.Status(aTxn.ID) != recon.StatusRejected {
		t.Errorf("recovered: winner=%s loser=%s", d2.Status(bTxn.ID), d2.Status(aTxn.ID))
	}
	if !d2.Instance().Equal(dresden.Instance()) {
		t.Fatalf("recovered instance (%d tuples) != live (%d tuples)",
			d2.Instance().Size(), dresden.Instance().Size())
	}
	// The decisive check: the winner's row carries the live provenance, not a
	// doubled polynomial from re-applying updates the rows already held.
	winRow := workload.OPSTuple("fly", "tnf", "XXXX")
	got, ok := d2.Instance().Table("OPS").Get(winRow)
	if !ok {
		t.Fatal("winner row missing after recovery")
	}
	want, _ := dresden.Instance().Table("OPS").Get(winRow)
	if !got.Prov.Equal(want.Prov) {
		t.Errorf("winner provenance: recovered %v, live %v", got.Prov, want.Prov)
	}
}
