package core

import (
	"context"
	"testing"

	"orchestra/internal/p2p"
	"orchestra/internal/recon"
	"orchestra/internal/schema"
	"orchestra/internal/updates"
	"orchestra/internal/workload"
)

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(nil, nil); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := NewSystem(map[string]*schema.Schema{"a": nil}, nil); err == nil {
		t.Error("nil schema accepted")
	}
	peers := workload.Figure2Peers()
	ms := workload.Figure2Mappings()
	// Mapping referencing a non-peer.
	bad := workload.JoinMapping("M_bad", "alaska", "nowhere")
	if _, err := NewSystem(peers, append(ms, bad)); err == nil {
		t.Error("mapping to unknown peer accepted")
	}
	sys, err := NewSystem(peers, ms)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Schema("alaska") == nil || sys.Schema("nowhere") != nil {
		t.Error("Schema lookup wrong")
	}
	if len(sys.Mappings()) != len(ms) || len(sys.Peers()) != 4 {
		t.Error("accessors wrong")
	}
}

func TestNewPeerUnknown(t *testing.T) {
	sys, err := NewSystem(workload.Figure2Peers(), workload.Figure2Mappings())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPeer("nowhere", sys, p2p.NewMemoryStore(), recon.TrustAll(1)); err == nil {
		t.Error("unknown peer accepted")
	}
}

func TestCommitValidation(t *testing.T) {
	peers, _ := fig2(t)
	alaska := peers[workload.Alaska]
	// Unknown relation.
	if _, err := alaska.NewTransaction().Insert("NOPE", workload.OTuple("x", 1)).Commit(); err == nil {
		t.Error("unknown relation accepted")
	}
	// Wrong arity.
	if _, err := alaska.NewTransaction().Insert("O", schema.NewTuple(schema.Int(1))).Commit(); err == nil {
		t.Error("bad tuple accepted")
	}
	// Failed commit applies nothing and does not consume a sequence number.
	if alaska.Instance().Size() != 0 {
		t.Error("failed commit leaked data")
	}
	txn := commit(t, alaska.NewTransaction().Insert("O", workload.OTuple("mouse", 1)))
	if txn.ID.Seq != 1 {
		t.Errorf("seq = %d", txn.ID.Seq)
	}
	// Double commit of the same Txn object fails.
	tx := alaska.NewTransaction().Insert("O", workload.OTuple("rat", 2))
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err == nil {
		t.Error("double commit accepted")
	}
	// Abort discards.
	ab := alaska.NewTransaction().Insert("O", workload.OTuple("fly", 3))
	ab.Abort()
	if _, err := ab.Commit(); err == nil {
		t.Error("commit after abort accepted")
	}
}

func TestPublishSnapshotSemantics(t *testing.T) {
	peers, _ := fig2(t)
	alaska := peers[workload.Alaska]
	commit(t, alaska.NewTransaction().Insert("O", workload.OTuple("mouse", 1)))
	publish(t, alaska)
	// The snapshot reflects the published state.
	if !alaska.PublishedSnapshot().Contains("O", workload.OTuple("mouse", 1)) {
		t.Error("snapshot missing published tuple")
	}
	// Further local edits do not leak into the snapshot until republished.
	commit(t, alaska.NewTransaction().Insert("O", workload.OTuple("rat", 2)))
	if alaska.PublishedSnapshot().Contains("O", workload.OTuple("rat", 2)) {
		t.Error("snapshot leaked unpublished edit")
	}
	publish(t, alaska)
	if !alaska.PublishedSnapshot().Contains("O", workload.OTuple("rat", 2)) {
		t.Error("snapshot not refreshed")
	}
}

func TestPublishEmptyDoesNotAdvanceEpoch(t *testing.T) {
	peers, store := fig2(t)
	alaska := peers[workload.Alaska]
	e0, _ := store.Epoch()
	epoch, err := alaska.Publish(context.Background())
	if err != nil || epoch != e0 {
		t.Errorf("empty publish: %d %v", epoch, err)
	}
}

func TestEpochAdvancesAcrossRounds(t *testing.T) {
	peers, _ := fig2(t)
	alaska, beijing := peers[workload.Alaska], peers[workload.Beijing]
	commit(t, alaska.NewTransaction().Insert("O", workload.OTuple("mouse", 1)))
	publish(t, alaska)
	r1 := reconcile(t, beijing)
	if r1.Epoch != 1 || beijing.Epoch() != 1 {
		t.Errorf("epoch after round 1 = %d", r1.Epoch)
	}
	// Reconciling again with nothing new fetches nothing.
	r2 := reconcile(t, beijing)
	if r2.Fetched != 0 || len(r2.Accepted) != 0 {
		t.Errorf("idle reconcile = %+v", r2)
	}
	commit(t, alaska.NewTransaction().Insert("O", workload.OTuple("rat", 2)))
	publish(t, alaska)
	r3 := reconcile(t, beijing)
	if r3.Epoch != 2 || r3.Fetched != 1 {
		t.Errorf("round 3 = %+v", r3)
	}
}

func TestOwnTransactionsNotReapplied(t *testing.T) {
	peers, _ := fig2(t)
	alaska := peers[workload.Alaska]
	commit(t, alaska.NewTransaction().Insert("O", workload.OTuple("mouse", 1)))
	publish(t, alaska)
	r := reconcile(t, alaska)
	if r.Fetched != 1 || len(r.Accepted) != 0 || r.AppliedUpdates != 0 {
		t.Errorf("self reconcile = %+v", r)
	}
	if alaska.Instance().Table("O").Len() != 1 {
		t.Errorf("O duplicated: %v", alaska.Instance().Table("O").Rows())
	}
}

func TestConvergenceAcrossSharedSchemaPeers(t *testing.T) {
	peers, _ := fig2(t)
	alaska, beijing := peers[workload.Alaska], peers[workload.Beijing]
	commit(t, alaska.NewTransaction().
		Insert("O", workload.OTuple("mouse", 1)).
		Insert("P", workload.PTuple("p53", 10)).
		Insert("S", workload.STuple(1, 10, "ACGT")))
	publish(t, alaska)
	commit(t, beijing.NewTransaction().
		Insert("O", workload.OTuple("rat", 2)))
	publish(t, beijing)
	reconcile(t, alaska)
	reconcile(t, beijing)
	// Both Σ1 peers converge to the same instance.
	if !alaska.Instance().Equal(beijing.Instance()) {
		t.Errorf("alaska=%d tuples, beijing=%d tuples",
			alaska.Instance().Size(), beijing.Instance().Size())
	}
	if alaska.Instance().Table("O").Len() != 2 {
		t.Errorf("O = %v", alaska.Instance().Table("O").Rows())
	}
}

func TestDeletionPropagatesEndToEnd(t *testing.T) {
	peers, _ := fig2(t)
	alaska, dresden := peers[workload.Alaska], peers[workload.Dresden]
	commit(t, alaska.NewTransaction().
		Insert("O", workload.OTuple("mouse", 1)).
		Insert("P", workload.PTuple("p53", 10)).
		Insert("S", workload.STuple(1, 10, "ACGT")))
	publish(t, alaska)
	reconcile(t, dresden)
	if !dresden.Instance().Contains("OPS", workload.OPSTuple("mouse", "p53", "ACGT")) {
		t.Fatal("setup failed")
	}
	// Alaska retracts its own S tuple.
	commit(t, alaska.NewTransaction().Delete("S", workload.STuple(1, 10, "ACGT")))
	publish(t, alaska)
	reconcile(t, dresden)
	if dresden.Instance().Contains("OPS", workload.OPSTuple("mouse", "p53", "ACGT")) {
		t.Errorf("dresden kept deleted data: %v", dresden.Instance().Table("OPS").Rows())
	}
}

func TestReconcileReportShapes(t *testing.T) {
	peers, _ := fig2(t)
	alaska, crete := peers[workload.Alaska], peers[workload.Crete]
	// Alaska is untrusted at Crete: its candidate stays pending.
	commit(t, alaska.NewTransaction().
		Insert("O", workload.OTuple("mouse", 1)).
		Insert("P", workload.PTuple("p53", 10)).
		Insert("S", workload.STuple(1, 10, "ACGT")))
	publish(t, alaska)
	r := reconcile(t, crete)
	if len(r.Pending) != 1 {
		t.Errorf("report = %+v", r)
	}
	if crete.Status(updates.TxnID{Peer: workload.Alaska, Seq: 1}) != recon.StatusPending {
		t.Error("alaska txn should be pending at crete")
	}
	if crete.Instance().Table("OPS").Len() != 0 {
		t.Error("crete applied untrusted data")
	}
}

func TestResolveWithoutConflictErrors(t *testing.T) {
	peers, _ := fig2(t)
	alaska := peers[workload.Alaska]
	if _, err := alaska.Resolve(context.Background(), updates.TxnID{Peer: "x", Seq: 1}); err == nil {
		t.Error("resolve of unknown txn accepted")
	}
}

// A full "diamond" consistency check: data inserted at Alaska reaches
// Dresden along A→C→D; Dresden's own inserts reach Alaska along D→C→A; and
// a second reconciliation round is idempotent everywhere.
func TestDiamondConvergenceAndIdempotence(t *testing.T) {
	peers, _ := fig2(t)
	all := []*Peer{peers[workload.Alaska], peers[workload.Beijing], peers[workload.Crete], peers[workload.Dresden]}

	commit(t, peers[workload.Alaska].NewTransaction().
		Insert("O", workload.OTuple("mouse", 1)).
		Insert("P", workload.PTuple("p53", 10)).
		Insert("S", workload.STuple(1, 10, "ACGT")))
	publish(t, peers[workload.Alaska])
	commit(t, peers[workload.Dresden].NewTransaction().
		Insert("OPS", workload.OPSTuple("fly", "myc", "GGGG")))
	publish(t, peers[workload.Dresden])

	for _, p := range all {
		reconcile(t, p)
	}
	sizes := map[string]int{}
	for _, p := range all {
		sizes[p.Name()] = p.Instance().Size()
	}
	// Second round: nothing new, no size changes.
	for _, p := range all {
		r := reconcile(t, p)
		if r.AppliedUpdates != 0 {
			t.Errorf("%s applied %d updates on idle round", p.Name(), r.AppliedUpdates)
		}
		if p.Instance().Size() != sizes[p.Name()] {
			t.Errorf("%s size changed on idle round", p.Name())
		}
	}
	// Crete and Dresden both have the two OPS tuples (Dresden trusts all;
	// Crete trusts Dresden for the fly tuple and... Alaska is untrusted,
	// so Crete has only Dresden's).
	if peers[workload.Dresden].Instance().Table("OPS").Len() != 2 {
		t.Errorf("dresden OPS = %v", peers[workload.Dresden].Instance().Table("OPS").Rows())
	}
	if peers[workload.Crete].Instance().Table("OPS").Len() != 1 {
		t.Errorf("crete OPS = %v", peers[workload.Crete].Instance().Table("OPS").Rows())
	}
}
