package core

import "errors"

// Sentinel errors wrapped by the errors this package constructs, so that
// errors.Is works through the full chain up to the public orchestra facade.
var (
	// ErrTxnFinished reports a Commit or further use of a transaction that
	// has already been committed or aborted.
	ErrTxnFinished = errors.New("core: transaction already finished")
	// ErrUnknownPeer reports a peer name the CDSS configuration does not
	// declare.
	ErrUnknownPeer = errors.New("core: unknown peer")
	// ErrUnknownRelation reports a relation name the peer's schema does not
	// declare.
	ErrUnknownRelation = errors.New("core: unknown relation")
	// ErrInvalidQuery reports a malformed goal query: no goal, a rule head
	// that shadows a stored relation or uses a reserved name, an arity
	// mismatch, or an unsafe rule body.
	ErrInvalidQuery = errors.New("core: invalid query")
)
