package core

import (
	"log/slog"
	"time"

	"orchestra/internal/datalog"
	"orchestra/internal/exchange"
	"orchestra/internal/obs"
)

// observer is a peer's resolved observability surface: span tracing for the
// publish/reconcile/checkpoint/query operations, exchange-layer batch and
// drain metrics, and structured slow-operation logging. The zero value is a
// disabled observer — every handle is nil (obs handles no-op on nil) and
// every method returns after a nil check — so un-instrumented peers pay no
// clock reads or atomics. Installed once via Peer.SetObserver; handles are
// resolved there, never per operation.
type observer struct {
	reg    *obs.Registry
	slowOp time.Duration
	// stats is the peer's engine-shared datalog.EvalStats (from
	// exchange.Config.Stats); the observer folds per-operation fixpoint-round
	// deltas out of it and installs it as the default query stats sink.
	stats *datalog.EvalStats

	publishes   *obs.Counter   // core_publish_total
	publishedTx *obs.Counter   // core_published_txns_total
	reconciles  *obs.Counter   // core_reconcile_total
	acceptedTx  *obs.Counter   // core_accepted_txns_total
	appliedUps  *obs.Counter   // core_applied_updates_total
	checkpoints *obs.Counter   // core_checkpoint_total
	queries     *obs.Counter   // core_query_total
	batchTxns   *obs.Histogram // exchange_applyall_batch_txns
	drainTxnNs  *obs.Histogram // exchange_drain_txn_ns (per-txn drain latency)
	fixRounds   *obs.Histogram // datalog_fixpoint_rounds (per reconcile/query)
	windowEwma  *obs.Gauge     // exchange_window_pertxn_ns (adaptive EWMA)

	recoveryTxns    *obs.Histogram // recovery_replay_txns (suffix length per recovery)
	recoveryLoadNs  *obs.Histogram // recovery_load_ns (checkpoint+snapshot load time)
	checkpointBytes *obs.Gauge     // checkpoint_bytes (last checkpoint batch size)
}

// SetObserver installs the peer's observability surface: operation spans and
// counters record into reg, and operations slower than slowOp (when > 0) log
// a structured warning through log/slog. The engine's evaluation counters
// ride the peer's exchange.Config.Stats, so callers that want fixpoint-round
// deltas must have built the peer with Config.Stats set. Passing a nil reg
// disables observation again.
func (p *Peer) SetObserver(reg *obs.Registry, slowOp time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if reg == nil {
		p.obsv = observer{}
		return
	}
	p.obsv = observer{
		reg:         reg,
		slowOp:      slowOp,
		stats:       p.engCfg.Stats,
		publishes:   reg.Counter("core_publish_total"),
		publishedTx: reg.Counter("core_published_txns_total"),
		reconciles:  reg.Counter("core_reconcile_total"),
		acceptedTx:  reg.Counter("core_accepted_txns_total"),
		appliedUps:  reg.Counter("core_applied_updates_total"),
		checkpoints: reg.Counter("core_checkpoint_total"),
		queries:     reg.Counter("core_query_total"),
		batchTxns:   reg.Histogram("exchange_applyall_batch_txns"),
		drainTxnNs:  reg.Histogram("exchange_drain_txn_ns"),
		fixRounds:   reg.Histogram("datalog_fixpoint_rounds"),
		windowEwma:  reg.Gauge("exchange_window_pertxn_ns"),

		recoveryTxns:    reg.Histogram("recovery_replay_txns"),
		recoveryLoadNs:  reg.Histogram("recovery_load_ns"),
		checkpointBytes: reg.Gauge("checkpoint_bytes"),
	}
	// Recovery runs before the observer is installed (RecoverPeerWith is
	// called by the facade before SetObserver); the peer buffers its
	// recovery stats and they flush here, on first installation.
	if p.pendingRecovery {
		p.obsv.recoveryTxns.Observe(p.recReplayTxns)
		p.obsv.recoveryLoadNs.Observe(p.recLoadNs)
		p.pendingRecovery = false
	}
}

// startSpan opens an operation span (nil when observation is disabled).
func (o *observer) startSpan(name, peer string) *obs.Span {
	if o.reg == nil {
		return nil
	}
	return o.reg.StartSpan(name, peer)
}

// endSpan completes sp and emits the slow-operation warning when its
// duration crosses the configured threshold. Safe on a nil span.
func (o *observer) endSpan(sp *obs.Span, peer string) {
	if sp == nil {
		return
	}
	d := sp.End()
	if o.slowOp > 0 && d > o.slowOp {
		slog.Warn("orchestra: slow operation",
			"op", sp.Name(), "peer", peer, "duration", d, "threshold", o.slowOp)
	}
}

// roundsNow reads the engine's cumulative fixpoint-round counter (0 when no
// stats struct is installed).
func (o *observer) roundsNow() int64 {
	if o.stats == nil {
		return 0
	}
	return o.stats.Rounds.Load()
}

// observeRounds records the fixpoint rounds one operation consumed.
func (o *observer) observeRounds(before int64) {
	if o.stats == nil {
		return
	}
	if d := o.stats.Rounds.Load() - before; d > 0 {
		o.fixRounds.Observe(d)
	}
}

// observeDrain records one drained group-commit window: batch size, per-txn
// drain latency, and the adaptive controller's current EWMA.
func (o *observer) observeDrain(win *exchange.AdaptiveWindow, n int, elapsed time.Duration) {
	if o.reg == nil || n <= 0 {
		return
	}
	o.batchTxns.Observe(int64(n))
	o.drainTxnNs.Observe(elapsed.Nanoseconds() / int64(n))
	o.windowEwma.Set(win.PerTxn().Nanoseconds())
}
