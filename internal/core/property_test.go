package core

// Randomized end-to-end properties of the full CDSS stack.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"orchestra/internal/exchange"
	"orchestra/internal/p2p"
	"orchestra/internal/recon"
	"orchestra/internal/updates"
	"orchestra/internal/workload"
)

// TestQuickInsertOnlyConvergence: with trust-all policies and insert-only
// workloads (no conflicts by construction), every Σ1 peer converges to the
// same instance, and that instance matches the exchange engine's
// trust-everything materialization.
func TestQuickInsertOnlyConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 5; trial++ {
		topo := workload.Chain(3)
		sys, err := NewSystem(topo.Peers, topo.Mappings)
		if err != nil {
			t.Fatal(err)
		}
		store := p2p.NewMemoryStore()
		peers := make([]*Peer, 3)
		for i, name := range topo.Names {
			p, err := NewPeer(name, sys, store, recon.TrustAll(1))
			if err != nil {
				t.Fatal(err)
			}
			peers[i] = p
		}
		// Each peer inserts disjoint keys over several rounds, publishing
		// and reconciling in random order.
		key := int64(trial * 10000)
		for round := 0; round < 4; round++ {
			for _, p := range peers {
				n := rng.Intn(3) + 1
				tx := p.NewTransaction()
				for j := 0; j < n; j++ {
					tx.Insert("S", workload.STuple(key, key, workload.Sequence(key, key)))
					key++
				}
				if _, err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
				if _, err := p.Publish(context.Background()); err != nil {
					t.Fatal(err)
				}
			}
			order := rng.Perm(len(peers))
			for _, i := range order {
				if _, err := peers[i].Reconcile(context.Background()); err != nil {
					t.Fatal(err)
				}
			}
		}
		// One final catch-up round.
		for _, p := range peers {
			if _, err := p.Reconcile(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
		for i := 1; i < len(peers); i++ {
			if !peers[0].Instance().Equal(peers[i].Instance()) {
				t.Fatalf("trial %d: %s (%d tuples) != %s (%d tuples)",
					trial, peers[0].Name(), peers[0].Instance().Size(),
					peers[i].Name(), peers[i].Instance().Size())
			}
		}
		// Cross-check against the declarative materialization.
		eng, err := exchange.NewEngine(topo.Peers, topo.Mappings)
		if err != nil {
			t.Fatal(err)
		}
		txns, _, err := store.Since(0)
		if err != nil {
			t.Fatal(err)
		}
		for _, txn := range txns {
			if _, err := eng.Apply(context.Background(), txn); err != nil {
				t.Fatal(err)
			}
		}
		mat, err := eng.MaterializePeer(context.Background(), topo.Names[0], func(updates.TxnID) bool { return true })
		if err != nil {
			t.Fatal(err)
		}
		if !mat.Equal(peers[0].Instance()) {
			t.Fatalf("trial %d: replay (%d tuples) != materialization (%d tuples)",
				trial, peers[0].Instance().Size(), mat.Size())
		}
	}
}

// TestQuickConflictingPublishersEventualAgreement: two publishers write the
// same keys with conflicting values; a set of equally-trusting subscribers
// defers, and after each resolves in favor of the SAME winner, all
// subscribers agree.
func TestQuickConflictingPublishersEventualAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 5; trial++ {
		topo := workload.Star(4) // hub + 3 spokes, all Σ1
		sys, err := NewSystem(topo.Peers, topo.Mappings)
		if err != nil {
			t.Fatal(err)
		}
		store := p2p.NewMemoryStore()
		all := map[string]*Peer{}
		for _, name := range topo.Names {
			p, err := NewPeer(name, sys, store, recon.TrustAll(1))
			if err != nil {
				t.Fatal(err)
			}
			all[name] = p
		}
		pub1, pub2 := all[topo.Names[1]], all[topo.Names[2]]
		nConf := 1 + rng.Intn(3)
		var firstIDs []updates.TxnID
		for c := 0; c < nConf; c++ {
			k := int64(c)
			t1, err := pub1.NewTransaction().
				Insert("S", workload.STuple(k, k, fmt.Sprintf("V1-%d", c))).Commit()
			if err != nil {
				t.Fatal(err)
			}
			firstIDs = append(firstIDs, t1.ID)
			if _, err := pub1.Publish(context.Background()); err != nil {
				t.Fatal(err)
			}
			if _, err := pub2.NewTransaction().
				Insert("S", workload.STuple(k, k, fmt.Sprintf("V2-%d", c))).Commit(); err != nil {
				t.Fatal(err)
			}
			if _, err := pub2.Publish(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
		// The hub and third spoke reconcile, defer, and resolve every
		// conflict in favor of publisher 1.
		subs := []*Peer{all[topo.Names[0]], all[topo.Names[3]]}
		for _, s := range subs {
			if _, err := s.Reconcile(context.Background()); err != nil {
				t.Fatal(err)
			}
			for _, id := range firstIDs {
				if s.Status(id) == recon.StatusDeferred {
					if _, err := s.Resolve(context.Background(), id); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if !subs[0].Instance().Equal(subs[1].Instance()) {
			t.Fatalf("trial %d: subscribers disagree after identical resolutions", trial)
		}
		for c := 0; c < nConf; c++ {
			k := int64(c)
			if !subs[0].Instance().Contains("S", workload.STuple(k, k, fmt.Sprintf("V1-%d", c))) {
				t.Errorf("trial %d: winner's value missing for key %d", trial, c)
			}
		}
	}
}
