package core

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"log"
	"time"

	"orchestra/internal/datalog"
	"orchestra/internal/exchange"
	"orchestra/internal/lsm"
	"orchestra/internal/p2p"
	"orchestra/internal/provenance"
	"orchestra/internal/recon"
	"orchestra/internal/schema"
	"orchestra/internal/updates"
)

// This file is the peer-side half of the durable tier: peers checkpoint
// their local instance into the same LSM database that holds the published
// archive (p2p.DurableStore, prefix "a/"), and recover after a crash by
// loading the checkpoint and replaying only what the checkpoint does not
// already cover.
//
// Checkpoint key layout, all under "c/" so it cannot collide with the
// archive keyspace (esc is lsm.AppendString, the order-preserving escaped
// string encoding):
//
//	c/<esc peer>m                        -> JSON checkpointMeta
//	c/<esc peer>r<esc rel><tuple bytes>  -> JSON provenance polynomial
//	c/<esc peer>u<index be32>            -> JSON p2p.WireTxn (unpublished)
//
// The tuple decodes from the row key itself; the value holds only the
// stored annotation. That makes a checkpoint relation a contiguous,
// key-ordered range — which is what lets CheckpointEDB serve it as a lazy
// datalog extent straight off an LSM snapshot scan.

const ckPrefix = "c/"

// checkpointMeta is the atomically-swapped summary record: which epoch the
// rows reflect, and where the local transaction counter stood.
type checkpointMeta struct {
	NextSeq   uint64 `json:"next_seq"`
	LastEpoch uint64 `json:"last_epoch"`
}

func ckBase(peer string) []byte {
	return lsm.AppendString([]byte(ckPrefix), peer)
}

func ckMetaKey(peer string) []byte { return append(ckBase(peer), 'm') }

func ckRowPrefix(peer string) []byte { return append(ckBase(peer), 'r') }

func ckRelPrefix(peer, rel string) []byte {
	return lsm.AppendString(ckRowPrefix(peer), rel)
}

func ckRowKey(peer, rel string, tu schema.Tuple) []byte {
	return lsm.AppendTuple(ckRelPrefix(peer, rel), tu)
}

func ckUnpubPrefix(peer string) []byte { return append(ckBase(peer), 'u') }

func ckUnpubKey(peer string, idx int) []byte {
	return binary.BigEndian.AppendUint32(ckUnpubPrefix(peer), uint32(idx))
}

// ckPrefixEnd returns the tightest exclusive upper bound for a key prefix
// (nil means "to the end of the keyspace").
func ckPrefixEnd(p []byte) []byte {
	out := append([]byte(nil), p...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	return nil
}

// wireMono / wirePow are the JSON form of a provenance polynomial: a sum of
// coef·x1^k1·…·xn^kn monomials. Serializing through Monomials keeps the
// codec independent of the polynomial's interned in-memory representation.
type wireMono struct {
	C uint64    `json:"c"`
	V []wirePow `json:"v,omitempty"`
}

type wirePow struct {
	X string `json:"x"`
	K int    `json:"k"`
}

func encodeProv(p provenance.Poly) ([]byte, error) {
	ms := p.Monomials()
	out := make([]wireMono, 0, len(ms))
	for _, m := range ms {
		wm := wireMono{C: m.Coef}
		for _, vp := range m.Vars {
			wm.V = append(wm.V, wirePow{X: string(vp.Var), K: vp.Pow})
		}
		out = append(out, wm)
	}
	return json.Marshal(out)
}

func decodeProv(data []byte) (provenance.Poly, error) {
	var ws []wireMono
	if err := json.Unmarshal(data, &ws); err != nil {
		return provenance.Poly{}, err
	}
	ms := make([]provenance.Monomial, 0, len(ws))
	for _, w := range ws {
		m := provenance.Monomial{Coef: w.C}
		for _, vp := range w.V {
			m.Vars = append(m.Vars, provenance.VarPow{Var: provenance.Var(vp.X), Pow: vp.K})
		}
		ms = append(ms, m)
	}
	return provenance.FromMonomials(ms), nil
}

// SaveCheckpoint writes the peer's durable state — every local instance row
// with its provenance, the committed-but-unpublished transaction queue, and
// the (nextSeq, lastEpoch) meta record — as ONE atomic, fsynced lsm.Batch
// that also deletes whatever the previous checkpoint wrote and this one did
// not. A crash therefore leaves either the old checkpoint or the new one,
// never a blend: the batch is a single WAL record, and recovery replays it
// all or not at all.
func (p *Peer) SaveCheckpoint(db *lsm.DB) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	sp := p.obsv.startSpan("core_checkpoint", p.name)
	defer p.obsv.endSpan(sp, p.name)
	p.obsv.checkpoints.Inc()
	b := lsm.NewBatch()
	live := map[string]bool{}
	s := p.sys.Schema(p.name)
	for _, rel := range s.Relations() {
		rows, _ := p.local.Rows(rel.Name)
		for _, row := range rows {
			key := ckRowKey(p.name, rel.Name, row.Tuple)
			val, err := encodeProv(row.Prov)
			if err != nil {
				return fmt.Errorf("core: checkpoint %s: encode provenance: %w", p.name, err)
			}
			b.Put(key, val)
			live[string(key)] = true
		}
	}
	for i, t := range p.unpublished {
		data, err := json.Marshal(p2p.EncodeTxn(t))
		if err != nil {
			return fmt.Errorf("core: checkpoint %s: encode unpublished txn: %w", p.name, err)
		}
		key := ckUnpubKey(p.name, i)
		b.Put(key, data)
		live[string(key)] = true
	}
	meta, err := json.Marshal(checkpointMeta{NextSeq: p.nextSeq, LastEpoch: p.lastEpoch})
	if err != nil {
		return err
	}
	mk := ckMetaKey(p.name)
	b.Put(mk, meta)
	live[string(mk)] = true
	// Sweep the previous checkpoint: any key under this peer's prefix that
	// the new checkpoint does not reassert is deleted in the same batch, so
	// deleted rows and drained unpublished slots cannot leak back in.
	base := ckBase(p.name)
	sn := db.Snapshot()
	err = sn.Scan(base, ckPrefixEnd(base), func(k, v []byte) bool {
		if !live[string(k)] {
			b.Delete(append([]byte(nil), k...))
		}
		return true
	})
	sn.Close()
	if err != nil {
		return fmt.Errorf("core: checkpoint %s: sweep previous: %w", p.name, err)
	}
	if err := db.Apply(b, true); err != nil {
		return fmt.Errorf("core: checkpoint %s: %w", p.name, err)
	}
	return nil
}

// RecoverPeerWith reconstructs a peer from its durable checkpoint in db
// plus the published history in store. The invariant it restores: the
// recovered peer is indistinguishable — instance rows, provenance, trust
// state, dependency tracker, unpublished queue, sequence counter — from the
// same peer having processed the same history live, with two documented
// exceptions (Resolve decisions are not archived and regress to deferred;
// the published snapshot equals the reconciled instance rather than the
// instant of the last Publish).
//
// The replay is suffix-only for the instance: checkpoint rows already hold
// the effects of every transaction the peer applied up to LastEpoch (E), so
// reconciliation outcomes produced while replaying epochs ≤ E rebuild the
// trust state but are NOT re-applied to the instance. Translations replay
// over the full history — the engine's end state (and each candidate's
// translated updates) depend on it — relying on ApplyAll's pinned
// batch-composition property.
func RecoverPeerWith(ctx context.Context, name string, sys *System, store p2p.Store, policy *recon.Policy, cfg exchange.Config, db *lsm.DB) (*Peer, error) {
	p, err := NewPeerWith(name, sys, store, policy, cfg)
	if err != nil {
		return nil, err
	}
	fail := func(stage string, err error) (*Peer, error) {
		return nil, fmt.Errorf("core: recover peer %s: %s: %w", name, stage, err)
	}

	// Phase 1 — load the checkpoint. No meta record means no checkpoint was
	// ever taken: recovery degenerates to a full-history replay from a fresh
	// peer (E = 0), the same code path.
	meta := checkpointMeta{NextSeq: 1}
	var ckUnpublished []*updates.Transaction
	sn := db.Snapshot()
	if raw, ok, err := sn.Get(ckMetaKey(name)); err != nil {
		sn.Close()
		return fail("read meta", err)
	} else if ok {
		if err := json.Unmarshal(raw, &meta); err != nil {
			sn.Close()
			return fail("decode meta", err)
		}
	}
	rp := ckRowPrefix(name)
	var derr error
	err = sn.Scan(rp, ckPrefixEnd(rp), func(k, v []byte) bool {
		rel, rest, e := lsm.DecodeString(k[len(rp):])
		if e != nil {
			derr = e
			return false
		}
		tu, e := lsm.DecodeTuple(rest)
		if e != nil {
			derr = e
			return false
		}
		prov, e := decodeProv(v)
		if e != nil {
			derr = e
			return false
		}
		if _, e := p.local.Upsert(rel, tu, prov); e != nil {
			derr = e
			return false
		}
		return true
	})
	if err == nil {
		err = derr
	}
	if err != nil {
		sn.Close()
		return fail("checkpoint rows", err)
	}
	up := ckUnpubPrefix(name)
	derr = nil
	err = sn.Scan(up, ckPrefixEnd(up), func(k, v []byte) bool {
		var w p2p.WireTxn
		if e := json.Unmarshal(v, &w); e != nil {
			derr = e
			return false
		}
		t, e := p2p.DecodeTxn(w)
		if e != nil {
			derr = e
			return false
		}
		ckUnpublished = append(ckUnpublished, t)
		return true
	})
	sn.Close()
	if err == nil {
		err = derr
	}
	if err != nil {
		return fail("checkpoint unpublished", err)
	}
	p.nextSeq = meta.NextSeq
	E := meta.LastEpoch

	// Phase 2 — fetch the full published history and replay translations
	// through the engine in adaptive windows (same group-commit shape as
	// Reconcile), leaving the engine exactly where a live peer's would be.
	txns, storeEpoch, err := store.Since(0)
	if err != nil {
		return fail("fetch history", err)
	}
	results := make([]*exchange.Result, 0, len(txns))
	for rest := txns; len(rest) > 0; {
		n := p.win.Next(len(rest))
		start := time.Now()
		rs, err := p.engine.ApplyAll(ctx, rest[:n])
		if err != nil {
			return fail("replay translations", err)
		}
		p.win.Observe(n, time.Since(start))
		results = append(results, rs...)
		rest = rest[n:]
	}

	// A checkpoint-unpublished transaction that later shows up in the store
	// was published in the window between the checkpoint and the crash: it
	// re-enters the trust state at its epoch slot and must NOT be restored
	// to the unpublished queue (the archive already has it).
	ownInStore := map[updates.TxnID]bool{}
	for _, t := range txns {
		if t.ID.Peer == name {
			ownInStore[t.ID] = true
		}
	}
	inCk := map[updates.TxnID]bool{}
	for _, t := range ckUnpublished {
		inCk[t.ID] = true
	}

	// Phase 3 — replay decisions in epoch order. Candidate runs are flushed
	// through state.Reconcile at every boundary that changes what "applying
	// the outcome" means: at each of our own transactions (AcceptLocal must
	// interleave at its true position — acceptance order decides write
	// conflicts) and at the E boundary (outcomes at epochs ≤ E are already
	// reflected in the checkpoint rows and must not re-apply; outcomes after
	// E must). Batch-insensitivity of state.Reconcile makes the coarser
	// replay partitioning equivalent to the original round structure.
	var run []*updates.Transaction
	var runRes []*exchange.Result
	runPre := false
	flush := func(pre bool) error {
		if len(run) == 0 {
			return nil
		}
		cands := make([]*updates.Transaction, 0, len(run))
		for i, txn := range run {
			cands = append(cands, &updates.Transaction{
				ID:      txn.ID,
				Epoch:   txn.Epoch,
				Updates: runRes[i].PerPeer[name],
				Deps:    mergeDeps(txn.Deps, runRes[i].ExtraDeps[name]),
			})
		}
		outcome, err := p.state.Reconcile(policy, cands)
		if err != nil {
			return err
		}
		for _, t := range outcome.Accepted {
			if !pre {
				if err := p.applyUpdates(t.Updates); err != nil {
					return err
				}
			}
			// RecordWrites, not Record: replay must restore the archived
			// dependency edges, not recompute them against replay-time state.
			p.tracker.RecordWrites(t)
		}
		run, runRes = nil, nil
		return nil
	}
	restoreUnpublished := func() error {
		for _, t := range ckUnpublished {
			if ownInStore[t.ID] {
				continue
			}
			if err := p.state.AcceptLocal(t); err != nil {
				return err
			}
			p.tracker.RecordWrites(t)
			p.unpublished = append(p.unpublished, t)
		}
		return nil
	}
	crossed := false
	for i, txn := range txns {
		pre := txn.Epoch <= E
		if !pre && !crossed {
			// Entering the post-checkpoint suffix: settle everything the
			// checkpoint covers, then re-accept the never-published local
			// commits — they were trusted before the crash, so they must be
			// in the trust state before any suffix candidate is judged.
			if err := flush(true); err != nil {
				return fail("replay decisions", err)
			}
			if err := restoreUnpublished(); err != nil {
				return fail("restore unpublished", err)
			}
			crossed = true
		}
		if txn.ID.Peer == name {
			if err := flush(runPre); err != nil {
				return fail("replay decisions", err)
			}
			// Our own published transaction. Its effects are in the
			// checkpoint if it published before the checkpoint (epoch ≤ E)
			// or was sitting in the unpublished queue when the checkpoint
			// was taken; otherwise it committed after the checkpoint and
			// must re-apply.
			if !pre && !inCk[txn.ID] {
				if err := p.applyUpdates(txn.Updates); err != nil {
					return fail("reapply own txn", err)
				}
			}
			if err := p.state.AcceptLocal(txn); err != nil {
				return fail("accept own txn", err)
			}
			p.tracker.RecordWrites(txn)
			if txn.ID.Seq >= p.nextSeq {
				p.nextSeq = txn.ID.Seq + 1
			}
			continue
		}
		run = append(run, txn)
		runRes = append(runRes, results[i])
		runPre = pre
	}
	if err := flush(runPre); err != nil {
		return fail("replay decisions", err)
	}
	if !crossed {
		if err := restoreUnpublished(); err != nil {
			return fail("restore unpublished", err)
		}
	}

	p.lastEpoch = storeEpoch
	if E > p.lastEpoch {
		p.lastEpoch = E
	}
	// The published snapshot is approximated by the recovered instance; when
	// the unpublished queue is nonempty the two diverge until the next
	// Publish refreshes it, exactly as documented in DESIGN.md.
	p.published = p.local.Snapshot()
	return p, nil
}

// CheckpointEDB opens the named peer's last durable checkpoint as a
// lazily-loading datalog EDB over one pinned LSM snapshot: each relation's
// extent materializes only when a query plan reaches it, by a key-ordered
// range scan of the checkpoint rows. The returned release function unpins
// the snapshot; queries against the EDB must finish before calling it. The
// boolean reports whether a checkpoint exists (when false the EDB is empty).
func CheckpointEDB(db *lsm.DB, peer string, sch *schema.Schema) (*datalog.DB, func(), bool, error) {
	sn := db.Snapshot()
	_, found, err := sn.Get(ckMetaKey(peer))
	if err != nil {
		sn.Close()
		return nil, nil, false, fmt.Errorf("core: open checkpoint for %s: %w", peer, err)
	}
	edb := datalog.NewDB()
	for _, rel := range sch.Relations() {
		relName := rel.Name
		pfx := ckRelPrefix(peer, relName)
		edb.SetLazy(relName, func(add func(schema.Tuple, provenance.Poly)) {
			scanErr := sn.Scan(pfx, ckPrefixEnd(pfx), func(k, v []byte) bool {
				tu, e := lsm.DecodeTuple(k[len(pfx):])
				if e != nil {
					log.Printf("core: checkpoint %s/%s: bad row key: %v", peer, relName, e)
					return false
				}
				prov, e := decodeProv(v)
				if e != nil {
					log.Printf("core: checkpoint %s/%s: bad provenance: %v", peer, relName, e)
					return false
				}
				add(tu, prov)
				return true
			})
			if scanErr != nil {
				log.Printf("core: checkpoint %s/%s: scan: %v", peer, relName, scanErr)
			}
		})
	}
	return edb, func() { sn.Close() }, found, nil
}
