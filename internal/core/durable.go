package core

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"log"
	"time"

	"orchestra/internal/datalog"
	"orchestra/internal/exchange"
	"orchestra/internal/lsm"
	"orchestra/internal/p2p"
	"orchestra/internal/provenance"
	"orchestra/internal/recon"
	"orchestra/internal/schema"
	"orchestra/internal/updates"
)

// This file is the peer-side half of the durable tier: peers checkpoint
// their full engine state into the same LSM database that holds the
// published archive (p2p.DurableStore, prefix "a/"), and recover after a
// crash by loading the checkpoint and replaying only the published suffix
// the checkpoint does not already cover.
//
// Checkpoint key layout (esc is lsm.AppendString, the order-preserving
// escaped string encoding); the "c/", "e/", and "r/" prefixes cannot
// collide with each other or with the archive keyspace:
//
//	c/<esc peer>m                        -> JSON checkpointMeta
//	c/<esc peer>r<esc rel><tuple bytes>  -> binary provenance polynomial (encodeProv)
//	c/<esc peer>u<index be32>            -> JSON p2p.WireTxn (unpublished)
//	e/<esc peer>                         -> engine snapshot blob (engineblob.go)
//	r/<esc peer><seq be64>               -> JSON resolveDecision
//
// The tuple decodes from the row key itself; the value holds only the
// stored annotation. That makes a checkpoint relation a contiguous,
// key-ordered range — which is what lets CheckpointEDB serve it as a lazy
// datalog extent straight off an LSM snapshot scan.
//
// The "e/" blob turns recovery from O(history) into O(suffix): it captures
// the translation engine (union database, token log, base tokens, applied
// set), the reconciliation state, the dependency tracker, and the adaptive
// window's learned drain latency, all valid at the checkpoint epoch. The
// "r/" archive makes Resolve decisions durable between checkpoints:
// recovery re-applies them at their recorded position instead of letting
// settled conflicts regress to deferred.

const (
	ckPrefix = "c/"
	ekPrefix = "e/"
	rkPrefix = "r/"
)

// checkpointMeta is the atomically-swapped summary record: which epoch the
// rows reflect, and where the local transaction counter stood.
type checkpointMeta struct {
	NextSeq   uint64 `json:"next_seq"`
	LastEpoch uint64 `json:"last_epoch"`
}

func ckBase(peer string) []byte {
	return lsm.AppendString([]byte(ckPrefix), peer)
}

func ckMetaKey(peer string) []byte { return append(ckBase(peer), 'm') }

func ckRowPrefix(peer string) []byte { return append(ckBase(peer), 'r') }

func ckRelPrefix(peer, rel string) []byte {
	return lsm.AppendString(ckRowPrefix(peer), rel)
}

func ckRowKey(peer, rel string, tu schema.Tuple) []byte {
	return lsm.AppendTuple(ckRelPrefix(peer, rel), tu)
}

func ckUnpubPrefix(peer string) []byte { return append(ckBase(peer), 'u') }

func ckUnpubKey(peer string, idx int) []byte {
	return binary.BigEndian.AppendUint32(ckUnpubPrefix(peer), uint32(idx))
}

func ekKey(peer string) []byte {
	return lsm.AppendString([]byte(ekPrefix), peer)
}

func rkBase(peer string) []byte {
	return lsm.AppendString([]byte(rkPrefix), peer)
}

func rkKey(peer string, seq uint64) []byte {
	return binary.BigEndian.AppendUint64(rkBase(peer), seq)
}

// resolveDecision is one archived Peer.Resolve outcome. AfterEpoch is the
// peer's lastEpoch when the decision was made: recovery re-applies the
// decision after replaying every transaction up to that epoch and before
// any later one, reproducing the live ordering. InstanceApplied is set when
// a later checkpoint captured the decision's instance effects in its rows
// but could not fold the trust-state transition into an engine snapshot (a
// dirty-engine checkpoint): recovery then repairs the trust state without
// double-applying the winner's updates.
type resolveDecision struct {
	WinnerPeer      string `json:"winner_peer"`
	WinnerSeq       uint64 `json:"winner_seq"`
	AfterEpoch      uint64 `json:"after_epoch"`
	InstanceApplied bool   `json:"instance_applied,omitempty"`
}

// ckPrefixEnd returns the tightest exclusive upper bound for a key prefix
// (nil means "to the end of the keyspace").
func ckPrefixEnd(p []byte) []byte {
	out := append([]byte(nil), p...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	return nil
}

// encodeProv/decodeProv are the binary form of a provenance polynomial: a
// sum of coef·x1^k1·…·xn^kn monomials as varints with length-prefixed
// variable names. Serializing through Monomials keeps the codec independent
// of the polynomial's interned in-memory representation; checkpoint rows
// decode on every recovery, so the format is sized for that hot path (the
// earlier JSON form dominated snapshot-restore time).
func encodeProv(p provenance.Poly) ([]byte, error) {
	ms := p.Monomials()
	buf := binary.AppendUvarint(nil, uint64(len(ms)))
	for _, m := range ms {
		buf = binary.AppendUvarint(buf, m.Coef)
		buf = binary.AppendUvarint(buf, uint64(len(m.Vars)))
		for _, vp := range m.Vars {
			buf = binary.AppendUvarint(buf, uint64(len(vp.Var)))
			buf = append(buf, vp.Var...)
			buf = binary.AppendUvarint(buf, uint64(vp.Pow))
		}
	}
	return buf, nil
}

func decodeProv(data []byte) (provenance.Poly, error) {
	var d provDecoder
	return d.decode(data)
}

// provDecoder decodes a run of encodeProv values, carving the monomial and
// variable-power slices from chunked arenas so a recovery scan over
// thousands of rows pays a handful of allocations instead of several per
// row. FromCanonicalMonomials takes ownership of the slices it is handed,
// which is what makes arena-backed sub-slices sound: each decoded value
// gets its own disjoint reservation, never recycled.
type provDecoder struct {
	monoArena []provenance.Monomial
	vpArena   []provenance.VarPow
}

func (d *provDecoder) monos(n int) []provenance.Monomial {
	if n > cap(d.monoArena)-len(d.monoArena) {
		size := 1024
		if n > size {
			size = n
		}
		d.monoArena = make([]provenance.Monomial, 0, size)
	}
	s := d.monoArena[len(d.monoArena) : len(d.monoArena) : len(d.monoArena)+n]
	d.monoArena = d.monoArena[:len(d.monoArena)+n]
	return s
}

func (d *provDecoder) varPows(n int) []provenance.VarPow {
	if n > cap(d.vpArena)-len(d.vpArena) {
		size := 2048
		if n > size {
			size = n
		}
		d.vpArena = make([]provenance.VarPow, 0, size)
	}
	s := d.vpArena[len(d.vpArena) : len(d.vpArena) : len(d.vpArena)+n]
	d.vpArena = d.vpArena[:len(d.vpArena)+n]
	return s
}

func (d *provDecoder) decode(data []byte) (provenance.Poly, error) {
	bad := func() (provenance.Poly, error) {
		return provenance.Poly{}, fmt.Errorf("core: truncated provenance encoding")
	}
	uvar := func() (uint64, bool) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, false
		}
		data = data[n:]
		return v, true
	}
	nMonos, ok := uvar()
	if !ok {
		return bad()
	}
	ms := d.monos(int(nMonos))
	for i := uint64(0); i < nMonos; i++ {
		m := provenance.Monomial{}
		if m.Coef, ok = uvar(); !ok {
			return bad()
		}
		nVars, ok := uvar()
		if !ok {
			return bad()
		}
		m.Vars = d.varPows(int(nVars))
		for j := uint64(0); j < nVars; j++ {
			l, ok := uvar()
			if !ok || uint64(len(data)) < l {
				return bad()
			}
			v := provenance.Var(data[:l])
			data = data[l:]
			pow, ok := uvar()
			if !ok {
				return bad()
			}
			m.Vars = append(m.Vars, provenance.VarPow{Var: v, Pow: int(pow)})
		}
		ms = append(ms, m)
	}
	if len(data) != 0 {
		return provenance.Poly{}, fmt.Errorf("core: %d trailing bytes after provenance encoding", len(data))
	}
	return provenance.FromCanonicalMonomials(ms), nil
}

// SaveCheckpoint writes the peer's durable state — every local instance row
// with its provenance, the committed-but-unpublished transaction queue, the
// (nextSeq, lastEpoch) meta record, and (engine permitting) the engine
// snapshot blob — as ONE atomic, fsynced lsm.Batch that also deletes
// whatever the previous checkpoint wrote and this one did not. A crash
// therefore leaves either the old checkpoint or the new one, never a blend:
// the batch is a single WAL record, and recovery replays it all or not at
// all.
//
// The engine snapshot folds every archived Resolve decision into the saved
// trust state, so the same batch clears the decision archive. A dirty
// engine (a failed Apply left it undefined) cannot snapshot: the stale blob
// is deleted in the batch, and the decision archive is instead rewritten to
// record that its instance effects are now covered by the checkpoint rows.
func (p *Peer) SaveCheckpoint(db *lsm.DB) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	sp := p.obsv.startSpan("core_checkpoint", p.name)
	defer p.obsv.endSpan(sp, p.name)
	p.obsv.checkpoints.Inc()
	b := lsm.NewBatch()
	var totalBytes int64
	live := map[string]bool{}
	s := p.sys.Schema(p.name)
	for _, rel := range s.Relations() {
		rows, _ := p.local.Rows(rel.Name)
		for _, row := range rows {
			key := ckRowKey(p.name, rel.Name, row.Tuple)
			val, err := encodeProv(row.Prov)
			if err != nil {
				return fmt.Errorf("core: checkpoint %s: encode provenance: %w", p.name, err)
			}
			b.Put(key, val)
			totalBytes += int64(len(key) + len(val))
			live[string(key)] = true
		}
	}
	for i, t := range p.unpublished {
		data, err := json.Marshal(p2p.EncodeTxn(t))
		if err != nil {
			return fmt.Errorf("core: checkpoint %s: encode unpublished txn: %w", p.name, err)
		}
		key := ckUnpubKey(p.name, i)
		b.Put(key, data)
		totalBytes += int64(len(key) + len(data))
		live[string(key)] = true
	}
	meta, err := json.Marshal(checkpointMeta{NextSeq: p.nextSeq, LastEpoch: p.lastEpoch})
	if err != nil {
		return err
	}
	mk := ckMetaKey(p.name)
	b.Put(mk, meta)
	totalBytes += int64(len(mk) + len(meta))
	live[string(mk)] = true

	sn := db.Snapshot()
	defer sn.Close()
	ek := ekKey(p.name)
	rb := rkBase(p.name)
	snapshotted := !p.engineDirty
	if snapshotted {
		engBlob, err := p.engine.SaveState()
		if err != nil {
			return fmt.Errorf("core: checkpoint %s: engine state: %w", p.name, err)
		}
		blob, err := encodeEngineBlob(p.lastEpoch, p.win.PerTxnSeconds(), engBlob, p.state.Save(), p.tracker.Save())
		if err != nil {
			return fmt.Errorf("core: checkpoint %s: engine snapshot: %w", p.name, err)
		}
		b.Put(ek, blob)
		totalBytes += int64(len(ek) + len(blob))
		// The saved trust state already reflects every archived decision;
		// clear the archive in the same atomic batch.
		err = sn.Scan(rb, ckPrefixEnd(rb), func(k, v []byte) bool {
			b.Delete(append([]byte(nil), k...))
			return true
		})
		if err != nil {
			return fmt.Errorf("core: checkpoint %s: sweep decisions: %w", p.name, err)
		}
	} else {
		b.Delete(ek)
		// Keep the decisions (a snapshot-less recovery still needs them to
		// repair the trust state) but mark their instance effects as covered
		// by the rows this checkpoint writes.
		var derr error
		err = sn.Scan(rb, ckPrefixEnd(rb), func(k, v []byte) bool {
			var d resolveDecision
			if e := json.Unmarshal(v, &d); e != nil {
				derr = e
				return false
			}
			if !d.InstanceApplied {
				d.InstanceApplied = true
				data, e := json.Marshal(d)
				if e != nil {
					derr = e
					return false
				}
				b.Put(append([]byte(nil), k...), data)
			}
			return true
		})
		if err == nil {
			err = derr
		}
		if err != nil {
			return fmt.Errorf("core: checkpoint %s: rewrite decisions: %w", p.name, err)
		}
	}

	// Sweep the previous checkpoint: any key under this peer's prefix that
	// the new checkpoint does not reassert is deleted in the same batch, so
	// deleted rows and drained unpublished slots cannot leak back in.
	base := ckBase(p.name)
	err = sn.Scan(base, ckPrefixEnd(base), func(k, v []byte) bool {
		if !live[string(k)] {
			b.Delete(append([]byte(nil), k...))
		}
		return true
	})
	if err != nil {
		return fmt.Errorf("core: checkpoint %s: sweep previous: %w", p.name, err)
	}
	if err := db.Apply(b, true); err != nil {
		return fmt.Errorf("core: checkpoint %s: %w", p.name, err)
	}
	if snapshotted {
		p.resolveSeq = 0
	}
	p.obsv.checkpointBytes.Set(totalBytes)
	return nil
}

// RecoverPeerWith reconstructs a peer from its durable checkpoint in db
// plus the published history in store. The invariant it restores: the
// recovered peer is indistinguishable — instance rows, provenance, trust
// state, dependency tracker, engine state, unpublished queue, sequence
// counter, settled conflicts — from the same peer having processed the same
// history live, with one documented exception (the published snapshot
// equals the reconciled instance rather than the instant of the last
// Publish).
//
// With an engine snapshot ("e/" blob) the whole recovery is O(suffix): the
// engine, trust state, and tracker restore from the blob, only
// transactions with epoch > the snapshot's watermark are fetched and
// replayed, and archived Resolve decisions re-apply at their recorded
// positions. Without a snapshot (no checkpoint ever, or the last one found
// the engine dirty) recovery falls back to a full-history replay: the
// checkpoint rows still spare the instance re-application for epochs ≤
// LastEpoch (E), while translations and trust decisions replay from epoch
// 0 — relying on ApplyAll's pinned batch-composition property — and
// archived decisions repair the otherwise-regressed conflict state.
func RecoverPeerWith(ctx context.Context, name string, sys *System, store p2p.Store, policy *recon.Policy, cfg exchange.Config, db *lsm.DB) (*Peer, error) {
	p, err := NewPeerWith(name, sys, store, policy, cfg)
	if err != nil {
		return nil, err
	}
	p.db = db
	fail := func(stage string, err error) (*Peer, error) {
		return nil, fmt.Errorf("core: recover peer %s: %s: %w", name, stage, err)
	}
	loadStart := time.Now()

	// Phase 1 — load the checkpoint: meta record, engine snapshot blob,
	// instance rows, unpublished queue, archived decisions. No meta record
	// means no checkpoint was ever taken: recovery degenerates to a
	// full-history replay from a fresh peer (E = 0), the same code path.
	meta := checkpointMeta{NextSeq: 1}
	var ckUnpublished []*updates.Transaction
	var snap *engineSnapshot
	var decisions []resolveDecision
	sn := db.Snapshot()
	if raw, ok, err := sn.Get(ckMetaKey(name)); err != nil {
		sn.Close()
		return fail("read meta", err)
	} else if ok {
		if err := json.Unmarshal(raw, &meta); err != nil {
			sn.Close()
			return fail("decode meta", err)
		}
	}
	if raw, ok, err := sn.Get(ekKey(name)); err != nil {
		sn.Close()
		return fail("read engine snapshot", err)
	} else if ok {
		if snap, err = decodeEngineBlob(raw); err != nil {
			sn.Close()
			return fail("decode engine snapshot", err)
		}
	}
	rp := ckRowPrefix(name)
	var derr error
	var pd provDecoder
	err = sn.Scan(rp, ckPrefixEnd(rp), func(k, v []byte) bool {
		rel, rest, e := lsm.DecodeString(k[len(rp):])
		if e != nil {
			derr = e
			return false
		}
		tu, e := lsm.DecodeTuple(rest)
		if e != nil {
			derr = e
			return false
		}
		prov, e := pd.decode(v)
		if e != nil {
			derr = e
			return false
		}
		if _, e := p.local.Upsert(rel, tu, prov); e != nil {
			derr = e
			return false
		}
		return true
	})
	if err == nil {
		err = derr
	}
	if err != nil {
		sn.Close()
		return fail("checkpoint rows", err)
	}
	up := ckUnpubPrefix(name)
	derr = nil
	err = sn.Scan(up, ckPrefixEnd(up), func(k, v []byte) bool {
		var w p2p.WireTxn
		if e := json.Unmarshal(v, &w); e != nil {
			derr = e
			return false
		}
		t, e := p2p.DecodeTxn(w)
		if e != nil {
			derr = e
			return false
		}
		ckUnpublished = append(ckUnpublished, t)
		return true
	})
	if err == nil {
		err = derr
	}
	if err != nil {
		sn.Close()
		return fail("checkpoint unpublished", err)
	}
	rb := rkBase(name)
	derr = nil
	err = sn.Scan(rb, ckPrefixEnd(rb), func(k, v []byte) bool {
		var d resolveDecision
		if e := json.Unmarshal(v, &d); e != nil {
			derr = e
			return false
		}
		decisions = append(decisions, d)
		if len(k) >= len(rb)+8 {
			if seq := binary.BigEndian.Uint64(k[len(rb):]); seq >= p.resolveSeq {
				p.resolveSeq = seq + 1
			}
		}
		return true
	})
	sn.Close()
	if err == nil {
		err = derr
	}
	if err != nil {
		return fail("checkpoint decisions", err)
	}
	p.nextSeq = meta.NextSeq
	E := meta.LastEpoch

	restored := snap != nil
	if restored {
		if snap.Watermark != E {
			// Blob and meta are written in the same atomic batch; a mismatch
			// means the keyspace was tampered with.
			return fail("engine snapshot", fmt.Errorf("watermark %d != checkpoint epoch %d", snap.Watermark, E))
		}
		if err := p.engine.LoadState(snap.Engine); err != nil {
			return fail("restore engine", err)
		}
		if err := p.state.Restore(snap.State); err != nil {
			return fail("restore trust state", err)
		}
		p.tracker.Restore(snap.Writers)
		p.win.SeedPerTxn(snap.PerTxn)
	}
	p.recLoadNs = time.Since(loadStart).Nanoseconds()

	// Phase 2 — fetch the history the restored state does not cover (the
	// suffix after E with a snapshot, everything without one) and replay
	// translations through the engine in adaptive windows (same
	// group-commit shape as Reconcile), leaving the engine exactly where a
	// live peer's would be.
	sinceEpoch := uint64(0)
	if restored {
		sinceEpoch = E
	}
	txns, storeEpoch, err := store.Since(sinceEpoch)
	if err != nil {
		return fail("fetch history", err)
	}
	p.recReplayTxns = int64(len(txns))
	p.pendingRecovery = true
	results := make([]*exchange.Result, 0, len(txns))
	for rest := txns; len(rest) > 0; {
		n := p.win.Next(len(rest))
		start := time.Now()
		rs, err := p.engine.ApplyAll(ctx, rest[:n])
		if err != nil {
			return fail("replay translations", err)
		}
		p.win.Observe(n, time.Since(start))
		results = append(results, rs...)
		rest = rest[n:]
	}

	// A checkpoint-unpublished transaction that later shows up in the store
	// was published in the window between the checkpoint and the crash: it
	// re-enters the trust state at its epoch slot and must NOT be restored
	// to the unpublished queue (the archive already has it).
	ownInStore := map[updates.TxnID]bool{}
	for _, t := range txns {
		if t.ID.Peer == name {
			ownInStore[t.ID] = true
		}
	}
	inCk := map[updates.TxnID]bool{}
	for _, t := range ckUnpublished {
		inCk[t.ID] = true
	}

	// Phase 3 — replay decisions in epoch order. Candidate runs are flushed
	// through state.Reconcile at every boundary that changes what "applying
	// the outcome" means: at each of our own transactions (AcceptLocal must
	// interleave at its true position — acceptance order decides write
	// conflicts), at each archived Resolve decision (the decision settled
	// conflicts exactly between the epochs its AfterEpoch records), and at
	// the E boundary (outcomes at epochs ≤ E are already reflected in the
	// checkpoint rows and must not re-apply; outcomes after E must).
	// Batch-insensitivity of state.Reconcile makes the coarser replay
	// partitioning equivalent to the original round structure. With a
	// restored snapshot every fetched transaction is post-E, so every
	// outcome applies and the trust state picks up where the blob left off.
	var run []*updates.Transaction
	var runRes []*exchange.Result
	runPre := false
	flush := func(pre bool) error {
		if len(run) == 0 {
			return nil
		}
		cands := make([]*updates.Transaction, 0, len(run))
		for i, txn := range run {
			cands = append(cands, &updates.Transaction{
				ID:      txn.ID,
				Epoch:   txn.Epoch,
				Updates: runRes[i].PerPeer[name],
				Deps:    mergeDeps(txn.Deps, runRes[i].ExtraDeps[name]),
			})
		}
		outcome, err := p.state.Reconcile(policy, cands)
		if err != nil {
			return err
		}
		for _, t := range outcome.Accepted {
			if !pre {
				if err := p.applyUpdates(t.Updates); err != nil {
					return err
				}
			}
			// RecordWrites, not Record: replay must restore the archived
			// dependency edges, not recompute them against replay-time state.
			p.tracker.RecordWrites(t)
		}
		run, runRes = nil, nil
		return nil
	}
	restoreUnpublished := func() error {
		for _, t := range ckUnpublished {
			if ownInStore[t.ID] {
				continue
			}
			// With a restored snapshot the blob's trust state and tracker
			// already hold these (they were accepted at commit time, before
			// the checkpoint); only the queue needs rebuilding.
			if !restored {
				if err := p.state.AcceptLocal(t); err != nil {
					return err
				}
				p.tracker.RecordWrites(t)
			}
			p.unpublished = append(p.unpublished, t)
		}
		return nil
	}
	applyDecision := func(d resolveDecision) error {
		winner := updates.TxnID{Peer: d.WinnerPeer, Seq: d.WinnerSeq}
		if p.state.Status(winner) == recon.StatusAccepted {
			return nil // already settled; re-application is a no-op
		}
		outcome, err := p.state.Resolve(winner)
		if err != nil {
			return err
		}
		for _, t := range outcome.Accepted {
			if !d.InstanceApplied {
				if err := p.applyUpdates(t.Updates); err != nil {
					return err
				}
			}
			p.tracker.RecordWrites(t)
		}
		return nil
	}
	di := 0
	crossed := false
	for i, txn := range txns {
		for di < len(decisions) && decisions[di].AfterEpoch < txn.Epoch {
			if err := flush(runPre); err != nil {
				return fail("replay decisions", err)
			}
			if err := applyDecision(decisions[di]); err != nil {
				return fail("reapply resolve decision", err)
			}
			di++
		}
		pre := txn.Epoch <= E
		if !pre && !crossed {
			// Entering the post-checkpoint suffix: settle everything the
			// checkpoint covers, then re-accept the never-published local
			// commits — they were trusted before the crash, so they must be
			// in the trust state before any suffix candidate is judged.
			if err := flush(true); err != nil {
				return fail("replay decisions", err)
			}
			if err := restoreUnpublished(); err != nil {
				return fail("restore unpublished", err)
			}
			crossed = true
		}
		if txn.ID.Peer == name {
			if err := flush(runPre); err != nil {
				return fail("replay decisions", err)
			}
			// Our own published transaction. With a restored snapshot it may
			// already be in the trust state (it sat in the unpublished queue
			// at checkpoint time and published before the crash); otherwise
			// its effects are in the checkpoint if it published before the
			// checkpoint (epoch ≤ E) or was in the checkpointed unpublished
			// queue, and it must re-apply if it committed after.
			known := p.state.Status(txn.ID) != recon.StatusUnknown
			if !known {
				if !pre && !inCk[txn.ID] {
					if err := p.applyUpdates(txn.Updates); err != nil {
						return fail("reapply own txn", err)
					}
				}
				if err := p.state.AcceptLocal(txn); err != nil {
					return fail("accept own txn", err)
				}
				p.tracker.RecordWrites(txn)
			}
			if txn.ID.Seq >= p.nextSeq {
				p.nextSeq = txn.ID.Seq + 1
			}
			continue
		}
		run = append(run, txn)
		runRes = append(runRes, results[i])
		runPre = pre
	}
	if err := flush(runPre); err != nil {
		return fail("replay decisions", err)
	}
	for ; di < len(decisions); di++ {
		if err := applyDecision(decisions[di]); err != nil {
			return fail("reapply resolve decision", err)
		}
	}
	if !crossed {
		if err := restoreUnpublished(); err != nil {
			return fail("restore unpublished", err)
		}
	}

	p.lastEpoch = storeEpoch
	if E > p.lastEpoch {
		p.lastEpoch = E
	}
	// The published snapshot is approximated by the recovered instance; when
	// the unpublished queue is nonempty the two diverge until the next
	// Publish refreshes it, exactly as documented in DESIGN.md.
	p.published = p.local.Snapshot()
	return p, nil
}

// CheckpointEDB opens the named peer's last durable checkpoint as a
// lazily-loading datalog EDB over one pinned LSM snapshot: each relation's
// extent materializes only when a query plan reaches it, by a key-ordered
// range scan of the checkpoint rows. The returned release function unpins
// the snapshot; queries against the EDB must finish before calling it. The
// boolean reports whether a checkpoint exists (when false the EDB is empty).
func CheckpointEDB(db *lsm.DB, peer string, sch *schema.Schema) (*datalog.DB, func(), bool, error) {
	sn := db.Snapshot()
	_, found, err := sn.Get(ckMetaKey(peer))
	if err != nil {
		sn.Close()
		return nil, nil, false, fmt.Errorf("core: open checkpoint for %s: %w", peer, err)
	}
	edb := datalog.NewDB()
	for _, rel := range sch.Relations() {
		relName := rel.Name
		pfx := ckRelPrefix(peer, relName)
		edb.SetLazy(relName, func(add func(schema.Tuple, provenance.Poly)) {
			var pd provDecoder
			scanErr := sn.Scan(pfx, ckPrefixEnd(pfx), func(k, v []byte) bool {
				tu, e := lsm.DecodeTuple(k[len(pfx):])
				if e != nil {
					log.Printf("core: checkpoint %s/%s: bad row key: %v", peer, relName, e)
					return false
				}
				prov, e := pd.decode(v)
				if e != nil {
					log.Printf("core: checkpoint %s/%s: bad provenance: %v", peer, relName, e)
					return false
				}
				add(tu, prov)
				return true
			})
			if scanErr != nil {
				log.Printf("core: checkpoint %s/%s: scan: %v", peer, relName, scanErr)
			}
		})
	}
	return edb, func() { sn.Close() }, found, nil
}
