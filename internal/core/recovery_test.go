package core

// Peer recovery: a CDSS peer holds no private durable state — its instance
// is reconstructible by replaying the published archive through its trust
// policy. These tests pin that property, which is what makes the FileStore
// the only durability point in a deployment.

import (
	"testing"

	"orchestra/internal/p2p"
	"orchestra/internal/recon"
	"orchestra/internal/workload"
)

func TestPeerRecoveryFromArchive(t *testing.T) {
	peers, store := fig2(t)
	alaska, beijing, dresden := peers[workload.Alaska], peers[workload.Beijing], peers[workload.Dresden]

	// A realistic history: inserts, a cross-peer modify, a deletion.
	commit(t, alaska.NewTransaction().
		Insert("O", workload.OTuple("mouse", 1)).
		Insert("P", workload.PTuple("p53", 10)).
		Insert("S", workload.STuple(1, 10, "AAAA")))
	publish(t, alaska)
	reconcile(t, beijing)
	commit(t, beijing.NewTransaction().
		Modify("S", workload.STuple(1, 10, "AAAA"), workload.STuple(1, 10, "TTTT")))
	publish(t, beijing)
	commit(t, alaska.NewTransaction().
		Insert("O", workload.OTuple("rat", 2)))
	publish(t, alaska)
	reconcile(t, dresden)

	// Dresden's machine dies. A fresh peer with the same name and policy
	// replays the archive from epoch 0.
	sys, err := NewSystem(workload.Figure2Peers(), workload.Figure2Mappings())
	if err != nil {
		t.Fatal(err)
	}
	dresden2, err := NewPeer(workload.Dresden, sys, store, recon.TrustAll(1))
	if err != nil {
		t.Fatal(err)
	}
	reconcile(t, dresden2)
	if !dresden2.Instance().Equal(dresden.Instance()) {
		t.Fatalf("recovered instance (%d tuples) != original (%d tuples)\nrecovered: %v\noriginal: %v",
			dresden2.Instance().Size(), dresden.Instance().Size(),
			dresden2.Instance().Table("OPS").Rows(), dresden.Instance().Table("OPS").Rows())
	}
	if dresden2.Epoch() != dresden.Epoch() {
		t.Errorf("epochs differ: %d vs %d", dresden2.Epoch(), dresden.Epoch())
	}
}

func TestPeerRecoveryOverDurableStore(t *testing.T) {
	// Same, but across a FileStore restart: archive durability + peer
	// statelessness compose into full crash recovery.
	dir := t.TempDir()
	fs, err := p2p.OpenFileStore(dir + "/store.log")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(workload.Figure2Peers(), workload.Figure2Mappings())
	if err != nil {
		t.Fatal(err)
	}
	alaska, err := NewPeer(workload.Alaska, sys, fs, recon.TrustAll(1))
	if err != nil {
		t.Fatal(err)
	}
	commit(t, alaska.NewTransaction().
		Insert("O", workload.OTuple("mouse", 1)).
		Insert("P", workload.PTuple("p53", 10)).
		Insert("S", workload.STuple(1, 10, "ACGT")))
	publish(t, alaska)
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything restarts.
	fs2, err := p2p.OpenFileStore(dir + "/store.log")
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	crete, err := NewPeer(workload.Crete, sys, fs2, &recon.Policy{
		Conditions: []recon.Condition{recon.FromPeer(workload.Alaska, 1)},
		Default:    recon.Distrusted,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := reconcile(t, crete)
	if len(r.Accepted) != 1 {
		t.Fatalf("report = %+v", r)
	}
	if !crete.Instance().Contains("OPS", workload.OPSTuple("mouse", "p53", "ACGT")) {
		t.Errorf("crete OPS = %v", crete.Instance().Table("OPS").Rows())
	}
}
