package core

// The five demonstration scenarios of Section 4 of the paper, run
// end-to-end over the Figure 2 CDSS: four peers (Alaska, Beijing, Crete,
// Dresden), Σ1/Σ2 schemas, identity + join + split mappings, and the trust
// relationships the paper states: "Alaska, Beijing and Dresden each trust
// all other participants equally, but Crete trusts only Beijing and
// Dresden (but prefers Beijing to Dresden in the event of a conflict)."

import (
	"context"
	"testing"

	"orchestra/internal/p2p"
	"orchestra/internal/recon"
	"orchestra/internal/updates"
	"orchestra/internal/workload"
)

// fig2 builds the demo CDSS on a fresh in-memory store.
func fig2(t *testing.T) (map[string]*Peer, p2p.Store) {
	t.Helper()
	sys, err := NewSystem(workload.Figure2Peers(), workload.Figure2Mappings())
	if err != nil {
		t.Fatal(err)
	}
	store := p2p.NewMemoryStore()
	peers := map[string]*Peer{}
	policies := map[string]*recon.Policy{
		workload.Alaska:  recon.TrustAll(1),
		workload.Beijing: recon.TrustAll(1),
		workload.Dresden: recon.TrustAll(1),
		workload.Crete: {Conditions: []recon.Condition{
			recon.FromPeer(workload.Beijing, 2),
			recon.FromPeer(workload.Dresden, 1),
		}, Default: recon.Distrusted},
	}
	for name, policy := range policies {
		p, err := NewPeer(name, sys, store, policy)
		if err != nil {
			t.Fatal(err)
		}
		peers[name] = p
	}
	return peers, store
}

func commit(t *testing.T, tx *Txn) *updates.Transaction {
	t.Helper()
	txn, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	return txn
}

func publish(t *testing.T, p *Peer) {
	t.Helper()
	if _, err := p.Publish(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func reconcile(t *testing.T, p *Peer) *ReconcileReport {
	t.Helper()
	r, err := p.Reconcile(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// Scenario 1: "Updates made by Alaska get translated into Dresden's schema
// and applied, and vice versa."
func TestScenario1BidirectionalTranslation(t *testing.T) {
	peers, _ := fig2(t)
	alaska, dresden := peers[workload.Alaska], peers[workload.Dresden]

	commit(t, alaska.NewTransaction().
		Insert("O", workload.OTuple("mouse", 1)).
		Insert("P", workload.PTuple("p53", 10)).
		Insert("S", workload.STuple(1, 10, "ACGT")))
	publish(t, alaska)

	r := reconcile(t, dresden)
	if r.Fetched != 1 || len(r.Accepted) != 1 {
		t.Fatalf("dresden report = %+v", r)
	}
	if !dresden.Instance().Contains("OPS", workload.OPSTuple("mouse", "p53", "ACGT")) {
		t.Errorf("dresden OPS = %v", dresden.Instance().Table("OPS").Rows())
	}

	// And vice versa: Dresden's insert reaches Alaska split into O, P, S
	// with invented ids.
	commit(t, dresden.NewTransaction().Insert("OPS", workload.OPSTuple("fly", "myc", "GGGG")))
	publish(t, dresden)
	reconcile(t, alaska)

	oRows := alaska.Instance().Table("O").Rows()
	foundFly := false
	for _, row := range oRows {
		if row.Tuple[0].Str() == "fly" && row.Tuple[1].IsLabeledNull() {
			foundFly = true
		}
	}
	if !foundFly {
		t.Errorf("alaska O = %v", oRows)
	}
	sRows := alaska.Instance().Table("S").Rows()
	foundSeq := false
	for _, row := range sRows {
		if row.Tuple[2].Str() == "GGGG" {
			foundSeq = true
		}
	}
	if !foundSeq {
		t.Errorf("alaska S = %v", sRows)
	}
}

// Scenario 2: "Beijing and Dresden publish conflicting updates, and Crete
// therefore rejects Dresden's. Dresden then publishes more updates which
// depend on its earlier ones, which Crete must also reject."
func TestScenario2TrustConflictAndCascade(t *testing.T) {
	peers, _ := fig2(t)
	beijing, crete, dresden := peers[workload.Beijing], peers[workload.Crete], peers[workload.Dresden]

	bTxn := commit(t, beijing.NewTransaction().
		Insert("O", workload.OTuple("mouse", 1)).
		Insert("P", workload.PTuple("p53", 10)).
		Insert("S", workload.STuple(1, 10, "AAAA")))
	publish(t, beijing)

	dTxn := commit(t, dresden.NewTransaction().
		Insert("OPS", workload.OPSTuple("mouse", "p53", "CCCC")))
	publish(t, dresden)

	r := reconcile(t, crete)
	if crete.Status(bTxn.ID) != recon.StatusAccepted {
		t.Errorf("beijing at crete: %s", crete.Status(bTxn.ID))
	}
	if crete.Status(dTxn.ID) != recon.StatusRejected {
		t.Errorf("dresden at crete: %s (report %+v)", crete.Status(dTxn.ID), r)
	}
	if !crete.Instance().Contains("OPS", workload.OPSTuple("mouse", "p53", "AAAA")) {
		t.Errorf("crete OPS = %v", crete.Instance().Table("OPS").Rows())
	}
	if crete.Instance().Contains("OPS", workload.OPSTuple("mouse", "p53", "CCCC")) {
		t.Error("crete applied dresden's rejected tuple")
	}

	// Dresden publishes a dependent follow-up; Crete must reject it too.
	d2 := commit(t, dresden.NewTransaction().
		Modify("OPS", workload.OPSTuple("mouse", "p53", "CCCC"), workload.OPSTuple("mouse", "p53", "TTTT")))
	publish(t, dresden)
	reconcile(t, crete)
	if crete.Status(d2.ID) != recon.StatusRejected {
		t.Errorf("dresden follow-up at crete: %s", crete.Status(d2.ID))
	}
	if crete.Instance().Contains("OPS", workload.OPSTuple("mouse", "p53", "TTTT")) {
		t.Error("crete applied dependent of rejected txn")
	}
	// Dependency was tracked at Dresden.
	if len(d2.Deps) == 0 || d2.Deps[0] != dTxn.ID {
		t.Errorf("d2 deps = %v", d2.Deps)
	}
}

// Scenario 3: "Alaska publishes an insertion of several data points in the
// same transaction. Beijing publishes a modification of one of them. Crete
// then reconciles, and ends up accepting both the transaction from Beijing
// and the antecedent from Alaska, even though Crete does not trust Alaska."
func TestScenario3UntrustedAntecedentPulledIn(t *testing.T) {
	peers, _ := fig2(t)
	alaska, beijing, crete := peers[workload.Alaska], peers[workload.Beijing], peers[workload.Crete]

	aTxn := commit(t, alaska.NewTransaction().
		Insert("O", workload.OTuple("rat", 2)).
		Insert("P", workload.PTuple("ins", 20)).
		Insert("S", workload.STuple(2, 20, "AAAA")))
	publish(t, alaska)

	// Beijing receives Alaska's data, then modifies the sequence.
	reconcile(t, beijing)
	if !beijing.Instance().Contains("S", workload.STuple(2, 20, "AAAA")) {
		t.Fatalf("beijing S = %v", beijing.Instance().Table("S").Rows())
	}
	bTxn := commit(t, beijing.NewTransaction().
		Modify("S", workload.STuple(2, 20, "AAAA"), workload.STuple(2, 20, "TTTT")))
	publish(t, beijing)
	if len(bTxn.Deps) != 1 || bTxn.Deps[0] != aTxn.ID {
		t.Fatalf("beijing deps = %v", bTxn.Deps)
	}

	r := reconcile(t, crete)
	if crete.Status(aTxn.ID) != recon.StatusAccepted {
		t.Errorf("alaska antecedent at crete: %s (report %+v)", crete.Status(aTxn.ID), r)
	}
	if crete.Status(bTxn.ID) != recon.StatusAccepted {
		t.Errorf("beijing at crete: %s", crete.Status(bTxn.ID))
	}
	// The final state reflects Beijing's modification of Alaska's data.
	if !crete.Instance().Contains("OPS", workload.OPSTuple("rat", "ins", "TTTT")) {
		t.Errorf("crete OPS = %v", crete.Instance().Table("OPS").Rows())
	}
	if crete.Instance().Contains("OPS", workload.OPSTuple("rat", "ins", "AAAA")) {
		t.Error("crete kept the superseded version")
	}
}

// Scenario 4: "Beijing and Alaska publish conflicting updates. Dresden
// reconciles and defers both of them... Crete reconciles and publishes a
// modification of Beijing's update. Dresden reconciles again and defers
// Crete's update. Dresden then resolves the conflict [in favor of Beijing],
// and accepts Crete's transaction automatically."
func TestScenario4DeferralAndResolution(t *testing.T) {
	peers, _ := fig2(t)
	alaska, beijing, crete, dresden :=
		peers[workload.Alaska], peers[workload.Beijing], peers[workload.Crete], peers[workload.Dresden]

	bTxn := commit(t, beijing.NewTransaction().
		Insert("O", workload.OTuple("fly", 3)).
		Insert("P", workload.PTuple("tnf", 30)).
		Insert("S", workload.STuple(3, 30, "XXXX")))
	publish(t, beijing)
	aTxn := commit(t, alaska.NewTransaction().
		Insert("O", workload.OTuple("fly", 3)).
		Insert("P", workload.PTuple("tnf", 30)).
		Insert("S", workload.STuple(3, 30, "YYYY")))
	publish(t, alaska)

	r := reconcile(t, dresden)
	if dresden.Status(bTxn.ID) != recon.StatusDeferred || dresden.Status(aTxn.ID) != recon.StatusDeferred {
		t.Fatalf("dresden: beijing=%s alaska=%s (report %+v)",
			dresden.Status(bTxn.ID), dresden.Status(aTxn.ID), r)
	}
	if dresden.Instance().Table("OPS").Len() != 0 {
		t.Errorf("dresden applied deferred data: %v", dresden.Instance().Table("OPS").Rows())
	}

	// Crete accepts Beijing's (higher priority) and modifies it.
	reconcile(t, crete)
	if crete.Status(bTxn.ID) != recon.StatusAccepted {
		t.Fatalf("crete: beijing = %s", crete.Status(bTxn.ID))
	}
	cTxn := commit(t, crete.NewTransaction().
		Modify("OPS", workload.OPSTuple("fly", "tnf", "XXXX"), workload.OPSTuple("fly", "tnf", "ZZZZ")))
	publish(t, crete)
	if len(cTxn.Deps) == 0 {
		t.Fatalf("crete txn recorded no dependency on beijing")
	}

	// Dresden defers Crete's dependent update.
	reconcile(t, dresden)
	if dresden.Status(cTxn.ID) != recon.StatusDeferred {
		t.Fatalf("dresden: crete = %s", dresden.Status(cTxn.ID))
	}

	// The administrator resolves in favor of Beijing: Alaska's conflicting
	// transaction is rejected and Crete's dependent is accepted
	// automatically.
	rr, err := dresden.Resolve(context.Background(), bTxn.ID)
	if err != nil {
		t.Fatal(err)
	}
	if dresden.Status(bTxn.ID) != recon.StatusAccepted {
		t.Errorf("after resolve: beijing = %s", dresden.Status(bTxn.ID))
	}
	if dresden.Status(aTxn.ID) != recon.StatusRejected {
		t.Errorf("after resolve: alaska = %s", dresden.Status(aTxn.ID))
	}
	if dresden.Status(cTxn.ID) != recon.StatusAccepted {
		t.Errorf("after resolve: crete = %s (report %+v)", dresden.Status(cTxn.ID), rr)
	}
	// Dresden's final state carries Crete's modification of Beijing's data.
	if !dresden.Instance().Contains("OPS", workload.OPSTuple("fly", "tnf", "ZZZZ")) {
		t.Errorf("dresden OPS = %v", dresden.Instance().Table("OPS").Rows())
	}
	if dresden.Instance().Contains("OPS", workload.OPSTuple("fly", "tnf", "YYYY")) {
		t.Error("dresden applied the rejected side")
	}
}

// Scenario 5: "Beijing publishes a number of updates and then goes offline.
// Alaska can reconcile and still retrieve Beijing's updates from the CDSS."
func TestScenario5OfflinePublisher(t *testing.T) {
	// Run the store over real TCP replicas so "offline" is meaningful.
	srv1, err := p2p.NewServer(p2p.NewMemoryStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := p2p.NewServer(p2p.NewMemoryStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	sys, err := NewSystem(workload.Figure2Peers(), workload.Figure2Mappings())
	if err != nil {
		t.Fatal(err)
	}
	beijingStore := p2p.NewReplicatedStore(p2p.NewClient(srv1.Addr()), p2p.NewClient(srv2.Addr()))
	alaskaStore := p2p.NewReplicatedStore(p2p.NewClient(srv1.Addr()), p2p.NewClient(srv2.Addr()))

	beijing, err := NewPeer(workload.Beijing, sys, beijingStore, recon.TrustAll(1))
	if err != nil {
		t.Fatal(err)
	}
	alaska, err := NewPeer(workload.Alaska, sys, alaskaStore, recon.TrustAll(1))
	if err != nil {
		t.Fatal(err)
	}

	commit(t, beijing.NewTransaction().
		Insert("O", workload.OTuple("worm", 4)).
		Insert("P", workload.PTuple("dmd", 40)).
		Insert("S", workload.STuple(4, 40, "CAGT")))
	publish(t, beijing)

	// Beijing goes offline — and so does one store replica.
	srv1.Close()

	r := reconcile(t, alaska)
	if r.Fetched != 1 || len(r.Accepted) != 1 {
		t.Fatalf("alaska report = %+v", r)
	}
	if !alaska.Instance().Contains("S", workload.STuple(4, 40, "CAGT")) {
		t.Errorf("alaska S = %v", alaska.Instance().Table("S").Rows())
	}
}
